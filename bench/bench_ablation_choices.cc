// Copyright 2026 The pkgstream Authors.
// Ablation: the number of choices d (Section III's design argument).
// d = 1 is hashing; d = 2 is PKG; d > 2 buys only a constant factor (Azar
// et al.) while splitting keys over more workers (more memory, more
// aggregation). This bench quantifies that trade-off on WP and LN1.

#include "bench/bench_util.h"
#include "bench/report.h"
#include "simulation/experiments.h"
#include "simulation/runner.h"

int main(int argc, char** argv) {
  using namespace pkgstream;
  bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  bench::PrintBanner("Ablation: number of choices d (1 = KG ... W = SG-like)",
                     "Nasir et al., ICDE 2015, Section III / Azar et al.",
                     args);
  bench::Report report(
      "bench_ablation_choices",
      "Ablation: number of choices d (1 = KG ... W = SG-like)",
      "Nasir et al., ICDE 2015, Section III / Azar et al.", args);

  std::vector<uint32_t> choices = {1, 2, 3, 4, 8};
  std::vector<uint32_t> workers = {10, 50};
  if (args.quick) {
    choices = {1, 2, 4};
    workers = {10};
  }

  for (auto id : {workload::DatasetId::kWP, workload::DatasetId::kLN1}) {
    const auto& spec = workload::GetDataset(id);
    double scale = simulation::DefaultScale(id, args.full) *
                   (args.quick ? 0.2 : 1.0);
    uint64_t messages = workload::ScaledMessages(spec, scale);

    std::vector<std::string> header = {std::string(spec.symbol) + " d / W"};
    for (uint32_t w : workers) {
      header.push_back("W=" + std::to_string(w) + " avg I(t)/m");
    }
    Table table(header);
    for (uint32_t d : choices) {
      std::vector<std::string> row = {std::to_string(d)};
      for (uint32_t w : workers) {
        auto stream = workload::MakeKeyStream(spec, scale, args.seed);
        if (!stream.ok()) {
          std::cerr << stream.status() << "\n";
          return 1;
        }
        simulation::RoutingConfig config;
        config.partitioner.technique = partition::Technique::kPkgGlobal;
        config.partitioner.workers = w;
        config.partitioner.num_choices = d;
        config.partitioner.seed = args.seed;
        config.messages = messages;
        auto result = simulation::RunRouting(config, stream->get());
        if (!result.ok()) {
          std::cerr << result.status() << "\n";
          return 1;
        }
        report.AddMetric(std::string(spec.symbol) + "/d=" +
                             std::to_string(d) + "/W=" + std::to_string(w) +
                             "/avg_fraction",
                         result->imbalance.avg_fraction);
        row.push_back(FormatCompact(result->imbalance.avg_fraction));
      }
      table.AddRow(row);
    }
    report.AddTable(std::move(table));
  }
  report.AddText(
      "Expected shape: a huge drop from d=1 to d=2 (exponential\n"
      "improvement), then only marginal gains for d>2 — the paper's\n"
      "justification for stopping at two choices.");

  // Second section: the same d sweep past the Section IV wall (W in {100,
  // 1000}, where WP's p1 ~ 0.09 > 2/W). Below the wall extra choices buy
  // only Azar's constant factor; past it the head key's share must split
  // p1/d ways, so every doubling of d keeps paying until d reaches W and
  // the scheme degenerates into SG. This is the sequel's design argument
  // for adapting d per key instead of fixing it globally.
  report.AddText("--- d sweep past the two-choice wall (W = 100, 1000) ---");
  {
    const auto& wp = workload::GetDataset(workload::DatasetId::kWP);
    double scale = simulation::DefaultScale(wp.id, args.full) *
                   (args.quick ? 0.2 : 1.0);
    uint64_t messages = workload::ScaledMessages(wp, scale);
    const std::vector<uint32_t> wide_workers = {100, 1000};
    std::vector<std::string> header = {"WP d / W"};
    for (uint32_t w : wide_workers) {
      header.push_back("W=" + std::to_string(w) + " avg I(t)/m");
    }
    Table table(header);
    // 0 is the sentinel for d = W (full choice).
    for (uint32_t d : {1u, 2u, 4u, 8u, 0u}) {
      std::vector<std::string> row = {d == 0 ? "W" : std::to_string(d)};
      for (uint32_t w : wide_workers) {
        auto stream = workload::MakeKeyStream(wp, scale, args.seed);
        if (!stream.ok()) {
          std::cerr << stream.status() << "\n";
          return 1;
        }
        simulation::RoutingConfig config;
        config.partitioner.technique = partition::Technique::kPkgGlobal;
        config.partitioner.workers = w;
        config.partitioner.num_choices = d == 0 ? w : d;
        config.partitioner.seed = args.seed;
        config.messages = messages;
        auto result = simulation::RunRouting(config, stream->get());
        if (!result.ok()) {
          std::cerr << result.status() << "\n";
          return 1;
        }
        report.AddMetric("WP/d=" + std::string(d == 0 ? "W" : std::to_string(d)) +
                             "/W=" + std::to_string(w) + "/avg_fraction",
                         result->imbalance.avg_fraction);
        row.push_back(FormatCompact(result->imbalance.avg_fraction));
      }
      table.AddRow(row);
    }
    report.AddTable(std::move(table));
    report.AddText(
        "Expected shape: past the wall each doubling of d roughly halves\n"
        "the head key's forced imbalance (p1/d), so the curve keeps\n"
        "dropping all the way to d = W — the opposite of the constant-\n"
        "factor plateau below the wall, and the reason the sequel adapts\n"
        "d per heavy key instead of raising it for everyone.");
  }

  // Third section: the regime where two choices provably fail (W beyond
  // ~2/p1, Section IV) and the heavy-hitter-aware extension that fixes it.
  report.AddText("--- beyond the two-choice limit: W-Choices extension ---");
  {
    const auto& wp = workload::GetDataset(workload::DatasetId::kWP);
    double scale = simulation::DefaultScale(wp.id, args.full) *
                   (args.quick ? 0.2 : 1.0);
    uint64_t messages = workload::ScaledMessages(wp, scale);
    std::vector<uint32_t> wide_workers = {50, 100};
    Table table({"WP technique / W", "W=50 avg I(t)/m", "W=100 avg I(t)/m"});
    for (auto technique :
         {partition::Technique::kPkgLocal, partition::Technique::kWChoices}) {
      std::vector<std::string> row = {
          partition::TechniqueName(technique)};
      for (uint32_t w : wide_workers) {
        auto stream = workload::MakeKeyStream(wp, scale, args.seed);
        if (!stream.ok()) {
          std::cerr << stream.status() << "\n";
          return 1;
        }
        simulation::RoutingConfig config;
        config.partitioner.technique = technique;
        config.partitioner.sources = 5;
        config.partitioner.workers = w;
        config.partitioner.seed = args.seed;
        config.messages = messages;
        auto result = simulation::RunRouting(config, stream->get());
        if (!result.ok()) {
          std::cerr << result.status() << "\n";
          return 1;
        }
        report.AddMetric("WP/" +
                             std::string(partition::TechniqueName(technique)) +
                             "/W=" + std::to_string(w) + "/avg_fraction",
                         result->imbalance.avg_fraction);
        row.push_back(FormatCompact(result->imbalance.avg_fraction));
      }
      table.AddRow(row);
    }
    report.AddTable(std::move(table));
    report.AddText(
        "Expected shape: plain PKG hits the Section IV wall (p1 >\n"
        "2/W) and plateaus high; W-Choices detects the head keys\n"
        "with a per-source SPACESAVING sketch and spreads only\n"
        "those across all workers, restoring balance — the paper's\n"
        "future-work direction, realized.");
  }
  return bench::Finish(report, args);
}
