// Copyright 2026 The pkgstream Authors.
// Ablation: probing period sensitivity (Section V, Q2). The paper claims
// periodic probing of true worker loads does not improve on pure local
// estimation, "even increasing the frequency of probing does not reduce
// imbalance". This bench sweeps the probe period from very frequent to
// never and measures the imbalance.

#include "bench/bench_util.h"
#include "bench/report.h"
#include "simulation/experiments.h"
#include "simulation/runner.h"

int main(int argc, char** argv) {
  using namespace pkgstream;
  bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  bench::PrintBanner("Ablation: probing period (LP vs L vs G)",
                     "Nasir et al., ICDE 2015, Section V (Q2)", args);
  bench::Report report("bench_ablation_probing",
                       "Ablation: probing period (LP vs L vs G)",
                       "Nasir et al., ICDE 2015, Section V (Q2)", args);

  const auto& wp = workload::GetDataset(workload::DatasetId::kWP);
  double scale = simulation::DefaultScale(wp.id, args.full) *
                 (args.quick ? 0.1 : 1.0);
  uint64_t messages = workload::ScaledMessages(wp, scale);
  const uint32_t sources = 5;

  auto run = [&](partition::Technique technique,
                 uint64_t probe_period) -> Result<double> {
    auto stream = workload::MakeKeyStream(wp, scale, args.seed);
    if (!stream.ok()) return stream.status();
    simulation::RoutingConfig config;
    config.partitioner.technique = technique;
    config.partitioner.sources =
        technique == partition::Technique::kPkgGlobal ? 1 : sources;
    config.partitioner.workers = 10;
    config.partitioner.seed = args.seed;
    config.partitioner.probe_period_messages = probe_period;
    config.messages = messages;
    PKGSTREAM_ASSIGN_OR_RETURN(auto result,
                               simulation::RunRouting(config, stream->get()));
    return result.imbalance.avg_fraction;
  };

  Table table({"Estimator", "probe period (messages)", "avg I(t)/m"});
  auto g = run(partition::Technique::kPkgGlobal, 0);
  if (!g.ok()) {
    std::cerr << g.status() << "\n";
    return 1;
  }
  report.AddMetric("G/avg_fraction", *g);
  table.AddRow({"G (oracle)", "-", FormatCompact(*g)});
  auto l = run(partition::Technique::kPkgLocal, 0);
  if (!l.ok()) {
    std::cerr << l.status() << "\n";
    return 1;
  }
  report.AddMetric("L5/avg_fraction", *l);
  table.AddRow({"L5 (no probing)", "never", FormatCompact(*l)});
  std::vector<uint64_t> periods = {1000, 10000, 100000};
  if (!args.quick) periods.push_back(1000000);
  for (uint64_t period : periods) {
    auto lp = run(partition::Technique::kPkgProbing, period);
    if (!lp.ok()) {
      std::cerr << lp.status() << "\n";
      return 1;
    }
    report.AddMetric("L5P/period=" + std::to_string(period) + "/avg_fraction",
                     *lp);
    table.AddRow({"L5P (probing)", FormatWithCommas(period),
                  FormatCompact(*lp)});
  }
  report.AddTable(std::move(table));
  report.AddText(
      "Expected shape (paper): all LP rows ~ the L row; probing —\n"
      "at any frequency — does not beat pure local estimation, so\n"
      "the coordination-free design wins.");
  return bench::Finish(report, args);
}
