// Copyright 2026 The pkgstream Authors.
// Ablation answering the paper's closing question (Section VIII): "can a
// solution based on rebalancing be practical?" — key grouping plus periodic
// hot-key migration vs PKG on the WP workload.
//
// For each rebalance period/threshold the table shows the balance achieved
// *and what it cost*: migrations, keys moved, per-key state transferred,
// and the per-key routing-table entries the sources must now hold — the
// overheads Sections II-B and VIII argue make rebalancing unattractive.
// PKG's row pays none of them.

#include "bench/bench_util.h"
#include "bench/report.h"
#include "common/logging.h"
#include "partition/consistent_hashing.h"
#include "partition/rebalancing.h"
#include "simulation/experiments.h"
#include "simulation/runner.h"

int main(int argc, char** argv) {
  using namespace pkgstream;
  bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  bench::PrintBanner(
      "Ablation: rebalancing & consistent hashing vs PKG",
      "Nasir et al., ICDE 2015, Sections II-B, VII and VIII", args);
  bench::Report report(
      "bench_ablation_rebalance",
      "Ablation: rebalancing & consistent hashing vs PKG",
      "Nasir et al., ICDE 2015, Sections II-B, VII and VIII", args);

  const auto& wp = workload::GetDataset(workload::DatasetId::kWP);
  double scale = simulation::DefaultScale(wp.id, args.full) *
                 (args.quick ? 0.1 : 1.0);
  const uint64_t messages = workload::ScaledMessages(wp, scale);
  const uint32_t workers = 10;

  Table table({"Strategy", "avg I(t)/m", "migrations", "keys moved",
               "state moved", "routing entries"});

  // PKG baseline: no migration machinery at all.
  {
    auto stream = workload::MakeKeyStream(wp, scale, args.seed);
    PKGSTREAM_CHECK_OK(stream.status());
    simulation::RoutingConfig config;
    config.partitioner.technique = partition::Technique::kPkgLocal;
    config.partitioner.sources = 5;
    config.partitioner.workers = workers;
    config.partitioner.seed = args.seed;
    config.messages = messages;
    auto result = simulation::RunRouting(config, stream->get());
    PKGSTREAM_CHECK_OK(result.status());
    report.AddMetric("PKG/avg_fraction", result->imbalance.avg_fraction);
    table.AddRow({"PKG (L5)", FormatCompact(result->imbalance.avg_fraction),
                  "0", "0", "0", "0"});
  }

  // Plain hashing reference.
  {
    auto stream = workload::MakeKeyStream(wp, scale, args.seed);
    PKGSTREAM_CHECK_OK(stream.status());
    simulation::RoutingConfig config;
    config.partitioner.technique = partition::Technique::kHashing;
    config.partitioner.workers = workers;
    config.partitioner.seed = args.seed;
    config.messages = messages;
    auto result = simulation::RunRouting(config, stream->get());
    PKGSTREAM_CHECK_OK(result.status());
    report.AddMetric("KG/avg_fraction", result->imbalance.avg_fraction);
    table.AddRow({"KG (no rebalance)",
                  FormatCompact(result->imbalance.avg_fraction), "0", "0",
                  "0", "0"});
  }

  // Rebalancing at several check periods.
  std::vector<uint64_t> periods = args.quick
                                      ? std::vector<uint64_t>{5000, 50000}
                                      : std::vector<uint64_t>{2000, 10000,
                                                              50000, 200000};
  for (uint64_t period : periods) {
    auto stream = workload::MakeKeyStream(wp, scale, args.seed);
    PKGSTREAM_CHECK_OK(stream.status());
    partition::RebalancingOptions options;
    options.check_period = period;
    options.imbalance_threshold = 0.05;
    options.max_keys_per_rebalance = 32;
    options.hash_seed = args.seed;
    partition::RebalancingKeyGrouping rb(1, workers, options);
    stats::ImbalanceTracker tracker(workers,
                                    std::max<uint64_t>(1, messages / 1000));
    for (uint64_t i = 0; i < messages; ++i) {
      tracker.OnRoute(rb.Route(0, (*stream)->Next()));
    }
    auto summary = tracker.Finish();
    const std::string prefix = "KG+rebalance/T=" + std::to_string(period) + "/";
    report.AddMetric(prefix + "avg_fraction", summary.avg_fraction);
    report.AddMetric(prefix + "migrations",
                     static_cast<double>(rb.stats().rebalances));
    report.AddMetric(prefix + "keys_moved",
                     static_cast<double>(rb.stats().keys_moved));
    report.AddMetric(prefix + "state_moved",
                     static_cast<double>(rb.stats().state_moved));
    report.AddMetric(prefix + "routing_entries",
                     static_cast<double>(rb.RoutingTableSize()));
    table.AddRow({"KG+rebalance(T=" + FormatWithCommas(period) + ")",
                  FormatCompact(summary.avg_fraction),
                  FormatWithCommas(rb.stats().rebalances),
                  FormatWithCommas(rb.stats().keys_moved),
                  FormatWithCommas(rb.stats().state_moved),
                  FormatWithCommas(rb.RoutingTableSize())});
  }

  // Consistent hashing: plain ring and PKG-over-ring.
  for (uint32_t replicas : {1u, 2u}) {
    auto stream = workload::MakeKeyStream(wp, scale, args.seed);
    PKGSTREAM_CHECK_OK(stream.status());
    partition::ConsistentHashOptions options;
    options.replicas = replicas;
    options.seed = args.seed;
    partition::ConsistentHashGrouping ch(1, workers, options);
    stats::ImbalanceTracker tracker(workers,
                                    std::max<uint64_t>(1, messages / 1000));
    for (uint64_t i = 0; i < messages; ++i) {
      tracker.OnRoute(ch.Route(0, (*stream)->Next()));
    }
    auto summary = tracker.Finish();
    report.AddMetric(replicas == 1 ? "CH/avg_fraction"
                                   : "CH+PKG/avg_fraction",
                     summary.avg_fraction);
    table.AddRow({replicas == 1 ? "Consistent hashing (1 succ)"
                                : "CH + PKG choice (2 succ)",
                  FormatCompact(summary.avg_fraction), "0", "0", "0", "0"});
  }

  report.AddTable(std::move(table));
  report.AddText(
      "Expected shape: rebalancing narrows (not closes) the gap to\n"
      "PKG and pays for it in migrations, transferred state and a\n"
      "growing per-key routing table; PKG needs none of it. The\n"
      "plain ring is no better than hashing, but PKG's two-choice\n"
      "idea composes with it (CH + PKG choice).");
  return bench::Finish(report, args);
}
