// Copyright 2026 The pkgstream Authors.
// Reproduces Figure 2: fraction of average imbalance (avg I(t) / m) for
// TW, WP, CT, LN1, LN2; W in {5,10,50,100}; series G, L5, L10, L15, L20, H.
//
// Paper shape: H is orders of magnitude above everything; G and all L
// variants sit together near the bottom (local estimation within one order
// of magnitude of the global oracle, robust to the number of sources);
// every series jumps up once W crosses the dataset's O(1/p1) limit.

#include "bench/bench_util.h"
#include "bench/report.h"
#include "simulation/experiments.h"

int main(int argc, char** argv) {
  using namespace pkgstream;
  bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  bench::PrintBanner("Figure 2: local vs global load estimation",
                     "Nasir et al., ICDE 2015, Figure 2", args);
  bench::Report report("bench_fig2_local_vs_global",
                       "Figure 2: local vs global load estimation",
                       "Nasir et al., ICDE 2015, Figure 2", args);

  simulation::Fig2Options options;
  options.seed = args.seed;
  options.full = args.full;
  if (args.quick) {
    options.datasets = {workload::DatasetId::kWP, workload::DatasetId::kLN2};
    options.workers = {5, 10, 50};
    options.sources = {5, 10};
  }

  auto cells = simulation::RunFig2(options);
  if (!cells.ok()) {
    std::cerr << cells.status() << "\n";
    return 1;
  }

  std::vector<std::string> series = {"G"};
  for (uint32_t s : options.sources) series.push_back("L" + std::to_string(s));
  series.push_back("H");

  for (auto id : options.datasets) {
    const auto& spec = workload::GetDataset(id);
    std::vector<std::string> header = {std::string(spec.symbol) + " / W"};
    for (const auto& s : series) header.push_back(s);
    Table table(header);
    for (uint32_t w : options.workers) {
      std::vector<std::string> row = {std::to_string(w)};
      for (const auto& s : series) {
        double value = -1;
        for (const auto& cell : *cells) {
          if (cell.dataset == spec.symbol && cell.series == s &&
              cell.workers == w) {
            value = cell.avg_fraction;
          }
        }
        report.AddMetric(std::string(spec.symbol) + "/" + s +
                             "/W=" + std::to_string(w) + "/avg_fraction",
                         value);
        row.push_back(FormatCompact(value));
      }
      table.AddRow(row);
    }
    report.AddTable(std::move(table));
  }
  report.AddText(
      "Expected shape (paper): H orders of magnitude above the\n"
      "G/L cluster; L within 1 order of magnitude of G for any\n"
      "number of sources; all series jump once W > O(1/p1).");
  return bench::Finish(report, args);
}
