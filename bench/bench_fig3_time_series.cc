// Copyright 2026 The pkgstream Authors.
// Reproduces Figure 3: fraction of imbalance through time, I(t)/t, for TW,
// WP (minutes) and CT (hours), W in {10, 50}, series G / L5 / L5P1, plus the
// Q2 Jaccard-agreement measurement ("G and L have only 47% overlap").
//
// Paper shape: G and L5 track each other closely; L5P1 (periodic probing)
// does NOT improve on L5; CT shows occasional drift spikes; WP at W=50 is
// beyond its balance limit, so every series is high and flat.

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/report.h"
#include "simulation/experiments.h"

int main(int argc, char** argv) {
  using namespace pkgstream;
  bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  bench::PrintBanner("Figure 3: imbalance through time + probing + Jaccard",
                     "Nasir et al., ICDE 2015, Figure 3 and Section V (Q2)",
                     args);
  bench::Report report(
      "bench_fig3_time_series",
      "Figure 3: imbalance through time + probing + Jaccard",
      "Nasir et al., ICDE 2015, Figure 3 and Section V (Q2)", args);

  simulation::Fig3Options options;
  options.seed = args.seed;
  options.full = args.full;
  options.points = 10;
  if (args.quick) {
    options.datasets = {workload::DatasetId::kWP};
    options.workers = {10};
  }

  auto series = simulation::RunFig3(options);
  if (!series.ok()) {
    std::cerr << series.status() << "\n";
    return 1;
  }

  for (auto id : options.datasets) {
    const auto& spec = workload::GetDataset(id);
    bool hours = spec.duration_hours > 100;
    for (uint32_t w : options.workers) {
      report.AddText(std::string(spec.symbol) + ", W=" + std::to_string(w) +
                     "  (time in " + (hours ? "hours" : "minutes") +
                     ", values are I(t)/t)");
      // Collect the three series for this (dataset, W).
      std::vector<const simulation::Fig3Series*> rows;
      for (const auto& s : *series) {
        if (s.dataset == spec.symbol && s.workers == w) rows.push_back(&s);
      }
      if (rows.empty()) continue;
      std::vector<std::string> header = {"series"};
      for (const auto& p : rows[0]->points) {
        header.push_back("t=" + FormatFixed(p.time, 0));
      }
      header.push_back("Jaccard vs G");
      Table table(header);
      for (const auto* s : rows) {
        const std::string prefix = std::string(spec.symbol) + "/" +
                                   s->series + "/W=" + std::to_string(w) +
                                   "/";
        std::vector<std::string> row = {s->series};
        double sum = 0;
        for (size_t i = 0; i < rows[0]->points.size(); ++i) {
          row.push_back(i < s->points.size()
                            ? FormatCompact(s->points[i].fraction)
                            : "-");
          if (i < s->points.size()) {
            char key[32];
            std::snprintf(key, sizeof(key), "t%02zu/fraction", i);
            report.AddMetric(prefix + key, s->points[i].fraction);
            sum += s->points[i].fraction;
          }
        }
        if (!s->points.empty()) {
          report.AddMetric(prefix + "mean_fraction",
                           sum / static_cast<double>(s->points.size()));
        }
        report.AddMetric(prefix + "jaccard_vs_G", s->jaccard_vs_global);
        row.push_back(FormatFixed(s->jaccard_vs_global, 2));
        table.AddRow(row);
      }
      report.AddTable(std::move(table));
    }
  }
  report.AddText(
      "Expected shape (paper): G ~ L5 ~ L5P1 (probing buys\n"
      "nothing); drift spikes visible on CT; the L-vs-G Jaccard\n"
      "is well below 1 (paper reports ~0.47 on WP, W=10) while\n"
      "imbalances match.");
  return bench::Finish(report, args);
}
