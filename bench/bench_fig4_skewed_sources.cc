// Copyright 2026 The pkgstream Authors.
// Reproduces Figure 4: robustness of PKG to skewed input splits. Graph edge
// streams (LJ; SL1/SL2 optionally) are partitioned onto sources either
// uniformly (shuffle) or by key grouping on the source vertex (skewed);
// workers are keyed by destination vertex; PKG-L balances the workers.
//
// Paper shape: the Skewed series tracks the Uniform series closely at very
// low absolute imbalance; imbalance grows mildly with S and W.

#include "bench/bench_util.h"
#include "bench/report.h"
#include "simulation/experiments.h"

int main(int argc, char** argv) {
  using namespace pkgstream;
  bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  bench::PrintBanner("Figure 4: skewed vs uniform source splits (graphs)",
                     "Nasir et al., ICDE 2015, Figure 4", args);
  bench::Report report("bench_fig4_skewed_sources",
                       "Figure 4: skewed vs uniform source splits (graphs)",
                       "Nasir et al., ICDE 2015, Figure 4", args);

  simulation::Fig4Options options;
  options.seed = args.seed;
  options.full = args.full;
  options.datasets = {workload::DatasetId::kLJ, workload::DatasetId::kSL1,
                      workload::DatasetId::kSL2};
  if (args.quick) {
    options.datasets = {workload::DatasetId::kSL1};
    options.sources = {5, 10};
    options.workers = {5, 10, 50};
  }

  auto cells = simulation::RunFig4(options);
  if (!cells.ok()) {
    std::cerr << cells.status() << "\n";
    return 1;
  }

  for (auto id : options.datasets) {
    const auto& spec = workload::GetDataset(id);
    std::vector<std::string> header = {std::string(spec.symbol) +
                                       " series / W"};
    for (uint32_t w : options.workers) header.push_back("W=" + std::to_string(w));
    Table table(header);
    for (uint32_t s : options.sources) {
      for (const std::string split : {"Uniform", "Skewed"}) {
        std::vector<std::string> row = {split + " L" + std::to_string(s)};
        for (uint32_t w : options.workers) {
          double value = -1;
          for (const auto& cell : *cells) {
            if (cell.dataset == spec.symbol && cell.split == split &&
                cell.sources == s && cell.workers == w) {
              value = cell.avg_fraction;
            }
          }
          report.AddMetric(std::string(spec.symbol) + "/" + split +
                               "/S=" + std::to_string(s) +
                               "/W=" + std::to_string(w) + "/avg_fraction",
                           value);
          row.push_back(FormatCompact(value));
        }
        table.AddRow(row);
      }
    }
    report.AddTable(std::move(table));

    // How skewed was the source split actually? (sanity context)
    double max_skew = 0;
    for (const auto& cell : *cells) {
      if (cell.dataset == spec.symbol && cell.split == "Skewed") {
        max_skew = std::max(max_skew, cell.source_imbalance_fraction);
      }
    }
    report.AddMetric(std::string(spec.symbol) + "/max_source_skew", max_skew);
    report.AddText("(max source-side imbalance fraction under keyed split: " +
                   FormatCompact(max_skew) + ")");
  }
  report.AddText(
      "Expected shape (paper): Skewed ~ Uniform at every (S, W);\n"
      "absolute worker imbalance stays tiny (~1e-7 of the stream\n"
      "at paper scale) even though the source split is highly skewed.");
  return bench::Finish(report, args);
}
