// Copyright 2026 The pkgstream Authors.
// Reproduces Figure 5(a): throughput (keys/s) vs per-key CPU delay on the
// simulated Storm-like cluster — 1 source, 9 counters, WP-like workload —
// for PKG, SG and KG. Also reports the latency comparison from the text
// ("the average latency with KG is up to 45% larger than with PKG").
//
// Paper shape: PKG ~ SG at every delay, both above KG; everyone declines as
// the delay grows; KG declines the fastest (hot worker saturates first).
// Absolute keys/s differ from the paper's VMs (see docs/EXPERIMENTS.md);
// they are *simulated* seconds, so the numbers are deterministic given the
// seed and land in the report's "metrics" section.

#include <sstream>

#include "bench/bench_util.h"
#include "bench/report.h"
#include "simulation/experiments.h"

int main(int argc, char** argv) {
  using namespace pkgstream;
  bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  bench::PrintBanner("Figure 5(a): throughput vs CPU delay",
                     "Nasir et al., ICDE 2015, Figure 5(a)", args);
  bench::Report report("bench_fig5a_throughput",
                       "Figure 5(a): throughput vs CPU delay",
                       "Nasir et al., ICDE 2015, Figure 5(a)", args);

  simulation::Fig5aOptions options;
  options.seed = args.seed;
  if (args.quick) {
    options.cpu_delay_ms = {0.1, 0.4, 1.0};
    options.messages = 50000;
  }
  if (args.full) options.messages = 500000;

  auto cells = simulation::RunFig5a(options);
  if (!cells.ok()) {
    std::cerr << cells.status() << "\n";
    return 1;
  }

  std::vector<std::string> header = {"delay(ms)"};
  for (const std::string t : {"PKG", "SG", "KG"}) {
    header.push_back(t + " keys/s");
  }
  for (const std::string t : {"PKG", "SG", "KG"}) {
    header.push_back(t + " lat(ms)");
  }
  Table table(header);
  for (double d : options.cpu_delay_ms) {
    std::vector<std::string> row = {FormatFixed(d, 1)};
    auto find = [&](const std::string& t) -> const simulation::Fig5aCell* {
      for (const auto& c : *cells) {
        if (c.technique == t && c.cpu_delay_ms == d) return &c;
      }
      return nullptr;
    };
    for (const std::string t : {"PKG", "SG", "KG"}) {
      const auto* c = find(t);
      row.push_back(c ? FormatFixed(c->throughput_per_s, 0) : "-");
      if (c) {
        const std::string prefix = t + "/delay=" + FormatFixed(d, 1) + "/";
        report.AddMetric(prefix + "throughput_per_s", c->throughput_per_s);
        report.AddMetric(prefix + "mean_latency_ms", c->mean_latency_ms);
        report.AddMetric(prefix + "p99_latency_ms", c->p99_latency_ms);
      }
    }
    for (const std::string t : {"PKG", "SG", "KG"}) {
      const auto* c = find(t);
      row.push_back(c ? FormatFixed(c->mean_latency_ms, 1) : "-");
    }
    table.AddRow(row);
  }
  report.AddTable(std::move(table));

  // Summary deltas across the sweep (the paper's -60% KG vs -37% PKG).
  auto endpoints = [&](const std::string& t) {
    double first = -1;
    double last = -1;
    for (const auto& c : *cells) {
      if (c.technique != t) continue;
      if (c.cpu_delay_ms == options.cpu_delay_ms.front()) {
        first = c.throughput_per_s;
      }
      if (c.cpu_delay_ms == options.cpu_delay_ms.back()) {
        last = c.throughput_per_s;
      }
    }
    return std::make_pair(first, last);
  };
  std::ostringstream decline;
  decline << "Throughput decline across the delay sweep:\n";
  for (const std::string t : {"PKG", "SG", "KG"}) {
    auto [first, last] = endpoints(t);
    if (first > 0) {
      report.AddMetric(t + "/decline_percent",
                       100.0 * (1.0 - last / first));
      decline << "  " << t << ": "
              << FormatFixed(100.0 * (1.0 - last / first), 0)
              << "% decrease (paper: KG ~60%, PKG/SG ~37%)\n";
    }
  }
  report.AddText(decline.str());
  report.AddText(
      "Expected shape (paper): PKG ~ SG > KG throughout; KG's\n"
      "decline is the steepest; KG's latency exceeds PKG's as the\n"
      "hot worker queues (paper: up to +45%).");
  return bench::Finish(report, args);
}
