// Copyright 2026 The pkgstream Authors.
// Reproduces Figure 5(b): throughput vs average memory (live counters) for
// PKG and SG across aggregation periods, with the KG running-totals
// reference, at the KG saturation delay (0.4 ms per key).
//
// The simulated cluster runs faster than the paper's VMs, so the paper's
// aggregation periods {10,30,60,300,600}s are scaled down proportionally;
// each row prints the paper period it corresponds to.
//
// Paper shape: at equal aggregation period PKG gets *more* throughput with
// *less* memory than SG; longer periods raise both memory and throughput;
// PKG overtakes the KG reference once the period is long enough (paper:
// above 30s).

#include "bench/bench_util.h"
#include "bench/report.h"
#include "simulation/experiments.h"

int main(int argc, char** argv) {
  using namespace pkgstream;
  bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  bench::PrintBanner("Figure 5(b): throughput vs memory (aggregation periods)",
                     "Nasir et al., ICDE 2015, Figure 5(b)", args);
  bench::Report report(
      "bench_fig5b_memory",
      "Figure 5(b): throughput vs memory (aggregation periods)",
      "Nasir et al., ICDE 2015, Figure 5(b)", args);

  simulation::Fig5bOptions options;
  options.seed = args.seed;
  if (args.quick) {
    options.aggregation_s = {4, 16};
    options.paper_equivalent_s = {10, 60};
    options.min_messages = 150000;
  }
  if (args.full) options.min_messages = 1000000;

  auto cells = simulation::RunFig5b(options);
  if (!cells.ok()) {
    std::cerr << cells.status() << "\n";
    return 1;
  }

  Table table({"Technique", "agg period (sim s)", "paper period (s)",
               "throughput keys/s", "avg memory (counters)", "latency (ms)"});
  for (const auto& c : *cells) {
    table.AddRow({c.technique,
                  c.aggregation_s > 0 ? FormatFixed(c.aggregation_s, 0) : "-",
                  c.paper_equivalent_s > 0
                      ? FormatFixed(c.paper_equivalent_s, 0)
                      : "- (running totals)",
                  FormatFixed(c.throughput_per_s, 0),
                  FormatWithCommas(
                      static_cast<uint64_t>(c.avg_memory_counters)),
                  FormatFixed(c.mean_latency_ms, 1)});
    // The KG reference row keeps running totals (no aggregation period).
    const std::string prefix =
        c.technique + "/" +
        (c.paper_equivalent_s > 0
             ? "paper_period=" + FormatFixed(c.paper_equivalent_s, 0)
             : "running_totals") +
        "/";
    report.AddMetric(prefix + "throughput_per_s", c.throughput_per_s);
    report.AddMetric(prefix + "avg_memory_counters", c.avg_memory_counters);
    report.AddMetric(prefix + "mean_latency_ms", c.mean_latency_ms);
  }
  report.AddTable(std::move(table));

  report.AddText(
      "Expected shape (paper): for every period PKG gives higher\n"
      "throughput and lower memory than SG; longer periods raise\n"
      "both; PKG passes the KG reference above the ~30s-equivalent\n"
      "period.");
  return bench::Finish(report, args);
}
