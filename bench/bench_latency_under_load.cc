// Copyright 2026 The pkgstream Authors.
// Tail latency under open-loop offered load (ROADMAP "latency under load";
// the paper's Section V cluster experiment: "the average latency with KG is
// up to 45% larger than with PKG" — and the *tail* is where the hot worker
// really shows).
//
// Sweep: offered load (msgs/sec, Poisson arrivals) x technique in
// {KG, SG, PKG-L}, Zipf(s=1.5, K=1000) keys, 1 source -> 4 workers.
// Each cell replays the byte-identical arrival schedule and key sequence
// (generated once per load, checksummed into the report), injected by the
// engine::OpenLoopDriver: the offered load never adapts to the system
// (open loop), and each message's latency is measured from its *scheduled*
// arrival time stamped in Message::ts, so coordinated omission cannot
// flatter the tail.
//
// Sinks run the kVirtualService model (engine/open_loop.h): each worker is
// a deterministic single-server queue with service_us = 50us per message —
// per-worker capacity exactly 20k msgs/sec, independent of host speed. With
// a single source the per-sink arrival order equals the injection order, so
// the merged latency histograms are bit-deterministic: p50/p95/p99/p999 land
// in the report's "metrics" section and are exact-pinned by the committed
// baseline (bench/baselines/bench_latency_under_load.json) on any host,
// under any sanitizer. Wall-clock injection behaviour (duration, max
// injector lag) lands in host_metrics.
//
// Why the techniques separate: at s=1.5, K=1000 the head key carries
// p1 ~ 0.38 of the stream. KG sends all of it to one worker — the hot
// worker's share (~0.54) exceeds per-worker capacity once the offered load
// passes ~37k/s, its queue grows for the rest of the cell, and the tail
// explodes. PKG-L splits the head across two workers (~0.27 share) and SG
// spreads everything, so both stay far below capacity at the same load.
// The baseline pins that shape: latency monotone in offered load per
// technique, and KG's tail >> PKG-L's at the top load.
//
// --pace injects against the wall clock (sleep until each arrival is due)
// instead of replaying the schedule flat out; the deterministic latency
// metrics are identical either way (engine_threaded_openloop_test pins
// this), so CI runs unpaced and a paced run can be compared directly.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <utility>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/report.h"
#include "common/logging.h"
#include "engine/open_loop.h"
#include "engine/threaded_runtime.h"
#include "partition/factory.h"
#include "stats/latency_histogram.h"
#include "workload/arrival_schedule.h"
#include "workload/static_distribution.h"
#include "workload/zipf.h"

namespace pkgstream {
namespace {

/// Replays a pre-generated arrival-time vector (so every technique in a cell
/// is offered the byte-identical schedule, and the checksum covers exactly
/// what was injected).
class VectorSchedule final : public workload::ArrivalSchedule {
 public:
  explicit VectorSchedule(const std::vector<uint64_t>* times)
      : times_(times) {}

  uint64_t NextMicros() override {
    PKGSTREAM_CHECK(pos_ < times_->size());
    return (*times_)[pos_++];
  }

  void NextBatchMicros(uint64_t* out, size_t n) override {
    PKGSTREAM_CHECK(pos_ + n <= times_->size());
    for (size_t i = 0; i < n; ++i) out[i] = (*times_)[pos_ + i];
    pos_ += n;
  }

  std::string Name() const override { return "replay"; }

 private:
  const std::vector<uint64_t>* times_;
  size_t pos_ = 0;
};

/// Replays a pre-generated key vector (same rationale as VectorSchedule).
class VectorKeyStream final : public workload::KeyStream {
 public:
  VectorKeyStream(const std::vector<Key>* keys, uint64_t key_space)
      : keys_(keys), key_space_(key_space) {}

  Key Next() override {
    PKGSTREAM_CHECK(pos_ < keys_->size());
    return (*keys_)[pos_++];
  }

  void NextBatch(Key* out, size_t n) override {
    PKGSTREAM_CHECK(pos_ + n <= keys_->size());
    for (size_t i = 0; i < n; ++i) out[i] = (*keys_)[pos_ + i];
    pos_ += n;
  }

  uint64_t KeySpace() const override { return key_space_; }
  std::string Name() const override { return "replay"; }

 private:
  const std::vector<Key>* keys_;
  uint64_t key_space_;
  size_t pos_ = 0;
};

struct CellResult {
  stats::LatencyHistogram hist{1ULL << 30, 32};
  uint64_t processed = 0;
  double wall_seconds = 0;
  uint64_t max_lag_us = 0;
  stats::LatencyHistogram lag_hist{1ULL << 30, 32};
};

CellResult RunCell(partition::Technique technique, uint32_t workers,
                   uint64_t service_us, const std::vector<uint64_t>& times,
                   const std::vector<Key>& keys, uint64_t key_space,
                   uint64_t seed, bool pace) {
  engine::Topology topology;
  engine::NodeId spout = topology.AddSpout("src", /*parallelism=*/1);
  engine::LatencySink::Options sink_options;
  sink_options.model = engine::LatencySink::ServiceModel::kVirtualService;
  sink_options.service_us = service_us;
  engine::NodeId sink = topology.AddOperator(
      "sink", engine::LatencySink::MakeFactory(sink_options), workers);
  PKGSTREAM_CHECK_OK(topology.Connect(spout, sink, technique, seed));
  auto rt = engine::ThreadedRuntime::Create(&topology, {});
  PKGSTREAM_CHECK_OK(rt.status());

  engine::OpenLoopClock clock;
  engine::OpenLoopOptions driver_options;
  driver_options.pace = pace;
  engine::OpenLoopDriver driver(rt->get(), spout, &clock, driver_options);
  VectorSchedule schedule(&times);
  VectorKeyStream key_stream(&keys, key_space);
  engine::OpenLoopDriver::Source source;
  source.source = 0;
  source.schedule = &schedule;
  source.keys = &key_stream;
  source.messages = times.size();
  auto reports = driver.Run({source});
  (*rt)->Finish();

  CellResult result;
  result.hist = engine::LatencySink::MergedHistogram(rt->get(), sink, workers,
                                                     sink_options);
  for (uint64_t n : (*rt)->Processed(sink)) result.processed += n;
  result.wall_seconds = static_cast<double>(clock.NowMicros()) / 1e6;
  result.max_lag_us = reports[0].max_lag_us;
  result.lag_hist = reports[0].lag_histogram;
  return result;
}

std::string FormatUs(uint64_t us) {
  char buf[32];
  if (us >= 10000) {
    std::snprintf(buf, sizeof(buf), "%.1fms", static_cast<double>(us) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lluus",
                  static_cast<unsigned long long>(us));
  }
  return buf;
}

}  // namespace
}  // namespace pkgstream

int main(int argc, char** argv) {
  using namespace pkgstream;
  Flags flags;
  Status s = Flags::Parse(argc, argv, &flags);
  if (!s.ok()) {
    std::cerr << "flag error: " << s << "\n";
    return 2;
  }
  bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  const char* title =
      "Tail latency under open-loop load: KG vs SG vs PKG-L on skewed keys";
  const char* paper_ref =
      "Nasir et al. 2015, Section V latency discussion (KG latency up to "
      "45% above PKG); open-loop methodology avoids coordinated omission";
  bench::PrintBanner(title, paper_ref, args);
  bench::Report report("bench_latency_under_load", title, paper_ref, args);

  // Each cell replays cell_ms milliseconds of Poisson arrivals at the
  // offered load. 500ms cells keep the quick gate fast while the top load
  // overdrives KG's hot worker long enough for an unambiguous tail.
  uint64_t cell_ms = args.quick ? 500 : 2000;
  if (args.full) cell_ms = 8000;
  cell_ms = static_cast<uint64_t>(
      flags.GetInt("cell_ms", static_cast<int64_t>(cell_ms)));
  const uint64_t service_us =
      static_cast<uint64_t>(flags.GetInt("service_us", 50));
  const uint32_t workers =
      static_cast<uint32_t>(flags.GetInt("workers", 4));
  const bool pace = flags.GetBool("pace", false);
  PKGSTREAM_CHECK(cell_ms > 0 && service_us > 0 && workers > 0);

  // Per-worker capacity is 1e6/service_us = 20k msgs/sec (80k aggregate).
  // 8k/s: everyone idle. 32k/s: KG's hot worker (~0.54 share -> ~17.3k/s)
  // runs hot but stable. 48k/s: the hot worker is offered ~25.9k/s — over
  // capacity, unbounded queue growth for the rest of the cell.
  const std::vector<uint64_t> loads = {8000, 32000, 48000};
  const std::vector<std::pair<partition::Technique, std::string>> techniques =
      {{partition::Technique::kHashing, "KG"},
       {partition::Technique::kShuffle, "SG"},
       {partition::Technique::kPkgLocal, "PKG-L"}};

  auto dist = std::make_shared<const workload::StaticDistribution>(
      workload::ZipfWeights(1000, 1.5), "zipf(1.5,K=1000)");

  report.AddMetric("cell_ms", static_cast<double>(cell_ms));
  report.AddMetric("service_us", static_cast<double>(service_us));
  report.AddMetric("workers", static_cast<double>(workers));

  std::cout << "workers=" << workers << "  service_us=" << service_us
            << "  cell_ms=" << cell_ms << "  pace=" << (pace ? "on" : "off")
            << "  keys=" << dist->name() << " (p1=" << dist->P1() << ")\n\n";

  Table table({"load msg/s", "technique", "count", "p50", "p95", "p99",
               "p999", "max", "mean us"});
  uint64_t worst_p999 = 0;
  uint64_t saturated_total = 0;
  for (uint64_t load : loads) {
    // One schedule + key sequence per load, shared by every technique.
    const uint64_t messages = load * cell_ms / 1000;
    std::vector<uint64_t> times(messages);
    std::vector<Key> keys(messages);
    workload::PoissonSchedule schedule(static_cast<double>(load),
                                       args.seed ^ load);
    schedule.NextBatchMicros(times.data(), messages);
    workload::IidKeyStream key_stream(dist, args.seed * 31 + load);
    key_stream.NextBatch(keys.data(), messages);
    // Checksums (mod 2^32: metrics are doubles and must stay exact) pin
    // that every technique — and every future capture — was offered this
    // exact load.
    uint64_t sched_sum = 0, key_sum = 0;
    for (uint64_t t : times) sched_sum += t;
    for (Key k : keys) key_sum += k;
    const std::string load_prefix = "load=" + std::to_string(load) + "/";
    report.AddMetric(load_prefix + "messages",
                     static_cast<double>(messages));
    report.AddMetric(load_prefix + "sched_checksum",
                     static_cast<double>(sched_sum & 0xffffffffULL));
    report.AddMetric(load_prefix + "key_checksum",
                     static_cast<double>(key_sum & 0xffffffffULL));

    for (const auto& [technique, name] : techniques) {
      CellResult cell = RunCell(technique, workers, service_us, times, keys,
                                dist->K(), args.seed, pace);
      const auto& h = cell.hist;
      PKGSTREAM_CHECK(cell.processed == messages && h.count() == messages)
          << "message loss: injected " << messages << ", processed "
          << cell.processed << ", recorded " << h.count();
      const std::string prefix = load_prefix + name + "/";
      report.AddMetric(prefix + "count", static_cast<double>(h.count()));
      report.AddMetric(prefix + "p50_us", static_cast<double>(h.P50()));
      report.AddMetric(prefix + "p95_us", static_cast<double>(h.P95()));
      report.AddMetric(prefix + "p99_us", static_cast<double>(h.P99()));
      report.AddMetric(prefix + "p999_us", static_cast<double>(h.P999()));
      report.AddMetric(prefix + "max_us", static_cast<double>(h.max()));
      report.AddMetric(prefix + "mean_us", h.mean());
      report.AddMetric(prefix + "saturated",
                       static_cast<double>(h.saturated()));
      report.AddHostMetric(prefix + "wall_seconds", cell.wall_seconds);
      report.AddHostMetric(prefix + "max_inject_lag_us",
                           static_cast<double>(cell.max_lag_us));
      // Inject-lag quantiles (per message, from the driver's lag
      // histogram): p99 near zero with a large max means one scheduling
      // spike; p99 near the max means sustained injector backpressure.
      report.AddHostMetric(prefix + "inject_lag_p50_us",
                           static_cast<double>(cell.lag_hist.P50()));
      report.AddHostMetric(prefix + "inject_lag_p99_us",
                           static_cast<double>(cell.lag_hist.P99()));
      report.AddHostMetric(prefix + "inject_lag_p999_us",
                           static_cast<double>(cell.lag_hist.P999()));
      worst_p999 = std::max(worst_p999, h.P999());
      saturated_total += h.saturated();
      table.AddRow({std::to_string(load), name, std::to_string(h.count()),
                    FormatUs(h.P50()), FormatUs(h.P95()), FormatUs(h.P99()),
                    FormatUs(h.P999()), FormatUs(h.max()),
                    std::to_string(static_cast<uint64_t>(h.mean()))});
    }
  }
  report.AddTable(std::move(table));
  report.AddText(
      "Expected shape: per technique, every latency quantile is monotone\n"
      "nondecreasing in the offered load; at the top load KG's hot worker\n"
      "(head key p1~0.38 + its hash share) is offered more than its\n"
      "capacity and the queue grows for the rest of the cell, while PKG-L\n"
      "splits the head across two workers and stays far below capacity —\n"
      "so PKG-L's p99/p999 sit orders of magnitude below KG's. Latency is\n"
      "measured from each message's *scheduled* arrival (open loop): the\n"
      "backlog counts against the tail instead of silently slowing the\n"
      "injector (coordinated omission).");

  // One greppable line for the CI reproduction-gate job.
  std::cout << "[bench_latency_under_load] latency-under-load-complete:"
            << " loads=" << loads.size() << " techniques=" << techniques.size()
            << " worst_p999_us=" << worst_p999
            << " saturated=" << saturated_total << "\n";
  return bench::Finish(report, args);
}
