// Copyright 2026 The pkgstream Authors.
// google-benchmark microbenchmark: the per-message cost of Route() for every
// technique. This quantifies the paper's practicality claim — PKG is "a
// single function and less than 20 lines of code": its routing decision
// should cost within a small constant of plain hashing and remain a
// negligible fraction of any realistic per-message processing budget.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "partition/factory.h"
#include "stats/frequency.h"
#include "workload/static_distribution.h"
#include "workload/zipf.h"

namespace pkgstream {
namespace {

constexpr uint32_t kWorkers = 16;
constexpr uint32_t kSources = 4;
constexpr uint64_t kKeys = 100000;

/// Pre-generates a key sequence so sampling cost stays out of the loop.
const std::vector<Key>& KeySequence() {
  static const std::vector<Key>* keys = [] {
    auto dist = std::make_shared<workload::StaticDistribution>(
        workload::ZipfWeights(kKeys, 1.0), "zipf");
    Rng rng(42);
    auto* v = new std::vector<Key>(1 << 16);
    for (auto& k : *v) k = dist->Sample(&rng);
    return v;
  }();
  return *keys;
}

const stats::FrequencyTable& Frequencies() {
  static const stats::FrequencyTable* table = [] {
    auto* t = new stats::FrequencyTable();
    for (Key k : KeySequence()) t->Add(k);
    return t;
  }();
  return *table;
}

void RouteBenchmark(benchmark::State& state, partition::Technique technique) {
  partition::PartitionerConfig config;
  config.technique = technique;
  config.sources = kSources;
  config.workers = kWorkers;
  config.seed = 42;
  config.frequencies = &Frequencies();
  auto partitioner = partition::MakePartitioner(config);
  if (!partitioner.ok()) {
    state.SkipWithError(partitioner.status().ToString().c_str());
    return;
  }
  const auto& keys = KeySequence();
  size_t i = 0;
  SourceId source = 0;
  for (auto _ : state) {
    WorkerId w = (*partitioner)->Route(source, keys[i & (keys.size() - 1)]);
    benchmark::DoNotOptimize(w);
    ++i;
    source = static_cast<SourceId>(i & (kSources - 1));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

#define PKGSTREAM_ROUTE_BENCH(name, technique)                       \
  void BM_Route_##name(benchmark::State& state) {                    \
    RouteBenchmark(state, partition::Technique::technique);          \
  }                                                                  \
  BENCHMARK(BM_Route_##name)

PKGSTREAM_ROUTE_BENCH(Hashing, kHashing);
PKGSTREAM_ROUTE_BENCH(Shuffle, kShuffle);
PKGSTREAM_ROUTE_BENCH(Random, kRandom);
PKGSTREAM_ROUTE_BENCH(PkgGlobal, kPkgGlobal);
PKGSTREAM_ROUTE_BENCH(PkgLocal, kPkgLocal);
PKGSTREAM_ROUTE_BENCH(PkgProbing, kPkgProbing);
PKGSTREAM_ROUTE_BENCH(PotcStatic, kPotcStatic);
PKGSTREAM_ROUTE_BENCH(OnGreedy, kOnGreedy);
PKGSTREAM_ROUTE_BENCH(OffGreedy, kOffGreedy);

/// PKG with more choices: cost grows linearly in d.
void BM_Route_PkgChoices(benchmark::State& state) {
  partition::PartitionerConfig config;
  config.technique = partition::Technique::kPkgGlobal;
  config.sources = kSources;
  config.workers = kWorkers;
  config.num_choices = static_cast<uint32_t>(state.range(0));
  auto partitioner = partition::MakePartitioner(config);
  const auto& keys = KeySequence();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        (*partitioner)->Route(0, keys[i & (keys.size() - 1)]));
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_Route_PkgChoices)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
}  // namespace pkgstream

BENCHMARK_MAIN();
