// Copyright 2026 The pkgstream Authors.
// google-benchmark microbenchmark: the per-message cost of Route() — scalar
// and batched — for every technique. This quantifies the paper's
// practicality claim — PKG is "a single function and less than 20 lines of
// code": its routing decision should cost within a small constant of plain
// hashing and remain a negligible fraction of any realistic per-message
// processing budget. The batch cases measure the fused RouteBatch hot path
// (devirtualized estimator protocol + fixed-width Murmur3; see
// docs/ARCHITECTURE.md "The routing hot path").
//
// Unlike the other bench binaries this one is timer-driven, but it speaks
// the same structured-report protocol (--json=PATH, bench/report.h):
//  * metrics       deterministic routing checksums from an equivalence run
//                  that routes the identical message sequence scalar and
//                  batched (interleaved batch sizes) and CHECKs the
//                  decisions match — the repro gate diffs these against
//                  bench/baselines/bench_micro_route.json, so a silent
//                  change to the routing bits fails CI;
//  * host_metrics  google-benchmark items/sec per case (collected through
//                  a ConsoleReporter adapter), host-dependent, used only in
//                  same-report ratio invariants ("batch >= scalar",
//                  "PKG-L within 4x of Hashing").
//
// Flags: bench_util flags (--seed/--quick/--full/--json/--csv) plus any
// --benchmark_* flag, forwarded to google-benchmark. Scale picks the
// per-case --benchmark_min_time unless given explicitly.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/report.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/simd.h"
#include "partition/factory.h"
#include "stats/frequency.h"
#include "workload/static_distribution.h"
#include "workload/zipf.h"

namespace pkgstream {
namespace {

constexpr uint32_t kWorkers = 16;
constexpr uint32_t kSources = 4;
constexpr uint64_t kKeys = 100000;
/// Keys routed per RouteBatch call in the timed batch cases.
constexpr size_t kRouteBatchSize = 256;
/// Messages in the deterministic scalar-vs-batch equivalence run.
constexpr size_t kEquivalenceMessages = 1 << 15;

/// Set from --seed in main before any lazy state is touched.
uint64_t g_seed = 42;

/// Pre-generates a key sequence so sampling cost stays out of the loop.
/// Size is a power of two (wrap by mask) and a multiple of kRouteBatchSize
/// (batch slices never straddle the wrap).
const std::vector<Key>& KeySequence() {
  static const std::vector<Key>* keys = [] {
    auto dist = std::make_shared<workload::StaticDistribution>(
        workload::ZipfWeights(kKeys, 1.0), "zipf");
    Rng rng(g_seed);
    auto* v = new std::vector<Key>(1 << 16);
    for (auto& k : *v) k = dist->Sample(&rng);
    return v;
  }();
  return *keys;
}

const stats::FrequencyTable& Frequencies() {
  static const stats::FrequencyTable* table = [] {
    auto* t = new stats::FrequencyTable();
    for (Key k : KeySequence()) t->Add(k);
    return t;
  }();
  return *table;
}

partition::PartitionerConfig MakeConfig(partition::Technique technique,
                                        uint32_t num_choices = 2) {
  partition::PartitionerConfig config;
  config.technique = technique;
  config.sources = kSources;
  config.workers = kWorkers;
  config.seed = g_seed;
  config.num_choices = num_choices;
  config.frequencies = &Frequencies();
  return config;
}

/// The techniques under the microscope; names double as metric-key
/// segments. The fused-RouteBatch set (Hashing, SG, PKG-*, PoTC) plus the
/// scalar-fallback references (Random, greedy baselines).
struct Case {
  const char* name;
  partition::Technique technique;
};
constexpr Case kCases[] = {
    {"Hashing", partition::Technique::kHashing},
    {"SG", partition::Technique::kShuffle},
    {"Random", partition::Technique::kRandom},
    {"PKG-G", partition::Technique::kPkgGlobal},
    {"PKG-L", partition::Technique::kPkgLocal},
    {"PKG-LP", partition::Technique::kPkgProbing},
    {"PoTC", partition::Technique::kPotcStatic},
    {"On-Greedy", partition::Technique::kOnGreedy},
    {"Off-Greedy", partition::Technique::kOffGreedy},
};

void RouteScalar(benchmark::State& state, partition::Technique technique) {
  auto partitioner = partition::MakePartitioner(MakeConfig(technique));
  if (!partitioner.ok()) {
    state.SkipWithError(partitioner.status().ToString().c_str());
    return;
  }
  const auto& keys = KeySequence();
  const size_t mask = keys.size() - 1;
  size_t i = 0;
  SourceId source = 0;
  for (auto _ : state) {
    WorkerId w = (*partitioner)->Route(source, keys[i & mask]);
    benchmark::DoNotOptimize(w);
    ++i;
    source = static_cast<SourceId>(i & (kSources - 1));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void RouteBatched(benchmark::State& state, partition::Technique technique) {
  auto partitioner = partition::MakePartitioner(MakeConfig(technique));
  if (!partitioner.ok()) {
    state.SkipWithError(partitioner.status().ToString().c_str());
    return;
  }
  const auto& keys = KeySequence();
  const size_t mask = keys.size() - 1;
  WorkerId out[kRouteBatchSize];
  size_t i = 0;
  SourceId source = 0;
  for (auto _ : state) {
    const Key* slice = keys.data() + (i & mask);
    (*partitioner)->RouteBatch(source, slice, out, kRouteBatchSize);
    benchmark::DoNotOptimize(out[0]);
    benchmark::ClobberMemory();
    i += kRouteBatchSize;
    source = static_cast<SourceId>((i / kRouteBatchSize) & (kSources - 1));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kRouteBatchSize));
}

/// The SIMD-vs-scalar A/B of the multi-key hashing primitive itself:
/// HashFamily::BucketBatch through the runtime dispatch (AVX-512/AVX2 on
/// capable hosts) against the pinned scalar reference loop, same family,
/// same keys, same batch size. On a host where dispatch selects scalar the
/// two cases time identical code — the ratio then hovers at 1.
void HashBucketBatch(benchmark::State& state, bool force_scalar) {
  const HashFamily family(2, kWorkers, g_seed);
  const auto& keys = KeySequence();
  const size_t mask = keys.size() - 1;
  uint32_t out[kRouteBatchSize];
  size_t i = 0;
  uint32_t member = 0;
  for (auto _ : state) {
    const Key* slice = keys.data() + (i & mask);
    if (force_scalar) {
      family.BucketBatchScalar(member, slice, out, kRouteBatchSize);
    } else {
      family.BucketBatch(member, slice, out, kRouteBatchSize);
    }
    benchmark::DoNotOptimize(out[0]);
    benchmark::ClobberMemory();
    i += kRouteBatchSize;
    member ^= 1;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kRouteBatchSize));
}

/// PKG with more choices: cost grows linearly in d.
void RouteChoices(benchmark::State& state, uint32_t num_choices) {
  auto partitioner = partition::MakePartitioner(
      MakeConfig(partition::Technique::kPkgGlobal, num_choices));
  if (!partitioner.ok()) {
    state.SkipWithError(partitioner.status().ToString().c_str());
    return;
  }
  const auto& keys = KeySequence();
  const size_t mask = keys.size() - 1;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize((*partitioner)->Route(0, keys[i & mask]));
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void RegisterAllBenchmarks() {
  for (const Case& c : kCases) {
    benchmark::RegisterBenchmark(
        (std::string("route/") + c.name + "/scalar").c_str(), RouteScalar,
        c.technique);
    benchmark::RegisterBenchmark(
        (std::string("route/") + c.name + "/batch").c_str(), RouteBatched,
        c.technique);
  }
  for (uint32_t d : {1u, 2u, 4u, 8u}) {
    benchmark::RegisterBenchmark(
        ("choices/d=" + std::to_string(d)).c_str(), RouteChoices, d);
  }
  benchmark::RegisterBenchmark("hash/BucketBatch/simd", HashBucketBatch,
                               /*force_scalar=*/false);
  benchmark::RegisterBenchmark("hash/BucketBatch/scalar", HashBucketBatch,
                               /*force_scalar=*/true);
}

/// 32-bit routing checksum: fits a double exactly, so it round-trips
/// through the JSON report and the baseline's tight metric agreement.
uint32_t RoutingChecksum(const std::vector<WorkerId>& workers) {
  uint64_t acc = 0xcbf29ce484222325ULL;
  for (WorkerId w : workers) acc = Fmix64(acc ^ w);
  return static_cast<uint32_t>(acc);
}

/// The deterministic half of the report: routes the identical message
/// sequence through two fresh partitioners per technique — one via scalar
/// Route, one via RouteBatch with interleaved batch sizes (1, 7, 64, 256
/// and a ragged tail) and a rotating source — CHECKs the decisions agree,
/// and records both checksums as metrics. The repro gate then (a) pins the
/// checksums against the committed capture, so the routing bits themselves
/// are under regression test, and (b) re-verifies batch==scalar as an
/// explicit invariant on every run.
void AddEquivalenceMetrics(bench::Report* report) {
  const auto& keys = KeySequence();
  const size_t mask = keys.size() - 1;
  const size_t chunk_sizes[] = {1, 7, 64, kRouteBatchSize};
  Key key_buf[kRouteBatchSize];
  WorkerId out_buf[kRouteBatchSize];
  for (const Case& c : kCases) {
    auto scalar_p = partition::MakePartitioner(MakeConfig(c.technique));
    auto batch_p = partition::MakePartitioner(MakeConfig(c.technique));
    PKGSTREAM_CHECK_OK(scalar_p.status());
    PKGSTREAM_CHECK_OK(batch_p.status());
    std::vector<WorkerId> scalar_workers;
    std::vector<WorkerId> batch_workers;
    scalar_workers.reserve(kEquivalenceMessages);
    batch_workers.reserve(kEquivalenceMessages);
    size_t pos = 0;
    size_t chunk = 0;
    SourceId source = 0;
    while (pos < kEquivalenceMessages) {
      const size_t len =
          std::min(chunk_sizes[chunk++ % 4], kEquivalenceMessages - pos);
      for (size_t j = 0; j < len; ++j) key_buf[j] = keys[(pos + j) & mask];
      for (size_t j = 0; j < len; ++j) {
        scalar_workers.push_back((*scalar_p)->Route(source, key_buf[j]));
      }
      (*batch_p)->RouteBatch(source, key_buf, out_buf, len);
      batch_workers.insert(batch_workers.end(), out_buf, out_buf + len);
      pos += len;
      source = static_cast<SourceId>((source + 1) % kSources);
    }
    PKGSTREAM_CHECK(scalar_workers == batch_workers)
        << c.name << ": RouteBatch diverged from scalar Route";
    report->AddMetric(std::string("equiv/") + c.name + "/scalar_checksum",
                      RoutingChecksum(scalar_workers));
    report->AddMetric(std::string("equiv/") + c.name + "/batch_checksum",
                      RoutingChecksum(batch_workers));
  }
  report->AddMetric("equiv/messages",
                    static_cast<double>(kEquivalenceMessages));
  report->AddMetric("workers", kWorkers);
  report->AddMetric("sources", kSources);
}

/// The SIMD bit-compatibility half of the deterministic metrics: runs the
/// identical key sequence through HashFamily::BucketBatch (whatever level
/// the runtime dispatch selected) and through the pinned scalar reference,
/// in the same ragged chunk pattern the routing equivalence uses, CHECKs
/// bucket-for-bucket equality, and records one checksum per path. The
/// committed baseline pins both values, so the gate fails if either the
/// dispatch or the scalar reference ever changes a routed bit — on any
/// host, with SIMD active or force-disabled (the checksums are the same
/// number either way; that is the contract).
void AddSimdEquivalenceMetrics(bench::Report* report) {
  const auto& keys = KeySequence();
  const size_t mask = keys.size() - 1;
  const size_t chunk_sizes[] = {1, 7, 64, kRouteBatchSize};
  const HashFamily family(2, kWorkers, g_seed);
  Key key_buf[kRouteBatchSize];
  uint32_t simd_buf[kRouteBatchSize];
  uint32_t scalar_buf[kRouteBatchSize];
  uint64_t simd_acc = 0xcbf29ce484222325ULL;
  uint64_t scalar_acc = 0xcbf29ce484222325ULL;
  size_t pos = 0;
  size_t chunk = 0;
  uint32_t member = 0;
  while (pos < kEquivalenceMessages) {
    const size_t len =
        std::min(chunk_sizes[chunk++ % 4], kEquivalenceMessages - pos);
    for (size_t j = 0; j < len; ++j) key_buf[j] = keys[(pos + j) & mask];
    family.BucketBatch(member, key_buf, simd_buf, len);
    family.BucketBatchScalar(member, key_buf, scalar_buf, len);
    for (size_t j = 0; j < len; ++j) {
      PKGSTREAM_CHECK(simd_buf[j] == scalar_buf[j])
          << "BucketBatch (" << simd::SimdLevelName(simd::ActiveSimdLevel())
          << ") diverged from the scalar reference at message " << pos + j;
      simd_acc = Fmix64(simd_acc ^ simd_buf[j]);
      scalar_acc = Fmix64(scalar_acc ^ scalar_buf[j]);
    }
    pos += len;
    member ^= 1;
  }
  report->AddMetric("equiv/hash/simd_checksum",
                    static_cast<uint32_t>(simd_acc));
  report->AddMetric("equiv/hash/scalar_checksum",
                    static_cast<uint32_t>(scalar_acc));
}

/// ConsoleReporter that additionally lands every per-iteration run's
/// items/sec in the structured report's host_metrics.
class ReportingConsoleReporter final : public benchmark::ConsoleReporter {
 public:
  explicit ReportingConsoleReporter(bench::Report* report)
      : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      // No error/skip flag check: the field was renamed across
      // google-benchmark 1.8 (error_occurred -> skipped); an errored or
      // skipped run never reaches SetItemsProcessed, so the counter's
      // absence already filters it on every library version.
      if (run.run_type != Run::RT_Iteration || run.iterations == 0) continue;
      auto it = run.counters.find("items_per_second");
      if (it == run.counters.end()) continue;
      report_->AddHostMetric(run.benchmark_name() + "/items_per_sec",
                             it->second);
    }
  }

 private:
  bench::Report* report_;
};

std::string FormatMps(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fM", v / 1e6);
  return buf;
}

/// Renders the scalar-vs-batch comparison (the one-line CI summary plus a
/// per-technique table) from the collected host metrics.
void AddSummary(bench::Report* report) {
  const auto& host = report->ToJson();
  const JsonValue* host_metrics = host.FindObject("host_metrics");
  auto rate = [&](const std::string& key) -> double {
    if (host_metrics == nullptr) return 0;
    return host_metrics->NumberOr(key, 0);
  };
  Table table({"technique", "scalar msg/s", "batch msg/s", "speedup"});
  for (const Case& c : kCases) {
    const double scalar =
        rate(std::string("route/") + c.name + "/scalar/items_per_sec");
    const double batch =
        rate(std::string("route/") + c.name + "/batch/items_per_sec");
    if (scalar <= 0 || batch <= 0) continue;
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx", batch / scalar);
    table.AddRow({c.name, FormatMps(scalar), FormatMps(batch), speedup});
    report->AddHostMetric(std::string("summary/") + c.name +
                              "/batch_speedup",
                          batch / scalar);
  }
  report->AddTable(std::move(table));
  const double pkg_scalar = rate("route/PKG-L/scalar/items_per_sec");
  const double pkg_batch = rate("route/PKG-L/batch/items_per_sec");
  const double kg_scalar = rate("route/Hashing/scalar/items_per_sec");
  const double kg_batch = rate("route/Hashing/batch/items_per_sec");
  if (pkg_scalar > 0 && pkg_batch > 0) {
    char line[256];
    std::snprintf(line, sizeof(line),
                  "scalar-vs-batch msgs/sec: PKG-L %s -> %s (%.2fx), "
                  "Hashing %s -> %s (%.2fx)",
                  FormatMps(pkg_scalar).c_str(), FormatMps(pkg_batch).c_str(),
                  pkg_batch / pkg_scalar, FormatMps(kg_scalar).c_str(),
                  FormatMps(kg_batch).c_str(),
                  kg_scalar > 0 ? kg_batch / kg_scalar : 0.0);
    report->AddText(line);
  }
  const double hash_simd = rate("hash/BucketBatch/simd/items_per_sec");
  const double hash_scalar = rate("hash/BucketBatch/scalar/items_per_sec");
  if (hash_simd > 0 && hash_scalar > 0) {
    report->AddHostMetric("summary/hash_bucket_batch/simd_speedup",
                          hash_simd / hash_scalar);
    char line[256];
    std::snprintf(line, sizeof(line),
                  "simd-vs-scalar msgs/sec: BucketBatch %s -> %s (%.2fx) at "
                  "dispatch level '%s'",
                  FormatMps(hash_scalar).c_str(), FormatMps(hash_simd).c_str(),
                  hash_simd / hash_scalar,
                  simd::SimdLevelName(simd::ActiveSimdLevel()));
    report->AddText(line);
  }
}

}  // namespace
}  // namespace pkgstream

int main(int argc, char** argv) {
  using namespace pkgstream;
  bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  g_seed = args.seed;
  const std::string title =
      "Routing microbenchmark: scalar vs batched hot path";
  const std::string paper_ref =
      "Section V-B 'a single function and less than 20 lines of code'; "
      "ROADMAP 'invariant coverage' (bench_micro_route)";
  bench::PrintBanner(title, paper_ref, args);
  bench::Report report("bench_micro_route", title, paper_ref, args);

  // Deterministic metrics first: aborts (and fails the gate) on any
  // scalar-vs-batch or SIMD-vs-scalar divergence.
  AddEquivalenceMetrics(&report);
  AddSimdEquivalenceMetrics(&report);

  // The CPU feature level the dispatch selected on this host (0 scalar,
  // 1 AVX2, 2 AVX-512) — host-dependent by nature, so a host metric; the
  // checksums above prove the level cannot change the routed bits.
  report.AddHostMetric(
      "simd/level", static_cast<double>(static_cast<int>(
                        simd::ActiveSimdLevel())));

  RegisterAllBenchmarks();

  // Forward --benchmark_* flags; pick a scale-appropriate min_time cap
  // unless the caller chose one (keeps the ctest smoke run and the repro
  // pipeline fast).
  std::vector<std::string> gb_args = {argv[0]};
  bool min_time_given = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_", 12) == 0) {
      gb_args.push_back(argv[i]);
      if (std::strncmp(argv[i], "--benchmark_min_time", 20) == 0) {
        min_time_given = true;
      }
    }
  }
  if (!min_time_given) {
    gb_args.push_back(args.quick
                          ? "--benchmark_min_time=0.02"
                          : (args.full ? "--benchmark_min_time=2.0"
                                       : "--benchmark_min_time=0.25"));
  }
  std::vector<char*> gb_argv;
  gb_argv.reserve(gb_args.size());
  for (std::string& a : gb_args) gb_argv.push_back(a.data());
  int gb_argc = static_cast<int>(gb_argv.size());
  benchmark::Initialize(&gb_argc, gb_argv.data());

  ReportingConsoleReporter reporter(&report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  AddSummary(&report);
  return bench::Finish(report, args);
}
