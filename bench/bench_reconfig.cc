// Copyright 2026 The pkgstream Authors.
// Fault injection + live reconfiguration through the real sharded engine
// (ROADMAP "elastic scaling and live key migration"; ISSUE 10): each cell
// replays a byte-identical checksummed open-loop Poisson schedule through
// 1 source -> W kVirtualService LatencySinks while a FaultPlan kills
// workers 1-3, stalls worker 0, slows worker 4 to half speed, and rejoins
// the crashed workers — at W in {50, 500} x {PKG-L, D-Choices, SG,
// KG+migration}.
//
// The outage timeline is proportional to the schedule horizon H:
//
//   t=0 ........ 0.3H ............. 0.6H ........... H
//   | steady     | crash 1,2,3      | rejoin 1,2,3   |
//   |            | stall 0, slow 4  |                |
//   |  phase 0   |     phase 1      |    phase 2     |
//   |  (steady)  |    (outage)      |   (recovery)   |
//
// (stall and slowdown windows end mid-outage, so their backlog drains
// before the recovery phase starts and phase 2 isolates the *crash*
// recovery). Every phase's latency quantiles are deterministic: routing
// events are applied at exact schedule positions (the driver splits
// batches at plan boundaries) and service faults fold into the virtual
// Lindley recursion, so the committed baseline exact-pins the numbers on
// any host, SIMD on or off, sanitizers on or off.
//
// The baseline gates the robustness claims:
//  * conservation — zero loss across crash + rejoin, every cell;
//  * outage isolation — no message scheduled during [t1, t2) lands on a
//    crashed worker;
//  * recovery — post-rejoin p99 within a small factor of steady-state p99
//    for the PKG family and SG (the cluster heals, queues do not linger);
//  * the stall is visible — the outage phase's max latency carries the
//    injected vacation (the fault actually bit);
//  * KG+migration — crash-driven failovers happen, the rejoin hands every
//    key back (keys_moved >= 2x failovers), and per-worker load stays
//    bounded during the outage while the live migration path is active.
//
// Offered load is 20% of aggregate capacity with mild skew (Zipf 0.5):
// steady state is comfortable everywhere, so any latency signature in
// phases 1-2 is the fault plan's doing, not an overload artifact (the
// saturation regime is bench_threaded_manyworkers' subject).

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "bench/report.h"
#include "common/logging.h"
#include "engine/fault_injection.h"
#include "engine/open_loop.h"
#include "engine/threaded_runtime.h"
#include "partition/factory.h"
#include "partition/rebalancing.h"
#include "stats/latency_histogram.h"
#include "workload/arrival_schedule.h"
#include "workload/key_stream.h"
#include "workload/static_distribution.h"
#include "workload/zipf.h"

namespace pkgstream {
namespace {

/// Replays a pre-generated arrival-time vector (every technique in a cell
/// is offered the byte-identical schedule; the checksum covers exactly what
/// was injected).
class VectorSchedule final : public workload::ArrivalSchedule {
 public:
  explicit VectorSchedule(const std::vector<uint64_t>* times)
      : times_(times) {}

  uint64_t NextMicros() override {
    PKGSTREAM_CHECK(pos_ < times_->size());
    return (*times_)[pos_++];
  }

  void NextBatchMicros(uint64_t* out, size_t n) override {
    PKGSTREAM_CHECK(pos_ + n <= times_->size());
    for (size_t i = 0; i < n; ++i) out[i] = (*times_)[pos_ + i];
    pos_ += n;
  }

  std::string Name() const override { return "replay"; }

 private:
  const std::vector<uint64_t>* times_;
  size_t pos_ = 0;
};

/// Replays a pre-generated key vector (same rationale as VectorSchedule).
class VectorKeyStream final : public workload::KeyStream {
 public:
  VectorKeyStream(const std::vector<Key>* keys, uint64_t key_space)
      : keys_(keys), key_space_(key_space) {}

  Key Next() override {
    PKGSTREAM_CHECK(pos_ < keys_->size());
    return (*keys_)[pos_++];
  }

  void NextBatch(Key* out, size_t n) override {
    PKGSTREAM_CHECK(pos_ + n <= keys_->size());
    for (size_t i = 0; i < n; ++i) out[i] = (*keys_)[pos_ + i];
    pos_ += n;
  }

  uint64_t KeySpace() const override { return key_space_; }
  std::string Name() const override { return "replay"; }

 private:
  const std::vector<Key>* keys_;
  uint64_t key_space_;
  size_t pos_ = 0;
};

partition::PartitionerConfig ConfigFor(partition::Technique technique,
                                       uint32_t workers, uint64_t seed) {
  partition::PartitionerConfig config;
  config.technique = technique;
  config.sources = 1;
  config.workers = workers;
  config.seed = seed;
  if (technique == partition::Technique::kDChoices) {
    config.sketch_capacity = 2 * workers;
    config.heavy_threshold_factor = 0.5;
    config.heavy_min_messages = 100;
  }
  if (technique == partition::Technique::kRebalancing) {
    // The live-migration cell: the periodic rebalancer keeps smoothing
    // alive workers *during* the outage, on top of crash failovers.
    config.rebalance_period = 2000;
    config.rebalance_threshold = 0.10;
  }
  return config;
}

struct CellResult {
  stats::LatencyHistogram steady{1ULL << 30, 32};
  stats::LatencyHistogram during{1ULL << 30, 32};
  stats::LatencyHistogram recovery{1ULL << 30, 32};
  uint64_t count = 0;                ///< total latencies recorded
  uint64_t processed = 0;            ///< total messages processed
  uint64_t reconfigs = 0;            ///< routing events the injector applied
  uint64_t outage_dead_routed = 0;   ///< phase-1 records on crashed workers
  double during_imbalance = 0;       ///< max/avg phase-1 load, alive workers
  partition::RebalancingStats migration;  ///< KG+migration cells only
};

CellResult RunCell(const partition::PartitionerConfig& config,
                   uint32_t workers, size_t shards, uint64_t service_us,
                   const engine::FaultPlan& plan, uint64_t t1, uint64_t t2,
                   const std::vector<uint32_t>& crashed,
                   const std::vector<uint64_t>& times,
                   const std::vector<Key>& keys, uint64_t key_space) {
  engine::Topology topology;
  engine::NodeId spout = topology.AddSpout("src", /*parallelism=*/1);
  engine::LatencySink::Options sink_options;
  sink_options.model = engine::LatencySink::ServiceModel::kVirtualService;
  sink_options.service_us = service_us;
  sink_options.fault_plan = &plan;
  sink_options.phase_boundaries_us = {t1, t2};
  engine::NodeId sink = topology.AddOperator(
      "sink", engine::LatencySink::MakeFactory(sink_options), workers);
  PKGSTREAM_CHECK_OK(topology.Connect(spout, sink, config));
  engine::ThreadedRuntimeOptions options;
  options.queue_capacity = 128;
  options.shards = shards;
  auto rt = engine::ThreadedRuntime::Create(&topology, options);
  PKGSTREAM_CHECK_OK(rt.status());

  engine::OpenLoopClock clock;
  engine::OpenLoopOptions driver_options;
  driver_options.pace = false;
  engine::OpenLoopDriver driver(rt->get(), spout, &clock, driver_options);
  VectorSchedule schedule(&times);
  VectorKeyStream key_stream(&keys, key_space);
  engine::OpenLoopDriver::Source source;
  source.source = 0;
  source.schedule = &schedule;
  source.keys = &key_stream;
  source.messages = times.size();
  source.faults = &plan;
  source.fault_target = sink;
  auto reports = driver.Run({source});
  (*rt)->Finish();

  CellResult result;
  result.reconfigs = reports[0].reconfigs_applied;
  result.steady = engine::LatencySink::MergedPhaseHistogram(
      rt->get(), sink, workers, sink_options, 0);
  result.during = engine::LatencySink::MergedPhaseHistogram(
      rt->get(), sink, workers, sink_options, 1);
  result.recovery = engine::LatencySink::MergedPhaseHistogram(
      rt->get(), sink, workers, sink_options, 2);
  result.count = result.steady.count() + result.during.count() +
                 result.recovery.count();
  for (uint64_t n : (*rt)->Processed(sink)) result.processed += n;

  // Outage accounting from the per-instance phase histograms: phase-1
  // records on crashed workers (must be zero — routed before t1, a message
  // scheduled in the outage can only reach an alive worker) and the
  // max/avg load over the workers that stayed up.
  uint64_t alive_max = 0, alive_sum = 0;
  uint32_t alive_n = 0;
  for (uint32_t w = 0; w < workers; ++w) {
    auto* op =
        dynamic_cast<engine::LatencySink*>((*rt)->GetOperator(sink, w));
    PKGSTREAM_CHECK(op != nullptr);
    const uint64_t n = op->phase_histogram(1).count();
    if (std::find(crashed.begin(), crashed.end(), w) != crashed.end()) {
      result.outage_dead_routed += n;
    } else {
      alive_max = std::max(alive_max, n);
      alive_sum += n;
      ++alive_n;
    }
  }
  result.during_imbalance =
      alive_sum == 0 ? 0.0
                     : static_cast<double>(alive_max) /
                           (static_cast<double>(alive_sum) / alive_n);

  if (config.technique == partition::Technique::kRebalancing) {
    auto* kg = dynamic_cast<const partition::RebalancingKeyGrouping*>(
        (*rt)->GetPartitioner(spout, sink, 0));
    PKGSTREAM_CHECK(kg != nullptr);
    result.migration = kg->stats();
  }
  return result;
}

std::string FormatUs(uint64_t us) {
  char buf[32];
  if (us >= 10000) {
    std::snprintf(buf, sizeof(buf), "%.1fms", static_cast<double>(us) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lluus",
                  static_cast<unsigned long long>(us));
  }
  return buf;
}

}  // namespace
}  // namespace pkgstream

int main(int argc, char** argv) {
  using namespace pkgstream;
  Flags flags;
  Status s = Flags::Parse(argc, argv, &flags);
  if (!s.ok()) {
    std::cerr << "flag error: " << s << "\n";
    return 2;
  }
  bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  const char* title =
      "Fault injection + live reconfiguration: crash/stall/rejoin at "
      "W=50-500";
  const char* paper_ref =
      "Nasir et al. 2015 Section V methodology under fail-stop faults; "
      "Section VIII rebalancing question answered with live migration";
  bench::PrintBanner(title, paper_ref, args);
  bench::Report report("bench_reconfig", title, paper_ref, args);

  uint64_t messages = args.quick ? 20000 : 40000;
  if (args.full) messages = 100000;
  messages = static_cast<uint64_t>(
      flags.GetInt("messages", static_cast<int64_t>(messages)));
  const uint64_t service_us =
      static_cast<uint64_t>(flags.GetInt("service_us", 5000));
  const size_t shards = static_cast<size_t>(flags.GetInt("shards", 8));
  PKGSTREAM_CHECK(messages >= 1000 && service_us > 0 && shards > 0);

  const std::vector<uint32_t> worker_counts = {50, 500};
  const std::vector<std::pair<partition::Technique, std::string>> techniques =
      {{partition::Technique::kPkgLocal, "PKG-L"},
       {partition::Technique::kDChoices, "D-Choices"},
       {partition::Technique::kShuffle, "SG"},
       {partition::Technique::kRebalancing, "KG-mig"}};
  const std::vector<uint32_t> crashed = {1, 2, 3};

  // Mild skew: the head key stays well under every worker's capacity at
  // both W (see file comment) — steady state is never saturated.
  auto dist = std::make_shared<const workload::StaticDistribution>(
      workload::ZipfWeights(1000, 0.5), "zipf(0.5,K=1000)");

  report.AddMetric("messages_per_cell", static_cast<double>(messages));
  report.AddMetric("service_us", static_cast<double>(service_us));
  report.AddMetric("shards", static_cast<double>(shards));

  std::cout << "shards=" << shards << "  service_us=" << service_us
            << "  messages_per_cell=" << messages << "  keys=" << dist->name()
            << " (p1=" << dist->P1() << ")\n"
            << "faults: crash workers 1-3 at 0.3H, stall worker 0 + slow "
               "worker 4 (x2) for 0.15H, rejoin at 0.6H\n\n";

  Table table({"W", "technique", "steady p99", "outage p99", "outage max",
               "recovery p99", "recovery/steady", "failovers"});
  uint64_t total_count = 0;
  uint64_t total_reconfigs = 0;
  for (uint32_t w : worker_counts) {
    // Offered load: 20% of aggregate capacity, so the schedule horizon is
    // H = messages / load and the outage timeline scales with --messages.
    const uint64_t load =
        static_cast<uint64_t>(w) * (1000000 / service_us) / 5;
    const uint64_t horizon_us = messages * 1000000 / load;
    const uint64_t t1 = 3 * horizon_us / 10;
    const uint64_t t2 = 6 * horizon_us / 10;
    const uint64_t window_us = (t2 - t1) / 2;  // stall/slowdown length

    std::vector<engine::FaultEvent> events;
    for (uint32_t c : crashed) {
      events.push_back({engine::FaultKind::kCrash, c, t1, 0, 1.0});
    }
    events.push_back({engine::FaultKind::kStall, 0, t1, window_us, 1.0});
    events.push_back(
        {engine::FaultKind::kSlowdown, 4, t1, window_us, 2.0});
    for (uint32_t c : crashed) {
      events.push_back({engine::FaultKind::kRejoin, c, t2, 0, 1.0});
    }
    auto plan = engine::FaultPlan::Create(w, std::move(events));
    PKGSTREAM_CHECK_OK(plan.status());

    std::vector<uint64_t> times(messages);
    std::vector<Key> keys(messages);
    workload::PoissonSchedule schedule(static_cast<double>(load),
                                       args.seed ^ w);
    schedule.NextBatchMicros(times.data(), messages);
    workload::IidKeyStream key_stream(dist, args.seed * 31 + w);
    key_stream.NextBatch(keys.data(), messages);
    uint64_t sched_sum = 0, key_sum = 0;
    for (uint64_t t : times) sched_sum += t;
    for (Key k : keys) key_sum += k;
    const std::string w_prefix = "W=" + std::to_string(w) + "/";
    report.AddMetric(w_prefix + "load", static_cast<double>(load));
    report.AddMetric(w_prefix + "t1_us", static_cast<double>(t1));
    report.AddMetric(w_prefix + "stall_us", static_cast<double>(window_us));
    report.AddMetric(w_prefix + "sched_checksum",
                     static_cast<double>(sched_sum & 0xffffffffULL));
    report.AddMetric(w_prefix + "key_checksum",
                     static_cast<double>(key_sum & 0xffffffffULL));

    for (const auto& [technique, name] : techniques) {
      CellResult cell =
          RunCell(ConfigFor(technique, w, args.seed), w, shards, service_us,
                  *plan, t1, t2, crashed, times, keys, dist->K());
      PKGSTREAM_CHECK(cell.processed == messages && cell.count == messages)
          << "message loss across crash+rejoin: injected " << messages
          << ", processed " << cell.processed << ", recorded " << cell.count;
      const std::string prefix = w_prefix + name + "/";
      report.AddMetric(prefix + "count", static_cast<double>(cell.count));
      report.AddMetric(prefix + "reconfigs",
                       static_cast<double>(cell.reconfigs));
      report.AddMetric(prefix + "outage_dead_routed",
                       static_cast<double>(cell.outage_dead_routed));
      report.AddMetric(prefix + "steady_p99",
                       static_cast<double>(cell.steady.P99()));
      report.AddMetric(prefix + "during_p99",
                       static_cast<double>(cell.during.P99()));
      report.AddMetric(prefix + "during_max",
                       static_cast<double>(cell.during.max()));
      report.AddMetric(prefix + "during_imbalance", cell.during_imbalance);
      report.AddMetric(prefix + "recovery_p50",
                       static_cast<double>(cell.recovery.P50()));
      report.AddMetric(prefix + "recovery_p99",
                       static_cast<double>(cell.recovery.P99()));
      if (technique == partition::Technique::kRebalancing) {
        report.AddMetric(prefix + "failovers",
                         static_cast<double>(cell.migration.failovers));
        report.AddMetric(prefix + "keys_moved",
                         static_cast<double>(cell.migration.keys_moved));
        report.AddMetric(prefix + "state_moved",
                         static_cast<double>(cell.migration.state_moved));
      }
      total_count += cell.count;
      total_reconfigs += cell.reconfigs;
      const double ratio = cell.steady.P99() == 0
                               ? 0.0
                               : static_cast<double>(cell.recovery.P99()) /
                                     static_cast<double>(cell.steady.P99());
      char ratio_buf[16];
      std::snprintf(ratio_buf, sizeof(ratio_buf), "%.2fx", ratio);
      table.AddRow(
          {std::to_string(w), name, FormatUs(cell.steady.P99()),
           FormatUs(cell.during.P99()), FormatUs(cell.during.max()),
           FormatUs(cell.recovery.P99()), ratio_buf,
           technique == partition::Technique::kRebalancing
               ? std::to_string(cell.migration.failovers)
               : "-"});
    }
  }
  report.AddTable(std::move(table));

  report.AddText(
      "Expected shape: steady state is comfortable (20% utilization, mild\n"
      "skew), so phase 0 p99 sits near the 5ms service time everywhere.\n"
      "During the outage the crashed workers' load spreads over the\n"
      "survivors, the stalled worker's vacation shows up as the phase-1\n"
      "max, and the slowed worker doubles its service time — p99 rises but\n"
      "nothing melts down. After the rejoin the cluster heals: recovery\n"
      "p99 returns to within a small factor of steady for the PKG family\n"
      "and SG. KG+migration pays for the same robustness with state\n"
      "transfer: crash-driven failovers during the outage, every key\n"
      "handed back at rejoin (keys_moved >= 2x failovers), imbalance\n"
      "bounded while the live migration path is active. Every number is\n"
      "deterministic (virtual-time service, schedule-position faults):\n"
      "the baseline exact-pins all quantiles.");

  // One greppable line for the CI reproduction-gate job.
  std::cout << "[bench_reconfig] reconfig-complete:"
            << " cells=" << worker_counts.size() * techniques.size()
            << " crashed_per_cell=" << crashed.size()
            << " reconfigs=" << total_reconfigs
            << " conserved=" << total_count << "\n";
  return bench::Finish(report, args);
}
