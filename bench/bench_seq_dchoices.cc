// Copyright 2026 The pkgstream Authors.
// The sequel's headline experiment ("When Two Choices Are Not Enough",
// Nasir et al. 2016): at 100-1000 workers the head key's share exceeds
// 2/W, so plain PKG's two candidates must each absorb p1/2 of the stream
// and the relative max load blows up linearly in W — while D-Choices
// (adaptive per-heavy-key choice counts) and W-Choices (full choice for
// the head) stay within an epsilon of shuffle grouping, at a replication
// (memory / aggregation) overhead close to plain PKG's instead of SG's
// everything-everywhere. This bench sweeps PKG vs D-Choices vs W-Choices
// vs SG vs KG at W in {50, 100, 500, 1000} on WP and on a high-skew Zipf
// (s = 1.5, p1 ~ 0.39) and reports, per cell:
//   rel_max_load  = max worker load * W / messages  (SG -> ~1.0)
//   replication   = mean distinct workers per key   (KG == 1)
// The committed baseline encodes the sequel's shape as invariants.

#include <algorithm>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "bench/bench_util.h"
#include "bench/report.h"
#include "partition/factory.h"
#include "simulation/experiments.h"
#include "workload/dataset.h"
#include "workload/static_distribution.h"
#include "workload/zipf.h"

namespace pkgstream {
namespace {

struct SweepCell {
  double rel_max_load = 0.0;
  double replication = 0.0;
};

/// Routes `messages` keys of `stream` through one partitioner built from
/// `config` (single source: the per-source sketch shares are then exactly
/// the global shares the sequel's analysis is stated in), tracking the
/// final load vector and the distinct (key, worker) placement pairs.
Result<SweepCell> RunSweep(const partition::PartitionerConfig& config,
                           workload::KeyStream* stream, uint64_t messages) {
  PKGSTREAM_ASSIGN_OR_RETURN(auto partitioner,
                             partition::MakePartitioner(config));
  std::vector<uint64_t> loads(config.workers, 0);
  std::unordered_set<uint64_t> pairs;  // key * 2048 + worker (W <= 1024)
  std::unordered_set<Key> keys_seen;
  constexpr size_t kChunk = 1024;
  std::vector<Key> keys(kChunk);
  std::vector<WorkerId> out(kChunk);
  uint64_t done = 0;
  while (done < messages) {
    const size_t len =
        static_cast<size_t>(std::min<uint64_t>(kChunk, messages - done));
    stream->NextBatch(keys.data(), len);
    partitioner->RouteBatch(0, keys.data(), out.data(), len);
    for (size_t i = 0; i < len; ++i) {
      ++loads[out[i]];
      keys_seen.insert(keys[i]);
      pairs.insert(keys[i] * 2048 + out[i]);
    }
    done += len;
  }
  uint64_t max_load = 0;
  for (uint64_t l : loads) max_load = std::max(max_load, l);
  SweepCell cell;
  cell.rel_max_load = static_cast<double>(max_load) *
                      static_cast<double>(config.workers) /
                      static_cast<double>(messages);
  cell.replication = static_cast<double>(pairs.size()) /
                     static_cast<double>(std::max<size_t>(keys_seen.size(), 1));
  return cell;
}

}  // namespace
}  // namespace pkgstream

int main(int argc, char** argv) {
  using namespace pkgstream;
  bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  bench::PrintBanner(
      "Sequel: D-Choices / W-Choices vs PKG at 100-1000 workers",
      "Nasir et al. 2016 (When Two Choices Are Not Enough), Figs. 5-7",
      args);
  bench::Report report(
      "bench_seq_dchoices",
      "Sequel: D-Choices / W-Choices vs PKG at 100-1000 workers",
      "Nasir et al. 2016 (When Two Choices Are Not Enough), Figs. 5-7",
      args);

  const std::vector<uint32_t> worker_counts = {50, 100, 500, 1000};
  const partition::Technique techniques[] = {
      partition::Technique::kPkgLocal, partition::Technique::kDChoices,
      partition::Technique::kWChoices, partition::Technique::kShuffle,
      partition::Technique::kHashing,
  };

  // Two streams: the paper's WP (p1 ~ 9%, past the wall from W ~ 50) and a
  // harsher synthetic Zipf s = 1.5 (p1 ~ 39%, past the wall everywhere).
  struct StreamSpec {
    const char* symbol;
    bool is_wp;
  };
  const StreamSpec stream_specs[] = {{"WP", true}, {"ZF15", false}};

  for (const StreamSpec& spec : stream_specs) {
    uint64_t messages;
    double wp_scale = 0.0;
    std::shared_ptr<const workload::StaticDistribution> zipf_dist;
    if (spec.is_wp) {
      const auto& wp = workload::GetDataset(workload::DatasetId::kWP);
      wp_scale = simulation::DefaultScale(wp.id, args.full) *
                 (args.quick ? 0.2 : 1.0);
      messages = workload::ScaledMessages(wp, wp_scale);
    } else {
      zipf_dist = std::make_shared<const workload::StaticDistribution>(
          workload::ZipfWeights(10000, 1.5), "zipf-1.5");
      messages = args.quick ? 200000 : 1000000;
    }

    std::vector<std::string> header = {std::string(spec.symbol) +
                                       " technique / W"};
    for (uint32_t w : worker_counts) {
      header.push_back("W=" + std::to_string(w) + " max*W/m");
    }
    for (uint32_t w : worker_counts) {
      header.push_back("W=" + std::to_string(w) + " repl");
    }
    Table table(header);
    for (auto technique : techniques) {
      const std::string name = partition::TechniqueName(technique);
      std::vector<std::string> row = {name};
      std::vector<std::string> repl_cells;
      for (uint32_t w : worker_counts) {
        workload::KeyStreamPtr wp_stream;
        std::unique_ptr<workload::KeyStream> stream;
        if (spec.is_wp) {
          auto made = workload::MakeKeyStream(
              workload::GetDataset(workload::DatasetId::kWP), wp_scale,
              args.seed);
          if (!made.ok()) {
            std::cerr << made.status() << "\n";
            return 1;
          }
          wp_stream = std::move(*made);
        } else {
          stream = std::make_unique<workload::IidKeyStream>(zipf_dist,
                                                            args.seed);
        }
        partition::PartitionerConfig config;
        config.technique = technique;
        config.sources = 1;
        config.workers = w;
        config.seed = args.seed;
        // Flag heavy from share > 1/W (half the Section IV wall): a key
        // just under the threshold keeps only base_choices candidates,
        // and when those two hashes collide its whole share lands on ONE
        // worker — flagging from the average share caps that worst case
        // at ~1x the mean. Capacity 2W guarantees every key above 1/W a
        // SPACESAVING counter.
        if (technique == partition::Technique::kDChoices) {
          config.heavy_threshold_factor = 0.5;
        }
        config.sketch_capacity = 2 * w;
        auto cell = RunSweep(
            config, spec.is_wp ? wp_stream.get() : stream.get(), messages);
        if (!cell.ok()) {
          std::cerr << cell.status() << "\n";
          return 1;
        }
        const std::string prefix = std::string(spec.symbol) + "/" + name +
                                   "/W=" + std::to_string(w);
        report.AddMetric(prefix + "/rel_max_load", cell->rel_max_load);
        report.AddMetric(prefix + "/replication", cell->replication);
        row.push_back(FormatCompact(cell->rel_max_load));
        repl_cells.push_back(FormatCompact(cell->replication));
      }
      row.insert(row.end(), repl_cells.begin(), repl_cells.end());
      table.AddRow(row);
    }
    report.AddTable(std::move(table));
  }

  report.AddText(
      "Expected shape (the sequel's claim): PKG's relative max load grows\n"
      "~ p1*W/2 once p1 > 2/W — past ~100 workers it leaves the balanced\n"
      "regime entirely — while D-Choices and W-Choices stay within the\n"
      "epsilon slack of shuffle grouping at every W, and their replication\n"
      "stays a small multiple of plain PKG's (vs SG's every-worker\n"
      "spread). KG replicates nothing and balances nothing.");

  // One greppable line for the CI reproduction-gate job.
  std::cout << "[bench_seq_dchoices] sequel-sweep-complete:"
            << " techniques=5 workers=50..1000 datasets=WP,ZF15\n";
  return bench::Finish(report, args);
}
