// Copyright 2026 The pkgstream Authors.
// Reproduces Table I: dataset summary (messages, keys, p1%).
//
// Paper values (full scale):
//   WP 22M/2.9M/9.32  TW 1.2G/31M/2.67  CT 690k/2.9k/3.29
//   LN1 10M/16k/14.71 LN2 10M/1.1k/7.01 LJ 69M/4.9M/0.29
//   SL1 905k/77k/3.28 SL2 948k/82k/3.11
// Default run uses scaled-down synthetic equivalents; m/K ratios and p1
// are the preserved quantities (see docs/DESIGN.md §3).

#include "bench/bench_util.h"
#include "bench/report.h"
#include "simulation/experiments.h"

int main(int argc, char** argv) {
  using namespace pkgstream;
  bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  bench::PrintBanner("Table I: dataset statistics",
                     "Nasir et al., ICDE 2015, Table I", args);
  bench::Report report("bench_table1_datasets", "Table I: dataset statistics",
                       "Nasir et al., ICDE 2015, Table I", args);

  auto rows = simulation::RunTable1(args.seed, args.full);
  if (!rows.ok()) {
    std::cerr << rows.status() << "\n";
    return 1;
  }
  Table table({"Dataset", "Messages", "Keys", "p1(%) measured",
               "p1(%) paper", "scale"});
  for (const auto& row : *rows) {
    table.AddRow({row.symbol, FormatWithCommas(row.messages),
                  FormatWithCommas(row.keys), FormatFixed(row.p1_percent, 2),
                  FormatFixed(row.paper_p1_percent, 2),
                  FormatFixed(row.scale, 3)});
    const std::string prefix = row.symbol + "/";
    report.AddMetric(prefix + "messages", static_cast<double>(row.messages));
    report.AddMetric(prefix + "keys", static_cast<double>(row.keys));
    report.AddMetric(prefix + "p1_percent", row.p1_percent);
    report.AddMetric(prefix + "paper_p1_percent", row.paper_p1_percent);
  }
  report.AddTable(std::move(table));
  return bench::Finish(report, args);
}
