// Copyright 2026 The pkgstream Authors.
// Reproduces Table II: average imbalance on WP and TW for W in
// {5,10,50,100}, techniques PKG / Off-Greedy / On-Greedy / PoTC / Hashing.
//
// Paper shape to check: Hashing worst everywhere; PoTC better but still bad
// when W grows; On-Greedy close to Off-Greedy; PKG comparable to or better
// than Off-Greedy; everything blows up once W crosses the O(1/p1) limit
// (~50 for WP, ~100 for TW).

#include <map>

#include "bench/bench_util.h"
#include "bench/report.h"
#include "simulation/experiments.h"

int main(int argc, char** argv) {
  using namespace pkgstream;
  bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  bench::PrintBanner("Table II: average imbalance by technique",
                     "Nasir et al., ICDE 2015, Table II", args);
  bench::Report report("bench_table2_imbalance",
                       "Table II: average imbalance by technique",
                       "Nasir et al., ICDE 2015, Table II", args);

  simulation::Table2Options options;
  options.seed = args.seed;
  options.full = args.full;
  if (args.quick) options.workers = {5, 10};

  auto cells = simulation::RunTable2(options);
  if (!cells.ok()) {
    std::cerr << cells.status() << "\n";
    return 1;
  }

  // Pivot: one block per dataset, rows = techniques, columns = W.
  for (const std::string dataset : {"WP", "TW"}) {
    std::vector<std::string> header = {"Technique (" + dataset + ")"};
    for (uint32_t w : options.workers) header.push_back("W=" + std::to_string(w));
    Table table(header);
    for (auto technique : options.techniques) {
      std::string name = partition::TechniqueName(technique);
      if (name == "PKG-L") name = "PKG";
      std::vector<std::string> row = {name};
      for (uint32_t w : options.workers) {
        double value = -1;
        for (const auto& cell : *cells) {
          if (cell.dataset == dataset &&
              cell.technique == partition::TechniqueName(technique) &&
              cell.workers == w) {
            value = cell.avg_imbalance;
          }
        }
        report.AddMetric(dataset + "/" + name + "/W=" + std::to_string(w) +
                             "/avg_imbalance",
                         value);
        row.push_back(FormatCompact(value));
      }
      table.AddRow(row);
    }
    report.AddTable(std::move(table));
  }
  report.AddText(
      "Expected shape (paper): Hashing >> PoTC >= On-Greedy >= "
      "Off-Greedy >= PKG at small W;\n"
      "all techniques degrade sharply once W exceeds ~O(1/p1).");
  return bench::Finish(report, args);
}
