// Copyright 2026 The pkgstream Authors.
// The sequel's regime through the real engine (ROADMAP "sharded many-worker
// runtime"): W in {100, 500, 1000} worker instances executed on <= 8 shard
// threads (ThreadedRuntimeOptions::shards), per technique in
// {PKG-L, D-Choices, W-Choices, SG, KG}. Until this bench, the
// D-Choices / W-Choices family had only ever run through the *simulated*
// router sweep (bench_seq_dchoices); here every message crosses the actual
// lock-free mailboxes of a sharded ThreadedRuntime.
//
// Latency sweep (deterministic, baseline-pinned): each cell replays the
// byte-identical checksummed open-loop Poisson schedule + Zipf(1.5,K=1000)
// key sequence (the bench_latency_under_load methodology) through
// 1 source -> W kVirtualService LatencySinks with service_us = 5000 —
// per-worker capacity exactly 200 msgs/sec, host-independent. Offered load
// is 40*W msgs/sec (20% of aggregate capacity): nobody should hurt, except
// that a single head key carries p1 ~ 0.39 of the stream:
//
//   KG     the head's worker is offered ~0.39*40*W >> 200 msgs/sec —
//          saturated at every W; its queue grows for the whole cell.
//   PKG-L  the head is split over its TWO candidates (~0.195 share each):
//          still >> 200 msgs/sec at W >= 100 — the Section IV wall; the
//          sequel's point is that plain PKG fails exactly here.
//   D/W-Choices detect the head and spread it over d_k ~ p*W/eps (or all)
//          workers: every worker stays far below capacity and the tail
//          stays within a small factor of SG — the sequel's headline,
//          pinned by the committed baseline at W >= 500.
//
// With a single source the sharded runtime's routing and per-sink arrival
// orders are byte-identical to thread-per-instance mode
// (engine_threaded_sharded_test pins this), so the quantiles land in the
// deterministic "metrics" section and are exact-pinned on any host, under
// any sanitizer. D/W-Choices run with heavy_min_messages = 100 (vs the
// 1000-message default): these cells replay short streams and the warm-up
// transient — heavy keys still on the 2-choice path — must stay well under
// 1% of the stream so it cannot masquerade as steady-state tail.
//
// Throughput leg (host-dependent, host_metrics + host invariants): the
// multi-stage wordcount pipeline (2 spouts -> 8 counters -> 1 aggregator,
// PKG-L) run closed-loop twice — thread-per-instance vs shards=4 — must
// agree on totals (deterministic metric) and stay within a generous
// wall-clock factor of each other (ISSUE: "throughput per shard within a
// factor of the thread-per-instance mode at W = 8").

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "apps/wordcount.h"
#include "bench/bench_util.h"
#include "bench/report.h"
#include "common/logging.h"
#include "engine/open_loop.h"
#include "engine/threaded_runtime.h"
#include "partition/factory.h"
#include "stats/latency_histogram.h"
#include "workload/arrival_schedule.h"
#include "workload/key_stream.h"
#include "workload/static_distribution.h"
#include "workload/zipf.h"

namespace pkgstream {
namespace {

/// Replays a pre-generated arrival-time vector (so every technique in a cell
/// is offered the byte-identical schedule, and the checksum covers exactly
/// what was injected).
class VectorSchedule final : public workload::ArrivalSchedule {
 public:
  explicit VectorSchedule(const std::vector<uint64_t>* times)
      : times_(times) {}

  uint64_t NextMicros() override {
    PKGSTREAM_CHECK(pos_ < times_->size());
    return (*times_)[pos_++];
  }

  void NextBatchMicros(uint64_t* out, size_t n) override {
    PKGSTREAM_CHECK(pos_ + n <= times_->size());
    for (size_t i = 0; i < n; ++i) out[i] = (*times_)[pos_ + i];
    pos_ += n;
  }

  std::string Name() const override { return "replay"; }

 private:
  const std::vector<uint64_t>* times_;
  size_t pos_ = 0;
};

/// Replays a pre-generated key vector (same rationale as VectorSchedule).
class VectorKeyStream final : public workload::KeyStream {
 public:
  VectorKeyStream(const std::vector<Key>* keys, uint64_t key_space)
      : keys_(keys), key_space_(key_space) {}

  Key Next() override {
    PKGSTREAM_CHECK(pos_ < keys_->size());
    return (*keys_)[pos_++];
  }

  void NextBatch(Key* out, size_t n) override {
    PKGSTREAM_CHECK(pos_ + n <= keys_->size());
    for (size_t i = 0; i < n; ++i) out[i] = (*keys_)[pos_ + i];
    pos_ += n;
  }

  uint64_t KeySpace() const override { return key_space_; }
  std::string Name() const override { return "replay"; }

 private:
  const std::vector<Key>* keys_;
  uint64_t key_space_;
  size_t pos_ = 0;
};

/// Cell config, mirroring bench_seq_dchoices: heavy detection guaranteed
/// (sketch capacity 2W covers every key above the 1/W threshold), D-Choices
/// flagged from half the Section IV wall.
partition::PartitionerConfig ConfigFor(partition::Technique technique,
                                       uint32_t workers, uint64_t seed) {
  partition::PartitionerConfig config;
  config.technique = technique;
  config.sources = 1;
  config.workers = workers;
  config.seed = seed;
  config.sketch_capacity = 2 * workers;
  if (technique == partition::Technique::kDChoices) {
    config.heavy_threshold_factor = 0.5;
  }
  if (technique == partition::Technique::kDChoices ||
      technique == partition::Technique::kWChoices) {
    // Short replayed streams: keep the detection warm-up (heavy keys still
    // routing through 2 choices) well under 1% of the cell so the
    // steady-state tail quantiles are not a warm-up artifact.
    config.heavy_min_messages = 100;
  }
  return config;
}

struct CellResult {
  stats::LatencyHistogram hist{1ULL << 30, 32};
  uint64_t processed = 0;
  double wall_seconds = 0;
  uint64_t max_lag_us = 0;
};

CellResult RunCell(const partition::PartitionerConfig& config,
                   uint32_t workers, size_t shards, uint64_t service_us,
                   const std::vector<uint64_t>& times,
                   const std::vector<Key>& keys, uint64_t key_space,
                   bool pace) {
  engine::Topology topology;
  engine::NodeId spout = topology.AddSpout("src", /*parallelism=*/1);
  engine::LatencySink::Options sink_options;
  sink_options.model = engine::LatencySink::ServiceModel::kVirtualService;
  sink_options.service_us = service_us;
  engine::NodeId sink = topology.AddOperator(
      "sink", engine::LatencySink::MakeFactory(sink_options), workers);
  PKGSTREAM_CHECK_OK(topology.Connect(spout, sink, config));
  engine::ThreadedRuntimeOptions options;
  options.queue_capacity = 128;
  options.shards = shards;
  auto rt = engine::ThreadedRuntime::Create(&topology, options);
  PKGSTREAM_CHECK_OK(rt.status());

  engine::OpenLoopClock clock;
  engine::OpenLoopOptions driver_options;
  driver_options.pace = pace;
  engine::OpenLoopDriver driver(rt->get(), spout, &clock, driver_options);
  VectorSchedule schedule(&times);
  VectorKeyStream key_stream(&keys, key_space);
  engine::OpenLoopDriver::Source source;
  source.source = 0;
  source.schedule = &schedule;
  source.keys = &key_stream;
  source.messages = times.size();
  auto reports = driver.Run({source});
  (*rt)->Finish();

  CellResult result;
  result.hist = engine::LatencySink::MergedHistogram(rt->get(), sink, workers,
                                                     sink_options);
  for (uint64_t n : (*rt)->Processed(sink)) result.processed += n;
  result.wall_seconds = static_cast<double>(clock.NowMicros()) / 1e6;
  result.max_lag_us = reports[0].max_lag_us;
  return result;
}

struct WordCountResult {
  double msgs_per_sec = 0;
  uint64_t total = 0;  // sum of aggregator totals == messages injected
};

/// Closed-loop multi-stage run: 2 spouts -> `workers` counters (PKG-L) ->
/// 1 aggregator, one injector thread per spout instance.
WordCountResult RunWordCount(size_t shards, uint32_t workers,
                             uint64_t messages_per_source, uint64_t seed) {
  constexpr uint32_t kSources = 2;
  apps::WordCountTopology wc = apps::MakeWordCountTopology(
      partition::Technique::kPkgLocal, kSources, workers, /*tick_period=*/0,
      /*topk=*/5, seed);
  engine::ThreadedRuntimeOptions options;
  options.queue_capacity = 256;
  options.shards = shards;
  auto rt = engine::ThreadedRuntime::Create(&wc.topology, options);
  PKGSTREAM_CHECK_OK(rt.status());
  auto dist = std::make_shared<const workload::StaticDistribution>(
      workload::ZipfWeights(1000, 1.5), "zipf(1.5,K=1000)");
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> injectors;
  for (uint32_t s = 0; s < kSources; ++s) {
    injectors.emplace_back([&, s] {
      workload::IidKeyStream stream(dist, seed * 131 + s);
      constexpr size_t kBatch = 256;
      Key keys[kBatch];
      engine::Message batch[kBatch];
      for (uint64_t i = 0; i < messages_per_source;) {
        const size_t len = static_cast<size_t>(
            std::min<uint64_t>(kBatch, messages_per_source - i));
        stream.NextBatch(keys, len);
        for (size_t j = 0; j < len; ++j) {
          batch[j].key = keys[j];
          batch[j].tag = apps::kTagWord;
        }
        (*rt)->InjectBatch(wc.spout, s, batch, len);
        i += len;
      }
    });
  }
  for (auto& t : injectors) t.join();
  (*rt)->Finish();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  WordCountResult r;
  auto* agg = static_cast<apps::TopKAggregator*>(
      (*rt)->GetOperator(wc.aggregator, 0));
  for (const auto& [key, count] : agg->totals()) r.total += count;
  r.msgs_per_sec =
      static_cast<double>(kSources * messages_per_source) / elapsed.count();
  return r;
}

std::string FormatUs(uint64_t us) {
  char buf[32];
  if (us >= 10000) {
    std::snprintf(buf, sizeof(buf), "%.1fms", static_cast<double>(us) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lluus",
                  static_cast<unsigned long long>(us));
  }
  return buf;
}

}  // namespace
}  // namespace pkgstream

int main(int argc, char** argv) {
  using namespace pkgstream;
  Flags flags;
  Status s = Flags::Parse(argc, argv, &flags);
  if (!s.ok()) {
    std::cerr << "flag error: " << s << "\n";
    return 2;
  }
  bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  const char* title =
      "Many-worker sharded runtime: D/W-Choices vs PKG at W=100-1000";
  const char* paper_ref =
      "Nasir et al. 2016 (When Two Choices Are Not Enough) run through the "
      "real sharded engine; Nasir et al. 2015 Section V methodology";
  bench::PrintBanner(title, paper_ref, args);
  bench::Report report("bench_threaded_manyworkers", title, paper_ref, args);

  // Flat stream length per cell: the D/W warm-up transient (see file
  // comment) is a fixed message count, so a fixed length keeps its share
  // of every cell identical.
  uint64_t messages = args.quick ? 20000 : 40000;
  if (args.full) messages = 100000;
  messages = static_cast<uint64_t>(
      flags.GetInt("messages", static_cast<int64_t>(messages)));
  const uint64_t service_us =
      static_cast<uint64_t>(flags.GetInt("service_us", 5000));
  const size_t shards = static_cast<size_t>(flags.GetInt("shards", 8));
  const bool pace = flags.GetBool("pace", false);
  PKGSTREAM_CHECK(messages > 0 && service_us > 0 && shards > 0);

  const std::vector<uint32_t> worker_counts = {100, 500, 1000};
  const std::vector<std::pair<partition::Technique, std::string>> techniques =
      {{partition::Technique::kPkgLocal, "PKG-L"},
       {partition::Technique::kDChoices, "D-Choices"},
       {partition::Technique::kWChoices, "W-Choices"},
       {partition::Technique::kShuffle, "SG"},
       {partition::Technique::kHashing, "KG"}};

  auto dist = std::make_shared<const workload::StaticDistribution>(
      workload::ZipfWeights(1000, 1.5), "zipf(1.5,K=1000)");

  report.AddMetric("messages_per_cell", static_cast<double>(messages));
  report.AddMetric("service_us", static_cast<double>(service_us));
  report.AddMetric("shards", static_cast<double>(shards));

  std::cout << "shards=" << shards << "  service_us=" << service_us
            << "  messages_per_cell=" << messages
            << "  pace=" << (pace ? "on" : "off") << "  keys=" << dist->name()
            << " (p1=" << dist->P1() << ")\n\n";

  Table table({"W", "technique", "count", "p50", "p95", "p99", "p999", "max",
               "mean us"});
  uint64_t worst_p999 = 0;
  uint64_t saturated_total = 0;
  for (uint32_t w : worker_counts) {
    // Offered load scales with the cluster: 20% of aggregate capacity.
    const uint64_t load =
        static_cast<uint64_t>(w) * (1000000 / service_us) / 5;
    std::vector<uint64_t> times(messages);
    std::vector<Key> keys(messages);
    workload::PoissonSchedule schedule(static_cast<double>(load),
                                       args.seed ^ w);
    schedule.NextBatchMicros(times.data(), messages);
    workload::IidKeyStream key_stream(dist, args.seed * 31 + w);
    key_stream.NextBatch(keys.data(), messages);
    uint64_t sched_sum = 0, key_sum = 0;
    for (uint64_t t : times) sched_sum += t;
    for (Key k : keys) key_sum += k;
    const std::string w_prefix = "W=" + std::to_string(w) + "/";
    report.AddMetric(w_prefix + "load", static_cast<double>(load));
    report.AddMetric(w_prefix + "sched_checksum",
                     static_cast<double>(sched_sum & 0xffffffffULL));
    report.AddMetric(w_prefix + "key_checksum",
                     static_cast<double>(key_sum & 0xffffffffULL));

    for (const auto& [technique, name] : techniques) {
      CellResult cell =
          RunCell(ConfigFor(technique, w, args.seed), w, shards, service_us,
                  times, keys, dist->K(), pace);
      const auto& h = cell.hist;
      PKGSTREAM_CHECK(cell.processed == messages && h.count() == messages)
          << "message loss: injected " << messages << ", processed "
          << cell.processed << ", recorded " << h.count();
      const std::string prefix = w_prefix + name + "/";
      report.AddMetric(prefix + "count", static_cast<double>(h.count()));
      report.AddMetric(prefix + "p50_us", static_cast<double>(h.P50()));
      report.AddMetric(prefix + "p95_us", static_cast<double>(h.P95()));
      report.AddMetric(prefix + "p99_us", static_cast<double>(h.P99()));
      report.AddMetric(prefix + "p999_us", static_cast<double>(h.P999()));
      report.AddMetric(prefix + "max_us", static_cast<double>(h.max()));
      report.AddMetric(prefix + "mean_us", h.mean());
      report.AddMetric(prefix + "saturated",
                       static_cast<double>(h.saturated()));
      report.AddHostMetric(prefix + "wall_seconds", cell.wall_seconds);
      report.AddHostMetric(prefix + "max_inject_lag_us",
                           static_cast<double>(cell.max_lag_us));
      worst_p999 = std::max(worst_p999, h.P999());
      saturated_total += h.saturated();
      table.AddRow({std::to_string(w), name, std::to_string(h.count()),
                    FormatUs(h.P50()), FormatUs(h.P95()), FormatUs(h.P99()),
                    FormatUs(h.P999()), FormatUs(h.max()),
                    std::to_string(static_cast<uint64_t>(h.mean()))});
    }
  }
  report.AddTable(std::move(table));

  // Multi-stage throughput: the same wordcount pipeline, thread-per-instance
  // vs sharded. Totals are interleaving-independent (deterministic metric);
  // rates are wall-clock (host metrics, compared only as ratios).
  const uint64_t wc_messages = args.quick ? 40000 : 100000;
  WordCountResult per_instance =
      RunWordCount(/*shards=*/0, /*workers=*/8, wc_messages, args.seed);
  WordCountResult sharded =
      RunWordCount(/*shards=*/4, /*workers=*/8, wc_messages, args.seed);
  PKGSTREAM_CHECK(per_instance.total == sharded.total)
      << "sharded wordcount totals diverge: " << per_instance.total << " vs "
      << sharded.total;
  const double ratio = sharded.msgs_per_sec / per_instance.msgs_per_sec;
  report.AddMetric("throughput/wordcount_total",
                   static_cast<double>(sharded.total));
  report.AddHostMetric("throughput/per_instance_mps",
                       per_instance.msgs_per_sec);
  report.AddHostMetric("throughput/sharded_mps", sharded.msgs_per_sec);
  report.AddHostMetric("throughput/sharded_vs_per_instance", ratio);
  std::printf(
      "\nwordcount 2 spouts -> 8 counters -> 1 aggregator, %llu msgs:\n"
      "  thread-per-instance %.2fM msg/s, 4 shards %.2fM msg/s "
      "(ratio %.2fx)\n",
      static_cast<unsigned long long>(2 * wc_messages),
      per_instance.msgs_per_sec / 1e6, sharded.msgs_per_sec / 1e6, ratio);

  report.AddText(
      "Expected shape (the sequel's headline, through the real sharded\n"
      "engine): at 20% average utilization the only danger is the Zipf head\n"
      "(p1~0.39). KG parks it on one worker and PKG-L on a fixed pair, so\n"
      "both saturate those workers at every W here and their tails grow\n"
      "unboundedly for the length of the cell. D-Choices / W-Choices detect\n"
      "the head and spread it over ~p*W/eps (or all) workers, so their p99\n"
      "stays within a small factor of shuffle grouping's — two choices are\n"
      "not enough at W >= 100, a few more for the head suffice. Latencies\n"
      "are virtual-service (deterministic); wall-clock throughput of the\n"
      "multi-stage wordcount run lands in host_metrics only.");

  // One greppable line for the CI reproduction-gate job.
  std::cout << "[bench_threaded_manyworkers] manyworkers-complete:"
            << " worker_counts=" << worker_counts.size()
            << " techniques=" << techniques.size() << " shards=" << shards
            << " worst_p999_us=" << worst_p999
            << " saturated=" << saturated_total << "\n";
  return bench::Finish(report, args);
}
