// Copyright 2026 The pkgstream Authors.
// ThreadedRuntime scaling sweep (ROADMAP "threaded-runtime scaling"): how
// fast can the in-process DSPE route messages as parallelism grows?
//
// The paper's premise — and its follow-ups ("When Two Choices Are not
// Enough", Nasir et al. 2015) — is that each source routes independently
// from purely local state, so the routing hot path should scale linearly
// with sources. This bench measures exactly that, end to end (inject ->
// partition -> queue -> drain), for two implementations of the hot path:
//
//   mutex      the pre-PR design, recreated here verbatim: one partitioner
//              per edge shared by all sources behind a std::mutex, plus a
//              mutex+condvar MPMC inbox per consumer;
//   lock-free  ThreadedRuntime as built today: a partitioner replica per
//              source (no lock), one bounded lock-free SPSC ring per
//              producer->consumer pair with batched pops, and sources
//              feeding through InjectBatch (one lock take + one fused
//              RouteBatch per 256-message chunk, filling the per-edge
//              emit out-buffers directly).
//
// Keeping the old design alive inside the bench means the speedup is
// *measured on this host at run time*, not asserted from a recorded
// number. --json=PATH writes the structured report (bench/report.h):
// wall-clock msgs/sec land in host_metrics (host-dependent, never
// baseline-compared), routed message counts in metrics (deterministic,
// diffed against bench/baselines/bench_threaded_scaling.json by
// tools/bench_check). --check exits non-zero unless the lock-free path is
// >= 2x the mutex path at parallelism >= 8. Run --check at the default
// scale or larger: --quick runs are tens of milliseconds per cell, short
// enough for scheduler noise to swamp the ratio.
//
// Sweep: parallelism P in {1,2,4,8,16} (P sources x P workers) x
// technique in {KG, SG, PKG-L}. Override with --parallelisms=1,8,1000.
// Large-P knobs (all default-off, so the committed baseline is unchanged):
//   --parallelisms=CSV        replace the sweep (e.g. a single 1000 cell);
//   --shards=N                run the lock-free side on N shard threads
//                             instead of one thread per instance;
//   --injectors=N             cap injector threads (sources are split into
//                             N contiguous slices, one thread per slice —
//                             per-source injection order is unchanged, so
//                             routed counts stay deterministic);
//   --legacy_max_parallelism  skip the mutex pipeline above this P (its
//                             one-thread-per-worker + condvar design is
//                             the very thing that cannot scale; without
//                             the cap a P=1000 cell would try to build
//                             1000 legacy consumer threads). Default 64,
//                             comfortably above every default sweep.
//   --queue_capacity=N        per producer->consumer ring slots (default
//                             1024, the historical value). The all-to-all
//                             P sources x P workers topology allocates
//                             P^2 rings, so a P=1000 cell at the default
//                             is ~P^2*1024*sizeof(Message) of ring memory
//                             alone — pass e.g. 16 at large P.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "bench/report.h"
#include "common/hash.h"
#include "common/logging.h"
#include "engine/threaded_runtime.h"
#include "partition/factory.h"

namespace pkgstream {
namespace {

/// Decorrelated synthetic key for message `i` of source `s`.
Key BenchKey(uint32_t s, uint64_t i, uint64_t seed) {
  return Fmix64(seed ^ (static_cast<uint64_t>(s) << 48) ^ i) % 4096;
}

// ---------------------------------------------------------------------------
// The pre-PR hot path, recreated: shared partitioner behind a per-edge
// mutex, mutex+condvar MPMC inboxes, per-item pops. Only the machinery on
// the message path is modelled (operators reduced to a checksum), so both
// runtimes do identical per-message "work" and the comparison isolates
// partitioning + queueing.
// ---------------------------------------------------------------------------

class LegacyMutexPipeline {
 public:
  LegacyMutexPipeline(const partition::PartitionerConfig& config,
                      uint32_t sources, uint32_t workers,
                      size_t queue_capacity)
      : sources_(sources), queue_capacity_(queue_capacity) {
    auto p = partition::MakePartitioner(config);
    PKGSTREAM_CHECK_OK(p.status());
    partitioner_ = std::move(*p);
    inboxes_.reserve(workers);
    processed_ = std::vector<std::atomic<uint64_t>>(workers);
    sums_ = std::vector<std::atomic<uint64_t>>(workers);
    for (uint32_t w = 0; w < workers; ++w) {
      inboxes_.push_back(std::make_unique<Inbox>());
      processed_[w].store(0, std::memory_order_relaxed);
      sums_[w].store(0, std::memory_order_relaxed);
    }
    for (uint32_t w = 0; w < workers; ++w) {
      threads_.emplace_back([this, w] { RunConsumer(w); });
    }
  }

  ~LegacyMutexPipeline() { Finish(); }

  void Inject(SourceId source, Key key) {
    WorkerId w;
    {
      std::lock_guard<std::mutex> lock(edge_mutex_);
      w = partitioner_->Route(source, key);
    }
    inboxes_[w]->Push(Item{key, false}, queue_capacity_);
  }

  void Finish() {
    if (finished_) return;
    finished_ = true;
    for (uint32_t s = 0; s < sources_; ++s) {
      for (auto& inbox : inboxes_) {
        inbox->Push(Item{0, true}, queue_capacity_);
      }
    }
    for (auto& t : threads_) {
      if (t.joinable()) t.join();
    }
  }

  uint64_t TotalProcessed() const {
    uint64_t total = 0;
    for (const auto& c : processed_) {
      total += c.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct Item {
    Key key = 0;
    bool eos = false;
  };

  class Inbox {
   public:
    void Push(Item item, size_t capacity) {
      std::unique_lock<std::mutex> lock(mu_);
      not_full_.wait(lock, [&] { return items_.size() < capacity; });
      items_.push_back(item);
      not_empty_.notify_one();
    }

    Item Pop() {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [&] { return !items_.empty(); });
      Item item = items_.front();
      items_.pop_front();
      not_full_.notify_one();
      return item;
    }

   private:
    std::mutex mu_;
    std::condition_variable not_empty_;
    std::condition_variable not_full_;
    std::deque<Item> items_;
  };

  void RunConsumer(uint32_t w) {
    uint32_t eos_seen = 0;
    uint64_t sum = 0;
    while (eos_seen < sources_) {
      Item item = inboxes_[w]->Pop();
      if (item.eos) {
        ++eos_seen;
        continue;
      }
      processed_[w].fetch_add(1, std::memory_order_relaxed);
      sum += item.key;
    }
    sums_[w].store(sum, std::memory_order_relaxed);
  }

  uint32_t sources_;
  size_t queue_capacity_;
  partition::PartitionerPtr partitioner_;
  std::mutex edge_mutex_;
  std::vector<std::unique_ptr<Inbox>> inboxes_;
  std::vector<std::atomic<uint64_t>> processed_;
  std::vector<std::atomic<uint64_t>> sums_;
  std::vector<std::thread> threads_;
  bool finished_ = false;
};

/// Checksum sink for the ThreadedRuntime side: the same per-message work
/// the legacy consumers do.
class ChecksumSink final : public engine::Operator {
 public:
  void Process(const engine::Message& msg, engine::Emitter*) override {
    sum_ += msg.key;
  }
  uint64_t MemoryCounters() const override { return 0; }

 private:
  uint64_t sum_ = 0;
};

struct RunResult {
  double msgs_per_sec = 0;
  uint64_t processed = 0;
};

/// Contiguous source slices for a capped injector-thread count: thread t
/// of `threads` handles sources [bounds[t], bounds[t+1]). One thread per
/// source when the cap is 0 or >= parallelism (the historical layout).
std::vector<uint32_t> InjectorBounds(uint32_t parallelism,
                                     uint32_t injector_cap) {
  const uint32_t threads =
      (injector_cap == 0 || injector_cap > parallelism) ? parallelism
                                                        : injector_cap;
  std::vector<uint32_t> bounds(threads + 1);
  for (uint32_t t = 0; t <= threads; ++t) {
    bounds[t] = static_cast<uint32_t>(
        static_cast<uint64_t>(t) * parallelism / threads);
  }
  return bounds;
}

RunResult RunLegacy(partition::Technique technique, uint32_t parallelism,
                    uint64_t messages, uint64_t seed, uint32_t injector_cap,
                    size_t queue_capacity) {
  partition::PartitionerConfig config;
  config.technique = technique;
  config.sources = parallelism;
  config.workers = parallelism;
  config.seed = seed;
  LegacyMutexPipeline pipeline(config, parallelism, parallelism,
                               queue_capacity);
  const uint64_t per_source = messages / parallelism;
  const std::vector<uint32_t> bounds =
      InjectorBounds(parallelism, injector_cap);
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> injectors;
  for (size_t t = 0; t + 1 < bounds.size(); ++t) {
    injectors.emplace_back([&, t] {
      for (uint32_t s = bounds[t]; s < bounds[t + 1]; ++s) {
        for (uint64_t i = 0; i < per_source; ++i) {
          pipeline.Inject(s, BenchKey(s, i, seed));
        }
      }
    });
  }
  for (auto& t : injectors) t.join();
  pipeline.Finish();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  RunResult r;
  r.processed = pipeline.TotalProcessed();
  r.msgs_per_sec = static_cast<double>(r.processed) / elapsed.count();
  return r;
}

RunResult RunLockFree(partition::Technique technique, uint32_t parallelism,
                      uint64_t messages, uint64_t seed, size_t shards,
                      uint32_t injector_cap, size_t queue_capacity) {
  engine::Topology topology;
  engine::NodeId spout = topology.AddSpout("src", parallelism);
  engine::NodeId sink = topology.AddOperator(
      "sink", [](uint32_t) { return std::make_unique<ChecksumSink>(); },
      parallelism);
  PKGSTREAM_CHECK_OK(topology.Connect(spout, sink, technique, seed));
  engine::ThreadedRuntimeOptions options;
  options.queue_capacity = queue_capacity;
  options.shards = shards;
  auto rt = engine::ThreadedRuntime::Create(&topology, options);
  PKGSTREAM_CHECK_OK(rt.status());
  const uint64_t per_source = messages / parallelism;
  const std::vector<uint32_t> bounds =
      InjectorBounds(parallelism, injector_cap);
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> injectors;
  for (size_t t = 0; t + 1 < bounds.size(); ++t) {
    injectors.emplace_back([&, t] {
      constexpr uint64_t kInjectBatch = 256;
      engine::Message batch[kInjectBatch];
      for (uint32_t s = bounds[t]; s < bounds[t + 1]; ++s) {
        for (uint64_t i = 0; i < per_source;) {
          const uint64_t len = std::min(kInjectBatch, per_source - i);
          for (uint64_t j = 0; j < len; ++j) {
            batch[j].key = BenchKey(s, i + j, seed);
          }
          (*rt)->InjectBatch(spout, s, batch, len);
          i += len;
        }
      }
    });
  }
  for (auto& t : injectors) t.join();
  (*rt)->Finish();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  RunResult r;
  uint64_t processed = 0;
  for (uint64_t l : (*rt)->Processed(sink)) processed += l;
  r.processed = processed;
  r.msgs_per_sec = static_cast<double>(processed) / elapsed.count();
  return r;
}

struct Row {
  uint32_t parallelism;
  std::string technique;
  double mutex_mps;
  double lockfree_mps;
  double speedup;
  bool has_legacy;  // false above --legacy_max_parallelism: no speedup cell
};

std::string FormatMps(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fM", v / 1e6);
  return buf;
}

std::string FormatSpeedup(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", v);
  return buf;
}

}  // namespace
}  // namespace pkgstream

int main(int argc, char** argv) {
  using namespace pkgstream;
  Flags flags;
  Status s = Flags::Parse(argc, argv, &flags);
  if (!s.ok()) {
    std::cerr << "flag error: " << s << "\n";
    return 2;
  }
  bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  const bool check = flags.GetBool("check", false);
  bench::PrintBanner(
      "ThreadedRuntime scaling: lock-free inboxes + per-source replicas",
      "ROADMAP 'threaded-runtime scaling'; Nasir et al. 2015 follow-up "
      "'When Two Choices Are not Enough' (cheap routing at scale)",
      args);
  bench::Report report(
      "bench_threaded_scaling",
      "ThreadedRuntime scaling: lock-free inboxes + per-source replicas",
      "ROADMAP 'threaded-runtime scaling'; Nasir et al. 2015 follow-up "
      "'When Two Choices Are not Enough' (cheap routing at scale)",
      args);

  uint64_t messages = args.quick ? 40000 : 400000;
  if (args.full) messages = 4000000;
  messages = static_cast<uint64_t>(
      flags.GetInt("messages", static_cast<int64_t>(messages)));
  std::vector<uint32_t> parallelisms =
      args.quick ? std::vector<uint32_t>{1, 4, 8}
                 : std::vector<uint32_t>{1, 2, 4, 8, 16};
  const std::string parallelisms_csv = flags.GetString("parallelisms", "");
  if (!parallelisms_csv.empty()) {
    parallelisms.clear();
    size_t at = 0;
    while (at < parallelisms_csv.size()) {
      size_t comma = parallelisms_csv.find(',', at);
      if (comma == std::string::npos) comma = parallelisms_csv.size();
      const long v = std::stol(parallelisms_csv.substr(at, comma - at));
      PKGSTREAM_CHECK(v >= 1) << "--parallelisms entries must be >= 1";
      parallelisms.push_back(static_cast<uint32_t>(v));
      at = comma + 1;
    }
  }
  const size_t shards =
      static_cast<size_t>(flags.GetInt("shards", 0));
  const uint32_t injector_cap =
      static_cast<uint32_t>(flags.GetInt("injectors", 0));
  // The legacy pipeline builds one consumer thread per worker plus a
  // condvar per inbox — the design under indictment. Past this cap it is
  // skipped (mutex column "-") instead of silently capping the sweep or
  // exhausting threads at P=1000.
  const uint32_t legacy_max_parallelism = static_cast<uint32_t>(
      flags.GetInt("legacy_max_parallelism", 64));
  const size_t queue_capacity =
      static_cast<size_t>(flags.GetInt("queue_capacity", 1024));
  const std::vector<std::pair<partition::Technique, std::string>> techniques =
      {{partition::Technique::kHashing, "KG"},
       {partition::Technique::kShuffle, "SG"},
       {partition::Technique::kPkgLocal, "PKG-L"}};

  std::cout << "hardware_concurrency="
            << std::thread::hardware_concurrency()
            << "  messages_per_config=" << messages << "\n\n";
  // Recorded as a metric so a --messages mismatch between a fresh report
  // and the baseline fails as an explicit parameter diff, not as opaque
  // per-cell "processed" drift.
  report.AddMetric("messages_per_config", static_cast<double>(messages));

  Table table({"P (SxW)", "technique", "mutex msg/s", "lock-free msg/s",
               "speedup"});
  std::vector<Row> rows;
  for (uint32_t p : parallelisms) {
    for (const auto& [technique, name] : techniques) {
      const bool run_legacy = p <= legacy_max_parallelism;
      RunResult mutex_result;
      if (run_legacy) {
        mutex_result = RunLegacy(technique, p, messages, args.seed,
                                 injector_cap, queue_capacity);
      }
      RunResult lockfree_result =
          RunLockFree(technique, p, messages, args.seed, shards,
                      injector_cap, queue_capacity);
      if (run_legacy) {
        PKGSTREAM_CHECK(mutex_result.processed == lockfree_result.processed)
            << "runtimes routed different message counts";
      }
      Row row;
      row.parallelism = p;
      row.technique = name;
      row.mutex_mps = mutex_result.msgs_per_sec;
      row.lockfree_mps = lockfree_result.msgs_per_sec;
      row.speedup = run_legacy
                        ? lockfree_result.msgs_per_sec /
                              mutex_result.msgs_per_sec
                        : 0.0;
      row.has_legacy = run_legacy;
      rows.push_back(row);
      const std::string prefix =
          "P=" + std::to_string(p) + "/" + name + "/";
      // Routed message counts are deterministic (both runtimes must route
      // every injected message); wall-clock rates are host-dependent.
      report.AddMetric(prefix + "processed",
                       static_cast<double>(lockfree_result.processed));
      if (run_legacy) {
        report.AddHostMetric(prefix + "mutex_msgs_per_sec", row.mutex_mps);
      }
      report.AddHostMetric(prefix + "lockfree_msgs_per_sec",
                           row.lockfree_mps);
      if (run_legacy) {
        report.AddHostMetric(prefix + "speedup", row.speedup);
      }
      table.AddRow({std::to_string(p), name,
                    run_legacy ? FormatMps(row.mutex_mps) : "-",
                    FormatMps(row.lockfree_mps),
                    run_legacy ? FormatSpeedup(row.speedup) : "-"});
    }
  }
  report.AddTable(std::move(table));
  const int finish_code = bench::Finish(report, args);

  if (check) {
    bool ok = true;
    for (const Row& r : rows) {
      if (r.has_legacy && r.parallelism >= 8 && r.speedup < 2.0) {
        std::cerr << "CHECK FAILED: P=" << r.parallelism << " "
                  << r.technique << " speedup " << r.speedup << " < 2.0\n";
        ok = false;
      }
    }
    if (!ok) return 1;
    std::cout << "CHECK OK: lock-free >= 2x mutex at parallelism >= 8\n";
  }
  return finish_code;
}
