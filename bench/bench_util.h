// Copyright 2026 The pkgstream Authors.
// Shared plumbing for the experiment binaries in bench/: flag handling and
// banner printing. Output/export goes through bench/report.h, which emits
// both the console tables and the machine-checked JSON report.

#ifndef PKGSTREAM_BENCH_BENCH_UTIL_H_
#define PKGSTREAM_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <iostream>
#include <string>

#include "common/flags.h"
#include "common/table.h"

namespace pkgstream {
namespace bench {

/// \brief Common flags for every experiment binary.
struct BenchArgs {
  uint64_t seed = 42;
  bool full = false;         ///< --full: paper-scale run (slow)
  std::string csv;           ///< --csv=PATH: also export the tables as CSV
  std::string json;          ///< --json=PATH: structured report (report.h)
  bool quick = false;        ///< --quick: extra-small run (CI smoke)
};

inline BenchArgs ParseBenchArgs(int argc, char** argv) {
  Flags flags;
  Status s = Flags::Parse(argc, argv, &flags);
  if (!s.ok()) {
    std::cerr << "flag error: " << s << "\n";
    std::exit(2);
  }
  BenchArgs args;
  args.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  args.full = flags.GetBool("full", false);
  args.quick = flags.GetBool("quick", false);
  if (args.full && args.quick) {
    // The scales contradict (and individual benches resolve the conflict
    // inconsistently); a report stamped with the wrong scale would then
    // diff against the wrong baseline.
    std::cerr << "flag error: --quick and --full are mutually exclusive\n";
    std::exit(2);
  }
  args.csv = flags.GetString("csv", "");
  args.json = flags.GetString("json", "");
  return args;
}

inline void PrintBanner(const std::string& title, const std::string& paper_ref,
                        const BenchArgs& args) {
  std::cout << "\n=== " << title << " ===\n";
  std::cout << "reproduces: " << paper_ref << "\n";
  std::cout << "seed=" << args.seed
            << (args.full ? "  scale=FULL (paper scale)"
                          : (args.quick ? "  scale=quick" : "  scale=default"))
            << "\n\n";
}

}  // namespace bench
}  // namespace pkgstream

#endif  // PKGSTREAM_BENCH_BENCH_UTIL_H_
