// Copyright 2026 The pkgstream Authors.
// Shared plumbing for the experiment binaries in bench/: flag handling,
// banner printing, CSV export.

#ifndef PKGSTREAM_BENCH_BENCH_UTIL_H_
#define PKGSTREAM_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <iostream>
#include <string>

#include "common/flags.h"
#include "common/table.h"

namespace pkgstream {
namespace bench {

/// \brief Common flags for every experiment binary.
struct BenchArgs {
  uint64_t seed = 42;
  bool full = false;         ///< --full: paper-scale run (slow)
  std::string csv;           ///< --csv=PATH: also export the table as CSV
  bool quick = false;        ///< --quick: extra-small run (CI smoke)
};

inline BenchArgs ParseBenchArgs(int argc, char** argv) {
  Flags flags;
  Status s = Flags::Parse(argc, argv, &flags);
  if (!s.ok()) {
    std::cerr << "flag error: " << s << "\n";
    std::exit(2);
  }
  BenchArgs args;
  args.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  args.full = flags.GetBool("full", false);
  args.quick = flags.GetBool("quick", false);
  args.csv = flags.GetString("csv", "");
  return args;
}

inline void PrintBanner(const std::string& title, const std::string& paper_ref,
                        const BenchArgs& args) {
  std::cout << "\n=== " << title << " ===\n";
  std::cout << "reproduces: " << paper_ref << "\n";
  std::cout << "seed=" << args.seed
            << (args.full ? "  scale=FULL (paper scale)" : "  scale=default")
            << "\n\n";
}

inline void FinishTable(const Table& table, const BenchArgs& args) {
  table.Print(std::cout);
  if (!args.csv.empty()) {
    Status s = table.WriteCsv(args.csv);
    if (!s.ok()) {
      std::cerr << "csv export failed: " << s << "\n";
    } else {
      std::cout << "\n(csv written to " << args.csv << ")\n";
    }
  }
  std::cout << std::endl;
}

}  // namespace bench
}  // namespace pkgstream

#endif  // PKGSTREAM_BENCH_BENCH_UTIL_H_
