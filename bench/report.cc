// Copyright 2026 The pkgstream Authors.

#include "bench/report.h"

#include <fstream>
#include <iostream>
#include <thread>

namespace pkgstream {
namespace bench {

namespace {

std::string ScaleName(const BenchArgs& args) {
  if (args.quick) return "quick";
  if (args.full) return "full";
  return "default";
}

}  // namespace

Report::Report(std::string bench_name, std::string title,
               std::string paper_ref, const BenchArgs& args)
    : bench_name_(std::move(bench_name)),
      title_(std::move(title)),
      paper_ref_(std::move(paper_ref)),
      scale_(ScaleName(args)),
      seed_(args.seed) {}

void Report::AddMetric(const std::string& key, double value) {
  metrics_[key] = value;
}

void Report::AddHostMetric(const std::string& key, double value) {
  host_metrics_[key] = value;
}

void Report::AddTable(Table table) {
  Entry e;
  e.is_table = true;
  e.table = std::move(table);
  entries_.push_back(std::move(e));
}

void Report::AddText(std::string text) {
  Entry e;
  e.text = std::move(text);
  entries_.push_back(std::move(e));
}

void Report::Print(std::ostream& os) const {
  for (const Entry& e : entries_) {
    if (e.is_table) {
      e.table.Print(os);
    } else {
      os << e.text;
      if (e.text.empty() || e.text.back() != '\n') os << "\n";
    }
    os << "\n";
  }
}

JsonValue Report::ToJson() const {
  JsonValue doc = JsonValue::Object();
  doc.Set("schema_version", JsonValue::Number(kReportSchemaVersion));
  doc.Set("bench", JsonValue::Str(bench_name_));
  doc.Set("title", JsonValue::Str(title_));
  doc.Set("paper_ref", JsonValue::Str(paper_ref_));
  doc.Set("scale", JsonValue::Str(scale_));
  doc.Set("seed", JsonValue::Number(static_cast<double>(seed_)));
  JsonValue host = JsonValue::Object();
  host.Set("hardware_concurrency",
           JsonValue::Number(std::thread::hardware_concurrency()));
  doc.Set("host", std::move(host));
  JsonValue metrics = JsonValue::Object();
  for (const auto& [key, value] : metrics_) {
    metrics.Set(key, JsonValue::Number(value));
  }
  doc.Set("metrics", std::move(metrics));
  JsonValue host_metrics = JsonValue::Object();
  for (const auto& [key, value] : host_metrics_) {
    host_metrics.Set(key, JsonValue::Number(value));
  }
  doc.Set("host_metrics", std::move(host_metrics));
  return doc;
}

Status Report::WriteJson(const std::string& path) const {
  return WriteJsonFile(ToJson(), path);
}

Status Report::WriteCsv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return Status::IOError("cannot open for writing: " + path);
  bool first = true;
  for (const Entry& e : entries_) {
    if (!e.is_table) continue;
    if (!first) f << "\n";
    e.table.PrintCsv(f);
    first = false;
  }
  f.flush();
  if (!f) return Status::IOError("write failed: " + path);
  return Status::OK();
}

int Finish(const Report& report, const BenchArgs& args) {
  report.Print(std::cout);
  int exit_code = 0;
  if (!args.csv.empty()) {
    Status s = report.WriteCsv(args.csv);
    if (!s.ok()) {
      std::cerr << "csv export failed: " << s << "\n";
      exit_code = 1;
    } else {
      std::cout << "(csv written to " << args.csv << ")\n";
    }
  }
  if (!args.json.empty()) {
    Status s = report.WriteJson(args.json);
    if (!s.ok()) {
      std::cerr << "json export failed: " << s << "\n";
      exit_code = 1;
    } else {
      std::cout << "(json report written to " << args.json << ")\n";
    }
  }
  std::cout << std::flush;
  return exit_code;
}

}  // namespace bench
}  // namespace pkgstream
