// Copyright 2026 The pkgstream Authors.
// Structured bench reports: every experiment binary in bench/ renders its
// console output through a Report and can export the same data as a JSON
// document (--json=PATH) keyed by figure/technique/parameter. The JSON is
// what tools/bench_check diffs against the committed golden baselines in
// bench/baselines/ — see docs/BENCHMARKS.md "Baselines".
//
// Two metric classes:
//  * metrics        deterministic given (seed, scale): imbalance fractions,
//                   simulated throughput/latency, counts. bench_check
//                   requires these to match the captured baseline within a
//                   tight relative tolerance.
//  * host_metrics   wall-clock measurements (real msgs/sec). Never compared
//                   across hosts; usable in same-report ratio invariants.
//
// Reports serialize deterministically (sorted metric keys, canonical number
// formatting), so "same binary + same flags => byte-identical file" is a
// testable property (tests/bench_reports_test.cc).

#ifndef PKGSTREAM_BENCH_REPORT_H_
#define PKGSTREAM_BENCH_REPORT_H_

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/json.h"
#include "common/table.h"

namespace pkgstream {
namespace bench {

/// \brief Report schema version written to every JSON document; bump when a
/// field changes meaning and re-capture the baselines.
inline constexpr int kReportSchemaVersion = 1;

/// \brief Structured result of one bench run: the printable layout (tables
/// and prose, in order) plus flat metric maps for machine checking.
class Report {
 public:
  /// `bench_name` is the binary name (baseline files are named after it);
  /// `title` and `paper_ref` mirror PrintBanner.
  Report(std::string bench_name, std::string title, std::string paper_ref,
         const BenchArgs& args);

  /// Adds a deterministic metric. Keys are slash-joined coordinates, e.g.
  /// "WP/PKG/W=5/avg_imbalance". Re-adding a key overwrites it.
  void AddMetric(const std::string& key, double value);

  /// Adds a wall-clock (host-dependent) metric.
  void AddHostMetric(const std::string& key, double value);

  /// Appends a table / a prose block to the printed layout.
  void AddTable(Table table);
  void AddText(std::string text);

  const std::string& bench_name() const { return bench_name_; }
  const std::map<std::string, double>& metrics() const { return metrics_; }

  /// Renders the printable layout (tables and text in insertion order).
  void Print(std::ostream& os) const;

  /// The JSON report document.
  JsonValue ToJson() const;

  /// Writes the JSON report; all tables as concatenated CSV blocks.
  Status WriteJson(const std::string& path) const;
  Status WriteCsv(const std::string& path) const;

 private:
  struct Entry {
    bool is_table = false;
    Table table{std::vector<std::string>{}};
    std::string text;
  };

  std::string bench_name_;
  std::string title_;
  std::string paper_ref_;
  std::string scale_;
  uint64_t seed_;
  std::vector<Entry> entries_;
  std::map<std::string, double> metrics_;
  std::map<std::string, double> host_metrics_;
};

/// \brief Prints the report and performs the --csv / --json exports.
/// Returns the process exit code: 0, or 1 when any export failed — benches
/// must `return bench::Finish(report, args);` so a failed export fails the
/// run (a silently missing report would vacuously pass the repro gate).
int Finish(const Report& report, const BenchArgs& args);

}  // namespace bench
}  // namespace pkgstream

#endif  // PKGSTREAM_BENCH_REPORT_H_
