// Copyright 2026 The pkgstream Authors.
// A one-command tour of the simulated Storm-like cluster (the Q4 substrate):
// runs the word-count topology at a chosen CPU delay under PKG, SG and KG
// and prints throughput, latency percentiles, utilization and memory —
// everything Figure 5 is built from.
//
//   ./examples/cluster_sim [--delay_ms=0.4] [--workers=9] [--messages=100000]

#include <iostream>

#include "common/flags.h"
#include "common/logging.h"
#include "common/table.h"
#include "simulation/experiments.h"

using namespace pkgstream;

int main(int argc, char** argv) {
  Flags flags;
  PKGSTREAM_CHECK_OK(Flags::Parse(argc, argv, &flags));
  const double delay_ms = flags.GetDouble("delay_ms", 0.4);
  const uint32_t workers = static_cast<uint32_t>(flags.GetInt("workers", 9));
  const uint64_t messages =
      static_cast<uint64_t>(flags.GetInt("messages", 100000));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  std::cout << "simulated cluster: 1 spout, " << workers
            << " counters (+1 aggregator), CPU delay "
            << FormatFixed(delay_ms, 1) << " ms/key, WP-like workload, "
            << FormatWithCommas(messages) << " keys\n\n";

  Table table({"technique", "keys/s", "mean lat (ms)", "p99 lat (ms)",
               "max counter util", "counters held"});
  for (auto [technique, label] :
       {std::pair{partition::Technique::kPkgLocal, "PKG"},
        std::pair{partition::Technique::kShuffle, "SG"},
        std::pair{partition::Technique::kHashing, "KG"}}) {
    auto report = simulation::RunWordCountCluster(
        technique, workers, delay_ms, /*aggregation_us=*/0, messages,
        workload::DatasetId::kWP, /*scale=*/0.02, seed);
    PKGSTREAM_CHECK_OK(report.status());
    // Node 1 is the counter PE in the word-count topology.
    table.AddRow(
        {label, FormatFixed(report->throughput_per_s, 0),
         FormatFixed(report->mean_latency_us / 1000.0, 1),
         FormatFixed(static_cast<double>(report->p99_latency_us) / 1000.0, 1),
         FormatFixed(report->max_utilization[1] * 100.0, 0) + "%",
         FormatWithCommas(report->peak_memory_counters)});
  }
  table.Print(std::cout);
  std::cout << "\nKG's hottest counter saturates first (utilization -> 100%),\n"
               "queueing delay inflates its latency, and the bounded spout\n"
               "window turns that into a throughput loss — the Figure 5(a)\n"
               "mechanism, observable here at any delay you pass in.\n";
  return 0;
}
