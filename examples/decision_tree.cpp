// Copyright 2026 The pkgstream Authors.
// Section VI-B scenario: the streaming parallel decision tree (Ben-Haim &
// Tom-Tov) with feature-partitioned histograms.
//
// Trains on a 2-class Gaussian-blob stream and compares PKG against shuffle
// grouping on the two costs the paper highlights: live histograms
// (2·D·C·L vs W·D·C·L) and histogram merges per split decision.
//
//   ./examples/decision_tree [--train=30000] [--workers=8]

#include <iostream>

#include "apps/decision_tree.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/table.h"
#include "stats/imbalance.h"

using namespace pkgstream;

namespace {

constexpr uint32_t kFeatures = 4;

/// Class 0 centers at (-2, -1, 0, 0); class 1 at (+2, +1, 0, 0): the first
/// two features are informative, the last two are noise.
apps::NumericExample MakeExample(Rng* rng, uint32_t label) {
  apps::NumericExample ex;
  ex.label = label;
  double sign = label == 0 ? -1.0 : 1.0;
  ex.features.push_back(rng->Normal(2.0 * sign, 1.0));
  ex.features.push_back(rng->Normal(1.0 * sign, 1.0));
  ex.features.push_back(rng->Normal(0.0, 1.0));
  ex.features.push_back(rng->Normal(0.0, 1.0));
  return ex;
}

struct TreeOutcome {
  double accuracy = 0;
  uint32_t leaves = 0;
  uint64_t histograms = 0;
  uint64_t merges = 0;
  double load_imbalance = 0;
};

TreeOutcome RunOnce(partition::Technique technique, uint32_t workers,
                    int train, uint64_t seed) {
  partition::PartitionerConfig config;
  config.technique = technique;
  config.sources = 1;
  config.workers = workers;
  config.seed = seed;
  apps::DecisionTreeOptions options;
  options.num_features = kFeatures;
  options.num_classes = 2;
  options.histogram_bins = 48;
  options.min_leaf_samples = 2500;
  options.max_leaves = 16;
  auto tree = apps::StreamingDecisionTree::Create(config, options);
  PKGSTREAM_CHECK_OK(tree.status());

  Rng rng(seed);
  for (int i = 0; i < train; ++i) {
    (*tree)->Train(0, MakeExample(&rng, static_cast<uint32_t>(i % 2)));
  }
  TreeOutcome out;
  int correct = 0;
  const int tests = 4000;
  for (int i = 0; i < tests; ++i) {
    apps::NumericExample ex = MakeExample(&rng, static_cast<uint32_t>(i % 2));
    if ((*tree)->model().Predict(ex.features) == ex.label) ++correct;
  }
  out.accuracy = static_cast<double>(correct) / tests;
  out.leaves = (*tree)->model().num_leaves();
  out.histograms = (*tree)->TotalHistograms();
  out.merges = (*tree)->merge_operations();
  out.load_imbalance = stats::ImbalanceOf((*tree)->worker_loads());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  PKGSTREAM_CHECK_OK(Flags::Parse(argc, argv, &flags));
  const uint32_t workers = static_cast<uint32_t>(flags.GetInt("workers", 8));
  const int train = static_cast<int>(flags.GetInt("train", 30000));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  std::cout << "streaming parallel decision tree: " << kFeatures
            << " features, " << train << " examples, " << workers
            << " histogram workers\n\n";

  Table table({"technique", "accuracy", "leaves", "live histograms",
               "merges", "load imbalance"});
  for (auto [technique, label] :
       {std::pair{partition::Technique::kPkgLocal, "PKG"},
        std::pair{partition::Technique::kShuffle, "SG"},
        std::pair{partition::Technique::kHashing, "KG"}}) {
    TreeOutcome out = RunOnce(technique, workers, train, seed);
    table.AddRow({label, FormatFixed(out.accuracy * 100, 1) + "%",
                  std::to_string(out.leaves),
                  FormatWithCommas(out.histograms),
                  FormatWithCommas(out.merges),
                  FormatCompact(out.load_imbalance)});
  }
  table.Print(std::cout);
  std::cout << "\nPKG keeps <= 2 histograms per (feature, class, leaf) and\n"
               "merges two partials per split decision; SG keeps up to W\n"
               "and merges W (Section VI-B). Accuracy is unaffected.\n";
  return 0;
}
