// Copyright 2026 The pkgstream Authors.
// The breaking point of two choices — and the fix.
//
// Section IV proves PKG balances only while the hottest key's probability
// stays under ~2/W: its two candidate workers must absorb p1/2 of the
// stream each. This example simulates a "viral key" moment (one key takes
// 40% of the stream, like a breaking-news hashtag) on a 20-worker stage
// and compares key grouping, plain PKG, and the heavy-hitter-aware
// W-Choices extension, including the per-key state cost each one pays.
//
//   ./examples/extreme_skew [--messages=500000] [--workers=20] [--hot=0.4]

#include <iostream>
#include <map>
#include <set>

#include "common/flags.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/table.h"
#include "partition/factory.h"
#include "stats/imbalance.h"

using namespace pkgstream;

int main(int argc, char** argv) {
  Flags flags;
  PKGSTREAM_CHECK_OK(Flags::Parse(argc, argv, &flags));
  const uint64_t messages =
      static_cast<uint64_t>(flags.GetInt("messages", 500000));
  const uint32_t workers = static_cast<uint32_t>(flags.GetInt("workers", 20));
  const double hot = flags.GetDouble("hot", 0.4);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  std::cout << "viral-key scenario: one key carries "
            << FormatFixed(hot * 100, 0) << "% of "
            << FormatWithCommas(messages) << " messages; " << workers
            << " workers\n"
            << "two-choice limit 2/W = " << FormatFixed(2.0 / workers, 2)
            << " << p1 = " << FormatFixed(hot, 2)
            << ": plain PKG cannot balance this (Section IV)\n\n";

  Table out({"technique", "I(m)/m", "hot-key workers", "max tail-key workers"});
  for (auto [technique, label] :
       {std::pair{partition::Technique::kHashing, "KG"},
        std::pair{partition::Technique::kPkgLocal, "PKG"},
        std::pair{partition::Technique::kWChoices, "W-Choices"}}) {
    partition::PartitionerConfig config;
    config.technique = technique;
    config.sources = 1;
    config.workers = workers;
    config.seed = seed;
    auto p = partition::MakePartitioner(config);
    PKGSTREAM_CHECK_OK(p.status());

    Rng rng(seed);
    std::vector<uint64_t> loads(workers, 0);
    std::set<WorkerId> hot_workers;
    std::map<Key, std::set<WorkerId>> tail_spread;
    constexpr Key kHotKey = 0;
    for (uint64_t i = 0; i < messages; ++i) {
      Key k = rng.Bernoulli(hot) ? kHotKey : 1 + rng.UniformInt(100000);
      WorkerId w = (*p)->Route(0, k);
      ++loads[w];
      if (k == kHotKey) {
        hot_workers.insert(w);
      } else if (tail_spread.size() < 5000) {
        tail_spread[k].insert(w);
      }
    }
    size_t max_tail = 0;
    for (const auto& [_, s] : tail_spread) {
      max_tail = std::max(max_tail, s.size());
    }
    double imbalance = stats::ImbalanceOf(loads);
    out.AddRow({label, FormatCompact(imbalance / messages),
                std::to_string(hot_workers.size()),
                std::to_string(max_tail)});
  }
  out.Print(std::cout);
  std::cout
      << "\nKG pins the viral key to one worker (imbalance ~ p1 - 1/W of\n"
         "the stream). PKG halves that but still hits the two-choice\n"
         "wall. W-Choices detects the key with a SPACESAVING sketch and\n"
         "fans only *it* across all workers, restoring near-perfect\n"
         "balance while every tail key still touches at most two workers\n"
         "- so aggregation overhead stays per-key-bounded where it\n"
         "matters.\n";
  return 0;
}
