// Copyright 2026 The pkgstream Authors.
// Section V (Q3) scenario: streaming graph mining with skew on both sides.
//
// Streams R-MAT edges (a LiveJournal-like graph): the source PEs receive
// edges keyed by source vertex (skewed out-degrees!), invert each edge, and
// route by destination vertex to workers computing in-degrees. PKG must
// absorb skew on the workers *while its sources are themselves unevenly
// loaded* — the robustness property Figure 4 demonstrates.
//
//   ./examples/graph_degree [--edges=500000] [--sources=5] [--workers=10]

#include <iostream>

#include "common/flags.h"
#include "common/logging.h"
#include "common/table.h"
#include "simulation/runner.h"
#include "stats/frequency.h"
#include "workload/dataset.h"

using namespace pkgstream;

int main(int argc, char** argv) {
  Flags flags;
  PKGSTREAM_CHECK_OK(Flags::Parse(argc, argv, &flags));
  const uint64_t edges = static_cast<uint64_t>(flags.GetInt("edges", 500000));
  const uint32_t sources = static_cast<uint32_t>(flags.GetInt("sources", 5));
  const uint32_t workers = static_cast<uint32_t>(flags.GetInt("workers", 10));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  const auto& lj = workload::GetDataset(workload::DatasetId::kLJ);
  std::cout << "streaming in-degree over " << FormatWithCommas(edges)
            << " LiveJournal-like edges; " << sources << " sources keyed by\n"
            << "src vertex (skewed), " << workers
            << " workers keyed by dst vertex (PKG)\n\n";

  Table table({"source split", "source imbalance", "worker imbalance",
               "worker I/m"});
  for (auto [split, label] :
       {std::pair{simulation::SourceSplit::kShuffle, "uniform (shuffle)"},
        std::pair{simulation::SourceSplit::kKeyed, "keyed by src (skewed)"}}) {
    auto stream = workload::MakeEdgeStream(lj, 0.01, seed);
    PKGSTREAM_CHECK_OK(stream.status());
    simulation::Feed feed = simulation::MakeEdgeFeed(stream->get());
    simulation::RoutingConfig config;
    config.partitioner.technique = partition::Technique::kPkgLocal;
    config.partitioner.sources = sources;
    config.partitioner.workers = workers;
    config.partitioner.seed = seed;
    config.messages = edges;
    config.source_split = split;
    config.seed = seed;
    auto result = simulation::RunRouting(config, feed);
    PKGSTREAM_CHECK_OK(result.status());
    table.AddRow(
        {label, FormatCompact(stats::ImbalanceOf(result->source_loads)),
         FormatCompact(result->imbalance.final_imbalance),
         FormatCompact(result->imbalance.avg_fraction)});
  }
  table.Print(std::cout);

  // Show the top in-degree vertices as the application output.
  auto stream = workload::MakeEdgeStream(lj, 0.01, seed);
  PKGSTREAM_CHECK_OK(stream.status());
  stats::FrequencyTable in_degree;
  for (uint64_t i = 0; i < edges; ++i) in_degree.Add((*stream)->Next().dst);
  std::cout << "\nhottest vertices by in-degree:\n";
  Table top({"vertex", "in-degree"});
  for (const auto& [v, d] : in_degree.TopK(5)) {
    top.AddRow({"v" + std::to_string(v), FormatWithCommas(d)});
  }
  top.Print(std::cout);
  std::cout << "\nPKG's worker balance is unaffected by the skewed source\n"
               "split: each source only needs to balance its own portion\n"
               "(Section III-B), so PKG can be chained after key grouping.\n";
  return 0;
}
