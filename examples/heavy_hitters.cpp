// Copyright 2026 The pkgstream Authors.
// Section VI-C scenario: distributed heavy hitters with SPACESAVING.
//
// Streams a drifting cashtag-like workload through the worker/merger
// topology under PKG and reports the discovered top-k against exact
// ground truth, plus the error-bound comparison between PKG (2 summaries
// per key) and shuffle grouping (up to W summaries per key).
//
//   ./examples/heavy_hitters [--messages=300000] [--workers=8]

#include <iostream>

#include "apps/heavy_hitters.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/table.h"
#include "engine/logical_runtime.h"
#include "stats/frequency.h"
#include "workload/dataset.h"

using namespace pkgstream;

namespace {

struct HhOutcome {
  std::vector<apps::SpaceSavingEntry> found;
  uint64_t worst_error = 0;
  double worker_imbalance = 0;
};

HhOutcome RunOnce(partition::Technique technique, uint64_t messages,
                  uint32_t workers, uint64_t seed,
                  stats::FrequencyTable* exact) {
  apps::HeavyHitterTopology hh = apps::MakeHeavyHitterTopology(
      technique, /*sources=*/2, workers, /*capacity=*/256, seed);
  auto rt = engine::LogicalRuntime::Create(&hh.topology);
  PKGSTREAM_CHECK_OK(rt.status());

  // The cashtag preset: drifting skew, like real ticker streams.
  auto stream = workload::MakeKeyStream(
      workload::GetDataset(workload::DatasetId::kCT), 1.0, seed);
  PKGSTREAM_CHECK_OK(stream.status());
  for (uint64_t i = 0; i < messages; ++i) {
    engine::Message m;
    m.key = (*stream)->Next();
    m.tag = apps::kTagItem;
    if (exact) exact->Add(m.key);
    (*rt)->Inject(hh.spout, static_cast<SourceId>(i % 2), m);
  }
  (*rt)->Finish();

  HhOutcome out;
  auto* merger =
      static_cast<apps::HeavyHitterMerger*>((*rt)->GetOperator(hh.merger, 0));
  out.found = merger->TopK(10);
  for (const auto& e : out.found) {
    out.worst_error = std::max(out.worst_error, e.error);
  }
  out.worker_imbalance = (*rt)->Metrics()[hh.worker.index].imbalance;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  PKGSTREAM_CHECK_OK(Flags::Parse(argc, argv, &flags));
  const uint64_t messages =
      static_cast<uint64_t>(flags.GetInt("messages", 300000));
  const uint32_t workers = static_cast<uint32_t>(flags.GetInt("workers", 8));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  std::cout << "distributed heavy hitters on a drifting cashtag stream ("
            << FormatWithCommas(messages) << " messages, " << workers
            << " summarizers, SPACESAVING capacity 256)\n\n";

  stats::FrequencyTable exact;
  auto pkg = RunOnce(partition::Technique::kPkgLocal, messages, workers, seed,
                     &exact);
  auto sg = RunOnce(partition::Technique::kShuffle, messages, workers, seed,
                    nullptr);

  auto truth = exact.TopK(10);
  Table table({"rank", "true key", "true count", "PKG estimate",
               "PKG max-overcount"});
  for (size_t i = 0; i < truth.size(); ++i) {
    uint64_t est = 0;
    uint64_t err = 0;
    for (const auto& e : pkg.found) {
      if (e.key == truth[i].first) {
        est = e.count;
        err = e.error;
      }
    }
    table.AddRow({std::to_string(i + 1), "$" + std::to_string(truth[i].first),
                  FormatWithCommas(truth[i].second),
                  est ? FormatWithCommas(est) : "(missed)",
                  std::to_string(err)});
  }
  table.Print(std::cout);

  std::cout << "\nerror / load comparison:\n";
  Table cmp({"technique", "worst top-10 error bound", "worker imbalance"});
  cmp.AddRow({"PKG (<=2 summaries per key)", FormatWithCommas(pkg.worst_error),
              FormatCompact(pkg.worker_imbalance)});
  cmp.AddRow({"SG (up to W summaries per key)",
              FormatWithCommas(sg.worst_error),
              FormatCompact(sg.worker_imbalance)});
  cmp.Print(std::cout);
  std::cout << "\nPKG keeps each key's error to two summary terms (Section\n"
               "VI-C) while balancing the summarizers — SG balances too but\n"
               "spreads each key across all workers.\n";
  return 0;
}
