// Copyright 2026 The pkgstream Authors.
// Section VI-A scenario: streaming naïve Bayes with vertical parallelism.
//
// Trains a text-classification-like model whose feature frequencies are
// skewed (few very common features), compares accuracy, worker balance,
// counter replication and query probe cost across KG / PKG / SG.
//
//   ./examples/naive_bayes [--train=20000] [--test=2000] [--workers=8]

#include <iostream>

#include "apps/naive_bayes.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/table.h"
#include "stats/imbalance.h"

using namespace pkgstream;

namespace {

constexpr uint32_t kFeatures = 24;
constexpr uint32_t kClasses = 2;

/// Synthetic "document": sparse class-dependent features whose document
/// frequency follows a Zipf-like decay — feature 0 appears in nearly every
/// document (like "the"), later features get rare. This is the skew that
/// makes KG's per-feature counters imbalanced (Section VI-A).
apps::LabeledExample MakeExample(Rng* rng, uint32_t label) {
  apps::LabeledExample ex;
  ex.label = label;
  for (uint32_t f = 0; f < kFeatures; ++f) {
    double doc_frequency = 1.0 / (1.0 + 0.6 * f);
    if (!rng->Bernoulli(doc_frequency)) {
      ex.feature_values.push_back(apps::kAbsentFeature);
      continue;
    }
    double informative = 0.55 + 0.4 / (1.0 + f * 0.3);
    bool agree = rng->Bernoulli(informative);
    ex.feature_values.push_back(1 + (agree ? label : 1 - label));
  }
  return ex;
}

struct NbOutcome {
  double accuracy = 0;
  double load_imbalance = 0;
  uint64_t counters = 0;
  double probes_per_query = 0;
};

NbOutcome RunOnce(partition::Technique technique, uint32_t workers,
                  int train, int test, uint64_t seed) {
  partition::PartitionerConfig config;
  config.technique = technique;
  config.sources = 1;
  config.workers = workers;
  config.seed = seed;
  auto nb = apps::DistributedNaiveBayes::Create(config, kFeatures, kClasses);
  PKGSTREAM_CHECK_OK(nb.status());

  Rng rng(seed);
  for (int i = 0; i < train; ++i) {
    (*nb)->Train(0, MakeExample(&rng, static_cast<uint32_t>(i % 2)));
  }
  NbOutcome out;
  int correct = 0;
  uint64_t probes = 0;
  for (int i = 0; i < test; ++i) {
    apps::LabeledExample ex = MakeExample(&rng, static_cast<uint32_t>(i % 2));
    uint64_t q = 0;
    if ((*nb)->Classify(ex.feature_values, &q) == ex.label) ++correct;
    probes += q;
  }
  out.accuracy = static_cast<double>(correct) / test;
  out.load_imbalance = stats::ImbalanceOf((*nb)->worker_loads());
  out.counters = (*nb)->TotalCounters();
  out.probes_per_query = static_cast<double>(probes) / test;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  PKGSTREAM_CHECK_OK(Flags::Parse(argc, argv, &flags));
  const uint32_t workers = static_cast<uint32_t>(flags.GetInt("workers", 8));
  const int train = static_cast<int>(flags.GetInt("train", 20000));
  const int test = static_cast<int>(flags.GetInt("test", 2000));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  std::cout << "distributed naive Bayes: " << kFeatures << " features, "
            << train << " training examples, " << workers << " workers\n\n";

  Table table({"technique", "accuracy", "train-load imbalance",
               "counters stored", "probes / query"});
  for (auto [technique, label] :
       {std::pair{partition::Technique::kHashing, "KG"},
        std::pair{partition::Technique::kPkgLocal, "PKG"},
        std::pair{partition::Technique::kShuffle, "SG"}}) {
    NbOutcome out = RunOnce(technique, workers, train, test, seed);
    table.AddRow({label, FormatFixed(out.accuracy * 100, 1) + "%",
                  FormatCompact(out.load_imbalance),
                  FormatWithCommas(out.counters),
                  FormatFixed(out.probes_per_query, 0)});
  }
  table.Print(std::cout);
  std::cout << "\nAll three learn the same model quality; PKG balances the\n"
               "training load like SG but answers queries by probing only\n"
               "two deterministic workers per feature (Section VI-A),\n"
               "instead of broadcasting to all " << workers << ".\n";
  return 0;
}
