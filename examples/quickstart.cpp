// Copyright 2026 The pkgstream Authors.
// Quickstart: the smallest end-to-end use of the library.
//
// Builds a skewed key stream, routes it through PARTIAL KEY GROUPING and
// through plain hashing, and prints the resulting worker loads side by
// side — the paper's headline effect in ~60 lines.
//
//   ./examples/quickstart [--workers=8] [--messages=1000000] [--seed=42]

#include <iostream>

#include "common/flags.h"
#include "common/logging.h"
#include "common/table.h"
#include "partition/factory.h"
#include "stats/imbalance.h"
#include "workload/static_distribution.h"
#include "workload/zipf.h"

using namespace pkgstream;

int main(int argc, char** argv) {
  Flags flags;
  PKGSTREAM_CHECK_OK(Flags::Parse(argc, argv, &flags));
  const uint32_t workers = static_cast<uint32_t>(flags.GetInt("workers", 8));
  const uint64_t messages =
      static_cast<uint64_t>(flags.GetInt("messages", 1000000));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  // 1. A Zipf workload: few very hot keys, long cold tail.
  auto dist = std::make_shared<workload::StaticDistribution>(
      workload::ZipfWeights(/*num_keys=*/100000, /*exponent=*/1.0), "zipf");
  std::cout << "workload: 100k keys, zipf(1.0), p1 = "
            << FormatFixed(dist->P1() * 100, 1) << "% of " << messages
            << " messages\n\n";

  // 2. Two partitioners: PKG (the paper's contribution) vs hashing (KG).
  partition::PartitionerConfig pkg_config;
  pkg_config.technique = partition::Technique::kPkgLocal;
  pkg_config.workers = workers;
  pkg_config.seed = seed;
  auto pkg = partition::MakePartitioner(pkg_config);
  PKGSTREAM_CHECK_OK(pkg.status());

  partition::PartitionerConfig kg_config = pkg_config;
  kg_config.technique = partition::Technique::kHashing;
  auto kg = partition::MakePartitioner(kg_config);
  PKGSTREAM_CHECK_OK(kg.status());

  // 3. Route the same stream through both and track worker loads.
  workload::IidKeyStream stream(dist, seed);
  std::vector<uint64_t> pkg_loads(workers, 0);
  std::vector<uint64_t> kg_loads(workers, 0);
  for (uint64_t i = 0; i < messages; ++i) {
    Key k = stream.Next();
    ++pkg_loads[(*pkg)->Route(/*source=*/0, k)];
    ++kg_loads[(*kg)->Route(/*source=*/0, k)];
  }

  // 4. Compare.
  Table table({"worker", "PKG load", "KG load"});
  for (uint32_t w = 0; w < workers; ++w) {
    table.AddRow({std::to_string(w), FormatWithCommas(pkg_loads[w]),
                  FormatWithCommas(kg_loads[w])});
  }
  table.Print(std::cout);
  std::cout << "\nimbalance I(m) = max - avg:\n";
  std::cout << "  PKG: " << FormatCompact(stats::ImbalanceOf(pkg_loads))
            << "\n";
  std::cout << "  KG:  " << FormatCompact(stats::ImbalanceOf(kg_loads))
            << "\n";
  std::cout << "\nPKG splits every key over (at most) two workers and picks\n"
               "the less loaded one per message - no coordination, no\n"
               "routing table, near-perfect balance.\n";
  return 0;
}
