// Copyright 2026 The pkgstream Authors.
// The paper's running example (Section II): streaming top-k word count.
//
// Builds the spout -> counters -> aggregator topology on the deterministic
// runtime, feeds it a synthetic tweet stream (Zipf-distributed words,
// rendered as text), and prints the top-k words with per-technique
// worker-load and memory comparisons.
//
//   ./examples/word_count_topk [--messages=200000] [--workers=5] [--topk=10]

#include <iostream>

#include "apps/wordcount.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/table.h"
#include "engine/logical_runtime.h"
#include "workload/static_distribution.h"
#include "workload/words.h"
#include "workload/zipf.h"

using namespace pkgstream;

namespace {

struct RunOutcome {
  std::vector<std::pair<Key, uint64_t>> topk;
  double counter_imbalance = 0;
  uint64_t counter_memory = 0;
};

RunOutcome RunOnce(partition::Technique technique, uint64_t messages,
                   uint32_t workers, size_t topk, uint64_t seed) {
  apps::WordCountTopology wc = apps::MakeWordCountTopology(
      technique, /*sources=*/2, workers, /*tick_period=*/10000, topk, seed);
  auto rt = engine::LogicalRuntime::Create(&wc.topology);
  PKGSTREAM_CHECK_OK(rt.status());

  auto dist = std::make_shared<workload::StaticDistribution>(
      workload::ZipfWeights(20000, 1.05), "words");
  workload::IidKeyStream stream(dist, seed);
  RunOutcome out;
  for (uint64_t i = 0; i < messages; ++i) {
    engine::Message m;
    m.key = stream.Next();
    m.tag = apps::kTagWord;
    (*rt)->Inject(wc.spout, static_cast<SourceId>(i % 2), m);
    // Sample counter memory mid-aggregation-window (right before a flush
    // would empty the partial counters).
    if ((i + 1) % 10000 == 9999) {
      out.counter_memory = std::max(
          out.counter_memory,
          (*rt)->Metrics()[wc.counter.index].memory_counters);
    }
  }
  (*rt)->Finish();

  auto metrics = (*rt)->Metrics();
  out.counter_imbalance = metrics[wc.counter.index].imbalance;
  out.counter_memory =
      std::max(out.counter_memory, metrics[wc.counter.index].memory_counters);
  auto* agg = static_cast<apps::TopKAggregator*>(
      (*rt)->GetOperator(wc.aggregator, 0));
  out.topk = agg->TopK();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  PKGSTREAM_CHECK_OK(Flags::Parse(argc, argv, &flags));
  const uint64_t messages =
      static_cast<uint64_t>(flags.GetInt("messages", 200000));
  const uint32_t workers = static_cast<uint32_t>(flags.GetInt("workers", 5));
  const size_t topk = static_cast<size_t>(flags.GetInt("topk", 10));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  std::cout << "streaming top-" << topk << " word count over "
            << FormatWithCommas(messages) << " words, " << workers
            << " counter instances\n\n";

  auto pkg = RunOnce(partition::Technique::kPkgLocal, messages, workers,
                     topk, seed);
  auto kg = RunOnce(partition::Technique::kHashing, messages, workers, topk,
                    seed);
  auto sg = RunOnce(partition::Technique::kShuffle, messages, workers, topk,
                    seed);

  Table top({"rank", "word", "count (PKG)"});
  for (size_t i = 0; i < pkg.topk.size(); ++i) {
    top.AddRow({std::to_string(i + 1), workload::KeyToWord(pkg.topk[i].first),
                FormatWithCommas(pkg.topk[i].second)});
  }
  top.Print(std::cout);

  // All three techniques must agree on the counts (they do — the partial
  // counts are aggregated exactly); what differs is load and memory.
  bool agree = pkg.topk == kg.topk && pkg.topk == sg.topk;
  std::cout << "\ntop-k agrees across PKG/KG/SG: " << (agree ? "yes" : "NO")
            << "\n\n";

  Table compare({"technique", "counter imbalance I(m)", "counter memory"});
  compare.AddRow({"PKG", FormatCompact(pkg.counter_imbalance),
                  FormatWithCommas(pkg.counter_memory)});
  compare.AddRow({"KG", FormatCompact(kg.counter_imbalance),
                  FormatWithCommas(kg.counter_memory)});
  compare.AddRow({"SG", FormatCompact(sg.counter_imbalance),
                  FormatWithCommas(sg.counter_memory)});
  compare.Print(std::cout);
  std::cout << "\nPKG: near-SG balance at near-KG memory — the paper's\n"
               "position between the two classic groupings.\n";
  return 0;
}
