// Copyright 2026 The pkgstream Authors.

#include "apps/bht_histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace pkgstream {
namespace apps {

BhtHistogram::BhtHistogram(size_t max_bins) : max_bins_(max_bins) {
  PKGSTREAM_CHECK(max_bins >= 2);
  bins_.reserve(max_bins + 1);
}

void BhtHistogram::InsertBin(Bin bin) {
  auto it = std::lower_bound(
      bins_.begin(), bins_.end(), bin.p,
      [](const Bin& b, double p) { return b.p < p; });
  if (it != bins_.end() && it->p == bin.p) {
    it->m += bin.m;  // exact centroid match: just accumulate
    return;
  }
  bins_.insert(it, bin);
}

void BhtHistogram::Shrink() {
  while (bins_.size() > max_bins_) {
    // Find the adjacent pair with minimal centroid gap.
    size_t best = 0;
    double best_gap = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i + 1 < bins_.size(); ++i) {
      double gap = bins_[i + 1].p - bins_[i].p;
      if (gap < best_gap) {
        best_gap = gap;
        best = i;
      }
    }
    Bin& a = bins_[best];
    const Bin& b = bins_[best + 1];
    double m = a.m + b.m;
    a = Bin{(a.p * a.m + b.p * b.m) / m, m};
    bins_.erase(bins_.begin() + static_cast<long>(best) + 1);
  }
}

void BhtHistogram::Update(double value) {
  if (total_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++total_;
  InsertBin(Bin{value, 1.0});
  Shrink();
}

void BhtHistogram::Merge(const BhtHistogram& other) {
  if (other.total_ == 0) return;
  if (total_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  total_ += other.total_;
  for (const auto& bin : other.bins_) InsertBin(bin);
  Shrink();
}

double BhtHistogram::Sum(double value) const {
  if (total_ == 0) return 0.0;
  if (value < bins_.front().p) {
    // Below the first centroid: linearly fade in from the true minimum.
    if (value < min_) return 0.0;
    double span = bins_.front().p - min_;
    double frac = span > 0 ? (value - min_) / span : 1.0;
    return 0.5 * bins_.front().m * frac;
  }
  if (value >= bins_.back().p) {
    if (value >= max_) return static_cast<double>(total_);
    double span = max_ - bins_.back().p;
    double frac = span > 0 ? (value - bins_.back().p) / span : 1.0;
    return static_cast<double>(total_) -
           0.5 * bins_.back().m * (1.0 - frac);
  }
  // Find i with p_i <= value < p_{i+1}. (Algorithm 3.)
  size_t i = 0;
  for (size_t j = 0; j + 1 < bins_.size(); ++j) {
    if (bins_[j].p <= value && value < bins_[j + 1].p) {
      i = j;
      break;
    }
  }
  const Bin& bi = bins_[i];
  const Bin& bj = bins_[i + 1];
  double gap = bj.p - bi.p;
  double frac = gap > 0 ? (value - bi.p) / gap : 0.0;
  // m_b: interpolated count at `value` between the two bin heights.
  double mb = bi.m + (bj.m - bi.m) * frac;
  double s = (bi.m + mb) * frac / 2.0;
  for (size_t j = 0; j < i; ++j) s += bins_[j].m;
  s += bi.m / 2.0;
  return s;
}

std::vector<double> BhtHistogram::Uniform(size_t count) const {
  std::vector<double> out;
  if (total_ == 0 || count < 2 || bins_.size() < 2) return out;
  for (size_t j = 1; j < count; ++j) {
    double target = static_cast<double>(j) * static_cast<double>(total_) /
                    static_cast<double>(count);
    // Binary search the value u with Sum(u) = target between min and max.
    double lo = min_;
    double hi = max_;
    for (int iter = 0; iter < 40; ++iter) {
      double mid = 0.5 * (lo + hi);
      if (Sum(mid) < target) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    out.push_back(0.5 * (lo + hi));
  }
  return out;
}

}  // namespace apps
}  // namespace pkgstream
