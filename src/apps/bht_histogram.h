// Copyright 2026 The pkgstream Authors.
// The Ben-Haim & Tom-Tov streaming histogram (JMLR 11, 2010) — the sketch at
// the heart of the streaming parallel decision tree the paper discusses in
// Section VI-B. A fixed number of (centroid, count) bins summarizes an
// unbounded stream of reals; histograms built on different sub-streams merge
// into a summary of the union, which is what lets PKG keep only 2 histograms
// per feature-class-leaf triplet instead of W.
//
// Implements the four procedures of the original paper: update (alg. 1),
// merge (alg. 2), sum (alg. 3) and uniform (alg. 4).

#ifndef PKGSTREAM_APPS_BHT_HISTOGRAM_H_
#define PKGSTREAM_APPS_BHT_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pkgstream {
namespace apps {

/// \brief A fixed-size mergeable histogram over doubles.
class BhtHistogram {
 public:
  /// `max_bins` is the paper's B; accuracy improves with B.
  explicit BhtHistogram(size_t max_bins);

  /// Adds one observation (Algorithm 1: insert a unit bin, then shrink).
  void Update(double value);

  /// Merges another histogram (Algorithm 2). Bin caps need not match; the
  /// result keeps this histogram's cap.
  void Merge(const BhtHistogram& other);

  /// Estimated number of observations <= value (Algorithm 3: trapezoidal
  /// interpolation within the straddling bin pair).
  double Sum(double value) const;

  /// B~ split candidates u_1..u_{count-1} such that each interval holds
  /// ~equal mass (Algorithm 4). Returns fewer when the histogram is small.
  std::vector<double> Uniform(size_t count) const;

  /// Total observations represented.
  uint64_t TotalCount() const { return total_; }

  /// Number of live bins (<= max_bins).
  size_t NumBins() const { return bins_.size(); }
  size_t max_bins() const { return max_bins_; }

  /// Bin accessors for tests.
  double BinCentroid(size_t i) const { return bins_[i].p; }
  double BinCount(size_t i) const { return bins_[i].m; }

  double MinValue() const { return min_; }
  double MaxValue() const { return max_; }

 private:
  struct Bin {
    double p;  // centroid
    double m;  // count (fractional after merges)
  };

  /// Inserts a bin keeping the vector sorted by centroid.
  void InsertBin(Bin bin);
  /// Merges the two adjacent bins with the closest centroids until the cap
  /// holds.
  void Shrink();

  size_t max_bins_;
  std::vector<Bin> bins_;  // sorted by centroid
  uint64_t total_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace apps
}  // namespace pkgstream

#endif  // PKGSTREAM_APPS_BHT_HISTOGRAM_H_
