// Copyright 2026 The pkgstream Authors.

#include "apps/decision_tree.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace pkgstream {
namespace apps {

double Entropy(const std::vector<double>& class_masses) {
  double total = 0.0;
  for (double m : class_masses) total += std::max(m, 0.0);
  if (total <= 0.0) return 0.0;
  double h = 0.0;
  for (double m : class_masses) {
    if (m <= 0.0) continue;
    double p = m / total;
    h -= p * std::log2(p);
  }
  return h;
}

DecisionTreeModel::DecisionTreeModel(uint32_t num_classes)
    : num_classes_(num_classes) {
  PKGSTREAM_CHECK(num_classes >= 2);
  Node root;
  root.class_counts.assign(num_classes, 0);
  nodes_.push_back(std::move(root));
}

uint32_t DecisionTreeModel::LeafOf(const std::vector<double>& features) const {
  uint32_t node = 0;
  while (!nodes_[node].is_leaf) {
    const Node& n = nodes_[node];
    PKGSTREAM_DCHECK(n.feature < features.size());
    node = features[n.feature] <= n.threshold
               ? static_cast<uint32_t>(n.left)
               : static_cast<uint32_t>(n.right);
  }
  return node;
}

uint32_t DecisionTreeModel::Predict(const std::vector<double>& features) const {
  const Node& leaf = nodes_[LeafOf(features)];
  uint32_t best = 0;
  for (uint32_t c = 1; c < num_classes_; ++c) {
    if (leaf.class_counts[c] > leaf.class_counts[best]) best = c;
  }
  return best;
}

void DecisionTreeModel::Observe(uint32_t leaf, uint32_t label) {
  PKGSTREAM_DCHECK(leaf < nodes_.size() && nodes_[leaf].is_leaf);
  PKGSTREAM_DCHECK(label < num_classes_);
  ++nodes_[leaf].class_counts[label];
  ++nodes_[leaf].samples;
}

std::pair<uint32_t, uint32_t> DecisionTreeModel::Split(uint32_t leaf,
                                                       uint32_t feature,
                                                       double threshold) {
  PKGSTREAM_CHECK(leaf < nodes_.size() && nodes_[leaf].is_leaf);
  Node left;
  left.class_counts.assign(num_classes_, 0);
  Node right = left;
  uint32_t left_index = static_cast<uint32_t>(nodes_.size());
  nodes_.push_back(std::move(left));
  uint32_t right_index = static_cast<uint32_t>(nodes_.size());
  nodes_.push_back(std::move(right));
  Node& parent = nodes_[leaf];
  parent.is_leaf = false;
  parent.feature = feature;
  parent.threshold = threshold;
  parent.left = static_cast<int32_t>(left_index);
  parent.right = static_cast<int32_t>(right_index);
  ++num_leaves_;
  return {left_index, right_index};
}

uint64_t DecisionTreeModel::LeafSamples(uint32_t leaf) const {
  PKGSTREAM_DCHECK(leaf < nodes_.size());
  return nodes_[leaf].samples;
}

const std::vector<uint64_t>& DecisionTreeModel::LeafClassCounts(
    uint32_t leaf) const {
  PKGSTREAM_DCHECK(leaf < nodes_.size());
  return nodes_[leaf].class_counts;
}

Result<std::unique_ptr<StreamingDecisionTree>> StreamingDecisionTree::Create(
    partition::PartitionerConfig config, DecisionTreeOptions options) {
  if (options.num_features < 1 || options.num_classes < 2) {
    return Status::InvalidArgument(
        "decision tree needs >= 1 feature and >= 2 classes");
  }
  if (config.technique == partition::Technique::kOffGreedy) {
    return Status::InvalidArgument(
        "Off-Greedy is not applicable to decision-tree training");
  }
  auto tree = std::unique_ptr<StreamingDecisionTree>(
      new StreamingDecisionTree(config, options));
  PKGSTREAM_ASSIGN_OR_RETURN(tree->partitioner_,
                             partition::MakePartitioner(config));
  return tree;
}

StreamingDecisionTree::StreamingDecisionTree(
    partition::PartitionerConfig config, DecisionTreeOptions options)
    : config_(config),
      options_(options),
      model_(options.num_classes),
      workers_(config.workers),
      worker_loads_(config.workers, 0) {}

void StreamingDecisionTree::Train(SourceId source,
                                  const NumericExample& example) {
  PKGSTREAM_CHECK(example.features.size() == options_.num_features);
  PKGSTREAM_CHECK(example.label < options_.num_classes);
  ++examples_;
  uint32_t leaf = model_.LeafOf(example.features);
  model_.Observe(leaf, example.label);

  const bool horizontal =
      config_.technique == partition::Technique::kShuffle ||
      config_.technique == partition::Technique::kRandom;
  if (horizontal) {
    // The original SPDT (Section VI-B): whole examples are shuffled among
    // workers; every worker keeps histograms for *all* features of its
    // sub-stream — W x D x C x L histograms in total.
    WorkerId w = partitioner_->Route(source, examples_);
    for (uint32_t f = 0; f < options_.num_features; ++f) {
      ++worker_loads_[w];
      UpdateHistogram(w, f, leaf, example.label, example.features[f]);
    }
  } else {
    // The paper's PKG variant: one message per feature, routed by feature
    // id, so a feature's histograms live on at most MaxWorkersPerKey()
    // workers (2 for PKG, 1 for KG).
    for (uint32_t f = 0; f < options_.num_features; ++f) {
      WorkerId w = partitioner_->Route(source, f);
      ++worker_loads_[w];
      UpdateHistogram(w, f, leaf, example.label, example.features[f]);
    }
  }
  uint64_t attempt_at = options_.min_leaf_samples;
  auto backoff = next_split_attempt_.find(leaf);
  if (backoff != next_split_attempt_.end()) {
    attempt_at = backoff->second;
  }
  if (model_.LeafSamples(leaf) >= attempt_at &&
      model_.num_leaves() < options_.max_leaves) {
    TrySplit(leaf);
  }
}

void StreamingDecisionTree::UpdateHistogram(WorkerId w, uint32_t feature,
                                            uint32_t leaf, uint32_t label,
                                            double value) {
  auto key = TripletKey(feature, leaf, label);
  auto it = workers_[w].find(key);
  if (it == workers_[w].end()) {
    it = workers_[w].emplace(key, BhtHistogram(options_.histogram_bins))
             .first;
  }
  it->second.Update(value);
}

BhtHistogram StreamingDecisionTree::MergedHistogram(uint32_t feature,
                                                    uint32_t leaf,
                                                    uint32_t label) {
  BhtHistogram merged(options_.histogram_bins);
  auto key = TripletKey(feature, leaf, label);
  for (auto& worker : workers_) {
    auto it = worker.find(key);
    if (it == worker.end()) continue;
    merged.Merge(it->second);
    ++merges_;
  }
  return merged;
}

void StreamingDecisionTree::TrySplit(uint32_t leaf) {
  const auto& counts = model_.LeafClassCounts(leaf);
  std::vector<double> parent_masses(counts.begin(), counts.end());
  double parent_entropy = Entropy(parent_masses);
  double parent_total = 0.0;
  for (double m : parent_masses) parent_total += m;
  if (parent_entropy <= options_.min_gain || parent_total == 0.0) return;

  double best_gain = 0.0;
  uint32_t best_feature = 0;
  double best_threshold = 0.0;
  bool found = false;

  for (uint32_t f = 0; f < options_.num_features; ++f) {
    // Merge per-class histograms once per feature.
    std::vector<BhtHistogram> per_class;
    per_class.reserve(options_.num_classes);
    BhtHistogram all(options_.histogram_bins);
    for (uint32_t c = 0; c < options_.num_classes; ++c) {
      per_class.push_back(MergedHistogram(f, leaf, c));
      all.Merge(per_class.back());
    }
    if (all.TotalCount() == 0) continue;
    for (double t : all.Uniform(options_.candidate_splits)) {
      std::vector<double> left_masses(options_.num_classes, 0.0);
      std::vector<double> right_masses(options_.num_classes, 0.0);
      for (uint32_t c = 0; c < options_.num_classes; ++c) {
        double left = per_class[c].Sum(t);
        double total = static_cast<double>(per_class[c].TotalCount());
        left_masses[c] = left;
        right_masses[c] = std::max(total - left, 0.0);
      }
      double left_total = 0.0;
      double right_total = 0.0;
      for (uint32_t c = 0; c < options_.num_classes; ++c) {
        left_total += left_masses[c];
        right_total += right_masses[c];
      }
      double total = left_total + right_total;
      if (left_total <= 0.0 || right_total <= 0.0 || total <= 0.0) continue;
      double gain = parent_entropy -
                    (left_total / total) * Entropy(left_masses) -
                    (right_total / total) * Entropy(right_masses);
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = f;
        best_threshold = t;
        found = true;
      }
    }
  }
  if (!found || best_gain < options_.min_gain) {
    // Unsplittable right now: back off so we do not re-merge every
    // histogram on every subsequent message (50% more samples first).
    next_split_attempt_[leaf] =
        model_.LeafSamples(leaf) + options_.min_leaf_samples / 2;
    return;
  }
  model_.Split(leaf, best_feature, best_threshold);
  DropLeafHistograms(leaf);
}

void StreamingDecisionTree::DropLeafHistograms(uint32_t leaf) {
  for (auto& worker : workers_) {
    for (uint32_t f = 0; f < options_.num_features; ++f) {
      for (uint32_t c = 0; c < options_.num_classes; ++c) {
        worker.erase(TripletKey(f, leaf, c));
      }
    }
  }
}

uint64_t StreamingDecisionTree::TotalHistograms() const {
  uint64_t total = 0;
  for (const auto& w : workers_) total += w.size();
  return total;
}

}  // namespace apps
}  // namespace pkgstream
