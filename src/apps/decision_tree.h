// Copyright 2026 The pkgstream Authors.
// Streaming parallel decision tree (Section VI-B), after Ben-Haim & Tom-Tov
// (JMLR 2010): workers build fixed-size histograms per
// (feature, class, leaf) triplet on their sub-streams; an aggregator merges
// them, evaluates candidate thresholds, and grows the tree.
//
// The partitioning technique decides histogram placement by feature key:
//   SG  — every worker may hold a partial for every triplet: W x D x C x L
//         histograms, and each split decision merges W partials per triplet;
//   PKG — a feature's partials live on its 2 hash candidates: 2 x D x C x L
//         histograms and 2-way merges (the paper's memory/aggregation win);
//   KG  — one worker per feature: no merge, but skewed feature load.

#ifndef PKGSTREAM_APPS_DECISION_TREE_H_
#define PKGSTREAM_APPS_DECISION_TREE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "apps/bht_histogram.h"
#include "common/result.h"
#include "partition/factory.h"

namespace pkgstream {
namespace apps {

/// \brief A training example with real-valued features.
struct NumericExample {
  std::vector<double> features;
  uint32_t label = 0;
};

/// \brief Tuning knobs for the streaming tree.
struct DecisionTreeOptions {
  uint32_t num_features = 2;
  uint32_t num_classes = 2;
  size_t histogram_bins = 32;        ///< B, the per-histogram bin cap
  uint64_t min_leaf_samples = 2000;  ///< samples at a leaf before splitting
  uint32_t max_leaves = 32;
  double min_gain = 1e-3;            ///< entropy gain required to split
  size_t candidate_splits = 10;      ///< B~ candidate thresholds per feature
};

/// \brief The tree grown by the aggregator.
class DecisionTreeModel {
 public:
  explicit DecisionTreeModel(uint32_t num_classes);

  /// Index of the leaf node an example falls into.
  uint32_t LeafOf(const std::vector<double>& features) const;

  /// Majority-class prediction at the example's leaf.
  uint32_t Predict(const std::vector<double>& features) const;

  /// Records a labelled example at its leaf (class counts for prediction).
  void Observe(uint32_t leaf, uint32_t label);

  /// Splits `leaf` on (feature, threshold); returns {left, right} indices.
  std::pair<uint32_t, uint32_t> Split(uint32_t leaf, uint32_t feature,
                                      double threshold);

  uint32_t num_leaves() const { return num_leaves_; }
  uint64_t LeafSamples(uint32_t leaf) const;
  const std::vector<uint64_t>& LeafClassCounts(uint32_t leaf) const;
  bool IsLeaf(uint32_t node) const { return nodes_[node].is_leaf; }
  size_t num_nodes() const { return nodes_.size(); }

 private:
  struct Node {
    bool is_leaf = true;
    uint32_t feature = 0;
    double threshold = 0.0;
    int32_t left = -1;
    int32_t right = -1;
    std::vector<uint64_t> class_counts;
    uint64_t samples = 0;
  };

  uint32_t num_classes_;
  uint32_t num_leaves_ = 1;
  std::vector<Node> nodes_;
};

/// \brief The distributed trainer: partitioned histogram workers plus the
/// split-deciding aggregator, driven synchronously.
class StreamingDecisionTree {
 public:
  static Result<std::unique_ptr<StreamingDecisionTree>> Create(
      partition::PartitionerConfig config, DecisionTreeOptions options);

  /// Trains on one example: the source computes the example's leaf from the
  /// current model, then emits one histogram update per feature, routed by
  /// feature id. Splits happen inline when a leaf has enough samples.
  void Train(SourceId source, const NumericExample& example);

  uint32_t Predict(const std::vector<double>& features) const {
    return model_.Predict(features.empty() ? features : features);
  }

  const DecisionTreeModel& model() const { return model_; }

  /// Live histograms across workers (the paper's 2DCL vs WDCL memory).
  uint64_t TotalHistograms() const;

  /// Histogram merges performed while deciding splits (aggregation cost).
  uint64_t merge_operations() const { return merges_; }

  /// Per-worker histogram-update messages (load balance).
  const std::vector<uint64_t>& worker_loads() const { return worker_loads_; }

  uint64_t examples_trained() const { return examples_; }

 private:
  StreamingDecisionTree(partition::PartitionerConfig config,
                        DecisionTreeOptions options);

  static uint64_t TripletKey(uint32_t feature, uint32_t leaf,
                             uint32_t label) {
    return (static_cast<uint64_t>(feature) << 40) ^
           (static_cast<uint64_t>(leaf) << 8) ^ label;
  }

  void TrySplit(uint32_t leaf);
  void UpdateHistogram(WorkerId w, uint32_t feature, uint32_t leaf,
                       uint32_t label, double value);
  /// Merged histogram for (feature, leaf, class) across all workers.
  BhtHistogram MergedHistogram(uint32_t feature, uint32_t leaf,
                               uint32_t label);
  void DropLeafHistograms(uint32_t leaf);

  partition::PartitionerConfig config_;
  DecisionTreeOptions options_;
  partition::PartitionerPtr partitioner_;
  DecisionTreeModel model_;
  /// workers_[w]: (feature, leaf, class) -> histogram.
  std::vector<std::unordered_map<uint64_t, BhtHistogram>> workers_;
  std::vector<uint64_t> worker_loads_;
  /// Per-leaf sample count at which the next split attempt is allowed
  /// (backoff after an unsplittable attempt). Missing = min_leaf_samples.
  std::unordered_map<uint32_t, uint64_t> next_split_attempt_;
  uint64_t merges_ = 0;
  uint64_t examples_ = 0;
};

/// \brief Entropy of a class-count vector (bits). Exposed for tests.
double Entropy(const std::vector<double>& class_masses);

}  // namespace apps
}  // namespace pkgstream

#endif  // PKGSTREAM_APPS_DECISION_TREE_H_
