// Copyright 2026 The pkgstream Authors.

#include "apps/heavy_hitters.h"

#include "common/logging.h"

namespace pkgstream {
namespace apps {

HeavyHitterWorker::HeavyHitterWorker(size_t capacity) : summary_(capacity) {}

void HeavyHitterWorker::Process(const engine::Message& msg,
                                engine::Emitter* out) {
  (void)out;
  PKGSTREAM_DCHECK(msg.tag == kTagItem);
  summary_.Add(msg.key);
}

void HeavyHitterWorker::EmitSummary(engine::Emitter* out) {
  if (summary_.processed() == 0) return;
  auto snapshot = std::make_shared<const SpaceSaving>(summary_);
  engine::Message m;
  m.key = 0;  // merger is single-instance; key is irrelevant
  m.tag = kTagSummary;
  engine::SetBox(&m, std::move(snapshot));
  out->Emit(m);
}

void HeavyHitterWorker::Tick(uint64_t /*now*/, engine::Emitter* out) {
  // Windowed flush: ship the partial summary and start a fresh window.
  // Merging summaries of disjoint windows is sound (disjoint sub-streams).
  EmitSummary(out);
  summary_ = SpaceSaving(summary_.capacity());
}

void HeavyHitterWorker::Close(engine::Emitter* out) { EmitSummary(out); }

HeavyHitterMerger::HeavyHitterMerger(size_t capacity) : merged_(capacity) {}

void HeavyHitterMerger::Process(const engine::Message& msg,
                                engine::Emitter* out) {
  (void)out;
  PKGSTREAM_DCHECK(msg.tag == kTagSummary);
  const auto* summary = msg.BoxAs<SpaceSaving>();
  PKGSTREAM_CHECK(summary != nullptr) << "summary message without payload";
  merged_.Merge(*summary);
}

HeavyHitterTopology MakeHeavyHitterTopology(partition::Technique technique,
                                            uint32_t sources, uint32_t workers,
                                            size_t capacity, uint64_t seed) {
  HeavyHitterTopology hh;
  hh.spout = hh.topology.AddSpout("items", sources);
  hh.worker = hh.topology.AddOperator(
      "summarizer",
      [capacity](uint32_t) {
        return std::make_unique<HeavyHitterWorker>(capacity);
      },
      workers);
  hh.merger = hh.topology.AddOperator(
      "merger",
      [capacity, workers](uint32_t) {
        // The merged summary needs headroom: worker summaries can disagree
        // on which keys matter, so give the merger W x capacity slots (it
        // still reports only the top-k).
        return std::make_unique<HeavyHitterMerger>(capacity * workers);
      },
      1);

  partition::PartitionerConfig upstream;
  upstream.technique = technique;
  upstream.seed = seed;
  PKGSTREAM_CHECK_OK(hh.topology.Connect(hh.spout, hh.worker, upstream));
  PKGSTREAM_CHECK_OK(hh.topology.Connect(hh.worker, hh.merger,
                                         partition::Technique::kHashing,
                                         seed + 1));
  return hh;
}

}  // namespace apps
}  // namespace pkgstream
