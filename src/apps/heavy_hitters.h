// Copyright 2026 The pkgstream Authors.
// Distributed heavy hitters (Section VI-C): SPACESAVING summaries built per
// worker on sub-streams and merged downstream. Under PKG each key appears in
// at most 2 summaries, so its merged error carries 2 terms; under shuffle
// grouping it carries up to W (the paper's error-bound comparison).

#ifndef PKGSTREAM_APPS_HEAVY_HITTERS_H_
#define PKGSTREAM_APPS_HEAVY_HITTERS_H_

#include <memory>
#include <vector>

#include "stats/space_saving.h"
#include "engine/operator.h"
#include "engine/topology.h"
#include "partition/factory.h"

namespace pkgstream {
namespace apps {

/// SpaceSaving lives in stats/ (it is a sketch, and the partitioner
/// layer uses it too); aliased here for the application-facing API.
using stats::SpaceSaving;
using stats::SpaceSavingEntry;

/// Tags on the heavy-hitter streams.
inline constexpr uint32_t kTagItem = 0;     ///< spout -> worker
inline constexpr uint32_t kTagSummary = 1;  ///< worker -> merger (boxed)

/// \brief Worker PE: one SPACESAVING summary over its sub-stream.
class HeavyHitterWorker final : public engine::Operator {
 public:
  explicit HeavyHitterWorker(size_t capacity);

  void Process(const engine::Message& msg, engine::Emitter* out) override;
  void Tick(uint64_t now, engine::Emitter* out) override;
  void Close(engine::Emitter* out) override;
  uint64_t MemoryCounters() const override { return summary_.size(); }

  const SpaceSaving& summary() const { return summary_; }

 private:
  void EmitSummary(engine::Emitter* out);

  SpaceSaving summary_;
};

/// \brief Merger PE: combines worker summaries (Berinde et al. merge).
class HeavyHitterMerger final : public engine::Operator {
 public:
  explicit HeavyHitterMerger(size_t capacity);

  void Process(const engine::Message& msg, engine::Emitter* out) override;
  uint64_t MemoryCounters() const override { return merged_.size(); }

  const SpaceSaving& merged() const { return merged_; }

  /// Top-k heavy hitters from the merged summary.
  std::vector<SpaceSavingEntry> TopK(size_t k) const {
    return merged_.TopK(k);
  }

 private:
  SpaceSaving merged_;
};

/// \brief Assembled heavy-hitter topology.
struct HeavyHitterTopology {
  engine::Topology topology;
  engine::NodeId spout;
  engine::NodeId worker;
  engine::NodeId merger;
};

/// \brief spout --technique--> worker xW --(all to one merger)--> merger.
HeavyHitterTopology MakeHeavyHitterTopology(partition::Technique technique,
                                            uint32_t sources, uint32_t workers,
                                            size_t capacity, uint64_t seed);

}  // namespace apps
}  // namespace pkgstream

#endif  // PKGSTREAM_APPS_HEAVY_HITTERS_H_
