// Copyright 2026 The pkgstream Authors.

#include "apps/naive_bayes.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "partition/key_grouping.h"

namespace pkgstream {
namespace apps {

Result<std::unique_ptr<DistributedNaiveBayes>> DistributedNaiveBayes::Create(
    partition::PartitionerConfig config, uint32_t num_features,
    uint32_t num_classes) {
  if (num_features < 1 || num_classes < 2) {
    return Status::InvalidArgument(
        "naive Bayes needs >= 1 feature and >= 2 classes");
  }
  if (config.technique == partition::Technique::kOffGreedy) {
    return Status::InvalidArgument(
        "Off-Greedy needs a frequency table and is not meaningful here");
  }
  auto nb = std::unique_ptr<DistributedNaiveBayes>(
      new DistributedNaiveBayes(config, num_features, num_classes));
  PKGSTREAM_ASSIGN_OR_RETURN(nb->partitioner_,
                             partition::MakePartitioner(config));
  return nb;
}

DistributedNaiveBayes::DistributedNaiveBayes(
    partition::PartitionerConfig config, uint32_t num_features,
    uint32_t num_classes)
    : config_(config),
      num_features_(num_features),
      num_classes_(num_classes),
      workers_(config.workers),
      worker_loads_(config.workers, 0),
      class_counts_(num_classes, 0),
      placements_(num_features) {}

void DistributedNaiveBayes::Train(SourceId source,
                                  const LabeledExample& example) {
  PKGSTREAM_CHECK(example.feature_values.size() == num_features_);
  PKGSTREAM_CHECK(example.label < num_classes_);
  ++examples_;
  ++class_counts_[example.label];
  for (uint32_t f = 0; f < num_features_; ++f) {
    if (example.feature_values[f] == kAbsentFeature) continue;
    WorkerId w = partitioner_->Route(source, f);
    ++worker_loads_[w];
    placements_[f].insert(w);
    ++workers_[w].counts[CounterKey(f, example.feature_values[f],
                                    example.label)];
  }
}

std::vector<WorkerId> DistributedNaiveBayes::ProbeSet(uint32_t feature) const {
  std::vector<WorkerId> probes;
  switch (config_.technique) {
    case partition::Technique::kPkgGlobal:
    case partition::Technique::kPkgLocal:
    case partition::Technique::kPkgProbing: {
      auto* pkg = static_cast<partition::PartialKeyGrouping*>(
          partitioner_.get());
      pkg->CandidateWorkers(feature, &probes);
      std::sort(probes.begin(), probes.end());
      probes.erase(std::unique(probes.begin(), probes.end()), probes.end());
      return probes;
    }
    case partition::Technique::kHashing: {
      // Stateless: replay the hash on a throwaway instance.
      partition::KeyGrouping kg(1, config_.workers, config_.seed);
      probes.push_back(kg.Route(0, feature));
      return probes;
    }
    case partition::Technique::kPotcStatic:
    case partition::Technique::kOnGreedy:
    case partition::Technique::kOffGreedy:
    case partition::Technique::kRebalancing:
    case partition::Technique::kConsistent:
    case partition::Technique::kWChoices:
    case partition::Technique::kDChoices: {
      // Table-based single placement: the placement was fixed the first
      // time the feature was routed; we recorded it during Train.
      probes.assign(placements_[feature].begin(), placements_[feature].end());
      if (probes.empty()) probes.push_back(0);
      return probes;
    }
    case partition::Technique::kShuffle:
    case partition::Technique::kRandom:
      // Any worker may hold a partial: broadcast (the paper's SG downside).
      for (WorkerId w = 0; w < workers_.size(); ++w) probes.push_back(w);
      return probes;
  }
  return probes;
}

uint32_t DistributedNaiveBayes::Classify(
    const std::vector<uint32_t>& feature_values, uint64_t* probes) const {
  PKGSTREAM_CHECK(feature_values.size() == num_features_);
  uint64_t probe_count = 0;
  double best_score = -std::numeric_limits<double>::infinity();
  uint32_t best_class = 0;

  // Gather per-feature per-class counts once (shared across classes).
  // counts[f][c] = sum over probed workers of count(f, value_f, c).
  std::vector<std::vector<uint64_t>> counts(
      num_features_, std::vector<uint64_t>(num_classes_, 0));
  for (uint32_t f = 0; f < num_features_; ++f) {
    if (feature_values[f] == kAbsentFeature) continue;
    for (WorkerId w : ProbeSet(f)) {
      ++probe_count;
      const auto& table = workers_[w].counts;
      for (uint32_t c = 0; c < num_classes_; ++c) {
        auto it = table.find(CounterKey(f, feature_values[f], c));
        if (it != table.end()) counts[f][c] += it->second;
      }
    }
  }
  if (probes != nullptr) *probes = probe_count;

  const double total = static_cast<double>(std::max<uint64_t>(examples_, 1));
  for (uint32_t c = 0; c < num_classes_; ++c) {
    // log P(c) + sum_f log P(x_f | c), Laplace-smoothed.
    double prior =
        (static_cast<double>(class_counts_[c]) + 1.0) /
        (total + static_cast<double>(num_classes_));
    double score = std::log(prior);
    double class_examples = static_cast<double>(class_counts_[c]);
    for (uint32_t f = 0; f < num_features_; ++f) {
      if (feature_values[f] == kAbsentFeature) continue;
      double likelihood = (static_cast<double>(counts[f][c]) + 1.0) /
                          (class_examples + 2.0);
      score += std::log(likelihood);
    }
    if (score > best_score) {
      best_score = score;
      best_class = c;
    }
  }
  return best_class;
}

uint64_t DistributedNaiveBayes::TotalCounters() const {
  uint64_t total = 0;
  for (const auto& w : workers_) total += w.counts.size();
  return total;
}

}  // namespace apps
}  // namespace pkgstream
