// Copyright 2026 The pkgstream Authors.
// Distributed naïve Bayes (Section VI-A): vertical parallelism — the
// feature-class co-occurrence counters are spread over workers keyed by
// feature id. The partitioning technique decides where a feature's counters
// live:
//   KG  — one worker per feature (skewed features -> imbalance);
//   SG  — any worker may hold a partial count, so a query must broadcast to
//         all W workers;
//   PKG — exactly the two hash candidates hold partials, so a query probes
//         2 workers per feature (the paper's cheap query argument).
//
// This app is a request/response workload, so it is implemented as a
// library class over the Partitioner API rather than a DAG: training routes
// feature messages exactly like a DSPE edge would; classification probes
// the workers a key may live on.

#ifndef PKGSTREAM_APPS_NAIVE_BAYES_H_
#define PKGSTREAM_APPS_NAIVE_BAYES_H_

#include <cstdint>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "partition/factory.h"
#include "partition/pkg.h"

namespace pkgstream {
namespace apps {

/// \brief A training example: categorical feature values plus a class label.
///
/// Examples are sparse, matching the text workloads of Section VI-A: the
/// reserved value kAbsentFeature (0) means "feature not present in this
/// document" — absent features emit no message during training and are
/// skipped at classification time, so the per-feature message stream
/// follows the (typically skewed) document-frequency distribution.
struct LabeledExample {
  /// feature_values[f] is the (bucketed) value of feature f; 0 = absent.
  std::vector<uint32_t> feature_values;
  uint32_t label = 0;
};

/// Reserved feature value meaning "not present in this example".
inline constexpr uint32_t kAbsentFeature = 0;

/// \brief Distributed naïve Bayes trainer + classifier.
class DistributedNaiveBayes {
 public:
  /// `config.technique` chooses the placement of feature counters.
  /// `num_features`, `num_classes` fix the model shape.
  static Result<std::unique_ptr<DistributedNaiveBayes>> Create(
      partition::PartitionerConfig config, uint32_t num_features,
      uint32_t num_classes);

  /// Trains on one example: emits one message per feature, each routed by
  /// feature id through the configured partitioner to a worker's counter
  /// table. `source` identifies the emitting source instance.
  void Train(SourceId source, const LabeledExample& example);

  /// Classifies by probing, for every feature, the workers that may hold
  /// its counters, summing partial counts, and applying Bayes' rule with
  /// Laplace smoothing. `probes` (optional out) counts worker probes used.
  uint32_t Classify(const std::vector<uint32_t>& feature_values,
                    uint64_t* probes = nullptr) const;

  /// Per-worker training messages processed (load balance measurement).
  const std::vector<uint64_t>& worker_loads() const { return worker_loads_; }

  /// Total counter entries across workers (memory measurement).
  uint64_t TotalCounters() const;

  /// Workers that can hold feature `f`'s counters under this technique.
  std::vector<WorkerId> ProbeSet(uint32_t feature) const;

  uint32_t num_classes() const { return num_classes_; }
  uint64_t examples_trained() const { return examples_; }

 private:
  DistributedNaiveBayes(partition::PartitionerConfig config,
                        uint32_t num_features, uint32_t num_classes);

  struct WorkerState {
    /// (feature, value, class) -> count, keyed compactly.
    std::unordered_map<uint64_t, uint64_t> counts;
  };

  static uint64_t CounterKey(uint32_t feature, uint32_t value,
                             uint32_t label) {
    return (static_cast<uint64_t>(feature) << 40) ^
           (static_cast<uint64_t>(value) << 8) ^ label;
  }

  partition::PartitionerConfig config_;
  partition::PartitionerPtr partitioner_;
  uint32_t num_features_;
  uint32_t num_classes_;
  std::vector<WorkerState> workers_;
  std::vector<uint64_t> worker_loads_;
  std::vector<uint64_t> class_counts_;  // priors (kept at the query layer)
  /// Workers observed to hold each feature's counters (exact for the
  /// table-based techniques, used by ProbeSet).
  std::vector<std::set<WorkerId>> placements_;
  uint64_t examples_ = 0;
};

}  // namespace apps
}  // namespace pkgstream

#endif  // PKGSTREAM_APPS_NAIVE_BAYES_H_
