// Copyright 2026 The pkgstream Authors.

#include "apps/wordcount.h"

#include <algorithm>

#include "common/logging.h"

namespace pkgstream {
namespace apps {

WordCountCounter::WordCountCounter(CounterMode mode, size_t topk)
    : mode_(mode), topk_(topk) {}

void WordCountCounter::Process(const engine::Message& msg,
                               engine::Emitter* out) {
  (void)out;
  PKGSTREAM_DCHECK(msg.tag == kTagWord);
  ++counts_[msg.key];
}

void WordCountCounter::EmitSnapshot(engine::Emitter* out, bool flush) {
  if (mode_ == CounterMode::kRunningTotals && !flush) {
    // KG: only the local top-k needs to travel; totals stay here.
    std::vector<std::pair<Key, uint64_t>> items(counts_.begin(),
                                                counts_.end());
    size_t k = std::min(topk_, items.size());
    std::partial_sort(items.begin(), items.begin() + static_cast<long>(k),
                      items.end(), [](const auto& a, const auto& b) {
                        if (a.second != b.second) return a.second > b.second;
                        return a.first < b.first;
                      });
    for (size_t i = 0; i < k; ++i) {
      engine::Message m;
      m.key = items[i].first;
      m.i64 = static_cast<int64_t>(items[i].second);
      m.tag = kTagPartialCount;
      out->Emit(m);
    }
    return;
  }
  // Partial mode (or final KG flush): ship every counter downstream.
  // Deterministic order: sort by key.
  std::vector<std::pair<Key, uint64_t>> items(counts_.begin(), counts_.end());
  std::sort(items.begin(), items.end());
  for (const auto& [key, count] : items) {
    engine::Message m;
    m.key = key;
    m.i64 = static_cast<int64_t>(count);
    m.tag = kTagPartialCount;
    out->Emit(m);
  }
  if (mode_ == CounterMode::kPartialCounts) counts_.clear();
}

void WordCountCounter::Tick(uint64_t /*now*/, engine::Emitter* out) {
  EmitSnapshot(out, /*flush=*/false);
}

void WordCountCounter::Close(engine::Emitter* out) {
  EmitSnapshot(out, /*flush=*/true);
}

TopKAggregator::TopKAggregator(CounterMode mode, size_t topk)
    : mode_(mode), topk_(topk) {}

void TopKAggregator::Process(const engine::Message& msg,
                             engine::Emitter* out) {
  (void)out;
  PKGSTREAM_DCHECK(msg.tag == kTagPartialCount);
  if (mode_ == CounterMode::kPartialCounts) {
    totals_[msg.key] += static_cast<uint64_t>(msg.i64);
  } else {
    // Running totals: later snapshots supersede earlier ones.
    totals_[msg.key] =
        std::max(totals_[msg.key], static_cast<uint64_t>(msg.i64));
  }
}

void TopKAggregator::Tick(uint64_t /*now*/, engine::Emitter* /*out*/) {
  // The paper's aggregator publishes the top-k at intervals; here the
  // publication is the TopK() accessor, so the tick is a no-op kept for
  // symmetry (the cost model charges the flush at the counters).
}

std::vector<std::pair<Key, uint64_t>> TopKAggregator::TopK() const {
  std::vector<std::pair<Key, uint64_t>> items(totals_.begin(), totals_.end());
  size_t k = std::min(topk_, items.size());
  std::partial_sort(items.begin(), items.begin() + static_cast<long>(k),
                    items.end(), [](const auto& a, const auto& b) {
                      if (a.second != b.second) return a.second > b.second;
                      return a.first < b.first;
                    });
  items.resize(k);
  return items;
}

WordCountTopology MakeWordCountTopology(partition::Technique technique,
                                        uint32_t sources, uint32_t workers,
                                        uint64_t tick_period, size_t topk,
                                        uint64_t seed) {
  WordCountTopology wc;
  wc.mode = technique == partition::Technique::kHashing
                ? CounterMode::kRunningTotals
                : CounterMode::kPartialCounts;
  wc.spout = wc.topology.AddSpout("words", sources);
  CounterMode mode = wc.mode;
  wc.counter = wc.topology.AddOperator(
      "counter",
      [mode, topk](uint32_t) {
        return std::make_unique<WordCountCounter>(mode, topk);
      },
      workers);
  wc.aggregator = wc.topology.AddOperator(
      "aggregator",
      [mode, topk](uint32_t) {
        return std::make_unique<TopKAggregator>(mode, topk);
      },
      1);
  if (tick_period > 0) wc.topology.SetTickPeriod(wc.counter, tick_period);

  partition::PartitionerConfig upstream;
  upstream.technique = technique;
  upstream.seed = seed;
  PKGSTREAM_CHECK_OK(wc.topology.Connect(wc.spout, wc.counter, upstream));
  // Counter -> aggregator is always key grouping (single aggregator).
  PKGSTREAM_CHECK_OK(wc.topology.Connect(wc.counter, wc.aggregator,
                                         partition::Technique::kHashing,
                                         seed + 1));
  return wc;
}

}  // namespace apps
}  // namespace pkgstream
