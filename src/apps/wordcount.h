// Copyright 2026 The pkgstream Authors.
// Streaming top-k word count — the paper's running example (Section II) and
// the application deployed on Storm for the Q4 experiments (Section V).
//
// Topology:  spout --[technique]--> counter xW --[key grouping]--> aggregator
//
// Two counter modes mirror the paper's implementations:
//  * kRunningTotals (key grouping): each word lives on one worker, the
//    counter keeps the total and periodically emits only its local top-k.
//  * kPartialCounts (PKG / shuffle grouping): a word's count is split over
//    several workers; on every tick the counter flushes *all* partial
//    counters downstream and clears them. Memory and aggregation costs are
//    the O(2K) vs O(WK) comparison of Section III-A.

#ifndef PKGSTREAM_APPS_WORDCOUNT_H_
#define PKGSTREAM_APPS_WORDCOUNT_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "engine/operator.h"
#include "engine/topology.h"
#include "partition/factory.h"

namespace pkgstream {
namespace apps {

/// Message tags on the word-count streams.
inline constexpr uint32_t kTagWord = 0;        ///< spout -> counter
inline constexpr uint32_t kTagPartialCount = 1;  ///< counter -> aggregator

/// \brief How counters manage per-word state.
enum class CounterMode {
  kRunningTotals,  ///< KG: never flushed; tick emits local top-k snapshots
  kPartialCounts,  ///< PKG/SG: tick flushes and clears all partials
};

/// \brief The counter PE instance.
class WordCountCounter final : public engine::Operator {
 public:
  WordCountCounter(CounterMode mode, size_t topk);

  void Process(const engine::Message& msg, engine::Emitter* out) override;
  void Tick(uint64_t now, engine::Emitter* out) override;
  void Close(engine::Emitter* out) override;
  uint64_t MemoryCounters() const override { return counts_.size(); }

  const std::unordered_map<Key, uint64_t>& counts() const { return counts_; }

 private:
  void EmitSnapshot(engine::Emitter* out, bool flush);

  CounterMode mode_;
  size_t topk_;
  std::unordered_map<Key, uint64_t> counts_;
};

/// \brief The single-instance aggregator computing the global top-k.
class TopKAggregator final : public engine::Operator {
 public:
  TopKAggregator(CounterMode mode, size_t topk);

  void Process(const engine::Message& msg, engine::Emitter* out) override;
  void Tick(uint64_t now, engine::Emitter* out) override;
  uint64_t MemoryCounters() const override { return totals_.size(); }

  /// Current top-k (key, count), recomputed on access.
  std::vector<std::pair<Key, uint64_t>> TopK() const;

  const std::unordered_map<Key, uint64_t>& totals() const { return totals_; }

 private:
  CounterMode mode_;
  size_t topk_;
  /// kPartialCounts: accumulated totals; kRunningTotals: latest snapshot.
  std::unordered_map<Key, uint64_t> totals_;
};

/// \brief Assembled word-count topology handles.
struct WordCountTopology {
  engine::Topology topology;
  engine::NodeId spout;
  engine::NodeId counter;
  engine::NodeId aggregator;
  CounterMode mode = CounterMode::kPartialCounts;
};

/// \brief Builds the paper's topology: `sources` spout instances, `workers`
/// counters partitioned by `technique`, one aggregator reached by hashing.
///
/// `tick_period` (runtime units; 0 = only flush at Close) drives both the
/// counter flush and the aggregator's bookkeeping. KG implies
/// kRunningTotals; every other technique uses kPartialCounts.
WordCountTopology MakeWordCountTopology(partition::Technique technique,
                                        uint32_t sources, uint32_t workers,
                                        uint64_t tick_period, size_t topk,
                                        uint64_t seed);

}  // namespace apps
}  // namespace pkgstream

#endif  // PKGSTREAM_APPS_WORDCOUNT_H_
