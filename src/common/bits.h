// Copyright 2026 The pkgstream Authors.
// C++17 stand-ins for the C++20 <bit> utilities used across the codebase.
// CountlZero sits on the per-message path (LatencyHistogram::Record), so the
// GCC/Clang builds use the single-instruction builtins.

#ifndef PKGSTREAM_COMMON_BITS_H_
#define PKGSTREAM_COMMON_BITS_H_

#include <cstdint>

namespace pkgstream {

/// True iff `x` is a power of two.
inline constexpr bool HasSingleBit(uint64_t x) {
  return x != 0 && (x & (x - 1)) == 0;
}

/// Number of consecutive zero bits starting from the least significant bit.
/// Returns 64 for x == 0.
inline constexpr uint32_t CountrZero(uint64_t x) {
  if (x == 0) return 64;
#if defined(__GNUC__) || defined(__clang__)
  return static_cast<uint32_t>(__builtin_ctzll(x));
#else
  uint32_t n = 0;
  while ((x & 1) == 0) {
    x >>= 1;
    ++n;
  }
  return n;
#endif
}

/// Number of consecutive zero bits starting from the most significant bit.
/// Returns 64 for x == 0.
inline constexpr uint32_t CountlZero(uint64_t x) {
  if (x == 0) return 64;
#if defined(__GNUC__) || defined(__clang__)
  return static_cast<uint32_t>(__builtin_clzll(x));
#else
  uint32_t n = 64;
  while (x != 0) {
    x >>= 1;
    --n;
  }
  return n;
#endif
}

/// Smallest power of two >= x (BitCeil(0) == 1). Unlike std::bit_ceil, inputs
/// above 2^63 saturate to 2^63 instead of being undefined.
inline constexpr uint64_t BitCeil(uint64_t x) {
  if (x <= 1) return 1;
  if (x > (uint64_t{1} << 63)) return uint64_t{1} << 63;
  return uint64_t{1} << (64 - CountlZero(x - 1));
}

}  // namespace pkgstream

#endif  // PKGSTREAM_COMMON_BITS_H_
