// Copyright 2026 The pkgstream Authors.

#include "common/flags.h"

#include <cstdlib>

namespace pkgstream {

Status Flags::Parse(int argc, const char* const* argv, Flags* out) {
  out->values_.clear();
  out->positional_.clear();
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      out->positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    if (body.empty()) {
      // A bare "--" separates flags from positionals, POSIX style.
      for (int j = i + 1; j < argc; ++j) out->positional_.push_back(argv[j]);
      break;
    }
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      std::string name = body.substr(0, eq);
      if (name.empty()) {
        return Status::InvalidArgument("malformed flag: " + arg);
      }
      out->values_[name] = body.substr(eq + 1);
      continue;
    }
    // "--name value" form: consume the next token when it is not a flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      out->values_[body] = argv[i + 1];
      ++i;
    } else {
      out->values_[body] = "";  // boolean switch
    }
  }
  return Status::OK();
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

int64_t Flags::GetInt(const std::string& name, int64_t def) const {
  auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return def;
  char* end = nullptr;
  int64_t v = std::strtoll(it->second.c_str(), &end, 10);
  return (end && *end == '\0') ? v : def;
}

double Flags::GetDouble(const std::string& name, double def) const {
  auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return def;
  char* end = nullptr;
  double v = std::strtod(it->second.c_str(), &end);
  return (end && *end == '\0') ? v : def;
}

bool Flags::GetBool(const std::string& name, bool def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  if (v.empty() || v == "1" || v == "true" || v == "yes" || v == "on") {
    return true;
  }
  return false;
}

std::vector<std::string> Flags::Names() const {
  std::vector<std::string> names;
  names.reserve(values_.size());
  for (const auto& [k, _] : values_) names.push_back(k);
  return names;
}

}  // namespace pkgstream
