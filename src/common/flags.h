// Copyright 2026 The pkgstream Authors.
// A tiny command-line flag parser for examples and benches.
//
// Supports --name=value and --name value forms plus boolean switches
// (--full). Unknown flags are reported; positional arguments are collected.
// Scope is deliberately small: binaries in this repo take a handful of
// scalar knobs (seed, scale, workers), not nested configuration.

#ifndef PKGSTREAM_COMMON_FLAGS_H_
#define PKGSTREAM_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace pkgstream {

/// \brief Parsed command line: flag map plus positional arguments.
class Flags {
 public:
  /// Parses argv. Returns an error for malformed flags (e.g. "--=3").
  static Status Parse(int argc, const char* const* argv, Flags* out);

  /// True if --name was present (with or without a value).
  bool Has(const std::string& name) const;

  /// String value of --name, or `def` when absent.
  std::string GetString(const std::string& name, const std::string& def) const;

  /// Integer value of --name, or `def` when absent or unparseable.
  int64_t GetInt(const std::string& name, int64_t def) const;

  /// Double value of --name, or `def` when absent or unparseable.
  double GetDouble(const std::string& name, double def) const;

  /// Boolean: present with no value or value in {1,true,yes,on} is true.
  bool GetBool(const std::string& name, bool def) const;

  /// Positional (non-flag) arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

  /// All flag names seen (for unknown-flag warnings in binaries).
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace pkgstream

#endif  // PKGSTREAM_COMMON_FLAGS_H_
