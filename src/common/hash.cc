// Copyright 2026 The pkgstream Authors.
// MurmurHash3 x64 128-bit, reimplemented from the public-domain reference.

#include "common/hash.h"

#include <cstring>

#include "common/logging.h"

namespace pkgstream {

namespace {

inline uint64_t Rotl64(uint64_t x, int8_t r) {
  return (x << r) | (x >> (64 - r));
}

inline uint64_t GetBlock64(const uint8_t* p, size_t i) {
  uint64_t block;
  std::memcpy(&block, p + i * 8, sizeof(block));
  return block;  // little-endian assumed (x86/ARM64 targets)
}

}  // namespace

Hash128 Murmur3_x64_128(const void* data, size_t len, uint32_t seed) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  const size_t nblocks = len / 16;

  uint64_t h1 = seed;
  uint64_t h2 = seed;

  const uint64_t c1 = 0x87c37b91114253d5ULL;
  const uint64_t c2 = 0x4cf5ad432745937fULL;

  // Body: 16-byte blocks.
  for (size_t i = 0; i < nblocks; i++) {
    uint64_t k1 = GetBlock64(bytes, i * 2 + 0);
    uint64_t k2 = GetBlock64(bytes, i * 2 + 1);

    k1 *= c1;
    k1 = Rotl64(k1, 31);
    k1 *= c2;
    h1 ^= k1;

    h1 = Rotl64(h1, 27);
    h1 += h2;
    h1 = h1 * 5 + 0x52dce729;

    k2 *= c2;
    k2 = Rotl64(k2, 33);
    k2 *= c1;
    h2 ^= k2;

    h2 = Rotl64(h2, 31);
    h2 += h1;
    h2 = h2 * 5 + 0x38495ab5;
  }

  // Tail: up to 15 trailing bytes.
  const uint8_t* tail = bytes + nblocks * 16;
  uint64_t k1 = 0;
  uint64_t k2 = 0;
  switch (len & 15) {
    case 15: k2 ^= static_cast<uint64_t>(tail[14]) << 48; [[fallthrough]];
    case 14: k2 ^= static_cast<uint64_t>(tail[13]) << 40; [[fallthrough]];
    case 13: k2 ^= static_cast<uint64_t>(tail[12]) << 32; [[fallthrough]];
    case 12: k2 ^= static_cast<uint64_t>(tail[11]) << 24; [[fallthrough]];
    case 11: k2 ^= static_cast<uint64_t>(tail[10]) << 16; [[fallthrough]];
    case 10: k2 ^= static_cast<uint64_t>(tail[9]) << 8; [[fallthrough]];
    case 9:
      k2 ^= static_cast<uint64_t>(tail[8]) << 0;
      k2 *= c2;
      k2 = Rotl64(k2, 33);
      k2 *= c1;
      h2 ^= k2;
      [[fallthrough]];
    case 8: k1 ^= static_cast<uint64_t>(tail[7]) << 56; [[fallthrough]];
    case 7: k1 ^= static_cast<uint64_t>(tail[6]) << 48; [[fallthrough]];
    case 6: k1 ^= static_cast<uint64_t>(tail[5]) << 40; [[fallthrough]];
    case 5: k1 ^= static_cast<uint64_t>(tail[4]) << 32; [[fallthrough]];
    case 4: k1 ^= static_cast<uint64_t>(tail[3]) << 24; [[fallthrough]];
    case 3: k1 ^= static_cast<uint64_t>(tail[2]) << 16; [[fallthrough]];
    case 2: k1 ^= static_cast<uint64_t>(tail[1]) << 8; [[fallthrough]];
    case 1:
      k1 ^= static_cast<uint64_t>(tail[0]) << 0;
      k1 *= c1;
      k1 = Rotl64(k1, 31);
      k1 *= c2;
      h1 ^= k1;
  }

  // Finalization.
  h1 ^= static_cast<uint64_t>(len);
  h2 ^= static_cast<uint64_t>(len);

  h1 += h2;
  h2 += h1;

  h1 = Fmix64(h1);
  h2 = Fmix64(h2);

  h1 += h2;
  h2 += h1;

  return Hash128{h1, h2};
}

uint64_t Murmur3_64(const void* data, size_t len, uint32_t seed) {
  return Murmur3_x64_128(data, len, seed).low;
}

uint64_t Murmur3_64(std::string_view s, uint32_t seed) {
  return Murmur3_64(s.data(), s.size(), seed);
}

HashFamily::HashFamily(uint32_t d, uint32_t buckets, uint64_t seed)
    : buckets_(buckets), mod_(buckets) {
  PKGSTREAM_CHECK(d >= 1) << "HashFamily needs at least one function";
  PKGSTREAM_CHECK(buckets >= 1) << "HashFamily needs at least one bucket";
  seeds_.reserve(d);
  // Derive d well-separated 32-bit seeds from the 64-bit family seed.
  for (uint32_t i = 0; i < d; ++i) {
    seeds_.push_back(
        static_cast<uint32_t>(Fmix64(seed + 0x9e3779b97f4a7c15ULL * (i + 1))));
  }
}

uint32_t HashFamily::Bucket(uint32_t i, std::string_view key) const {
  PKGSTREAM_DCHECK(i < seeds_.size());
  return static_cast<uint32_t>(Murmur3_64(key, seeds_[i]) % buckets_);
}

void HashFamily::Candidates(uint64_t key, std::vector<uint32_t>* out) const {
  // Overwrite in place rather than clear-then-push: resize is a no-op once
  // the caller's vector has been through one call, and the assignment loop
  // carries no per-element capacity check.
  out->resize(seeds_.size());
  for (uint32_t i = 0; i < seeds_.size(); ++i) {
    (*out)[i] = Bucket(i, key);
  }
}

}  // namespace pkgstream
