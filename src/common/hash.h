// Copyright 2026 The pkgstream Authors.
// Hashing substrate: MurmurHash3 (x64, 128-bit) implemented from scratch,
// 64-bit finalizers, and a seeded family of independent hash functions.
//
// The paper routes with "a 64-bit Murmur hash function to minimize the
// probability of collision" (Section V-B). PKG's Greedy-d scheme needs d
// independent hash functions H1..Hd : K -> [n]; we derive them from
// Murmur3 with distinct seeds (see HashFamily).

#ifndef PKGSTREAM_COMMON_HASH_H_
#define PKGSTREAM_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace pkgstream {

/// \brief 128-bit hash value.
struct Hash128 {
  uint64_t low;
  uint64_t high;

  friend bool operator==(const Hash128& a, const Hash128& b) {
    return a.low == b.low && a.high == b.high;
  }
};

/// \brief MurmurHash3 x64 128-bit over an arbitrary byte buffer.
///
/// Faithful reimplementation of Austin Appleby's public-domain reference
/// (MurmurHash3_x64_128), byte-for-byte compatible on little-endian hosts.
Hash128 Murmur3_x64_128(const void* data, size_t len, uint32_t seed);

/// \brief 64-bit convenience wrapper: low word of Murmur3_x64_128.
uint64_t Murmur3_64(const void* data, size_t len, uint32_t seed);

/// \brief Murmur3 of a string key.
uint64_t Murmur3_64(std::string_view s, uint32_t seed);

/// \brief Murmur3 of a 64-bit integer key (hashes its 8 bytes).
uint64_t Murmur3_64(uint64_t key, uint32_t seed);

/// \brief Murmur3's 64-bit finalizer (fmix64). A fast, high-quality bijective
/// mixer; useful to decorrelate sequential integer keys.
constexpr uint64_t Fmix64(uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return k;
}

/// \brief Combines two hash values (Boost-style, 64-bit).
constexpr uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

/// \brief A family of d independent hash functions onto [0, buckets).
///
/// Each member function H_i is Murmur3 with a per-member seed derived from a
/// single family seed. This is exactly the paper's H1..Hd for Greedy-d: with
/// d = 1 the family reproduces hash-based key grouping, with d = 2 it gives
/// PKG's two candidate workers for every key.
class HashFamily {
 public:
  /// Creates a family of `d` functions mapping keys to [0, buckets).
  /// `buckets` must be >= 1 and `d` >= 1.
  HashFamily(uint32_t d, uint32_t buckets, uint64_t seed);

  /// Number of member functions (the paper's d).
  uint32_t d() const { return static_cast<uint32_t>(seeds_.size()); }

  /// Number of buckets (the paper's n = number of workers).
  uint32_t buckets() const { return buckets_; }

  /// Value of member function `i` on an integer key.
  uint32_t Bucket(uint32_t i, uint64_t key) const;

  /// Value of member function `i` on a string key.
  uint32_t Bucket(uint32_t i, std::string_view key) const;

  /// Appends the d candidate buckets for `key` into `out` (cleared first).
  /// Candidates may collide for small bucket counts; callers that need
  /// distinct candidates should deduplicate (PKG keeps duplicates, matching
  /// the theoretical Greedy-d process where H1(k) may equal H2(k)).
  void Candidates(uint64_t key, std::vector<uint32_t>* out) const;

 private:
  std::vector<uint32_t> seeds_;
  uint32_t buckets_;
};

}  // namespace pkgstream

#endif  // PKGSTREAM_COMMON_HASH_H_
