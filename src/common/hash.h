// Copyright 2026 The pkgstream Authors.
// Hashing substrate: MurmurHash3 (x64, 128-bit) implemented from scratch,
// 64-bit finalizers, and a seeded family of independent hash functions.
//
// The paper routes with "a 64-bit Murmur hash function to minimize the
// probability of collision" (Section V-B). PKG's Greedy-d scheme needs d
// independent hash functions H1..Hd : K -> [n]; we derive them from
// Murmur3 with distinct seeds (see HashFamily).

#ifndef PKGSTREAM_COMMON_HASH_H_
#define PKGSTREAM_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "common/hash_simd.h"
#include "common/logging.h"
#include "common/simd.h"

namespace pkgstream {

/// \brief 128-bit hash value.
struct Hash128 {
  uint64_t low;
  uint64_t high;

  friend bool operator==(const Hash128& a, const Hash128& b) {
    return a.low == b.low && a.high == b.high;
  }
};

/// \brief MurmurHash3 x64 128-bit over an arbitrary byte buffer.
///
/// Faithful reimplementation of Austin Appleby's public-domain reference
/// (MurmurHash3_x64_128), byte-for-byte compatible on little-endian hosts.
Hash128 Murmur3_x64_128(const void* data, size_t len, uint32_t seed);

/// \brief 64-bit convenience wrapper: low word of Murmur3_x64_128.
uint64_t Murmur3_64(const void* data, size_t len, uint32_t seed);

/// \brief Murmur3 of a string key.
uint64_t Murmur3_64(std::string_view s, uint32_t seed);

/// \brief Murmur3's 64-bit finalizer (fmix64). A fast, high-quality bijective
/// mixer; useful to decorrelate sequential integer keys.
constexpr uint64_t Fmix64(uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return k;
}

/// \brief Combines two hash values (Boost-style, 64-bit).
constexpr uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

/// \brief Murmur3 of a 64-bit integer key: bit-identical to hashing the
/// key's 8 little-endian bytes through Murmur3_x64_128 and taking the low
/// word, with the generic algorithm collapsed for the fixed length. An
/// 8-byte input has no 16-byte body blocks and exactly one tail lane
/// (k1 = key, k2 = 0, so h2 never mixes a block), leaving straight-line
/// code: one tail mix, the length xor, and the finalizer — no loop, no
/// per-byte tail switch, fully inlinable into routing loops. The unit test
/// Murmur3Test.FixedWidthSpecializationMatchesGenericPath pins the
/// bit-compatibility contract; routing decisions depend on these exact
/// bits, so any change here invalidates every captured baseline.
constexpr uint64_t Murmur3_64(uint64_t key, uint32_t seed) {
  const uint64_t c1 = 0x87c37b91114253d5ULL;
  const uint64_t c2 = 0x4cf5ad432745937fULL;
  uint64_t h1 = seed;
  uint64_t h2 = seed;
  uint64_t k1 = key * c1;
  k1 = (k1 << 31) | (k1 >> 33);  // rotl64(k1, 31)
  h1 ^= k1 * c2;
  h1 ^= 8;  // len
  h2 ^= 8;
  h1 += h2;
  h2 += h1;
  // Low word of the final cross-add: fmix(h1) + fmix(h2).
  return Fmix64(h1) + Fmix64(h2);
}

/// \brief Exact remainder by a runtime-constant divisor, computed with
/// multiplies instead of the hardware divider (Lemire, Kaser & Kurz,
/// "Faster remainder by direct computation", 2019). For every n < 2^64 and
/// divisor d in [1, 2^64), Mod(n) == n % d bit for bit — the FastModTest
/// suite pins this over exhaustive small and adversarial large divisors —
/// so routing decisions are unchanged; only the cost moves. The win is
/// throughput:
/// the divider unit is unpipelined (one 64-bit div every ~10+ cycles),
/// while the three multiplies here issue once per cycle, so independent
/// reductions in a BucketBatch loop overlap. Falls back to n % d where
/// __int128 is unavailable.
class FastMod {
 public:
  /// `d` must be >= 1 before Mod is called (a zero divisor yields a
  /// poisoned instance rather than a construction-time fault, so checked
  /// constructors can still run their own diagnostics).
  explicit FastMod(uint64_t d)
      :
#ifdef __SIZEOF_INT128__
        // M = ceil(2^128 / d). For d == 1 this wraps to 0, and the Mod
        // formula below then yields 0 — which equals n % 1.
        magic_(d ? ~static_cast<unsigned __int128>(0) / d + 1 : 0),
#endif
        d_(d) {
  }

  uint64_t Mod(uint64_t n) const {
#ifdef __SIZEOF_INT128__
    const unsigned __int128 lowbits = magic_ * n;
    const uint64_t lo = static_cast<uint64_t>(lowbits);
    const uint64_t hi = static_cast<uint64_t>(lowbits >> 64);
    // (lowbits * d) >> 128, via two 64x64->128 multiplies.
    const unsigned __int128 partial =
        (static_cast<unsigned __int128>(lo) * d_) >> 64;
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(hi) * d_ + partial) >> 64);
#else
    return n % d_;
#endif
  }

  uint64_t divisor() const { return d_; }

  /// The 128-bit magic as 64-bit halves, for vector kernels that replay the
  /// Mod arithmetic lane-wise from 32x32 partial products (hash_avx2.cc).
  /// Zero when __int128 is unavailable — exactly the builds where the SIMD
  /// lane is compiled out too.
  uint64_t magic_hi() const {
#ifdef __SIZEOF_INT128__
    return static_cast<uint64_t>(magic_ >> 64);
#else
    return 0;
#endif
  }
  uint64_t magic_lo() const {
#ifdef __SIZEOF_INT128__
    return static_cast<uint64_t>(magic_);
#else
    return 0;
#endif
  }

 private:
#ifdef __SIZEOF_INT128__
  unsigned __int128 magic_;
#endif
  uint64_t d_;
};

/// \brief A family of d independent hash functions onto [0, buckets).
///
/// Each member function H_i is Murmur3 with a per-member seed derived from a
/// single family seed. This is exactly the paper's H1..Hd for Greedy-d: with
/// d = 1 the family reproduces hash-based key grouping, with d = 2 it gives
/// PKG's two candidate workers for every key.
class HashFamily {
 public:
  /// Creates a family of `d` functions mapping keys to [0, buckets).
  /// `buckets` must be >= 1 and `d` >= 1.
  HashFamily(uint32_t d, uint32_t buckets, uint64_t seed);

  /// Number of member functions (the paper's d).
  uint32_t d() const { return static_cast<uint32_t>(seeds_.size()); }

  /// Number of buckets (the paper's n = number of workers).
  uint32_t buckets() const { return buckets_; }

  /// The derived Murmur3 seed of member function `i` — what Bucket(i, ·)
  /// actually hashes with. Exposed so kernel-level tests and benchmarks can
  /// drive the SIMD primitives with the member's true seed instead of
  /// re-deriving the (private) seed-mixing formula.
  uint32_t member_seed(uint32_t i) const {
    PKGSTREAM_DCHECK(i < seeds_.size());
    return seeds_[i];
  }

  /// Value of member function `i` on an integer key. Inline (and backed by
  /// the fixed-width Murmur3_64 specialization) so routing loops compile to
  /// straight-line code; bit-identical to the string overload on the key's
  /// 8 little-endian bytes.
  uint32_t Bucket(uint32_t i, uint64_t key) const {
    PKGSTREAM_DCHECK(i < seeds_.size());
    return static_cast<uint32_t>(mod_.Mod(Murmur3_64(key, seeds_[i])));
  }

  /// Value of member function `i` on a string key.
  uint32_t Bucket(uint32_t i, std::string_view key) const;

  /// Writes the d candidate buckets for `key` into `out`, resizing it to
  /// exactly d and overwriting in place — a hot-loop caller that reuses one
  /// vector never reallocates after the first call (resize keeps capacity).
  /// Candidates may collide for small bucket counts; callers that need
  /// distinct candidates should deduplicate (PKG keeps duplicates, matching
  /// the theoretical Greedy-d process where H1(k) may equal H2(k)).
  void Candidates(uint64_t key, std::vector<uint32_t>* out) const;

  /// Batch form of Bucket: member function `i` over `keys[0..n)`, written
  /// to `out[0..n)` (column-major across a RouteBatch: one member, many
  /// keys). Dispatches through simd::ActiveBucketBatchKernel() — the
  /// function pointer resolved once per process from cpuid and the
  /// PKGSTREAM_FORCE_SCALAR override: batches of at least one vector go
  /// through the active multi-key kernel (AVX-512 or AVX2; ragged tail
  /// peeled to the scalar loop); everything else — short batches, scalar
  /// hosts, forced-scalar runs — takes BucketBatchScalar. All paths
  /// produce identical bits for every input (the SIMD contract in
  /// hash_simd.h), so the dispatch decision is invisible to routing.
  void BucketBatch(uint32_t i, const uint64_t* keys, uint32_t* out,
                   size_t n) const {
    PKGSTREAM_DCHECK(i < seeds_.size());
    if (n >= simd::kMinSimdBatch) {
      if (const simd::BucketBatchKernel kernel =
              simd::ActiveBucketBatchKernel()) {
        const size_t vec = n & ~static_cast<size_t>(7);
        kernel(keys, out, vec, seeds_[i], mod_.magic_hi(), mod_.magic_lo(),
               buckets_);
        if (vec != n) BucketBatchScalar(i, keys + vec, out + vec, n - vec);
        return;
      }
    }
    BucketBatchScalar(i, keys, out, n);
  }

  /// The scalar reference loop behind BucketBatch: seed and divisor hoisted,
  /// the fixed-width hash as the whole body. Public so the SIMD-vs-scalar
  /// equality tests and the micro-route A/B benchmark can pin both paths in
  /// one process regardless of the active dispatch level.
  void BucketBatchScalar(uint32_t i, const uint64_t* keys, uint32_t* out,
                         size_t n) const {
    PKGSTREAM_DCHECK(i < seeds_.size());
    const uint32_t seed = seeds_[i];
    const FastMod mod = mod_;
    for (size_t j = 0; j < n; ++j) {
      out[j] = static_cast<uint32_t>(mod.Mod(Murmur3_64(keys[j], seed)));
    }
  }

 private:
  std::vector<uint32_t> seeds_;
  uint32_t buckets_;
  FastMod mod_{1};
};

}  // namespace pkgstream

#endif  // PKGSTREAM_COMMON_HASH_H_
