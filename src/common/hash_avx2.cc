// Copyright 2026 The pkgstream Authors.
// AVX2 kernels for the batched routing hot path (see common/hash_simd.h for
// the contract, common/hash_simd_avx2_inl.h for the shared building
// blocks). This TU is compiled with -mavx2; when the toolchain or build
// configuration rules AVX2 out, it degrades to aborting stubs and
// HasAvx2Kernels() == false, and the dispatch layer (simd::ActiveSimdLevel)
// never routes here.
//
// AVX2 has no 64x64-bit multiply, which is the whole reason a vector
// Murmur3 is nontrivial: both the hash (k*c, fmix64) and the Lemire bucket
// reduction are multiply chains. The saving grace is that *every* multiply
// on this path is by a loop constant (the Murmur block constants, the
// fmix64 mixers, the divisor's FastMod magic), so each 64-bit low product
// splits into three 32x32->64 _mm256_mul_epu32 partial products against
// pre-splatted constant halves — all single-uop instructions, no
// _mm256_mullo_epi32. rotl/xor/shift/add are native 4x64 operations. Each
// key is still one serial multiply chain, so the batch loop keeps four
// independent vectors (16 keys) in flight to cover the chain latency; that
// interleaving is what actually buys the measured speedup over the
// (already multiply-throughput-bound) scalar loop.
//
// The bucket reduction replays FastMod's 128-bit-magic arithmetic limb by
// limb (the magic is *the same value* FastMod computed, passed in as two
// 64-bit halves), so equality with `n % d` is inherited from FastMod's
// proof rather than re-derived — and then pinned exhaustively by
// tests/common_simd_test.cc. Power-of-two divisors short-circuit to a
// mask, which is the same bits by definition.

#include "common/hash_simd.h"

#include "common/simd.h"

#if defined(__AVX2__) && defined(__SIZEOF_INT128__) && \
    !defined(PKGSTREAM_DISABLE_SIMD)

#include <immintrin.h>

#include <algorithm>

#include "common/hash_simd_avx2_inl.h"

namespace pkgstream {
namespace simd {

namespace {
using avx2::ConstMul;
using avx2::FastModx4;
using avx2::HashConstants;
using avx2::LoadKeys4;
using avx2::ModConstants;
using avx2::Murmur3x4;
using avx2::PackLowDwords;
}  // namespace

bool HasAvx2Kernels() { return true; }

void Murmur3_64x4Avx2(const uint64_t* keys, uint32_t seed, uint64_t* out) {
  const HashConstants c(seed);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out),
                      Murmur3x4(LoadKeys4(keys), c));
}

void Murmur3_64x8Avx2(const uint64_t* keys, uint32_t seed, uint64_t* out) {
  const HashConstants c(seed);
  const __m256i h0 = Murmur3x4(LoadKeys4(keys), c);
  const __m256i h1 = Murmur3x4(LoadKeys4(keys + 4), c);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out), h0);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 4), h1);
}

void FastModX4Avx2(const uint64_t* n, uint64_t magic_hi, uint64_t magic_lo,
                   uint32_t d, uint64_t* out) {
  const ModConstants m(magic_hi, magic_lo, d);
  const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(n));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out), FastModx4(v, m));
}

void BucketBatchAvx2(const uint64_t* keys, uint32_t* out, size_t n,
                     uint32_t seed, uint64_t magic_hi, uint64_t magic_lo,
                     uint32_t d) {
  const HashConstants c(seed);
  if ((d & (d - 1)) == 0) {
    // Power-of-two divisor: n % d == n & (d-1) bit for bit, so the whole
    // reduction chain folds into one AND per vector.
    const __m256i mask = _mm256_set1_epi64x(
        static_cast<long long>(static_cast<uint64_t>(d) - 1));
    size_t j = 0;
    for (; j + 16 <= n; j += 16) {
      const __m256i r0 =
          _mm256_and_si256(Murmur3x4(LoadKeys4(keys + j), c), mask);
      const __m256i r1 =
          _mm256_and_si256(Murmur3x4(LoadKeys4(keys + j + 4), c), mask);
      const __m256i r2 =
          _mm256_and_si256(Murmur3x4(LoadKeys4(keys + j + 8), c), mask);
      const __m256i r3 =
          _mm256_and_si256(Murmur3x4(LoadKeys4(keys + j + 12), c), mask);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + j),
                          PackLowDwords(r0, r1));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + j + 8),
                          PackLowDwords(r2, r3));
    }
    if (j < n) {  // n is a multiple of 8: exactly one half-block remains
      const __m256i r0 =
          _mm256_and_si256(Murmur3x4(LoadKeys4(keys + j), c), mask);
      const __m256i r1 =
          _mm256_and_si256(Murmur3x4(LoadKeys4(keys + j + 4), c), mask);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + j),
                          PackLowDwords(r0, r1));
    }
    return;
  }
  const ModConstants m(magic_hi, magic_lo, d);
  size_t j = 0;
  for (; j + 16 <= n; j += 16) {
    const __m256i h0 = Murmur3x4(LoadKeys4(keys + j), c);
    const __m256i h1 = Murmur3x4(LoadKeys4(keys + j + 4), c);
    const __m256i h2 = Murmur3x4(LoadKeys4(keys + j + 8), c);
    const __m256i h3 = Murmur3x4(LoadKeys4(keys + j + 12), c);
    const __m256i r0 = FastModx4(h0, m);
    const __m256i r1 = FastModx4(h1, m);
    const __m256i r2 = FastModx4(h2, m);
    const __m256i r3 = FastModx4(h3, m);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + j),
                        PackLowDwords(r0, r1));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + j + 8),
                        PackLowDwords(r2, r3));
  }
  if (j < n) {  // n is a multiple of 8: exactly one half-block remains
    const __m256i h0 = Murmur3x4(LoadKeys4(keys + j), c);
    const __m256i h1 = Murmur3x4(LoadKeys4(keys + j + 4), c);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + j),
                        PackLowDwords(FastModx4(h0, m), FastModx4(h1, m)));
  }
}

bool ArgminX4Avx2(const uint32_t* c0, const uint32_t* c1,
                  const uint64_t* loads, uint32_t* out) {
  const __m128i a = _mm_loadu_si128(reinterpret_cast<const __m128i*>(c0));
  const __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(c1));
  // Cross-lane distinctness of the 8 candidates. In the concatenated
  // vector v = [c0[0..3], c1[0..3]], rotations by 1, 2 and 3 pair every
  // element with every other *except* its distance-4 partner — which is
  // exactly the same-lane (c0[j], c1[j]) pair the contract permits.
  const __m256i v = _mm256_set_m128i(b, a);
  const __m256i rot1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
  const __m256i rot2 = _mm256_setr_epi32(2, 3, 4, 5, 6, 7, 0, 1);
  const __m256i rot3 = _mm256_setr_epi32(3, 4, 5, 6, 7, 0, 1, 2);
  __m256i eq = _mm256_cmpeq_epi32(v, _mm256_permutevar8x32_epi32(v, rot1));
  eq = _mm256_or_si256(
      eq, _mm256_cmpeq_epi32(v, _mm256_permutevar8x32_epi32(v, rot2)));
  eq = _mm256_or_si256(
      eq, _mm256_cmpeq_epi32(v, _mm256_permutevar8x32_epi32(v, rot3)));
  if (_mm256_movemask_epi8(eq) != 0) return false;

  const __m256i l0 =
      _mm256_i32gather_epi64(reinterpret_cast<const long long*>(loads), a, 8);
  const __m256i l1 =
      _mm256_i32gather_epi64(reinterpret_cast<const long long*>(loads), b, 8);
  // Unsigned 64-bit l1 < l0 via the sign-flip trick (cmpgt is signed);
  // strict <, so ties keep the first candidate like the scalar loop.
  const __m256i bias =
      _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ULL));
  const __m256i second_wins = _mm256_cmpgt_epi64(
      _mm256_xor_si256(l0, bias), _mm256_xor_si256(l1, bias));
  // Narrow the 4x64 mask to 4x32 (lanes are all-ones/all-zero, so taking
  // the low dwords preserves it), then blend the candidate columns.
  const __m256i idx = _mm256_setr_epi32(0, 2, 4, 6, 0, 2, 4, 6);
  const __m128i mask32 =
      _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(second_wins, idx));
  const __m128i best = _mm_blendv_epi8(a, b, mask32);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out), best);
  return true;
}

bool ArgminX4WideAvx2(const uint32_t* const* cols, uint32_t d,
                      const uint64_t* loads, uint32_t* out) {
  // Pack the d columns pairwise into ceil(d/2) vectors of the same
  // [col_even(4), col_odd(4)] shape ArgminX4Avx2 uses. Odd d duplicates the
  // last column into the upper half: the duplicate's distance-4 self-pairs
  // land on the skipped same-row offsets, and its cross-row pairs repeat
  // checks the real half already makes — no false accepts, no new rejects.
  __m128i col[kMaxWideArgminChoices] = {};  // zero-init: quiets GCC's
                                            // may-be-uninitialized on the
                                            // d-bounded odd-pad access
  for (uint32_t c = 0; c < d; ++c) {
    col[c] = _mm_loadu_si128(reinterpret_cast<const __m128i*>(cols[c]));
  }
  const uint32_t nv = (d + 1) / 2;
  __m256i vec[kMaxWideArgminChoices / 2];
  for (uint32_t v = 0; v < nv; ++v) {
    const __m128i hi = col[std::min(2 * v + 1, d - 1)];
    vec[v] = _mm256_set_m128i(hi, col[2 * v]);
  }

  // Cross-row distinctness of all 4*d candidates. Within one packed vector,
  // rotations 1..3 pair every lane with every other except its distance-4
  // partner — the same-row pair the contract permits (exactly ArgminX4Avx2's
  // check). Between two packed vectors, lanes i and j hold the same row iff
  // j - i == 0 (mod 4), so offsets {1, 2, 3, 5, 6, 7} cover precisely the
  // cross-row pairs and skip precisely the same-row ones.
  const __m256i rot[7] = {
      _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0),
      _mm256_setr_epi32(2, 3, 4, 5, 6, 7, 0, 1),
      _mm256_setr_epi32(3, 4, 5, 6, 7, 0, 1, 2),
      _mm256_setr_epi32(4, 5, 6, 7, 0, 1, 2, 3),
      _mm256_setr_epi32(5, 6, 7, 0, 1, 2, 3, 4),
      _mm256_setr_epi32(6, 7, 0, 1, 2, 3, 4, 5),
      _mm256_setr_epi32(7, 0, 1, 2, 3, 4, 5, 6),
  };
  __m256i eq = _mm256_setzero_si256();
  for (uint32_t v = 0; v < nv; ++v) {
    for (uint32_t k = 1; k <= 3; ++k) {
      eq = _mm256_or_si256(
          eq, _mm256_cmpeq_epi32(
                  vec[v], _mm256_permutevar8x32_epi32(vec[v], rot[k - 1])));
    }
    for (uint32_t w = v + 1; w < nv; ++w) {
      for (uint32_t k = 1; k < 8; ++k) {
        if (k == 4) continue;  // same-row offset
        eq = _mm256_or_si256(
            eq, _mm256_cmpeq_epi32(
                    vec[v], _mm256_permutevar8x32_epi32(vec[w], rot[k - 1])));
      }
    }
  }
  if (_mm256_movemask_epi8(eq) != 0) return false;

  // Running unsigned min across columns; strict <, so ties keep the lowest
  // column index like the scalar loop. Same sign-flip compare and 64->32
  // mask narrowing as ArgminX4Avx2.
  const __m256i bias =
      _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ULL));
  const __m256i narrow_idx = _mm256_setr_epi32(0, 2, 4, 6, 0, 2, 4, 6);
  __m256i best_load = _mm256_i32gather_epi64(
      reinterpret_cast<const long long*>(loads), col[0], 8);
  __m128i best = col[0];
  for (uint32_t c = 1; c < d; ++c) {
    const __m256i load = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(loads), col[c], 8);
    const __m256i wins = _mm256_cmpgt_epi64(_mm256_xor_si256(best_load, bias),
                                            _mm256_xor_si256(load, bias));
    best_load = _mm256_blendv_epi8(best_load, load, wins);
    const __m128i mask32 = _mm256_castsi256_si128(
        _mm256_permutevar8x32_epi32(wins, narrow_idx));
    best = _mm_blendv_epi8(best, col[c], mask32);
  }
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out), best);
  return true;
}

}  // namespace simd
}  // namespace pkgstream

#else  // !(__AVX2__ && __SIZEOF_INT128__ && !PKGSTREAM_DISABLE_SIMD)

#include <cstdlib>

#include "common/logging.h"

namespace pkgstream {
namespace simd {

namespace {
[[noreturn]] void Unavailable(const char* kernel) {
  PKGSTREAM_CHECK(false) << kernel
                         << " called in a build without AVX2 kernels — the "
                            "caller must gate on simd::ActiveSimdLevel()";
  std::abort();  // unreachable: the failed CHECK aborts first
}
}  // namespace

bool HasAvx2Kernels() { return false; }

void Murmur3_64x4Avx2(const uint64_t*, uint32_t, uint64_t*) {
  Unavailable("Murmur3_64x4Avx2");
}
void Murmur3_64x8Avx2(const uint64_t*, uint32_t, uint64_t*) {
  Unavailable("Murmur3_64x8Avx2");
}
void FastModX4Avx2(const uint64_t*, uint64_t, uint64_t, uint32_t, uint64_t*) {
  Unavailable("FastModX4Avx2");
}
void BucketBatchAvx2(const uint64_t*, uint32_t*, size_t, uint32_t, uint64_t,
                     uint64_t, uint32_t) {
  Unavailable("BucketBatchAvx2");
}
bool ArgminX4Avx2(const uint32_t*, const uint32_t*, const uint64_t*,
                  uint32_t*) {
  Unavailable("ArgminX4Avx2");
}
bool ArgminX4WideAvx2(const uint32_t* const*, uint32_t, const uint64_t*,
                      uint32_t*) {
  Unavailable("ArgminX4WideAvx2");
}

}  // namespace simd
}  // namespace pkgstream

#endif
