// Copyright 2026 The pkgstream Authors.
// AVX-512 kernels for the batched routing hot path — the third dispatch
// level above the AVX2 lane (hash_avx2.cc), selected at runtime when the
// host reports AVX-512F + DQ. Where AVX2 assembles every 64-bit product
// from three 32x32 partial products, AVX-512DQ has the real thing
// (VPMULLQ) plus a native 64-bit rotate (VPROLQ) and a one-instruction
// 8x64 -> 8x32 pack (VPMOVQD), so the whole hash collapses to six
// multiplies and a handful of xors/adds per eight keys. Only the *high*
// half of the reduction's 128-bit products still needs VPMULUDQ partial
// products (there is no 64-bit mulhi at any width).
//
// The same bit-compatibility contract as the AVX2 lane applies (see
// hash_simd.h): every kernel equals the scalar reference exactly, for
// every input, so the dispatch level can never change a routing decision.

#include "common/hash_simd.h"

#include "common/simd.h"

#if defined(__AVX512F__) && defined(__AVX512DQ__) && \
    defined(__SIZEOF_INT128__) && !defined(PKGSTREAM_DISABLE_SIMD)

#include <immintrin.h>

namespace pkgstream {
namespace simd {

namespace {

/// Loop-invariant constants of the fixed-width hash, splatted once.
struct HashConstants {
  __m512i c1 = _mm512_set1_epi64(static_cast<long long>(0x87c37b91114253d5ULL));
  __m512i c2 = _mm512_set1_epi64(static_cast<long long>(0x4cf5ad432745937fULL));
  __m512i f1 = _mm512_set1_epi64(static_cast<long long>(0xff51afd7ed558ccdULL));
  __m512i f2 = _mm512_set1_epi64(static_cast<long long>(0xc4ceb9fe1a85ec53ULL));
  __m512i seed_len;  // seed ^ 8 (the fixed length word)
  explicit HashConstants(uint32_t seed)
      : seed_len(_mm512_xor_si512(
            _mm512_set1_epi64(
                static_cast<long long>(static_cast<uint64_t>(seed))),
            _mm512_set1_epi64(8))) {}
};

inline __m512i Fmix64x8(__m512i k, const HashConstants& c) {
  k = _mm512_xor_si512(k, _mm512_srli_epi64(k, 33));
  k = _mm512_mullo_epi64(k, c.f1);
  k = _mm512_xor_si512(k, _mm512_srli_epi64(k, 33));
  k = _mm512_mullo_epi64(k, c.f2);
  return _mm512_xor_si512(k, _mm512_srli_epi64(k, 33));
}

/// Eight lanes of the fixed-width Murmur3_64(uint64_t) from common/hash.h.
inline __m512i Murmur3x8(__m512i key, const HashConstants& c) {
  __m512i k1 = _mm512_mullo_epi64(key, c.c1);
  k1 = _mm512_rol_epi64(k1, 31);
  k1 = _mm512_mullo_epi64(k1, c.c2);
  __m512i h1 = _mm512_xor_si512(c.seed_len, k1);
  __m512i h2 = c.seed_len;
  h1 = _mm512_add_epi64(h1, h2);
  h2 = _mm512_add_epi64(h2, h1);
  return _mm512_add_epi64(Fmix64x8(h1, c), Fmix64x8(h2, c));
}

/// Loop-invariant state of the vector FastMod.
struct ModConstants {
  __m512i magic_lo;
  __m512i magic_lo_hi32;  // magic_lo >> 32, for VPMULUDQ partial products
  __m512i magic_hi;
  __m512i d;
  ModConstants(uint64_t hi, uint64_t lo, uint32_t divisor)
      : magic_lo(_mm512_set1_epi64(static_cast<long long>(lo))),
        magic_lo_hi32(_mm512_set1_epi64(static_cast<long long>(lo >> 32))),
        magic_hi(_mm512_set1_epi64(static_cast<long long>(hi))),
        d(_mm512_set1_epi64(
              static_cast<long long>(static_cast<uint64_t>(divisor)))) {}
};

/// `a` with each lane's high dword duplicated into the low dword — a valid
/// VPMULUDQ operand standing in for (a >> 32); the multiplier ignores the
/// odd-dword garbage and the shuffle stays off the shift port.
inline __m512i HiForMul(__m512i a) {
  return _mm512_shuffle_epi32(a, _MM_PERM_DDBB);
}

/// ((x * d) >> 64) for the 32-bit d: (x_hi*d + (x_lo*d >> 32)) >> 32.
inline __m512i MulShift64By32(__m512i x, __m512i dv) {
  const __m512i lo_prod = _mm512_mul_epu32(x, dv);
  const __m512i hi_prod = _mm512_mul_epu32(HiForMul(x), dv);
  const __m512i sum =
      _mm512_add_epi64(hi_prod, _mm512_srli_epi64(lo_prod, 32));
  return _mm512_srli_epi64(sum, 32);
}

/// FastMod::Mod, lane-wise. The low 64 bits of magic_lo * n come straight
/// from VPMULLQ; the high 64 still need the four partial products (their
/// carry structure, not their low word). Exactness is FastMod's.
inline __m512i FastModx8(__m512i n, const ModConstants& m) {
  const __m512i n_hi = HiForMul(n);
  const __m512i a_lo = _mm512_mullo_epi64(n, m.magic_lo);
  const __m512i p00 = _mm512_mul_epu32(n, m.magic_lo);
  const __m512i p01 = _mm512_mul_epu32(n, m.magic_lo_hi32);
  const __m512i p10 = _mm512_mul_epu32(n_hi, m.magic_lo);
  const __m512i p11 = _mm512_mul_epu32(n_hi, m.magic_lo_hi32);
  const __m512i low32_mask = _mm512_set1_epi64(0xffffffffLL);
  const __m512i mid = _mm512_add_epi64(p10, _mm512_srli_epi64(p00, 32));
  const __m512i mid2 =
      _mm512_add_epi64(p01, _mm512_and_si512(mid, low32_mask));
  const __m512i a_hi =
      _mm512_add_epi64(p11, _mm512_add_epi64(_mm512_srli_epi64(mid, 32),
                                             _mm512_srli_epi64(mid2, 32)));
  // lowbits = {a_hi + low64(magic_hi * n), a_lo} (mod 2^128).
  const __m512i l_hi =
      _mm512_add_epi64(a_hi, _mm512_mullo_epi64(n, m.magic_hi));
  // result = (l_hi*d + ((a_lo*d) >> 64)) >> 64, all by 32-bit-d chains.
  const __m512i s = MulShift64By32(a_lo, m.d);
  const __m512i t_lo = _mm512_mul_epu32(l_hi, m.d);
  const __m512i t_hi = _mm512_mul_epu32(HiForMul(l_hi), m.d);
  const __m512i inner = _mm512_srli_epi64(_mm512_add_epi64(t_lo, s), 32);
  return _mm512_srli_epi64(_mm512_add_epi64(t_hi, inner), 32);
}

inline __m512i LoadKeys(const uint64_t* keys) {
  return _mm512_loadu_si512(keys);
}

inline void StoreBuckets(uint32_t* out, __m512i r) {
  // 8x64 -> 8x32 pack: every bucket fits 32 bits.
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out),
                      _mm512_cvtepi64_epi32(r));
}

}  // namespace

bool HasAvx512Kernels() { return true; }

void Murmur3_64x8Avx512(const uint64_t* keys, uint32_t seed, uint64_t* out) {
  const HashConstants c(seed);
  _mm512_storeu_si512(out, Murmur3x8(LoadKeys(keys), c));
}

void FastModX8Avx512(const uint64_t* n, uint64_t magic_hi, uint64_t magic_lo,
                     uint32_t d, uint64_t* out) {
  const ModConstants m(magic_hi, magic_lo, d);
  _mm512_storeu_si512(out, FastModx8(_mm512_loadu_si512(n), m));
}

void BucketBatchAvx512(const uint64_t* keys, uint32_t* out, size_t n,
                       uint32_t seed, uint64_t magic_hi, uint64_t magic_lo,
                       uint32_t d) {
  const HashConstants c(seed);
  // Each vector is one serial VPMULLQ chain (~15-cycle latency each
  // multiply), so single-vector code runs at chain latency. Four
  // independent vectors (32 keys) per iteration keep the multiplier
  // saturated; the 8/16-key remainders run narrower.
  if ((d & (d - 1)) == 0) {
    // Power-of-two divisor: n % d == n & (d-1) bit for bit, so the whole
    // reduction chain folds into one AND.
    const __m512i mask = _mm512_set1_epi64(
        static_cast<long long>(static_cast<uint64_t>(d) - 1));
    size_t j = 0;
    for (; j + 32 <= n; j += 32) {
      const __m512i h0 = Murmur3x8(LoadKeys(keys + j), c);
      const __m512i h1 = Murmur3x8(LoadKeys(keys + j + 8), c);
      const __m512i h2 = Murmur3x8(LoadKeys(keys + j + 16), c);
      const __m512i h3 = Murmur3x8(LoadKeys(keys + j + 24), c);
      StoreBuckets(out + j, _mm512_and_si512(h0, mask));
      StoreBuckets(out + j + 8, _mm512_and_si512(h1, mask));
      StoreBuckets(out + j + 16, _mm512_and_si512(h2, mask));
      StoreBuckets(out + j + 24, _mm512_and_si512(h3, mask));
    }
    for (; j + 8 <= n; j += 8) {  // n is a multiple of 8
      StoreBuckets(out + j,
                   _mm512_and_si512(Murmur3x8(LoadKeys(keys + j), c), mask));
    }
    return;
  }
  // General divisor: delegate to the AVX2 kernel. The zmm Lemire chain
  // (FastModx8 above, kept for the test surface) lands every multiply and
  // shift on port 0 and measures slower than the AVX2 reduction, which
  // spreads its single-uop partial products over two ports; a zmm-hash /
  // ymm-reduce hybrid loses again to VEX/EVEX register-file friction
  // without AVX-512VL. Measured on the reference host: AVX2 ~1.2x the
  // scalar loop here, both zmm variants below it.
  BucketBatchAvx2(keys, out, n, seed, magic_hi, magic_lo, d);
}

}  // namespace simd
}  // namespace pkgstream

#else  // !(__AVX512F__ && __AVX512DQ__ && __SIZEOF_INT128__ && !DISABLE)

#include <cstdlib>

#include "common/logging.h"

namespace pkgstream {
namespace simd {

namespace {
[[noreturn]] void Unavailable(const char* kernel) {
  PKGSTREAM_CHECK(false) << kernel
                         << " called in a build without AVX-512 kernels — "
                            "the caller must gate on simd::ActiveSimdLevel()";
  std::abort();  // unreachable: the failed CHECK aborts first
}
}  // namespace

bool HasAvx512Kernels() { return false; }

void Murmur3_64x8Avx512(const uint64_t*, uint32_t, uint64_t*) {
  Unavailable("Murmur3_64x8Avx512");
}
void FastModX8Avx512(const uint64_t*, uint64_t, uint64_t, uint32_t,
                     uint64_t*) {
  Unavailable("FastModX8Avx512");
}
void BucketBatchAvx512(const uint64_t*, uint32_t*, size_t, uint32_t, uint64_t,
                       uint64_t, uint32_t) {
  Unavailable("BucketBatchAvx512");
}

}  // namespace simd
}  // namespace pkgstream

#endif
