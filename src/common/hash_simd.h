// Copyright 2026 The pkgstream Authors.
// AVX2 kernel surface of the routing hot path. Everything declared here is
// defined in hash_avx2.cc — the only translation unit built with -mavx2 —
// and must only be *called* after a runtime gate (simd::ActiveSimdLevel()
// == kAvx2, or HasAvx2Kernels() && CpuSupportsAvx2() in tests); on builds
// without the kernels the definitions are aborting stubs.
//
// The bit-compatibility contract: every kernel equals its scalar reference
// exactly, for every input —
//   Murmur3_64x{4,8}Avx2,
//   Murmur3_64x8Avx512    == Murmur3_64(uint64_t key, uint32_t seed)
//   FastModX4Avx2,
//   FastModX8Avx512       == FastMod(d).Mod(n)        for d < 2^32
//   BucketBatchAvx2/512   == HashFamily::BucketBatchScalar
//   ArgminX4Avx2          == the scalar two-choice argmin (ties pick the
//                            first candidate), valid only when it reports
//                            the four rows cross-lane conflict-free
//   ArgminX4WideAvx2      == the scalar d-choice argmin over d candidate
//                            columns (2 <= d <= 8), same tie-break and
//                            same conflict-refusal contract
// tests/common_simd_test.cc pins each equality over adversarial inputs;
// routing decisions ride on these bits, so any divergence invalidates every
// committed baseline.

#ifndef PKGSTREAM_COMMON_HASH_SIMD_H_
#define PKGSTREAM_COMMON_HASH_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace pkgstream {
namespace simd {

/// \brief Batches shorter than this stay on the scalar path: below one
/// 8-wide vector the dispatch + tail handling costs more than it saves.
inline constexpr size_t kMinSimdBatch = 8;

/// \brief Signature shared by the BucketBatch kernels of every dispatch
/// level: hash `keys[0..n)` with `seed`, reduce by the divisor behind
/// (magic_hi, magic_lo, d), write 32-bit buckets. `n` must be a multiple
/// of 8 (the dispatch layer peels the ragged tail to the scalar loop).
/// Power-of-two divisors short-circuit the reduction to a mask — `n % d`
/// and `n & (d-1)` are the same bits there.
using BucketBatchKernel = void (*)(const uint64_t* keys, uint32_t* out,
                                   size_t n, uint32_t seed, uint64_t magic_hi,
                                   uint64_t magic_lo, uint32_t d);

/// \brief The fixed-width integer Murmur3 over 4 keys (one 4x64 vector).
/// `out[j]` is bit-identical to Murmur3_64(keys[j], seed).
void Murmur3_64x4Avx2(const uint64_t* keys, uint32_t seed, uint64_t* out);

/// \brief 8 keys per call: two interleaved 4-wide lanes, so the multiply
/// chains of independent keys overlap. Bit-identical to the scalar hash.
void Murmur3_64x8Avx2(const uint64_t* keys, uint32_t seed, uint64_t* out);

/// \brief 8 keys in one 8x64 vector via AVX-512DQ's native 64-bit multiply
/// and rotate. Bit-identical to the scalar hash.
void Murmur3_64x8Avx512(const uint64_t* keys, uint32_t seed, uint64_t* out);

/// \brief Exact remainder of 4 numerators by one 32-bit divisor, from the
/// divisor's 128-bit FastMod magic (FastMod::magic_hi()/magic_lo()).
/// Bit-identical to FastMod::Mod for every n and every d in [1, 2^32).
void FastModX4Avx2(const uint64_t* n, uint64_t magic_hi, uint64_t magic_lo,
                   uint32_t d, uint64_t* out);

/// \brief The 8-wide AVX-512 form of FastModX4Avx2, same contract.
void FastModX8Avx512(const uint64_t* n, uint64_t magic_hi, uint64_t magic_lo,
                     uint32_t d, uint64_t* out);

/// \brief AVX2 BucketBatch kernel (BucketBatchKernel signature).
void BucketBatchAvx2(const uint64_t* keys, uint32_t* out, size_t n,
                     uint32_t seed, uint64_t magic_hi, uint64_t magic_lo,
                     uint32_t d);

/// \brief AVX-512 BucketBatch kernel (BucketBatchKernel signature).
void BucketBatchAvx512(const uint64_t* keys, uint32_t* out, size_t n,
                       uint32_t seed, uint64_t magic_hi, uint64_t magic_lo,
                       uint32_t d);

/// \brief The ifunc-style selection: the BucketBatch kernel for the active
/// dispatch level, resolved once (first call) and pinned. nullptr when the
/// active level is scalar — callers then run the scalar reference loop.
BucketBatchKernel ActiveBucketBatchKernel();

/// \brief Vectorized two-choice argmin over 4 rows of the (c0, c1) candidate
/// columns against a contiguous load array. When the 8 candidate buckets are
/// cross-lane distinct (same-lane c0==c1 collisions are fine — the tie picks
/// c0, independent of other rows), the 4 decisions are independent of the
/// in-between load increments, so the vector result equals the sequential
/// scalar argmin; writes out[0..4) and returns true. On any cross-lane
/// collision it writes nothing and returns false — the caller re-runs those
/// rows through the sequential scalar protocol. Loads are compared as
/// unsigned 64-bit, matching the scalar `<`. Buckets must be < 2^31 (the
/// gather consumes signed 32-bit indices).
bool ArgminX4Avx2(const uint32_t* c0, const uint32_t* c1,
                  const uint64_t* loads, uint32_t* out);

/// \brief Largest d ArgminX4WideAvx2 accepts: 8 columns pack into four
/// 8-lane candidate vectors, the point where the all-pairs conflict check
/// stops paying for itself against the per-row scalar loop.
inline constexpr uint32_t kMaxWideArgminChoices = 8;

/// \brief The d-wide generalization of ArgminX4Avx2: greedy-d argmin over 4
/// rows of d candidate columns (2 <= d <= kMaxWideArgminChoices), where
/// `cols[c]` points at 4 consecutive buckets of column c. When all 4*d
/// candidates are cross-ROW distinct (same-row duplicates across columns are
/// fine — the row's argmin is still independent of the other rows), the 4
/// decisions cannot see the in-between OnSend increments, so the vector
/// result equals the sequential scalar protocol; writes out[0..4) and
/// returns true. On any cross-row collision it writes nothing and returns
/// false, and the caller re-runs those rows through the sequential scalar
/// protocol. Ties keep the lowest column index, loads compare as unsigned
/// 64-bit, buckets must be < 2^31 — all exactly as ArgminX4Avx2 (which is
/// the d = 2 instance of this contract).
bool ArgminX4WideAvx2(const uint32_t* const* cols, uint32_t d,
                      const uint64_t* loads, uint32_t* out);

}  // namespace simd
}  // namespace pkgstream

#endif  // PKGSTREAM_COMMON_HASH_SIMD_H_
