// Copyright 2026 The pkgstream Authors.
// Internal: the AVX2 (ymm) building blocks of the SIMD routing kernels,
// shared by the translation units that compile with AVX2 available —
// hash_avx2.cc (-mavx2) and hash_avx512.cc (-mavx512f implies AVX2). The
// AVX-512 kernel reuses the 4-wide Lemire reduction because the zmm form
// of the same chain lands every multiply and shift on port 0, where the
// ymm form spreads across two ports and wins despite half the lanes.
//
// Everything here follows the bit-compatibility contract of hash_simd.h:
// Murmur3x4 == Murmur3_64(uint64_t), FastModx4 == FastMod::Mod for every
// 32-bit divisor. Do not include outside an AVX2-enabled TU.

#ifndef PKGSTREAM_COMMON_HASH_SIMD_AVX2_INL_H_
#define PKGSTREAM_COMMON_HASH_SIMD_AVX2_INL_H_

#include <immintrin.h>

#include <cstdint>

namespace pkgstream {
namespace simd {
namespace avx2 {

/// A 64-bit constant multiplicand, pre-split into splatted 32-bit halves
/// (each sitting in the low dword of every 64-bit lane, where
/// _mm256_mul_epu32 reads its operands).
struct ConstMul {
  __m256i lo;
  __m256i hi;
  explicit ConstMul(uint64_t c)
      : lo(_mm256_set1_epi64x(static_cast<long long>(c & 0xffffffffULL))),
        hi(_mm256_set1_epi64x(static_cast<long long>(c >> 32))) {}
};

/// `a` with each lane's high dword duplicated into the low dword — a valid
/// _mm256_mul_epu32 operand standing in for (a >> 32). The odd-dword
/// garbage is ignored by the multiplier, and vpshufd runs on the shuffle
/// port, off the shift/multiply ports this kernel is bound on (the reason
/// it is used instead of _mm256_srli_epi64 wherever the result only feeds
/// a multiply).
inline __m256i HiForMul(__m256i a) {
  return _mm256_shuffle_epi32(a, _MM_SHUFFLE(3, 3, 1, 1));
}

/// Low 64 bits of the lane-wise product a * C for the pre-split constant C:
/// three partial products and one shift placing the cross terms. Carries
/// above bit 63 fall off exactly as in scalar wraparound.
inline __m256i Mul64Lo(__m256i a, const ConstMul& c) {
  const __m256i w0 = _mm256_mul_epu32(a, c.lo);
  const __m256i w1 = _mm256_mul_epu32(a, c.hi);
  const __m256i w2 = _mm256_mul_epu32(HiForMul(a), c.lo);
  const __m256i mid = _mm256_add_epi64(w1, w2);
  return _mm256_add_epi64(w0, _mm256_slli_epi64(mid, 32));
}

inline __m256i Rotl64(__m256i x, int r) {
  return _mm256_or_si256(_mm256_slli_epi64(x, r),
                         _mm256_srli_epi64(x, 64 - r));
}

/// Loop-invariant constants of the fixed-width hash, splatted once.
struct HashConstants {
  ConstMul c1{0x87c37b91114253d5ULL};  // Murmur3 block constant 1
  ConstMul c2{0x4cf5ad432745937fULL};  // Murmur3 block constant 2
  ConstMul f1{0xff51afd7ed558ccdULL};  // fmix64 multiplier 1
  ConstMul f2{0xc4ceb9fe1a85ec53ULL};  // fmix64 multiplier 2
  __m256i seed_len;                    // seed ^ 8 (the fixed length word)
  explicit HashConstants(uint32_t seed)
      : seed_len(_mm256_xor_si256(
            _mm256_set1_epi64x(
                static_cast<long long>(static_cast<uint64_t>(seed))),
            _mm256_set1_epi64x(8))) {}
};

inline __m256i Fmix64x4(__m256i k, const HashConstants& c) {
  k = _mm256_xor_si256(k, _mm256_srli_epi64(k, 33));
  k = Mul64Lo(k, c.f1);
  k = _mm256_xor_si256(k, _mm256_srli_epi64(k, 33));
  k = Mul64Lo(k, c.f2);
  return _mm256_xor_si256(k, _mm256_srli_epi64(k, 33));
}

/// Four lanes of the fixed-width Murmur3_64(uint64_t) from common/hash.h,
/// operation for operation (h2's pre-mix value seed^8 is the hoisted
/// seed_len; h1 = (seed ^ k1) ^ 8 regrouped the same way).
inline __m256i Murmur3x4(__m256i key, const HashConstants& c) {
  __m256i k1 = Mul64Lo(key, c.c1);
  k1 = Rotl64(k1, 31);
  k1 = Mul64Lo(k1, c.c2);
  __m256i h1 = _mm256_xor_si256(c.seed_len, k1);
  __m256i h2 = c.seed_len;
  h1 = _mm256_add_epi64(h1, h2);
  h2 = _mm256_add_epi64(h2, h1);
  return _mm256_add_epi64(Fmix64x4(h1, c), Fmix64x4(h2, c));
}

/// Loop-invariant state of the vector FastMod: the divisor's 128-bit magic
/// halves as ConstMul splits plus the divisor in the low dword of every
/// lane.
struct ModConstants {
  ConstMul magic_lo;
  ConstMul magic_hi;
  __m256i d;
  ModConstants(uint64_t hi, uint64_t lo, uint32_t divisor)
      : magic_lo(lo),
        magic_hi(hi),
        d(_mm256_set1_epi64x(
              static_cast<long long>(static_cast<uint64_t>(divisor)))) {}
};

/// ((x * d) >> 64) for the 32-bit d in the low dword of each lane of `dv`:
/// x*d = x_hi*d*2^32 + x_lo*d, so the top 64 bits reduce to two 32x32->64
/// products — (x_hi*d + (x_lo*d >> 32)) >> 32, carries proven to fit 64
/// bits since x_hi*d <= (2^32-1)^2.
inline __m256i MulShift64By32(__m256i x, __m256i dv) {
  const __m256i lo_prod = _mm256_mul_epu32(x, dv);
  const __m256i hi_prod = _mm256_mul_epu32(HiForMul(x), dv);
  const __m256i sum =
      _mm256_add_epi64(hi_prod, _mm256_srli_epi64(lo_prod, 32));
  return _mm256_srli_epi64(sum, 32);
}

/// FastMod::Mod, lane-wise: lowbits = magic * n mod 2^128 (limb
/// arithmetic), result = (lowbits * d) >> 128. Exactness is FastMod's.
inline __m256i FastModx4(__m256i n, const ModConstants& m) {
  const __m256i n_hi = HiForMul(n);
  // Full 128-bit product A = magic_lo * n via four partial products with
  // explicit carry splitting (mid sums would overflow 64 bits otherwise).
  const __m256i p00 = _mm256_mul_epu32(n, m.magic_lo.lo);
  const __m256i p01 = _mm256_mul_epu32(n, m.magic_lo.hi);
  const __m256i p10 = _mm256_mul_epu32(n_hi, m.magic_lo.lo);
  const __m256i p11 = _mm256_mul_epu32(n_hi, m.magic_lo.hi);
  const __m256i low32_mask = _mm256_set1_epi64x(0xffffffffLL);
  const __m256i mid = _mm256_add_epi64(p10, _mm256_srli_epi64(p00, 32));
  const __m256i mid2 =
      _mm256_add_epi64(p01, _mm256_and_si256(mid, low32_mask));
  const __m256i a_lo = _mm256_add_epi64(_mm256_slli_epi64(mid2, 32),
                                        _mm256_and_si256(p00, low32_mask));
  const __m256i a_hi =
      _mm256_add_epi64(p11, _mm256_add_epi64(_mm256_srli_epi64(mid, 32),
                                             _mm256_srli_epi64(mid2, 32)));
  // lowbits = {a_hi + low64(magic_hi * n), a_lo} (mod 2^128).
  const __m256i l_hi = _mm256_add_epi64(a_hi, Mul64Lo(n, m.magic_hi));
  // result = (l_hi*d + ((a_lo*d) >> 64)) >> 64, all by 32-bit-d chains.
  const __m256i s = MulShift64By32(a_lo, m.d);
  const __m256i t_lo = _mm256_mul_epu32(l_hi, m.d);
  const __m256i t_hi = _mm256_mul_epu32(HiForMul(l_hi), m.d);
  const __m256i inner = _mm256_srli_epi64(_mm256_add_epi64(t_lo, s), 32);
  return _mm256_srli_epi64(_mm256_add_epi64(t_hi, inner), 32);
}

/// Packs the low dwords of two 4x64 vectors into one 8x32 vector
/// [a0 a1 a2 a3 b0 b1 b2 b3] (values must fit 32 bits — buckets do).
inline __m256i PackLowDwords(__m256i a, __m256i b) {
  const __m256i idx = _mm256_setr_epi32(0, 2, 4, 6, 0, 2, 4, 6);
  const __m256i a_packed = _mm256_permutevar8x32_epi32(a, idx);  // low 128
  const __m256i b_packed = _mm256_permutevar8x32_epi32(b, idx);  // low 128
  return _mm256_permute2x128_si256(a_packed, b_packed, 0x20);
}

inline __m256i LoadKeys4(const uint64_t* keys) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys));
}

}  // namespace avx2
}  // namespace simd
}  // namespace pkgstream

#endif  // PKGSTREAM_COMMON_HASH_SIMD_AVX2_INL_H_
