// Copyright 2026 The pkgstream Authors.

#include "common/json.h"

#include <cassert>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace pkgstream {

bool JsonValue::bool_value() const {
  assert(type_ == Type::kBool);
  return bool_;
}

double JsonValue::number() const {
  assert(type_ == Type::kNumber);
  return number_;
}

const std::string& JsonValue::string_value() const {
  assert(type_ == Type::kString);
  return string_;
}

void JsonValue::Append(JsonValue v) {
  assert(type_ == Type::kArray);
  items_.push_back(std::move(v));
}

void JsonValue::Set(const std::string& key, JsonValue v) {
  assert(type_ == Type::kObject);
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  members_.emplace_back(key, std::move(v));
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue* JsonValue::FindObject(const std::string& key) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_object()) ? v : nullptr;
}

double JsonValue::NumberOr(const std::string& key, double fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_number()) ? v->number() : fallback;
}

std::string JsonValue::StringOr(const std::string& key,
                                const std::string& fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_string()) ? v->string_value() : fallback;
}

bool operator==(const JsonValue& a, const JsonValue& b) {
  if (a.type_ != b.type_) return false;
  switch (a.type_) {
    case JsonValue::Type::kNull:
      return true;
    case JsonValue::Type::kBool:
      return a.bool_ == b.bool_;
    case JsonValue::Type::kNumber:
      return a.number_ == b.number_;
    case JsonValue::Type::kString:
      return a.string_ == b.string_;
    case JsonValue::Type::kArray:
      return a.items_ == b.items_;
    case JsonValue::Type::kObject:
      return a.members_ == b.members_;
  }
  return false;
}

std::string FormatJsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  // Exactly-integral values within the double-exact range print as
  // integers: counts stay "40000", not "40000.0".
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc()) {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
  }
  return std::string(buf, ptr);
}

std::string JsonEscape(const std::string& s) {
  std::string out = "\"";
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
  return out;
}

void JsonValue::WriteIndented(std::ostream& os, int depth) const {
  const std::string pad(static_cast<size_t>(depth) * 2, ' ');
  const std::string inner_pad(static_cast<size_t>(depth + 1) * 2, ' ');
  switch (type_) {
    case Type::kNull:
      os << "null";
      return;
    case Type::kBool:
      os << (bool_ ? "true" : "false");
      return;
    case Type::kNumber:
      os << FormatJsonNumber(number_);
      return;
    case Type::kString:
      os << JsonEscape(string_);
      return;
    case Type::kArray: {
      if (items_.empty()) {
        os << "[]";
        return;
      }
      os << "[\n";
      for (size_t i = 0; i < items_.size(); ++i) {
        os << inner_pad;
        items_[i].WriteIndented(os, depth + 1);
        os << (i + 1 < items_.size() ? ",\n" : "\n");
      }
      os << pad << "]";
      return;
    }
    case Type::kObject: {
      if (members_.empty()) {
        os << "{}";
        return;
      }
      os << "{\n";
      for (size_t i = 0; i < members_.size(); ++i) {
        os << inner_pad << JsonEscape(members_[i].first) << ": ";
        members_[i].second.WriteIndented(os, depth + 1);
        os << (i + 1 < members_.size() ? ",\n" : "\n");
      }
      os << pad << "}";
      return;
    }
  }
}

void JsonValue::Write(std::ostream& os) const {
  WriteIndented(os, 0);
  os << "\n";
}

std::string JsonValue::ToString() const {
  std::ostringstream os;
  Write(os);
  return os.str();
}

// ---------------------------------------------------------------------------
// Parser: strict recursive descent over the full input.
// ---------------------------------------------------------------------------

namespace {

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    SkipWhitespace();
    JsonValue value;
    PKGSTREAM_RETURN_NOT_OK(ParseValue(&value, /*depth=*/0));
    SkipWhitespace();
    if (pos_ != text_.size()) return Error("trailing characters");
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("json parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool ConsumeLiteral(const char* literal) {
    size_t n = 0;
    while (literal[n] != '\0') ++n;
    if (text_.compare(pos_, n, literal) != 0) return false;
    pos_ += n;
    return true;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case 'n':
        if (!ConsumeLiteral("null")) return Error("expected 'null'");
        *out = JsonValue::Null();
        return Status::OK();
      case 't':
        if (!ConsumeLiteral("true")) return Error("expected 'true'");
        *out = JsonValue::Bool(true);
        return Status::OK();
      case 'f':
        if (!ConsumeLiteral("false")) return Error("expected 'false'");
        *out = JsonValue::Bool(false);
        return Status::OK();
      case '"':
        return ParseString(out);
      case '[':
        return ParseArray(out, depth);
      case '{':
        return ParseObject(out, depth);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseString(JsonValue* out) {
    std::string s;
    PKGSTREAM_RETURN_NOT_OK(ParseRawString(&s));
    *out = JsonValue::Str(std::move(s));
    return Status::OK();
  }

  Status ParseRawString(std::string* out) {
    ++pos_;  // opening quote
    std::string s;
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        *out = std::move(s);
        return Status::OK();
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Error("unterminated escape");
        switch (text_[pos_]) {
          case '"':
            s += '"';
            break;
          case '\\':
            s += '\\';
            break;
          case '/':
            s += '/';
            break;
          case 'b':
            s += '\b';
            break;
          case 'f':
            s += '\f';
            break;
          case 'n':
            s += '\n';
            break;
          case 'r':
            s += '\r';
            break;
          case 't':
            s += '\t';
            break;
          case 'u': {
            if (pos_ + 4 >= text_.size()) return Error("short \\u escape");
            unsigned code = 0;
            for (int i = 1; i <= 4; ++i) {
              char h = text_[pos_ + static_cast<size_t>(i)];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Error("bad \\u escape");
              }
            }
            pos_ += 4;
            // UTF-8 encode the BMP code point (surrogate pairs are not
            // produced by our writer; reject them rather than mis-decode).
            if (code >= 0xD800 && code <= 0xDFFF) {
              return Error("surrogate \\u escapes unsupported");
            }
            if (code < 0x80) {
              s += static_cast<char>(code);
            } else if (code < 0x800) {
              s += static_cast<char>(0xC0 | (code >> 6));
              s += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              s += static_cast<char>(0xE0 | (code >> 12));
              s += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              s += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return Error("unknown escape");
        }
        ++pos_;
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      s += c;
      ++pos_;
    }
  }

  Status ParseNumber(JsonValue* out) {
    // JSON grammar, not strtod's: no leading '+', no leading zeros, no
    // bare '.', digits required around '.' and after an exponent sign.
    const size_t start = pos_;
    auto digit = [&] {
      return pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9';
    };
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (!digit()) {
      pos_ = start;
      return Error("expected a value");
    }
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (digit()) ++pos_;
    }
    if (digit()) {
      pos_ = start;
      return Error("leading zeros are not valid JSON");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!digit()) {
        pos_ = start;
        return Error("digits required after decimal point");
      }
      while (digit()) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!digit()) {
        pos_ = start;
        return Error("digits required in exponent");
      }
      while (digit()) ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || end == token.c_str()) {
      pos_ = start;
      return Error("malformed number '" + token + "'");
    }
    *out = JsonValue::Number(v);
    return Status::OK();
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    JsonValue arr = JsonValue::Array();
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      *out = std::move(arr);
      return Status::OK();
    }
    while (true) {
      SkipWhitespace();
      JsonValue item;
      PKGSTREAM_RETURN_NOT_OK(ParseValue(&item, depth + 1));
      arr.Append(std::move(item));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Error("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        *out = std::move(arr);
        return Status::OK();
      }
      return Error("expected ',' or ']'");
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    JsonValue obj = JsonValue::Object();
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      *out = std::move(obj);
      return Status::OK();
    }
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      std::string key;
      PKGSTREAM_RETURN_NOT_OK(ParseRawString(&key));
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Error("expected ':'");
      }
      ++pos_;
      SkipWhitespace();
      JsonValue value;
      PKGSTREAM_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      if (obj.Find(key) != nullptr) {
        return Error("duplicate object key '" + key + "'");
      }
      obj.Set(key, std::move(value));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Error("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        *out = std::move(obj);
        return Status::OK();
      }
      return Error("expected ',' or '}'");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> JsonValue::Parse(const std::string& text) {
  return JsonParser(text).Parse();
}

Result<JsonValue> ReadJsonFile(const std::string& path) {
  std::ifstream f(path);
  if (!f) return Status::IOError("cannot open for reading: " + path);
  std::ostringstream buffer;
  buffer << f.rdbuf();
  if (f.bad()) return Status::IOError("read failed: " + path);
  PKGSTREAM_ASSIGN_OR_RETURN(JsonValue value, JsonValue::Parse(buffer.str()));
  return value;
}

Status WriteJsonFile(const JsonValue& value, const std::string& path) {
  std::ofstream f(path);
  if (!f) return Status::IOError("cannot open for writing: " + path);
  value.Write(f);
  f.flush();
  if (!f) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace pkgstream
