// Copyright 2026 The pkgstream Authors.
// A small JSON value type with a deterministic writer and a strict parser.
//
// Built for the bench report / baseline pipeline (bench/report.h,
// tools/bench_check): reports must serialize byte-identically for the same
// inputs so determinism can be checked with a file compare, and baselines
// must parse back losslessly. Scope is deliberately small — objects keep
// insertion order (no hashing, no locale), numbers round-trip through
// shortest-form formatting, and the parser rejects anything but one JSON
// document with optional trailing whitespace.

#ifndef PKGSTREAM_COMMON_JSON_H_
#define PKGSTREAM_COMMON_JSON_H_

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"

namespace pkgstream {

/// \brief One JSON value: null, bool, number, string, array, or object.
///
/// Objects preserve insertion order; Set() replaces an existing member in
/// place, and the parser rejects documents with duplicate keys — so a value
/// written with Write() re-parses to an equal value and re-serializes to
/// the same bytes.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}

  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b) {
    JsonValue v;
    v.type_ = Type::kBool;
    v.bool_ = b;
    return v;
  }
  static JsonValue Number(double d) {
    JsonValue v;
    v.type_ = Type::kNumber;
    v.number_ = d;
    return v;
  }
  static JsonValue Str(std::string s) {
    JsonValue v;
    v.type_ = Type::kString;
    v.string_ = std::move(s);
    return v;
  }
  static JsonValue Array() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; must only be called when the type matches.
  bool bool_value() const;
  double number() const;
  const std::string& string_value() const;

  /// Array access.
  size_t size() const { return items_.size(); }
  const JsonValue& at(size_t i) const { return items_[i]; }
  void Append(JsonValue v);

  /// Object access: ordered (key, value) members.
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }
  /// Sets `key` (replacing an existing member in place).
  void Set(const std::string& key, JsonValue v);
  /// Returns the member value or nullptr.
  const JsonValue* Find(const std::string& key) const;

  /// Convenience lookups for the report/baseline schemas: nullptr /
  /// fallback when the key is missing or the type does not match.
  const JsonValue* FindObject(const std::string& key) const;
  double NumberOr(const std::string& key, double fallback) const;
  std::string StringOr(const std::string& key,
                       const std::string& fallback) const;

  /// Serializes with 2-space indentation and a trailing newline at the top
  /// level. Deterministic: same value, same bytes.
  void Write(std::ostream& os) const;
  std::string ToString() const;

  /// Parses exactly one JSON document (plus surrounding whitespace).
  static Result<JsonValue> Parse(const std::string& text);

  friend bool operator==(const JsonValue& a, const JsonValue& b);
  friend bool operator!=(const JsonValue& a, const JsonValue& b) {
    return !(a == b);
  }

 private:
  void WriteIndented(std::ostream& os, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;                           // kArray
  std::vector<std::pair<std::string, JsonValue>> members_;  // kObject
};

/// \brief Canonical JSON text for a double: integers without a fraction,
/// everything else in shortest form that round-trips (std::to_chars).
/// Non-finite values (which JSON cannot represent) become "null".
std::string FormatJsonNumber(double v);

/// \brief Escapes `s` as a JSON string literal, including the quotes.
std::string JsonEscape(const std::string& s);

/// \brief Reads and parses a JSON file.
Result<JsonValue> ReadJsonFile(const std::string& path);

/// \brief Writes `value` to `path` (atomic enough for our single-writer
/// uses: truncate + write + flush, error-checked).
Status WriteJsonFile(const JsonValue& value, const std::string& path);

}  // namespace pkgstream

#endif  // PKGSTREAM_COMMON_JSON_H_
