// Copyright 2026 The pkgstream Authors.

#include "common/logging.h"

#include "common/status.h"

namespace pkgstream {

namespace {
LogLevel g_level = LogLevel::kInfo;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= g_level || level_ == LogLevel::kFatal) {
    std::cerr << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace pkgstream
