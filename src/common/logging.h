// Copyright 2026 The pkgstream Authors.
// Minimal leveled logging plus CHECK/DCHECK invariants, glog-flavoured but
// self-contained (no dependency, no global registration).

#ifndef PKGSTREAM_COMMON_LOGGING_H_
#define PKGSTREAM_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace pkgstream {

/// \brief Severity levels, in increasing order of severity.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// \brief Process-wide minimum level that will actually be emitted.
/// Defaults to kInfo. Thread-unsafe by design: set it once at startup.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Stream-style message collector that emits on destruction.
/// Not for direct use; use the PKGSTREAM_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Sink that swallows everything (used for disabled DCHECKs in release).
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal

#define PKGSTREAM_LOG(level)                                        \
  ::pkgstream::internal::LogMessage(::pkgstream::LogLevel::k##level, \
                                    __FILE__, __LINE__)

/// CHECK aborts the process (after printing) when `cond` is false.
/// It is active in all build types: use it for invariants whose violation
/// means the in-memory state can no longer be trusted.
#define PKGSTREAM_CHECK(cond)                                   \
  if (!(cond))                                                  \
  PKGSTREAM_LOG(Fatal) << "Check failed: " #cond " "

#define PKGSTREAM_CHECK_OK(expr)                                       \
  do {                                                                 \
    ::pkgstream::Status _st = (expr);                                  \
    if (!_st.ok())                                                     \
      PKGSTREAM_LOG(Fatal) << "Check failed (status): " << _st;        \
  } while (0)

#ifdef NDEBUG
#define PKGSTREAM_DCHECK(cond) \
  while (false) ::pkgstream::internal::NullStream()
#else
#define PKGSTREAM_DCHECK(cond) PKGSTREAM_CHECK(cond)
#endif

}  // namespace pkgstream

#endif  // PKGSTREAM_COMMON_LOGGING_H_
