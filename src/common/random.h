// Copyright 2026 The pkgstream Authors.
// Deterministic, seedable random number generation.
//
// Everything in pkgstream that needs randomness goes through these
// generators so that every experiment, test and benchmark is reproducible
// from a single 64-bit seed. We deliberately avoid std::mt19937 /
// std::uniform_*_distribution because their outputs are not guaranteed to be
// identical across standard library implementations.

#ifndef PKGSTREAM_COMMON_RANDOM_H_
#define PKGSTREAM_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>

namespace pkgstream {

/// \brief SplitMix64: tiny, fast generator used for seeding and for
/// low-stakes mixing. Passes BigCrush when used as a stream.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  /// Next 64 uniformly distributed bits.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// \brief xoshiro256** — the library's general-purpose PRNG.
///
/// Fast (sub-ns per draw), 256-bit state, passes all known statistical
/// batteries. State is seeded from SplitMix64 as recommended by the authors.
class Rng {
 public:
  /// Constructs a generator whose entire stream is a function of `seed`.
  explicit Rng(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.Next();
  }

  /// Next 64 uniformly distributed bits.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  uint64_t UniformInt(uint64_t bound) {
    __uint128_t m = static_cast<__uint128_t>(Next()) * bound;
    uint64_t lo = static_cast<uint64_t>(m);
    if (lo < bound) {
      uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(Next()) * bound;
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw: true with probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Standard normal via Box-Muller (cached second value for speed).
  double Normal() {
    if (have_cached_) {
      have_cached_ = false;
      return cached_;
    }
    double u1 = UniformDouble();
    double u2 = UniformDouble();
    // Guard against log(0).
    while (u1 <= 1e-300) u1 = UniformDouble();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_ = r * std::sin(theta);
    have_cached_ = true;
    return r * std::cos(theta);
  }

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev) { return mean + stddev * Normal(); }

  /// Log-normal draw: exp(Normal(mu, sigma)).
  double LogNormal(double mu, double sigma) {
    return std::exp(Normal(mu, sigma));
  }

  /// Exponential with rate lambda (mean 1/lambda).
  double Exponential(double lambda) {
    double u = UniformDouble();
    while (u <= 1e-300) u = UniformDouble();
    return -std::log(u) / lambda;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
  double cached_ = 0.0;
  bool have_cached_ = false;
};

}  // namespace pkgstream

#endif  // PKGSTREAM_COMMON_RANDOM_H_
