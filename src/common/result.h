// Copyright 2026 The pkgstream Authors.
// Result<T>: value-or-Status, the non-throwing analogue of arrow::Result.

#ifndef PKGSTREAM_COMMON_RESULT_H_
#define PKGSTREAM_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace pkgstream {

/// \brief Holds either a value of type T or an error Status.
///
/// A Result constructed from a value is OK; a Result constructed from a
/// non-OK Status is an error. Constructing from an OK Status is a programming
/// error (asserted in debug builds, coerced to Internal in release).
///
/// \code
///   Result<ZipfDistribution> r = ZipfDistribution::Make(options);
///   if (!r.ok()) return r.status();
///   ZipfDistribution dist = std::move(r).ValueOrDie();
/// \endcode
template <typename T>
class Result {
 public:
  /// Constructs an OK result holding a copy/move of `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs an error result. `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }

  /// The status: OK when a value is present.
  const Status& status() const { return status_; }

  /// Returns the value; must only be called when ok().
  const T& ValueOrDie() const& {
    assert(ok());
    return *value_;
  }
  T& ValueOrDie() & {
    assert(ok());
    return *value_;
  }
  T ValueOrDie() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Convenience accessors mirroring std::optional.
  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Returns the value when ok(), otherwise `fallback`.
  T ValueOr(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

/// Assigns the value of a Result expression to `lhs`, or propagates its error.
#define PKGSTREAM_INTERNAL_CONCAT2(a, b) a##b
#define PKGSTREAM_INTERNAL_CONCAT(a, b) PKGSTREAM_INTERNAL_CONCAT2(a, b)
#define PKGSTREAM_INTERNAL_ASSIGN_OR_RETURN(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                        \
  if (!tmp.ok()) {                                           \
    return tmp.status();                                     \
  }                                                          \
  lhs = std::move(tmp).ValueOrDie();
#define PKGSTREAM_ASSIGN_OR_RETURN(lhs, rexpr)                            \
  PKGSTREAM_INTERNAL_ASSIGN_OR_RETURN(                                    \
      PKGSTREAM_INTERNAL_CONCAT(_pkgstream_result_, __LINE__), lhs, rexpr)

}  // namespace pkgstream

#endif  // PKGSTREAM_COMMON_RESULT_H_
