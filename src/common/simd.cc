// Copyright 2026 The pkgstream Authors.

#include "common/simd.h"

#include <cstdlib>

#include "common/hash_simd.h"

namespace pkgstream {
namespace simd {

bool CpuSupportsAvx2() {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool CpuSupportsAvx512() {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx512f") != 0 &&
         __builtin_cpu_supports("avx512dq") != 0;
#else
  return false;
#endif
}

bool ForceScalarRequested() {
  const char* value = std::getenv("PKGSTREAM_FORCE_SCALAR");
  if (value == nullptr || value[0] == '\0') return false;
  return !(value[0] == '0' && value[1] == '\0');
}

SimdLevel DetectSimdLevel() {
  if (ForceScalarRequested()) return SimdLevel::kScalar;
  // kAvx512 also requires the AVX2 kernels: the AVX-512 BucketBatch
  // delegates general (non-power-of-two) divisors to the AVX2 reduction.
  if (HasAvx512Kernels() && HasAvx2Kernels() && CpuSupportsAvx512()) {
    return SimdLevel::kAvx512;
  }
  if (HasAvx2Kernels() && CpuSupportsAvx2()) return SimdLevel::kAvx2;
  return SimdLevel::kScalar;
}

SimdLevel ActiveSimdLevel() {
  static const SimdLevel level = DetectSimdLevel();
  return level;
}

BucketBatchKernel ActiveBucketBatchKernel() {
  static const BucketBatchKernel kernel = [] {
    switch (ActiveSimdLevel()) {
      case SimdLevel::kAvx512:
        return &BucketBatchAvx512;
      case SimdLevel::kAvx2:
        return &BucketBatchAvx2;
      case SimdLevel::kScalar:
        break;
    }
    return static_cast<BucketBatchKernel>(nullptr);
  }();
  return kernel;
}

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kAvx512:
      return "avx512";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kScalar:
      break;
  }
  return "scalar";
}

}  // namespace simd
}  // namespace pkgstream
