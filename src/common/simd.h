// Copyright 2026 The pkgstream Authors.
// Runtime CPU-feature dispatch for the SIMD routing hot path.
//
// The batched routing pipeline (HashFamily::BucketBatch, the fused PKG
// RouteBatch) carries an optional AVX2 lane (common/hash_avx2.cc). Whether
// that lane runs is decided *once per process* from three inputs:
//
//   1. build      — the AVX2 kernels exist only when the build compiled
//                   src/common/hash_avx2.cc with -mavx2 (CMake does this
//                   automatically on x86-64 unless -DPKGSTREAM_DISABLE_SIMD=ON);
//   2. hardware   — cpuid must report AVX2 (checked via
//                   __builtin_cpu_supports, i.e. one cpuid at startup);
//   3. operator   — the environment variable PKGSTREAM_FORCE_SCALAR, when
//                   set to anything but "0"/"", forces the scalar path at
//                   runtime (the CI fallback leg and A/B measurements use
//                   this).
//
// The scalar path is the mandatory fallback and the *reference semantics*:
// every SIMD kernel is bit-for-bit identical to it (see the contract note
// in common/hash.h and docs/ARCHITECTURE.md "The routing hot path"), so the
// selected level can never change a routing decision — only its cost.

#ifndef PKGSTREAM_COMMON_SIMD_H_
#define PKGSTREAM_COMMON_SIMD_H_

namespace pkgstream {
namespace simd {

/// \brief CPU feature level the batched hot path dispatches on. Ordered:
/// higher levels strictly extend lower ones (an AVX-512 host also passes
/// every AVX2 gate, so `level >= kAvx2` is the right test for AVX2-only
/// kernels such as the gather-based argmin).
enum class SimdLevel : int {
  kScalar = 0,  ///< portable scalar code (always available, reference bits)
  kAvx2 = 1,    ///< 4-wide 64-bit lanes, multiplies from 32x32 partials
  kAvx512 = 2,  ///< 8-wide 64-bit lanes, native 64-bit multiply (AVX-512DQ)
};

/// \brief True when this binary contains the AVX2 kernels (compiled with
/// -mavx2 and 128-bit integer support). Defined in hash_avx2.cc so the
/// answer always matches the translation unit that holds the kernels.
bool HasAvx2Kernels();

/// \brief True when this binary contains the AVX-512 kernels (compiled
/// with -mavx512f -mavx512dq). Defined in hash_avx512.cc.
bool HasAvx512Kernels();

/// \brief True when the host CPU reports AVX2 (one cpuid, unconditional —
/// ignores the kernel-availability and force-scalar gates).
bool CpuSupportsAvx2();

/// \brief True when the host CPU reports AVX-512F and AVX-512DQ.
bool CpuSupportsAvx512();

/// \brief True when PKGSTREAM_FORCE_SCALAR is set (to anything but "0" or
/// the empty string). Read from the environment on every call; tests use
/// this to exercise the override without a cached global.
bool ForceScalarRequested();

/// \brief Computes the dispatch level from the three gates above. Uncached:
/// re-reads the environment on every call (tests exercise the override this
/// way). Hot paths use ActiveSimdLevel().
SimdLevel DetectSimdLevel();

/// \brief The level the hot paths dispatch on: DetectSimdLevel() evaluated
/// once on first use and pinned for the process lifetime. Changing
/// PKGSTREAM_FORCE_SCALAR after the first routed batch has no effect.
SimdLevel ActiveSimdLevel();

/// \brief Human-readable level name ("scalar", "avx2", "avx512") for
/// reports/logs.
const char* SimdLevelName(SimdLevel level);

}  // namespace simd
}  // namespace pkgstream

#endif  // PKGSTREAM_COMMON_SIMD_H_
