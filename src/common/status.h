// Copyright 2026 The pkgstream Authors.
// Status-based error handling, RocksDB/Arrow style: library code never throws;
// fallible operations return a Status (or a Result<T>, see result.h).

#ifndef PKGSTREAM_COMMON_STATUS_H_
#define PKGSTREAM_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace pkgstream {

/// \brief Error categories used across the library.
///
/// The set mirrors the subset of RocksDB/absl codes that a partitioning and
/// simulation library actually needs. Keep this list short: a code should only
/// be added when callers are expected to branch on it.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kAlreadyExists = 5,
  kResourceExhausted = 6,
  kUnimplemented = 7,
  kIOError = 8,
  kInternal = 9,
};

/// \brief Returns a stable human-readable name for a status code
/// (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// \brief A cheap value type describing the outcome of an operation.
///
/// An OK status carries no allocation. Error statuses carry a code and a
/// message. Statuses are ordinary values: copy, move, compare, and stream
/// them freely.
///
/// Typical use:
/// \code
///   Status s = topology.Connect("counts", Grouping::kPartialKey);
///   if (!s.ok()) return s;
/// \endcode
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message. Prefer the named
  /// factories below.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  StatusCode code() const { return code_; }

  /// The error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }

  /// Formats as "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }
  friend bool operator!=(const Status& a, const Status& b) { return !(a == b); }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// Propagates an error Status from the evaluated expression, RocksDB style.
#define PKGSTREAM_RETURN_NOT_OK(expr)              \
  do {                                             \
    ::pkgstream::Status _st = (expr);              \
    if (!_st.ok()) return _st;                     \
  } while (0)

}  // namespace pkgstream

#endif  // PKGSTREAM_COMMON_STATUS_H_
