// Copyright 2026 The pkgstream Authors.

#include "common/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/logging.h"

namespace pkgstream {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> row) {
  PKGSTREAM_CHECK(row.size() == header_.size())
      << "row has " << row.size() << " cells, header has " << header_.size();
  rows_.push_back(std::move(row));
}

void Table::Print(std::ostream& os) const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c];
      os << std::string(width[c] - row[c].size(), ' ');
    }
    os << "\n";
  };
  emit_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < width.size(); ++c) total += width[c] + (c ? 2 : 0);
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
}

namespace {
std::string CsvEscape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += "\"";
  return out;
}
}  // namespace

void Table::PrintCsv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) os << ",";
      os << CsvEscape(row[c]);
    }
    os << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

Status Table::WriteCsv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return Status::IOError("cannot open for writing: " + path);
  PrintCsv(f);
  if (!f) return Status::IOError("write failed: " + path);
  return Status::OK();
}

std::string FormatCompact(double v) {
  if (!std::isfinite(v)) return v > 0 ? "inf" : (v < 0 ? "-inf" : "nan");
  double a = std::fabs(v);
  char buf[64];
  if (a != 0.0 && (a >= 1e5 || a < 1e-3)) {
    std::snprintf(buf, sizeof(buf), "%.1e", v);
    // Canonicalize exponent form "1.6e+06" -> "1.6e6".
    std::string s(buf);
    auto e = s.find('e');
    if (e == std::string::npos) return s;
    std::string mant = s.substr(0, e);
    std::string exp = s.substr(e + 1);
    bool neg = !exp.empty() && exp[0] == '-';
    size_t i = 0;
    while (i < exp.size() && (exp[i] == '+' || exp[i] == '-' || exp[i] == '0')) {
      ++i;
    }
    std::string out = mant;
    out += 'e';
    if (neg) out += '-';
    out += (i < exp.size()) ? exp.substr(i) : std::string("0");
    return out;
  }
  if (a >= 100 || a == std::floor(a)) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  // Keep ~2 significant digits for small magnitudes, then strip trailing
  // zeros ("0.800" -> "0.8", "0.042" stays).
  std::snprintf(buf, sizeof(buf), "%.*f", a < 1.0 ? 3 : 1, v);
  std::string s(buf);
  while (s.find('.') != std::string::npos && (s.back() == '0')) {
    s.pop_back();
  }
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s;
}

std::string FormatFixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string FormatWithCommas(uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out += ',';
    out += *it;
    ++count;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace pkgstream
