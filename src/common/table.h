// Copyright 2026 The pkgstream Authors.
// Text table rendering for experiment output: aligned ASCII tables for the
// console (the format the benches print paper rows in) and CSV export for
// plotting.

#ifndef PKGSTREAM_COMMON_TABLE_H_
#define PKGSTREAM_COMMON_TABLE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"

namespace pkgstream {

/// \brief A simple column-aligned table builder.
///
/// \code
///   Table t({"W", "PKG", "Hashing"});
///   t.AddRow({"5", "0.8", "1.4e6"});
///   t.Print(std::cout);
/// \endcode
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must have exactly as many cells as the header.
  void AddRow(std::vector<std::string> row);

  /// Number of data rows.
  size_t NumRows() const { return rows_.size(); }
  size_t NumCols() const { return header_.size(); }

  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::string>& row(size_t i) const { return rows_[i]; }

  /// Renders an aligned ASCII table with a header separator.
  void Print(std::ostream& os) const;

  /// Renders RFC-4180-ish CSV (fields containing comma/quote/newline are
  /// quoted, embedded quotes doubled).
  void PrintCsv(std::ostream& os) const;

  /// Writes the CSV form to `path`.
  Status WriteCsv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// \brief Formats a double in compact scientific-ish form, matching the
/// paper's table style: 0.8, 92.7, 1.6e6, 4.0e6...
std::string FormatCompact(double v);

/// \brief Formats a double with fixed precision.
std::string FormatFixed(double v, int digits);

/// \brief Formats an integer with thousands separators (1,234,567).
std::string FormatWithCommas(uint64_t v);

}  // namespace pkgstream

#endif  // PKGSTREAM_COMMON_TABLE_H_
