// Copyright 2026 The pkgstream Authors.
// Core vocabulary types shared by every module.

#ifndef PKGSTREAM_COMMON_TYPES_H_
#define PKGSTREAM_COMMON_TYPES_H_

#include <cstdint>

namespace pkgstream {

/// Message key. Applications with string keys hash or intern them to 64-bit
/// ids at the edge (see workload::WordSynthesizer for the reverse mapping).
using Key = uint64_t;

/// Index of a downstream processing element instance (the paper's "worker",
/// a bin in the balls-and-bins analysis). Dense in [0, W).
using WorkerId = uint32_t;

/// Index of an upstream processing element instance (the paper's "source").
/// Dense in [0, S).
using SourceId = uint32_t;

/// Logical timestamp: index of the message in the stream (the paper assumes
/// one message arrives per unit of time, Section IV).
using StreamTime = uint64_t;

/// Simulated wall-clock time in microseconds (used by the cluster
/// discrete-event simulator for the Q4 experiments).
using SimTimeUs = uint64_t;

/// Sentinel for "no worker".
inline constexpr WorkerId kInvalidWorker = static_cast<WorkerId>(-1);

}  // namespace pkgstream

#endif  // PKGSTREAM_COMMON_TYPES_H_
