// Copyright 2026 The pkgstream Authors.

#include "engine/cpu_affinity.h"

#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace pkgstream {
namespace engine {

unsigned CpuAffinity::AvailableCpus() {
#if defined(__linux__)
  cpu_set_t mask;
  CPU_ZERO(&mask);
  if (sched_getaffinity(0, sizeof(mask), &mask) == 0) {
    const int count = CPU_COUNT(&mask);
    if (count > 0) return static_cast<unsigned>(count);
  }
#endif
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

bool CpuAffinity::PinCurrentThread(unsigned slot) {
#if defined(__linux__)
  cpu_set_t allowed;
  CPU_ZERO(&allowed);
  if (sched_getaffinity(0, sizeof(allowed), &allowed) != 0) return false;
  const int count = CPU_COUNT(&allowed);
  if (count <= 0) return false;
  // Pick the (slot % count)-th *allowed* CPU: under a restricted cpuset
  // the usable CPU ids need not be contiguous or start at 0.
  int want = static_cast<int>(slot % static_cast<unsigned>(count));
  int cpu = -1;
  for (int c = 0; c < CPU_SETSIZE; ++c) {
    if (!CPU_ISSET(c, &allowed)) continue;
    if (want-- == 0) {
      cpu = c;
      break;
    }
  }
  if (cpu < 0) return false;
  cpu_set_t target;
  CPU_ZERO(&target);
  CPU_SET(cpu, &target);
  return pthread_setaffinity_np(pthread_self(), sizeof(target), &target) == 0;
#else
  (void)slot;
  return false;
#endif
}

}  // namespace engine
}  // namespace pkgstream
