// Copyright 2026 The pkgstream Authors.
// Best-effort CPU pinning for shard threads. A shard's rings, out-buffers
// and operator state are all touched from one thread; pinning that thread
// keeps the working set on one core (and, transitively, one NUMA node) so
// a 1000-instance topology on 8 shards does not migrate its cache
// footprint on every scheduler decision. Pinning is strictly an
// optimization: every entry point degrades to a no-op (returning false)
// on platforms without sched_setaffinity or when the syscall is denied
// (containers with restricted cpusets), and callers must never depend on
// it for correctness.

#ifndef PKGSTREAM_ENGINE_CPU_AFFINITY_H_
#define PKGSTREAM_ENGINE_CPU_AFFINITY_H_

namespace pkgstream {
namespace engine {

/// \brief Static helpers around the platform thread-affinity interface.
class CpuAffinity {
 public:
  /// Number of CPUs the calling thread is allowed to run on (the affinity
  /// mask where available, hardware_concurrency otherwise). Never 0.
  static unsigned AvailableCpus();

  /// Pins the calling thread to the (slot % AvailableCpus())-th allowed
  /// CPU. Slots beyond the CPU count wrap, so oversubscribed shard counts
  /// still spread round-robin. Returns true when the affinity call
  /// succeeded, false when unsupported or denied (the thread keeps its
  /// inherited mask — graceful degradation, not an error).
  static bool PinCurrentThread(unsigned slot);
};

}  // namespace engine
}  // namespace pkgstream

#endif  // PKGSTREAM_ENGINE_CPU_AFFINITY_H_
