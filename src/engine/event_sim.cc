// Copyright 2026 The pkgstream Authors.

#include "engine/event_sim.h"

#include <algorithm>

#include "common/logging.h"

namespace pkgstream {
namespace engine {

/// Collects messages emitted during Process/Tick so the simulator can route
/// them after the operator call returns (keeps reentrancy out of operators).
class EventSimulator::SimEmitter final : public Emitter {
 public:
  void Emit(const Message& msg) override { emitted.push_back(msg); }
  std::vector<Message> emitted;
};

Result<std::unique_ptr<EventSimulator>> EventSimulator::Create(
    const Topology* topology, workload::KeyStream* feed,
    EventSimOptions options) {
  PKGSTREAM_CHECK(topology != nullptr && feed != nullptr);
  PKGSTREAM_RETURN_NOT_OK(topology->Validate());
  int spouts = 0;
  for (const auto& n : topology->nodes()) spouts += n.is_spout ? 1 : 0;
  if (spouts != 1) {
    return Status::InvalidArgument(
        "EventSimulator supports exactly one spout, got " +
        std::to_string(spouts));
  }
  auto sim = std::unique_ptr<EventSimulator>(
      new EventSimulator(topology, feed, std::move(options)));
  PKGSTREAM_RETURN_NOT_OK(sim->Init());
  return sim;
}

EventSimulator::EventSimulator(const Topology* topology,
                               workload::KeyStream* feed,
                               EventSimOptions options)
    : topology_(topology), feed_(feed), options_(std::move(options)) {}

Status EventSimulator::Init() {
  const auto& nodes = topology_->nodes();
  options_.node_extra_service_us.resize(nodes.size(), 0);
  for (const auto& edge : topology_->edges()) {
    PKGSTREAM_ASSIGN_OR_RETURN(auto p,
                               partition::MakePartitioner(edge.partitioner));
    edge_partitioners_.push_back(std::move(p));
  }
  ops_.resize(nodes.size());
  instances_.resize(nodes.size());
  for (uint32_t n = 0; n < nodes.size(); ++n) {
    instances_[n].resize(nodes[n].parallelism);
    if (nodes[n].is_spout) {
      spout_node_ = n;
      spout_parallelism_ = nodes[n].parallelism;
      continue;
    }
    for (uint32_t i = 0; i < nodes[n].parallelism; ++i) {
      auto op = nodes[n].factory(i);
      PKGSTREAM_CHECK(op != nullptr);
      OperatorContext ctx;
      ctx.pe_name = nodes[n].name;
      ctx.instance = i;
      ctx.parallelism = nodes[n].parallelism;
      op->Open(ctx);
      ops_[n].push_back(std::move(op));
    }
  }
  in_flight_.assign(spout_parallelism_, 0);
  source_waiting_.assign(spout_parallelism_, false);
  source_free_at_.assign(spout_parallelism_, 0);
  return Status::OK();
}

void EventSimulator::Push(Event e) {
  e.seq = seq_++;
  events_.push(std::move(e));
}

uint64_t EventSimulator::ServiceCost(uint32_t node) const {
  return options_.worker_overhead_us + options_.node_extra_service_us[node];
}

EventSimReport EventSimulator::Run() {
  // Prime the spout instances and the periodic machinery.
  for (uint32_t s = 0; s < spout_parallelism_; ++s) {
    Event e;
    e.time = 0;
    e.type = EventType::kSourceReady;
    e.instance = s;
    Push(std::move(e));
  }
  const auto& nodes = topology_->nodes();
  for (uint32_t n = 0; n < nodes.size(); ++n) {
    if (nodes[n].is_spout || nodes[n].tick_period == 0) continue;
    for (uint32_t i = 0; i < nodes[n].parallelism; ++i) {
      Event e;
      e.time = nodes[n].tick_period;
      e.type = EventType::kTick;
      e.node = n;
      e.instance = i;
      Push(std::move(e));
    }
  }
  if (options_.memory_sample_period_us > 0) {
    Event e;
    e.time = options_.memory_sample_period_us;
    e.type = EventType::kMemorySample;
    Push(std::move(e));
  }

  while (!events_.empty()) {
    Event e = events_.top();
    events_.pop();
    now_ = e.time;
    if (now_ > options_.max_sim_time_us) {
      timed_out_ = true;
      break;
    }
    if (roots_acked_ >= options_.messages) break;
    switch (e.type) {
      case EventType::kSourceReady:
        OnSourceReady(e.instance);
        break;
      case EventType::kDeliver:
        OnDeliver(e);
        break;
      case EventType::kServiceComplete:
        OnServiceComplete(e);
        break;
      case EventType::kTick:
        OnTick(e);
        break;
      case EventType::kMemorySample:
        OnMemorySample();
        break;
    }
  }

  EventSimReport report;
  report.roots_emitted = roots_emitted_;
  report.roots_acked = roots_acked_;
  uint64_t effective_end = last_ack_time_ > 0 ? last_ack_time_ : now_;
  report.sim_seconds = static_cast<double>(effective_end) / 1e6;
  report.throughput_per_s =
      report.sim_seconds > 0
          ? static_cast<double>(roots_acked_) / report.sim_seconds
          : 0.0;
  report.mean_latency_us = latency_.mean();
  report.p50_latency_us = latency_.P50();
  report.p95_latency_us = latency_.P95();
  report.p99_latency_us = latency_.P99();
  report.avg_memory_counters = memory_samples_.count()
                                   ? memory_samples_.mean()
                                   : static_cast<double>(TotalMemoryCounters());
  report.peak_memory_counters =
      std::max<uint64_t>(peak_memory_, TotalMemoryCounters());
  report.timed_out = timed_out_;
  report.processed.resize(instances_.size());
  report.max_utilization.resize(instances_.size(), 0.0);
  for (uint32_t n = 0; n < instances_.size(); ++n) {
    for (const auto& inst : instances_[n]) {
      report.processed[n].push_back(inst.processed);
      double util = effective_end > 0 ? static_cast<double>(inst.busy_us) /
                                            static_cast<double>(effective_end)
                                      : 0.0;
      report.max_utilization[n] = std::max(report.max_utilization[n], util);
    }
  }
  return report;
}

void EventSimulator::OnSourceReady(uint32_t source_instance) {
  TryEmitRoot(source_instance);
}

void EventSimulator::TryEmitRoot(uint32_t source_instance) {
  if (roots_emitted_ >= options_.messages) return;
  if (in_flight_[source_instance] >= options_.max_pending) {
    source_waiting_[source_instance] = true;
    return;
  }
  source_waiting_[source_instance] = false;

  Message msg;
  msg.key = feed_->Next();
  msg.ts = now_;
  int64_t root_id = next_root_id_++;

  uint64_t children = 0;
  RouteFrom(spout_node_, source_instance, msg, root_id, &children);
  if (children == 0) {
    // Spout with no outbound edges: ack immediately (degenerate topology).
    ++roots_emitted_;
    ++roots_acked_;
    last_ack_time_ = now_;
    latency_.Record(0);
  } else {
    roots_[root_id] = RootState{now_, static_cast<uint32_t>(children),
                                source_instance};
    ++roots_emitted_;
    ++in_flight_[source_instance];
  }
  ++instances_[spout_node_][source_instance].processed;
  instances_[spout_node_][source_instance].busy_us +=
      options_.source_service_us;

  // Next emission after the spout's per-message cost.
  source_free_at_[source_instance] = now_ + options_.source_service_us;
  if (roots_emitted_ < options_.messages) {
    Event e;
    e.time = source_free_at_[source_instance];
    e.type = EventType::kSourceReady;
    e.instance = source_instance;
    Push(std::move(e));
  }
}

void EventSimulator::RouteFrom(uint32_t node, uint32_t instance,
                               const Message& msg, int64_t root_id,
                               uint64_t* emitted_count) {
  const auto& edges = topology_->edges();
  for (uint32_t e = 0; e < edges.size(); ++e) {
    if (edges[e].from.index != node) continue;
    WorkerId w = edge_partitioners_[e]->Route(instance, msg.key);
    Event ev;
    ev.time = now_ + options_.network_delay_us;
    ev.type = EventType::kDeliver;
    ev.node = edges[e].to.index;
    ev.instance = w;
    ev.job.msg = msg;
    ev.job.root_id = root_id;
    ev.job.service_us = ServiceCost(edges[e].to.index);
    Push(std::move(ev));
    if (emitted_count != nullptr) ++(*emitted_count);
  }
}

void EventSimulator::OnDeliver(const Event& e) {
  InstanceState& inst = instances_[e.node][e.instance];
  inst.queue.push(e.job);
  if (!inst.busy) StartJob(e.node, e.instance);
}

void EventSimulator::StartJob(uint32_t node, uint32_t instance) {
  InstanceState& inst = instances_[node][instance];
  PKGSTREAM_DCHECK(!inst.busy);
  if (inst.queue.empty()) return;
  inst.busy = true;
  inst.current = inst.queue.front();
  inst.queue.pop();
  Event e;
  e.time = now_ + inst.current.service_us;
  e.type = EventType::kServiceComplete;
  e.node = node;
  e.instance = instance;
  Push(std::move(e));
}

void EventSimulator::OnServiceComplete(const Event& e) {
  InstanceState& inst = instances_[e.node][e.instance];
  PKGSTREAM_DCHECK(inst.busy);
  Job job = std::move(inst.current);
  inst.busy = false;
  inst.busy_us += job.service_us;
  ++inst.processed;

  if (!job.is_flush_work) {
    SimEmitter emitter;
    ops_[e.node][e.instance]->Process(job.msg, &emitter);
    for (const auto& out : emitter.emitted) {
      Message stamped = out;
      stamped.ts = now_;
      RouteFrom(e.node, e.instance, stamped, /*root_id=*/-1, nullptr);
    }
    if (job.root_id >= 0) AckRoot(job.root_id);
  }
  StartJob(e.node, e.instance);
}

void EventSimulator::AckRoot(int64_t root_id) {
  auto it = roots_.find(root_id);
  PKGSTREAM_DCHECK(it != roots_.end());
  if (--it->second.refcount > 0) return;
  latency_.Record(now_ - it->second.emit_time);
  ++roots_acked_;
  last_ack_time_ = now_;
  uint32_t source = it->second.source;
  roots_.erase(it);
  PKGSTREAM_DCHECK(in_flight_[source] > 0);
  --in_flight_[source];
  if (source_waiting_[source]) {
    Event e;
    e.time = std::max(now_, source_free_at_[source]);
    e.type = EventType::kSourceReady;
    e.instance = source;
    Push(std::move(e));
    source_waiting_[source] = false;
  }
}

void EventSimulator::OnTick(const Event& e) {
  const auto& node = topology_->nodes()[e.node];
  SimEmitter emitter;
  ops_[e.node][e.instance]->Tick(now_, &emitter);
  for (const auto& out : emitter.emitted) {
    Message stamped = out;
    stamped.ts = now_;
    RouteFrom(e.node, e.instance, stamped, /*root_id=*/-1, nullptr);
  }
  // The flush itself occupies the sender: queue synthetic work.
  if (!emitter.emitted.empty() && options_.flush_cost_us > 0) {
    Job work;
    work.is_flush_work = true;
    work.service_us = options_.flush_cost_us * emitter.emitted.size();
    InstanceState& inst = instances_[e.node][e.instance];
    inst.queue.push(std::move(work));
    if (!inst.busy) StartJob(e.node, e.instance);
  }
  // Re-arm the timer.
  Event next;
  next.time = now_ + node.tick_period;
  next.type = EventType::kTick;
  next.node = e.node;
  next.instance = e.instance;
  Push(std::move(next));
}

uint64_t EventSimulator::TotalMemoryCounters() const {
  uint64_t total = 0;
  for (const auto& node_ops : ops_) {
    for (const auto& op : node_ops) total += op->MemoryCounters();
  }
  return total;
}

void EventSimulator::OnMemorySample() {
  uint64_t mem = TotalMemoryCounters();
  memory_samples_.Add(static_cast<double>(mem));
  peak_memory_ = std::max(peak_memory_, mem);
  Event e;
  e.time = now_ + options_.memory_sample_period_us;
  e.type = EventType::kMemorySample;
  Push(std::move(e));
}

Operator* EventSimulator::GetOperator(NodeId node, uint32_t instance) {
  PKGSTREAM_CHECK(node.index < ops_.size());
  PKGSTREAM_CHECK(instance < ops_[node.index].size());
  return ops_[node.index][instance].get();
}

}  // namespace engine
}  // namespace pkgstream
