// Copyright 2026 The pkgstream Authors.
// EventSimulator: a discrete-event model of a DSPE cluster, standing in for
// the paper's 10-VM Storm deployment (Section V, Q4 / Figure 5).
//
// Model, mirroring how the paper's experiment was set up:
//  * each operator instance is a single-threaded executor with a FIFO queue;
//  * servicing a message costs a framework overhead plus a configurable
//    per-PE "CPU delay" — the knob the paper sweeps in Figure 5(a);
//  * spouts emit in a closed loop: at most `max_pending` unacked messages
//    per spout instance (Storm's max.spout.pending); a message is acked when
//    every direct-child delivery finished servicing (the tuple tree of the
//    word-count topology);
//  * every hop pays a network delay;
//  * periodic operator ticks model the aggregation timer: emitted flush
//    messages cost service time at the receiver, and the flush itself
//    occupies the sender for flush_cost_us per emitted message — this is
//    what makes frequent aggregation with many partial counters (shuffle
//    grouping) expensive, reproducing Figure 5(b);
//  * memory (live counters) is sampled periodically across all instances.
//
// Absolute keys/s differ from the paper's VMs; the comparative shape is the
// reproduction target (see docs/EXPERIMENTS.md).

#ifndef PKGSTREAM_ENGINE_EVENT_SIM_H_
#define PKGSTREAM_ENGINE_EVENT_SIM_H_

#include <cstdint>
#include <memory>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "engine/topology.h"
#include "stats/latency_histogram.h"
#include "stats/running_stats.h"
#include "workload/key_stream.h"

namespace pkgstream {
namespace engine {

/// \brief Cluster model parameters (all times in simulated microseconds).
struct EventSimOptions {
  /// Root messages to emit in total (split round-robin across spout
  /// instances).
  uint64_t messages = 100000;

  /// Spout cost per emitted message (parse/serialize).
  uint64_t source_service_us = 100;

  /// Framework overhead per serviced message at any operator.
  uint64_t worker_overhead_us = 50;

  /// Extra per-message service cost per PE ("CPU delay"), indexed by node.
  /// Missing entries mean 0.
  std::vector<uint64_t> node_extra_service_us;

  /// One-way network latency per hop.
  uint64_t network_delay_us = 1000;

  /// Storm's max.spout.pending: per-spout-instance unacked window.
  uint32_t max_pending = 64;

  /// Sender-side cost per message emitted from Tick (counter flushing).
  uint64_t flush_cost_us = 10;

  /// Period of the live-counter memory samples.
  uint64_t memory_sample_period_us = 250000;

  /// Safety stop; the run reports saturated=true when it hits this.
  uint64_t max_sim_time_us = 600ULL * 1000 * 1000;
};

/// \brief Results of one simulated run.
struct EventSimReport {
  uint64_t roots_emitted = 0;
  uint64_t roots_acked = 0;
  double sim_seconds = 0.0;
  /// Acked roots per simulated second — Figure 5's "Throughput (keys/s)".
  double throughput_per_s = 0.0;
  /// End-to-end emit->ack latency.
  double mean_latency_us = 0.0;
  uint64_t p50_latency_us = 0;
  uint64_t p95_latency_us = 0;
  uint64_t p99_latency_us = 0;
  /// Average live counters across memory samples (Figure 5(b) x-axis).
  double avg_memory_counters = 0.0;
  /// Peak live counters observed at a sample.
  uint64_t peak_memory_counters = 0;
  /// Per-node per-instance messages serviced.
  std::vector<std::vector<uint64_t>> processed;
  /// Per-node max instance utilization (busy time / sim time).
  std::vector<double> max_utilization;
  /// True when the run was cut off by max_sim_time_us.
  bool timed_out = false;
};

/// \brief Discrete-event executor for a Topology.
///
/// Deterministic: identical options + topology + feed produce identical
/// reports. Tick periods on the topology are interpreted in simulated
/// microseconds.
class EventSimulator {
 public:
  /// `topology` must validate and contain exactly one spout. The feed
  /// provides root message keys.
  static Result<std::unique_ptr<EventSimulator>> Create(
      const Topology* topology, workload::KeyStream* feed,
      EventSimOptions options);

  /// Runs to completion (all roots acked, or timeout) and reports.
  EventSimReport Run();

  /// Access to operator instances after Run (result extraction).
  Operator* GetOperator(NodeId node, uint32_t instance);

 private:
  EventSimulator(const Topology* topology, workload::KeyStream* feed,
                 EventSimOptions options);

  Status Init();

  enum class EventType : uint8_t {
    kSourceReady,
    kDeliver,
    kServiceComplete,
    kTick,
    kMemorySample,
  };

  /// A unit of work queued at an instance.
  struct Job {
    Message msg;
    uint64_t service_us = 0;
    int64_t root_id = -1;   // >= 0: this job is part of a root's tuple tree
    bool is_flush_work = false;  // synthetic sender-side flush cost
  };

  struct Event {
    uint64_t time = 0;
    uint64_t seq = 0;  // tie-breaker for determinism; stamped by Push()
    EventType type;
    uint32_t node = 0;
    uint32_t instance = 0;
    Job job;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  struct InstanceState {
    std::queue<Job> queue;
    bool busy = false;
    Job current;
    uint64_t busy_us = 0;
    uint64_t processed = 0;
  };

  struct RootState {
    uint64_t emit_time = 0;
    uint32_t refcount = 0;
    uint32_t source = 0;
  };

  class SimEmitter;

  void Push(Event e);
  void OnSourceReady(uint32_t source_instance);
  void TryEmitRoot(uint32_t source_instance);
  void OnDeliver(const Event& e);
  void OnServiceComplete(const Event& e);
  void OnTick(const Event& e);
  void OnMemorySample();
  void StartJob(uint32_t node, uint32_t instance);
  void RouteFrom(uint32_t node, uint32_t instance, const Message& msg,
                 int64_t root_id, uint64_t* emitted_count);
  uint64_t ServiceCost(uint32_t node) const;
  void AckRoot(int64_t root_id);
  uint64_t TotalMemoryCounters() const;

  const Topology* topology_;
  workload::KeyStream* feed_;
  EventSimOptions options_;

  std::vector<std::vector<std::unique_ptr<Operator>>> ops_;
  std::vector<partition::PartitionerPtr> edge_partitioners_;
  std::vector<std::vector<InstanceState>> instances_;
  std::priority_queue<Event, std::vector<Event>, EventLater> events_;
  uint64_t seq_ = 0;
  uint64_t now_ = 0;

  uint32_t spout_node_ = 0;
  uint32_t spout_parallelism_ = 1;
  std::vector<uint32_t> in_flight_;     // per spout instance
  std::vector<bool> source_waiting_;    // blocked on window
  std::vector<uint64_t> source_free_at_;
  uint64_t roots_emitted_ = 0;
  uint64_t roots_acked_ = 0;
  uint64_t last_ack_time_ = 0;
  int64_t next_root_id_ = 0;
  std::unordered_map<int64_t, RootState> roots_;

  stats::LatencyHistogram latency_;
  stats::RunningStats memory_samples_;
  uint64_t peak_memory_ = 0;
  bool timed_out_ = false;
};

}  // namespace engine
}  // namespace pkgstream

#endif  // PKGSTREAM_ENGINE_EVENT_SIM_H_
