// Copyright 2026 The pkgstream Authors.

#include "engine/fault_injection.h"

#include <algorithm>

#include "common/logging.h"
#include "common/random.h"

namespace pkgstream {
namespace engine {

Result<FaultPlan> FaultPlan::Create(uint32_t workers,
                                    std::vector<FaultEvent> events) {
  if (workers < 1) {
    return Status::InvalidArgument("fault plan needs >= 1 worker");
  }
  std::vector<bool> alive(workers, true);
  uint32_t alive_count = workers;
  // Per-worker end of the last accepted stall/slowdown window (overlap
  // check); windows arrive sorted by at_us, so one cursor per worker
  // suffices.
  std::vector<uint64_t> window_end(workers, 0);
  uint64_t last_at = 0;
  FaultPlan plan;
  plan.workers_ = workers;
  for (size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& e = events[i];
    if (e.at_us < last_at) {
      return Status::InvalidArgument(
          "fault events out of order: event " + std::to_string(i) + " at t=" +
          std::to_string(e.at_us) + "us precedes t=" + std::to_string(last_at) +
          "us");
    }
    last_at = e.at_us;
    if (e.worker >= workers) {
      return Status::InvalidArgument(
          "unknown worker id " + std::to_string(e.worker) + " (cluster has " +
          std::to_string(workers) + " workers)");
    }
    switch (e.kind) {
      case FaultKind::kCrash:
        if (!alive[e.worker]) {
          return Status::InvalidArgument(
              "crash of already-crashed worker " + std::to_string(e.worker) +
              " at t=" + std::to_string(e.at_us) + "us");
        }
        if (alive_count == 1) {
          return Status::InvalidArgument(
              "crash at t=" + std::to_string(e.at_us) +
              "us would leave zero alive workers");
        }
        alive[e.worker] = false;
        --alive_count;
        plan.routing_events_.push_back(e);
        plan.alive_after_.push_back(alive);
        break;
      case FaultKind::kRejoin:
        if (alive[e.worker]) {
          return Status::InvalidArgument(
              "rejoin of live worker " + std::to_string(e.worker) + " at t=" +
              std::to_string(e.at_us) + "us");
        }
        alive[e.worker] = true;
        ++alive_count;
        plan.routing_events_.push_back(e);
        plan.alive_after_.push_back(alive);
        break;
      case FaultKind::kStall:
      case FaultKind::kSlowdown:
        if (e.duration_us == 0) {
          return Status::InvalidArgument(
              "stall/slowdown at t=" + std::to_string(e.at_us) +
              "us has zero duration");
        }
        if (e.kind == FaultKind::kSlowdown && e.factor <= 0.0) {
          return Status::InvalidArgument(
              "slowdown at t=" + std::to_string(e.at_us) +
              "us has non-positive factor");
        }
        if (e.at_us < window_end[e.worker]) {
          return Status::InvalidArgument(
              "overlapping stall/slowdown windows on worker " +
              std::to_string(e.worker) + " at t=" + std::to_string(e.at_us) +
              "us");
        }
        window_end[e.worker] = e.at_us + e.duration_us;
        break;
    }
  }
  plan.events_ = std::move(events);
  return plan;
}

const std::vector<bool>& FaultPlan::AliveAfterEvent(size_t i) const {
  PKGSTREAM_CHECK(i < alive_after_.size());
  return alive_after_[i];
}

std::vector<bool> FaultPlan::AliveAt(uint64_t t_us) const {
  std::vector<bool> alive(workers_, true);
  for (size_t i = 0; i < routing_events_.size(); ++i) {
    if (routing_events_[i].at_us > t_us) break;
    alive = alive_after_[i];
  }
  return alive;
}

std::vector<FaultPlan::ServiceWindow> FaultPlan::ServiceTimeline(
    uint32_t worker) const {
  PKGSTREAM_CHECK(worker < workers_);
  std::vector<ServiceWindow> windows;
  for (const FaultEvent& e : events_) {
    if (e.worker != worker) continue;
    if (e.kind != FaultKind::kStall && e.kind != FaultKind::kSlowdown) {
      continue;
    }
    ServiceWindow w;
    w.begin_us = e.at_us;
    w.end_us = e.at_us + e.duration_us;
    w.stall = e.kind == FaultKind::kStall;
    w.factor = e.factor;
    windows.push_back(w);
  }
  return windows;
}

std::string FaultPlan::Name() const {
  return "faults(events=" + std::to_string(events_.size()) +
         ",workers=" + std::to_string(workers_) + ")";
}

Result<FaultPlan> MakeRandomFaultPlan(uint32_t workers, uint32_t rounds,
                                      uint32_t max_kill, uint64_t horizon_us,
                                      uint64_t seed) {
  if (workers < 2) {
    return Status::InvalidArgument("random fault plan needs >= 2 workers");
  }
  if (rounds < 1 || horizon_us < 4) {
    return Status::InvalidArgument(
        "random fault plan needs >= 1 round and a usable horizon");
  }
  max_kill = std::max(1u, std::min(max_kill, workers - 1));
  Rng rng(seed);
  std::vector<FaultEvent> events;
  // Each round owns an equal slice of the horizon: kills at the first
  // quarter of the slice, rejoins at the third quarter, so rounds never
  // interleave and validation cannot fail.
  const uint64_t slice = horizon_us / rounds;
  for (uint32_t r = 0; r < rounds; ++r) {
    const uint64_t kill_at = r * slice + slice / 4;
    const uint64_t rejoin_at = r * slice + (3 * slice) / 4;
    const uint32_t kills = 1 + static_cast<uint32_t>(rng.UniformInt(max_kill));
    std::vector<uint32_t> victims;
    while (victims.size() < kills) {
      const uint32_t w = static_cast<uint32_t>(rng.UniformInt(workers));
      if (std::find(victims.begin(), victims.end(), w) == victims.end()) {
        victims.push_back(w);
      }
    }
    for (uint32_t w : victims) {
      FaultEvent e;
      e.kind = FaultKind::kCrash;
      e.worker = w;
      e.at_us = kill_at;
      events.push_back(e);
    }
    for (uint32_t w : victims) {
      FaultEvent e;
      e.kind = FaultKind::kRejoin;
      e.worker = w;
      e.at_us = rejoin_at;
      events.push_back(e);
    }
  }
  return FaultPlan::Create(workers, std::move(events));
}

}  // namespace engine
}  // namespace pkgstream
