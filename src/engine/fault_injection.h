// Copyright 2026 The pkgstream Authors.
// Deterministic fault injection for the threaded engine (ROADMAP "Elastic
// scaling and live key migration"): a FaultPlan is a replayable, validated
// schedule of worker-level fault events — crash (the instance leaves the
// routable worker set), rejoin (it returns), stall (the worker's virtual
// server stops draining for a window) and slowdown (its service time is
// multiplied for a window) — expressed in the same virtual-microsecond
// timebase as workload::ArrivalSchedule.
//
// Determinism contract: a FaultPlan carries *times*, never wall-clock
// triggers. Consumers apply it at deterministic stream positions:
//  * the OpenLoopDriver splits injection batches exactly at crash/rejoin
//    boundaries (comparing *scheduled* arrival times, so pacing and host
//    speed are irrelevant) and broadcasts the new worker set through
//    ThreadedRuntime::ReconfigureWorkers between batches;
//  * LatencySink instances fold their own stall/slowdown windows into the
//    virtual-service Lindley recursion (server vacations), so recorded
//    latencies are a pure function of (schedule, keys, plan, seed).
// Given one spout instance, a run with a FaultPlan is therefore
// byte-deterministic — bench_reconfig pins its quantiles as exact
// baseline-gated metrics, SIMD on or off, sanitizers on or off.
//
// Like every schedule in workload/, construction validates hostile input
// up front (events out of order, unknown worker ids, crashing a dead
// worker, rejoining a live one, emptying the cluster) and returns Status —
// the runtime never sees an inconsistent plan.

#ifndef PKGSTREAM_ENGINE_FAULT_INJECTION_H_
#define PKGSTREAM_ENGINE_FAULT_INJECTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace pkgstream {
namespace engine {

/// \brief The fault taxonomy (see docs/ARCHITECTURE.md "Fault model").
enum class FaultKind {
  kCrash,     ///< worker leaves the routable set (fail-stop, drains in-flight)
  kRejoin,    ///< a crashed worker returns to the routable set
  kStall,     ///< worker stops draining for duration_us (server vacation)
  kSlowdown,  ///< worker's service time is multiplied by factor for a window
};

/// \brief One timed fault event.
struct FaultEvent {
  FaultKind kind = FaultKind::kCrash;
  uint32_t worker = 0;  ///< target worker instance, < workers
  uint64_t at_us = 0;   ///< virtual time the event takes effect
  /// kStall / kSlowdown: window length (must be >= 1). Ignored for
  /// crash/rejoin (routing events end at the matching rejoin/crash).
  uint64_t duration_us = 0;
  /// kSlowdown: service-time multiplier (> 0; 2.0 = half speed). Ignored
  /// otherwise.
  double factor = 1.0;
};

/// \brief A validated, replayable schedule of fault events.
class FaultPlan {
 public:
  /// One stall/slowdown window of a single worker's service timeline.
  struct ServiceWindow {
    uint64_t begin_us = 0;
    uint64_t end_us = 0;
    double factor = 1.0;  ///< service multiplier (slowdown only)
    bool stall = false;   ///< true: vacation (no draining) for the window
  };

  /// Validates and freezes `events` for a cluster of `workers` workers.
  /// Rejected with InvalidArgument (the runtime must never see these):
  ///  * events not sorted by at_us (ties allowed),
  ///  * worker >= workers ("unknown worker id"),
  ///  * crash of an already-crashed worker / rejoin of a live one,
  ///  * a crash that would leave zero alive workers,
  ///  * stall/slowdown with duration_us == 0 or factor <= 0,
  ///  * overlapping stall/slowdown windows on the same worker (the sink's
  ///    vacation cursor requires at most one active window at a time).
  static Result<FaultPlan> Create(uint32_t workers,
                                  std::vector<FaultEvent> events);

  uint32_t workers() const { return workers_; }
  const std::vector<FaultEvent>& events() const { return events_; }

  /// The crash/rejoin subsequence, in time order: the points where the
  /// routable worker set changes (what the driver splits batches at).
  const std::vector<FaultEvent>& routing_events() const {
    return routing_events_;
  }

  /// Alive mask immediately *after* routing event `i` (i indexes
  /// routing_events()). Precomputed at Create; always >= 1 worker alive.
  const std::vector<bool>& AliveAfterEvent(size_t i) const;

  /// Alive mask at time `t_us` (after every routing event with
  /// at_us <= t_us). All-alive before the first event.
  std::vector<bool> AliveAt(uint64_t t_us) const;

  /// Worker `w`'s stall/slowdown windows, in time order (non-overlapping
  /// by validation). Empty for workers with no service faults.
  std::vector<ServiceWindow> ServiceTimeline(uint32_t worker) const;

  /// Short description, e.g. "faults(events=4,workers=50)".
  std::string Name() const;

 private:
  FaultPlan() = default;

  uint32_t workers_ = 0;
  std::vector<FaultEvent> events_;
  std::vector<FaultEvent> routing_events_;
  /// alive_after_[i]: alive mask after routing_events_[i].
  std::vector<std::vector<bool>> alive_after_;
};

/// \brief Seeded random plan generator for stress tests: `rounds`
/// crash-then-rejoin rounds (each killing 1..max_kill workers at a random
/// time and rejoining them later), all inside [0, horizon_us]. Always
/// valid by construction; deterministic given the seed.
Result<FaultPlan> MakeRandomFaultPlan(uint32_t workers, uint32_t rounds,
                                      uint32_t max_kill, uint64_t horizon_us,
                                      uint64_t seed);

}  // namespace engine
}  // namespace pkgstream

#endif  // PKGSTREAM_ENGINE_FAULT_INJECTION_H_
