// Copyright 2026 The pkgstream Authors.

#include "engine/logical_runtime.h"

#include "common/logging.h"

namespace pkgstream {
namespace engine {

class LogicalRuntime::EdgeEmitter final : public Emitter {
 public:
  EdgeEmitter(LogicalRuntime* rt, uint32_t node, uint32_t instance)
      : rt_(rt), node_(node), instance_(instance) {}

  void Emit(const Message& msg) override {
    Message stamped = msg;  // the one mandatory copy: stamping ts
    stamped.ts = rt_->injected_;
    rt_->RouteDownstream(node_, instance_, std::move(stamped));
  }

 private:
  LogicalRuntime* rt_;
  uint32_t node_;
  uint32_t instance_;
};

Result<std::unique_ptr<LogicalRuntime>> LogicalRuntime::Create(
    const Topology* topology) {
  PKGSTREAM_CHECK(topology != nullptr);
  PKGSTREAM_RETURN_NOT_OK(topology->Validate());
  auto rt = std::unique_ptr<LogicalRuntime>(new LogicalRuntime(topology));
  // Build edge partitioners and the per-node outbound-edge index.
  rt->out_edges_.resize(topology->nodes().size());
  const auto& edges = topology->edges();
  for (uint32_t e = 0; e < edges.size(); ++e) {
    PKGSTREAM_ASSIGN_OR_RETURN(
        auto p, partition::MakePartitioner(edges[e].partitioner));
    rt->edge_partitioners_.push_back(std::move(p));
    rt->out_edges_[edges[e].from.index].push_back(e);
  }
  // Instantiate operators and open them.
  const auto& nodes = topology->nodes();
  rt->ops_.resize(nodes.size());
  rt->processed_.resize(nodes.size());
  for (uint32_t n = 0; n < nodes.size(); ++n) {
    rt->processed_[n].assign(nodes[n].parallelism, 0);
    if (nodes[n].is_spout) continue;
    for (uint32_t i = 0; i < nodes[n].parallelism; ++i) {
      auto op = nodes[n].factory(i);
      PKGSTREAM_CHECK(op != nullptr)
          << "factory for PE '" << nodes[n].name << "' returned null";
      OperatorContext ctx;
      ctx.pe_name = nodes[n].name;
      ctx.instance = i;
      ctx.parallelism = nodes[n].parallelism;
      op->Open(ctx);
      rt->ops_[n].push_back(std::move(op));
    }
  }
  return rt;
}

LogicalRuntime::LogicalRuntime(const Topology* topology)
    : topology_(topology) {}

void LogicalRuntime::Inject(NodeId spout, SourceId source, Message msg) {
  PKGSTREAM_CHECK(!finished_) << "Inject after Finish";
  PKGSTREAM_CHECK(spout.index < topology_->nodes().size());
  const auto& node = topology_->nodes()[spout.index];
  PKGSTREAM_CHECK(node.is_spout) << "Inject target must be a spout";
  PKGSTREAM_CHECK(source < node.parallelism);
  ++injected_;
  msg.ts = injected_;
  ++processed_[spout.index][source];
  RouteDownstream(spout.index, source, std::move(msg));
  Drain();
  FireTicks();
}

void LogicalRuntime::InjectBatch(NodeId spout, SourceId source,
                                 const Message* msgs, size_t n) {
  PKGSTREAM_CHECK(!finished_) << "Inject after Finish";
  PKGSTREAM_CHECK(spout.index < topology_->nodes().size());
  const auto& node = topology_->nodes()[spout.index];
  PKGSTREAM_CHECK(node.is_spout) << "Inject target must be a spout";
  PKGSTREAM_CHECK(source < node.parallelism);
  if (n == 0) return;
  // Route the whole batch on every outbound edge up front. Only
  // injections route on spout edges (operators emit on their own node's
  // edges), so each spout-edge partitioner sees the identical key order
  // it would under n scalar Inject calls.
  const std::vector<uint32_t>& out = out_edges_[spout.index];
  batch_keys_.resize(n);
  for (size_t i = 0; i < n; ++i) batch_keys_[i] = msgs[i].key;
  batch_routes_.resize(out.size());
  for (size_t k = 0; k < out.size(); ++k) {
    batch_routes_[k].resize(n);
    edge_partitioners_[out[k]]->RouteBatch(source, batch_keys_.data(),
                                           batch_routes_[k].data(), n);
  }
  // Then process each message to completion in order, exactly as Inject
  // does (timestamps, tick firings and drain points per message).
  const auto& edges = topology_->edges();
  for (size_t i = 0; i < n; ++i) {
    ++injected_;
    ++processed_[spout.index][source];
    for (size_t k = 0; k < out.size(); ++k) {
      Message copy = msgs[i];
      copy.ts = injected_;
      queue_.push_back(Pending{edges[out[k]].to.index, batch_routes_[k][i],
                               std::move(copy)});
    }
    Drain();
    FireTicks();
  }
}

void LogicalRuntime::FireTicks() {
  const auto& nodes = topology_->nodes();
  for (uint32_t n = 0; n < nodes.size(); ++n) {
    if (nodes[n].is_spout || nodes[n].tick_period == 0) continue;
    if (injected_ % nodes[n].tick_period != 0) continue;
    for (uint32_t i = 0; i < ops_[n].size(); ++i) {
      EdgeEmitter emitter(this, n, i);
      ops_[n][i]->Tick(injected_, &emitter);
    }
  }
  Drain();
}

void LogicalRuntime::Finish() {
  if (finished_) return;
  finished_ = true;
  // Topological order = insertion order is not guaranteed; but Close() only
  // emits downstream and Drain() fully processes emissions, so closing in
  // index order after draining each PE is safe for DAGs built top-down.
  const auto& nodes = topology_->nodes();
  for (uint32_t n = 0; n < nodes.size(); ++n) {
    if (nodes[n].is_spout) continue;
    for (uint32_t i = 0; i < ops_[n].size(); ++i) {
      EdgeEmitter emitter(this, n, i);
      ops_[n][i]->Close(&emitter);
      Drain();
    }
  }
}

void LogicalRuntime::Dispatch(uint32_t node_index, uint32_t instance,
                              const Message& msg) {
  PKGSTREAM_DCHECK(!topology_->nodes()[node_index].is_spout);
  ++processed_[node_index][instance];
  EdgeEmitter emitter(this, node_index, instance);
  ops_[node_index][instance]->Process(msg, &emitter);
}

void LogicalRuntime::RouteDownstream(uint32_t node_index, uint32_t instance,
                                     Message msg) {
  const auto& edges = topology_->edges();
  const std::vector<uint32_t>& out = out_edges_[node_index];
  for (size_t k = 0; k < out.size(); ++k) {
    const uint32_t e = out[k];
    WorkerId w = edge_partitioners_[e]->Route(instance, msg.key);
    if (k + 1 == out.size()) {
      // Last edge owns the message; true fan-out above copied.
      queue_.push_back(Pending{edges[e].to.index, w, std::move(msg)});
    } else {
      queue_.push_back(Pending{edges[e].to.index, w, msg});
    }
  }
}

void LogicalRuntime::Drain() {
  while (!queue_.empty()) {
    Pending p = std::move(queue_.front());
    queue_.pop_front();
    Dispatch(p.node, p.instance, p.msg);
  }
}

std::vector<NodeMetrics> LogicalRuntime::Metrics() const {
  std::vector<NodeMetrics> out;
  const auto& nodes = topology_->nodes();
  for (uint32_t n = 0; n < nodes.size(); ++n) {
    NodeMetrics m;
    m.pe_name = nodes[n].name;
    m.processed = processed_[n];
    for (const auto& op : ops_[n]) m.memory_counters += op->MemoryCounters();
    m.imbalance = stats::ImbalanceOf(processed_[n]);
    out.push_back(std::move(m));
  }
  return out;
}

Operator* LogicalRuntime::GetOperator(NodeId node, uint32_t instance) {
  PKGSTREAM_CHECK(node.index < ops_.size());
  PKGSTREAM_CHECK(instance < ops_[node.index].size());
  return ops_[node.index][instance].get();
}

partition::Partitioner* LogicalRuntime::GetPartitioner(uint32_t edge_index) {
  PKGSTREAM_CHECK(edge_index < edge_partitioners_.size());
  return edge_partitioners_[edge_index].get();
}

}  // namespace engine
}  // namespace pkgstream
