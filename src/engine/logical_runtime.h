// Copyright 2026 The pkgstream Authors.
// LogicalRuntime: the deterministic, single-threaded executor. Messages are
// processed to completion in injection order; time is the message index.
// This runtime is the reference semantics for every application (tests
// compare EventSimulator results against it) and the engine under the
// Q1-Q3 style application examples.

#ifndef PKGSTREAM_ENGINE_LOGICAL_RUNTIME_H_
#define PKGSTREAM_ENGINE_LOGICAL_RUNTIME_H_

#include <deque>
#include <memory>
#include <vector>

#include "common/result.h"
#include "engine/topology.h"
#include "partition/partitioner.h"
#include "stats/imbalance.h"

namespace pkgstream {
namespace engine {

/// \brief Per-PE load/memory metrics after (or during) a run.
struct NodeMetrics {
  std::string pe_name;
  std::vector<uint64_t> processed;  ///< messages processed per instance
  uint64_t memory_counters = 0;     ///< sum of MemoryCounters() per instance
  double imbalance = 0.0;           ///< final I(m) over instances
};

/// \brief Deterministic in-process executor for a Topology.
class LogicalRuntime {
 public:
  /// Instantiates operators and edge partitioners. `topology` must outlive
  /// the runtime and Validate() must pass (checked).
  static Result<std::unique_ptr<LogicalRuntime>> Create(
      const Topology* topology);

  /// Injects one message at `spout` instance `source` and drains the DAG:
  /// every transitively-emitted message is fully processed before returning.
  /// Timestamps are assigned from the global injection counter. The message
  /// is moved through the pipeline (copied only on spout fan-out).
  void Inject(NodeId spout, SourceId source, Message msg);

  /// Injects `n` messages from one source: routing decisions, timestamps,
  /// tick firings and processing order are identical to n Inject calls.
  /// The spout's outbound edges route the whole batch up front through
  /// Partitioner::RouteBatch (bit-equivalent to scalar routing by
  /// contract), then each message is processed to completion in order —
  /// the per-message virtual Route and per-call drain bookkeeping collapse
  /// into the batch.
  void InjectBatch(NodeId spout, SourceId source, const Message* msgs,
                   size_t n);

  /// Fires pending ticks: any PE whose tick_period divides the injection
  /// counter gets Tick() on all instances. Called automatically by Inject;
  /// public for tests.
  void FireTicks();

  /// Signals end of stream: Close() on every operator (topological order),
  /// draining emissions.
  void Finish();

  /// Messages injected so far (the logical clock).
  uint64_t now() const { return injected_; }

  /// Metrics per PE (indexed like Topology::nodes()).
  std::vector<NodeMetrics> Metrics() const;

  /// Access to an operator instance (tests / examples read results out).
  Operator* GetOperator(NodeId node, uint32_t instance);

  /// Access to an edge partitioner (diagnostics).
  partition::Partitioner* GetPartitioner(uint32_t edge_index);

 private:
  explicit LogicalRuntime(const Topology* topology);

  struct Pending {
    uint32_t node;
    uint32_t instance;
    Message msg;
  };

  /// Emitter bound to (node, instance): routes on all outbound edges.
  class EdgeEmitter;

  void Dispatch(uint32_t node_index, uint32_t instance, const Message& msg);
  /// Routes `msg` on every outbound edge of (node, instance), moving it
  /// into the last edge's queue entry (fan-out to earlier edges copies).
  void RouteDownstream(uint32_t node_index, uint32_t instance, Message msg);
  void Drain();

  const Topology* topology_;
  // ops_[node][instance]; empty inner vector for spouts.
  std::vector<std::vector<std::unique_ptr<Operator>>> ops_;
  std::vector<partition::PartitionerPtr> edge_partitioners_;
  /// Outbound edge indices per node (hot-path scan avoidance, and the
  /// fan-out count that decides move vs copy).
  std::vector<std::vector<uint32_t>> out_edges_;
  std::vector<std::vector<uint64_t>> processed_;  // [node][instance]
  std::deque<Pending> queue_;
  /// InjectBatch scratch (keys, then per-edge routed workers), kept across
  /// calls so steady-state batch injection does not allocate.
  std::vector<Key> batch_keys_;
  std::vector<std::vector<WorkerId>> batch_routes_;
  uint64_t injected_ = 0;
  bool finished_ = false;
};

}  // namespace engine
}  // namespace pkgstream

#endif  // PKGSTREAM_ENGINE_LOGICAL_RUNTIME_H_
