// Copyright 2026 The pkgstream Authors.
// The unit of data flow: a keyed message (the paper's m = <t, k, v>).

#ifndef PKGSTREAM_ENGINE_MESSAGE_H_
#define PKGSTREAM_ENGINE_MESSAGE_H_

#include <cstdint>
#include <memory>

#include "common/types.h"

namespace pkgstream {
namespace engine {

/// \brief A message flowing along a stream edge.
///
/// The fixed scalar fields cover the counting/classification workloads the
/// paper evaluates; `box` carries structured payloads (histogram summaries,
/// model deltas) by shared pointer, mimicking the zero-copy handoff of an
/// in-process DSPE.
struct Message {
  Key key = 0;        ///< routing key (word id, feature id, vertex id, ...)
  int64_t i64 = 0;    ///< integer payload: count, class label, ...
  double f64 = 0.0;   ///< real payload: feature value, weight, ...
  uint32_t tag = 0;   ///< application-defined discriminator
  StreamTime ts = 0;  ///< logical emission time (set by the runtime)

  /// Optional structured payload. Shared (immutable by convention) so that
  /// fan-out does not copy.
  std::shared_ptr<const void> box;

  /// Typed view of `box`; the caller asserts the type.
  template <typename T>
  const T* BoxAs() const {
    return static_cast<const T*>(box.get());
  }
};

/// \brief Helper to stash a typed payload into a message.
template <typename T>
void SetBox(Message* msg, std::shared_ptr<const T> payload) {
  msg->box = std::static_pointer_cast<const void>(std::move(payload));
}

}  // namespace engine
}  // namespace pkgstream

#endif  // PKGSTREAM_ENGINE_MESSAGE_H_
