// Copyright 2026 The pkgstream Authors.

#include "engine/open_loop.h"

#include <algorithm>
#include <cmath>
#include <thread>

#include "common/logging.h"
#include "engine/spsc_ring.h"

namespace pkgstream {
namespace engine {

LatencySink::LatencySink(Options options)
    : options_(std::move(options)),
      histogram_(options_.histogram_max_us, options_.histogram_sub_buckets) {
  if (options_.model == ServiceModel::kWallClock) {
    PKGSTREAM_CHECK(options_.clock != nullptr)
        << "kWallClock LatencySink needs the run clock";
  }
  if (options_.fault_plan != nullptr) {
    PKGSTREAM_CHECK(options_.model == ServiceModel::kVirtualService)
        << "fault plans fold into the virtual-service recursion only";
  }
  const auto& boundaries = options_.phase_boundaries_us;
  if (!boundaries.empty()) {
    for (size_t i = 1; i < boundaries.size(); ++i) {
      PKGSTREAM_CHECK(boundaries[i - 1] <= boundaries[i])
          << "phase boundaries must be ascending";
    }
    phase_hists_.reserve(boundaries.size() + 1);
    for (size_t p = 0; p <= boundaries.size(); ++p) {
      phase_hists_.emplace_back(options_.histogram_max_us,
                                options_.histogram_sub_buckets);
    }
  }
}

void LatencySink::Open(const OperatorContext& ctx) {
  if (options_.fault_plan == nullptr) return;
  PKGSTREAM_CHECK(ctx.parallelism == options_.fault_plan->workers())
      << "fault plan sized for " << options_.fault_plan->workers()
      << " workers, sink has " << ctx.parallelism << " instances";
  windows_ = options_.fault_plan->ServiceTimeline(ctx.instance);
}

size_t LatencySink::PhaseOf(uint64_t scheduled_us) const {
  const auto& boundaries = options_.phase_boundaries_us;
  size_t p = 0;
  while (p < boundaries.size() && scheduled_us >= boundaries[p]) ++p;
  return p;
}

const stats::LatencyHistogram& LatencySink::phase_histogram(size_t p) const {
  PKGSTREAM_CHECK(p < phase_hists_.size())
      << "phase " << p << " of " << phase_hists_.size();
  return phase_hists_[p];
}

void LatencySink::Process(const Message& msg, Emitter* out) {
  (void)out;
  const uint64_t scheduled = msg.ts;
  if (options_.model == ServiceModel::kVirtualService) {
    if (options_.service_us == 0 && windows_.empty()) {
      histogram_.Record(0);
      if (!phase_hists_.empty()) phase_hists_[PhaseOf(scheduled)].Record(0);
      return;
    }
    // Lindley recursion: service starts when the message has arrived (its
    // scheduled time), this worker is free, and the worker is not on a
    // stall vacation. Start times are nondecreasing (next_free_us_ only
    // grows), so a forward-only cursor folds the plan's non-overlapping
    // windows in one pass across the whole run.
    uint64_t start = std::max(scheduled, next_free_us_);
    uint64_t service = options_.service_us;
    while (window_pos_ < windows_.size()) {
      const FaultPlan::ServiceWindow& w = windows_[window_pos_];
      if (w.end_us <= start) {
        ++window_pos_;
        continue;
      }
      if (w.begin_us > start) break;
      if (w.stall) {
        // Vacation: service cannot begin before the window closes.
        start = w.end_us;
        ++window_pos_;
        continue;
      }
      service = std::max<uint64_t>(
          1, static_cast<uint64_t>(
                 std::llround(static_cast<double>(service) * w.factor)));
      break;
    }
    next_free_us_ = start + service;
    const uint64_t latency = next_free_us_ - scheduled;
    histogram_.Record(latency);
    if (!phase_hists_.empty()) {
      phase_hists_[PhaseOf(scheduled)].Record(latency);
    }
    return;
  }
  if (options_.service_spin_us > 0) {
    const uint64_t until = options_.clock->NowMicros() + options_.service_spin_us;
    while (options_.clock->NowMicros() < until) Backoff::CpuRelax();
  }
  const uint64_t now = options_.clock->NowMicros();
  const uint64_t latency = now > scheduled ? now - scheduled : 0;
  histogram_.Record(latency);
  if (!phase_hists_.empty()) phase_hists_[PhaseOf(scheduled)].Record(latency);
}

stats::LatencyHistogram LatencySink::MergedHistogram(ThreadedRuntime* rt,
                                                     NodeId sink,
                                                     uint32_t parallelism,
                                                     const Options& options) {
  stats::LatencyHistogram merged(options.histogram_max_us,
                                 options.histogram_sub_buckets);
  for (uint32_t i = 0; i < parallelism; ++i) {
    auto* op = dynamic_cast<LatencySink*>(rt->GetOperator(sink, i));
    PKGSTREAM_CHECK(op != nullptr) << "node is not a LatencySink";
    merged.Merge(op->histogram());
  }
  return merged;
}

stats::LatencyHistogram LatencySink::MergedPhaseHistogram(
    ThreadedRuntime* rt, NodeId sink, uint32_t parallelism,
    const Options& options, size_t phase) {
  stats::LatencyHistogram merged(options.histogram_max_us,
                                 options.histogram_sub_buckets);
  for (uint32_t i = 0; i < parallelism; ++i) {
    auto* op = dynamic_cast<LatencySink*>(rt->GetOperator(sink, i));
    PKGSTREAM_CHECK(op != nullptr) << "node is not a LatencySink";
    merged.Merge(op->phase_histogram(phase));
  }
  return merged;
}

OperatorFactory LatencySink::MakeFactory(Options options) {
  return [options](uint32_t) { return std::make_unique<LatencySink>(options); };
}

OpenLoopDriver::OpenLoopDriver(ThreadedRuntime* rt, NodeId spout,
                               const OpenLoopClock* clock,
                               OpenLoopOptions options)
    : rt_(rt), spout_(spout), clock_(clock), options_(options) {
  PKGSTREAM_CHECK(rt != nullptr && clock != nullptr);
  PKGSTREAM_CHECK(options_.max_batch > 0);
}

void OpenLoopDriver::WaitUntil(uint64_t target_us) const {
  for (;;) {
    const uint64_t now = clock_->NowMicros();
    if (now >= target_us) return;
    const uint64_t wait = target_us - now;
    if (wait > 2000) {
      // Sleep most of it, leave ~1ms of slack for wakeup jitter.
      std::this_thread::sleep_for(std::chrono::microseconds(wait - 1000));
    } else if (wait > 200) {
      std::this_thread::yield();
    } else {
      Backoff::CpuRelax();
    }
  }
}

OpenLoopSourceReport OpenLoopDriver::RunSource(const Source& source) {
  PKGSTREAM_CHECK(source.schedule != nullptr && source.keys != nullptr);
  OpenLoopSourceReport report;
  const size_t max_batch = options_.max_batch;
  std::vector<uint64_t> when(max_batch);
  std::vector<Key> keys(max_batch);
  std::vector<Message> msgs(max_batch);

  const FaultPlan* plan = source.faults;
  size_t next_event = 0;  // into plan->routing_events()

  uint64_t produced = 0;
  size_t len = 0;  // filled portion of when/keys
  size_t pos = 0;  // next unsent entry
  while (produced < source.messages || pos < len) {
    if (rt_->aborted()) {
      // Run torn down under us (e.g. a wedged consumer was aborted):
      // exit cleanly instead of pushing into rings nobody drains.
      report.aborted = true;
      break;
    }
    if (pos == len) {
      len = static_cast<size_t>(
          std::min<uint64_t>(max_batch, source.messages - produced));
      source.schedule->NextBatchMicros(when.data(), len);
      source.keys->NextBatch(keys.data(), len);
      produced += len;
      pos = 0;
    }
    // Apply every crash/rejoin due at or before the next message's
    // *scheduled* arrival — the reconfiguration point in the message
    // sequence is a pure function of the schedule, so replays (paced or
    // not, any host speed) reconfigure at the identical message index.
    if (plan != nullptr) {
      const auto& events = plan->routing_events();
      while (next_event < events.size() &&
             events[next_event].at_us <= when[pos]) {
        PKGSTREAM_CHECK_OK(rt_->ReconfigureWorkers(
            source.fault_target, plan->AliveAfterEvent(next_event)));
        ++report.reconfigs_applied;
        ++next_event;
      }
    }
    if (options_.pace) {
      const uint64_t before = clock_->NowMicros();
      if (before < when[pos]) {
        WaitUntil(when[pos]);
      } else {
        ++report.late_batches;
      }
    }
    // Everything already due goes out in one batch; when not pacing, the
    // whole buffered chunk is "due".
    size_t count = 1;
    if (options_.pace) {
      const uint64_t now = clock_->NowMicros();
      while (pos + count < len && when[pos + count] <= now) ++count;
    } else {
      count = len - pos;
    }
    // Split the batch at the next routing event: no message scheduled at
    // or after the event may route under the old worker set. The first
    // message is always before the event (everything due was applied
    // above), so count stays >= 1.
    if (plan != nullptr && next_event < plan->routing_events().size()) {
      const uint64_t limit = plan->routing_events()[next_event].at_us;
      size_t c = 1;
      while (c < count && when[pos + c] < limit) ++c;
      count = c;
    }
    for (size_t i = 0; i < count; ++i) {
      Message& m = msgs[i];
      m.key = keys[pos + i];
      m.ts = when[pos + i];  // latency is measured from the *scheduled* time
    }
    rt_->InjectBatch(spout_, source.source, msgs.data(), count);
    const uint64_t after = clock_->NowMicros();
    // The first message of the batch has the earliest schedule, so its lag
    // bounds the batch.
    if (after > when[pos]) {
      report.max_lag_us = std::max(report.max_lag_us, after - when[pos]);
    }
    // Per-message lag against the same completion stamp: a batch held up
    // by backpressure charges every message it covered, so sustained
    // delay shows up in the quantiles, not just the max.
    for (size_t i = 0; i < count; ++i) {
      const uint64_t scheduled = when[pos + i];
      report.lag_histogram.Record(after > scheduled ? after - scheduled : 0);
    }
    report.last_scheduled_us = when[pos + count - 1];
    report.injected += count;
    pos += count;
  }
  return report;
}

std::vector<OpenLoopSourceReport> OpenLoopDriver::Run(
    const std::vector<Source>& sources) {
  std::vector<OpenLoopSourceReport> reports(sources.size());
  std::vector<std::thread> threads;
  threads.reserve(sources.size());
  for (size_t i = 0; i < sources.size(); ++i) {
    threads.emplace_back(
        [this, &sources, &reports, i] { reports[i] = RunSource(sources[i]); });
  }
  for (auto& t : threads) t.join();
  return reports;
}

}  // namespace engine
}  // namespace pkgstream
