// Copyright 2026 The pkgstream Authors.

#include "engine/open_loop.h"

#include <algorithm>
#include <thread>

#include "common/logging.h"
#include "engine/spsc_ring.h"

namespace pkgstream {
namespace engine {

LatencySink::LatencySink(Options options)
    : options_(options),
      histogram_(options.histogram_max_us, options.histogram_sub_buckets) {
  if (options_.model == ServiceModel::kWallClock) {
    PKGSTREAM_CHECK(options_.clock != nullptr)
        << "kWallClock LatencySink needs the run clock";
  }
}

void LatencySink::Process(const Message& msg, Emitter* out) {
  (void)out;
  const uint64_t scheduled = msg.ts;
  if (options_.model == ServiceModel::kVirtualService) {
    if (options_.service_us == 0) {
      histogram_.Record(0);
      return;
    }
    // Lindley recursion: service starts when both the message has arrived
    // (its scheduled time) and this worker is free.
    const uint64_t start = std::max(scheduled, next_free_us_);
    next_free_us_ = start + options_.service_us;
    histogram_.Record(next_free_us_ - scheduled);
    return;
  }
  if (options_.service_spin_us > 0) {
    const uint64_t until = options_.clock->NowMicros() + options_.service_spin_us;
    while (options_.clock->NowMicros() < until) Backoff::CpuRelax();
  }
  const uint64_t now = options_.clock->NowMicros();
  histogram_.Record(now > scheduled ? now - scheduled : 0);
}

stats::LatencyHistogram LatencySink::MergedHistogram(ThreadedRuntime* rt,
                                                     NodeId sink,
                                                     uint32_t parallelism,
                                                     const Options& options) {
  stats::LatencyHistogram merged(options.histogram_max_us,
                                 options.histogram_sub_buckets);
  for (uint32_t i = 0; i < parallelism; ++i) {
    auto* op = dynamic_cast<LatencySink*>(rt->GetOperator(sink, i));
    PKGSTREAM_CHECK(op != nullptr) << "node is not a LatencySink";
    merged.Merge(op->histogram());
  }
  return merged;
}

OperatorFactory LatencySink::MakeFactory(Options options) {
  return [options](uint32_t) { return std::make_unique<LatencySink>(options); };
}

OpenLoopDriver::OpenLoopDriver(ThreadedRuntime* rt, NodeId spout,
                               const OpenLoopClock* clock,
                               OpenLoopOptions options)
    : rt_(rt), spout_(spout), clock_(clock), options_(options) {
  PKGSTREAM_CHECK(rt != nullptr && clock != nullptr);
  PKGSTREAM_CHECK(options_.max_batch > 0);
}

void OpenLoopDriver::WaitUntil(uint64_t target_us) const {
  for (;;) {
    const uint64_t now = clock_->NowMicros();
    if (now >= target_us) return;
    const uint64_t wait = target_us - now;
    if (wait > 2000) {
      // Sleep most of it, leave ~1ms of slack for wakeup jitter.
      std::this_thread::sleep_for(std::chrono::microseconds(wait - 1000));
    } else if (wait > 200) {
      std::this_thread::yield();
    } else {
      Backoff::CpuRelax();
    }
  }
}

OpenLoopSourceReport OpenLoopDriver::RunSource(const Source& source) {
  PKGSTREAM_CHECK(source.schedule != nullptr && source.keys != nullptr);
  OpenLoopSourceReport report;
  const size_t max_batch = options_.max_batch;
  std::vector<uint64_t> when(max_batch);
  std::vector<Key> keys(max_batch);
  std::vector<Message> msgs(max_batch);

  uint64_t produced = 0;
  size_t len = 0;  // filled portion of when/keys
  size_t pos = 0;  // next unsent entry
  while (produced < source.messages || pos < len) {
    if (pos == len) {
      len = static_cast<size_t>(
          std::min<uint64_t>(max_batch, source.messages - produced));
      source.schedule->NextBatchMicros(when.data(), len);
      source.keys->NextBatch(keys.data(), len);
      produced += len;
      pos = 0;
    }
    if (options_.pace) {
      const uint64_t before = clock_->NowMicros();
      if (before < when[pos]) {
        WaitUntil(when[pos]);
      } else {
        ++report.late_batches;
      }
    }
    // Everything already due goes out in one batch; when not pacing, the
    // whole buffered chunk is "due".
    size_t count = 1;
    if (options_.pace) {
      const uint64_t now = clock_->NowMicros();
      while (pos + count < len && when[pos + count] <= now) ++count;
    } else {
      count = len - pos;
    }
    for (size_t i = 0; i < count; ++i) {
      Message& m = msgs[i];
      m.key = keys[pos + i];
      m.ts = when[pos + i];  // latency is measured from the *scheduled* time
    }
    rt_->InjectBatch(spout_, source.source, msgs.data(), count);
    const uint64_t after = clock_->NowMicros();
    // The first message of the batch has the earliest schedule, so its lag
    // bounds the batch.
    if (after > when[pos]) {
      report.max_lag_us = std::max(report.max_lag_us, after - when[pos]);
    }
    // Per-message lag against the same completion stamp: a batch held up
    // by backpressure charges every message it covered, so sustained
    // delay shows up in the quantiles, not just the max.
    for (size_t i = 0; i < count; ++i) {
      const uint64_t scheduled = when[pos + i];
      report.lag_histogram.Record(after > scheduled ? after - scheduled : 0);
    }
    report.last_scheduled_us = when[pos + count - 1];
    report.injected += count;
    pos += count;
  }
  return report;
}

std::vector<OpenLoopSourceReport> OpenLoopDriver::Run(
    const std::vector<Source>& sources) {
  std::vector<OpenLoopSourceReport> reports(sources.size());
  std::vector<std::thread> threads;
  threads.reserve(sources.size());
  for (size_t i = 0; i < sources.size(); ++i) {
    threads.emplace_back(
        [this, &sources, &reports, i] { reports[i] = RunSource(sources[i]); });
  }
  for (auto& t : threads) t.join();
  return reports;
}

}  // namespace engine
}  // namespace pkgstream
