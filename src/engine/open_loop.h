// Copyright 2026 The pkgstream Authors.
// Open-loop load generation for ThreadedRuntime, with coordinated-omission-
// safe latency measurement (ROADMAP "sharded many-worker runtime with
// latency under load"; the paper's Section V cluster experiment measures
// latency, not just imbalance: "the average latency with KG is up to 45%
// larger than with PKG").
//
// The closed-loop injectors used by the scaling benches inject as fast as
// the system accepts: when a hot worker backs up, backpressure slows the
// injector, the offered load silently adapts, and queueing delay never
// shows up in the numbers (coordinated omission). The OpenLoopDriver is
// the opposite: the offered load is fixed up front as a
// workload::ArrivalSchedule — per-message scheduled arrival times — and
// the driver injects against that schedule via InjectBatch, never
// re-planning when the system falls behind. Every message is stamped with
// its *scheduled* arrival time in Message::ts, and latency is measured
// from that stamp, so time a message spent waiting to even be injected
// (backpressure on a full ring, an injector running late) counts against
// the tail instead of flattering it.
//
// Latency recording (LatencySink) supports two service models:
//
//  * kVirtualService — the sink advances a per-instance virtual completion
//    clock: start = max(ts, next_free), next_free = start + service_us,
//    latency = next_free - ts. This is the Lindley recursion of a
//    single-server queue with deterministic service, driven by the
//    *scheduled* arrivals — per-worker capacity is exactly 1e6/service_us
//    msgs/sec by construction, independent of host speed, scheduler noise
//    or sanitizer slowdown. With a single spout instance the per-sink
//    arrival order equals injection order, so the recorded histograms are
//    bit-deterministic: bench_latency_under_load commits its p50/p99/p999
//    as baseline-gated deterministic metrics.
//  * kWallClock — latency = (wall time at processing) - ts against the
//    shared OpenLoopClock, optionally burning service_spin_us of real CPU
//    per message. Host-dependent; used by the stress tests to exercise
//    real backpressure end to end.
//
// Per-instance LatencyHistograms are merged after Finish() (the runtime's
// thread joins order the sink state before GetOperator access).

#ifndef PKGSTREAM_ENGINE_OPEN_LOOP_H_
#define PKGSTREAM_ENGINE_OPEN_LOOP_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "engine/fault_injection.h"
#include "engine/threaded_runtime.h"
#include "stats/latency_histogram.h"
#include "workload/arrival_schedule.h"
#include "workload/key_stream.h"

namespace pkgstream {
namespace engine {

/// \brief Monotonic run clock shared by the driver and wall-clock sinks.
/// Microseconds since construction (the run epoch, schedule time 0).
class OpenLoopClock {
 public:
  OpenLoopClock() : epoch_(std::chrono::steady_clock::now()) {}

  uint64_t NowMicros() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

 private:
  std::chrono::steady_clock::time_point epoch_;
};

/// \brief Latency-recording sink operator (see file comment for the two
/// service models).
class LatencySink final : public Operator {
 public:
  enum class ServiceModel {
    kVirtualService,  ///< deterministic Lindley recursion on Message::ts
    kWallClock,       ///< wall-clock latency against the run clock
  };

  struct Options {
    ServiceModel model = ServiceModel::kVirtualService;
    /// kVirtualService: deterministic service time per message; the
    /// instance's capacity is exactly 1e6/service_us msgs/sec (0 = infinite
    /// capacity, latency 0 — useful to isolate schedule replay).
    uint64_t service_us = 0;
    /// kWallClock: real CPU burned per message (0 = none).
    uint64_t service_spin_us = 0;
    /// kWallClock: the run clock (required; must outlive the sink).
    const OpenLoopClock* clock = nullptr;
    /// Histogram geometry (all instances must agree for Merge).
    uint64_t histogram_max_us = 1ULL << 30;
    uint32_t histogram_sub_buckets = 32;
    /// kVirtualService only: this instance's stall/slowdown windows from
    /// the plan (instance index == worker id) are folded into the Lindley
    /// recursion — a stall is a server vacation (service cannot start
    /// inside the window), a slowdown multiplies the service time of
    /// messages starting inside it. Virtual-time driven, so determinism is
    /// preserved. Must outlive the sink.
    const FaultPlan* fault_plan = nullptr;
    /// Ascending virtual-time boundaries splitting the run into
    /// boundaries+1 phases by *scheduled arrival* (e.g. steady / outage /
    /// recovery). Every latency is additionally recorded into its phase's
    /// histogram (same geometry), so per-phase quantiles — p99 during the
    /// outage vs after recovery — are first-class metrics.
    std::vector<uint64_t> phase_boundaries_us;
  };

  explicit LatencySink(Options options);

  void Open(const OperatorContext& ctx) override;
  void Process(const Message& msg, Emitter* out) override;
  uint64_t MemoryCounters() const override { return 0; }

  /// Valid after ThreadedRuntime::Finish().
  const stats::LatencyHistogram& histogram() const { return histogram_; }

  /// Number of phases (phase_boundaries_us.size() + 1; 1 when unset).
  size_t phases() const { return options_.phase_boundaries_us.size() + 1; }

  /// Valid after Finish(): the latency histogram of phase `p` (only when
  /// phase_boundaries_us was set).
  const stats::LatencyHistogram& phase_histogram(size_t p) const;

  /// Merges the histograms of all `parallelism` LatencySink instances of
  /// `sink` (must be the runtime's operator node built from MakeFactory).
  static stats::LatencyHistogram MergedHistogram(ThreadedRuntime* rt,
                                                 NodeId sink,
                                                 uint32_t parallelism,
                                                 const Options& options);

  /// Per-phase MergedHistogram (requires phase_boundaries_us).
  static stats::LatencyHistogram MergedPhaseHistogram(ThreadedRuntime* rt,
                                                      NodeId sink,
                                                      uint32_t parallelism,
                                                      const Options& options,
                                                      size_t phase);

  /// OperatorFactory building one LatencySink per instance.
  static OperatorFactory MakeFactory(Options options);

 private:
  /// Phase of a scheduled arrival time (linear scan; boundaries are few).
  size_t PhaseOf(uint64_t scheduled_us) const;

  Options options_;
  stats::LatencyHistogram histogram_;
  uint64_t next_free_us_ = 0;  // kVirtualService completion clock
  /// This instance's stall/slowdown windows (loaded at Open from the
  /// plan), and the monotone cursor into them — service start times never
  /// decrease, so one forward-only cursor visits each window once.
  std::vector<FaultPlan::ServiceWindow> windows_;
  size_t window_pos_ = 0;
  /// Per-phase histograms (empty when phase_boundaries_us is unset).
  std::vector<stats::LatencyHistogram> phase_hists_;
};

/// \brief Options for the open-loop driver.
struct OpenLoopOptions {
  /// Follow the schedule on the wall clock (sleep until each arrival is
  /// due; messages already due are injected together). When false, the
  /// whole schedule is replayed as fast as possible — arrival stamps and
  /// kVirtualService latencies are identical either way; only the wall
  /// metrics differ.
  bool pace = true;
  /// Max messages per InjectBatch call (and schedule/key lookahead).
  size_t max_batch = 256;
};

/// \brief Per-source result of an open-loop run.
struct OpenLoopSourceReport {
  uint64_t injected = 0;           ///< messages injected (== spec.messages)
  uint64_t last_scheduled_us = 0;  ///< schedule time of the final message
  /// Max (inject completion wall time - scheduled time) over all batches:
  /// how far the injector fell behind its schedule (backpressure or an
  /// overloaded host). Meaningful when pacing; unpaced runs report the
  /// trivially large replay lead/lag.
  uint64_t max_lag_us = 0;
  /// Batches that were already past their scheduled time before injection
  /// started (the open-loop "never slow down" path was exercised).
  uint64_t late_batches = 0;
  /// Per-message inject lag, max(0, inject completion wall time -
  /// scheduled time): one Record per injected message, so the quantiles
  /// distinguish a single spike (p99 near 0, max large) from sustained
  /// backpressure (p99 comparable to max) — the max alone cannot. Wall-
  /// clock derived, so host-dependent: report as host_metrics only.
  stats::LatencyHistogram lag_histogram{1ULL << 30, 32};
  /// The run was aborted (ThreadedRuntime::Abort) before the schedule
  /// completed; `injected` counts only what went out before the abort.
  bool aborted = false;
  /// Crash/rejoin reconfigurations this injector applied from its fault
  /// plan (== plan->routing_events().size() on a completed run).
  uint64_t reconfigs_applied = 0;
};

/// \brief Drives one spout of a ThreadedRuntime from per-source arrival
/// schedules and key streams, one injector thread per source.
class OpenLoopDriver {
 public:
  /// One spout instance's load: `messages` keys from `keys`, arriving at
  /// `schedule`'s times. Both pointers must outlive Run().
  struct Source {
    SourceId source = 0;
    workload::ArrivalSchedule* schedule = nullptr;
    workload::KeyStream* keys = nullptr;
    uint64_t messages = 0;
    /// Optional fault plan: the injector applies each crash/rejoin event
    /// through ThreadedRuntime::ReconfigureWorkers(fault_target, ...)
    /// exactly before the first message whose *scheduled* arrival is
    /// >= the event time, and splits injection batches at those
    /// boundaries — so the reconfiguration point in the message sequence
    /// is a pure function of the schedule (byte-deterministic, paced or
    /// not). Must outlive Run().
    const FaultPlan* faults = nullptr;
    /// The downstream node whose workers the plan crashes/rejoins.
    NodeId fault_target{};
  };

  /// `clock` is the shared run epoch (schedule time 0 = clock construction;
  /// build the clock, then the runtime, then Run soon after).
  OpenLoopDriver(ThreadedRuntime* rt, NodeId spout, const OpenLoopClock* clock,
                 OpenLoopOptions options = {});

  /// Runs every source to completion (one thread each; blocks until all
  /// schedules are fully injected). Does not call Finish() — callers may
  /// run several waves, then Finish.
  std::vector<OpenLoopSourceReport> Run(const std::vector<Source>& sources);

 private:
  OpenLoopSourceReport RunSource(const Source& source);
  void WaitUntil(uint64_t target_us) const;

  ThreadedRuntime* rt_;
  NodeId spout_;
  const OpenLoopClock* clock_;
  OpenLoopOptions options_;
};

}  // namespace engine
}  // namespace pkgstream

#endif  // PKGSTREAM_ENGINE_OPEN_LOOP_H_
