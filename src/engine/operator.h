// Copyright 2026 The pkgstream Authors.
// The processing-element (PE) programming model. A PE runs as `parallelism`
// independent instances (the paper's PEIs); each instance is one Operator
// object created by the PE's OperatorFactory. Operators are written once and
// run unchanged on both runtimes (deterministic LogicalRuntime for
// correctness, EventSimulator for cluster behaviour).

#ifndef PKGSTREAM_ENGINE_OPERATOR_H_
#define PKGSTREAM_ENGINE_OPERATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "engine/message.h"

namespace pkgstream {
namespace engine {

/// \brief Sink for messages an operator emits to its output stream.
class Emitter {
 public:
  virtual ~Emitter() = default;
  virtual void Emit(const Message& msg) = 0;
};

/// \brief Static facts an operator instance learns at Open().
struct OperatorContext {
  std::string pe_name;       ///< name of the PE this instance belongs to
  uint32_t instance = 0;     ///< this instance's index in [0, parallelism)
  uint32_t parallelism = 1;  ///< number of instances of this PE
};

/// \brief One processing element instance (PEI).
///
/// Lifecycle: Open -> {Process | Tick}* -> Close. All calls to a given
/// instance are serialized by the runtime (per-instance single-threaded
/// semantics, as in Storm executors).
class Operator {
 public:
  virtual ~Operator() = default;

  /// Called once before any message.
  virtual void Open(const OperatorContext& ctx) { (void)ctx; }

  /// Handles one input message; may emit any number of output messages.
  virtual void Process(const Message& msg, Emitter* out) = 0;

  /// Periodic timer callback (period configured on the topology; never
  /// called when no period is set). `now` is the runtime's clock: message
  /// index for LogicalRuntime, simulated microseconds for EventSimulator.
  virtual void Tick(uint64_t now, Emitter* out) {
    (void)now;
    (void)out;
  }

  /// End of stream: flush any buffered state downstream.
  virtual void Close(Emitter* out) { (void)out; }

  /// Number of live per-key state entries ("counters") this instance holds.
  /// Drives the paper's memory measurements (Figure 5b).
  virtual uint64_t MemoryCounters() const { return 0; }
};

/// \brief Creates the operator for instance `instance` of a PE.
using OperatorFactory = std::function<std::unique_ptr<Operator>(uint32_t)>;

}  // namespace engine
}  // namespace pkgstream

#endif  // PKGSTREAM_ENGINE_OPERATOR_H_
