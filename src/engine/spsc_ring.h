// Copyright 2026 The pkgstream Authors.
// Bounded lock-free single-producer / single-consumer ring buffer — the
// queueing substrate of ThreadedRuntime's hot path. A classic Lamport queue
// with cached peer indices (the Rigtorp SPSCQueue idiom): in steady state a
// push or pop touches only the thread's own index plus a cached copy of the
// peer's, so the two threads ping-pong no cache lines until the ring runs
// full or empty. Batch variants amortize even that refresh over many items.
//
// Progress guarantees: TryPush / TryPop are wait-free (a bounded number of
// steps, no CAS loops). Blocking policies (what to do when full or empty)
// are deliberately left to the caller — ThreadedRuntime combines a Backoff
// spin for producers with a parked-consumer wakeup protocol.

#ifndef PKGSTREAM_ENGINE_SPSC_RING_H_
#define PKGSTREAM_ENGINE_SPSC_RING_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <utility>

#include "common/bits.h"

namespace pkgstream {
namespace engine {

/// Cache-line size used for padding concurrency-hot data. 64 bytes is the
/// line size of x86-64 and mainstream AArch64 parts; over-padding on exotic
/// hosts costs a little memory, never correctness.
inline constexpr size_t kCacheLineSize = 64;

/// \brief A value alone on its cache line: prevents false sharing between
/// adjacent cells of an array (e.g. per-instance processed counters).
template <typename T>
struct alignas(kCacheLineSize) CacheLinePadded {
  T value{};
};

/// \brief Adaptive busy-wait: a few CPU-relax spins, then scheduler yields,
/// then short sleeps. Yielding early keeps the protocol live on
/// oversubscribed hosts (fewer cores than threads), where pure spinning
/// would starve the peer thread the spinner is waiting on.
class Backoff {
 public:
  void Pause() {
    ++pauses_;
    if (pauses_ <= kRelaxPauses) {
      CpuRelax();
    } else if (pauses_ <= kRelaxPauses + kYieldPauses) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }

  void Reset() { pauses_ = 0; }

  static void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#else
    std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
  }

 private:
  static constexpr uint32_t kRelaxPauses = 16;
  static constexpr uint32_t kYieldPauses = 64;
  uint32_t pauses_ = 0;
};

/// \brief Bounded lock-free SPSC ring.
///
/// Exactly one thread may call the producer side (TryPush / TryPushBatch)
/// and exactly one thread the consumer side (TryPop / TryPopBatch).
/// Capacity is rounded up to a power of two so index wrapping is a mask;
/// indices are free-running (unsigned overflow is defined and harmless).
template <typename T>
class SpscRing {
 public:
  /// Usable capacity is the smallest power of two >= max(min_capacity, 1).
  explicit SpscRing(size_t min_capacity)
      : capacity_(static_cast<size_t>(BitCeil(min_capacity ? min_capacity : 1))),
        mask_(capacity_ - 1),
        // lint:allow(hotpath-tokens): the one-time slot allocation at ring
        // construction; push/pop never allocate.
        slots_(new T[capacity_]) {}

  size_t capacity() const { return capacity_; }

  /// Producer: enqueues `item`; returns false (item untouched) when full.
  bool TryPush(T&& item) {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ >= capacity_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ >= capacity_) return false;
    }
    slots_[tail & mask_] = std::move(item);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Producer: enqueues a prefix of `items[0..n)`; returns how many were
  /// enqueued (the rest are untouched). One index publication per batch.
  size_t TryPushBatch(T* items, size_t n) {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    size_t free_slots = capacity_ - (tail - head_cache_);
    if (free_slots < n) {
      head_cache_ = head_.load(std::memory_order_acquire);
      free_slots = capacity_ - (tail - head_cache_);
    }
    const size_t count = n < free_slots ? n : free_slots;
    for (size_t i = 0; i < count; ++i) {
      slots_[(tail + i) & mask_] = std::move(items[i]);
    }
    if (count > 0) tail_.store(tail + count, std::memory_order_release);
    return count;
  }

  /// Any thread: approximate occupancy from relaxed loads of both indices.
  /// Exact when producer and consumer are quiescent; under concurrency the
  /// two loads may observe torn progress, so the result is clamped to
  /// [0, capacity()]. For depth reporting and idle heuristics only — never
  /// a correctness signal (use TryPop to actually test for items).
  size_t SizeApprox() const {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    const size_t head = head_.load(std::memory_order_relaxed);
    const size_t diff = tail - head;
    return diff > capacity_ ? capacity_ : diff;
  }

  /// Consumer: dequeues one item; returns false when empty.
  bool TryPop(T* out) { return TryPopBatch(out, 1) == 1; }

  /// Consumer: dequeues up to `max_n` items into `out`; returns the count.
  size_t TryPopBatch(T* out, size_t max_n) {
    const size_t head = head_.load(std::memory_order_relaxed);
    size_t avail = tail_cache_ - head;
    if (avail == 0) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      avail = tail_cache_ - head;
      if (avail == 0) return 0;
    }
    const size_t count = max_n < avail ? max_n : avail;
    for (size_t i = 0; i < count; ++i) {
      out[i] = std::move(slots_[(head + i) & mask_]);
    }
    head_.store(head + count, std::memory_order_release);
    return count;
  }

 private:
  // Consumer-owned line: pop index plus the cached producer index.
  alignas(kCacheLineSize) std::atomic<size_t> head_{0};
  size_t tail_cache_ = 0;
  // Producer-owned line: push index plus the cached consumer index.
  alignas(kCacheLineSize) std::atomic<size_t> tail_{0};
  size_t head_cache_ = 0;
  // Shared, read-only after construction.
  alignas(kCacheLineSize) const size_t capacity_;
  const size_t mask_;
  const std::unique_ptr<T[]> slots_;
};

}  // namespace engine
}  // namespace pkgstream

#endif  // PKGSTREAM_ENGINE_SPSC_RING_H_
