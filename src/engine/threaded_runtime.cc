// Copyright 2026 The pkgstream Authors.

#include "engine/threaded_runtime.h"

#include "common/logging.h"

namespace pkgstream {
namespace engine {

/// Emitter bound to one instance: routes synchronously on the caller
/// (executor) thread. Blocking on a full downstream inbox provides
/// backpressure; DAG structure guarantees no cyclic wait.
class ThreadedRuntime::InstanceEmitter final : public Emitter {
 public:
  InstanceEmitter(ThreadedRuntime* rt, uint32_t node, uint32_t instance)
      : rt_(rt), node_(node), instance_(instance) {}

  void Emit(const Message& msg) override {
    rt_->RouteFrom(node_, instance_, msg);
  }

 private:
  ThreadedRuntime* rt_;
  uint32_t node_;
  uint32_t instance_;
};

Result<std::unique_ptr<ThreadedRuntime>> ThreadedRuntime::Create(
    const Topology* topology, ThreadedRuntimeOptions options) {
  PKGSTREAM_CHECK(topology != nullptr);
  if (options.queue_capacity < 1) {
    return Status::InvalidArgument("queue capacity must be >= 1");
  }
  PKGSTREAM_RETURN_NOT_OK(topology->Validate());
  for (const auto& node : topology->nodes()) {
    if (!node.is_spout && node.tick_period != 0) {
      return Status::InvalidArgument(
          "ThreadedRuntime does not support tick periods (PE '" + node.name +
          "'); flush in Close or inject punctuation messages");
    }
  }
  auto rt = std::unique_ptr<ThreadedRuntime>(
      new ThreadedRuntime(topology, options));
  PKGSTREAM_RETURN_NOT_OK(rt->Init());
  return rt;
}

ThreadedRuntime::ThreadedRuntime(const Topology* topology,
                                 ThreadedRuntimeOptions options)
    : topology_(topology), options_(options) {}

Status ThreadedRuntime::Init() {
  const auto& nodes = topology_->nodes();
  for (const auto& edge : topology_->edges()) {
    PKGSTREAM_ASSIGN_OR_RETURN(auto p,
                               partition::MakePartitioner(edge.partitioner));
    edge_partitioners_.push_back(std::move(p));
    edge_mutexes_.push_back(std::make_unique<std::mutex>());
  }
  ops_.resize(nodes.size());
  inboxes_.resize(nodes.size());
  processed_ = std::vector<std::vector<std::atomic<uint64_t>>>(nodes.size());
  for (uint32_t n = 0; n < nodes.size(); ++n) {
    processed_[n] = std::vector<std::atomic<uint64_t>>(nodes[n].parallelism);
    for (auto& c : processed_[n]) c.store(0, std::memory_order_relaxed);
    if (nodes[n].is_spout) continue;
    for (uint32_t i = 0; i < nodes[n].parallelism; ++i) {
      auto op = nodes[n].factory(i);
      PKGSTREAM_CHECK(op != nullptr);
      OperatorContext ctx;
      ctx.pe_name = nodes[n].name;
      ctx.instance = i;
      ctx.parallelism = nodes[n].parallelism;
      op->Open(ctx);
      ops_[n].push_back(std::move(op));
      inboxes_[n].push_back(std::make_unique<Inbox>(options_.queue_capacity));
    }
  }
  // Threads last: everything they touch is in place.
  for (uint32_t n = 0; n < nodes.size(); ++n) {
    if (nodes[n].is_spout) continue;
    for (uint32_t i = 0; i < nodes[n].parallelism; ++i) {
      threads_.emplace_back([this, n, i] { RunInstance(n, i); });
    }
  }
  return Status::OK();
}

ThreadedRuntime::~ThreadedRuntime() { Finish(); }

uint32_t ThreadedRuntime::UpstreamInstances(uint32_t node) const {
  uint32_t total = 0;
  for (const auto& edge : topology_->edges()) {
    if (edge.to.index == node) {
      total += topology_->nodes()[edge.from.index].parallelism;
    }
  }
  return total;
}

void ThreadedRuntime::RunInstance(uint32_t node, uint32_t instance) {
  const uint32_t expected_eos = UpstreamInstances(node);
  uint32_t eos_seen = 0;
  InstanceEmitter emitter(this, node, instance);
  Inbox& inbox = *inboxes_[node][instance];
  while (eos_seen < expected_eos) {
    Item item = inbox.Pop();
    if (item.eos) {
      ++eos_seen;
      continue;
    }
    processed_[node][instance].fetch_add(1, std::memory_order_relaxed);
    ops_[node][instance]->Process(item.msg, &emitter);
  }
  ops_[node][instance]->Close(&emitter);
  SendEos(node, instance);
}

void ThreadedRuntime::RouteFrom(uint32_t node, uint32_t instance,
                                const Message& msg) {
  const auto& edges = topology_->edges();
  for (uint32_t e = 0; e < edges.size(); ++e) {
    if (edges[e].from.index != node) continue;
    WorkerId w;
    {
      std::lock_guard<std::mutex> lock(*edge_mutexes_[e]);
      w = edge_partitioners_[e]->Route(instance, msg.key);
    }
    Item item;
    item.msg = msg;
    inboxes_[edges[e].to.index][w]->Push(std::move(item));
  }
}

void ThreadedRuntime::SendEos(uint32_t node, uint32_t instance) {
  (void)instance;
  const auto& edges = topology_->edges();
  for (uint32_t e = 0; e < edges.size(); ++e) {
    if (edges[e].from.index != node) continue;
    const uint32_t downstream = edges[e].to.index;
    for (uint32_t w = 0; w < topology_->nodes()[downstream].parallelism;
         ++w) {
      Item item;
      item.eos = true;
      inboxes_[downstream][w]->Push(std::move(item));
    }
  }
}

void ThreadedRuntime::Inject(NodeId spout, SourceId source,
                             const Message& msg) {
  PKGSTREAM_CHECK(!finished_) << "Inject after Finish";
  PKGSTREAM_CHECK(spout.index < topology_->nodes().size());
  PKGSTREAM_CHECK(topology_->nodes()[spout.index].is_spout);
  processed_[spout.index][source].fetch_add(1, std::memory_order_relaxed);
  RouteFrom(spout.index, source, msg);
}

void ThreadedRuntime::Finish() {
  if (finished_) return;
  finished_ = true;
  // EOS from every spout instance; operators cascade EOS as they close.
  const auto& nodes = topology_->nodes();
  for (uint32_t n = 0; n < nodes.size(); ++n) {
    if (!nodes[n].is_spout) continue;
    for (uint32_t i = 0; i < nodes[n].parallelism; ++i) SendEos(n, i);
  }
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

std::vector<uint64_t> ThreadedRuntime::Processed(NodeId node) const {
  PKGSTREAM_CHECK(node.index < processed_.size());
  std::vector<uint64_t> out;
  for (const auto& c : processed_[node.index]) {
    out.push_back(c.load(std::memory_order_relaxed));
  }
  return out;
}

Operator* ThreadedRuntime::GetOperator(NodeId node, uint32_t instance) {
  PKGSTREAM_CHECK(finished_) << "operators are live until Finish()";
  PKGSTREAM_CHECK(node.index < ops_.size());
  PKGSTREAM_CHECK(instance < ops_[node.index].size());
  return ops_[node.index][instance].get();
}

}  // namespace engine
}  // namespace pkgstream
