// Copyright 2026 The pkgstream Authors.

#include "engine/threaded_runtime.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "engine/cpu_affinity.h"
#include "partition/factory.h"

namespace pkgstream {
namespace engine {

/// Emitter bound to one instance: routes synchronously on the caller
/// (executor) thread. Blocking on a full downstream ring provides
/// backpressure; DAG structure guarantees no cyclic wait.
class ThreadedRuntime::InstanceEmitter final : public Emitter {
 public:
  InstanceEmitter(ThreadedRuntime* rt, uint32_t node, uint32_t instance)
      : rt_(rt), node_(node), instance_(instance) {}

  void Emit(const Message& msg) override {
    rt_->RouteFrom(node_, instance_, msg);
  }

 private:
  ThreadedRuntime* rt_;
  uint32_t node_;
  uint32_t instance_;
};

/// One operator instance as scheduled by its owning shard. All fields are
/// shard-thread-local (the owning thread is the instance's only consumer
/// and only executor), so none need atomics — except `processed`, which
/// points at the runtime-wide padded cell readers poll via Processed().
struct ThreadedRuntime::ShardInstance {
  uint32_t node = 0;
  uint32_t instance = 0;
  uint32_t expected_eos = 0;
  uint32_t eos_seen = 0;
  /// Mid-Process on this shard's call stack (drain or nested help-drain);
  /// guards against re-entering a suspended instance.
  bool active = false;
  /// Closed and EOS forwarded; nothing left to do.
  bool done = false;
  Operator* op = nullptr;
  Mailbox* mailbox = nullptr;
  std::atomic<uint64_t>* processed = nullptr;
  std::unique_ptr<InstanceEmitter> emitter;
};

/// One shard thread's contiguous, topology-ordered slice of instances,
/// plus the gate every owned mailbox wakes.
struct ThreadedRuntime::ShardState {
  ThreadedRuntime* runtime = nullptr;
  uint32_t index = 0;
  std::vector<ShardInstance> instances;
  /// Owned instances not yet done; the shard thread exits at 0.
  size_t remaining = 0;
  /// Sweep rotation (fairness: a different instance leads each sweep).
  size_t cursor = 0;
  ConsumerGate gate;
};

thread_local ThreadedRuntime::ShardState* ThreadedRuntime::tls_shard_ =
    nullptr;

Result<std::unique_ptr<ThreadedRuntime>> ThreadedRuntime::Create(
    const Topology* topology, ThreadedRuntimeOptions options) {
  PKGSTREAM_CHECK(topology != nullptr);
  if (options.queue_capacity < 1) {
    return Status::InvalidArgument("queue capacity must be >= 1");
  }
  if (options.emit_batch < 1) {
    return Status::InvalidArgument("emit batch must be >= 1");
  }
  PKGSTREAM_RETURN_NOT_OK(topology->Validate());
  for (const auto& node : topology->nodes()) {
    if (!node.is_spout && node.tick_period != 0) {
      return Status::InvalidArgument(
          "ThreadedRuntime does not support tick periods (PE '" + node.name +
          "'); flush in Close or inject punctuation messages");
    }
  }
  auto rt = std::unique_ptr<ThreadedRuntime>(
      new ThreadedRuntime(topology, options));
  PKGSTREAM_RETURN_NOT_OK(rt->Init());
  return rt;
}

ThreadedRuntime::ThreadedRuntime(const Topology* topology,
                                 ThreadedRuntimeOptions options)
    : topology_(topology), options_(options) {}

void ThreadedRuntime::ComputeTopoRanks() {
  const auto& nodes = topology_->nodes();
  const auto& edges = topology_->edges();
  topo_rank_.assign(nodes.size(), 0);
  // Longest-path layering by bounded relaxation: Validate() guaranteed
  // acyclicity, node counts are tiny, and this runs once at Init.
  for (size_t pass = 0; pass < nodes.size(); ++pass) {
    bool changed = false;
    for (const auto& edge : edges) {
      if (topo_rank_[edge.to.index] < topo_rank_[edge.from.index] + 1) {
        topo_rank_[edge.to.index] = topo_rank_[edge.from.index] + 1;
        changed = true;
      }
    }
    if (!changed) break;
  }
}

Status ThreadedRuntime::Init() {
  const auto& nodes = topology_->nodes();
  const auto& edges = topology_->edges();
  ComputeTopoRanks();

  // Edge plumbing: one partitioner replica per upstream instance, and a
  // dense producer-ring numbering per downstream node (inbound edges in
  // topology order, instances in index order within each edge).
  edge_replicas_.resize(edges.size());
  edge_producer_base_.resize(edges.size());
  out_edges_.resize(nodes.size());
  out_buffers_.resize(edges.size());
  applied_epochs_.resize(edges.size());
  upstream_counts_.assign(nodes.size(), 0);
  for (uint32_t e = 0; e < edges.size(); ++e) {
    const uint32_t upstream = nodes[edges[e].from.index].parallelism;
    PKGSTREAM_ASSIGN_OR_RETURN(
        edge_replicas_[e],
        partition::MakePartitionerReplicas(edges[e].partitioner, upstream));
    edge_reconfig_.push_back(std::make_unique<EdgeReconfig>());
    applied_epochs_[e].assign(upstream, 0);
    edge_producer_base_[e] = upstream_counts_[edges[e].to.index];
    upstream_counts_[edges[e].to.index] += upstream;
    out_edges_[edges[e].from.index].push_back(e);
    if (options_.emit_batch > 1) {
      const uint32_t downstream = nodes[edges[e].to.index].parallelism;
      out_buffers_[e] =
          std::vector<OutBuffer>(static_cast<size_t>(upstream) * downstream);
      for (OutBuffer& buf : out_buffers_[e]) {
        buf.items = std::make_unique<Item[]>(options_.emit_batch);
      }
    }
  }

  ops_.resize(nodes.size());
  mailboxes_.resize(nodes.size());
  inject_mutexes_.resize(nodes.size());
  processed_base_.resize(nodes.size());
  size_t total_instances = 0;
  for (uint32_t n = 0; n < nodes.size(); ++n) {
    processed_base_[n] = total_instances;
    total_instances += nodes[n].parallelism;
  }
  processed_ =
      std::vector<CacheLinePadded<std::atomic<uint64_t>>>(total_instances);

  // Shard plan: contiguous slices of the node-major operator-instance
  // list (instance g of T goes to shard g*S/T — balanced within one, and
  // same-stage instances pack together because the list is node-major).
  // Built before the mailboxes so each mailbox can point at its
  // consumer's gate: the owning shard's in sharded mode, its own in
  // thread-per-instance mode.
  size_t op_instances = 0;
  for (uint32_t n = 0; n < nodes.size(); ++n) {
    if (!nodes[n].is_spout) op_instances += nodes[n].parallelism;
  }
  const size_t shard_count =
      options_.shards == 0 ? 0 : std::min(options_.shards, op_instances);
  for (size_t s = 0; s < shard_count; ++s) {
    shards_.push_back(std::make_unique<ShardState>());
    shards_[s]->runtime = this;
    shards_[s]->index = static_cast<uint32_t>(s);
  }
  instance_gates_.resize(shard_count == 0 ? total_instances : 0);

  size_t next_op_instance = 0;  // node-major index into the shard plan
  for (uint32_t n = 0; n < nodes.size(); ++n) {
    if (nodes[n].is_spout) {
      for (uint32_t i = 0; i < nodes[n].parallelism; ++i) {
        inject_mutexes_[n].push_back(std::make_unique<std::mutex>());
      }
      continue;
    }
    for (uint32_t i = 0; i < nodes[n].parallelism; ++i) {
      auto op = nodes[n].factory(i);
      PKGSTREAM_CHECK(op != nullptr);
      OperatorContext ctx;
      ctx.pe_name = nodes[n].name;
      ctx.instance = i;
      ctx.parallelism = nodes[n].parallelism;
      op->Open(ctx);
      ops_[n].push_back(std::move(op));
      ConsumerGate* gate;
      if (shard_count > 0) {
        gate = &shards_[next_op_instance * shard_count / op_instances]->gate;
      } else {
        auto& slot = instance_gates_[processed_base_[n] + i];
        slot = std::make_unique<ConsumerGate>();
        gate = slot.get();
      }
      mailboxes_[n].push_back(std::make_unique<Mailbox>(
          upstream_counts_[n], options_.queue_capacity, gate));
      ++next_op_instance;
    }
  }

  // Shard slices, same node-major order as the gate assignment above;
  // every pointer a ShardInstance captures is in its final place now.
  if (shard_count > 0) {
    size_t g = 0;
    for (uint32_t n = 0; n < nodes.size(); ++n) {
      if (nodes[n].is_spout) continue;
      for (uint32_t i = 0; i < nodes[n].parallelism; ++i, ++g) {
        ShardState& st = *shards_[g * shard_count / op_instances];
        ShardInstance si;
        si.node = n;
        si.instance = i;
        si.expected_eos = upstream_counts_[n];
        si.op = ops_[n][i].get();
        si.mailbox = mailboxes_[n][i].get();
        si.processed = &processed_[processed_base_[n] + i].value;
        si.emitter = std::make_unique<InstanceEmitter>(this, n, i);
        st.instances.push_back(std::move(si));
        ++st.remaining;
      }
    }
  }

  // Threads last: everything they touch is in place. Each thread counts
  // itself out on exit so the finish-deadline poll can tell a slow drain
  // from a wedged one.
  if (shard_count > 0) {
    for (uint32_t s = 0; s < shard_count; ++s) {
      threads_.emplace_back([this, s] {
        RunShard(s);
        threads_exited_.fetch_add(1, std::memory_order_release);
      });
    }
  } else {
    for (uint32_t n = 0; n < nodes.size(); ++n) {
      if (nodes[n].is_spout) continue;
      for (uint32_t i = 0; i < nodes[n].parallelism; ++i) {
        threads_.emplace_back([this, n, i] {
          RunInstance(n, i);
          threads_exited_.fetch_add(1, std::memory_order_release);
        });
      }
    }
  }
  started_ = true;
  return Status::OK();
}

ThreadedRuntime::~ThreadedRuntime() { Finish(); }

void ThreadedRuntime::RunInstance(uint32_t node, uint32_t instance) {
  const uint32_t expected_eos = UpstreamInstances(node);
  uint32_t eos_seen = 0;
  InstanceEmitter emitter(this, node, instance);
  Mailbox& mailbox = *mailboxes_[node][instance];
  Operator* op = ops_[node][instance].get();
  std::atomic<uint64_t>& processed =
      processed_[processed_base_[node] + instance].value;
  Item batch[kPopBatch];
  while (eos_seen < expected_eos) {
    const size_t n = mailbox.PopBatch(batch, kPopBatch, aborted_);
    if (n == 0) {
      // Abort while every ring was empty: exit without Close/EOS — an
      // aborted run's downstream consumers may already be gone.
      return;
    }
    uint64_t handled = 0;
    for (size_t i = 0; i < n; ++i) {
      if (batch[i].eos) {
        ++eos_seen;
        continue;
      }
      ++handled;
      op->Process(batch[i].msg, &emitter);
    }
    if (handled > 0) processed.fetch_add(handled, std::memory_order_relaxed);
    // Publish whatever this round emitted: bounded staleness (a consumer
    // never idles on messages parked here across a blocking PopBatch).
    FlushOutBuffers(node, instance);
  }
  op->Close(&emitter);
  FlushOutBuffers(node, instance);
  SendEos(node, instance);
}

bool ThreadedRuntime::DrainInstanceOnce(ShardState& st, ShardInstance& si) {
  if (si.done || si.active) return false;
  Item batch[kPopBatch];
  const size_t n = si.mailbox->TryPopBatch(batch, kPopBatch);
  if (n == 0 && si.eos_seen < si.expected_eos) return false;
  // Mirrors one RunInstance round exactly: Process the batch, bump the
  // per-instance counter once, flush this instance's out-buffers. `active`
  // spans the whole round because Process may block pushing downstream and
  // re-enter the shard loop through ShardHelpDrain.
  si.active = true;
  uint64_t handled = 0;
  for (size_t i = 0; i < n; ++i) {
    if (batch[i].eos) {
      ++si.eos_seen;
      continue;
    }
    ++handled;
    si.op->Process(batch[i].msg, si.emitter.get());
  }
  if (handled > 0) {
    si.processed->fetch_add(handled, std::memory_order_relaxed);
  }
  FlushOutBuffers(si.node, si.instance);
  if (si.eos_seen >= si.expected_eos) {
    // Last upstream EOS: every producer ring is fully drained (EOS is the
    // final item of its ring), so close exactly as RunInstance would.
    si.op->Close(si.emitter.get());
    FlushOutBuffers(si.node, si.instance);
    SendEos(si.node, si.instance);
    si.done = true;
    --st.remaining;
  }
  si.active = false;
  return true;
}

bool ThreadedRuntime::ShardHelpDrain(ShardState& st, uint32_t from_rank) {
  bool any = false;
  for (ShardInstance& si : st.instances) {
    // Strictly greater rank only: the nested active stack is strictly
    // increasing in stage, so its depth is bounded by the stage count and
    // a blocked producer can never be re-entered (see the header's file
    // comment for the progress argument).
    if (topo_rank_[si.node] <= from_rank) continue;
    any |= DrainInstanceOnce(st, si);
  }
  return any;
}

void ThreadedRuntime::RunShard(uint32_t shard) {
  ShardState& st = *shards_[shard];
  if (options_.pin_shards) {
    // Best-effort; a failed pin only costs locality, never correctness.
    CpuAffinity::PinCurrentThread(st.index);
  }
  tls_shard_ = &st;
  uint32_t idle_sweeps = 0;
  while (st.remaining > 0 &&
         !aborted_.load(std::memory_order_acquire)) {
    // Rotate the sweep start so no owned instance is systematically
    // drained last (the instance-thread analogue is the mailbox cursor).
    const size_t n = st.instances.size();
    st.cursor = (st.cursor + 1) % n;
    bool progress = false;
    for (size_t i = 0; i < n && st.remaining > 0; ++i) {
      progress |= DrainInstanceOnce(st, st.instances[(st.cursor + i) % n]);
    }
    if (progress) {
      idle_sweeps = 0;
      continue;
    }
    ++idle_sweeps;
    if (idle_sweeps <= kShardRelaxSweeps) {
      Backoff::CpuRelax();
    } else if (idle_sweeps <= kShardSpinSweeps) {
      std::this_thread::yield();
    } else {
      // Shard-granularity park: producers into any owned mailbox wake
      // this gate. Re-check after BeginPark (SizeApprox suffices — a
      // missed publication costs one bounded 200us wait, same contract as
      // the instance-thread park).
      st.gate.BeginPark();
      bool pending = false;
      for (const ShardInstance& si : st.instances) {
        if (!si.done && si.mailbox->SizeApprox() > 0) {
          pending = true;
          break;
        }
      }
      if (!pending) st.gate.WaitBriefly();
      st.gate.EndPark();
      idle_sweeps = 0;
    }
  }
  tls_shard_ = nullptr;
}

void ThreadedRuntime::PushBlocking(uint32_t from_node, Mailbox& mailbox,
                                   uint32_t producer, Item* items, size_t n) {
  ShardState* shard = tls_shard_;
  if (shard != nullptr && shard->runtime != this) shard = nullptr;
  size_t done = 0;
  Backoff backoff;
  while (done < n) {
    const size_t pushed = mailbox.TryPushBatch(producer, items + done,
                                               n - done);
    if (pushed > 0) {
      done += pushed;
      backoff.Reset();
      continue;
    }
    // Aborted run: the consumer of this full ring may already have
    // exited, so the push could never complete — drop the remainder.
    if (aborted_.load(std::memory_order_acquire)) return;
    // Full ring. A shard thread makes its own progress instead of pure
    // waiting: drain owned instances strictly downstream of the blocked
    // producer (they may be exactly what the full ring is waiting on).
    // Instance threads and injectors keep the plain backoff.
    if (shard != nullptr && ShardHelpDrain(*shard, topo_rank_[from_node])) {
      backoff.Reset();
      continue;
    }
    backoff.Pause();
  }
}

void ThreadedRuntime::MaybeApplyReconfig(uint32_t e, uint32_t instance) {
  EdgeReconfig& rc = *edge_reconfig_[e];
  const uint64_t epoch = rc.epoch.load(std::memory_order_acquire);
  if (epoch == applied_epochs_[e][instance]) return;
  std::vector<bool> alive;
  uint64_t seen;
  {
    std::lock_guard<std::mutex> lock(rc.mu);
    alive = rc.alive;
    // Re-read under the lock: a newer epoch may have landed since the
    // unlocked load, and its alive set is what we just copied. Recording
    // the newer number with the newer set keeps the pair consistent.
    seen = rc.epoch.load(std::memory_order_relaxed);
  }
  // ReconfigureWorkers validated the set against replica 0 of this edge;
  // all replicas share a type, so application cannot fail.
  PKGSTREAM_CHECK_OK(edge_replicas_[e][instance]->SetWorkerSet(alive));
  applied_epochs_[e][instance] = seen;
}

void ThreadedRuntime::RouteFrom(uint32_t node, uint32_t instance,
                                Message msg) {
  const std::vector<uint32_t>& out = out_edges_[node];
  for (size_t k = 0; k < out.size(); ++k) {
    const uint32_t e = out[k];
    MaybeApplyReconfig(e, instance);
    const WorkerId w = edge_replicas_[e][instance]->Route(instance, msg.key);
    Item item;
    if (k + 1 == out.size()) {
      item.msg = std::move(msg);  // last edge owns it; fan-out copied
    } else {
      item.msg = msg;
    }
    EnqueueRouted(e, instance, w, std::move(item));
  }
}

void ThreadedRuntime::RouteBatchFrom(uint32_t node, uint32_t instance,
                                     const Message* msgs, size_t n) {
  constexpr size_t kChunk = 256;
  Key keys[kChunk];
  WorkerId workers[kChunk];
  const std::vector<uint32_t>& out = out_edges_[node];
  // Epoch check once per injected batch (the documented batch-boundary
  // granularity), not per chunk: one batch routes under one worker set.
  for (uint32_t e : out) MaybeApplyReconfig(e, instance);
  size_t done = 0;
  while (done < n) {
    const size_t len = std::min(kChunk, n - done);
    for (size_t j = 0; j < len; ++j) keys[j] = msgs[done + j].key;
    for (uint32_t e : out) {
      // Each edge's replica consumes the same key order as scalar
      // injection; per-(edge, destination) FIFO is preserved because
      // items are enqueued in index order.
      edge_replicas_[e][instance]->RouteBatch(instance, keys, workers, len);
      for (size_t j = 0; j < len; ++j) {
        Item item;
        item.msg = msgs[done + j];
        EnqueueRouted(e, instance, workers[j], std::move(item));
      }
    }
    done += len;
  }
}

void ThreadedRuntime::EnqueueRouted(uint32_t edge, uint32_t instance,
                                    WorkerId worker, Item item) {
  const auto& edges = topology_->edges();
  if (options_.emit_batch > 1) {
    const uint32_t downstream_parallelism =
        topology_->nodes()[edges[edge].to.index].parallelism;
    OutBuffer& buf =
        out_buffers_[edge][static_cast<size_t>(instance) *
                               downstream_parallelism +
                           worker];
    buf.items[buf.count++] = std::move(item);
    if (buf.count == options_.emit_batch) FlushBuffer(edge, instance, worker);
  } else {
    Item one[1] = {std::move(item)};
    PushBlocking(edges[edge].from.index,
                 *mailboxes_[edges[edge].to.index][worker],
                 edge_producer_base_[edge] + instance, one, 1);
  }
}

void ThreadedRuntime::FlushBuffer(uint32_t edge, uint32_t instance,
                                  WorkerId worker) {
  const auto& edges = topology_->edges();
  const uint32_t downstream_parallelism =
      topology_->nodes()[edges[edge].to.index].parallelism;
  OutBuffer& buf =
      out_buffers_[edge][static_cast<size_t>(instance) *
                             downstream_parallelism +
                         worker];
  if (buf.count == 0) return;
  PushBlocking(edges[edge].from.index,
               *mailboxes_[edges[edge].to.index][worker],
               edge_producer_base_[edge] + instance, buf.items.get(),
               buf.count);
  buf.count = 0;
}

void ThreadedRuntime::FlushOutBuffers(uint32_t node, uint32_t instance) {
  if (options_.emit_batch <= 1) return;
  for (uint32_t e : out_edges_[node]) {
    const uint32_t downstream_parallelism =
        topology_->nodes()[topology_->edges()[e].to.index].parallelism;
    for (WorkerId w = 0; w < downstream_parallelism; ++w) {
      FlushBuffer(e, instance, w);
    }
  }
}

void ThreadedRuntime::SendEos(uint32_t node, uint32_t instance) {
  const auto& edges = topology_->edges();
  for (uint32_t e : out_edges_[node]) {
    const uint32_t downstream = edges[e].to.index;
    for (uint32_t w = 0; w < topology_->nodes()[downstream].parallelism;
         ++w) {
      Item item[1];
      item[0].eos = true;
      PushBlocking(node, *mailboxes_[downstream][w],
                   edge_producer_base_[e] + instance, item, 1);
    }
  }
}

void ThreadedRuntime::Inject(NodeId spout, SourceId source, Message msg) {
  PKGSTREAM_CHECK(!finished_.load(std::memory_order_acquire))
      << "Inject after Finish";
  PKGSTREAM_CHECK(spout.index < topology_->nodes().size());
  PKGSTREAM_CHECK(topology_->nodes()[spout.index].is_spout);
  PKGSTREAM_CHECK(source < topology_->nodes()[spout.index].parallelism);
  // Each spout instance is one logical producer: its partitioner replicas
  // and rings are single-threaded state, so concurrent Inject calls for
  // the same source serialize here (uncontended in the canonical
  // one-thread-per-source arrangement).
  std::lock_guard<std::mutex> lock(*inject_mutexes_[spout.index][source]);
  // Re-validate under the lock: Finish() may have won the race since the
  // unlocked check above and already sent this source's EOS, in which
  // case pushing would silently lose the message (or hang on a full ring
  // nobody drains). Failing loudly keeps the must-not-race contract
  // checkable.
  PKGSTREAM_CHECK(!finished_.load(std::memory_order_acquire))
      << "Inject raced with Finish";
  processed_[processed_base_[spout.index] + source].value.fetch_add(
      1, std::memory_order_relaxed);
  RouteFrom(spout.index, source, std::move(msg));
}

void ThreadedRuntime::InjectBatch(NodeId spout, SourceId source,
                                  const Message* msgs, size_t n) {
  PKGSTREAM_CHECK(!finished_.load(std::memory_order_acquire))
      << "Inject after Finish";
  PKGSTREAM_CHECK(spout.index < topology_->nodes().size());
  PKGSTREAM_CHECK(topology_->nodes()[spout.index].is_spout);
  PKGSTREAM_CHECK(source < topology_->nodes()[spout.index].parallelism);
  if (n == 0) return;  // validated no-op, same as LogicalRuntime's
  // One lock acquisition, one counter update and one RouteBatch per
  // outbound edge cover the whole batch (see Inject for the locking
  // contract).
  std::lock_guard<std::mutex> lock(*inject_mutexes_[spout.index][source]);
  PKGSTREAM_CHECK(!finished_.load(std::memory_order_acquire))
      << "Inject raced with Finish";
  processed_[processed_base_[spout.index] + source].value.fetch_add(
      n, std::memory_order_relaxed);
  RouteBatchFrom(spout.index, source, msgs, n);
}

Status ThreadedRuntime::ReconfigureWorkers(NodeId downstream,
                                           const std::vector<bool>& alive) {
  const auto& nodes = topology_->nodes();
  const auto& edges = topology_->edges();
  if (downstream.index >= nodes.size()) {
    return Status::InvalidArgument("reconfigure of unknown node " +
                                   std::to_string(downstream.index));
  }
  if (alive.size() != nodes[downstream.index].parallelism) {
    return Status::InvalidArgument(
        "worker set size " + std::to_string(alive.size()) + " != " +
        std::to_string(nodes[downstream.index].parallelism) +
        " instances of '" + nodes[downstream.index].name + "'");
  }
  uint32_t alive_count = 0;
  for (bool a : alive) alive_count += a ? 1 : 0;
  if (alive_count == 0) {
    return Status::InvalidArgument("worker set has zero alive workers");
  }
  if (finished_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("reconfigure after Finish");
  }
  // Validate every inbound edge before publishing to any: a partial
  // reconfiguration (edge A degraded, edge B refused) would be worse than
  // either outcome.
  bool any_edge = false;
  for (uint32_t e = 0; e < edges.size(); ++e) {
    if (edges[e].to.index != downstream.index) continue;
    any_edge = true;
    if (!edge_replicas_[e][0]->SupportsReconfiguration()) {
      return Status::Unimplemented(
          "partitioner '" + edge_replicas_[e][0]->Name() + "' on edge into '" +
          nodes[downstream.index].name + "' does not support reconfiguration");
    }
  }
  if (!any_edge) {
    return Status::InvalidArgument("node '" + nodes[downstream.index].name +
                                   "' has no inbound edges to reconfigure");
  }
  for (uint32_t e = 0; e < edges.size(); ++e) {
    if (edges[e].to.index != downstream.index) continue;
    EdgeReconfig& rc = *edge_reconfig_[e];
    std::lock_guard<std::mutex> lock(rc.mu);
    rc.alive = alive;
    rc.epoch.fetch_add(1, std::memory_order_release);
  }
  return Status::OK();
}

void ThreadedRuntime::Abort() {
  aborted_.store(true, std::memory_order_release);
  if (!started_) return;
  // Nudge every parked consumer; unparked ones observe the flag in their
  // spin loops, parked ones at worst on the 200us bounded wait.
  for (const auto& gate : instance_gates_) {
    if (gate != nullptr) gate->MaybeWake();
  }
  for (const auto& shard : shards_) shard->gate.MaybeWake();
}

void ThreadedRuntime::DumpStuckState() {
  const auto& nodes = topology_->nodes();
  for (uint32_t n = 0; n < nodes.size(); ++n) {
    if (nodes[n].is_spout) continue;
    for (uint32_t i = 0; i < nodes[n].parallelism; ++i) {
      PKGSTREAM_LOG(Error)
          << "finish deadline: '" << nodes[n].name << "' instance " << i
          << " ring occupancy ~" << mailboxes_[n][i]->SizeApprox()
          << ", processed "
          << processed_[processed_base_[n] + i].value.load(
                 std::memory_order_relaxed);
    }
  }
  PKGSTREAM_LOG(Error) << "finish deadline: " << threads_exited_.load()
                       << "/" << threads_.size() << " executor threads exited";
}

void ThreadedRuntime::Finish() {
  std::call_once(finish_once_, [this] {
    finished_.store(true, std::memory_order_release);
    // A failed Init() leaves no threads and possibly no mailboxes or
    // inject mutexes; there is nothing to drain.
    if (!started_) return;
    // EOS from every spout instance; operators cascade EOS as they close.
    const auto& nodes = topology_->nodes();
    for (uint32_t n = 0; n < nodes.size(); ++n) {
      if (!nodes[n].is_spout) continue;
      for (uint32_t i = 0; i < nodes[n].parallelism; ++i) {
        // The inject mutex orders this flush after every completed Inject
        // for the source; its out-buffers are quiesced here.
        std::lock_guard<std::mutex> lock(*inject_mutexes_[n][i]);
        FlushOutBuffers(n, i);
        SendEos(n, i);
      }
    }
    if (options_.finish_deadline_ms > 0) {
      // Poll the exit counter instead of joining blind: a wedged executor
      // becomes a loud, diagnosable failure instead of a ctest timeout.
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::milliseconds(options_.finish_deadline_ms);
      while (threads_exited_.load(std::memory_order_acquire) <
             threads_.size()) {
        if (std::chrono::steady_clock::now() >= deadline) {
          DumpStuckState();
          PKGSTREAM_LOG(Fatal)
              << "Finish() exceeded finish_deadline_ms="
              << options_.finish_deadline_ms
              << " — executor threads wedged (ring dump above)";
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    for (auto& t : threads_) {
      if (t.joinable()) t.join();
    }
    drained_.store(true, std::memory_order_release);
  });
}

std::vector<uint64_t> ThreadedRuntime::Processed(NodeId node) const {
  PKGSTREAM_CHECK(node.index < processed_base_.size());
  std::vector<uint64_t> out;
  const uint32_t parallelism = topology_->nodes()[node.index].parallelism;
  for (uint32_t i = 0; i < parallelism; ++i) {
    out.push_back(processed_[processed_base_[node.index] + i].value.load(
        std::memory_order_relaxed));
  }
  return out;
}

size_t ThreadedRuntime::ApproxInboxDepth(NodeId node) const {
  PKGSTREAM_CHECK(node.index < mailboxes_.size());
  size_t total = 0;
  for (const auto& mailbox : mailboxes_[node.index]) {
    total += mailbox->SizeApprox();
  }
  return total;
}

Operator* ThreadedRuntime::GetOperator(NodeId node, uint32_t instance) {
  // Gate on drained_, not finished_: finished_ goes up at the *start* of
  // shutdown, while executor threads may still be mutating operators.
  PKGSTREAM_CHECK(drained_.load(std::memory_order_acquire))
      << "operators are live until Finish() completes";
  PKGSTREAM_CHECK(node.index < ops_.size());
  PKGSTREAM_CHECK(instance < ops_[node.index].size());
  return ops_[node.index][instance].get();
}

const partition::Partitioner* ThreadedRuntime::GetPartitioner(
    NodeId from, NodeId to, uint32_t source_instance) const {
  // Same gate as GetOperator: replicas are mutated by producer threads
  // (routing state, reconfig application) until the drain completes.
  PKGSTREAM_CHECK(drained_.load(std::memory_order_acquire))
      << "partitioner replicas are live until Finish() completes";
  const auto& edges = topology_->edges();
  for (uint32_t e = 0; e < edges.size(); ++e) {
    if (edges[e].from.index != from.index || edges[e].to.index != to.index) {
      continue;
    }
    PKGSTREAM_CHECK(source_instance < edge_replicas_[e].size());
    return edge_replicas_[e][source_instance].get();
  }
  PKGSTREAM_CHECK(false) << "no edge " << from.index << " -> " << to.index;
  return nullptr;
}

}  // namespace engine
}  // namespace pkgstream
