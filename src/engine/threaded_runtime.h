// Copyright 2026 The pkgstream Authors.
// ThreadedRuntime: the same operator API as LogicalRuntime, executed on
// real threads — one executor thread per operator instance with bounded
// inboxes, exactly Storm's executor model in-process. The deterministic
// LogicalRuntime defines the reference semantics; this runtime exists to
// demonstrate (and test) that the library's results do not depend on the
// single-threaded scheduler: per-key totals, flushed aggregates and
// routing invariants must come out identical under true concurrency.
//
// Concurrency model (the paper's distributed deployment, at memory speed):
//  * every operator instance runs on its own thread and drains a Mailbox:
//    one bounded lock-free SPSC ring per upstream producer (see
//    spsc_ring.h), popped in batches to amortize synchronization. A full
//    ring blocks its producer (backpressure); DAG structure guarantees the
//    consumer is draining, so no cyclic wait;
//  * the producer side batches too: each upstream instance parks routed
//    messages in a per-(edge, destination) out-buffer and publishes them
//    with one SpscRing::TryPushBatch when the batch fills, when its input
//    round ends, or at EOS/Finish (ThreadedRuntimeOptions::emit_batch) —
//    one ring-index publication and at most one wakeup per batch;
//  * every upstream *instance* owns its own partitioner replica
//    (Partitioner::Clone via MakePartitionerReplicas), so routing takes no
//    lock and PKG/local-estimator state is genuinely per-source — the
//    paper's setting, where each source balances its own sub-stream from
//    local information only. Coordination-free techniques (KG, SG, PKG-L)
//    behave exactly as a single shared instance would; techniques that
//    assume cross-source shared state (PoTC, On-Greedy, rebalancing, the
//    G oracle) keep per-replica copies — the honest distributed
//    approximation (LogicalRuntime remains their coordinated reference);
//  * per-instance processed counters live in cache-line-padded cells, so
//    16 executors incrementing them share no lines;
//  * shutdown is EOS-based: Finish() sends one EOS token per upstream
//    instance down every edge; an instance Close()s after its last
//    upstream EOS arrives, forwards EOS, and its thread exits. This is
//    the classic dataflow termination protocol, deadlock-free on DAGs.
//
// Sharded execution (ThreadedRuntimeOptions::shards > 0): instead of one
// thread per operator instance, all N instances are multiplexed onto M
// shard threads. Each shard owns a contiguous, topology-ordered slice of
// the instance list (same-stage instances pack together), drains its
// instances' rings round-robin in batches, and parks on a shard-wide gate
// when every owned ring stayed empty through a bounded spin — producers
// wake the *shard*, not an instance, so there is still at most one wakeup
// per published batch. Everything that determines results stays
// per-instance exactly as in thread-per-instance mode: partitioner
// replicas, per-(edge, destination) out-buffers, processed_ cells, and
// per-ring FIFO order. Routing decisions are made producer-side, so
// routed counts are byte-identical across modes, and with a single
// source the per-sink arrival order (hence any order-sensitive sink
// state, e.g. LatencySink histograms) is too — pinned by
// engine_threaded_sharded_test. When a shard blocks pushing into a full
// ring of another busy instance, it help-drains its own instances at
// strictly greater topological rank; the strictly-increasing rank makes
// the nested drain stack finite and keeps the maximal blocked producer's
// destination always drainable, so backpressure cannot deadlock a shard
// against itself. Optional CpuAffinity pinning keeps each shard's rings
// and operator state on one core (no-op where unsupported).
//
// Ticks are not supported here (wall-clock timers would make runs
// non-reproducible); operators flush via Close, or callers inject
// app-level punctuation messages.

#ifndef PKGSTREAM_ENGINE_THREADED_RUNTIME_H_
#define PKGSTREAM_ENGINE_THREADED_RUNTIME_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/result.h"
#include "engine/spsc_ring.h"
#include "engine/topology.h"
#include "partition/partitioner.h"

namespace pkgstream {
namespace engine {

/// \brief Options for the threaded executor.
struct ThreadedRuntimeOptions {
  /// Ring capacity per producer->consumer pair, rounded up to a power of
  /// two; a producer blocks when its ring is full (backpressure). Must be
  /// >= 1.
  size_t queue_capacity = 1024;

  /// Producer-side emit batching: each upstream instance buffers up to this
  /// many routed messages per (edge, destination) and publishes them with
  /// one SpscRing::TryPushBatch — one index publication (and at most one
  /// consumer wakeup) per batch instead of per message. 1 disables
  /// batching. Buffers are flushed when full, after every consumed input
  /// batch (operators), and at Finish (spouts), so totals are unaffected;
  /// only the *moment* a message becomes visible downstream shifts — in
  /// particular, messages injected at a spout may sit in its out-buffer
  /// until the batch fills or Finish() runs. Must be >= 1.
  size_t emit_batch = 16;

  /// 0 = thread-per-instance (the default, unchanged). > 0 = sharded
  /// execution: all operator instances run on min(shards, instance count)
  /// shard threads, each owning a contiguous topology-ordered slice (see
  /// the file comment). Results — routed counts, per-instance state,
  /// single-source arrival orders — are identical across modes; only the
  /// thread count and scheduling change.
  size_t shards = 0;

  /// Sharded mode only: pin shard thread k to the k-th allowed CPU
  /// (modulo the CPU count) via CpuAffinity. Best-effort — silently a
  /// no-op on platforms without thread affinity. Ignored when shards == 0.
  bool pin_shards = false;

  /// 0 = Finish() waits forever (the default, unchanged). > 0 = Finish()
  /// that has not drained within this many milliseconds dumps every
  /// instance's approximate ring occupancy and processed count (the
  /// last-progress picture of the wedge) and aborts via a fatal log —
  /// turning any future shutdown deadlock into a diagnosable failure
  /// instead of a ctest timeout.
  uint64_t finish_deadline_ms = 0;
};

/// \brief Multi-threaded executor for a Topology (no ticks; see above).
class ThreadedRuntime {
 public:
  /// Instantiates operators, per-source partitioner replicas and threads;
  /// threads start immediately and idle on their mailboxes.
  static Result<std::unique_ptr<ThreadedRuntime>> Create(
      const Topology* topology, ThreadedRuntimeOptions options = {});

  ~ThreadedRuntime();

  /// Thread-safe: injects one message at `spout` instance `source`. May
  /// block when a downstream ring is full. Concurrent calls for the same
  /// source instance are serialized internally (each source is a single
  /// logical producer). Must not be called after Finish(). The message is
  /// moved into the out-buffer/ring (copied only on spout fan-out) — pass
  /// an rvalue to make injection copy-free.
  void Inject(NodeId spout, SourceId source, Message msg);

  /// Thread-safe batch injection from one source: takes the source's
  /// inject lock once, routes the whole batch per outbound edge through
  /// the source's partitioner replica (Partitioner::RouteBatch — routing
  /// decisions bit-identical to n scalar Inject calls) and appends the
  /// messages to the per-(edge, destination) emit out-buffers directly.
  /// Per-ring FIFO order is preserved per edge; messages become visible
  /// downstream in batches (same flush points as scalar injection).
  void InjectBatch(NodeId spout, SourceId source, const Message* msgs,
                   size_t n);

  /// Sends EOS down every spout edge, waits for all instance threads to
  /// drain, Close() and exit. Idempotent and safe to call concurrently:
  /// every caller returns only after shutdown has completed.
  void Finish();

  /// Live worker-set reconfiguration (the fault-injection control path):
  /// restricts routing on every edge *into* `downstream` to the instances
  /// with alive[w] == true. Thread-safe and non-blocking: the new set is
  /// published as a versioned epoch per edge; each producing thread applies
  /// it to its own partitioner replica at its next batch boundary (top of
  /// RouteFrom / RouteBatchFrom), so replicas are only ever mutated by
  /// their owning producer. Rejects unknown nodes, size mismatches, empty
  /// alive sets, nodes without inbound edges, and — before applying
  /// anything — edges whose partitioner does not SupportsReconfiguration()
  /// (Unimplemented; e.g. plain hashing cannot drop a worker).
  Status ReconfigureWorkers(NodeId downstream, const std::vector<bool>& alive);

  /// Aborts the run: consumers stop draining once their rings are empty
  /// (skipping Close/EOS), producers blocked on a full ring drop their
  /// items and return, and Finish() still joins cleanly. For tests and
  /// drivers that must tear down a wedged or no-longer-interesting run;
  /// after Abort, processed counts and operator state are *not* the
  /// completed-run values.
  void Abort();

  /// Whether Abort() was called (injector threads poll this to exit).
  bool aborted() const { return aborted_.load(std::memory_order_acquire); }

  /// Valid after Finish(): messages processed per instance of `node`.
  std::vector<uint64_t> Processed(NodeId node) const;

  /// Valid after Finish(): operator access for result extraction.
  Operator* GetOperator(NodeId node, uint32_t instance);

  /// Valid after Finish(): the partitioner replica owned by upstream
  /// instance `source_instance` of the `from` -> `to` edge, for result
  /// extraction (e.g. RebalancingKeyGrouping migration stats).
  const partition::Partitioner* GetPartitioner(NodeId from, NodeId to,
                                               uint32_t source_instance) const;

  /// Thread-safe, any time: approximate number of items queued across all
  /// inbound rings of every instance of `node` (relaxed loads; see
  /// SpscRing::SizeApprox). 0 for spouts. Monitoring only — the value may
  /// be stale the moment it returns.
  size_t ApproxInboxDepth(NodeId node) const;

 private:
  ThreadedRuntime(const Topology* topology, ThreadedRuntimeOptions options);

  /// Ring slot: a data message or an EOS token from one upstream instance.
  struct Item {
    Message msg;
    bool eos = false;
  };

  /// Items popped per consumer round; amortizes ring synchronization and
  /// wakeups over up to this many messages.
  static constexpr size_t kPopBatch = 64;

  /// Idle shard sweeps before escalating from CPU-relax to yield, and from
  /// yield to a gate park (the shard-loop analogue of the consumer spins).
  static constexpr uint32_t kShardRelaxSweeps = 8;
  static constexpr uint32_t kShardSpinSweeps = 32;

  /// \brief Parked-consumer wakeup gate for one consumer execution
  /// context: an instance thread (thread-per-instance mode) or a whole
  /// shard (sharded mode — every owned mailbox shares the shard's gate,
  /// so any producer push wakes the shard).
  ///
  /// Producers take the wake mutex only when the parked flag is visible,
  /// so steady-state traffic pays no lock and no syscall. The park uses a
  /// bounded wait: a lost wakeup in the flag race costs bounded latency,
  /// never a hang.
  class ConsumerGate {
   public:
    /// Producer side: nudges a parked consumer (cheap flag check first).
    void MaybeWake() {
      if (parked_.load(std::memory_order_seq_cst)) {
        // Empty critical section: orders the notify after the consumer's
        // decision to wait (it holds the mutex while deciding).
        { std::lock_guard<std::mutex> lock(wake_mu_); }
        wake_cv_.notify_one();
      }
    }

    /// Consumer side: announce the intent to park. The caller must
    /// re-check its rings *after* this store (seq_cst orders it against
    /// producers' index publications) before calling WaitBriefly.
    void BeginPark() { parked_.store(true, std::memory_order_seq_cst); }

    /// Consumer side: bounded wait for a producer nudge (or timeout).
    void WaitBriefly() {
      std::unique_lock<std::mutex> lock(wake_mu_);
      wake_cv_.wait_for(lock, std::chrono::microseconds(200));
    }

    /// Consumer side: leave the parked state (after WaitBriefly or a
    /// successful re-check).
    void EndPark() { parked_.store(false, std::memory_order_relaxed); }

   private:
    std::atomic<bool> parked_{false};
    std::mutex wake_mu_;
    std::condition_variable wake_cv_;
  };

  /// \brief One operator instance's inbox: a bounded SPSC ring per
  /// upstream producer, drained round-robin in batches.
  ///
  /// Producers push wait-free while their ring has space; blocking-on-full
  /// policy lives in ThreadedRuntime::PushBlocking (which can help-drain
  /// in sharded mode). The consumer gate is shared at shard granularity in
  /// sharded mode; thread-per-instance mode gives every mailbox its own.
  class Mailbox {
   public:
    Mailbox(uint32_t producers, size_t capacity_per_producer,
            ConsumerGate* gate)
        : gate_(gate) {
      rings_.reserve(producers);
      for (uint32_t p = 0; p < producers; ++p) {
        rings_.push_back(
            std::make_unique<SpscRing<Item>>(capacity_per_producer));
      }
    }

    /// Producer side; only producer `producer`'s owning thread may call.
    /// Enqueues a prefix of `items[0..n)` with one index publication and
    /// at most one consumer wakeup; returns how many were enqueued (0 when
    /// the ring is full — blocking policy is the caller's).
    size_t TryPushBatch(uint32_t producer, Item* items, size_t n) {
      const size_t pushed = rings_[producer]->TryPushBatch(items, n);
      // Wake after every partial publication so a tiny ring cannot strand
      // the remainder behind a parked consumer.
      if (pushed > 0) gate_->MaybeWake();
      return pushed;
    }

    /// Consumer side, non-blocking: pops up to `max_n` items (all from one
    /// ring, round-robin across producers) into `out`; returns the count.
    size_t TryPopBatch(Item* out, size_t max_n) {
      return TryPopAnyRing(out, max_n);
    }

    /// Consumer side: blocks until at least one item is available, then
    /// pops up to `max_n` items (all from one ring) into `out`. Only for
    /// thread-per-instance mode, where the gate is exclusively this
    /// mailbox's; shards interleave TryPopBatch across instances and park
    /// on the shared gate themselves. Returns 0 only when `aborted` rose
    /// while every ring was empty — the consumer must exit, not retry.
    size_t PopBatch(Item* out, size_t max_n,
                    const std::atomic<bool>& aborted) {
      for (;;) {
        for (uint32_t spin = 0; spin < kConsumerSpins; ++spin) {
          const size_t got = TryPopAnyRing(out, max_n);
          if (got > 0) return got;
          if (spin < kConsumerRelaxSpins) {
            Backoff::CpuRelax();
          } else {
            std::this_thread::yield();
          }
        }
        // Checked while empty, before parking: an aborted run's producers
        // may never push again, so waiting on them would hang forever.
        if (aborted.load(std::memory_order_acquire)) return 0;
        gate_->BeginPark();
        const size_t got = TryPopAnyRing(out, max_n);
        if (got > 0) {
          gate_->EndPark();
          return got;
        }
        gate_->WaitBriefly();
        gate_->EndPark();
      }
    }

    /// Any thread: approximate queued items across all producer rings
    /// (relaxed loads; monitoring and idle heuristics only).
    size_t SizeApprox() const {
      size_t total = 0;
      for (const auto& ring : rings_) total += ring->SizeApprox();
      return total;
    }

   private:
    static constexpr uint32_t kConsumerRelaxSpins = 8;
    static constexpr uint32_t kConsumerSpins = 32;

    size_t TryPopAnyRing(Item* out, size_t max_n) {
      const size_t n = rings_.size();
      for (size_t i = 0; i < n; ++i) {
        if (cursor_ >= n) cursor_ = 0;
        const size_t got = rings_[cursor_]->TryPopBatch(out, max_n);
        ++cursor_;
        if (got > 0) return got;
      }
      return 0;
    }

    std::vector<std::unique_ptr<SpscRing<Item>>> rings_;
    size_t cursor_ = 0;  // consumer-local round-robin position
    ConsumerGate* gate_;
  };

  class InstanceEmitter;

  /// Sharded-mode state (defined in the .cc): one operator instance as
  /// seen by its owning shard, and one shard thread's slice + gate.
  struct ShardInstance;
  struct ShardState;

  /// \brief Producer-side out-buffer for one (edge, upstream instance,
  /// destination worker): routed messages parked here until the batch
  /// fills (or a flush point), then published with one TryPushBatch.
  /// Owned exclusively by the producing thread (executor thread, or the
  /// injector serialized by the source's inject mutex).
  struct OutBuffer {
    std::unique_ptr<Item[]> items;
    size_t count = 0;
  };

  /// \brief One edge's published worker-set epoch. ReconfigureWorkers
  /// writes `alive` under `mu` and then bumps `epoch`; each producing
  /// thread compares `epoch` against its own applied counter at batch
  /// boundaries and, when behind, copies `alive` (under `mu`) into its
  /// replica via Partitioner::SetWorkerSet. Replicas are therefore only
  /// ever touched by their owning producer, and the hot healthy path costs
  /// one relaxed-acquire load per batch.
  struct EdgeReconfig {
    std::atomic<uint64_t> epoch{0};
    std::mutex mu;
    std::vector<bool> alive;
  };

  Status Init();
  /// Applies any pending worker-set epoch of edge `e` to upstream instance
  /// `instance`'s replica; called by the producing thread at batch
  /// boundaries (top of RouteFrom / RouteBatchFrom).
  void MaybeApplyReconfig(uint32_t e, uint32_t instance);
  /// The finish-deadline dump: every instance's approximate ring occupancy
  /// and processed count, before the fatal abort.
  void DumpStuckState();
  void RunInstance(uint32_t node, uint32_t instance);
  /// Shard thread main loop: round-robin over the owned instances with
  /// bounded spin, then park on the shard gate.
  void RunShard(uint32_t shard);
  /// Pops and processes at most one batch for `si` (non-blocking); closes
  /// the instance when its last upstream EOS arrived. Returns whether any
  /// progress (items or close) happened.
  bool DrainInstanceOnce(ShardState& st, ShardInstance& si);
  /// Called by a shard blocked pushing from a node of rank `from_rank`:
  /// drains owned instances of strictly greater topological rank (never
  /// an active one), unblocking downstream rings without ever re-entering
  /// the blocked producer's stage. Returns whether anything progressed.
  bool ShardHelpDrain(ShardState& st, uint32_t from_rank);
  /// Longest-path layering of the (validated, acyclic) topology; spouts
  /// are rank 0. Drives ShardHelpDrain's strictly-increasing recursion.
  void ComputeTopoRanks();
  /// Pushes all `n` items to `mailbox`, blocking (spin, then yield, then
  /// sleep) while the ring is full. On a shard thread, blocked attempts
  /// help-drain the shard's own higher-rank instances instead of pure
  /// spinning — see ShardHelpDrain. `from_node` is the producing node.
  void PushBlocking(uint32_t from_node, Mailbox& mailbox, uint32_t producer,
                    Item* items, size_t n);
  /// Routes `msg` on every outbound edge of (node, instance), moving it
  /// into the last edge's item (true fan-out copies for the rest).
  void RouteFrom(uint32_t node, uint32_t instance, Message msg);
  /// Batch form of RouteFrom for one spout instance; caller holds the
  /// source's inject mutex.
  void RouteBatchFrom(uint32_t node, uint32_t instance, const Message* msgs,
                      size_t n);
  /// Enqueues one routed item on edge `e` towards `w`: parks it in the
  /// (edge, instance, worker) out-buffer (flushing a full batch) or, with
  /// batching disabled, pushes it straight to the mailbox.
  void EnqueueRouted(uint32_t edge, uint32_t instance, WorkerId worker,
                     Item item);
  /// Publishes one (edge, instance, worker) out-buffer downstream.
  void FlushBuffer(uint32_t edge, uint32_t instance, WorkerId worker);
  /// Publishes every pending out-buffer of (node, instance); called after
  /// each consumed input batch, and before EOS.
  void FlushOutBuffers(uint32_t node, uint32_t instance);
  /// Sends one EOS token down every outbound edge of (node, instance).
  void SendEos(uint32_t node, uint32_t instance);
  /// Number of upstream *instances* feeding `node` (producer rings and
  /// EOS tokens expected).
  uint32_t UpstreamInstances(uint32_t node) const {
    return upstream_counts_[node];
  }

  const Topology* topology_;
  ThreadedRuntimeOptions options_;
  std::vector<std::vector<std::unique_ptr<Operator>>> ops_;
  /// edge_replicas_[e][s]: the partitioner replica owned by upstream
  /// instance `s` of edge `e`. Routing state is per-source; no locks.
  std::vector<std::vector<partition::PartitionerPtr>> edge_replicas_;
  /// Per-edge published worker-set epoch (see EdgeReconfig).
  std::vector<std::unique_ptr<EdgeReconfig>> edge_reconfig_;
  /// applied_epochs_[e][s]: the epoch instance `s`'s replica last applied.
  /// Owned exclusively by the producing thread (no atomics needed).
  std::vector<std::vector<uint64_t>> applied_epochs_;
  /// First producer-ring index of edge `e` inside the downstream node's
  /// mailboxes (edge upstream instance s -> ring edge_producer_base_[e]+s).
  std::vector<uint32_t> edge_producer_base_;
  /// Outbound edge indices per node (hot-path scan avoidance).
  std::vector<std::vector<uint32_t>> out_edges_;
  /// out_buffers_[e][s * downstream_parallelism + w]: the emit batch of
  /// upstream instance `s` of edge `e` towards worker `w`. Empty when
  /// options_.emit_batch == 1 (batching disabled).
  std::vector<std::vector<OutBuffer>> out_buffers_;
  /// Upstream instance count per node.
  std::vector<uint32_t> upstream_counts_;
  std::vector<std::vector<std::unique_ptr<Mailbox>>> mailboxes_;
  /// Per spout instance: serializes concurrent Inject calls to one source
  /// (each source is a single producer towards its rings and replicas).
  std::vector<std::vector<std::unique_ptr<std::mutex>>> inject_mutexes_;
  /// Flat per-instance processed counters, one cache line each;
  /// instance (n, i) lives at processed_[processed_base_[n] + i].
  std::vector<CacheLinePadded<std::atomic<uint64_t>>> processed_;
  std::vector<size_t> processed_base_;
  /// Longest-path rank per node (spouts 0); only ShardHelpDrain compares
  /// them, but they are computed in every mode (cheap, one-time).
  std::vector<uint32_t> topo_rank_;
  /// Thread-per-instance mode: one gate per operator instance (indexed by
  /// processed_base_[n] + i; spout slots stay null). Sharded mode: empty —
  /// gates live in the ShardStates.
  std::vector<std::unique_ptr<ConsumerGate>> instance_gates_;
  /// Sharded mode: one state per shard thread; empty otherwise.
  std::vector<std::unique_ptr<ShardState>> shards_;
  /// The shard state owned by the calling thread, if it is one of *some*
  /// runtime's shard threads (PushBlocking checks the runtime matches).
  static thread_local ShardState* tls_shard_;
  std::vector<std::thread> threads_;
  /// Set once Init() fully succeeded; the destructor-invoked Finish()
  /// must not walk mailboxes/mutexes a failed Init() never built.
  bool started_ = false;
  /// finished_ rises at the *start* of shutdown (gates Inject);
  /// drained_ rises after all executor threads joined (gates
  /// GetOperator — operators are mutable until then).
  std::atomic<bool> finished_{false};
  std::atomic<bool> drained_{false};
  /// Abort flag (see Abort()): consumers exit on empty rings, blocked
  /// producers drop their items.
  std::atomic<bool> aborted_{false};
  /// Executor threads that have returned from their main loop; the
  /// finish-deadline poll compares it against threads_.size().
  std::atomic<size_t> threads_exited_{0};
  std::once_flag finish_once_;
};

}  // namespace engine
}  // namespace pkgstream

#endif  // PKGSTREAM_ENGINE_THREADED_RUNTIME_H_
