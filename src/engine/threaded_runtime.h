// Copyright 2026 The pkgstream Authors.
// ThreadedRuntime: the same operator API as LogicalRuntime, executed on
// real threads — one executor thread per operator instance with bounded
// inboxes, exactly Storm's executor model in-process. The deterministic
// LogicalRuntime defines the reference semantics; this runtime exists to
// demonstrate (and test) that the library's results do not depend on the
// single-threaded scheduler: per-key totals, flushed aggregates and
// routing invariants must come out identical under true concurrency.
//
// Concurrency model (the paper's distributed deployment, at memory speed):
//  * every operator instance runs on its own thread and drains a Mailbox:
//    one bounded lock-free SPSC ring per upstream producer (see
//    spsc_ring.h), popped in batches to amortize synchronization. A full
//    ring blocks its producer (backpressure); DAG structure guarantees the
//    consumer is draining, so no cyclic wait;
//  * the producer side batches too: each upstream instance parks routed
//    messages in a per-(edge, destination) out-buffer and publishes them
//    with one SpscRing::TryPushBatch when the batch fills, when its input
//    round ends, or at EOS/Finish (ThreadedRuntimeOptions::emit_batch) —
//    one ring-index publication and at most one wakeup per batch;
//  * every upstream *instance* owns its own partitioner replica
//    (Partitioner::Clone via MakePartitionerReplicas), so routing takes no
//    lock and PKG/local-estimator state is genuinely per-source — the
//    paper's setting, where each source balances its own sub-stream from
//    local information only. Coordination-free techniques (KG, SG, PKG-L)
//    behave exactly as a single shared instance would; techniques that
//    assume cross-source shared state (PoTC, On-Greedy, rebalancing, the
//    G oracle) keep per-replica copies — the honest distributed
//    approximation (LogicalRuntime remains their coordinated reference);
//  * per-instance processed counters live in cache-line-padded cells, so
//    16 executors incrementing them share no lines;
//  * shutdown is EOS-based: Finish() sends one EOS token per upstream
//    instance down every edge; an instance Close()s after its last
//    upstream EOS arrives, forwards EOS, and its thread exits. This is
//    the classic dataflow termination protocol, deadlock-free on DAGs.
//
// Ticks are not supported here (wall-clock timers would make runs
// non-reproducible); operators flush via Close, or callers inject
// app-level punctuation messages.

#ifndef PKGSTREAM_ENGINE_THREADED_RUNTIME_H_
#define PKGSTREAM_ENGINE_THREADED_RUNTIME_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/result.h"
#include "engine/spsc_ring.h"
#include "engine/topology.h"
#include "partition/partitioner.h"

namespace pkgstream {
namespace engine {

/// \brief Options for the threaded executor.
struct ThreadedRuntimeOptions {
  /// Ring capacity per producer->consumer pair, rounded up to a power of
  /// two; a producer blocks when its ring is full (backpressure). Must be
  /// >= 1.
  size_t queue_capacity = 1024;

  /// Producer-side emit batching: each upstream instance buffers up to this
  /// many routed messages per (edge, destination) and publishes them with
  /// one SpscRing::TryPushBatch — one index publication (and at most one
  /// consumer wakeup) per batch instead of per message. 1 disables
  /// batching. Buffers are flushed when full, after every consumed input
  /// batch (operators), and at Finish (spouts), so totals are unaffected;
  /// only the *moment* a message becomes visible downstream shifts — in
  /// particular, messages injected at a spout may sit in its out-buffer
  /// until the batch fills or Finish() runs. Must be >= 1.
  size_t emit_batch = 16;
};

/// \brief Multi-threaded executor for a Topology (no ticks; see above).
class ThreadedRuntime {
 public:
  /// Instantiates operators, per-source partitioner replicas and threads;
  /// threads start immediately and idle on their mailboxes.
  static Result<std::unique_ptr<ThreadedRuntime>> Create(
      const Topology* topology, ThreadedRuntimeOptions options = {});

  ~ThreadedRuntime();

  /// Thread-safe: injects one message at `spout` instance `source`. May
  /// block when a downstream ring is full. Concurrent calls for the same
  /// source instance are serialized internally (each source is a single
  /// logical producer). Must not be called after Finish(). The message is
  /// moved into the out-buffer/ring (copied only on spout fan-out) — pass
  /// an rvalue to make injection copy-free.
  void Inject(NodeId spout, SourceId source, Message msg);

  /// Thread-safe batch injection from one source: takes the source's
  /// inject lock once, routes the whole batch per outbound edge through
  /// the source's partitioner replica (Partitioner::RouteBatch — routing
  /// decisions bit-identical to n scalar Inject calls) and appends the
  /// messages to the per-(edge, destination) emit out-buffers directly.
  /// Per-ring FIFO order is preserved per edge; messages become visible
  /// downstream in batches (same flush points as scalar injection).
  void InjectBatch(NodeId spout, SourceId source, const Message* msgs,
                   size_t n);

  /// Sends EOS down every spout edge, waits for all instance threads to
  /// drain, Close() and exit. Idempotent and safe to call concurrently:
  /// every caller returns only after shutdown has completed.
  void Finish();

  /// Valid after Finish(): messages processed per instance of `node`.
  std::vector<uint64_t> Processed(NodeId node) const;

  /// Valid after Finish(): operator access for result extraction.
  Operator* GetOperator(NodeId node, uint32_t instance);

 private:
  ThreadedRuntime(const Topology* topology, ThreadedRuntimeOptions options);

  /// Ring slot: a data message or an EOS token from one upstream instance.
  struct Item {
    Message msg;
    bool eos = false;
  };

  /// Items popped per consumer round; amortizes ring synchronization and
  /// wakeups over up to this many messages.
  static constexpr size_t kPopBatch = 64;

  /// \brief One operator instance's inbox: a bounded SPSC ring per
  /// upstream producer, drained round-robin in batches.
  ///
  /// Producers push wait-free while their ring has space and spin/yield
  /// while it is full. The consumer parks on a condition variable only
  /// after all rings stayed empty through a bounded spin; producers take
  /// the wake mutex only when the parked flag is visible, so steady-state
  /// traffic pays no lock and no syscall. The park uses a bounded wait:
  /// a lost wakeup in the flag race costs bounded latency, never a hang.
  class Mailbox {
   public:
    Mailbox(uint32_t producers, size_t capacity_per_producer) {
      rings_.reserve(producers);
      for (uint32_t p = 0; p < producers; ++p) {
        rings_.push_back(
            std::make_unique<SpscRing<Item>>(capacity_per_producer));
      }
    }

    /// Producer side; only producer `producer`'s owning thread may call.
    /// Blocks (spin, then yield, then sleep) while the ring is full.
    void Push(uint32_t producer, Item item) {
      SpscRing<Item>& ring = *rings_[producer];
      Backoff backoff;
      while (!ring.TryPush(std::move(item))) backoff.Pause();
      MaybeWakeConsumer();
    }

    /// Producer side: enqueues all `n` items with as few index
    /// publications as the ring allows (one TryPushBatch per attempt).
    /// Blocks while the ring is full; wakes the consumer after every
    /// partial publication so a tiny ring cannot strand the remainder
    /// behind a parked consumer.
    void PushBatch(uint32_t producer, Item* items, size_t n) {
      SpscRing<Item>& ring = *rings_[producer];
      size_t done = 0;
      Backoff backoff;
      while (done < n) {
        const size_t pushed = ring.TryPushBatch(items + done, n - done);
        if (pushed > 0) {
          done += pushed;
          MaybeWakeConsumer();
          backoff.Reset();
        } else {
          backoff.Pause();
        }
      }
    }

    /// Consumer side: blocks until at least one item is available, then
    /// pops up to `max_n` items (all from one ring) into `out`.
    size_t PopBatch(Item* out, size_t max_n) {
      for (;;) {
        for (uint32_t spin = 0; spin < kConsumerSpins; ++spin) {
          const size_t got = TryPopAnyRing(out, max_n);
          if (got > 0) return got;
          if (spin < kConsumerRelaxSpins) {
            Backoff::CpuRelax();
          } else {
            std::this_thread::yield();
          }
        }
        parked_.store(true, std::memory_order_seq_cst);
        const size_t got = TryPopAnyRing(out, max_n);
        if (got > 0) {
          parked_.store(false, std::memory_order_relaxed);
          return got;
        }
        {
          std::unique_lock<std::mutex> lock(wake_mu_);
          wake_cv_.wait_for(lock, std::chrono::microseconds(200));
        }
        parked_.store(false, std::memory_order_relaxed);
      }
    }

   private:
    static constexpr uint32_t kConsumerRelaxSpins = 8;
    static constexpr uint32_t kConsumerSpins = 32;

    size_t TryPopAnyRing(Item* out, size_t max_n) {
      const size_t n = rings_.size();
      for (size_t i = 0; i < n; ++i) {
        if (cursor_ >= n) cursor_ = 0;
        const size_t got = rings_[cursor_]->TryPopBatch(out, max_n);
        ++cursor_;
        if (got > 0) return got;
      }
      return 0;
    }

    void MaybeWakeConsumer() {
      if (parked_.load(std::memory_order_seq_cst)) {
        // Empty critical section: orders the notify after the consumer's
        // decision to wait (it holds wake_mu_ while deciding).
        { std::lock_guard<std::mutex> lock(wake_mu_); }
        wake_cv_.notify_one();
      }
    }

    std::vector<std::unique_ptr<SpscRing<Item>>> rings_;
    size_t cursor_ = 0;  // consumer-local round-robin position
    std::atomic<bool> parked_{false};
    std::mutex wake_mu_;
    std::condition_variable wake_cv_;
  };

  class InstanceEmitter;

  /// \brief Producer-side out-buffer for one (edge, upstream instance,
  /// destination worker): routed messages parked here until the batch
  /// fills (or a flush point), then published with one TryPushBatch.
  /// Owned exclusively by the producing thread (executor thread, or the
  /// injector serialized by the source's inject mutex).
  struct OutBuffer {
    std::unique_ptr<Item[]> items;
    size_t count = 0;
  };

  Status Init();
  void RunInstance(uint32_t node, uint32_t instance);
  /// Routes `msg` on every outbound edge of (node, instance), moving it
  /// into the last edge's item (true fan-out copies for the rest).
  void RouteFrom(uint32_t node, uint32_t instance, Message msg);
  /// Batch form of RouteFrom for one spout instance; caller holds the
  /// source's inject mutex.
  void RouteBatchFrom(uint32_t node, uint32_t instance, const Message* msgs,
                      size_t n);
  /// Enqueues one routed item on edge `e` towards `w`: parks it in the
  /// (edge, instance, worker) out-buffer (flushing a full batch) or, with
  /// batching disabled, pushes it straight to the mailbox.
  void EnqueueRouted(uint32_t edge, uint32_t instance, WorkerId worker,
                     Item item);
  /// Publishes one (edge, instance, worker) out-buffer downstream.
  void FlushBuffer(uint32_t edge, uint32_t instance, WorkerId worker);
  /// Publishes every pending out-buffer of (node, instance); called after
  /// each consumed input batch, and before EOS.
  void FlushOutBuffers(uint32_t node, uint32_t instance);
  /// Sends one EOS token down every outbound edge of (node, instance).
  void SendEos(uint32_t node, uint32_t instance);
  /// Number of upstream *instances* feeding `node` (producer rings and
  /// EOS tokens expected).
  uint32_t UpstreamInstances(uint32_t node) const {
    return upstream_counts_[node];
  }

  const Topology* topology_;
  ThreadedRuntimeOptions options_;
  std::vector<std::vector<std::unique_ptr<Operator>>> ops_;
  /// edge_replicas_[e][s]: the partitioner replica owned by upstream
  /// instance `s` of edge `e`. Routing state is per-source; no locks.
  std::vector<std::vector<partition::PartitionerPtr>> edge_replicas_;
  /// First producer-ring index of edge `e` inside the downstream node's
  /// mailboxes (edge upstream instance s -> ring edge_producer_base_[e]+s).
  std::vector<uint32_t> edge_producer_base_;
  /// Outbound edge indices per node (hot-path scan avoidance).
  std::vector<std::vector<uint32_t>> out_edges_;
  /// out_buffers_[e][s * downstream_parallelism + w]: the emit batch of
  /// upstream instance `s` of edge `e` towards worker `w`. Empty when
  /// options_.emit_batch == 1 (batching disabled).
  std::vector<std::vector<OutBuffer>> out_buffers_;
  /// Upstream instance count per node.
  std::vector<uint32_t> upstream_counts_;
  std::vector<std::vector<std::unique_ptr<Mailbox>>> mailboxes_;
  /// Per spout instance: serializes concurrent Inject calls to one source
  /// (each source is a single producer towards its rings and replicas).
  std::vector<std::vector<std::unique_ptr<std::mutex>>> inject_mutexes_;
  /// Flat per-instance processed counters, one cache line each;
  /// instance (n, i) lives at processed_[processed_base_[n] + i].
  std::vector<CacheLinePadded<std::atomic<uint64_t>>> processed_;
  std::vector<size_t> processed_base_;
  std::vector<std::thread> threads_;
  /// Set once Init() fully succeeded; the destructor-invoked Finish()
  /// must not walk mailboxes/mutexes a failed Init() never built.
  bool started_ = false;
  /// finished_ rises at the *start* of shutdown (gates Inject);
  /// drained_ rises after all executor threads joined (gates
  /// GetOperator — operators are mutable until then).
  std::atomic<bool> finished_{false};
  std::atomic<bool> drained_{false};
  std::once_flag finish_once_;
};

}  // namespace engine
}  // namespace pkgstream

#endif  // PKGSTREAM_ENGINE_THREADED_RUNTIME_H_
