// Copyright 2026 The pkgstream Authors.
// ThreadedRuntime: the same operator API as LogicalRuntime, executed on
// real threads — one executor thread per operator instance with a bounded
// inbox, exactly Storm's executor model in-process. The deterministic
// LogicalRuntime defines the reference semantics; this runtime exists to
// demonstrate (and test) that the library's results do not depend on the
// single-threaded scheduler: per-key totals, flushed aggregates and
// routing invariants must come out identical under true concurrency.
//
// Concurrency model:
//  * every operator instance runs on its own thread and drains a bounded
//    MPMC inbox (mutex + condvar; bounded for backpressure);
//  * edge partitioners are shared by the emitting instances of the
//    upstream PE, so each edge's Route() is serialized by a per-edge
//    mutex (the in-process stand-in for per-source partitioner replicas;
//    LoadEstimator state stays consistent);
//  * shutdown is EOS-based: Finish() sends one EOS token per upstream
//    instance down every edge; an instance Close()s after its last
//    upstream EOS arrives, forwards EOS, and its thread exits. This is
//    the classic dataflow termination protocol, deadlock-free on DAGs.
//
// Ticks are not supported here (wall-clock timers would make runs
// non-reproducible); operators flush via Close, or callers inject
// app-level punctuation messages.

#ifndef PKGSTREAM_ENGINE_THREADED_RUNTIME_H_
#define PKGSTREAM_ENGINE_THREADED_RUNTIME_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/result.h"
#include "engine/topology.h"
#include "partition/partitioner.h"

namespace pkgstream {
namespace engine {

/// \brief Options for the threaded executor.
struct ThreadedRuntimeOptions {
  /// Inbox capacity per instance; senders block when it is full
  /// (backpressure). Must be >= 1.
  size_t queue_capacity = 1024;
};

/// \brief Multi-threaded executor for a Topology (no ticks; see above).
class ThreadedRuntime {
 public:
  /// Instantiates operators, partitioners and threads; threads start
  /// immediately and idle on their inboxes.
  static Result<std::unique_ptr<ThreadedRuntime>> Create(
      const Topology* topology, ThreadedRuntimeOptions options = {});

  ~ThreadedRuntime();

  /// Thread-safe: injects one message at `spout` instance `source`. May
  /// block when a downstream inbox is full. Must not be called after
  /// Finish().
  void Inject(NodeId spout, SourceId source, const Message& msg);

  /// Sends EOS down every spout edge, waits for all instance threads to
  /// drain, Close() and exit. Idempotent.
  void Finish();

  /// Valid after Finish(): messages processed per instance of `node`.
  std::vector<uint64_t> Processed(NodeId node) const;

  /// Valid after Finish(): operator access for result extraction.
  Operator* GetOperator(NodeId node, uint32_t instance);

 private:
  ThreadedRuntime(const Topology* topology, ThreadedRuntimeOptions options);

  /// Inbox item: a data message or an EOS token from one upstream instance.
  struct Item {
    Message msg;
    bool eos = false;
  };

  class Inbox {
   public:
    explicit Inbox(size_t capacity) : capacity_(capacity) {}

    void Push(Item item) {
      std::unique_lock<std::mutex> lock(mu_);
      not_full_.wait(lock, [&] { return items_.size() < capacity_; });
      items_.push_back(std::move(item));
      not_empty_.notify_one();
    }

    Item Pop() {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [&] { return !items_.empty(); });
      Item item = std::move(items_.front());
      items_.pop_front();
      not_full_.notify_one();
      return item;
    }

   private:
    std::mutex mu_;
    std::condition_variable not_empty_;
    std::condition_variable not_full_;
    std::deque<Item> items_;
    size_t capacity_;
  };

  class InstanceEmitter;

  Status Init();
  void RunInstance(uint32_t node, uint32_t instance);
  /// Routes `msg` on every outbound edge of (node, instance).
  void RouteFrom(uint32_t node, uint32_t instance, const Message& msg);
  /// Sends one EOS token down every outbound edge of (node, instance).
  void SendEos(uint32_t node, uint32_t instance);
  /// Number of upstream *instances* feeding `node` (EOS tokens expected).
  uint32_t UpstreamInstances(uint32_t node) const;

  const Topology* topology_;
  ThreadedRuntimeOptions options_;
  std::vector<std::vector<std::unique_ptr<Operator>>> ops_;
  std::vector<partition::PartitionerPtr> edge_partitioners_;
  std::vector<std::unique_ptr<std::mutex>> edge_mutexes_;
  std::vector<std::vector<std::unique_ptr<Inbox>>> inboxes_;
  std::vector<std::vector<std::atomic<uint64_t>>> processed_;
  std::vector<std::thread> threads_;
  bool finished_ = false;
};

}  // namespace engine
}  // namespace pkgstream

#endif  // PKGSTREAM_ENGINE_THREADED_RUNTIME_H_
