// Copyright 2026 The pkgstream Authors.

#include "engine/topology.h"

#include <queue>

#include "common/logging.h"

namespace pkgstream {
namespace engine {

NodeId Topology::AddSpout(std::string name, uint32_t parallelism) {
  PKGSTREAM_CHECK(parallelism >= 1);
  Node node;
  node.name = std::move(name);
  node.parallelism = parallelism;
  node.is_spout = true;
  nodes_.push_back(std::move(node));
  return NodeId{static_cast<uint32_t>(nodes_.size() - 1)};
}

NodeId Topology::AddOperator(std::string name, OperatorFactory factory,
                             uint32_t parallelism) {
  PKGSTREAM_CHECK(parallelism >= 1);
  PKGSTREAM_CHECK(factory != nullptr);
  Node node;
  node.name = std::move(name);
  node.parallelism = parallelism;
  node.is_spout = false;
  node.factory = std::move(factory);
  nodes_.push_back(std::move(node));
  return NodeId{static_cast<uint32_t>(nodes_.size() - 1)};
}

void Topology::SetTickPeriod(NodeId node, uint64_t period) {
  PKGSTREAM_CHECK(node.index < nodes_.size());
  nodes_[node.index].tick_period = period;
}

Status Topology::Connect(NodeId from, NodeId to,
                         partition::PartitionerConfig partitioner) {
  if (from.index >= nodes_.size() || to.index >= nodes_.size()) {
    return Status::InvalidArgument("Connect: unknown node");
  }
  if (nodes_[to.index].is_spout) {
    return Status::InvalidArgument("Connect: spouts cannot receive streams");
  }
  partitioner.sources = nodes_[from.index].parallelism;
  partitioner.workers = nodes_[to.index].parallelism;
  edges_.push_back(EdgeSpec{from, to, partitioner});
  return Status::OK();
}

Status Topology::Connect(NodeId from, NodeId to,
                         partition::Technique technique, uint64_t seed) {
  partition::PartitionerConfig config;
  config.technique = technique;
  config.seed = seed;
  return Connect(from, to, config);
}

Status Topology::Validate() const {
  if (nodes_.empty()) return Status::FailedPrecondition("empty topology");
  // Spouts have no inbound edges (enforced in Connect, re-checked here).
  std::vector<uint32_t> indegree(nodes_.size(), 0);
  for (const auto& e : edges_) {
    if (nodes_[e.to.index].is_spout) {
      return Status::Internal("spout has inbound edge");
    }
    ++indegree[e.to.index];
  }
  // Kahn's algorithm: the graph must be acyclic.
  std::queue<uint32_t> ready;
  std::vector<uint32_t> remaining = indegree;
  for (uint32_t i = 0; i < nodes_.size(); ++i) {
    if (remaining[i] == 0) ready.push(i);
  }
  uint32_t visited = 0;
  std::vector<bool> reachable(nodes_.size(), false);
  for (uint32_t i = 0; i < nodes_.size(); ++i) {
    reachable[i] = nodes_[i].is_spout;
  }
  while (!ready.empty()) {
    uint32_t n = ready.front();
    ready.pop();
    ++visited;
    for (const auto& e : edges_) {
      if (e.from.index != n) continue;
      if (reachable[n]) reachable[e.to.index] = true;
      if (--remaining[e.to.index] == 0) ready.push(e.to.index);
    }
  }
  if (visited != nodes_.size()) {
    return Status::FailedPrecondition("topology contains a cycle");
  }
  for (uint32_t i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i].is_spout && !reachable[i]) {
      return Status::FailedPrecondition("PE '" + nodes_[i].name +
                                        "' is not reachable from any spout");
    }
  }
  bool has_spout = false;
  for (const auto& n : nodes_) has_spout |= n.is_spout;
  if (!has_spout) return Status::FailedPrecondition("topology has no spout");
  return Status::OK();
}

std::vector<uint32_t> Topology::OutEdges(NodeId node) const {
  std::vector<uint32_t> out;
  for (uint32_t i = 0; i < edges_.size(); ++i) {
    if (edges_[i].from == node) out.push_back(i);
  }
  return out;
}

}  // namespace engine
}  // namespace pkgstream
