// Copyright 2026 The pkgstream Authors.
// Topology: the application DAG (Section I: vertices are processing
// elements, edges are streams, each edge carries its own partitioning
// scheme — load balancing is performed per edge independently).

#ifndef PKGSTREAM_ENGINE_TOPOLOGY_H_
#define PKGSTREAM_ENGINE_TOPOLOGY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/operator.h"
#include "partition/factory.h"

namespace pkgstream {
namespace engine {

/// \brief Handle to a PE in a topology.
struct NodeId {
  uint32_t index = 0;
  friend bool operator==(NodeId a, NodeId b) { return a.index == b.index; }
};

/// \brief Builder for application DAGs.
///
/// \code
///   Topology topo;
///   NodeId src = topo.AddSpout("tweets", /*parallelism=*/5);
///   NodeId cnt = topo.AddOperator("counter", MakeCounter, 9);
///   NodeId agg = topo.AddOperator("aggregator", MakeAggregator, 1);
///   PKGSTREAM_CHECK_OK(topo.Connect(src, cnt, Technique::kPkgLocal));
///   PKGSTREAM_CHECK_OK(topo.Connect(cnt, agg, Technique::kHashing));
/// \endcode
class Topology {
 public:
  /// \brief A PE: a spout (external input, no Operator) or an operator PE.
  struct Node {
    std::string name;
    uint32_t parallelism = 1;
    bool is_spout = false;
    OperatorFactory factory;  // null for spouts
    /// Timer period (0 = no ticks). Units depend on the runtime: messages
    /// for LogicalRuntime, microseconds for EventSimulator.
    uint64_t tick_period = 0;
  };

  /// \brief A stream edge with its partitioning scheme.
  struct EdgeSpec {
    NodeId from;
    NodeId to;
    partition::PartitionerConfig partitioner;
  };

  /// Adds an external input PE (driven by the runtime's feed).
  NodeId AddSpout(std::string name, uint32_t parallelism);

  /// Adds an operator PE with `parallelism` instances.
  NodeId AddOperator(std::string name, OperatorFactory factory,
                     uint32_t parallelism);

  /// Sets the periodic-tick period of a PE (see Node::tick_period).
  void SetTickPeriod(NodeId node, uint64_t period);

  /// Connects `from` -> `to` with the given technique (sources/workers/seed
  /// fields of the config are filled in from the node parallelisms).
  Status Connect(NodeId from, NodeId to,
                 partition::PartitionerConfig partitioner);

  /// Convenience overload with technique only.
  Status Connect(NodeId from, NodeId to, partition::Technique technique,
                 uint64_t seed = 42);

  /// Validation: DAG is acyclic, spouts have no inbound edges, every
  /// non-spout is reachable from a spout.
  Status Validate() const;

  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<EdgeSpec>& edges() const { return edges_; }

  /// Outbound edge indices of a node.
  std::vector<uint32_t> OutEdges(NodeId node) const;

 private:
  std::vector<Node> nodes_;
  std::vector<EdgeSpec> edges_;
};

}  // namespace engine
}  // namespace pkgstream

#endif  // PKGSTREAM_ENGINE_TOPOLOGY_H_
