// Copyright 2026 The pkgstream Authors.

#include "partition/consistent_hashing.h"

#include <algorithm>

#include "common/hash.h"
#include "common/logging.h"

namespace pkgstream {
namespace partition {

ConsistentHashGrouping::ConsistentHashGrouping(uint32_t sources,
                                               uint32_t workers,
                                               ConsistentHashOptions options)
    : sources_(sources),
      workers_(workers),
      options_(options),
      loads_(workers, 0) {
  PKGSTREAM_CHECK(sources >= 1 && workers >= 1);
  PKGSTREAM_CHECK(options_.virtual_nodes >= 1);
  PKGSTREAM_CHECK(options_.replicas >= 1 && options_.replicas <= workers);
  ring_.reserve(static_cast<size_t>(workers) * options_.virtual_nodes);
  for (WorkerId w = 0; w < workers; ++w) {
    for (uint32_t v = 0; v < options_.virtual_nodes; ++v) {
      uint64_t position =
          Murmur3_64(HashCombine(w + 1, v),
                     static_cast<uint32_t>(options_.seed));
      ring_.push_back(Point{position, w});
    }
  }
  std::sort(ring_.begin(), ring_.end(), [](const Point& a, const Point& b) {
    if (a.position != b.position) return a.position < b.position;
    return a.worker < b.worker;
  });
}

void ConsistentHashGrouping::Successors(Key key,
                                        std::vector<WorkerId>* out) const {
  out->clear();
  if (ring_.empty()) return;
  uint64_t h = Murmur3_64(key, static_cast<uint32_t>(options_.seed) ^ 0x5A5A);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const Point& p, uint64_t pos) { return p.position < pos; });
  // Walk clockwise collecting distinct workers.
  for (size_t step = 0; step < ring_.size() && out->size() < options_.replicas;
       ++step) {
    if (it == ring_.end()) it = ring_.begin();
    if (std::find(out->begin(), out->end(), it->worker) == out->end()) {
      out->push_back(it->worker);
    }
    ++it;
  }
}

WorkerId ConsistentHashGrouping::Route(SourceId source, Key key) {
  PKGSTREAM_DCHECK(source < sources_);
  (void)source;
  std::vector<WorkerId> candidates;
  Successors(key, &candidates);
  PKGSTREAM_CHECK(!candidates.empty()) << "empty ring";
  WorkerId best = candidates[0];
  for (WorkerId w : candidates) {
    if (loads_[w] < loads_[best]) best = w;
  }
  ++loads_[best];
  return best;
}

void ConsistentHashGrouping::RemoveWorker(WorkerId worker) {
  ring_.erase(std::remove_if(ring_.begin(), ring_.end(),
                             [worker](const Point& p) {
                               return p.worker == worker;
                             }),
              ring_.end());
  PKGSTREAM_CHECK(!ring_.empty()) << "cannot remove the last worker";
}

std::string ConsistentHashGrouping::Name() const {
  return options_.replicas > 1
             ? "CH-PKG(r=" + std::to_string(options_.replicas) + ")"
             : "CH";
}

}  // namespace partition
}  // namespace pkgstream
