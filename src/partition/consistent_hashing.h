// Copyright 2026 The pkgstream Authors.
// Consistent hashing (Karger et al.), the placement substrate the related
// work section points at: "several storage systems use consistent hashing
// to allocate data items to servers ... One could use consistent hashing
// also to select these two replicas, using the replication technique used
// by Chord" (Section VII). This extension implements exactly that:
//
//   * replicas = 1 : plain ring placement — behaves like key grouping with
//     a different (and typically *worse*-balanced) bucket assignment;
//   * replicas = d : the key's candidates are its d distinct successors on
//     the ring, and the message goes to the least loaded of them — PKG's
//     key splitting riding on Chord-style replica selection, which keeps
//     PKG's balance while inheriting the ring's elasticity (adding or
//     removing a worker only remaps neighbouring arcs).

#ifndef PKGSTREAM_PARTITION_CONSISTENT_HASHING_H_
#define PKGSTREAM_PARTITION_CONSISTENT_HASHING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "partition/partitioner.h"

namespace pkgstream {
namespace partition {

/// \brief Tuning for ConsistentHashGrouping.
struct ConsistentHashOptions {
  /// Virtual nodes per worker; more = smoother arcs.
  uint32_t virtual_nodes = 64;
  /// Distinct successor workers considered per key (1 = plain ring;
  /// 2 = PKG-over-ring).
  uint32_t replicas = 1;
  uint64_t seed = 42;
};

/// \brief Ring-based partitioner with optional least-loaded replica choice.
class ConsistentHashGrouping final : public Partitioner {
 public:
  ConsistentHashGrouping(uint32_t sources, uint32_t workers,
                         ConsistentHashOptions options = {});

  WorkerId Route(SourceId source, Key key) override;
  uint32_t workers() const override { return workers_; }
  uint32_t sources() const override { return sources_; }
  uint32_t MaxWorkersPerKey() const override { return options_.replicas; }
  std::string Name() const override;
  PartitionerPtr Clone() const override {
    return std::make_unique<ConsistentHashGrouping>(*this);
  }

  /// The first `replicas` distinct workers clockwise from the key's point
  /// (exposed for tests and for applications that probe replicas).
  void Successors(Key key, std::vector<WorkerId>* out) const;

  /// Removes a worker's virtual nodes from the ring (elasticity demo):
  /// its arcs fall to the next successors; other placements are untouched.
  /// The departed worker must not be routed to afterwards.
  void RemoveWorker(WorkerId worker);

 private:
  struct Point {
    uint64_t position;
    WorkerId worker;
  };

  uint32_t sources_;
  uint32_t workers_;
  ConsistentHashOptions options_;
  std::vector<Point> ring_;  // sorted by position
  std::vector<uint64_t> loads_;
};

}  // namespace partition
}  // namespace pkgstream

#endif  // PKGSTREAM_PARTITION_CONSISTENT_HASHING_H_
