// Copyright 2026 The pkgstream Authors.

#include "partition/factory.h"

#include <algorithm>
#include <memory>

#include "partition/consistent_hashing.h"
#include "partition/greedy.h"
#include "partition/heavy_hitter_pkg.h"
#include "partition/key_grouping.h"
#include "partition/load_estimator.h"
#include "partition/pkg.h"
#include "partition/potc_static.h"
#include "partition/rebalancing.h"
#include "partition/shuffle_grouping.h"

namespace pkgstream {
namespace partition {

std::string TechniqueName(Technique technique) {
  switch (technique) {
    case Technique::kHashing:
      return "Hashing";
    case Technique::kShuffle:
      return "SG";
    case Technique::kRandom:
      return "Random";
    case Technique::kPkgGlobal:
      return "PKG-G";
    case Technique::kPkgLocal:
      return "PKG-L";
    case Technique::kPkgProbing:
      return "PKG-LP";
    case Technique::kPotcStatic:
      return "PoTC";
    case Technique::kOnGreedy:
      return "On-Greedy";
    case Technique::kOffGreedy:
      return "Off-Greedy";
    case Technique::kRebalancing:
      return "KG+rebalance";
    case Technique::kConsistent:
      return "CH";
    case Technique::kWChoices:
      return "W-Choices";
    case Technique::kDChoices:
      return "D-Choices";
  }
  return "?";
}

Result<Technique> ParseTechnique(const std::string& name) {
  if (name == "Hashing" || name == "H" || name == "KG") {
    return Technique::kHashing;
  }
  if (name == "SG" || name == "Shuffle") return Technique::kShuffle;
  if (name == "Random") return Technique::kRandom;
  if (name == "PKG-G" || name == "G") return Technique::kPkgGlobal;
  if (name == "PKG-L" || name == "L" || name == "PKG") {
    return Technique::kPkgLocal;
  }
  if (name == "PKG-LP" || name == "LP") return Technique::kPkgProbing;
  if (name == "PoTC") return Technique::kPotcStatic;
  if (name == "On-Greedy" || name == "OnGreedy") return Technique::kOnGreedy;
  if (name == "Off-Greedy" || name == "OffGreedy") {
    return Technique::kOffGreedy;
  }
  if (name == "KG+rebalance" || name == "Rebalance") {
    return Technique::kRebalancing;
  }
  if (name == "CH" || name == "ConsistentHashing") {
    return Technique::kConsistent;
  }
  if (name == "W-Choices" || name == "WChoices") {
    return Technique::kWChoices;
  }
  if (name == "D-Choices" || name == "DChoices") {
    return Technique::kDChoices;
  }
  return Status::NotFound("unknown technique: " + name);
}

Result<PartitionerPtr> MakePartitioner(const PartitionerConfig& config) {
  if (config.sources < 1) {
    return Status::InvalidArgument("sources must be >= 1");
  }
  if (config.workers < 1) {
    return Status::InvalidArgument("workers must be >= 1");
  }
  switch (config.technique) {
    case Technique::kHashing:
      return PartitionerPtr(std::make_unique<KeyGrouping>(
          config.sources, config.workers, config.seed));
    case Technique::kShuffle:
      return PartitionerPtr(std::make_unique<ShuffleGrouping>(
          config.sources, config.workers, config.seed));
    case Technique::kRandom:
      return PartitionerPtr(std::make_unique<RandomGrouping>(
          config.sources, config.workers, config.seed));
    case Technique::kPkgGlobal:
    case Technique::kPkgLocal:
    case Technique::kPkgProbing: {
      if (config.num_choices < 1) {
        return Status::InvalidArgument("num_choices must be >= 1");
      }
      LoadEstimatorPtr estimator;
      if (config.technique == Technique::kPkgGlobal) {
        estimator = std::make_unique<GlobalLoadEstimator>(config.sources,
                                                          config.workers);
      } else if (config.technique == Technique::kPkgLocal) {
        estimator = std::make_unique<LocalLoadEstimator>(config.sources,
                                                         config.workers);
      } else {
        if (config.probe_period_messages < 1) {
          return Status::InvalidArgument("probe period must be >= 1");
        }
        estimator = std::make_unique<ProbingLoadEstimator>(
            config.sources, config.workers, config.probe_period_messages);
      }
      PkgOptions options;
      options.num_choices = config.num_choices;
      options.hash_seed = config.seed;
      return PartitionerPtr(std::make_unique<PartialKeyGrouping>(
          config.sources, config.workers, std::move(estimator), options));
    }
    case Technique::kPotcStatic:
      return PartitionerPtr(std::make_unique<StaticPoTC>(
          config.sources, config.workers, config.seed,
          config.num_choices < 2 ? 2 : config.num_choices));
    case Technique::kOnGreedy:
      return PartitionerPtr(
          std::make_unique<OnlineGreedy>(config.sources, config.workers));
    case Technique::kOffGreedy:
      if (config.frequencies == nullptr) {
        return Status::FailedPrecondition(
            "Off-Greedy needs the stream's frequency table");
      }
      return PartitionerPtr(std::make_unique<OfflineGreedy>(
          config.sources, config.workers, *config.frequencies, config.seed));
    case Technique::kRebalancing: {
      if (config.rebalance_period < 1) {
        return Status::InvalidArgument("rebalance period must be >= 1");
      }
      RebalancingOptions options;
      options.check_period = config.rebalance_period;
      options.imbalance_threshold = config.rebalance_threshold;
      options.hash_seed = config.seed;
      return PartitionerPtr(std::make_unique<RebalancingKeyGrouping>(
          config.sources, config.workers, options));
    }
    case Technique::kWChoices: {
      if (config.sketch_capacity < 1) {
        return Status::InvalidArgument("sketch capacity must be >= 1");
      }
      HeavyHitterPkgOptions options;
      options.base_choices = config.num_choices < 1 ? 2 : config.num_choices;
      options.head_choices = 0;  // all workers for the head keys
      options.sketch_capacity = config.sketch_capacity;
      options.threshold_factor = config.heavy_threshold_factor;
      options.min_messages = config.heavy_min_messages;
      options.hash_seed = config.seed;
      return PartitionerPtr(std::make_unique<HeavyHitterAwarePkg>(
          config.sources, config.workers,
          std::make_unique<LocalLoadEstimator>(config.sources,
                                               config.workers),
          options));
    }
    case Technique::kDChoices: {
      if (config.sketch_capacity < 1) {
        return Status::InvalidArgument("sketch capacity must be >= 1");
      }
      if (config.head_choices > config.workers) {
        return Status::InvalidArgument("head choices must be <= workers");
      }
      if (config.head_epsilon <= 0.0) {
        return Status::InvalidArgument("head epsilon must be > 0");
      }
      HeavyHitterPkgOptions options;
      options.base_choices = config.num_choices < 1 ? 2 : config.num_choices;
      options.head_choices = config.head_choices;
      options.adaptive_head = true;
      options.epsilon = config.head_epsilon;
      // Threshold derived from the worker count: a key outgrows its
      // base_choices candidates once its share crosses base_choices/W
      // (the Section IV wall), scaled by the configured factor.
      options.threshold_factor =
          config.heavy_threshold_factor *
          static_cast<double>(options.base_choices);
      // Detection guarantee: SPACESAVING tracks every key with share >
      // 1/capacity, so capacity >= workers covers everything at or above
      // the ~base_choices/workers threshold with room to spare.
      options.sketch_capacity =
          std::max<size_t>(config.sketch_capacity, config.workers);
      options.min_messages = config.heavy_min_messages;
      options.hash_seed = config.seed;
      return PartitionerPtr(std::make_unique<HeavyHitterAwarePkg>(
          config.sources, config.workers,
          std::make_unique<LocalLoadEstimator>(config.sources,
                                               config.workers),
          options));
    }
    case Technique::kConsistent: {
      if (config.ring_replicas < 1 ||
          config.ring_replicas > config.workers) {
        return Status::InvalidArgument(
            "ring replicas must be in [1, workers]");
      }
      if (config.virtual_nodes < 1) {
        return Status::InvalidArgument("virtual nodes must be >= 1");
      }
      ConsistentHashOptions options;
      options.virtual_nodes = config.virtual_nodes;
      options.replicas = config.ring_replicas;
      options.seed = config.seed;
      return PartitionerPtr(std::make_unique<ConsistentHashGrouping>(
          config.sources, config.workers, options));
    }
  }
  return Status::Internal("unreachable technique");
}

Result<std::vector<PartitionerPtr>> MakePartitionerReplicas(
    const PartitionerConfig& config, uint32_t replicas) {
  if (replicas < 1) {
    return Status::InvalidArgument("replicas must be >= 1");
  }
  PKGSTREAM_ASSIGN_OR_RETURN(auto base, MakePartitioner(config));
  std::vector<PartitionerPtr> out;
  out.reserve(replicas);
  out.push_back(std::move(base));
  while (out.size() < replicas) out.push_back(out.front()->Clone());
  return out;
}

}  // namespace partition
}  // namespace pkgstream
