// Copyright 2026 The pkgstream Authors.
// Technique registry: names every strategy in the evaluation and builds
// configured Partitioner instances from a plain description. The experiment
// harness and the benches go through this factory so each table row maps to
// one Technique value.

#ifndef PKGSTREAM_PARTITION_FACTORY_H_
#define PKGSTREAM_PARTITION_FACTORY_H_

#include <optional>
#include <string>

#include "common/result.h"
#include "partition/partitioner.h"
#include "stats/frequency.h"

namespace pkgstream {
namespace partition {

/// \brief Every partitioning strategy in the paper's evaluation, plus the
/// extensions discussed in Sections II-B / VII / VIII (rebalancing and
/// consistent hashing).
enum class Technique {
  kHashing,      ///< key grouping via a single hash (baseline "H")
  kShuffle,      ///< round-robin shuffle grouping ("SG")
  kRandom,       ///< single uniformly random choice
  kPkgGlobal,    ///< PKG with the global load oracle ("G")
  kPkgLocal,     ///< PKG with local estimation ("L") — the deployable scheme
  kPkgProbing,   ///< PKG with local estimation + periodic probing ("LP")
  kPotcStatic,   ///< two choices without key splitting ("PoTC")
  kOnGreedy,     ///< online greedy, full choice, routing table
  kOffGreedy,    ///< offline LPT on true frequencies (clairvoyant)
  kRebalancing,  ///< KG + periodic hot-key migration (§II-B / §VIII)
  kConsistent,   ///< consistent-hashing ring; replicas>=2 = PKG-over-ring
  kWChoices,     ///< PKG + all-worker choice for detected heavy hitters
  kDChoices,     ///< PKG + adaptive per-heavy-key d (the sequel's policy)
};

/// \brief Parameters shared by all techniques (plus technique-specific ones).
struct PartitionerConfig {
  Technique technique = Technique::kPkgLocal;
  uint32_t sources = 1;
  uint32_t workers = 2;
  uint64_t seed = 42;

  /// PKG variants: the number of choices d (>= 1).
  uint32_t num_choices = 2;

  /// kPkgProbing: probe period in messages.
  uint64_t probe_period_messages = 100000;

  /// kOffGreedy: the complete key-frequency table of the stream to route.
  /// Required for kOffGreedy, ignored otherwise.
  const stats::FrequencyTable* frequencies = nullptr;

  /// kRebalancing: messages between imbalance checks.
  uint64_t rebalance_period = 10000;
  /// kRebalancing: relative window imbalance that triggers migration.
  double rebalance_threshold = 0.10;

  /// kWChoices / kDChoices: per-source heavy-hitter sketch capacity
  /// (kDChoices raises it to >= workers so detection is guaranteed at the
  /// derived threshold).
  uint32_t sketch_capacity = 256;
  /// kWChoices: heavy threshold as a multiple of 1/workers. kDChoices: a
  /// multiplier on its derived threshold num_choices/workers — the Section
  /// IV wall where num_choices stop sufficing.
  double heavy_threshold_factor = 1.0;
  /// kWChoices / kDChoices: detection warm-up — no key is treated as heavy
  /// before this many messages from a source (fresh estimates are noise).
  /// Benches replaying short streams lower it so the warm-up transient
  /// (heavy keys still on the 2-choice path) does not dominate the tail.
  uint64_t heavy_min_messages = 1000;
  /// kDChoices: cap on per-heavy-key candidates; 0 = no cap (a key may
  /// escalate all the way to the all-workers W-Choices path).
  uint32_t head_choices = 0;
  /// kDChoices: balance slack of the epsilon-derived policy (> 0) — a
  /// heavy key of share p gets ceil(p*W/eps) candidates, keeping any
  /// single worker's total share within (1+eps)/W.
  double head_epsilon = 0.05;

  /// kConsistent: virtual nodes per worker.
  uint32_t virtual_nodes = 64;
  /// kConsistent: replicas considered per key (num_choices is NOT reused so
  /// plain CH stays the default; set 2 for PKG-over-ring).
  uint32_t ring_replicas = 1;
};

/// \brief Display name used in tables ("PKG", "Hashing", ...).
std::string TechniqueName(Technique technique);

/// \brief Parses a technique name (the inverse of TechniqueName, also
/// accepting the paper's aliases: "H", "KG", "SG", "G", "L", "LP").
Result<Technique> ParseTechnique(const std::string& name);

/// \brief Builds a configured partitioner; validates the config.
Result<PartitionerPtr> MakePartitioner(const PartitionerConfig& config);

/// \brief Builds `replicas` independent partitioners from one config —
/// one per upstream source instance. Element 0 is exactly what
/// MakePartitioner returns; the rest are Clone()s of it (identical
/// configuration and hash family, private state). ThreadedRuntime routes
/// every upstream instance through its own replica so the hot path takes
/// no lock and load-estimator state is genuinely per-source.
Result<std::vector<PartitionerPtr>> MakePartitionerReplicas(
    const PartitionerConfig& config, uint32_t replicas);

}  // namespace partition
}  // namespace pkgstream

#endif  // PKGSTREAM_PARTITION_FACTORY_H_
