// Copyright 2026 The pkgstream Authors.

#include "partition/greedy.h"

#include <algorithm>

#include "common/logging.h"

namespace pkgstream {
namespace partition {

OnlineGreedy::OnlineGreedy(uint32_t sources, uint32_t workers)
    : sources_(sources), loads_(workers, 0) {
  PKGSTREAM_CHECK(sources >= 1 && workers >= 1);
}

WorkerId OnlineGreedy::Route(SourceId source, Key key) {
  PKGSTREAM_DCHECK(source < sources_);
  (void)source;
  auto it = table_.find(key);
  if (it == table_.end()) {
    WorkerId best = 0;
    for (WorkerId w = 1; w < loads_.size(); ++w) {
      if (loads_[w] < loads_[best]) best = w;
    }
    it = table_.emplace(key, best).first;
  }
  ++loads_[it->second];
  return it->second;
}

OfflineGreedy::OfflineGreedy(uint32_t sources, uint32_t workers,
                             const stats::FrequencyTable& frequencies,
                             uint64_t seed)
    : hash_(/*d=*/1, workers, seed),
      sources_(sources),
      planned_(workers, 0) {
  PKGSTREAM_CHECK(sources >= 1 && workers >= 1);
  // LPT: heaviest key first onto the least-loaded worker.
  auto sorted = frequencies.TopK();
  table_.reserve(sorted.size());
  for (const auto& [key, count] : sorted) {
    WorkerId best = 0;
    for (WorkerId w = 1; w < planned_.size(); ++w) {
      if (planned_[w] < planned_[best]) best = w;
    }
    planned_[best] += count;
    table_.emplace(key, best);
  }
}

WorkerId OfflineGreedy::Route(SourceId source, Key key) {
  PKGSTREAM_DCHECK(source < sources_);
  (void)source;
  auto it = table_.find(key);
  if (it != table_.end()) return it->second;
  return hash_.Bucket(0, key);
}

}  // namespace partition
}  // namespace pkgstream
