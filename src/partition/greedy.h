// Copyright 2026 The pkgstream Authors.
// Greedy reference baselines from Table II:
//
//   On-Greedy  — online: the first time a key appears it is assigned to the
//                currently least-loaded worker (full choice among all W, not
//                just two), and the choice is remembered. Needs a routing
//                table and global load: impractical, but a strong online
//                reference.
//   Off-Greedy — offline: knows the complete key-frequency histogram in
//                advance, sorts keys by decreasing frequency and assigns
//                each to the least-loaded worker (LPT scheduling). An
//                *unfair* clairvoyant baseline — the paper's headline is
//                that PKG beats even this, because splitting a hot key over
//                two workers can do what no unsplit assignment can.

#ifndef PKGSTREAM_PARTITION_GREEDY_H_
#define PKGSTREAM_PARTITION_GREEDY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "partition/partitioner.h"
#include "stats/frequency.h"

namespace pkgstream {
namespace partition {

/// \brief Online greedy: new key -> currently least-loaded worker, frozen.
class OnlineGreedy final : public Partitioner {
 public:
  OnlineGreedy(uint32_t sources, uint32_t workers);

  WorkerId Route(SourceId source, Key key) override;
  uint32_t workers() const override {
    return static_cast<uint32_t>(loads_.size());
  }
  uint32_t sources() const override { return sources_; }
  uint32_t MaxWorkersPerKey() const override { return 1; }
  std::string Name() const override { return "On-Greedy"; }
  PartitionerPtr Clone() const override {
    return std::make_unique<OnlineGreedy>(*this);
  }

  size_t RoutingTableSize() const { return table_.size(); }

 private:
  uint32_t sources_;
  std::vector<uint64_t> loads_;
  std::unordered_map<Key, WorkerId> table_;
};

/// \brief Offline greedy (LPT on true frequencies).
///
/// Built from a FrequencyTable of the *entire* stream before routing starts.
/// Keys absent from the table (never possible when the table matches the
/// stream) fall back to hashing so Route is total.
class OfflineGreedy final : public Partitioner {
 public:
  OfflineGreedy(uint32_t sources, uint32_t workers,
                const stats::FrequencyTable& frequencies, uint64_t seed);

  WorkerId Route(SourceId source, Key key) override;
  uint32_t workers() const override { return hash_.buckets(); }
  uint32_t sources() const override { return sources_; }
  uint32_t MaxWorkersPerKey() const override { return 1; }
  std::string Name() const override { return "Off-Greedy"; }
  PartitionerPtr Clone() const override {
    return std::make_unique<OfflineGreedy>(*this);
  }

  /// The planned (expected) load of each worker under the LPT assignment.
  const std::vector<uint64_t>& planned_loads() const { return planned_; }

 private:
  HashFamily hash_;  // fallback for unknown keys
  uint32_t sources_;
  std::unordered_map<Key, WorkerId> table_;
  std::vector<uint64_t> planned_;
};

}  // namespace partition
}  // namespace pkgstream

#endif  // PKGSTREAM_PARTITION_GREEDY_H_
