// Copyright 2026 The pkgstream Authors.

#include "partition/heavy_hitter_pkg.h"

#include <algorithm>
#include <cmath>

#include "common/hash_simd.h"
#include "common/logging.h"
#include "common/simd.h"

namespace pkgstream {
namespace partition {

namespace {

// Same vector-argmin gate as pkg.cc: below a few hundred buckets the
// cross-row conflict check refuses nearly every group; above 2^30 the
// gather's signed 32-bit indices run out.
constexpr uint32_t kVectorArgminMinBuckets = 256;
constexpr uint32_t kVectorArgminMaxBuckets = 1u << 30;

/// Members the head hash family needs: the D-Choices cap (adaptive or
/// fixed). Plain W-Choices never hashes head keys, so one member suffices.
uint32_t HeadFamilySize(const HeavyHitterPkgOptions& options,
                        uint32_t workers) {
  uint32_t cap = options.head_choices;
  if (cap == 0) cap = options.adaptive_head ? workers : 1;
  return std::max(1u, std::min(cap, workers));
}

}  // namespace

HeavyHitterAwarePkg::HeavyHitterAwarePkg(uint32_t sources, uint32_t workers,
                                         LoadEstimatorPtr estimator,
                                         HeavyHitterPkgOptions options)
    : sources_(sources),
      workers_(workers),
      tail_hash_(options.base_choices, workers, options.hash_seed),
      head_hash_(HeadFamilySize(options, workers), workers,
                 Fmix64(options.hash_seed) | 1),
      estimator_(std::move(estimator)),
      options_(options) {
  PKGSTREAM_CHECK(sources >= 1 && workers >= 1);
  PKGSTREAM_CHECK(options_.base_choices >= 1);
  PKGSTREAM_CHECK(options_.head_choices <= workers);
  PKGSTREAM_CHECK(options_.sketch_capacity >= 1);
  PKGSTREAM_CHECK(!options_.adaptive_head || options_.epsilon > 0.0);
  PKGSTREAM_CHECK(estimator_ != nullptr);
  sketches_.reserve(sources);
  for (uint32_t s = 0; s < sources; ++s) {
    sketches_.emplace_back(options_.sketch_capacity);
  }
  source_messages_.assign(sources, 0);
}

HeavyHitterAwarePkg::HeavyHitterAwarePkg(const HeavyHitterAwarePkg& other)
    : sources_(other.sources_),
      workers_(other.workers_),
      tail_hash_(other.tail_hash_),
      head_hash_(other.head_hash_),
      estimator_(other.estimator_->Clone()),
      options_(other.options_),
      sketches_(other.sketches_),
      source_messages_(other.source_messages_),
      heavy_routings_(other.heavy_routings_),
      alive_(other.alive_),
      degraded_(other.degraded_) {}

PartitionerPtr HeavyHitterAwarePkg::Clone() const {
  return PartitionerPtr(new HeavyHitterAwarePkg(*this));
}

bool HeavyHitterAwarePkg::IsHeavy(SourceId source, Key key) const {
  uint64_t seen = source_messages_[source];
  if (seen < options_.min_messages) return false;
  const stats::SpaceSaving& sketch = sketches_[source];
  if (!sketch.Contains(key)) return false;
  double share = static_cast<double>(sketch.Estimate(key)) /
                 static_cast<double>(seen);
  return share > options_.threshold_factor / static_cast<double>(workers_);
}

uint32_t HeavyHitterAwarePkg::HeadChoicesFor(SourceId source, Key key) const {
  if (!options_.adaptive_head) {
    return options_.head_choices == 0 ? workers_ : options_.head_choices;
  }
  // The sequel's rule: a candidate of a share-p key carries p/d_k of the
  // stream from that key ON TOP of its ~1/W background share, so keeping
  // the total within (1+eps)/W needs p/d_k <= eps/W, i.e.
  // d_k >= p*W/eps. (Dividing by (1+eps) instead — just enough slots for
  // the key's own mass — leaves zero redundancy: random candidate sets
  // collide, the union covers a fraction of the cluster, and the heavy
  // mass piles onto the covered part.) SPACESAVING only overestimates, so
  // d_k errs toward more spread, never less; the very head escalates past
  // workers() into the full-scan W-Choices path.
  const double share =
      static_cast<double>(sketches_[source].Estimate(key)) /
      static_cast<double>(source_messages_[source]);
  const double spread =
      share * static_cast<double>(workers_) / options_.epsilon;
  uint32_t dk = spread >= static_cast<double>(workers_)
                    ? workers_
                    : static_cast<uint32_t>(std::ceil(spread));
  const uint32_t cap = options_.head_choices == 0
                           ? workers_
                           : std::min(options_.head_choices, workers_);
  return std::min(std::max(dk, options_.base_choices), cap);
}

Status HeavyHitterAwarePkg::SetWorkerSet(const std::vector<bool>& alive) {
  if (alive.size() != workers_) {
    return Status::InvalidArgument(
        "worker set size " + std::to_string(alive.size()) +
        " != " + std::to_string(workers_) + " workers");
  }
  uint32_t alive_count = 0;
  for (bool a : alive) alive_count += a ? 1 : 0;
  if (alive_count == 0) {
    return Status::InvalidArgument("worker set has zero alive workers");
  }
  alive_.assign(alive.begin(), alive.end());
  degraded_ = alive_count != workers_;
  return Status::OK();
}

WorkerId HeavyHitterAwarePkg::RouteDegraded(SourceId source, Key key) {
  sketches_[source].Add(key);
  ++source_messages_[source];
  estimator_->BeginRoute(source);
  bool found = false;
  WorkerId best = 0;
  uint64_t best_load = 0;
  const auto consider = [&](WorkerId candidate) {
    if (!alive_[candidate]) return;
    const uint64_t load = estimator_->Estimate(source, candidate);
    if (!found || load < best_load) {
      found = true;
      best = candidate;
      best_load = load;
    }
  };
  if (IsHeavy(source, key)) {
    ++heavy_routings_;
    const uint32_t dk = HeadChoicesFor(source, key);
    if (dk >= workers_) {
      for (WorkerId w = 0; w < workers_; ++w) consider(w);
    } else {
      for (uint32_t i = 0; i < dk; ++i) consider(head_hash_.Bucket(i, key));
    }
  } else {
    for (uint32_t i = 0; i < tail_hash_.d(); ++i) {
      consider(tail_hash_.Bucket(i, key));
    }
  }
  if (!found) {
    // Every candidate is dead: least-loaded alive worker, lowest index on
    // ties (the W-Choices scan restricted to the alive set).
    for (WorkerId w = 0; w < workers_; ++w) consider(w);
  }
  estimator_->OnSend(source, best);
  return best;
}

WorkerId HeavyHitterAwarePkg::Route(SourceId source, Key key) {
  PKGSTREAM_DCHECK(source < sources_);
  if (degraded_) return RouteDegraded(source, key);
  sketches_[source].Add(key);
  ++source_messages_[source];

  estimator_->BeginRoute(source);
  WorkerId best;
  if (IsHeavy(source, key)) {
    ++heavy_routings_;
    const uint32_t dk = HeadChoicesFor(source, key);
    if (dk >= workers_) {
      // W-Choices: full choice among all workers for the head keys.
      best = 0;
      uint64_t best_load = estimator_->Estimate(source, 0);
      for (WorkerId w = 1; w < workers_; ++w) {
        uint64_t load = estimator_->Estimate(source, w);
        if (load < best_load) {
          best = w;
          best_load = load;
        }
      }
    } else {
      // D-Choices: the first d_k members of the head hash family — a
      // growing prefix, so a key keeps its earlier candidates as its
      // estimated share (and with it d_k) rises.
      best = head_hash_.Bucket(0, key);
      uint64_t best_load = estimator_->Estimate(source, best);
      for (uint32_t i = 1; i < dk; ++i) {
        WorkerId candidate = head_hash_.Bucket(i, key);
        uint64_t load = estimator_->Estimate(source, candidate);
        if (load < best_load) {
          best = candidate;
          best_load = load;
        }
      }
    }
  } else {
    // Tail keys: plain PKG.
    best = tail_hash_.Bucket(0, key);
    uint64_t best_load = estimator_->Estimate(source, best);
    for (uint32_t i = 1; i < tail_hash_.d(); ++i) {
      WorkerId candidate = tail_hash_.Bucket(i, key);
      uint64_t load = estimator_->Estimate(source, candidate);
      if (load < best_load) {
        best = candidate;
        best_load = load;
      }
    }
  }
  estimator_->OnSend(source, best);
  return best;
}

template <typename Frame>
void HeavyHitterAwarePkg::FusedRoute(SourceId source, Frame frame,
                                     const Key* keys, WorkerId* out,
                                     size_t n) {
  constexpr size_t kChunk = 256;
  const uint32_t b = tail_hash_.d();
  const bool columns = b >= 2 && b <= simd::kMaxWideArgminChoices;
  uint32_t cand[simd::kMaxWideArgminChoices][kChunk];
  uint8_t heavy[kChunk];
  uint32_t dk[kChunk];
  const bool vector_argmin =
      Frame::kVectorArgmin && columns &&
      workers_ >= kVectorArgminMinBuckets &&
      workers_ <= kVectorArgminMaxBuckets &&
      simd::ActiveSimdLevel() >= simd::SimdLevel::kAvx2;
  stats::SpaceSaving& sketch = sketches_[source];
  uint64_t& seen = source_messages_[source];
  size_t done = 0;
  while (done < n) {
    const size_t len = std::min(kChunk, n - done);
    // Classification pre-pass. Sketch state depends only on the key
    // sequence, never on routing decisions, so feeding the whole chunk
    // ahead of the estimator protocol classifies message i against exactly
    // the sketch state the scalar Route would see — the heavy flags, the
    // d_k values, and heavy_routings_ all match bit for bit.
    for (size_t j = 0; j < len; ++j) {
      const Key key = keys[done + j];
      sketch.Add(key);
      ++seen;
      const bool is_heavy = IsHeavy(source, key);
      heavy[j] = is_heavy ? 1 : 0;
      if (is_heavy) {
        ++heavy_routings_;
        dk[j] = HeadChoicesFor(source, key);
      }
    }
    if (columns) {
      for (uint32_t c = 0; c < b; ++c) {
        tail_hash_.BucketBatch(c, keys + done, cand[c], len);
      }
    }
    // The one copy of the sequential protocol (cf. pkg.cc): BeginRoute,
    // Estimate over the row's candidate set, OnSend — identical to the
    // scalar Route for every class of row.
    const auto route_row = [&](size_t j) {
      const Key key = keys[done + j];
      frame.BeginRoute();
      WorkerId best;
      uint64_t best_load;
      if (heavy[j]) {
        if (dk[j] >= workers_) {
          best = 0;
          best_load = frame.Estimate(0);
          for (WorkerId w = 1; w < workers_; ++w) {
            const uint64_t load = frame.Estimate(w);
            if (load < best_load) {
              best = w;
              best_load = load;
            }
          }
        } else {
          best = head_hash_.Bucket(0, key);
          best_load = frame.Estimate(best);
          for (uint32_t i = 1; i < dk[j]; ++i) {
            const WorkerId candidate = head_hash_.Bucket(i, key);
            const uint64_t load = frame.Estimate(candidate);
            if (load < best_load) {
              best = candidate;
              best_load = load;
            }
          }
        }
      } else if (columns) {
        best = cand[0][j];
        best_load = frame.Estimate(best);
        for (uint32_t c = 1; c < b; ++c) {
          const WorkerId candidate = cand[c][j];
          const uint64_t load = frame.Estimate(candidate);
          if (load < best_load) {
            best = candidate;
            best_load = load;
          }
        }
      } else {
        best = tail_hash_.Bucket(0, key);
        best_load = frame.Estimate(best);
        for (uint32_t i = 1; i < b; ++i) {
          const WorkerId candidate = tail_hash_.Bucket(i, key);
          const uint64_t load = frame.Estimate(candidate);
          if (load < best_load) {
            best = candidate;
            best_load = load;
          }
        }
      }
      frame.OnSend(best);
      out[done + j] = best;
    };
    size_t j = 0;
    if constexpr (Frame::kVectorArgmin) {
      if (vector_argmin) {
        const uint32_t* group_cols[simd::kMaxWideArgminChoices];
        while (j + 4 <= len) {
          // Vector groups need four consecutive all-tail rows; any heavy
          // row routes scalar and the group window slides past it.
          if (heavy[j] | heavy[j + 1] | heavy[j + 2] | heavy[j + 3]) {
            route_row(j);
            ++j;
            continue;
          }
          bool committed;
          if (b == 2) {
            committed = simd::ArgminX4Avx2(cand[0] + j, cand[1] + j,
                                           frame.estimates(), out + done + j);
          } else {
            for (uint32_t c = 0; c < b; ++c) group_cols[c] = cand[c] + j;
            committed = simd::ArgminX4WideAvx2(group_cols, b,
                                               frame.estimates(),
                                               out + done + j);
          }
          if (committed) {
            for (size_t t = j; t < j + 4; ++t) frame.OnSend(out[done + t]);
          } else {
            for (size_t t = j; t < j + 4; ++t) route_row(t);
          }
          j += 4;
        }
      }
    }
    for (; j < len; ++j) route_row(j);
    done += len;
  }
}

void HeavyHitterAwarePkg::RouteBatch(SourceId source, const Key* keys,
                                     WorkerId* out, size_t n) {
  PKGSTREAM_DCHECK(source < sources_);
  if (degraded_) {
    // Degraded routing is the cold path: the scalar loop keeps batch and
    // scalar decisions trivially identical while workers are down.
    Partitioner::RouteBatch(source, keys, out, n);
    return;
  }
  // One concrete-type resolution per batch buys a virtual-free inner loop
  // (same dispatch as PartialKeyGrouping::RouteBatch).
  LoadEstimator* estimator = estimator_.get();
  if (auto* local = dynamic_cast<LocalLoadEstimator*>(estimator)) {
    FusedRoute(source, local->MakeRoutingFrame(source), keys, out, n);
  } else if (auto* global = dynamic_cast<GlobalLoadEstimator*>(estimator)) {
    FusedRoute(source, global->MakeRoutingFrame(source), keys, out, n);
  } else if (auto* probing = dynamic_cast<ProbingLoadEstimator*>(estimator)) {
    FusedRoute(source, probing->MakeRoutingFrame(source), keys, out, n);
  } else {
    Partitioner::RouteBatch(source, keys, out, n);
  }
}

std::string HeavyHitterAwarePkg::Name() const {
  if (options_.adaptive_head) {
    return "D-Choices-" + estimator_->Name();
  }
  if (options_.head_choices == 0) {
    return "W-Choices-" + estimator_->Name();
  }
  return "D-Choices(" + std::to_string(options_.head_choices) + ")-" +
         estimator_->Name();
}

}  // namespace partition
}  // namespace pkgstream
