// Copyright 2026 The pkgstream Authors.

#include "partition/heavy_hitter_pkg.h"

#include "common/logging.h"

namespace pkgstream {
namespace partition {

HeavyHitterAwarePkg::HeavyHitterAwarePkg(uint32_t sources, uint32_t workers,
                                         LoadEstimatorPtr estimator,
                                         HeavyHitterPkgOptions options)
    : sources_(sources),
      workers_(workers),
      tail_hash_(options.base_choices, workers, options.hash_seed),
      head_hash_(options.head_choices == 0 ? 1 : options.head_choices,
                 workers, Fmix64(options.hash_seed) | 1),
      estimator_(std::move(estimator)),
      options_(options) {
  PKGSTREAM_CHECK(sources >= 1 && workers >= 1);
  PKGSTREAM_CHECK(options_.base_choices >= 1);
  PKGSTREAM_CHECK(options_.head_choices <= workers);
  PKGSTREAM_CHECK(options_.sketch_capacity >= 1);
  PKGSTREAM_CHECK(estimator_ != nullptr);
  sketches_.reserve(sources);
  for (uint32_t s = 0; s < sources; ++s) {
    sketches_.emplace_back(options_.sketch_capacity);
  }
  source_messages_.assign(sources, 0);
}

HeavyHitterAwarePkg::HeavyHitterAwarePkg(const HeavyHitterAwarePkg& other)
    : sources_(other.sources_),
      workers_(other.workers_),
      tail_hash_(other.tail_hash_),
      head_hash_(other.head_hash_),
      estimator_(other.estimator_->Clone()),
      options_(other.options_),
      sketches_(other.sketches_),
      source_messages_(other.source_messages_),
      heavy_routings_(other.heavy_routings_) {}

PartitionerPtr HeavyHitterAwarePkg::Clone() const {
  return PartitionerPtr(new HeavyHitterAwarePkg(*this));
}

bool HeavyHitterAwarePkg::IsHeavy(SourceId source, Key key) const {
  uint64_t seen = source_messages_[source];
  if (seen < options_.min_messages) return false;
  const stats::SpaceSaving& sketch = sketches_[source];
  if (!sketch.Contains(key)) return false;
  double share = static_cast<double>(sketch.Estimate(key)) /
                 static_cast<double>(seen);
  return share > options_.threshold_factor / static_cast<double>(workers_);
}

WorkerId HeavyHitterAwarePkg::Route(SourceId source, Key key) {
  PKGSTREAM_DCHECK(source < sources_);
  sketches_[source].Add(key);
  ++source_messages_[source];

  estimator_->BeginRoute(source);
  WorkerId best;
  if (IsHeavy(source, key)) {
    ++heavy_routings_;
    if (options_.head_choices == 0) {
      // W-Choices: full choice among all workers for the head keys.
      best = 0;
      uint64_t best_load = estimator_->Estimate(source, 0);
      for (WorkerId w = 1; w < workers_; ++w) {
        uint64_t load = estimator_->Estimate(source, w);
        if (load < best_load) {
          best = w;
          best_load = load;
        }
      }
    } else {
      // D-Choices: head_choices hash candidates.
      best = head_hash_.Bucket(0, key);
      uint64_t best_load = estimator_->Estimate(source, best);
      for (uint32_t i = 1; i < head_hash_.d(); ++i) {
        WorkerId candidate = head_hash_.Bucket(i, key);
        uint64_t load = estimator_->Estimate(source, candidate);
        if (load < best_load) {
          best = candidate;
          best_load = load;
        }
      }
    }
  } else {
    // Tail keys: plain PKG.
    best = tail_hash_.Bucket(0, key);
    uint64_t best_load = estimator_->Estimate(source, best);
    for (uint32_t i = 1; i < tail_hash_.d(); ++i) {
      WorkerId candidate = tail_hash_.Bucket(i, key);
      uint64_t load = estimator_->Estimate(source, candidate);
      if (load < best_load) {
        best = candidate;
        best_load = load;
      }
    }
  }
  estimator_->OnSend(source, best);
  return best;
}

std::string HeavyHitterAwarePkg::Name() const {
  if (options_.head_choices == 0) {
    return "W-Choices-" + estimator_->Name();
  }
  return "D-Choices(" + std::to_string(options_.head_choices) + ")-" +
         estimator_->Name();
}

}  // namespace partition
}  // namespace pkgstream
