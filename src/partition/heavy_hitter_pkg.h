// Copyright 2026 The pkgstream Authors.
// Heavy-hitter-aware PKG — the extension the paper's analysis begs for and
// its conclusions point at ("is it possible to achieve good load balance
// ... which other primitives can a DSPE offer?", Section VIII; the idea
// became the authors' follow-up "When Two Choices Are not Enough":
// D-Choices / W-Choices, Nasir et al. 2016).
//
// Section IV shows two choices cannot balance once the head probability
// exceeds ~2/n: the hot key's two candidate workers must absorb p1/2 of the
// stream each, above the 1/n average. The fix: give *only the heavy keys*
// more choices. Each source detects heavy hitters in its own sub-stream
// with a SPACESAVING sketch (no coordination — the same philosophy as local
// load estimation) and routes them among d_head candidates (or all
// workers); the long tail keeps plain two-choice key splitting, so the
// per-key state blow-up stays confined to the handful of keys that already
// need aggregation everywhere.
//
// The follow-up's policy is adaptive: the threshold and each heavy key's
// choice count are *derived* from the worker count and the key's measured
// share, not fixed a priori. A candidate of a share-p key carries p/d_k of
// the stream from that key on top of its ~1/W background share, so keeping
// every worker within (1+eps) of the average needs p/d_k <= eps/W: the
// adaptive policy gives the key d_k = ceil(p·W / eps) candidates — a
// prefix of one fixed head hash family, so the set only grows as the
// estimate sharpens — escalating smoothly from plain PKG through D-Choices
// to all-workers W-Choices for the very head. eps is the balance slack:
// it bounds the relative overload any one heavy key can force, and the
// 1/eps inflation also buys the candidate-set redundancy greedy needs
// once the heavy mass claims a sizable fraction of the cluster.

#ifndef PKGSTREAM_PARTITION_HEAVY_HITTER_PKG_H_
#define PKGSTREAM_PARTITION_HEAVY_HITTER_PKG_H_

#include <memory>
#include <string>
#include <vector>

#include "stats/space_saving.h"
#include "common/hash.h"
#include "partition/load_estimator.h"
#include "partition/partitioner.h"

namespace pkgstream {
namespace partition {

/// \brief Tuning for HeavyHitterAwarePkg.
struct HeavyHitterPkgOptions {
  /// Choices for ordinary (tail) keys; 2 = plain PKG.
  uint32_t base_choices = 2;
  /// Cap on choices for detected heavy hitters; 0 means all workers (the
  /// "W-Choices" policy), otherwise up to d_head hash candidates
  /// ("D-Choices"). With adaptive_head this is the *cap*; without it, every
  /// heavy key uses exactly this many candidates.
  uint32_t head_choices = 0;
  /// Per-source SPACESAVING capacity for the detector. Must be large enough
  /// that every key above the heavy threshold owns a counter: capacity >=
  /// workers / threshold_factor guarantees detection (SPACESAVING tracks
  /// every key with share > 1/capacity).
  size_t sketch_capacity = 256;
  /// A key is heavy when its estimated share of the source's sub-stream
  /// exceeds threshold_factor / workers (theory: 2 choices suffice only
  /// below ~2/n, so factor 1 flags everything near the danger zone and
  /// factor base_choices flags exactly the keys beyond the Section IV
  /// wall).
  double threshold_factor = 1.0;
  /// Detection warm-up: no key is considered heavy before this many
  /// messages from the source (estimates are noise at the very start).
  uint64_t min_messages = 1000;
  /// The sequel's epsilon-derived per-key policy: each heavy key of
  /// estimated share p gets d_k = ceil(p * workers / epsilon) candidates
  /// (clamped to [base_choices, head cap]), all workers once d_k reaches
  /// the worker count. When false, every heavy key uses the fixed
  /// head_choices policy above.
  bool adaptive_head = false;
  /// Balance slack for adaptive_head (must be > 0 there): a candidate of a
  /// share-p key carries p/d_k from that key on top of its ~1/workers
  /// background, so d_k = p*workers/epsilon keeps every worker within
  /// (1 + epsilon) of the average. Smaller = more candidates.
  double epsilon = 0.05;
  uint64_t hash_seed = 0x9E3779B97F4A7C15ULL;
};

/// \brief PKG with per-source heavy-hitter detection and per-class choices.
class HeavyHitterAwarePkg final : public Partitioner {
 public:
  HeavyHitterAwarePkg(uint32_t sources, uint32_t workers,
                      LoadEstimatorPtr estimator,
                      HeavyHitterPkgOptions options = {});

  WorkerId Route(SourceId source, Key key) override;
  void RouteBatch(SourceId source, const Key* keys, WorkerId* out,
                  size_t n) override;
  uint32_t workers() const override { return workers_; }
  uint32_t sources() const override { return sources_; }
  /// Heavy keys may touch all workers (W-Choices) or head_choices of them.
  uint32_t MaxWorkersPerKey() const override {
    return options_.head_choices == 0 ? workers_ : options_.head_choices;
  }
  std::string Name() const override;
  PartitionerPtr Clone() const override;

  /// Live reconfiguration: dead workers drop out of every candidate scan
  /// (tail prefix, D-Choices head prefix, and the W-Choices full scan);
  /// a fully dead candidate set falls back to the least-loaded alive
  /// worker. Healthy routing is byte-untouched.
  bool SupportsReconfiguration() const override { return true; }
  Status SetWorkerSet(const std::vector<bool>& alive) override;

  /// Whether `source`'s detector currently classifies `key` as heavy.
  bool IsHeavy(SourceId source, Key key) const;

  /// The choice count a heavy `key` gets *right now* (>= workers() means
  /// the full-scan W-Choices path). Deterministic in the sketch state, so
  /// batch classification can precompute it without touching the estimator.
  uint32_t HeadChoicesFor(SourceId source, Key key) const;

  /// Messages routed through the expanded-choice path (diagnostics).
  uint64_t heavy_routings() const { return heavy_routings_; }

 private:
  /// Deep copy (clones the estimator); only Clone() uses it.
  HeavyHitterAwarePkg(const HeavyHitterAwarePkg& other);

  /// Route with dead workers filtered out of every candidate scan (the
  /// degraded_ slow path; same sketch + estimator protocol as Route).
  WorkerId RouteDegraded(SourceId source, Key key);

  /// The fused batch loop behind RouteBatch, devirtualized over the
  /// estimator's routing frame (same pattern as pkg.cc).
  template <typename Frame>
  void FusedRoute(SourceId source, Frame frame, const Key* keys,
                  WorkerId* out, size_t n);

  uint32_t sources_;
  uint32_t workers_;
  HashFamily tail_hash_;  // base_choices functions
  HashFamily head_hash_;  // up to head-cap functions (unused for W-Choices)
  LoadEstimatorPtr estimator_;
  HeavyHitterPkgOptions options_;
  std::vector<stats::SpaceSaving> sketches_;  // one per source
  std::vector<uint64_t> source_messages_;
  uint64_t heavy_routings_ = 0;
  /// Alive mask; degraded_ == false guarantees the untouched healthy path.
  std::vector<uint8_t> alive_;
  bool degraded_ = false;
};

}  // namespace partition
}  // namespace pkgstream

#endif  // PKGSTREAM_PARTITION_HEAVY_HITTER_PKG_H_
