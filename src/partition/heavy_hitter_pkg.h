// Copyright 2026 The pkgstream Authors.
// Heavy-hitter-aware PKG — the extension the paper's analysis begs for and
// its conclusions point at ("is it possible to achieve good load balance
// ... which other primitives can a DSPE offer?", Section VIII; the idea
// became the authors' follow-up work on D-Choices/W-Choices).
//
// Section IV shows two choices cannot balance once the head probability
// exceeds ~2/n: the hot key's two candidate workers must absorb p1/2 of the
// stream each, above the 1/n average. The fix: give *only the heavy keys*
// more choices. Each source detects heavy hitters in its own sub-stream
// with a SPACESAVING sketch (no coordination — the same philosophy as local
// load estimation) and routes them among `head_choices` candidates (or all
// workers); the long tail keeps plain two-choice key splitting, so the
// per-key state blow-up stays confined to the handful of keys that already
// need aggregation everywhere.

#ifndef PKGSTREAM_PARTITION_HEAVY_HITTER_PKG_H_
#define PKGSTREAM_PARTITION_HEAVY_HITTER_PKG_H_

#include <memory>
#include <string>
#include <vector>

#include "stats/space_saving.h"
#include "common/hash.h"
#include "partition/load_estimator.h"
#include "partition/partitioner.h"

namespace pkgstream {
namespace partition {

/// \brief Tuning for HeavyHitterAwarePkg.
struct HeavyHitterPkgOptions {
  /// Choices for ordinary (tail) keys; 2 = plain PKG.
  uint32_t base_choices = 2;
  /// Choices for detected heavy hitters; 0 means all workers (the
  /// "W-Choices" policy), otherwise d_head hash candidates ("D-Choices").
  uint32_t head_choices = 0;
  /// Per-source SPACESAVING capacity for the detector.
  size_t sketch_capacity = 256;
  /// A key is heavy when its estimated share of the source's sub-stream
  /// exceeds threshold_factor / workers (theory: 2 choices suffice only
  /// below ~2/n, so factor 1 flags everything near the danger zone).
  double threshold_factor = 1.0;
  /// Detection warm-up: no key is considered heavy before this many
  /// messages from the source (estimates are noise at the very start).
  uint64_t min_messages = 1000;
  uint64_t hash_seed = 0x9E3779B97F4A7C15ULL;
};

/// \brief PKG with per-source heavy-hitter detection and per-class choices.
class HeavyHitterAwarePkg final : public Partitioner {
 public:
  HeavyHitterAwarePkg(uint32_t sources, uint32_t workers,
                      LoadEstimatorPtr estimator,
                      HeavyHitterPkgOptions options = {});

  WorkerId Route(SourceId source, Key key) override;
  uint32_t workers() const override { return workers_; }
  uint32_t sources() const override { return sources_; }
  /// Heavy keys may touch all workers (W-Choices) or head_choices of them.
  uint32_t MaxWorkersPerKey() const override {
    return options_.head_choices == 0 ? workers_ : options_.head_choices;
  }
  std::string Name() const override;
  PartitionerPtr Clone() const override;

  /// Whether `source`'s detector currently classifies `key` as heavy.
  bool IsHeavy(SourceId source, Key key) const;

  /// Messages routed through the expanded-choice path (diagnostics).
  uint64_t heavy_routings() const { return heavy_routings_; }

 private:
  /// Deep copy (clones the estimator); only Clone() uses it.
  HeavyHitterAwarePkg(const HeavyHitterAwarePkg& other);

  uint32_t sources_;
  uint32_t workers_;
  HashFamily tail_hash_;  // base_choices functions
  HashFamily head_hash_;  // head_choices functions (unused for W-Choices)
  LoadEstimatorPtr estimator_;
  HeavyHitterPkgOptions options_;
  std::vector<stats::SpaceSaving> sketches_;  // one per source
  std::vector<uint64_t> source_messages_;
  uint64_t heavy_routings_ = 0;
};

}  // namespace partition
}  // namespace pkgstream

#endif  // PKGSTREAM_PARTITION_HEAVY_HITTER_PKG_H_
