// Copyright 2026 The pkgstream Authors.

#include "partition/key_grouping.h"

#include "common/logging.h"

namespace pkgstream {
namespace partition {

KeyGrouping::KeyGrouping(uint32_t sources, uint32_t workers, uint64_t seed)
    : hash_(/*d=*/1, workers, seed), sources_(sources) {
  PKGSTREAM_CHECK(sources >= 1);
}

WorkerId KeyGrouping::Route(SourceId source, Key key) {
  PKGSTREAM_DCHECK(source < sources_);
  (void)source;  // routing is independent of the source: pure hashing
  return hash_.Bucket(0, key);
}

void KeyGrouping::RouteBatch(SourceId source, const Key* keys, WorkerId* out,
                             size_t n) {
  PKGSTREAM_DCHECK(source < sources_);
  (void)source;
  // The whole batch is one BucketBatch sweep, which dispatches to the SIMD
  // multi-key kernels on capable hosts (common/simd.h) — KG is the pure
  // "two hashes minus one" case, so it rides the vector lane end to end.
  hash_.BucketBatch(0, keys, out, n);
}

}  // namespace partition
}  // namespace pkgstream
