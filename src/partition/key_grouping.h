// Copyright 2026 The pkgstream Authors.
// Key grouping (the paper's baseline "H", Section III "Single choice"):
// P_t(k) = H1(k) mod W. Stateless, coordination-free, and the cause of the
// load imbalance the paper sets out to fix.

#ifndef PKGSTREAM_PARTITION_KEY_GROUPING_H_
#define PKGSTREAM_PARTITION_KEY_GROUPING_H_

#include <string>

#include "common/hash.h"
#include "partition/partitioner.h"

namespace pkgstream {
namespace partition {

/// \brief Hash-based key grouping: every key maps to exactly one worker.
class KeyGrouping final : public Partitioner {
 public:
  /// `seed` selects the hash function (a 64-bit Murmur hash, as in the
  /// paper's experiments).
  KeyGrouping(uint32_t sources, uint32_t workers, uint64_t seed);

  WorkerId Route(SourceId source, Key key) override;
  /// Stateless, so the batch form is a pure hash sweep (the specialized
  /// integer Murmur3 inlined over the whole array).
  void RouteBatch(SourceId source, const Key* keys, WorkerId* out,
                  size_t n) override;
  uint32_t workers() const override { return hash_.buckets(); }
  uint32_t sources() const override { return sources_; }
  uint32_t MaxWorkersPerKey() const override { return 1; }
  std::string Name() const override { return "Hashing"; }
  PartitionerPtr Clone() const override {
    return std::make_unique<KeyGrouping>(*this);
  }

 private:
  HashFamily hash_;  // d = 1
  uint32_t sources_;
};

}  // namespace partition
}  // namespace pkgstream

#endif  // PKGSTREAM_PARTITION_KEY_GROUPING_H_
