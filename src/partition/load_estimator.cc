// Copyright 2026 The pkgstream Authors.

#include "partition/load_estimator.h"

#include "common/logging.h"

namespace pkgstream {
namespace partition {

GlobalLoadEstimator::GlobalLoadEstimator(uint32_t sources, uint32_t workers)
    : loads_(workers, 0) {
  PKGSTREAM_CHECK(sources >= 1 && workers >= 1);
}

LocalLoadEstimator::LocalLoadEstimator(uint32_t sources, uint32_t workers)
    : local_(sources, std::vector<uint64_t>(workers, 0)),
      global_(workers, 0) {
  PKGSTREAM_CHECK(sources >= 1 && workers >= 1);
}

ProbingLoadEstimator::ProbingLoadEstimator(uint32_t sources, uint32_t workers,
                                           uint64_t probe_period)
    : local_(sources, std::vector<uint64_t>(workers, 0)),
      global_(workers, 0),
      last_probe_(sources, 0),
      probe_period_(probe_period) {
  PKGSTREAM_CHECK(sources >= 1 && workers >= 1);
  PKGSTREAM_CHECK(probe_period >= 1);
}

void ProbingLoadEstimator::BeginRoute(SourceId source) {
  if (clock_ - last_probe_[source] >= probe_period_) {
    // "When probing is executed, the local estimate vector is set to the
    // actual load of the workers." (Section V, Q2). The probed load is
    // normalized by the number of sources: each source is responsible for
    // balancing its own 1/S share, so adopting the *raw* global vector
    // would make all S sources correct the same deficit simultaneously —
    // a stale-information herd oscillation (cf. Mitzenmacher, "How useful
    // is old information?") that the paper's deployment evidently avoids.
    const uint32_t sources = static_cast<uint32_t>(local_.size());
    auto& mine = local_[source];
    for (size_t w = 0; w < mine.size(); ++w) {
      mine[w] = global_[w] / sources;
    }
    last_probe_[source] = clock_;
    ++probes_;
  }
}

std::string ProbingLoadEstimator::Name() const {
  return "LP(period=" + std::to_string(probe_period_) + ")";
}

}  // namespace partition
}  // namespace pkgstream
