// Copyright 2026 The pkgstream Authors.
// Load estimation (Section III-B). PoTC needs the load of each candidate
// worker at routing time. In a real DSPE that information is remote, so the
// paper contrasts three oracles:
//
//   G  (GlobalLoadEstimator)  — exact global load, the idealized oracle;
//   L  (LocalLoadEstimator)   — each source counts only the messages *it*
//        has sent per worker. The paper's key practical insight is that this
//        is enough: the global load is the sum of per-source loads, so if
//        each source balances its own portion the total stays balanced
//        (max imbalance <= sum of local imbalances);
//   LP (ProbingLoadEstimator) — local estimates refreshed from the true
//        global loads every probe period (the paper's L5P1 etc.), included
//        to show probing buys nothing.

#ifndef PKGSTREAM_PARTITION_LOAD_ESTIMATOR_H_
#define PKGSTREAM_PARTITION_LOAD_ESTIMATOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"

namespace pkgstream {
namespace partition {

/// \brief Per-source view of downstream worker loads.
///
/// Protocol, per message: the partitioner calls BeginRoute(source) once,
/// reads Estimate(source, w) for the candidate workers, then calls
/// OnSend(source, chosen). Implementations use BeginRoute for bookkeeping
/// such as probing schedules.
class LoadEstimator {
 public:
  virtual ~LoadEstimator() = default;

  /// Called once before the estimates for a message are read.
  virtual void BeginRoute(SourceId source) = 0;

  /// Estimated load of worker `w` as seen by `source`.
  virtual uint64_t Estimate(SourceId source, WorkerId w) const = 0;

  /// Records that `source` routed one message to `w`.
  virtual void OnSend(SourceId source, WorkerId w) = 0;

  /// True global loads (available in simulation for G and for probing; a
  /// real deployment of L never reads this).
  virtual const std::vector<uint64_t>& GlobalLoads() const = 0;

  virtual std::string Name() const = 0;

  /// Independent copy of this estimator, state included; the copy shares
  /// nothing with the original. Lets each source own its estimate vectors
  /// outright (see Partitioner::Clone).
  virtual std::unique_ptr<LoadEstimator> Clone() const = 0;
};

using LoadEstimatorPtr = std::unique_ptr<LoadEstimator>;

// Routing frames — the devirtualized estimator protocol.
//
// PKG's fused RouteBatch (pkg.cc) resolves the estimator's concrete type
// once per batch and binds a *routing frame*: a small by-value object that
// captures the per-source state the BeginRoute/Estimate/OnSend protocol
// touches, as raw pointers where the state is plain arrays. The frame
// mirrors the virtual protocol call for call — same reads, same writes,
// same order — so estimator state after a batch is byte-identical to the
// scalar path; it merely removes the per-message virtual dispatch and the
// repeated local_[source] indirection the compiler cannot hoist across
// opaque calls. Frames are transient: bind, route one batch, discard
// (pointers into the estimator do not survive estimator mutation from
// anywhere else).
//
// Frames additionally declare kVectorArgmin: true when BeginRoute is a
// no-op and Estimate reads straight out of a contiguous array the frame
// exposes as estimates() — the preconditions under which the fused d=2
// loop may run the conflict-checked SIMD argmin (pkg.cc) instead of the
// strictly sequential per-message protocol.

/// \brief The global oracle (the paper's G).
class GlobalLoadEstimator final : public LoadEstimator {
 public:
  GlobalLoadEstimator(uint32_t sources, uint32_t workers);

  void BeginRoute(SourceId) override {}
  uint64_t Estimate(SourceId, WorkerId w) const override {
    return loads_[w];
  }
  void OnSend(SourceId, WorkerId w) override { ++loads_[w]; }
  const std::vector<uint64_t>& GlobalLoads() const override { return loads_; }
  std::string Name() const override { return "G"; }
  LoadEstimatorPtr Clone() const override {
    return std::make_unique<GlobalLoadEstimator>(*this);
  }

  /// \brief Fused-routing view over the shared global load vector.
  class RoutingFrame {
   public:
    /// BeginRoute is a no-op and Estimate reads straight out of
    /// estimates() — the contract that lets the d=2 fused loop run the
    /// vectorized argmin (pkg.cc) over this frame.
    static constexpr bool kVectorArgmin = true;

    explicit RoutingFrame(GlobalLoadEstimator* estimator)
        : loads_(estimator->loads_.data()) {}
    void BeginRoute() {}
    uint64_t Estimate(WorkerId w) const { return loads_[w]; }
    void OnSend(WorkerId w) { ++loads_[w]; }
    const uint64_t* estimates() const { return loads_; }

   private:
    uint64_t* loads_;
  };
  RoutingFrame MakeRoutingFrame(SourceId) { return RoutingFrame(this); }

 private:
  std::vector<uint64_t> loads_;
};

/// \brief Purely local estimation (the paper's L): source j tracks L^j_i.
class LocalLoadEstimator final : public LoadEstimator {
 public:
  LocalLoadEstimator(uint32_t sources, uint32_t workers);

  void BeginRoute(SourceId) override {}
  uint64_t Estimate(SourceId source, WorkerId w) const override {
    return local_[source][w];
  }
  void OnSend(SourceId source, WorkerId w) override {
    ++local_[source][w];
    ++global_[w];
  }
  const std::vector<uint64_t>& GlobalLoads() const override { return global_; }
  std::string Name() const override { return "L"; }
  LoadEstimatorPtr Clone() const override {
    return std::make_unique<LocalLoadEstimator>(*this);
  }

  /// The local estimate vector of one source (tests, diagnostics).
  const std::vector<uint64_t>& LocalLoads(SourceId source) const {
    return local_[source];
  }

  /// \brief Fused-routing view for one source: the source's local estimate
  /// row and the ground-truth global vector as raw pointers.
  class RoutingFrame {
   public:
    /// Estimate reads only the local row (estimates()); the extra global
    /// increment in OnSend is order-independent bookkeeping, so the
    /// vectorized argmin's conflict analysis over estimates() alone is
    /// sound here too.
    static constexpr bool kVectorArgmin = true;

    RoutingFrame(LocalLoadEstimator* estimator, SourceId source)
        : local_(estimator->local_[source].data()),
          global_(estimator->global_.data()) {}
    void BeginRoute() {}
    uint64_t Estimate(WorkerId w) const { return local_[w]; }
    void OnSend(WorkerId w) {
      ++local_[w];
      ++global_[w];
    }
    const uint64_t* estimates() const { return local_; }

   private:
    uint64_t* local_;
    uint64_t* global_;
  };
  RoutingFrame MakeRoutingFrame(SourceId source) {
    return RoutingFrame(this, source);
  }

 private:
  std::vector<std::vector<uint64_t>> local_;
  std::vector<uint64_t> global_;  // maintained as ground truth for metrics
};

/// \brief Local estimation with periodic probing (the paper's LP).
///
/// Every `probe_period` global messages, a source's next BeginRoute replaces
/// its local estimate vector with the true global loads — modelling Storm
/// workers answering a load probe. The paper finds this does not improve on
/// pure local estimation (Figure 3, L5P1 vs L5).
class ProbingLoadEstimator final : public LoadEstimator {
 public:
  /// `probe_period` is in messages (the experiment driver converts the
  /// paper's "every Tp minutes" using its stream rate).
  ProbingLoadEstimator(uint32_t sources, uint32_t workers,
                       uint64_t probe_period);

  void BeginRoute(SourceId source) override;
  uint64_t Estimate(SourceId source, WorkerId w) const override {
    return local_[source][w];
  }
  void OnSend(SourceId source, WorkerId w) override {
    ++local_[source][w];
    ++global_[w];
    ++clock_;
  }
  const std::vector<uint64_t>& GlobalLoads() const override { return global_; }
  std::string Name() const override;
  LoadEstimatorPtr Clone() const override {
    return std::make_unique<ProbingLoadEstimator>(*this);
  }

  uint64_t probes_performed() const { return probes_; }

  /// \brief Fused-routing view for one source. BeginRoute may *replace*
  /// the source's local estimate row (a probe copies the global loads into
  /// it), so unlike the L frame this one keeps the estimator pointer and
  /// goes through the concrete inline methods each call — still zero
  /// virtual dispatch, and probe scheduling state (clock, last-probe
  /// marks) advances exactly as under the scalar protocol.
  class RoutingFrame {
   public:
    /// BeginRoute can rewrite the estimate row mid-batch (a probe), so the
    /// protocol must stay strictly sequential — no vectorized argmin.
    static constexpr bool kVectorArgmin = false;

    RoutingFrame(ProbingLoadEstimator* estimator, SourceId source)
        : estimator_(estimator), source_(source) {}
    void BeginRoute() { estimator_->BeginRoute(source_); }
    uint64_t Estimate(WorkerId w) const {
      return estimator_->Estimate(source_, w);
    }
    void OnSend(WorkerId w) { estimator_->OnSend(source_, w); }

   private:
    ProbingLoadEstimator* estimator_;
    SourceId source_;
  };
  RoutingFrame MakeRoutingFrame(SourceId source) {
    return RoutingFrame(this, source);
  }

 private:
  std::vector<std::vector<uint64_t>> local_;
  std::vector<uint64_t> global_;
  std::vector<uint64_t> last_probe_;  // per source, in clock_ units
  uint64_t probe_period_;
  uint64_t clock_ = 0;  // total messages sent across sources
  uint64_t probes_ = 0;
};

}  // namespace partition
}  // namespace pkgstream

#endif  // PKGSTREAM_PARTITION_LOAD_ESTIMATOR_H_
