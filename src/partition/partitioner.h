// Copyright 2026 The pkgstream Authors.
// The stream-partitioning interface (Section II): a partitioning function
// P_t : K -> [W] that each source evaluates, online and independently, to
// pick the downstream worker for every message. Implementations:
//
//   key_grouping.h      KG  — single hash (the paper's baseline "H")
//   shuffle_grouping.h  SG  — per-source round-robin
//   pkg.h               PKG — Greedy-d with key splitting (the contribution)
//   potc_static.h       PoTC — two choices *without* key splitting
//   greedy.h            On-Greedy / Off-Greedy reference baselines

#ifndef PKGSTREAM_PARTITION_PARTITIONER_H_
#define PKGSTREAM_PARTITION_PARTITIONER_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace pkgstream {
namespace partition {

/// \brief A stream partitioning function, evaluated once per message.
///
/// Implementations may keep internal state (load estimates, routing tables,
/// round-robin counters); all state updates happen inside Route. Route must
/// be deterministic given the construction parameters and the call history —
/// the whole evaluation pipeline depends on replayability.
class Partitioner {
 public:
  virtual ~Partitioner() = default;

  /// Picks the worker for a message with key `key` emitted by `source`.
  /// `source` must be < sources(), and the result is < workers().
  virtual WorkerId Route(SourceId source, Key key) = 0;

  /// Routes `n` consecutive messages from one source: out[i] is the worker
  /// for keys[i], exactly as if Route(source, keys[i]) had been called n
  /// times in order. The contract is strict bit-equivalence — the routed
  /// workers AND the partitioner's post-call state must be byte-identical
  /// to the scalar call sequence, so batch and scalar paths are freely
  /// interchangeable mid-stream and every captured baseline stays valid
  /// (tests/partition_route_batch_test.cc enforces this for every
  /// technique). The base implementation is that scalar loop; hot
  /// techniques override it with straight-line fused loops that skip the
  /// per-message virtual protocol (see pkg.cc for the estimator fusion).
  /// `keys` and `out` must not overlap.
  virtual void RouteBatch(SourceId source, const Key* keys, WorkerId* out,
                          size_t n) {
    for (size_t i = 0; i < n; ++i) out[i] = Route(source, keys[i]);
  }

  /// Number of downstream workers W.
  virtual uint32_t workers() const = 0;

  /// Number of upstream sources S this instance was configured for.
  virtual uint32_t sources() const = 0;

  /// Largest number of distinct workers that may ever process the same key:
  /// 1 for key grouping (atomic keys), d for PKG, W for shuffle grouping.
  /// Stateful operators use this to size and merge per-key partial state.
  virtual uint32_t MaxWorkersPerKey() const = 0;

  /// Short technique name, e.g. "PKG-L" or "Hashing".
  virtual std::string Name() const = 0;

  /// True when the technique implements SetWorkerSet (live worker-set
  /// reconfiguration). ThreadedRuntime::ReconfigureWorkers refuses an edge
  /// whose partitioner cannot reconfigure instead of silently routing to
  /// dead workers.
  virtual bool SupportsReconfiguration() const { return false; }

  /// Live reconfiguration hook (ROADMAP "Elastic scaling and live key
  /// migration"): restricts routing to the workers with alive[w] == true.
  /// `alive` must have exactly workers() entries with at least one set —
  /// a plan that empties the cluster is rejected at FaultPlan::Create, and
  /// this validates again defensively. Contract for implementers:
  ///  * with all workers alive, routing must stay byte-identical to a
  ///    partitioner that never saw a SetWorkerSet call (the healthy path
  ///    is the baseline-pinned path);
  ///  * while degraded, Route never returns a dead worker;
  ///  * internal state keeps updating through the same protocol as the
  ///    healthy path, so replay determinism holds through fault windows.
  /// Default: Unimplemented (technique cannot drop workers — e.g. plain
  /// hashing has nowhere else to send a key without breaking KG semantics).
  virtual Status SetWorkerSet(const std::vector<bool>& alive) {
    (void)alive;
    return Status::Unimplemented(Name() +
                                 " does not support live reconfiguration");
  }

  /// Creates an independent replica: identical configuration, a copy of
  /// the current routing state, and no sharing whatsoever afterwards.
  ///
  /// This is the paper's per-source deployment hook: each upstream
  /// instance owns one replica and routes using only its local view
  /// (ThreadedRuntime builds one replica per source instance; see
  /// MakePartitionerReplicas in factory.h). Coordination-free techniques
  /// (KG, SG, PKG with local estimation) behave exactly as a single
  /// shared instance would; techniques whose reference semantics assume
  /// state shared across sources (PoTC's routing table, On-Greedy,
  /// rebalancing, the G oracle) stay well-defined — each replica evolves
  /// its own copy — which is the honest distributed approximation of
  /// them (the single-threaded LogicalRuntime remains their coordinated
  /// reference).
  virtual std::unique_ptr<Partitioner> Clone() const = 0;
};

using PartitionerPtr = std::unique_ptr<Partitioner>;

}  // namespace partition
}  // namespace pkgstream

#endif  // PKGSTREAM_PARTITION_PARTITIONER_H_
