// Copyright 2026 The pkgstream Authors.

#include "partition/pkg.h"

#include "common/logging.h"

namespace pkgstream {
namespace partition {

PartialKeyGrouping::PartialKeyGrouping(uint32_t sources, uint32_t workers,
                                       LoadEstimatorPtr estimator,
                                       PkgOptions options)
    : hash_(options.num_choices, workers, options.hash_seed),
      sources_(sources),
      estimator_(std::move(estimator)) {
  PKGSTREAM_CHECK(sources >= 1);
  PKGSTREAM_CHECK(estimator_ != nullptr) << "PKG requires a LoadEstimator";
}

PartialKeyGrouping::PartialKeyGrouping(const PartialKeyGrouping& other)
    : hash_(other.hash_),
      sources_(other.sources_),
      estimator_(other.estimator_->Clone()) {}

PartitionerPtr PartialKeyGrouping::Clone() const {
  return PartitionerPtr(new PartialKeyGrouping(*this));
}

WorkerId PartialKeyGrouping::Route(SourceId source, Key key) {
  PKGSTREAM_DCHECK(source < sources_);
  estimator_->BeginRoute(source);
  WorkerId best = hash_.Bucket(0, key);
  uint64_t best_load = estimator_->Estimate(source, best);
  for (uint32_t i = 1; i < hash_.d(); ++i) {
    WorkerId candidate = hash_.Bucket(i, key);
    uint64_t load = estimator_->Estimate(source, candidate);
    if (load < best_load) {
      best = candidate;
      best_load = load;
    }
  }
  estimator_->OnSend(source, best);
  return best;
}

std::string PartialKeyGrouping::Name() const {
  std::string name = "PKG-" + estimator_->Name();
  if (hash_.d() != 2) name += "(d=" + std::to_string(hash_.d()) + ")";
  return name;
}

void PartialKeyGrouping::CandidateWorkers(Key key,
                                          std::vector<WorkerId>* out) const {
  hash_.Candidates(key, out);
}

}  // namespace partition
}  // namespace pkgstream
