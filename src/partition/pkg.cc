// Copyright 2026 The pkgstream Authors.

#include "partition/pkg.h"

#include <algorithm>

#include "common/hash_simd.h"
#include "common/logging.h"
#include "common/simd.h"

namespace pkgstream {
namespace partition {

namespace {

/// Buckets below this keep the d=2 argmin scalar even on SIMD hosts. The
/// vector argmin commits four rows at once only when their eight candidate
/// buckets are cross-lane distinct; with few workers (the paper's 5-50)
/// nearly every group collides and the conflict check would be pure
/// overhead, while from a few hundred buckets on conflicts are the rare
/// case (expected ~24/buckets per group) and the gathers pay for
/// themselves. Bounded above because the gather consumes signed 32-bit
/// indices.
constexpr uint32_t kVectorArgminMinBuckets = 256;
constexpr uint32_t kVectorArgminMaxBuckets = 1u << 30;

/// The fused Greedy-d inner loop, shared by all estimator frames. For
/// d <= 8 it hashes candidates in column-major chunks (each hash column
/// computed back to back over BucketBatch, which itself dispatches to the
/// SIMD multi-key kernels); larger d keeps a per-message candidate loop
/// with the same frame-devirtualized protocol. Call order — BeginRoute,
/// Estimate(H1..Hd), OnSend — matches the scalar Route exactly, message by
/// message, which is what makes batch and scalar routing decisions (and
/// estimator state) byte-identical.
///
/// Frames with kVectorArgmin (G and L: trivial BeginRoute, estimates in a
/// contiguous array) additionally run the argmin four rows at a time
/// through simd::ArgminX4Avx2 (d = 2) or simd::ArgminX4WideAvx2 (d <= 8)
/// on AVX2+ hosts with enough buckets. The kernels only commit a group
/// whose 4*d candidates are cross-row distinct — decisions then cannot
/// depend on the in-between OnSend increments, so they equal the
/// sequential protocol bit for bit; groups with any cross-row collision
/// are re-run through the exact scalar sequence. Either way OnSend is
/// applied row by row afterwards, keeping estimator state byte-identical
/// too.
template <typename Frame>
void FusedGreedyRoute(const HashFamily& hash, Frame frame, const Key* keys,
                      WorkerId* out, size_t n) {
  const uint32_t d = hash.d();
  if (d >= 2 && d <= simd::kMaxWideArgminChoices) {
    constexpr size_t kChunk = 256;
    uint32_t cand[simd::kMaxWideArgminChoices][kChunk];
    const bool vector_argmin =
        Frame::kVectorArgmin &&
        hash.buckets() >= kVectorArgminMinBuckets &&
        hash.buckets() <= kVectorArgminMaxBuckets &&
        simd::ActiveSimdLevel() >= simd::SimdLevel::kAvx2;
    size_t done = 0;
    while (done < n) {
      const size_t len = std::min(kChunk, n - done);
      for (uint32_t c = 0; c < d; ++c) {
        hash.BucketBatch(c, keys + done, cand[c], len);
      }
      // The one copy of the sequential greedy-d protocol; the vector
      // path's conflict fallback and the chunk tail both replay exactly
      // this — any change to the tie-break or estimator call order
      // happens here or nowhere.
      const auto route_row = [&](size_t row) {
        frame.BeginRoute();
        WorkerId best = cand[0][row];
        uint64_t best_load = frame.Estimate(best);
        for (uint32_t c = 1; c < d; ++c) {
          const WorkerId candidate = cand[c][row];
          const uint64_t load = frame.Estimate(candidate);
          if (load < best_load) {
            best = candidate;
            best_load = load;
          }
        }
        frame.OnSend(best);
        out[done + row] = best;
      };
      size_t j = 0;
      if constexpr (Frame::kVectorArgmin) {
        if (vector_argmin) {
          const uint32_t* group_cols[simd::kMaxWideArgminChoices];
          for (; j + 4 <= len; j += 4) {
            bool committed;
            if (d == 2) {
              committed = simd::ArgminX4Avx2(cand[0] + j, cand[1] + j,
                                             frame.estimates(),
                                             out + done + j);
            } else {
              for (uint32_t c = 0; c < d; ++c) group_cols[c] = cand[c] + j;
              committed = simd::ArgminX4WideAvx2(group_cols, d,
                                                 frame.estimates(),
                                                 out + done + j);
            }
            if (committed) {
              for (size_t t = j; t < j + 4; ++t) {
                frame.OnSend(out[done + t]);
              }
            } else {
              for (size_t t = j; t < j + 4; ++t) route_row(t);
            }
          }
        }
      }
      for (; j < len; ++j) route_row(j);
      done += len;
    }
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    frame.BeginRoute();
    WorkerId best = hash.Bucket(0, keys[i]);
    uint64_t best_load = frame.Estimate(best);
    for (uint32_t c = 1; c < d; ++c) {
      const WorkerId candidate = hash.Bucket(c, keys[i]);
      const uint64_t load = frame.Estimate(candidate);
      if (load < best_load) {
        best = candidate;
        best_load = load;
      }
    }
    frame.OnSend(best);
    out[i] = best;
  }
}

}  // namespace

PartialKeyGrouping::PartialKeyGrouping(uint32_t sources, uint32_t workers,
                                       LoadEstimatorPtr estimator,
                                       PkgOptions options)
    : hash_(options.num_choices, workers, options.hash_seed),
      sources_(sources),
      estimator_(std::move(estimator)) {
  PKGSTREAM_CHECK(sources >= 1);
  PKGSTREAM_CHECK(estimator_ != nullptr) << "PKG requires a LoadEstimator";
}

PartialKeyGrouping::PartialKeyGrouping(const PartialKeyGrouping& other)
    : hash_(other.hash_),
      sources_(other.sources_),
      estimator_(other.estimator_->Clone()),
      alive_(other.alive_),
      degraded_(other.degraded_) {}

PartitionerPtr PartialKeyGrouping::Clone() const {
  // lint:allow(hotpath-tokens): Clone() runs once per replica at runtime
  // setup, never on the per-message path.
  return PartitionerPtr(new PartialKeyGrouping(*this));
}

Status PartialKeyGrouping::SetWorkerSet(const std::vector<bool>& alive) {
  if (alive.size() != workers()) {
    return Status::InvalidArgument(
        "worker set size " + std::to_string(alive.size()) +
        " != " + std::to_string(workers()) + " workers");
  }
  uint32_t alive_count = 0;
  for (bool a : alive) alive_count += a ? 1 : 0;
  if (alive_count == 0) {
    return Status::InvalidArgument("worker set has zero alive workers");
  }
  alive_.assign(alive.begin(), alive.end());
  degraded_ = alive_count != workers();
  return Status::OK();
}

WorkerId PartialKeyGrouping::Route(SourceId source, Key key) {
  PKGSTREAM_DCHECK(source < sources_);
  if (degraded_) {
    // Greedy-d over the *alive* candidates, same BeginRoute/Estimate/OnSend
    // protocol as the healthy path; a fully dead candidate set falls back
    // to the least-loaded alive worker (lowest index on ties).
    estimator_->BeginRoute(source);
    bool found = false;
    WorkerId best = 0;
    uint64_t best_load = 0;
    for (uint32_t i = 0; i < hash_.d(); ++i) {
      const WorkerId candidate = hash_.Bucket(i, key);
      if (!alive_[candidate]) continue;
      const uint64_t load = estimator_->Estimate(source, candidate);
      if (!found || load < best_load) {
        found = true;
        best = candidate;
        best_load = load;
      }
    }
    if (!found) {
      for (WorkerId w = 0; w < workers(); ++w) {
        if (!alive_[w]) continue;
        const uint64_t load = estimator_->Estimate(source, w);
        if (!found || load < best_load) {
          found = true;
          best = w;
          best_load = load;
        }
      }
    }
    estimator_->OnSend(source, best);
    return best;
  }
  estimator_->BeginRoute(source);
  WorkerId best = hash_.Bucket(0, key);
  uint64_t best_load = estimator_->Estimate(source, best);
  for (uint32_t i = 1; i < hash_.d(); ++i) {
    WorkerId candidate = hash_.Bucket(i, key);
    uint64_t load = estimator_->Estimate(source, candidate);
    if (load < best_load) {
      best = candidate;
      best_load = load;
    }
  }
  estimator_->OnSend(source, best);
  return best;
}

void PartialKeyGrouping::RouteBatch(SourceId source, const Key* keys,
                                    WorkerId* out, size_t n) {
  PKGSTREAM_DCHECK(source < sources_);
  if (degraded_) {
    // Degraded routing is the cold path: the scalar loop keeps batch and
    // scalar decisions trivially identical while workers are down.
    Partitioner::RouteBatch(source, keys, out, n);
    return;
  }
  // One concrete-type resolution per batch buys a virtual-free inner loop.
  LoadEstimator* estimator = estimator_.get();
  if (auto* local = dynamic_cast<LocalLoadEstimator*>(estimator)) {
    FusedGreedyRoute(hash_, local->MakeRoutingFrame(source), keys, out, n);
  } else if (auto* global = dynamic_cast<GlobalLoadEstimator*>(estimator)) {
    FusedGreedyRoute(hash_, global->MakeRoutingFrame(source), keys, out, n);
  } else if (auto* probing =
                 dynamic_cast<ProbingLoadEstimator*>(estimator)) {
    FusedGreedyRoute(hash_, probing->MakeRoutingFrame(source), keys, out, n);
  } else {
    Partitioner::RouteBatch(source, keys, out, n);
  }
}

std::string PartialKeyGrouping::Name() const {
  std::string name = "PKG-" + estimator_->Name();
  if (hash_.d() != 2) name += "(d=" + std::to_string(hash_.d()) + ")";
  return name;
}

void PartialKeyGrouping::CandidateWorkers(Key key,
                                          std::vector<WorkerId>* out) const {
  hash_.Candidates(key, out);
}

}  // namespace partition
}  // namespace pkgstream
