// Copyright 2026 The pkgstream Authors.

#include "partition/pkg.h"

#include <algorithm>

#include "common/logging.h"

namespace pkgstream {
namespace partition {

namespace {

/// The fused Greedy-d inner loop, shared by all estimator frames. For the
/// paper's d = 2 it hashes candidates in column-major chunks (both hash
/// columns computed back to back over the specialized integer Murmur3, so
/// the argmin loop is pure loads/compares); larger d keeps a per-message
/// candidate loop with the same frame-devirtualized protocol. Call order —
/// BeginRoute, Estimate(H1..Hd), OnSend — matches the scalar Route exactly,
/// message by message, which is what makes batch and scalar routing
/// decisions (and estimator state) byte-identical.
template <typename Frame>
void FusedGreedyRoute(const HashFamily& hash, Frame frame, const Key* keys,
                      WorkerId* out, size_t n) {
  const uint32_t d = hash.d();
  if (d == 2) {
    constexpr size_t kChunk = 256;
    uint32_t c0[kChunk];
    uint32_t c1[kChunk];
    size_t done = 0;
    while (done < n) {
      const size_t len = std::min(kChunk, n - done);
      hash.BucketBatch(0, keys + done, c0, len);
      hash.BucketBatch(1, keys + done, c1, len);
      for (size_t j = 0; j < len; ++j) {
        frame.BeginRoute();
        WorkerId best = c0[j];
        const uint64_t first_load = frame.Estimate(best);
        const WorkerId other = c1[j];
        if (frame.Estimate(other) < first_load) best = other;
        frame.OnSend(best);
        out[done + j] = best;
      }
      done += len;
    }
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    frame.BeginRoute();
    WorkerId best = hash.Bucket(0, keys[i]);
    uint64_t best_load = frame.Estimate(best);
    for (uint32_t c = 1; c < d; ++c) {
      const WorkerId candidate = hash.Bucket(c, keys[i]);
      const uint64_t load = frame.Estimate(candidate);
      if (load < best_load) {
        best = candidate;
        best_load = load;
      }
    }
    frame.OnSend(best);
    out[i] = best;
  }
}

}  // namespace

PartialKeyGrouping::PartialKeyGrouping(uint32_t sources, uint32_t workers,
                                       LoadEstimatorPtr estimator,
                                       PkgOptions options)
    : hash_(options.num_choices, workers, options.hash_seed),
      sources_(sources),
      estimator_(std::move(estimator)) {
  PKGSTREAM_CHECK(sources >= 1);
  PKGSTREAM_CHECK(estimator_ != nullptr) << "PKG requires a LoadEstimator";
}

PartialKeyGrouping::PartialKeyGrouping(const PartialKeyGrouping& other)
    : hash_(other.hash_),
      sources_(other.sources_),
      estimator_(other.estimator_->Clone()) {}

PartitionerPtr PartialKeyGrouping::Clone() const {
  return PartitionerPtr(new PartialKeyGrouping(*this));
}

WorkerId PartialKeyGrouping::Route(SourceId source, Key key) {
  PKGSTREAM_DCHECK(source < sources_);
  estimator_->BeginRoute(source);
  WorkerId best = hash_.Bucket(0, key);
  uint64_t best_load = estimator_->Estimate(source, best);
  for (uint32_t i = 1; i < hash_.d(); ++i) {
    WorkerId candidate = hash_.Bucket(i, key);
    uint64_t load = estimator_->Estimate(source, candidate);
    if (load < best_load) {
      best = candidate;
      best_load = load;
    }
  }
  estimator_->OnSend(source, best);
  return best;
}

void PartialKeyGrouping::RouteBatch(SourceId source, const Key* keys,
                                    WorkerId* out, size_t n) {
  PKGSTREAM_DCHECK(source < sources_);
  // One concrete-type resolution per batch buys a virtual-free inner loop.
  LoadEstimator* estimator = estimator_.get();
  if (auto* local = dynamic_cast<LocalLoadEstimator*>(estimator)) {
    FusedGreedyRoute(hash_, local->MakeRoutingFrame(source), keys, out, n);
  } else if (auto* global = dynamic_cast<GlobalLoadEstimator*>(estimator)) {
    FusedGreedyRoute(hash_, global->MakeRoutingFrame(source), keys, out, n);
  } else if (auto* probing =
                 dynamic_cast<ProbingLoadEstimator*>(estimator)) {
    FusedGreedyRoute(hash_, probing->MakeRoutingFrame(source), keys, out, n);
  } else {
    Partitioner::RouteBatch(source, keys, out, n);
  }
}

std::string PartialKeyGrouping::Name() const {
  std::string name = "PKG-" + estimator_->Name();
  if (hash_.d() != 2) name += "(d=" + std::to_string(hash_.d()) + ")";
  return name;
}

void PartialKeyGrouping::CandidateWorkers(Key key,
                                          std::vector<WorkerId>* out) const {
  hash_.Candidates(key, out);
}

}  // namespace partition
}  // namespace pkgstream
