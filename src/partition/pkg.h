// Copyright 2026 The pkgstream Authors.
// PARTIAL KEY GROUPING (Section III): the paper's contribution.
//
// Greedy-d with key splitting: message with key k goes to the least loaded
// worker among the d hash candidates H1(k)..Hd(k) *at this moment* — no
// routing table, no agreement between sources, no remembered choice. Key
// splitting means a key's state lives on (at most) d workers, so stateful
// operators keep d partials per key instead of W (shuffle) or 1 (KG).
//
// The load used for the argmin comes from a pluggable LoadEstimator:
//   GlobalLoadEstimator  -> the paper's "G" (oracle),
//   LocalLoadEstimator   -> the paper's "L" (deployable: zero coordination),
//   ProbingLoadEstimator -> the paper's "LP".
//
// The reference implementation on Storm is "a single function and less than
// 20 lines of code"; Route() below is that function.

#ifndef PKGSTREAM_PARTITION_PKG_H_
#define PKGSTREAM_PARTITION_PKG_H_

#include <memory>
#include <string>
#include <vector>

#include "common/hash.h"
#include "partition/load_estimator.h"
#include "partition/partitioner.h"

namespace pkgstream {
namespace partition {

/// \brief Configuration for PartialKeyGrouping.
struct PkgOptions {
  /// The number of choices d. d = 2 is the paper's setting; d = 1 degrades
  /// to plain hashing, larger d buys only constant-factor gains (Azar et
  /// al.) at the cost of d-way state splitting.
  uint32_t num_choices = 2;

  /// Seed for the hash family H1..Hd.
  uint64_t hash_seed = 0x9E3779B97F4A7C15ULL;
};

/// \brief PKG: power of two (d) choices with key splitting.
class PartialKeyGrouping final : public Partitioner {
 public:
  /// `estimator` supplies the per-source load view (G / L / LP). Must be
  /// sized for the same `sources` x `workers`.
  PartialKeyGrouping(uint32_t sources, uint32_t workers,
                     LoadEstimatorPtr estimator, PkgOptions options = {});

  /// The PKG routing decision — the paper's < 20-line core:
  /// pick argmin_{i in 1..d} load(H_i(key)) and update the estimate.
  WorkerId Route(SourceId source, Key key) override;

  /// Fused batch routing: resolves the estimator's concrete type once per
  /// batch and runs a straight-line argmin loop over its RoutingFrame (no
  /// per-message virtual calls; see load_estimator.h "Routing frames").
  /// Decisions and estimator state are byte-identical to n scalar Route
  /// calls; unknown estimator types fall back to the scalar loop.
  void RouteBatch(SourceId source, const Key* keys, WorkerId* out,
                  size_t n) override;

  uint32_t workers() const override { return hash_.buckets(); }
  uint32_t sources() const override { return sources_; }
  uint32_t MaxWorkersPerKey() const override { return hash_.d(); }
  std::string Name() const override;
  PartitionerPtr Clone() const override;

  /// Live reconfiguration: dead candidates drop out of the argmin; a key
  /// whose candidate set is entirely dead falls back to the least-loaded
  /// alive worker (lowest index on ties) through the same estimator
  /// protocol. With every worker alive the hot path is byte-untouched.
  bool SupportsReconfiguration() const override { return true; }
  Status SetWorkerSet(const std::vector<bool>& alive) override;

  /// The candidate workers for `key` (H1..Hd), for tests and for
  /// applications that must know where a key's partial state can live
  /// (e.g. naive Bayes queries probe exactly these workers).
  void CandidateWorkers(Key key, std::vector<WorkerId>* out) const;

  const LoadEstimator& estimator() const { return *estimator_; }

 private:
  /// Deep copy (clones the estimator); only Clone() uses it.
  PartialKeyGrouping(const PartialKeyGrouping& other);

  HashFamily hash_;
  uint32_t sources_;
  LoadEstimatorPtr estimator_;
  /// Alive mask (uint8_t, not vector<bool>, for branch-cheap hot reads).
  /// degraded_ == false guarantees the untouched healthy fast path.
  std::vector<uint8_t> alive_;
  bool degraded_ = false;
};

}  // namespace partition
}  // namespace pkgstream

#endif  // PKGSTREAM_PARTITION_PKG_H_
