// Copyright 2026 The pkgstream Authors.

#include "partition/potc_static.h"

#include "common/logging.h"

namespace pkgstream {
namespace partition {

StaticPoTC::StaticPoTC(uint32_t sources, uint32_t workers, uint64_t seed,
                       uint32_t num_choices)
    : hash_(num_choices, workers, seed),
      sources_(sources),
      loads_(workers, 0) {
  PKGSTREAM_CHECK(sources >= 1);
}

WorkerId StaticPoTC::Route(SourceId source, Key key) {
  PKGSTREAM_DCHECK(source < sources_);
  (void)source;
  return RouteOne(key);
}

void StaticPoTC::RouteBatch(SourceId source, const Key* keys, WorkerId* out,
                            size_t n) {
  PKGSTREAM_DCHECK(source < sources_);
  (void)source;
  for (size_t i = 0; i < n; ++i) out[i] = RouteOne(keys[i]);
}

WorkerId StaticPoTC::RouteOne(Key key) {
  auto it = table_.find(key);
  if (it == table_.end()) {
    // First occurrence: least loaded among the d candidates, then frozen.
    WorkerId best = hash_.Bucket(0, key);
    uint64_t best_load = loads_[best];
    for (uint32_t i = 1; i < hash_.d(); ++i) {
      WorkerId candidate = hash_.Bucket(i, key);
      if (loads_[candidate] < best_load) {
        best = candidate;
        best_load = loads_[candidate];
      }
    }
    it = table_.emplace(key, best).first;
  }
  ++loads_[it->second];
  return it->second;
}

}  // namespace partition
}  // namespace pkgstream
