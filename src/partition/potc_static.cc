// Copyright 2026 The pkgstream Authors.

#include "partition/potc_static.h"

#include <algorithm>

#include "common/logging.h"

namespace pkgstream {
namespace partition {

StaticPoTC::StaticPoTC(uint32_t sources, uint32_t workers, uint64_t seed,
                       uint32_t num_choices)
    : hash_(num_choices, workers, seed),
      sources_(sources),
      loads_(workers, 0) {
  PKGSTREAM_CHECK(sources >= 1);
}

WorkerId StaticPoTC::Route(SourceId source, Key key) {
  PKGSTREAM_DCHECK(source < sources_);
  (void)source;
  return RouteOne(key);
}

void StaticPoTC::RouteBatch(SourceId source, const Key* keys, WorkerId* out,
                            size_t n) {
  PKGSTREAM_DCHECK(source < sources_);
  (void)source;
  // Per chunk: (1) a read-only lookup pass records each row's routed
  // worker, or marks it first-sight; (2) the first-sight keys are hashed
  // column-major through BucketBatch (the SIMD multi-key path) — their
  // candidates depend only on the key, never on loads, so hashing out of
  // stream order is safe; (3) a sequential merge replays the stream order
  // exactly: table inserts, the least-loaded argmin against the *current*
  // loads, and the per-message load increments. A key first seen at row i
  // and repeated at row j > i is marked first-sight at both rows (pass 1
  // mutates nothing), and the merge's try_emplace resolves row j to the
  // row-i decision — matching the scalar sequence bit for bit.
  constexpr size_t kChunk = 256;
  const uint32_t d = hash_.d();
  WorkerId found[kChunk];
  size_t done = 0;
  while (done < n) {
    const size_t len = std::min(kChunk, n - done);
    pending_keys_.clear();
    for (size_t j = 0; j < len; ++j) {
      const auto it = table_.find(keys[done + j]);
      if (it != table_.end()) {
        found[j] = it->second;
      } else {
        found[j] = kInvalidWorker;
        pending_keys_.push_back(keys[done + j]);
      }
    }
    const size_t pending = pending_keys_.size();
    if (pending != 0) {
      pending_candidates_.resize(d * pending);
      for (uint32_t i = 0; i < d; ++i) {
        hash_.BucketBatch(i, pending_keys_.data(),
                          pending_candidates_.data() + i * pending, pending);
      }
    }
    size_t next_pending = 0;
    for (size_t j = 0; j < len; ++j) {
      WorkerId w = found[j];
      if (w == kInvalidWorker) {
        const size_t m = next_pending++;
        const auto [it, inserted] = table_.try_emplace(keys[done + j], 0);
        if (inserted) {
          WorkerId best = pending_candidates_[m];
          uint64_t best_load = loads_[best];
          for (uint32_t i = 1; i < d; ++i) {
            const WorkerId candidate = pending_candidates_[i * pending + m];
            if (loads_[candidate] < best_load) {
              best = candidate;
              best_load = loads_[candidate];
            }
          }
          it->second = best;
        }
        w = it->second;
      }
      ++loads_[w];
      out[done + j] = w;
    }
    done += len;
  }
}

WorkerId StaticPoTC::RouteOne(Key key) {
  auto it = table_.find(key);
  if (it == table_.end()) {
    // First occurrence: least loaded among the d candidates, then frozen.
    WorkerId best = hash_.Bucket(0, key);
    uint64_t best_load = loads_[best];
    for (uint32_t i = 1; i < hash_.d(); ++i) {
      WorkerId candidate = hash_.Bucket(i, key);
      if (loads_[candidate] < best_load) {
        best = candidate;
        best_load = loads_[candidate];
      }
    }
    it = table_.emplace(key, best).first;
  }
  ++loads_[it->second];
  return it->second;
}

}  // namespace partition
}  // namespace pkgstream
