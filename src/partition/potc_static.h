// Copyright 2026 The pkgstream Authors.
// Static PoTC (Section III-A): the power of two choices *without* key
// splitting. The first time a key is seen, the system picks the less loaded
// of its two hash candidates and records the choice in a routing table;
// every later occurrence follows the recorded choice, preserving key
// grouping's one-key-one-worker semantics.
//
// The paper implements this as a straw man: it needs a per-key routing
// table (billions of entries at web scale) and global agreement among
// sources, and Table II shows it still balances far worse than PKG because
// a popular key is forever pinned to one worker. We implement it fully so
// the comparison is honest.

#ifndef PKGSTREAM_PARTITION_POTC_STATIC_H_
#define PKGSTREAM_PARTITION_POTC_STATIC_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "partition/partitioner.h"

namespace pkgstream {
namespace partition {

/// \brief PoTC with a per-key routing table (no key splitting).
///
/// The routing table is shared by all sources, modelling the coordinated
/// variant the paper describes (all sources must agree on each key's
/// placement). Load is tracked globally for the same reason.
class StaticPoTC final : public Partitioner {
 public:
  StaticPoTC(uint32_t sources, uint32_t workers, uint64_t seed,
             uint32_t num_choices = 2);

  WorkerId Route(SourceId source, Key key) override;
  /// Batch form: one virtual entry for the whole batch. Runs in chunked
  /// passes — a read-only lookup pass that splits the chunk into known
  /// keys and first-sight keys, one HashFamily::BucketBatch per member
  /// over just the first-sight keys (the SIMD multi-key path), then a
  /// sequential merge that replays lookups, argmins and load counts in
  /// exact stream order, so decisions and table/load state stay
  /// byte-identical to n scalar Route calls.
  void RouteBatch(SourceId source, const Key* keys, WorkerId* out,
                  size_t n) override;
  uint32_t workers() const override { return hash_.buckets(); }
  uint32_t sources() const override { return sources_; }
  uint32_t MaxWorkersPerKey() const override { return 1; }
  std::string Name() const override { return "PoTC"; }
  PartitionerPtr Clone() const override {
    return std::make_unique<StaticPoTC>(*this);
  }

  /// Size of the routing table (the memory cost the paper objects to).
  size_t RoutingTableSize() const { return table_.size(); }

 private:
  /// The shared per-message body of Route / the scalar RouteBatch tail.
  WorkerId RouteOne(Key key);

  HashFamily hash_;
  uint32_t sources_;
  std::vector<uint64_t> loads_;
  std::unordered_map<Key, WorkerId> table_;

  // RouteBatch scratch (first-sight key gather + candidate columns),
  // retained across batches so the hot path never reallocates. Copies
  // carry the capacity but never live data (cleared per chunk).
  std::vector<Key> pending_keys_;
  std::vector<uint32_t> pending_candidates_;
};

}  // namespace partition
}  // namespace pkgstream

#endif  // PKGSTREAM_PARTITION_POTC_STATIC_H_
