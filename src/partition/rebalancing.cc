// Copyright 2026 The pkgstream Authors.

#include "partition/rebalancing.h"

#include <algorithm>

#include "common/logging.h"

namespace pkgstream {
namespace partition {

RebalancingKeyGrouping::RebalancingKeyGrouping(uint32_t sources,
                                               uint32_t workers,
                                               RebalancingOptions options)
    : hash_(/*d=*/1, workers, options.hash_seed),
      sources_(sources),
      options_(options),
      window_loads_(workers, 0) {
  PKGSTREAM_CHECK(sources >= 1);
  PKGSTREAM_CHECK(options_.check_period >= 1);
  PKGSTREAM_CHECK(options_.imbalance_threshold >= 0.0);
}

WorkerId RebalancingKeyGrouping::Placement(Key key) const {
  auto it = overrides_.find(key);
  if (it != overrides_.end()) return it->second;
  return hash_.Bucket(0, key);
}

Status RebalancingKeyGrouping::SetWorkerSet(const std::vector<bool>& alive) {
  if (alive.size() != workers()) {
    return Status::InvalidArgument(
        "worker set size " + std::to_string(alive.size()) +
        " != " + std::to_string(workers()) + " workers");
  }
  uint32_t alive_count = 0;
  for (bool a : alive) alive_count += a ? 1 : 0;
  if (alive_count == 0) {
    return Status::InvalidArgument("worker set has zero alive workers");
  }
  alive_.assign(alive.begin(), alive.end());
  degraded_ = alive_count != workers();
  // Rejoin: migrate failed-over keys straight back to the placement they
  // held when their worker died. Key-sorted so the handoff order (and with
  // it every stats counter) is deterministic regardless of map layout.
  std::vector<Key> restored;
  for (const auto& [key, origin] : failover_origin_) {
    if (alive[origin]) restored.push_back(key);
  }
  std::sort(restored.begin(), restored.end());
  for (Key key : restored) {
    const WorkerId origin = failover_origin_[key];
    if (origin == hash_.Bucket(0, key)) {
      overrides_.erase(key);
    } else {
      overrides_[key] = origin;
    }
    ++stats_.keys_moved;
    stats_.state_moved += state_size_[key];
    failover_origin_.erase(key);
  }
  return Status::OK();
}

WorkerId RebalancingKeyGrouping::Route(SourceId source, Key key) {
  PKGSTREAM_DCHECK(source < sources_);
  (void)source;
  WorkerId w = Placement(key);
  if (degraded_ && !alive_[w]) {
    // Lazy failover on first touch: hand the key (and its state) to the
    // least window-loaded alive worker, lowest index on ties. The origin
    // is remembered so the rejoin path can undo exactly this move.
    WorkerId target = 0;
    bool found = false;
    for (WorkerId c = 0; c < workers(); ++c) {
      if (!alive_[c]) continue;
      if (!found || window_loads_[c] < window_loads_[target]) {
        found = true;
        target = c;
      }
    }
    failover_origin_.emplace(key, w);
    if (target == hash_.Bucket(0, key)) {
      overrides_.erase(key);
    } else {
      overrides_[key] = target;
    }
    ++stats_.failovers;
    ++stats_.keys_moved;
    stats_.state_moved += state_size_[key];
    w = target;
  }
  ++window_loads_[w];
  ++window_key_counts_[key];
  ++state_size_[key];
  ++messages_;
  if (messages_ % options_.check_period == 0) MaybeRebalance();
  return w;
}

void RebalancingKeyGrouping::MaybeRebalance() {
  ++stats_.checks;
  const uint32_t n = hash_.buckets();
  // During an outage the rebalancer only looks at (and migrates between)
  // alive workers; dead workers' zero window load must not masquerade as
  // "coldest" or every check would shovel keys onto a crashed worker.
  uint64_t total = 0;
  uint32_t considered = 0;
  bool have = false;
  WorkerId hottest = 0;
  WorkerId coldest = 0;
  for (WorkerId w = 0; w < n; ++w) {
    if (degraded_ && !alive_[w]) continue;
    total += window_loads_[w];
    ++considered;
    if (!have) {
      have = true;
      hottest = w;
      coldest = w;
      continue;
    }
    if (window_loads_[w] > window_loads_[hottest]) hottest = w;
    if (window_loads_[w] < window_loads_[coldest]) coldest = w;
  }
  double avg = static_cast<double>(total) / considered;
  // hottest == coldest means every worker saw identical load (the argmax
  // and argmin differ whenever max > min): any "migration" would be a
  // no-op churning the override table, so skip.
  bool triggered =
      avg > 0 && hottest != coldest &&
      (static_cast<double>(window_loads_[hottest]) - avg) / avg >
          options_.imbalance_threshold;
  if (triggered) {
    ++stats_.rebalances;
    // Keys currently placed on the hottest worker, by window rate desc.
    std::vector<std::pair<uint64_t, Key>> candidates;
    for (const auto& [key, count] : window_key_counts_) {
      if (Placement(key) == hottest) candidates.push_back({count, key});
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;
              });
    // Moving a key with rate c from hottest to coldest narrows the spread
    // by 2c; migrate hottest-first while that does not overshoot (the
    // classic Flux-style heuristic).
    uint64_t spread = window_loads_[hottest] - window_loads_[coldest];
    uint32_t moved = 0;
    for (const auto& [count, key] : candidates) {
      if (moved >= options_.max_keys_per_rebalance) break;
      if (2 * count > spread) continue;  // would overshoot: try colder keys
      if (hash_.Bucket(0, key) == coldest) {
        // The migration lands the key back on its hash placement: drop the
        // override instead of recording a redundant one, so the routing
        // table only ever holds keys living away from home (without this,
        // overrides_ grows monotonically for the lifetime of the stream).
        overrides_.erase(key);
      } else {
        overrides_[key] = coldest;
      }
      spread -= 2 * count;
      ++moved;
      ++stats_.keys_moved;
      stats_.state_moved += state_size_[key];
      if (spread == 0) break;
    }
  }
  // Start a fresh rate window either way.
  std::fill(window_loads_.begin(), window_loads_.end(), 0);
  window_key_counts_.clear();
}

std::string RebalancingKeyGrouping::Name() const {
  return "KG+rebalance(T=" + std::to_string(options_.check_period) + ")";
}

}  // namespace partition
}  // namespace pkgstream
