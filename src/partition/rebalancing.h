// Copyright 2026 The pkgstream Authors.
// Key grouping with rebalancing — the alternative the paper argues against
// (Section II-B) and asks about again in its conclusions ("can a solution
// based on rebalancing be practical?", Section VIII). Implemented here as
// an extension so the trade-off can be measured instead of argued:
//
//   * routing is hash-based, with a per-key override table built by
//     migrations (this is exactly the routing-table state the paper
//     objects to);
//   * every `check_period` messages the operator compares per-worker load
//     *within the last window* (a Flux-style rate estimate) and, when the
//     relative imbalance exceeds a threshold, migrates the hottest keys
//     from the most loaded to the least loaded worker;
//   * the migration cost the paper worries about is tracked explicitly:
//     number of migrations, keys moved, and the amount of per-key state
//     (message counts) that would have to travel with them.
//
// bench_ablation_rebalance compares this against PKG: how much migration
// does rebalancing need to approach the balance PKG gets for free?

#ifndef PKGSTREAM_PARTITION_REBALANCING_H_
#define PKGSTREAM_PARTITION_REBALANCING_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "partition/partitioner.h"

namespace pkgstream {
namespace partition {

/// \brief Tuning for RebalancingKeyGrouping.
struct RebalancingOptions {
  /// Messages between imbalance checks.
  uint64_t check_period = 10000;
  /// Rebalance when (max - avg) / avg over the last window exceeds this.
  double imbalance_threshold = 0.10;
  /// At most this many keys migrate per rebalance.
  uint32_t max_keys_per_rebalance = 16;
  /// Hash seed for the base placement.
  uint64_t hash_seed = 42;
};

/// \brief Migration cost accounting.
struct RebalancingStats {
  uint64_t checks = 0;        ///< imbalance checks performed
  uint64_t rebalances = 0;    ///< checks that triggered migration
  uint64_t keys_moved = 0;    ///< total key migrations
  uint64_t state_moved = 0;   ///< cumulative per-key counts migrated
  uint64_t failovers = 0;     ///< keys moved because their worker crashed
};

/// \brief Hash routing + periodic hot-key migration.
///
/// Keeps key-grouping semantics *between* migrations: a key is handled by
/// exactly one worker at any instant, but its worker can change over time
/// (with the associated state-transfer cost).
class RebalancingKeyGrouping final : public Partitioner {
 public:
  RebalancingKeyGrouping(uint32_t sources, uint32_t workers,
                         RebalancingOptions options = {});

  WorkerId Route(SourceId source, Key key) override;
  uint32_t workers() const override { return hash_.buckets(); }
  uint32_t sources() const override { return sources_; }
  uint32_t MaxWorkersPerKey() const override { return 1; }
  std::string Name() const override;
  PartitionerPtr Clone() const override {
    return std::make_unique<RebalancingKeyGrouping>(*this);
  }

  const RebalancingStats& stats() const { return stats_; }
  /// Size of the override routing table (migrated keys).
  size_t RoutingTableSize() const { return overrides_.size(); }

  /// Live reconfiguration — this is the routing-table technique's whole
  /// pitch, so it gets the full migration treatment instead of a filter:
  ///  * a key whose placement dies fails over lazily on first touch to the
  ///    least-loaded alive worker (window rate, lowest index on ties), its
  ///    origin recorded and the handoff charged to stats().failovers /
  ///    keys_moved / state_moved;
  ///  * when the origin worker rejoins, SetWorkerSet migrates the failed-
  ///    over keys straight back (key-sorted for determinism), again
  ///    charging the returned state to keys_moved / state_moved;
  ///  * the periodic rebalancer restricts hottest/coldest scans to alive
  ///    workers, so it keeps smoothing load *during* the outage.
  bool SupportsReconfiguration() const override { return true; }
  Status SetWorkerSet(const std::vector<bool>& alive) override;

 private:
  WorkerId Placement(Key key) const;
  void MaybeRebalance();

  HashFamily hash_;  // d = 1 base placement
  uint32_t sources_;
  RebalancingOptions options_;
  std::unordered_map<Key, WorkerId> overrides_;
  /// Load and per-key counts within the current window (rate estimates).
  std::vector<uint64_t> window_loads_;
  std::unordered_map<Key, uint64_t> window_key_counts_;
  /// Cumulative per-key counts: the state that must move with a key.
  std::unordered_map<Key, uint64_t> state_size_;
  uint64_t messages_ = 0;
  RebalancingStats stats_;
  /// Alive mask; degraded_ == false guarantees the untouched healthy path.
  std::vector<uint8_t> alive_;
  bool degraded_ = false;
  /// Keys failed over off a crashed worker -> the placement they held when
  /// it died (restored on rejoin).
  std::unordered_map<Key, WorkerId> failover_origin_;
};

}  // namespace partition
}  // namespace pkgstream

#endif  // PKGSTREAM_PARTITION_REBALANCING_H_
