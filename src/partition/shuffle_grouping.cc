// Copyright 2026 The pkgstream Authors.

#include "partition/shuffle_grouping.h"

#include "common/hash.h"
#include "common/logging.h"

namespace pkgstream {
namespace partition {

ShuffleGrouping::ShuffleGrouping(uint32_t sources, uint32_t workers,
                                 uint64_t seed)
    : workers_(workers) {
  PKGSTREAM_CHECK(sources >= 1 && workers >= 1);
  next_.resize(sources);
  for (uint32_t s = 0; s < sources; ++s) {
    next_[s] = static_cast<uint32_t>(Fmix64(seed + s) % workers);
  }
}

Status ShuffleGrouping::SetWorkerSet(const std::vector<bool>& alive) {
  if (alive.size() != workers_) {
    return Status::InvalidArgument(
        "worker set size " + std::to_string(alive.size()) +
        " != " + std::to_string(workers_) + " workers");
  }
  uint32_t alive_count = 0;
  for (bool a : alive) alive_count += a ? 1 : 0;
  if (alive_count == 0) {
    return Status::InvalidArgument("worker set has zero alive workers");
  }
  alive_.assign(alive.begin(), alive.end());
  degraded_ = alive_count != workers_;
  return Status::OK();
}

WorkerId ShuffleGrouping::Route(SourceId source, Key /*key*/) {
  PKGSTREAM_DCHECK(source < next_.size());
  if (degraded_) {
    // Advance the cycle past dead workers; validation guarantees at least
    // one alive, so the walk terminates within workers_ steps.
    WorkerId w = next_[source];
    while (!alive_[w]) w = (w + 1) % workers_;
    next_[source] = (w + 1) % workers_;
    return w;
  }
  WorkerId w = next_[source];
  next_[source] = (next_[source] + 1) % workers_;
  return w;
}

void ShuffleGrouping::RouteBatch(SourceId source, const Key* keys,
                                 WorkerId* out, size_t n) {
  PKGSTREAM_DCHECK(source < next_.size());
  if (degraded_) {
    Partitioner::RouteBatch(source, keys, out, n);
    return;
  }
  uint32_t cursor = next_[source];
  const uint32_t workers = workers_;
  for (size_t i = 0; i < n; ++i) {
    out[i] = cursor;
    ++cursor;
    if (cursor == workers) cursor = 0;
  }
  next_[source] = cursor;
}

RandomGrouping::RandomGrouping(uint32_t sources, uint32_t workers,
                               uint64_t seed)
    : workers_(workers), sources_(sources), seed_(seed), rng_(seed) {
  PKGSTREAM_CHECK(sources >= 1 && workers >= 1);
}

WorkerId RandomGrouping::Route(SourceId source, Key /*key*/) {
  PKGSTREAM_DCHECK(source < sources_);
  (void)source;
  return static_cast<WorkerId>(rng_.UniformInt(workers_));
}

}  // namespace partition
}  // namespace pkgstream
