// Copyright 2026 The pkgstream Authors.
// Shuffle grouping (Section II-A): round-robin routing, irrespective of the
// key. Perfect balance (imbalance <= 1 per source), but stateful operators
// must replicate per-key state on all W workers and aggregate W partials.

#ifndef PKGSTREAM_PARTITION_SHUFFLE_GROUPING_H_
#define PKGSTREAM_PARTITION_SHUFFLE_GROUPING_H_

#include <atomic>
#include <string>
#include <vector>

#include "common/random.h"
#include "partition/partitioner.h"

namespace pkgstream {
namespace partition {

/// \brief Per-source round-robin ("sending a message to a new PEI in cyclic
/// order"). Each source starts its cycle at a seed-derived offset so that
/// sources do not march in lockstep.
class ShuffleGrouping final : public Partitioner {
 public:
  ShuffleGrouping(uint32_t sources, uint32_t workers, uint64_t seed);

  WorkerId Route(SourceId source, Key key) override;
  /// Batch form: the cursor walks in a register for the whole batch and is
  /// written back once.
  void RouteBatch(SourceId source, const Key* keys, WorkerId* out,
                  size_t n) override;
  uint32_t workers() const override { return workers_; }
  uint32_t sources() const override {
    return static_cast<uint32_t>(next_.size());
  }
  uint32_t MaxWorkersPerKey() const override { return workers_; }
  std::string Name() const override { return "SG"; }
  PartitionerPtr Clone() const override {
    return std::make_unique<ShuffleGrouping>(*this);
  }

  /// Live reconfiguration: the cycle simply skips dead workers, so the
  /// alive set still receives perfectly balanced round-robin traffic.
  bool SupportsReconfiguration() const override { return true; }
  Status SetWorkerSet(const std::vector<bool>& alive) override;

 private:
  uint32_t workers_;
  std::vector<uint32_t> next_;  // per-source cursor
  /// Alive mask; degraded_ == false guarantees the untouched healthy path.
  std::vector<uint8_t> alive_;
  bool degraded_ = false;
};

/// \brief Uniform random routing: the "single choice at random" scheme from
/// the balls-and-bins literature. Included as a reference point; slightly
/// worse than round-robin (imbalance Θ(sqrt(m log n / n)) vs O(1)).
class RandomGrouping final : public Partitioner {
 public:
  RandomGrouping(uint32_t sources, uint32_t workers, uint64_t seed);

  WorkerId Route(SourceId source, Key key) override;
  uint32_t workers() const override { return workers_; }
  uint32_t sources() const override { return sources_; }
  uint32_t MaxWorkersPerKey() const override { return workers_; }
  std::string Name() const override { return "Random"; }
  /// Replicas must draw *independent* random streams: copying rng_
  /// verbatim would put every per-source replica in lockstep, landing all
  /// sources' i-th message on the same worker. Each clone therefore gets
  /// a fresh seed derived deterministically from this instance's seed and
  /// a clone counter.
  PartitionerPtr Clone() const override {
    SplitMix64 mix(seed_ ^
                   (1 + clone_seq_.fetch_add(1, std::memory_order_relaxed)));
    return std::make_unique<RandomGrouping>(sources_, workers_, mix.Next());
  }

 private:
  uint32_t workers_;
  uint32_t sources_;
  uint64_t seed_;
  mutable std::atomic<uint64_t> clone_seq_{0};  // concurrent Clone() safe
  Rng rng_;
};

}  // namespace partition
}  // namespace pkgstream

#endif  // PKGSTREAM_PARTITION_SHUFFLE_GROUPING_H_
