// Copyright 2026 The pkgstream Authors.

#include "simulation/experiments.h"

#include <algorithm>
#include <cmath>

#include "apps/wordcount.h"
#include "common/hash.h"
#include "common/logging.h"

namespace pkgstream {
namespace simulation {

using workload::DatasetId;

double DefaultScale(DatasetId id, bool full) {
  if (full) return 1.0;
  switch (id) {
    case DatasetId::kWP:
      return 0.1;     // 2.2M messages, 290k keys
    case DatasetId::kTW:
      return 0.003;   // 3.6M messages, 93k keys
    case DatasetId::kCT:
      return 1.0;     // small enough to run in full
    case DatasetId::kLN1:
    case DatasetId::kLN2:
      return 0.2;     // 2M messages
    case DatasetId::kLJ:
      return 0.02;    // 1.38M edges
    case DatasetId::kSL1:
    case DatasetId::kSL2:
      return 1.0;     // ~1M edges, already small
  }
  return 1.0;
}

// ---------------------------------------------------------------------------
// Table I.
// ---------------------------------------------------------------------------

Result<std::vector<Table1Row>> RunTable1(uint64_t seed, bool full) {
  std::vector<Table1Row> rows;
  for (const auto& spec : workload::AllDatasets()) {
    double scale = DefaultScale(spec.id, full);
    PKGSTREAM_ASSIGN_OR_RETURN(auto stream,
                               workload::MakeKeyStream(spec, scale, seed));
    uint64_t messages = workload::ScaledMessages(spec, scale);
    workload::DatasetStats stats =
        workload::MeasureStream(stream.get(), messages);
    Table1Row row;
    row.symbol = spec.symbol;
    row.messages = stats.messages;
    row.keys = stats.distinct_keys;
    row.p1_percent = stats.p1 * 100.0;
    row.paper_p1_percent = spec.paper_p1 * 100.0;
    row.scale = scale;
    rows.push_back(row);
  }
  return rows;
}

// ---------------------------------------------------------------------------
// Table II.
// ---------------------------------------------------------------------------

Result<std::vector<Table2Cell>> RunTable2(const Table2Options& options) {
  std::vector<Table2Cell> cells;
  const DatasetId datasets[] = {DatasetId::kWP, DatasetId::kTW};
  for (DatasetId id : datasets) {
    const auto& spec = workload::GetDataset(id);
    double scale = DefaultScale(id, options.full);
    uint64_t messages = workload::ScaledMessages(spec, scale);
    for (uint32_t workers : options.workers) {
      // Off-Greedy needs the exact frequencies: one extra pass.
      PKGSTREAM_ASSIGN_OR_RETURN(
          auto freq_stream, workload::MakeKeyStream(spec, scale, options.seed));
      stats::FrequencyTable frequencies =
          ComputeFrequencies(freq_stream.get(), messages);

      for (partition::Technique technique : options.techniques) {
        PKGSTREAM_ASSIGN_OR_RETURN(
            auto stream, workload::MakeKeyStream(spec, scale, options.seed));
        RoutingConfig config;
        config.partitioner.technique = technique;
        config.partitioner.sources = 1;  // Table II studies the algorithms
        config.partitioner.workers = workers;
        config.partitioner.seed = options.seed;
        config.partitioner.frequencies = &frequencies;
        config.messages = messages;
        config.seed = options.seed;
        PKGSTREAM_ASSIGN_OR_RETURN(auto result,
                                   RunRouting(config, stream.get()));
        Table2Cell cell;
        cell.dataset = spec.symbol;
        cell.technique = partition::TechniqueName(technique);
        cell.workers = workers;
        cell.avg_imbalance = result.imbalance.avg_imbalance;
        cells.push_back(cell);
      }
    }
  }
  return cells;
}

// ---------------------------------------------------------------------------
// Figure 2.
// ---------------------------------------------------------------------------

Result<std::vector<Fig2Cell>> RunFig2(const Fig2Options& options) {
  std::vector<Fig2Cell> cells;
  for (DatasetId id : options.datasets) {
    const auto& spec = workload::GetDataset(id);
    double scale = DefaultScale(id, options.full);
    uint64_t messages = workload::ScaledMessages(spec, scale);
    for (uint32_t workers : options.workers) {
      auto run = [&](partition::Technique technique, uint32_t sources,
                     const std::string& label) -> Status {
        PKGSTREAM_ASSIGN_OR_RETURN(
            auto stream, workload::MakeKeyStream(spec, scale, options.seed));
        RoutingConfig config;
        config.partitioner.technique = technique;
        config.partitioner.sources = sources;
        config.partitioner.workers = workers;
        config.partitioner.seed = options.seed;
        config.messages = messages;
        config.seed = options.seed;
        PKGSTREAM_ASSIGN_OR_RETURN(auto result,
                                   RunRouting(config, stream.get()));
        Fig2Cell cell;
        cell.dataset = spec.symbol;
        cell.series = label;
        cell.workers = workers;
        cell.avg_fraction = result.imbalance.avg_fraction;
        cells.push_back(cell);
        return Status::OK();
      };
      // G: global oracle (sources immaterial; use 1).
      PKGSTREAM_RETURN_NOT_OK(run(partition::Technique::kPkgGlobal, 1, "G"));
      // L5..L20: local estimation with S sources.
      for (uint32_t sources : options.sources) {
        PKGSTREAM_RETURN_NOT_OK(run(partition::Technique::kPkgLocal, sources,
                                    "L" + std::to_string(sources)));
      }
      // H: hashing baseline.
      PKGSTREAM_RETURN_NOT_OK(run(partition::Technique::kHashing, 1, "H"));
    }
  }
  return cells;
}

// ---------------------------------------------------------------------------
// Figure 3.
// ---------------------------------------------------------------------------

namespace {

/// Downsamples an imbalance series to `points` points in dataset time.
std::vector<Fig3Point> ToDatasetTime(
    const std::vector<stats::ImbalancePoint>& series, uint64_t messages,
    double duration_units, size_t points) {
  std::vector<Fig3Point> out;
  if (series.empty() || points == 0) return out;
  size_t stride = std::max<size_t>(1, series.size() / points);
  for (size_t i = 0; i < series.size(); i += stride) {
    const auto& p = series[i];
    double t = static_cast<double>(p.t) / static_cast<double>(messages) *
               duration_units;
    out.push_back(Fig3Point{t, p.fraction});
  }
  return out;
}

}  // namespace

Result<std::vector<Fig3Series>> RunFig3(const Fig3Options& options) {
  std::vector<Fig3Series> all;
  for (DatasetId id : options.datasets) {
    const auto& spec = workload::GetDataset(id);
    double scale = DefaultScale(id, options.full);
    uint64_t messages = workload::ScaledMessages(spec, scale);
    // Dataset time: TW/WP plotted in minutes of a 40-minute window; CT in
    // hours over its 600-hour span. We use the preset's duration.
    bool hours = spec.duration_hours > 100;
    double duration_units =
        hours ? spec.duration_hours : 40.0;  // minutes for the short sets
    uint64_t probe_messages = std::max<uint64_t>(
        1, static_cast<uint64_t>(
               static_cast<double>(messages) /
               (duration_units * (hours ? 60.0 : 1.0)) *
               options.probe_minutes));
    for (uint32_t workers : options.workers) {
      struct SeriesSpec {
        partition::Technique technique;
        uint32_t sources;
        std::string label;
      };
      std::vector<SeriesSpec> specs = {
          {partition::Technique::kPkgGlobal, 1, "G"},
          {partition::Technique::kPkgLocal, options.sources,
           "L" + std::to_string(options.sources)},
          {partition::Technique::kPkgProbing, options.sources,
           "L" + std::to_string(options.sources) + "P1"},
      };
      for (const auto& s : specs) {
        PKGSTREAM_ASSIGN_OR_RETURN(
            auto stream, workload::MakeKeyStream(spec, scale, options.seed));
        Feed feed = MakeKeyFeed(stream.get());
        RoutingConfig config;
        config.partitioner.technique = s.technique;
        config.partitioner.sources = s.sources;
        config.partitioner.workers = workers;
        config.partitioner.seed = options.seed;
        config.partitioner.probe_period_messages = probe_messages;
        config.messages = messages;
        config.seed = options.seed;
        config.snapshot_every = std::max<uint64_t>(1, messages / 400);

        // Measure agreement against the global oracle in the same pass.
        RoutingConfig global = config;
        global.partitioner.technique = partition::Technique::kPkgGlobal;
        global.partitioner.sources = 1;
        PKGSTREAM_ASSIGN_OR_RETURN(auto agreement,
                                   RunAgreement(global, config, feed));
        Fig3Series series;
        series.dataset = spec.symbol;
        series.series = s.label;
        series.workers = workers;
        series.points = ToDatasetTime(agreement.b.series, messages,
                                      duration_units, options.points);
        series.jaccard_vs_global = agreement.jaccard;
        all.push_back(std::move(series));
      }
    }
  }
  return all;
}

// ---------------------------------------------------------------------------
// Figure 4.
// ---------------------------------------------------------------------------

Result<std::vector<Fig4Cell>> RunFig4(const Fig4Options& options) {
  std::vector<Fig4Cell> cells;
  for (DatasetId id : options.datasets) {
    const auto& spec = workload::GetDataset(id);
    double scale = DefaultScale(id, options.full);
    uint64_t messages = workload::ScaledMessages(spec, scale);
    for (uint32_t workers : options.workers) {
      for (uint32_t sources : options.sources) {
        for (SourceSplit split :
             {SourceSplit::kShuffle, SourceSplit::kKeyed}) {
          PKGSTREAM_ASSIGN_OR_RETURN(
              auto edges, workload::MakeEdgeStream(spec, scale, options.seed));
          Feed feed = MakeEdgeFeed(edges.get());
          RoutingConfig config;
          config.partitioner.technique = partition::Technique::kPkgLocal;
          config.partitioner.sources = sources;
          config.partitioner.workers = workers;
          config.partitioner.seed = options.seed;
          config.messages = messages;
          config.source_split = split;
          config.seed = options.seed;
          PKGSTREAM_ASSIGN_OR_RETURN(auto result, RunRouting(config, feed));
          Fig4Cell cell;
          cell.dataset = spec.symbol;
          cell.split = split == SourceSplit::kShuffle ? "Uniform" : "Skewed";
          cell.sources = sources;
          cell.workers = workers;
          cell.avg_fraction = result.imbalance.avg_fraction;
          cell.source_imbalance_fraction =
              stats::ImbalanceOf(result.source_loads) /
              static_cast<double>(messages);
          cells.push_back(cell);
        }
      }
    }
  }
  return cells;
}

// ---------------------------------------------------------------------------
// Figure 5.
// ---------------------------------------------------------------------------

engine::EventSimOptions ClusterDefaults() {
  // Calibrated so the binding constraint switches inside the Figure 5(a)
  // sweep, as in the paper's cluster: at low CPU delay the spout rate is
  // the bottleneck for the balanced techniques (flat region) while KG's
  // hottest counter is already saturated; at high delay every technique is
  // worker-bound. This yields the paper's differential declines
  // (KG ~60%, PKG/SG ~37%) without copying Storm's absolute numbers.
  engine::EventSimOptions options;
  options.source_service_us = 105;   // spout cost -> ~9.5k keys/s ceiling
  options.worker_overhead_us = 50;   // framework overhead per message
  options.network_delay_us = 1000;   // 1 ms per hop
  options.max_pending = 64;          // Storm max.spout.pending
  options.flush_cost_us = 150;       // per flushed counter at the sender
  options.memory_sample_period_us = 250000;
  return options;
}

Result<engine::EventSimReport> RunWordCountCluster(
    partition::Technique technique, uint32_t workers, double cpu_delay_ms,
    uint64_t aggregation_us, uint64_t messages, workload::DatasetId dataset,
    double scale, uint64_t seed) {
  const auto& spec = workload::GetDataset(dataset);
  PKGSTREAM_ASSIGN_OR_RETURN(auto stream,
                             workload::MakeKeyStream(spec, scale, seed));
  apps::WordCountTopology wc = apps::MakeWordCountTopology(
      technique, /*sources=*/1, workers, aggregation_us, /*topk=*/10, seed);
  engine::EventSimOptions options = ClusterDefaults();
  options.messages = messages;
  options.node_extra_service_us.assign(wc.topology.nodes().size(), 0);
  // Counters pay a fixed executor overhead (0.45 ms — the Storm-like
  // framework cost that dominated the paper's absolute numbers) plus the
  // emulated per-key CPU delay that Figure 5(a) sweeps.
  options.node_extra_service_us[wc.counter.index] =
      450 + static_cast<uint64_t>(cpu_delay_ms * 1000.0);
  options.max_sim_time_us = 3600ULL * 1000 * 1000;
  PKGSTREAM_ASSIGN_OR_RETURN(
      auto sim,
      engine::EventSimulator::Create(&wc.topology, stream.get(), options));
  return sim->Run();
}

Result<std::vector<Fig5aCell>> RunFig5a(const Fig5aOptions& options) {
  std::vector<Fig5aCell> cells;
  struct T {
    partition::Technique technique;
    const char* label;
  };
  const T techniques[] = {{partition::Technique::kPkgLocal, "PKG"},
                          {partition::Technique::kShuffle, "SG"},
                          {partition::Technique::kHashing, "KG"}};
  for (const T& t : techniques) {
    for (double delay : options.cpu_delay_ms) {
      PKGSTREAM_ASSIGN_OR_RETURN(
          auto report,
          RunWordCountCluster(t.technique, options.workers, delay,
                              /*aggregation_us=*/0, options.messages,
                              options.dataset, options.scale, options.seed));
      Fig5aCell cell;
      cell.technique = t.label;
      cell.cpu_delay_ms = delay;
      cell.throughput_per_s = report.throughput_per_s;
      cell.mean_latency_ms = report.mean_latency_us / 1000.0;
      cell.p99_latency_ms = static_cast<double>(report.p99_latency_us) / 1000.0;
      cell.memory_counters = report.peak_memory_counters;
      cells.push_back(cell);
    }
  }
  return cells;
}

Result<std::vector<Fig5bCell>> RunFig5b(const Fig5bOptions& options) {
  std::vector<Fig5bCell> cells;
  struct T {
    partition::Technique technique;
    const char* label;
  };
  const T techniques[] = {{partition::Technique::kPkgLocal, "PKG"},
                          {partition::Technique::kShuffle, "SG"}};
  PKGSTREAM_CHECK(options.aggregation_s.size() ==
                  options.paper_equivalent_s.size());
  for (const T& t : techniques) {
    for (size_t i = 0; i < options.aggregation_s.size(); ++i) {
      double period_s = options.aggregation_s[i];
      // Long periods need long runs: cover at least 3 aggregation windows
      // at an (estimated) few-k/s throughput.
      uint64_t messages = std::max<uint64_t>(
          options.min_messages,
          static_cast<uint64_t>(period_s * 3.0 * 4000.0));
      PKGSTREAM_ASSIGN_OR_RETURN(
          auto report,
          RunWordCountCluster(
              t.technique, options.workers, options.cpu_delay_ms,
              static_cast<uint64_t>(period_s * 1e6), messages,
              options.dataset, options.scale, options.seed));
      Fig5bCell cell;
      cell.technique = t.label;
      cell.aggregation_s = period_s;
      cell.paper_equivalent_s = options.paper_equivalent_s[i];
      cell.throughput_per_s = report.throughput_per_s;
      cell.avg_memory_counters = report.avg_memory_counters;
      cell.mean_latency_ms = report.mean_latency_us / 1000.0;
      cells.push_back(cell);
    }
  }
  // KG reference: running totals, no aggregation flushes.
  PKGSTREAM_ASSIGN_OR_RETURN(
      auto report,
      RunWordCountCluster(partition::Technique::kHashing, options.workers,
                          options.cpu_delay_ms, /*aggregation_us=*/0,
                          options.min_messages, options.dataset, options.scale,
                          options.seed));
  Fig5bCell kg;
  kg.technique = "KG";
  kg.aggregation_s = 0.0;
  kg.paper_equivalent_s = 0.0;
  kg.throughput_per_s = report.throughput_per_s;
  kg.avg_memory_counters = report.avg_memory_counters;
  kg.mean_latency_ms = report.mean_latency_us / 1000.0;
  cells.push_back(kg);
  return cells;
}

}  // namespace simulation
}  // namespace pkgstream
