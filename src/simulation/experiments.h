// Copyright 2026 The pkgstream Authors.
// Canned reproductions of every table and figure in the paper's evaluation
// (Section V). Each function runs the experiment at a configurable scale and
// returns structured rows; the bench binaries print them in the paper's
// layout. docs/EXPERIMENTS.md records paper-vs-measured values.

#ifndef PKGSTREAM_SIMULATION_EXPERIMENTS_H_
#define PKGSTREAM_SIMULATION_EXPERIMENTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/event_sim.h"
#include "partition/factory.h"
#include "simulation/runner.h"
#include "workload/dataset.h"

namespace pkgstream {
namespace simulation {

/// \brief Default per-dataset scales chosen so each run finishes in seconds
/// on one machine. `full` requests paper scale (slow).
double DefaultScale(workload::DatasetId id, bool full);

// ---------------------------------------------------------------------------
// Table I — dataset statistics.
// ---------------------------------------------------------------------------

struct Table1Row {
  std::string symbol;
  uint64_t messages = 0;
  uint64_t keys = 0;
  double p1_percent = 0.0;        // measured on the generated stream
  double paper_p1_percent = 0.0;  // published value
  double scale = 1.0;
};

/// Generates every dataset at its default scale and measures m, K, p1.
Result<std::vector<Table1Row>> RunTable1(uint64_t seed, bool full);

// ---------------------------------------------------------------------------
// Table II — average imbalance by technique (WP and TW, single source).
// ---------------------------------------------------------------------------

struct Table2Cell {
  std::string dataset;
  std::string technique;
  uint32_t workers = 0;
  double avg_imbalance = 0.0;
};

struct Table2Options {
  std::vector<uint32_t> workers = {5, 10, 50, 100};
  std::vector<partition::Technique> techniques = {
      partition::Technique::kPkgLocal, partition::Technique::kOffGreedy,
      partition::Technique::kOnGreedy, partition::Technique::kPotcStatic,
      partition::Technique::kHashing};
  uint64_t seed = 42;
  bool full = false;
};

Result<std::vector<Table2Cell>> RunTable2(const Table2Options& options);

// ---------------------------------------------------------------------------
// Figure 2 — fraction of average imbalance: local vs global estimation.
// ---------------------------------------------------------------------------

struct Fig2Cell {
  std::string dataset;
  std::string series;  ///< "G", "L5".."L20", "H"
  uint32_t workers = 0;
  double avg_fraction = 0.0;  ///< avg over samples of I(t)/t
};

struct Fig2Options {
  std::vector<workload::DatasetId> datasets = {
      workload::DatasetId::kTW, workload::DatasetId::kWP,
      workload::DatasetId::kCT, workload::DatasetId::kLN1,
      workload::DatasetId::kLN2};
  std::vector<uint32_t> workers = {5, 10, 50, 100};
  std::vector<uint32_t> sources = {5, 10, 15, 20};  ///< the L-series
  uint64_t seed = 42;
  bool full = false;
};

Result<std::vector<Fig2Cell>> RunFig2(const Fig2Options& options);

// ---------------------------------------------------------------------------
// Figure 3 — imbalance through time (G vs L5 vs L5 with 1-minute probing).
// ---------------------------------------------------------------------------

struct Fig3Point {
  double time;      ///< dataset-time units (minutes for TW/WP, hours for CT)
  double fraction;  ///< I(t) / t
};

struct Fig3Series {
  std::string dataset;
  std::string series;  ///< "G", "L5", "L5P1"
  uint32_t workers = 0;
  std::vector<Fig3Point> points;
  double jaccard_vs_global = 0.0;  ///< the Q2 "47% overlap" measurement
};

struct Fig3Options {
  std::vector<workload::DatasetId> datasets = {workload::DatasetId::kTW,
                                               workload::DatasetId::kWP,
                                               workload::DatasetId::kCT};
  std::vector<uint32_t> workers = {10, 50};
  uint32_t sources = 5;
  double probe_minutes = 1.0;
  size_t points = 20;  ///< time-series resolution in the output
  uint64_t seed = 42;
  bool full = false;
};

Result<std::vector<Fig3Series>> RunFig3(const Fig3Options& options);

// ---------------------------------------------------------------------------
// Figure 4 — robustness to skewed source splits (graph datasets).
// ---------------------------------------------------------------------------

struct Fig4Cell {
  std::string dataset;
  std::string split;   ///< "Uniform" or "Skewed"
  uint32_t sources = 0;
  uint32_t workers = 0;
  double avg_fraction = 0.0;
  double source_imbalance_fraction = 0.0;  ///< how skewed the split was
};

struct Fig4Options {
  std::vector<workload::DatasetId> datasets = {workload::DatasetId::kLJ};
  std::vector<uint32_t> sources = {5, 10, 15, 20};
  std::vector<uint32_t> workers = {5, 10, 50, 100};
  uint64_t seed = 42;
  bool full = false;
};

Result<std::vector<Fig4Cell>> RunFig4(const Fig4Options& options);

// ---------------------------------------------------------------------------
// Figure 5(a) — throughput vs CPU delay on the simulated cluster.
// ---------------------------------------------------------------------------

struct Fig5aCell {
  std::string technique;  ///< "PKG", "SG", "KG"
  double cpu_delay_ms = 0.0;
  double throughput_per_s = 0.0;
  double mean_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  uint64_t memory_counters = 0;  ///< end-of-run live counters
};

struct Fig5aOptions {
  std::vector<double> cpu_delay_ms = {0.1, 0.2, 0.4, 0.6, 0.8, 1.0};
  uint32_t workers = 9;  ///< the paper's 9 counters
  uint64_t messages = 200000;
  workload::DatasetId dataset = workload::DatasetId::kWP;
  double scale = 0.02;
  uint64_t seed = 42;
};

Result<std::vector<Fig5aCell>> RunFig5a(const Fig5aOptions& options);

// ---------------------------------------------------------------------------
// Figure 5(b) — throughput vs memory for aggregation periods.
// ---------------------------------------------------------------------------

struct Fig5bCell {
  std::string technique;       ///< "PKG", "SG", "KG"
  double aggregation_s = 0.0;  ///< simulated seconds (0 = none: the KG row)
  double paper_equivalent_s = 0.0;  ///< the paper period this maps to
  double throughput_per_s = 0.0;
  double avg_memory_counters = 0.0;
  double mean_latency_ms = 0.0;
};

struct Fig5bOptions {
  /// Simulated aggregation periods; the paper's {10,30,60,300,600}s scale
  /// down with the cluster speed-up (see docs/EXPERIMENTS.md).
  std::vector<double> aggregation_s = {4, 8, 16, 40, 80};
  std::vector<double> paper_equivalent_s = {10, 30, 60, 300, 600};
  double cpu_delay_ms = 0.4;  ///< the paper's KG saturation point
  uint32_t workers = 9;
  uint64_t min_messages = 400000;
  workload::DatasetId dataset = workload::DatasetId::kWP;
  double scale = 0.02;
  uint64_t seed = 42;
};

Result<std::vector<Fig5bCell>> RunFig5b(const Fig5bOptions& options);

// ---------------------------------------------------------------------------
// Shared helpers.
// ---------------------------------------------------------------------------

/// \brief Builds the event-sim options used by the Figure 5 experiments.
engine::EventSimOptions ClusterDefaults();

/// \brief Runs one word-count cluster simulation (used by Fig 5 and by the
/// cluster_sim example).
Result<engine::EventSimReport> RunWordCountCluster(
    partition::Technique technique, uint32_t workers, double cpu_delay_ms,
    uint64_t aggregation_us, uint64_t messages, workload::DatasetId dataset,
    double scale, uint64_t seed);

}  // namespace simulation
}  // namespace pkgstream

#endif  // PKGSTREAM_SIMULATION_EXPERIMENTS_H_
