// Copyright 2026 The pkgstream Authors.

#include "simulation/runner.h"

#include <algorithm>

#include "common/hash.h"
#include "common/logging.h"

namespace pkgstream {
namespace simulation {

Feed MakeKeyFeed(workload::KeyStream* stream) {
  auto counter = std::make_shared<uint64_t>(0);
  return [stream, counter]() {
    FeedItem item;
    item.routing_key = stream->Next();
    item.source_key = (*counter)++;
    return item;
  };
}

Feed MakeEdgeFeed(workload::RmatEdgeStream* stream) {
  return [stream]() {
    workload::Edge e = stream->Next();
    return FeedItem{e.dst, e.src};
  };
}

namespace {

SourceId PickSource(const RoutingConfig& config, const FeedItem& item) {
  uint32_t sources = config.partitioner.sources;
  if (sources == 1) return 0;
  if (config.source_split == SourceSplit::kShuffle) {
    return static_cast<SourceId>(item.source_key % sources);
  }
  return static_cast<SourceId>(
      Murmur3_64(item.source_key, static_cast<uint32_t>(config.seed)) %
      sources);
}

uint64_t SnapshotEvery(const RoutingConfig& config) {
  if (config.snapshot_every > 0) return config.snapshot_every;
  return std::max<uint64_t>(1, config.messages / 1000);
}

}  // namespace

Result<RoutingResult> RunRouting(const RoutingConfig& config,
                                 const Feed& feed) {
  if (config.messages == 0) {
    return Status::InvalidArgument("RunRouting: messages must be > 0");
  }
  PKGSTREAM_ASSIGN_OR_RETURN(auto partitioner,
                             partition::MakePartitioner(config.partitioner));
  stats::ImbalanceTracker tracker(config.partitioner.workers,
                                  SnapshotEvery(config));
  std::vector<uint64_t> source_loads(config.partitioner.sources, 0);
  for (uint64_t i = 0; i < config.messages; ++i) {
    FeedItem item = feed();
    SourceId s = PickSource(config, item);
    ++source_loads[s];
    WorkerId w = partitioner->Route(s, item.routing_key);
    tracker.OnRoute(w);
  }
  RoutingResult result;
  result.technique = partitioner->Name();
  result.imbalance = tracker.Finish();
  result.series = tracker.series();
  result.loads = tracker.loads();
  result.source_loads = std::move(source_loads);
  return result;
}

Result<RoutingResult> RunRouting(const RoutingConfig& config,
                                 workload::KeyStream* stream) {
  if (config.messages == 0) {
    return Status::InvalidArgument("RunRouting: messages must be > 0");
  }
  PKGSTREAM_ASSIGN_OR_RETURN(auto partitioner,
                             partition::MakePartitioner(config.partitioner));
  stats::ImbalanceTracker tracker(config.partitioner.workers,
                                  SnapshotEvery(config));
  const uint32_t sources = config.partitioner.sources;
  std::vector<uint64_t> source_loads(sources, 0);
  constexpr uint64_t kBatch = 512;
  Key keys[kBatch];
  WorkerId workers[kBatch];
  uint64_t counter = 0;  // doubles as the key feed's source_key
  for (uint64_t done = 0; done < config.messages;) {
    const size_t len = static_cast<size_t>(
        std::min<uint64_t>(kBatch, config.messages - done));
    stream->NextBatch(keys, len);
    if (sources == 1) {
      // Single source: the whole chunk is one RouteBatch call.
      partitioner->RouteBatch(0, keys, workers, len);
      source_loads[0] += len;
      for (size_t j = 0; j < len; ++j) tracker.OnRoute(workers[j]);
    } else {
      // Multiple sources interleave per message (shuffle split cycles
      // every message), so routing stays scalar to keep the per-message
      // source order — batching still removed the per-key virtual
      // stream dispatch.
      for (size_t j = 0; j < len; ++j) {
        SourceId s = PickSource(config, FeedItem{keys[j], counter + j});
        ++source_loads[s];
        tracker.OnRoute(partitioner->Route(s, keys[j]));
      }
    }
    counter += len;
    done += len;
  }
  RoutingResult result;
  result.technique = partitioner->Name();
  result.imbalance = tracker.Finish();
  result.series = tracker.series();
  result.loads = tracker.loads();
  result.source_loads = std::move(source_loads);
  return result;
}

stats::FrequencyTable ComputeFrequencies(const Feed& feed, uint64_t messages) {
  stats::FrequencyTable table;
  for (uint64_t i = 0; i < messages; ++i) table.Add(feed().routing_key);
  return table;
}

stats::FrequencyTable ComputeFrequencies(workload::KeyStream* stream,
                                         uint64_t messages) {
  stats::FrequencyTable table;
  constexpr uint64_t kBatch = 512;
  Key keys[kBatch];
  for (uint64_t done = 0; done < messages;) {
    const size_t len =
        static_cast<size_t>(std::min<uint64_t>(kBatch, messages - done));
    stream->NextBatch(keys, len);
    for (size_t j = 0; j < len; ++j) table.Add(keys[j]);
    done += len;
  }
  return table;
}

Result<AgreementResult> RunAgreement(const RoutingConfig& config_a,
                                     const RoutingConfig& config_b,
                                     const Feed& feed) {
  if (config_a.messages != config_b.messages) {
    return Status::InvalidArgument("agreement runs must use equal messages");
  }
  PKGSTREAM_ASSIGN_OR_RETURN(
      auto pa, partition::MakePartitioner(config_a.partitioner));
  PKGSTREAM_ASSIGN_OR_RETURN(
      auto pb, partition::MakePartitioner(config_b.partitioner));
  if (pa->workers() != pb->workers()) {
    return Status::InvalidArgument("agreement runs must use equal workers");
  }
  stats::ImbalanceTracker ta(config_a.partitioner.workers,
                             SnapshotEvery(config_a));
  stats::ImbalanceTracker tb(config_b.partitioner.workers,
                             SnapshotEvery(config_b));
  stats::AgreementTracker agreement;
  std::vector<uint64_t> sa(config_a.partitioner.sources, 0);
  std::vector<uint64_t> sb(config_b.partitioner.sources, 0);
  for (uint64_t i = 0; i < config_a.messages; ++i) {
    FeedItem item = feed();
    SourceId source_a = PickSource(config_a, item);
    SourceId source_b = PickSource(config_b, item);
    ++sa[source_a];
    ++sb[source_b];
    WorkerId wa = pa->Route(source_a, item.routing_key);
    WorkerId wb = pb->Route(source_b, item.routing_key);
    ta.OnRoute(wa);
    tb.OnRoute(wb);
    agreement.OnMessage(wa, wb);
  }
  AgreementResult out;
  out.a.technique = pa->Name();
  out.a.imbalance = ta.Finish();
  out.a.series = ta.series();
  out.a.loads = ta.loads();
  out.a.source_loads = std::move(sa);
  out.b.technique = pb->Name();
  out.b.imbalance = tb.Finish();
  out.b.series = tb.series();
  out.b.loads = tb.loads();
  out.b.source_loads = std::move(sb);
  out.jaccard = agreement.Jaccard();
  out.match_rate = agreement.MatchRate();
  return out;
}

}  // namespace simulation
}  // namespace pkgstream
