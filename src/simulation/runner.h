// Copyright 2026 The pkgstream Authors.
// The routing simulation of Section V (questions Q1-Q3): the Figure 1 DAG.
// A stream of keyed messages is split across S sources (by shuffle, or —
// for the Q3 robustness experiment — keyed by an upstream key such as the
// graph's source vertex); each source routes its messages to W workers
// through the partitioning strategy under test; the tracker measures the
// worker-load imbalance through time.

#ifndef PKGSTREAM_SIMULATION_RUNNER_H_
#define PKGSTREAM_SIMULATION_RUNNER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "partition/factory.h"
#include "stats/agreement.h"
#include "stats/frequency.h"
#include "stats/imbalance.h"
#include "workload/key_stream.h"
#include "workload/rmat.h"

namespace pkgstream {
namespace simulation {

/// \brief One message as seen by the splitter: the key used for worker
/// routing, plus the upstream key that decides which source receives it.
struct FeedItem {
  Key routing_key;  ///< key the sources partition on (the paper's k)
  Key source_key;   ///< key the *input* is partitioned on across sources
};

/// \brief Produces the message sequence for a run.
using Feed = std::function<FeedItem()>;

/// \brief Feed over a KeyStream: routing key from the stream; source key is
/// the message index (so kShuffle assigns sources round-robin).
Feed MakeKeyFeed(workload::KeyStream* stream);

/// \brief Feed over a graph edge stream, modelling the Q3 setup: the source
/// PE is keyed by the edge's source vertex, the worker key is the
/// destination vertex (the source PE "inverts the edge").
Feed MakeEdgeFeed(workload::RmatEdgeStream* stream);

/// \brief How messages are assigned to sources.
enum class SourceSplit {
  kShuffle,  ///< round-robin on source_key order (uniform split)
  kKeyed,    ///< hash of source_key (key grouping onto sources; skewed)
};

/// \brief Parameters of one routing run.
struct RoutingConfig {
  partition::PartitionerConfig partitioner;
  uint64_t messages = 1000000;
  SourceSplit source_split = SourceSplit::kShuffle;
  /// Imbalance snapshot interval; 0 = auto (messages / 1000, min 1).
  uint64_t snapshot_every = 0;
  uint64_t seed = 42;
};

/// \brief Result of one routing run.
struct RoutingResult {
  std::string technique;
  stats::ImbalanceSummary imbalance;
  std::vector<stats::ImbalancePoint> series;
  /// Final per-worker loads.
  std::vector<uint64_t> loads;
  /// Final per-source message counts (how skewed the split was).
  std::vector<uint64_t> source_loads;
};

/// \brief Runs one configuration over `config.messages` items of `feed`.
Result<RoutingResult> RunRouting(const RoutingConfig& config, const Feed& feed);

/// \brief Batched overload: consumes `stream` directly (same message
/// sequence and source split as RunRouting over MakeKeyFeed(stream)) but
/// pulls keys through KeyStream::NextBatch and, when the run has a single
/// source, routes whole chunks through Partitioner::RouteBatch. Results
/// are bit-identical to the Feed path — both batch hooks contractually
/// replay the scalar sequence — so the golden baselines do not move; the
/// per-message std::function and virtual Route/Next dispatch do.
Result<RoutingResult> RunRouting(const RoutingConfig& config,
                                 workload::KeyStream* stream);

/// \brief First pass helper: exact key frequencies of a feed prefix
/// (Off-Greedy needs them; callers recreate the feed for the real run).
stats::FrequencyTable ComputeFrequencies(const Feed& feed, uint64_t messages);

/// \brief Batched overload of ComputeFrequencies (NextBatch consumption;
/// identical table).
stats::FrequencyTable ComputeFrequencies(workload::KeyStream* stream,
                                         uint64_t messages);

/// \brief Result of a two-strategy agreement run (the Q2 Jaccard check).
struct AgreementResult {
  RoutingResult a;
  RoutingResult b;
  double jaccard = 0.0;
  double match_rate = 0.0;
};

/// \brief Routes the same message sequence through two partitioners and
/// measures how often they agree on the destination.
Result<AgreementResult> RunAgreement(const RoutingConfig& config_a,
                                     const RoutingConfig& config_b,
                                     const Feed& feed);

}  // namespace simulation
}  // namespace pkgstream

#endif  // PKGSTREAM_SIMULATION_RUNNER_H_
