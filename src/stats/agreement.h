// Copyright 2026 The pkgstream Authors.
// Routing-agreement measurement between two partitioning strategies.
//
// Section V (Q2) observes that PKG with a global load oracle (G) and PKG with
// local estimation (L) "have only 47% Jaccard overlap" on message
// destinations while reaching near-identical imbalance — i.e. local
// estimation finds a different but equally good local minimum. This tracker
// reproduces that measurement.

#ifndef PKGSTREAM_STATS_AGREEMENT_H_
#define PKGSTREAM_STATS_AGREEMENT_H_

#include <cstdint>

#include "common/types.h"

namespace pkgstream {
namespace stats {

/// \brief Streaming Jaccard agreement between two routing decision streams.
///
/// Decisions are compared message-by-message. Interpreting each strategy's
/// stream of (message -> worker) assignments as a set of (message, worker)
/// pairs, the Jaccard coefficient is |A ∩ B| / |A ∪ B| =
/// matches / (2·messages − matches).
class AgreementTracker {
 public:
  /// Records the two strategies' destinations for the same message.
  void OnMessage(WorkerId a, WorkerId b) {
    ++messages_;
    if (a == b) ++matches_;
  }

  uint64_t messages() const { return messages_; }
  uint64_t matches() const { return matches_; }

  /// Fraction of messages routed identically.
  double MatchRate() const {
    return messages_ ? static_cast<double>(matches_) /
                           static_cast<double>(messages_)
                     : 1.0;
  }

  /// Jaccard coefficient over (message, worker) pairs.
  double Jaccard() const {
    if (messages_ == 0) return 1.0;
    return static_cast<double>(matches_) /
           static_cast<double>(2 * messages_ - matches_);
  }

 private:
  uint64_t messages_ = 0;
  uint64_t matches_ = 0;
};

}  // namespace stats
}  // namespace pkgstream

#endif  // PKGSTREAM_STATS_AGREEMENT_H_
