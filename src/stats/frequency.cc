// Copyright 2026 The pkgstream Authors.

#include "stats/frequency.h"

#include <algorithm>

namespace pkgstream {
namespace stats {

std::vector<std::pair<Key, uint64_t>> FrequencyTable::TopK(size_t k) const {
  std::vector<std::pair<Key, uint64_t>> items(counts_.begin(), counts_.end());
  auto by_count_desc = [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  };
  if (k > 0 && k < items.size()) {
    std::partial_sort(items.begin(), items.begin() + static_cast<long>(k),
                      items.end(), by_count_desc);
    items.resize(k);
  } else {
    std::sort(items.begin(), items.end(), by_count_desc);
  }
  return items;
}

double FrequencyTable::HeadProbability() const {
  if (total_ == 0) return 0.0;
  uint64_t best = 0;
  for (const auto& [_, c] : counts_) best = std::max(best, c);
  return static_cast<double>(best) / static_cast<double>(total_);
}

}  // namespace stats
}  // namespace pkgstream
