// Copyright 2026 The pkgstream Authors.
// Exact key-frequency accounting: used by the Off-Greedy baseline (which
// needs the true frequencies ahead of time), by dataset statistics
// (Table I's K and p1), and as ground truth for the heavy-hitter tests.

#ifndef PKGSTREAM_STATS_FREQUENCY_H_
#define PKGSTREAM_STATS_FREQUENCY_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.h"

namespace pkgstream {
namespace stats {

/// \brief Exact frequency table over 64-bit keys.
class FrequencyTable {
 public:
  /// Records one occurrence of `key`.
  void Add(Key key) {
    ++counts_[key];
    ++total_;
  }

  /// Records `count` occurrences of `key`.
  void Add(Key key, uint64_t count) {
    counts_[key] += count;
    total_ += count;
  }

  /// Total number of recorded occurrences (m).
  uint64_t total() const { return total_; }

  /// Number of distinct keys (K).
  uint64_t distinct() const { return counts_.size(); }

  /// Count of `key`; 0 when unseen.
  uint64_t Count(Key key) const {
    auto it = counts_.find(key);
    return it == counts_.end() ? 0 : it->second;
  }

  /// (key, count) pairs sorted by decreasing count, ties by key for
  /// determinism. When k > 0, only the top k are returned.
  std::vector<std::pair<Key, uint64_t>> TopK(size_t k = 0) const;

  /// Probability of the most frequent key (Table I's p1); 0 when empty.
  double HeadProbability() const;

  /// Read-only access to the underlying map.
  const std::unordered_map<Key, uint64_t>& counts() const { return counts_; }

 private:
  std::unordered_map<Key, uint64_t> counts_;
  uint64_t total_ = 0;
};

}  // namespace stats
}  // namespace pkgstream

#endif  // PKGSTREAM_STATS_FREQUENCY_H_
