// Copyright 2026 The pkgstream Authors.

#include "stats/imbalance.h"

#include <algorithm>

#include "common/logging.h"

namespace pkgstream {
namespace stats {

ImbalanceTracker::ImbalanceTracker(uint32_t workers, uint64_t sample_every)
    : loads_(workers, 0), sample_every_(sample_every) {
  PKGSTREAM_CHECK(workers >= 1);
  PKGSTREAM_CHECK(sample_every >= 1);
}

void ImbalanceTracker::OnRoute(WorkerId w) {
  PKGSTREAM_DCHECK(w < loads_.size());
  uint64_t load = ++loads_[w];
  max_load_ = std::max(max_load_, load);
  ++t_;
  if (t_ % sample_every_ == 0) Sample();
}

double ImbalanceTracker::CurrentImbalance() const {
  if (t_ == 0) return 0.0;
  double avg = static_cast<double>(t_) / static_cast<double>(loads_.size());
  return static_cast<double>(max_load_) - avg;
}

void ImbalanceTracker::Sample() {
  if (t_ == 0) return;
  double imb = CurrentImbalance();
  double fraction = imb / static_cast<double>(t_);
  imbalance_stats_.Add(imb);
  fraction_stats_.Add(fraction);
  series_.push_back(ImbalancePoint{t_, imb, fraction, max_load_});
}

ImbalanceSummary ImbalanceTracker::Finish() {
  if (!finished_) {
    // Always include the final point, unless it was just sampled.
    if (t_ % sample_every_ != 0) Sample();
    finished_ = true;
  }
  ImbalanceSummary s;
  s.messages = t_;
  s.workers = static_cast<uint32_t>(loads_.size());
  s.avg_imbalance = imbalance_stats_.mean();
  s.final_imbalance = CurrentImbalance();
  s.max_imbalance = imbalance_stats_.count() ? imbalance_stats_.max() : 0.0;
  s.avg_fraction = fraction_stats_.count() ? fraction_stats_.mean() : 0.0;
  s.max_load = max_load_;
  s.min_load = *std::min_element(loads_.begin(), loads_.end());
  return s;
}

double ImbalanceOf(const std::vector<uint64_t>& loads) {
  PKGSTREAM_CHECK(!loads.empty());
  uint64_t max = 0;
  uint64_t sum = 0;
  for (uint64_t l : loads) {
    max = std::max(max, l);
    sum += l;
  }
  return static_cast<double>(max) -
         static_cast<double>(sum) / static_cast<double>(loads.size());
}

}  // namespace stats
}  // namespace pkgstream
