// Copyright 2026 The pkgstream Authors.
// Load-imbalance accounting exactly as defined in Section II of the paper:
//
//   L_i(t) = number of messages routed to worker i up to time t
//   I(t)   = max_i L_i(t) - avg_i L_i(t)
//
// The evaluation reports three views of I(t):
//   * Table II:  the average of I(t) sampled at regular intervals,
//   * Figure 2:  the average of the normalized imbalance I(t)/t over the
//                same samples (the mean of Figure 3's curve),
//   * Figure 3:  the instantaneous I(t) normalized by t, through time.
// ImbalanceTracker computes all three in one pass.

#ifndef PKGSTREAM_STATS_IMBALANCE_H_
#define PKGSTREAM_STATS_IMBALANCE_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "stats/running_stats.h"

namespace pkgstream {
namespace stats {

/// \brief One sampled point of the imbalance time series.
struct ImbalancePoint {
  StreamTime t;        ///< messages seen when the sample was taken
  double imbalance;    ///< I(t) = max load - avg load
  double fraction;     ///< I(t) / t (Figure 3's y-axis)
  uint64_t max_load;   ///< max_i L_i(t)
};

/// \brief Summary of a finished run.
struct ImbalanceSummary {
  uint64_t messages = 0;       ///< total messages routed (m)
  uint32_t workers = 0;        ///< number of workers (n)
  double avg_imbalance = 0;    ///< avg over samples of I(t)   (Table II)
  double final_imbalance = 0;  ///< I(m)
  double max_imbalance = 0;    ///< max over samples of I(t)
  /// Avg over samples of I(t)/t (Figure 2) — the mean of the per-sample
  /// fractions in series(), so the summary and the time series agree.
  double avg_fraction = 0;
  uint64_t max_load = 0;       ///< final max_i L_i(m)
  uint64_t min_load = 0;       ///< final min_i L_i(m)
};

/// \brief Tracks per-worker load and samples the imbalance time series.
///
/// Single-writer: the simulation driver calls OnRoute once per message.
/// Sampling every message would dominate runtime at 10^8 messages, so the
/// tracker snapshots every `sample_every` messages (and once more at Finish).
class ImbalanceTracker {
 public:
  /// `workers` >= 1; `sample_every` >= 1 controls time-series resolution.
  ImbalanceTracker(uint32_t workers, uint64_t sample_every = 1000);

  /// Records that one message was routed to `w` (advances time by 1).
  void OnRoute(WorkerId w);

  /// Current loads.
  const std::vector<uint64_t>& loads() const { return loads_; }

  /// Messages routed so far.
  StreamTime now() const { return t_; }

  /// Instantaneous imbalance I(t) at the current time.
  double CurrentImbalance() const;

  /// Takes a snapshot immediately (in addition to the periodic schedule).
  void Sample();

  /// Finalizes (samples the last point) and returns the summary.
  ImbalanceSummary Finish();

  /// Sampled time series (valid any time; grows as the run proceeds).
  const std::vector<ImbalancePoint>& series() const { return series_; }

 private:
  std::vector<uint64_t> loads_;
  StreamTime t_ = 0;
  uint64_t sample_every_;
  uint64_t max_load_ = 0;  // maintained incrementally: max only grows
  RunningStats imbalance_stats_;
  RunningStats fraction_stats_;  // per-sample I(t)/t
  std::vector<ImbalancePoint> series_;
  bool finished_ = false;
};

/// \brief Computes I(t) for an explicit load vector (used by tests and by
/// offline algorithms that build load vectors directly).
double ImbalanceOf(const std::vector<uint64_t>& loads);

}  // namespace stats
}  // namespace pkgstream

#endif  // PKGSTREAM_STATS_IMBALANCE_H_
