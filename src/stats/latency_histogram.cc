// Copyright 2026 The pkgstream Authors.

#include "stats/latency_histogram.h"

#include <algorithm>
#include <cmath>

#include "common/bits.h"
#include "common/logging.h"

namespace pkgstream {
namespace stats {

LatencyHistogram::LatencyHistogram(uint64_t max_value, uint32_t sub_buckets)
    : max_value_(max_value), sub_buckets_(sub_buckets) {
  PKGSTREAM_CHECK(max_value >= 2);
  PKGSTREAM_CHECK(sub_buckets >= 2 && HasSingleBit(sub_buckets))
      << "sub_buckets must be a power of two";
  sub_bucket_shift_ = static_cast<uint32_t>(CountrZero(sub_buckets_));
  // Record() clamps every value to max_value_, so the largest cell ever
  // touched is BucketIndex(max_value_): allocate exactly through it (one
  // super-bucket per bit of max_value would waste ~20% of cells — the top
  // super-bucket only ever uses the sub-cells below max_value's position).
  const uint32_t top = BucketIndex(max_value_);
  counts_.assign(static_cast<size_t>(top) + 1, 0);
  // The top cell must really cover max_value_, or clamped values would be
  // misfiled (BucketIndex and BucketUpperBound agree on the geometry).
  PKGSTREAM_CHECK(BucketUpperBound(top) >= max_value_);
}

uint32_t LatencyHistogram::BucketIndex(uint64_t value) const {
  if (value < sub_buckets_) {
    // Values below sub_buckets_ are exact: one cell per integer.
    return static_cast<uint32_t>(value);
  }
  uint32_t msb = 63 - static_cast<uint32_t>(CountlZero(value));
  uint32_t super = msb - sub_bucket_shift_ + 1;
  // Top bit stripped, next `shift` bits select the linear cell.
  uint32_t within = static_cast<uint32_t>(
      (value >> (msb - sub_bucket_shift_)) & (sub_buckets_ - 1));
  return super * sub_buckets_ + within;
}

uint64_t LatencyHistogram::BucketUpperBound(uint32_t index) const {
  uint32_t super = index >> sub_bucket_shift_;
  uint32_t within = index & (sub_buckets_ - 1);
  if (super == 0) return within;  // exact range
  // Reconstruct: value had msb at (super - 1 + shift), kept `within` bits.
  uint32_t msb = super - 1 + sub_bucket_shift_;
  uint64_t base = 1ULL << msb;
  uint64_t step = 1ULL << (msb - sub_bucket_shift_);
  return base + static_cast<uint64_t>(within + 1) * step - 1;
}

void LatencyHistogram::Record(uint64_t value) {
  if (value > max_value_) {
    value = max_value_;
    ++saturated_;
  }
  uint32_t idx = BucketIndex(value);
  PKGSTREAM_DCHECK(idx < counts_.size());
  ++counts_[idx];
  stats_.Add(static_cast<double>(value));
}

uint64_t LatencyHistogram::Quantile(double q) const {
  if (stats_.count() == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Lower-quantile convention: the smallest value v such that at least
  // ceil(q * count) observations are <= v.
  double exact = q * static_cast<double>(stats_.count());
  uint64_t rank = static_cast<uint64_t>(std::ceil(exact));
  if (rank > 0) --rank;
  if (rank >= stats_.count()) rank = stats_.count() - 1;
  // The bucket upper bound can exceed the true recorded maximum by up to the
  // bucket width (Quantile(1.0) must not invent values nobody observed);
  // RunningStats tracks the exact max, so clamp against it.
  const uint64_t recorded_max = static_cast<uint64_t>(stats_.max());
  uint64_t seen = 0;
  for (uint32_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen > rank) return std::min(BucketUpperBound(i), recorded_max);
  }
  return recorded_max;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  // max_value_ must be compared explicitly: two histograms whose max values
  // share a top sub-bucket cell (e.g. 1010 and 1023 at 32 sub-buckets) have
  // identical counts_ sizes yet different saturation thresholds — merging
  // them would silently mix clamp points.
  PKGSTREAM_CHECK(max_value_ == other.max_value_ &&
                  counts_.size() == other.counts_.size() &&
                  sub_buckets_ == other.sub_buckets_)
      << "histogram geometries differ";
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  saturated_ += other.saturated_;
  stats_.Merge(other.stats_);
}

void LatencyHistogram::Clear() {
  std::fill(counts_.begin(), counts_.end(), 0);
  saturated_ = 0;
  stats_ = RunningStats();
}

}  // namespace stats
}  // namespace pkgstream
