// Copyright 2026 The pkgstream Authors.
// Log-bucketed latency histogram (HdrHistogram-flavoured) for the cluster
// simulator's end-to-end latency reporting (Figure 5 discussion: "the average
// latency with KG is up to 45% larger than with PKG").

#ifndef PKGSTREAM_STATS_LATENCY_HISTOGRAM_H_
#define PKGSTREAM_STATS_LATENCY_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "stats/running_stats.h"

namespace pkgstream {
namespace stats {

/// \brief Histogram over [1, max_value] microseconds with bounded relative
/// error, using log2 buckets each split into `sub_buckets` linear cells.
///
/// With the default 32 sub-buckets the relative quantile error is ~3%.
/// Values above max_value are clamped into the top bucket (counted in
/// saturated()).
class LatencyHistogram {
 public:
  /// `max_value` is the largest representable latency (default ~17 minutes
  /// in microseconds); `sub_buckets` must be a power of two.
  explicit LatencyHistogram(uint64_t max_value = 1ULL << 30,
                            uint32_t sub_buckets = 32);

  /// Records one latency observation (microseconds or any unit).
  void Record(uint64_t value);

  /// Number of recorded observations.
  uint64_t count() const { return stats_.count(); }
  double mean() const { return stats_.mean(); }
  uint64_t min() const {
    return count() ? static_cast<uint64_t>(stats_.min()) : 0;
  }
  uint64_t max() const {
    return count() ? static_cast<uint64_t>(stats_.max()) : 0;
  }
  /// Observations clamped at max_value.
  uint64_t saturated() const { return saturated_; }

  /// Value at quantile q in [0,1] (bucket upper bound, clamped to the exact
  /// recorded max; ~3% relative error).
  uint64_t Quantile(double q) const;
  uint64_t P50() const { return Quantile(0.50); }
  uint64_t P95() const { return Quantile(0.95); }
  uint64_t P99() const { return Quantile(0.99); }
  uint64_t P999() const { return Quantile(0.999); }

  /// Merges another histogram with identical geometry.
  void Merge(const LatencyHistogram& other);

  /// Resets all counts.
  void Clear();

 private:
  uint32_t BucketIndex(uint64_t value) const;
  uint64_t BucketUpperBound(uint32_t index) const;

  uint64_t max_value_;
  uint32_t sub_buckets_;
  uint32_t sub_bucket_shift_;  // log2(sub_buckets_)
  std::vector<uint64_t> counts_;
  uint64_t saturated_ = 0;
  RunningStats stats_;
};

}  // namespace stats
}  // namespace pkgstream

#endif  // PKGSTREAM_STATS_LATENCY_HISTOGRAM_H_
