// Copyright 2026 The pkgstream Authors.
// Streaming summary statistics (Welford) used throughout the metrics layer.

#ifndef PKGSTREAM_STATS_RUNNING_STATS_H_
#define PKGSTREAM_STATS_RUNNING_STATS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace pkgstream {
namespace stats {

/// \brief Single-pass mean / variance / min / max accumulator.
///
/// Uses Welford's algorithm, numerically stable for long streams. Mergeable:
/// two accumulators built on disjoint sub-streams combine into the exact
/// accumulator of the union (used when sources keep per-source stats).
class RunningStats {
 public:
  /// Adds one observation.
  void Add(double x) {
    ++count_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  /// Merges another accumulator (parallel Welford / Chan et al.).
  void Merge(const RunningStats& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    uint64_t n = count_ + other.count_;
    double delta = other.mean_ - mean_;
    double na = static_cast<double>(count_);
    double nb = static_cast<double>(other.count_);
    mean_ += delta * nb / static_cast<double>(n);
    m2_ += other.m2_ + delta * delta * na * nb / static_cast<double>(n);
    count_ = n;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  uint64_t count() const { return count_; }
  /// Mean of observations; 0 when empty.
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Population variance; 0 when fewer than 2 observations.
  double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  /// Min/max; +inf/-inf when empty (callers should check count()).
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace stats
}  // namespace pkgstream

#endif  // PKGSTREAM_STATS_RUNNING_STATS_H_
