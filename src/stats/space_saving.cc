// Copyright 2026 The pkgstream Authors.

#include "stats/space_saving.h"

#include <algorithm>

#include "common/logging.h"

namespace pkgstream {
namespace stats {

SpaceSaving::SpaceSaving(size_t capacity) : capacity_(capacity) {
  PKGSTREAM_CHECK(capacity >= 1);
  heap_.reserve(capacity);
}

void SpaceSaving::HeapSwap(size_t a, size_t b) {
  std::swap(heap_[a], heap_[b]);
  index_[heap_[a].key] = a;
  index_[heap_[b].key] = b;
}

void SpaceSaving::SiftDown(size_t i) {
  const size_t n = heap_.size();
  while (true) {
    size_t left = 2 * i + 1;
    size_t right = left + 1;
    size_t smallest = i;
    if (left < n && heap_[left].count < heap_[smallest].count) {
      smallest = left;
    }
    if (right < n && heap_[right].count < heap_[smallest].count) {
      smallest = right;
    }
    if (smallest == i) return;
    HeapSwap(i, smallest);
    i = smallest;
  }
}

void SpaceSaving::SiftUp(size_t i) {
  while (i > 0) {
    size_t parent = (i - 1) / 2;
    if (heap_[parent].count <= heap_[i].count) return;
    HeapSwap(i, parent);
    i = parent;
  }
}

void SpaceSaving::Add(Key key, uint64_t increment) {
  processed_ += increment;
  auto it = index_.find(key);
  if (it != index_.end()) {
    heap_[it->second].count += increment;
    SiftDown(it->second);
    return;
  }
  if (heap_.size() < capacity_) {
    heap_.push_back(HeapNode{key, increment, 0});
    index_[key] = heap_.size() - 1;
    SiftUp(heap_.size() - 1);
    return;
  }
  // Evict the minimum: the newcomer inherits min_count as its error bound.
  HeapNode& root = heap_[0];
  index_.erase(root.key);
  uint64_t min_count = root.count;
  root = HeapNode{key, min_count + increment, min_count};
  index_[key] = 0;
  SiftDown(0);
}

uint64_t SpaceSaving::Estimate(Key key) const {
  auto it = index_.find(key);
  if (it != index_.end()) return heap_[it->second].count;
  return MinCount();
}

bool SpaceSaving::Contains(Key key) const { return index_.count(key) > 0; }

SpaceSavingEntry SpaceSaving::Entry(Key key) const {
  auto it = index_.find(key);
  if (it == index_.end()) return SpaceSavingEntry{key, 0, 0};
  const HeapNode& n = heap_[it->second];
  return SpaceSavingEntry{n.key, n.count, n.error};
}

uint64_t SpaceSaving::MinCount() const {
  if (heap_.size() < capacity_) return 0;
  return heap_.empty() ? 0 : heap_[0].count;
}

std::vector<SpaceSavingEntry> SpaceSaving::TopK(size_t k) const {
  std::vector<SpaceSavingEntry> items;
  items.reserve(heap_.size());
  for (const auto& n : heap_) {
    items.push_back(SpaceSavingEntry{n.key, n.count, n.error});
  }
  std::sort(items.begin(), items.end(),
            [](const SpaceSavingEntry& a, const SpaceSavingEntry& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.key < b.key;
            });
  if (k > 0 && k < items.size()) items.resize(k);
  return items;
}

void SpaceSaving::Merge(const SpaceSaving& other) {
  // Combine (Berinde et al.): estimates add, errors add. A key tracked in
  // only one summary may still have occurred up to MinCount() times in the
  // other's stream (that is exactly what an absent key's Estimate() says),
  // so the absent summary contributes its MinCount() to both the count and
  // the error — the upper bound survives the merge, and the contribution
  // degenerates to 0 while the absent summary has spare capacity.
  const uint64_t this_floor = MinCount();
  const uint64_t other_floor = other.MinCount();
  std::unordered_map<Key, SpaceSavingEntry> combined;
  combined.reserve(heap_.size() + other.heap_.size());
  for (const auto& n : heap_) {
    combined[n.key] =
        SpaceSavingEntry{n.key, n.count + other_floor, n.error + other_floor};
  }
  for (const auto& n : other.heap_) {
    auto [it, inserted] = combined.emplace(
        n.key,
        SpaceSavingEntry{n.key, n.count + this_floor, n.error + this_floor});
    if (!inserted) {
      // Tracked in both: undo the one-sided floor, add the real counter.
      it->second.count += n.count - other_floor;
      it->second.error += n.error - other_floor;
    }
  }
  // Keep the heaviest `capacity_` entries; the evicted mass is bounded by
  // the cutoff count, which becomes the new floor (standard truncation).
  std::vector<SpaceSavingEntry> all;
  all.reserve(combined.size());
  for (auto& [_, e] : combined) all.push_back(e);
  std::sort(all.begin(), all.end(),
            [](const SpaceSavingEntry& a, const SpaceSavingEntry& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.key < b.key;
            });
  if (all.size() > capacity_) all.resize(capacity_);

  heap_.clear();
  index_.clear();
  processed_ += other.processed_;
  for (const auto& e : all) {
    heap_.push_back(HeapNode{e.key, e.count, e.error});
    index_[e.key] = heap_.size() - 1;
    SiftUp(heap_.size() - 1);
  }
}

}  // namespace stats
}  // namespace pkgstream
