// Copyright 2026 The pkgstream Authors.
// SPACESAVING (Metwally, Agrawal, El Abbadi, ICDT 2005): approximate heavy
// hitters in constant space, with the mergeable-summary extension of
// Berinde et al. (TODS 2010) that Section VI-C builds on.
//
// Guarantees: with capacity c, every key's estimate satisfies
//   true_count <= Estimate(key) <= true_count + min_count
// and any key with true count > m/c is present in the summary. Merging two
// summaries adds their error terms — which is exactly the paper's argument
// for PKG: each key lives in at most 2 summaries, so the merged error has 2
// terms instead of W (shuffle grouping).

#ifndef PKGSTREAM_STATS_SPACE_SAVING_H_
#define PKGSTREAM_STATS_SPACE_SAVING_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.h"

namespace pkgstream {
namespace stats {

/// \brief One tracked item: estimated count and maximum overestimation.
struct SpaceSavingEntry {
  Key key = 0;
  uint64_t count = 0;  ///< estimated count (upper bound on the true count)
  uint64_t error = 0;  ///< count - error is a lower bound on the true count
};

/// \brief The SPACESAVING sketch with O(1) amortized updates.
///
/// Internally a min-heap on estimated counts with an index map for O(log c)
/// increment and O(log c) eviction.
class SpaceSaving {
 public:
  /// `capacity` is the number of tracked counters (the paper's c = O(1/eps)).
  explicit SpaceSaving(size_t capacity);

  /// Processes `increment` occurrences of `key`.
  void Add(Key key, uint64_t increment = 1);

  /// Estimated count of `key`: its counter when tracked, otherwise the
  /// summary's minimum count (the standard upper bound).
  uint64_t Estimate(Key key) const;

  /// True when the key currently owns a counter.
  bool Contains(Key key) const;

  /// The entry for a tracked key; count == 0 sentinel when untracked.
  SpaceSavingEntry Entry(Key key) const;

  /// Smallest tracked count (0 while the summary is not full).
  uint64_t MinCount() const;

  /// Items sorted by decreasing estimated count (ties by key), top k only
  /// when k > 0. A key is a *guaranteed* heavy hitter when
  /// count - error >= the (k+1)-th count; callers can check via `error`.
  std::vector<SpaceSavingEntry> TopK(size_t k = 0) const;

  /// Total stream length processed (sum of increments).
  uint64_t processed() const { return processed_; }

  /// Number of live counters (<= capacity).
  size_t size() const { return heap_.size(); }
  size_t capacity() const { return capacity_; }

  /// Merges `other` into this summary (Berinde et al.): per-key estimates
  /// and errors add; the combined summary is then re-truncated to this
  /// summary's capacity, folding truncated mass into the error floor.
  void Merge(const SpaceSaving& other);

 private:
  struct HeapNode {
    Key key;
    uint64_t count;
    uint64_t error;
  };

  void SiftDown(size_t i);
  void SiftUp(size_t i);
  void HeapSwap(size_t a, size_t b);

  size_t capacity_;
  std::vector<HeapNode> heap_;            // min-heap on count
  std::unordered_map<Key, size_t> index_; // key -> heap position
  uint64_t processed_ = 0;
};

}  // namespace stats
}  // namespace pkgstream

#endif  // PKGSTREAM_STATS_SPACE_SAVING_H_
