// Copyright 2026 The pkgstream Authors.

#include "workload/alias_sampler.h"

#include "common/logging.h"

namespace pkgstream {
namespace workload {

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  PKGSTREAM_CHECK(!weights.empty()) << "AliasSampler needs >= 1 weight";
  const size_t k = weights.size();
  double total = 0.0;
  for (double w : weights) {
    PKGSTREAM_CHECK(w >= 0.0) << "negative weight";
    total += w;
  }
  PKGSTREAM_CHECK(total > 0.0) << "all weights are zero";

  norm_.resize(k);
  for (size_t i = 0; i < k; ++i) norm_[i] = weights[i] / total;

  prob_.assign(k, 0.0);
  alias_.assign(k, 0);

  // Vose's algorithm with explicit worklists. Scaled probabilities: mean 1.
  std::vector<double> scaled(k);
  for (size_t i = 0; i < k; ++i) scaled[i] = norm_[i] * static_cast<double>(k);

  std::vector<uint32_t> small;
  std::vector<uint32_t> large;
  small.reserve(k);
  large.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }

  while (!small.empty() && !large.empty()) {
    uint32_t s = small.back();
    small.pop_back();
    uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Numerical leftovers: both lists should hold cells with scaled ~= 1.
  for (uint32_t i : large) prob_[i] = 1.0;
  for (uint32_t i : small) prob_[i] = 1.0;
}

}  // namespace workload
}  // namespace pkgstream
