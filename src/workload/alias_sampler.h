// Copyright 2026 The pkgstream Authors.
// Walker/Vose alias method: O(K) construction, O(1) sampling from an
// arbitrary discrete distribution. This is the engine under every skewed
// workload generator; at the paper's scales (millions of keys, billions of
// messages) inversion sampling would dominate experiment runtime.

#ifndef PKGSTREAM_WORKLOAD_ALIAS_SAMPLER_H_
#define PKGSTREAM_WORKLOAD_ALIAS_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "common/random.h"

namespace pkgstream {
namespace workload {

/// \brief Samples indices 0..K-1 proportionally to a weight vector.
class AliasSampler {
 public:
  /// Builds the alias table from non-negative weights (not necessarily
  /// normalized). At least one weight must be positive.
  explicit AliasSampler(const std::vector<double>& weights);

  /// Draws one index, consuming one uniform 64-bit draw plus one double.
  uint32_t Sample(Rng* rng) const {
    uint32_t i = static_cast<uint32_t>(rng->UniformInt(prob_.size()));
    return rng->UniformDouble() < prob_[i] ? i : alias_[i];
  }

  /// Number of categories K.
  size_t size() const { return prob_.size(); }

  /// Normalized probability of index i (for tests and analytics).
  double Probability(uint32_t i) const { return norm_[i]; }

 private:
  std::vector<double> prob_;    // acceptance probability per cell
  std::vector<uint32_t> alias_; // alias index per cell
  std::vector<double> norm_;    // normalized input distribution
};

}  // namespace workload
}  // namespace pkgstream

#endif  // PKGSTREAM_WORKLOAD_ALIAS_SAMPLER_H_
