// Copyright 2026 The pkgstream Authors.

#include "workload/arrival_schedule.h"

#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace pkgstream {
namespace workload {

namespace {

std::string FormatRate(double rate_per_sec) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", rate_per_sec);
  return buf;
}

}  // namespace

ConstantRateSchedule::ConstantRateSchedule(double rate_per_sec)
    : rate_per_sec_(rate_per_sec) {
  PKGSTREAM_CHECK(rate_per_sec > 0);
}

uint64_t ConstantRateSchedule::NextMicros() {
  const uint64_t us = static_cast<uint64_t>(
      std::floor(static_cast<double>(index_) * 1e6 / rate_per_sec_));
  ++index_;
  return us;
}

void ConstantRateSchedule::NextBatchMicros(uint64_t* out, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<uint64_t>(
        std::floor(static_cast<double>(index_ + i) * 1e6 / rate_per_sec_));
  }
  index_ += n;
}

std::string ConstantRateSchedule::Name() const {
  return "constant(rate=" + FormatRate(rate_per_sec_) + "/s)";
}

PoissonSchedule::PoissonSchedule(double rate_per_sec, uint64_t seed)
    : rate_per_sec_(rate_per_sec), rng_(seed) {
  PKGSTREAM_CHECK(rate_per_sec > 0);
}

uint64_t PoissonSchedule::NextMicros() {
  const uint64_t us = static_cast<uint64_t>(std::floor(next_us_));
  next_us_ += rng_.Exponential(rate_per_sec_ / 1e6);
  return us;
}

std::string PoissonSchedule::Name() const {
  return "poisson(rate=" + FormatRate(rate_per_sec_) + "/s)";
}

OnOffSchedule::OnOffSchedule(double rate_on_per_sec, double rate_off_per_sec,
                             uint64_t on_micros, uint64_t off_micros,
                             uint64_t seed)
    : rate_on_per_sec_(rate_on_per_sec),
      rate_off_per_sec_(rate_off_per_sec),
      on_micros_(on_micros),
      off_micros_(off_micros),
      rng_(seed) {
  PKGSTREAM_CHECK(rate_on_per_sec > 0);
  PKGSTREAM_CHECK(rate_off_per_sec >= 0);
  PKGSTREAM_CHECK(on_micros > 0 && off_micros > 0);
}

void OnOffSchedule::WindowAt(double t_us, double* rate_per_us,
                             double* window_end) const {
  const double period =
      static_cast<double>(on_micros_) + static_cast<double>(off_micros_);
  const double cycles = std::floor(t_us / period);
  const double phase = t_us - cycles * period;
  if (phase < static_cast<double>(on_micros_)) {
    *rate_per_us = rate_on_per_sec_ / 1e6;
    *window_end = cycles * period + static_cast<double>(on_micros_);
  } else {
    *rate_per_us = rate_off_per_sec_ / 1e6;
    *window_end = (cycles + 1.0) * period;
  }
}

uint64_t OnOffSchedule::NextMicros() {
  // Inversion through the piecewise-constant rate profile: spend a
  // unit-rate exponential deadline walking forward; a window at local rate
  // r consumes r * dt of it per microsecond (an OFF window at rate 0
  // consumes nothing and is skipped whole).
  double remaining = rng_.Exponential(1.0);
  for (;;) {
    double rate_per_us, window_end;
    WindowAt(t_us_, &rate_per_us, &window_end);
    if (rate_per_us > 0) {
      const double dt = remaining / rate_per_us;
      if (t_us_ + dt < window_end) {
        t_us_ += dt;
        return static_cast<uint64_t>(std::floor(t_us_));
      }
      remaining -= (window_end - t_us_) * rate_per_us;
    }
    t_us_ = window_end;
  }
}

std::string OnOffSchedule::Name() const {
  return "onoff(on=" + FormatRate(rate_on_per_sec_) + "/s x " +
         std::to_string(on_micros_) + "us, off=" +
         FormatRate(rate_off_per_sec_) + "/s x " +
         std::to_string(off_micros_) + "us)";
}

}  // namespace workload
}  // namespace pkgstream
