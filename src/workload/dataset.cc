// Copyright 2026 The pkgstream Authors.

#include "workload/dataset.h"

#include <algorithm>
#include <cmath>

#include "common/bits.h"
#include "common/hash.h"
#include "common/logging.h"
#include "stats/frequency.h"
#include "workload/drift.h"
#include "workload/lognormal.h"
#include "workload/zipf.h"

namespace pkgstream {
namespace workload {

namespace {

// Table I, verbatim. p1 converted from percent to fraction.
const std::vector<DatasetSpec>& Specs() {
  static const std::vector<DatasetSpec> kSpecs = {
      {DatasetId::kWP, "WP", "Wikipedia page visits (Jan 2008 log)",
       DatasetKind::kFittedZipf, 22000000, 2900000, 0.0932, 0, 0, false, 24.0},
      {DatasetId::kTW, "TW", "Twitter words (Jul 2012 crawl)",
       DatasetKind::kFittedZipf, 1200000000, 31000000, 0.0267, 0, 0, false,
       24.0},
      {DatasetId::kCT, "CT", "Twitter cashtags (Nov 2013, drifting skew)",
       DatasetKind::kFittedZipf, 690000, 2900, 0.0329, 0, 0, true, 600.0},
      {DatasetId::kLN1, "LN1", "Synthetic log-normal (Orkut fit 1)",
       DatasetKind::kLogNormal, 10000000, 16000, 0.1471, 1.789, 2.366, false,
       24.0},
      {DatasetId::kLN2, "LN2", "Synthetic log-normal (Orkut fit 2)",
       DatasetKind::kLogNormal, 10000000, 1100, 0.0701, 2.245, 1.133, false,
       24.0},
      {DatasetId::kLJ, "LJ", "LiveJournal directed graph edges",
       DatasetKind::kRmatGraph, 69000000, 4900000, 0.0029, 0, 0, false, 24.0},
      {DatasetId::kSL1, "SL1", "Slashdot0811 directed graph edges",
       DatasetKind::kRmatGraph, 905000, 77000, 0.0328, 0, 0, false, 24.0},
      {DatasetId::kSL2, "SL2", "Slashdot0902 directed graph edges",
       DatasetKind::kRmatGraph, 948000, 82000, 0.0311, 0, 0, false, 24.0},
  };
  return kSpecs;
}

/// KeyStream over destination vertices of an R-MAT edge stream.
class RmatDstKeyStream final : public KeyStream {
 public:
  RmatDstKeyStream(RmatOptions options, uint64_t seed)
      : stream_(options, seed) {}

  Key Next() override { return stream_.Next().dst; }
  uint64_t KeySpace() const override { return stream_.NumVertices(); }
  std::string Name() const override { return stream_.Name() + ".dst"; }

 private:
  RmatEdgeStream stream_;
};

}  // namespace

const std::vector<DatasetSpec>& AllDatasets() { return Specs(); }

const DatasetSpec& GetDataset(DatasetId id) {
  for (const auto& spec : Specs()) {
    if (spec.id == id) return spec;
  }
  PKGSTREAM_LOG(Fatal) << "unknown dataset id";
  return Specs().front();  // unreachable
}

Result<DatasetSpec> FindDataset(const std::string& symbol) {
  for (const auto& spec : Specs()) {
    if (symbol == spec.symbol) return spec;
  }
  return Status::NotFound("no dataset named " + symbol);
}

uint64_t ScaledMessages(const DatasetSpec& spec, double scale) {
  double m = static_cast<double>(spec.paper_messages) * scale;
  return std::max<uint64_t>(1000, static_cast<uint64_t>(m));
}

uint64_t ScaledKeys(const DatasetSpec& spec, double scale) {
  double k = static_cast<double>(spec.paper_keys) * scale;
  uint64_t keys = std::max<uint64_t>(100, static_cast<uint64_t>(k));
  if (spec.kind == DatasetKind::kRmatGraph) {
    return BitCeil(keys);
  }
  return keys;
}

Result<std::shared_ptr<const StaticDistribution>> MakeDistribution(
    const DatasetSpec& spec, double scale, uint64_t seed) {
  const uint64_t keys = ScaledKeys(spec, scale);
  switch (spec.kind) {
    case DatasetKind::kFittedZipf: {
      PKGSTREAM_ASSIGN_OR_RETURN(double s,
                                 FitZipfExponent(keys, spec.paper_p1));
      auto dist = std::make_shared<StaticDistribution>(
          ZipfWeights(keys, s),
          std::string(spec.symbol) + ":zipf(K=" + std::to_string(keys) + ")");
      return std::shared_ptr<const StaticDistribution>(dist);
    }
    case DatasetKind::kLogNormal: {
      // The paper reports both the generative model (log-normal mu/sigma)
      // and the resulting head probability p1. The maximum of K log-normal
      // draws has enormous variance, so at reduced K a raw draw rarely
      // reproduces the published p1 — and Theorems 4.1/4.2 make p1 the
      // quantity that governs balance. We therefore pin the head: the
      // largest weight is rescaled so p1 matches the paper, keeping the
      // log-normal body and tail untouched (see docs/DESIGN.md §3).
      std::vector<double> weights = LogNormalWeights(
          keys, spec.lognormal_mu, spec.lognormal_sigma,
          HashCombine(seed, 0x1090));
      auto max_it = std::max_element(weights.begin(), weights.end());
      double rest = 0.0;
      for (double w : weights) rest += w;
      rest -= *max_it;
      *max_it = spec.paper_p1 / (1.0 - spec.paper_p1) * rest;
      auto dist = std::make_shared<StaticDistribution>(
          std::move(weights),
          std::string(spec.symbol) + ":lognormal(K=" + std::to_string(keys) +
              ")");
      return std::shared_ptr<const StaticDistribution>(dist);
    }
    case DatasetKind::kRmatGraph:
      return Status::InvalidArgument(
          "graph datasets have no static key distribution; use "
          "MakeEdgeStream or MakeKeyStream");
  }
  return Status::Internal("unreachable");
}

namespace {

/// R-MAT parameters fitted to a graph preset: the destination-side head
/// probability of an R-MAT graph is ~(a+c)^scale (the probability that
/// every recursion level keeps the dst bit at 0), so we solve a+c from the
/// paper's published p1 for the in-degree key space and keep canonical
/// 3:1 asymmetry within each half.
RmatOptions FittedRmatOptions(const DatasetSpec& spec, double scale) {
  RmatOptions opt;
  opt.scale =
      static_cast<uint32_t>(CountrZero(ScaledKeys(spec, scale)));
  opt.edges = ScaledMessages(spec, scale);
  double ac = std::pow(spec.paper_p1, 1.0 / opt.scale);
  opt.a = 0.75 * ac;
  opt.c = 0.25 * ac;
  opt.b = 0.75 * (1.0 - ac);
  opt.d = 0.25 * (1.0 - ac);
  return opt;
}

}  // namespace

Result<KeyStreamPtr> MakeKeyStream(const DatasetSpec& spec, double scale,
                                   uint64_t seed) {
  if (spec.kind == DatasetKind::kRmatGraph) {
    return KeyStreamPtr(std::make_unique<RmatDstKeyStream>(
        FittedRmatOptions(spec, scale), seed));
  }
  PKGSTREAM_ASSIGN_OR_RETURN(auto dist, MakeDistribution(spec, scale, seed));
  if (spec.drifting) {
    DriftOptions drift;
    // One drift per notional "week": CT spans ~600 hours ≈ 3.5 weeks, so a
    // handful of drift events across the run, matching Fig 3's spikes.
    drift.period =
        std::max<uint64_t>(1, ScaledMessages(spec, scale) / 6);
    drift.rotate_top = 16;
    // Pin the single most popular identity so the whole-stream p1 matches
    // Table I; the rest of the hot set churns week to week.
    drift.keep_top = 1;
    return KeyStreamPtr(std::make_unique<DriftingKeyStream>(
        std::move(dist), drift, HashCombine(seed, 0xD81F)));
  }
  return KeyStreamPtr(std::make_unique<IidKeyStream>(
      std::move(dist), HashCombine(seed, 0x5EED)));
}

Result<std::unique_ptr<RmatEdgeStream>> MakeEdgeStream(const DatasetSpec& spec,
                                                       double scale,
                                                       uint64_t seed) {
  if (spec.kind != DatasetKind::kRmatGraph) {
    return Status::InvalidArgument(std::string(spec.symbol) +
                                   " is not a graph dataset");
  }
  return std::make_unique<RmatEdgeStream>(FittedRmatOptions(spec, scale),
                                          seed);
}

DatasetStats MeasureStream(KeyStream* stream, uint64_t messages) {
  stats::FrequencyTable freq;
  for (uint64_t i = 0; i < messages; ++i) freq.Add(stream->Next());
  DatasetStats out;
  out.messages = freq.total();
  out.distinct_keys = freq.distinct();
  out.p1 = freq.HeadProbability();
  return out;
}

}  // namespace workload
}  // namespace pkgstream
