// Copyright 2026 The pkgstream Authors.
// Table I dataset presets. Each preset records the paper's published
// statistics (messages m, keys K, head probability p1) and knows how to
// build a synthetic stream matched on those statistics:
//
//   WP, TW, CT  -> fitted Zipf (exponent solved so the head probability
//                  equals the paper's p1); CT additionally drifts.
//   LN1, LN2    -> log-normal weights with the paper's (mu, sigma).
//   LJ, SL1/SL2 -> R-MAT edge streams with matching |V|/|E| shape.
//
// A scale factor in (0, 1] shrinks m and K together (m/K and p1 are
// preserved) so experiments finish on one machine; every bench prints the
// scale it used. See docs/DESIGN.md section 3 for the substitution rationale.

#ifndef PKGSTREAM_WORKLOAD_DATASET_H_
#define PKGSTREAM_WORKLOAD_DATASET_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "workload/key_stream.h"
#include "workload/rmat.h"
#include "workload/static_distribution.h"

namespace pkgstream {
namespace workload {

/// \brief Identifiers for the eight Table I datasets.
enum class DatasetId {
  kWP,   ///< Wikipedia page-visit log
  kTW,   ///< Twitter words
  kCT,   ///< Twitter cashtags (drifting skew)
  kLN1,  ///< synthetic log-normal 1
  kLN2,  ///< synthetic log-normal 2
  kLJ,   ///< LiveJournal graph edges
  kSL1,  ///< Slashdot0811 graph edges
  kSL2,  ///< Slashdot0902 graph edges
};

/// \brief How a preset synthesizes its stream.
enum class DatasetKind { kFittedZipf, kLogNormal, kRmatGraph };

/// \brief Static description of one Table I row.
struct DatasetSpec {
  DatasetId id;
  const char* symbol;       ///< "WP", "TW", ...
  const char* description;
  DatasetKind kind;
  uint64_t paper_messages;  ///< m as published
  uint64_t paper_keys;      ///< K as published
  double paper_p1;          ///< p1 as published (fraction, not %)
  double lognormal_mu = 0.0;
  double lognormal_sigma = 0.0;
  bool drifting = false;    ///< CT: popularity drifts over time
  double duration_hours = 24.0;  ///< notional span (Figure 3 x-axis)
};

/// \brief All eight presets in Table I order.
const std::vector<DatasetSpec>& AllDatasets();

/// \brief Lookup by id.
const DatasetSpec& GetDataset(DatasetId id);

/// \brief Lookup by symbol ("WP"); error when unknown.
Result<DatasetSpec> FindDataset(const std::string& symbol);

/// \brief Messages at the given scale: max(1000, m * scale).
uint64_t ScaledMessages(const DatasetSpec& spec, double scale);

/// \brief Keys at the given scale: max(100, K * scale). For graph datasets
/// this is rounded up to the next power of two (R-MAT vertex space).
uint64_t ScaledKeys(const DatasetSpec& spec, double scale);

/// \brief Builds the key distribution for a non-graph preset at scale.
/// For kFittedZipf the exponent is solved so P1() == paper_p1 (within 1e-5).
Result<std::shared_ptr<const StaticDistribution>> MakeDistribution(
    const DatasetSpec& spec, double scale, uint64_t seed);

/// \brief Builds the message key stream for a preset at scale.
///
/// For graph presets the stream yields destination-vertex keys (the worker
/// side of the Q3 projection); use MakeEdgeStream for the full edges.
Result<KeyStreamPtr> MakeKeyStream(const DatasetSpec& spec, double scale,
                                   uint64_t seed);

/// \brief Builds the edge stream for a graph preset at scale
/// (InvalidArgument for non-graph presets).
Result<std::unique_ptr<RmatEdgeStream>> MakeEdgeStream(const DatasetSpec& spec,
                                                       double scale,
                                                       uint64_t seed);

/// \brief Measured statistics of a finite stream prefix (Table I columns).
struct DatasetStats {
  uint64_t messages = 0;
  uint64_t distinct_keys = 0;
  double p1 = 0.0;
};

/// \brief Runs `messages` draws of the stream and measures the Table I
/// columns (exact counting; intended for scaled-down runs).
DatasetStats MeasureStream(KeyStream* stream, uint64_t messages);

}  // namespace workload
}  // namespace pkgstream

#endif  // PKGSTREAM_WORKLOAD_DATASET_H_
