// Copyright 2026 The pkgstream Authors.

#include "workload/drift.h"

#include <algorithm>

#include "common/logging.h"

namespace pkgstream {
namespace workload {

DriftingKeyStream::DriftingKeyStream(
    std::shared_ptr<const StaticDistribution> dist, DriftOptions options,
    uint64_t seed)
    : dist_(std::move(dist)), options_(options), rng_(seed) {
  PKGSTREAM_CHECK(options_.period >= 1);
  perm_.resize(dist_->K());
  for (uint64_t i = 0; i < perm_.size(); ++i) perm_[i] = i;
}

Key DriftingKeyStream::Next() {
  if (emitted_ > 0 && emitted_ % options_.period == 0 && perm_.size() > 1) {
    Drift();
  }
  ++emitted_;
  uint64_t rank = dist_->Sample(&rng_);
  return perm_[rank];
}

void DriftingKeyStream::Drift() {
  ++drift_events_;
  uint64_t first = std::min<uint64_t>(options_.keep_top, perm_.size());
  uint64_t last =
      std::min<uint64_t>(options_.keep_top + options_.rotate_top,
                         perm_.size());
  for (uint64_t r = first; r < last; ++r) {
    // Swap with a random rank outside the protected head so the protected
    // identities stay in place.
    if (perm_.size() <= first) return;
    uint64_t other = first + rng_.UniformInt(perm_.size() - first);
    std::swap(perm_[r], perm_[other]);
  }
}

std::string DriftingKeyStream::Name() const {
  return dist_->name() + "+drift(period=" + std::to_string(options_.period) +
         ",top=" + std::to_string(options_.rotate_top) + ")";
}

}  // namespace workload
}  // namespace pkgstream
