// Copyright 2026 The pkgstream Authors.
// Drifting workloads: the identity of the popular keys changes over time
// while the shape of the popularity distribution stays fixed. This models
// the paper's cashtag dataset (CT), where "popular cashtags change from week
// to week", used in Section V (Q3) to show PKG is robust to drift.

#ifndef PKGSTREAM_WORKLOAD_DRIFT_H_
#define PKGSTREAM_WORKLOAD_DRIFT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/random.h"
#include "workload/static_distribution.h"

namespace pkgstream {
namespace workload {

/// \brief Options for DriftingKeyStream.
struct DriftOptions {
  /// Messages between drift events (a "week" in stream time).
  uint64_t period = 100000;
  /// At each drift event, each of the ranks [keep_top, keep_top+rotate_top)
  /// is swapped with a uniformly random key, so previously cold keys become
  /// hot.
  uint64_t rotate_top = 16;
  /// Ranks [0, keep_top) keep their identity across drifts. Used by the CT
  /// preset to preserve the dataset's whole-stream head probability p1
  /// while the rest of the hot set churns.
  uint64_t keep_top = 0;
};

/// \brief KeyStream that samples ranks from a fixed StaticDistribution but
/// permutes the rank -> key-identity mapping every `period` messages.
///
/// Stationary generators never change which key is hot; this wrapper turns
/// any of them into a drifting stream while preserving m, K and p1.
class DriftingKeyStream final : public KeyStream {
 public:
  DriftingKeyStream(std::shared_ptr<const StaticDistribution> dist,
                    DriftOptions options, uint64_t seed);

  Key Next() override;
  /// Batch form: the scalar body (drift check + sample + permute) run
  /// non-virtually per key; drift events fire at exactly the same stream
  /// positions as under repeated Next().
  void NextBatch(Key* out, size_t n) override {
    for (size_t i = 0; i < n; ++i) out[i] = Next();
  }
  uint64_t KeySpace() const override { return dist_->K(); }
  std::string Name() const override;

  /// Number of drift events so far (for tests).
  uint64_t drift_events() const { return drift_events_; }

  /// Current identity of rank r (for tests).
  Key IdentityOfRank(uint64_t r) const { return perm_[r]; }

 private:
  void Drift();

  std::shared_ptr<const StaticDistribution> dist_;
  DriftOptions options_;
  Rng rng_;
  std::vector<Key> perm_;  // rank -> key identity
  uint64_t emitted_ = 0;
  uint64_t drift_events_ = 0;
};

}  // namespace workload
}  // namespace pkgstream

#endif  // PKGSTREAM_WORKLOAD_DRIFT_H_
