// Copyright 2026 The pkgstream Authors.
// KeyStream: the produce side of every experiment. A key stream yields the
// sequence k_1, k_2, ... of message keys (Section II: messages are presented
// in timestamp order; Section IV: k_i are i.i.d. draws from an underlying
// distribution D — except for the drifting and graph workloads, which this
// interface also covers).

#ifndef PKGSTREAM_WORKLOAD_KEY_STREAM_H_
#define PKGSTREAM_WORKLOAD_KEY_STREAM_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "common/types.h"

namespace pkgstream {
namespace workload {

/// \brief A (possibly infinite) stream of message keys.
///
/// Implementations are deterministic given their construction seed; calling
/// Next() n times always yields the same sequence. Streams are single-pass;
/// create a fresh instance (same seed) to replay.
class KeyStream {
 public:
  virtual ~KeyStream() = default;

  /// Returns the next message key.
  virtual Key Next() = 0;

  /// Fills `out[0..n)` with the next n keys — exactly the sequence n
  /// Next() calls would yield, and the stream ends up in the identical
  /// state, so batch and scalar consumption are freely interchangeable
  /// mid-stream (tests/workload_test.cc pins the replay equivalence).
  /// Overrides exist where the per-key virtual dispatch is measurable
  /// (i.i.d. sampling, trace replay); the base implementation is the
  /// scalar loop.
  virtual void NextBatch(Key* out, size_t n) {
    for (size_t i = 0; i < n; ++i) out[i] = Next();
  }

  /// Upper bound on the number of distinct keys this stream can emit
  /// (the paper's K). Used for sizing routing tables in baselines.
  virtual uint64_t KeySpace() const = 0;

  /// Short human-readable name, e.g. "zipf(s=1.21,K=2.9M)".
  virtual std::string Name() const = 0;
};

using KeyStreamPtr = std::unique_ptr<KeyStream>;

}  // namespace workload
}  // namespace pkgstream

#endif  // PKGSTREAM_WORKLOAD_KEY_STREAM_H_
