// Copyright 2026 The pkgstream Authors.

#include "workload/lognormal.h"

#include "common/logging.h"
#include "common/random.h"

namespace pkgstream {
namespace workload {

std::vector<double> LogNormalWeights(uint64_t num_keys, double mu,
                                     double sigma, uint64_t seed) {
  PKGSTREAM_CHECK(num_keys >= 1);
  PKGSTREAM_CHECK(sigma >= 0.0);
  Rng rng(seed);
  std::vector<double> w(num_keys);
  for (uint64_t i = 0; i < num_keys; ++i) {
    w[i] = rng.LogNormal(mu, sigma);
  }
  return w;
}

}  // namespace workload
}  // namespace pkgstream
