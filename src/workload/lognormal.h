// Copyright 2026 The pkgstream Authors.
// Log-normal workloads (the paper's LN1/LN2 synthetic datasets):
// key probabilities proportional to K i.i.d. LogNormal(mu, sigma) draws.
// Parameters in the paper come from a fit of Orkut social-network activity:
// LN1 (mu=1.789, sigma=2.366) and LN2 (mu=2.245, sigma=1.133).

#ifndef PKGSTREAM_WORKLOAD_LOGNORMAL_H_
#define PKGSTREAM_WORKLOAD_LOGNORMAL_H_

#include <cstdint>
#include <vector>

namespace pkgstream {
namespace workload {

/// \brief Draws `num_keys` log-normal weights; deterministic in `seed`.
std::vector<double> LogNormalWeights(uint64_t num_keys, double mu,
                                     double sigma, uint64_t seed);

}  // namespace workload
}  // namespace pkgstream

#endif  // PKGSTREAM_WORKLOAD_LOGNORMAL_H_
