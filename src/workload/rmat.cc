// Copyright 2026 The pkgstream Authors.

#include "workload/rmat.h"

#include <cmath>

#include "common/logging.h"

namespace pkgstream {
namespace workload {

RmatEdgeStream::RmatEdgeStream(RmatOptions options, uint64_t seed)
    : options_(options), rng_(seed) {
  PKGSTREAM_CHECK(options_.scale >= 1 && options_.scale <= 40);
  double sum = options_.a + options_.b + options_.c + options_.d;
  PKGSTREAM_CHECK(std::fabs(sum - 1.0) < 1e-6)
      << "R-MAT quadrant probabilities must sum to 1, got " << sum;
}

Edge RmatEdgeStream::Next() {
  uint64_t src = 0;
  uint64_t dst = 0;
  double a = options_.a;
  double b = options_.b;
  double c = options_.c;
  // d is implied: 1 - a - b - c.
  for (uint32_t level = 0; level < options_.scale; ++level) {
    // Multiplicative noise, renormalized, keeps expectation at (a,b,c,d).
    double na = a * (1.0 - options_.noise + 2.0 * options_.noise *
                     rng_.UniformDouble());
    double nb = b * (1.0 - options_.noise + 2.0 * options_.noise *
                     rng_.UniformDouble());
    double nc = c * (1.0 - options_.noise + 2.0 * options_.noise *
                     rng_.UniformDouble());
    double nd = (1.0 - a - b - c) *
                (1.0 - options_.noise + 2.0 * options_.noise *
                 rng_.UniformDouble());
    double norm = na + nb + nc + nd;
    na /= norm;
    nb /= norm;
    nc /= norm;

    double u = rng_.UniformDouble();
    src <<= 1;
    dst <<= 1;
    if (u < na) {
      // top-left: no bits set
    } else if (u < na + nb) {
      dst |= 1;
    } else if (u < na + nb + nc) {
      src |= 1;
    } else {
      src |= 1;
      dst |= 1;
    }
  }
  return Edge{src, dst};
}

std::string RmatEdgeStream::Name() const {
  return "rmat(scale=" + std::to_string(options_.scale) +
         ",a=" + std::to_string(options_.a) + ")";
}

}  // namespace workload
}  // namespace pkgstream
