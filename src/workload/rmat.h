// Copyright 2026 The pkgstream Authors.
// R-MAT graph streams: the stand-in for the paper's SNAP graph datasets
// (LiveJournal, Slashdot). Section V (Q3) streams graph edges — the source
// PE receives messages keyed by source vertex, inverts the edge, and sends
// them keyed by destination vertex — projecting the out-degree skew onto
// sources and the in-degree skew onto workers. R-MAT (Chakrabarti et al.)
// generates edges whose degree distributions follow the same power laws, so
// the projection exercises the identical code path.

#ifndef PKGSTREAM_WORKLOAD_RMAT_H_
#define PKGSTREAM_WORKLOAD_RMAT_H_

#include <cstdint>
#include <string>

#include "common/random.h"
#include "common/types.h"

namespace pkgstream {
namespace workload {

/// \brief A directed edge message (src vertex -> dst vertex).
struct Edge {
  Key src;
  Key dst;
};

/// \brief R-MAT parameters. Defaults are the canonical skewed setting.
struct RmatOptions {
  /// log2 of the number of vertices (vertex ids are in [0, 2^scale)).
  uint32_t scale = 18;
  /// Number of edges to emit.
  uint64_t edges = 1000000;
  /// Quadrant probabilities; must sum to ~1. a >> d gives heavy skew.
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  double d = 0.05;
  /// Noise added per recursion level to break the strict self-similarity
  /// (keeps degree distributions power-law but less regular).
  double noise = 0.1;
};

/// \brief Streaming R-MAT edge generator; deterministic in `seed`.
class RmatEdgeStream {
 public:
  RmatEdgeStream(RmatOptions options, uint64_t seed);

  /// Returns the next edge. Streams are infinite; callers stop after
  /// options().edges draws (or any budget they like).
  Edge Next();

  /// Number of vertices (2^scale).
  uint64_t NumVertices() const { return uint64_t{1} << options_.scale; }

  const RmatOptions& options() const { return options_; }

  std::string Name() const;

 private:
  RmatOptions options_;
  Rng rng_;
};

}  // namespace workload
}  // namespace pkgstream

#endif  // PKGSTREAM_WORKLOAD_RMAT_H_
