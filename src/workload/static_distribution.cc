// Copyright 2026 The pkgstream Authors.

#include "workload/static_distribution.h"

#include <algorithm>
#include <functional>

#include "common/logging.h"

namespace pkgstream {
namespace workload {

StaticDistribution::StaticDistribution(std::vector<double> weights,
                                       std::string name)
    : name_(std::move(name)) {
  PKGSTREAM_CHECK(!weights.empty());
  std::sort(weights.begin(), weights.end(), std::greater<double>());
  double total = 0.0;
  for (double w : weights) total += w;
  PKGSTREAM_CHECK(total > 0.0) << "distribution has zero mass";
  probs_ = std::move(weights);
  for (double& p : probs_) p /= total;
  sampler_ = std::make_unique<AliasSampler>(probs_);
}

double StaticDistribution::HeadMass(uint64_t count) const {
  count = std::min<uint64_t>(count, probs_.size());
  double mass = 0.0;
  for (uint64_t i = 0; i < count; ++i) mass += probs_[i];
  return mass;
}

}  // namespace workload
}  // namespace pkgstream
