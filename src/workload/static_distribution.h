// Copyright 2026 The pkgstream Authors.
// StaticDistribution: a fixed discrete key distribution D over [0, K)
// (Section IV's model: k_1..k_m are independent samples from D, keys ordered
// by decreasing probability p_1 >= p_2 >= ...). Wraps an alias table and
// exposes the analytics the theory section cares about (p1, head mass).

#ifndef PKGSTREAM_WORKLOAD_STATIC_DISTRIBUTION_H_
#define PKGSTREAM_WORKLOAD_STATIC_DISTRIBUTION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "workload/alias_sampler.h"
#include "workload/key_stream.h"

namespace pkgstream {
namespace workload {

/// \brief Immutable discrete distribution over keys 0..K-1, sorted so that
/// key 0 is the most probable (the paper's convention).
class StaticDistribution {
 public:
  /// Builds from arbitrary non-negative weights; weights are normalized and
  /// sorted descending, so key i is the i-th most popular.
  explicit StaticDistribution(std::vector<double> weights, std::string name);

  /// Number of keys K.
  uint64_t K() const { return probs_.size(); }

  /// Probability of rank-i key (p_{i+1} in paper notation).
  double Probability(uint64_t i) const { return probs_[i]; }

  /// Head probability p1.
  double P1() const { return probs_.empty() ? 0.0 : probs_[0]; }

  /// Total probability mass of the top `count` keys.
  double HeadMass(uint64_t count) const;

  /// Draws one key (a rank in [0, K)).
  Key Sample(Rng* rng) const {
    return sampler_->Sample(rng);
  }

  const std::string& name() const { return name_; }

 private:
  std::vector<double> probs_;  // descending
  std::unique_ptr<AliasSampler> sampler_;
  std::string name_;
};

/// \brief KeyStream adapter: i.i.d. samples from a StaticDistribution.
class IidKeyStream final : public KeyStream {
 public:
  IidKeyStream(std::shared_ptr<const StaticDistribution> dist, uint64_t seed)
      : dist_(std::move(dist)), rng_(seed) {}

  Key Next() override { return dist_->Sample(&rng_); }
  /// Batch draws devirtualize the sampler: one distribution pointer load
  /// for the whole batch, the alias-table walk inlined per key.
  void NextBatch(Key* out, size_t n) override {
    const StaticDistribution& dist = *dist_;
    for (size_t i = 0; i < n; ++i) out[i] = dist.Sample(&rng_);
  }
  uint64_t KeySpace() const override { return dist_->K(); }
  std::string Name() const override { return dist_->name(); }

  const StaticDistribution& distribution() const { return *dist_; }

 private:
  std::shared_ptr<const StaticDistribution> dist_;
  Rng rng_;
};

}  // namespace workload
}  // namespace pkgstream

#endif  // PKGSTREAM_WORKLOAD_STATIC_DISTRIBUTION_H_
