// Copyright 2026 The pkgstream Authors.

#include "workload/trace.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace pkgstream {
namespace workload {

namespace {
constexpr char kMagic[8] = {'P', 'K', 'G', 'T', 'R', 'C', '0', '1'};
}  // namespace

Status WriteTrace(const std::string& path, KeyStream* stream, uint64_t count) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return Status::IOError("cannot open for writing: " + path);
  f.write(kMagic, sizeof(kMagic));
  f.write(reinterpret_cast<const char*>(&count), sizeof(count));
  // Buffered in chunks to keep memory flat for huge traces.
  constexpr size_t kChunk = 1 << 16;
  std::vector<Key> buf;
  buf.reserve(kChunk);
  uint64_t remaining = count;
  while (remaining > 0) {
    buf.clear();
    size_t n = static_cast<size_t>(std::min<uint64_t>(kChunk, remaining));
    for (size_t i = 0; i < n; ++i) buf.push_back(stream->Next());
    f.write(reinterpret_cast<const char*>(buf.data()),
            static_cast<std::streamsize>(n * sizeof(Key)));
    remaining -= n;
  }
  if (!f) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Status WriteTrace(const std::string& path, const std::vector<Key>& keys) {
  VectorKeyStream vs(keys);
  return WriteTrace(path, &vs, keys.size());
}

Result<std::vector<Key>> ReadTrace(const std::string& path) {
  PKGSTREAM_ASSIGN_OR_RETURN(auto stream, TraceKeyStream::Open(path));
  std::vector<Key> keys;
  keys.reserve(stream->count());
  for (uint64_t i = 0, n = stream->count(); i < n; ++i) {
    keys.push_back(stream->Next());
  }
  return keys;
}

VectorKeyStream::VectorKeyStream(std::vector<Key> keys, std::string name)
    : keys_(std::move(keys)), name_(std::move(name)) {
  PKGSTREAM_CHECK(!keys_.empty()) << "empty key vector";
  Key max_key = *std::max_element(keys_.begin(), keys_.end());
  key_space_ = max_key + 1;
}

Key VectorKeyStream::Next() {
  Key k = keys_[position_ % keys_.size()];
  ++position_;
  return k;
}

void VectorKeyStream::NextBatch(Key* out, size_t n) {
  const size_t size = keys_.size();
  size_t done = 0;
  while (done < n) {
    const size_t offset = static_cast<size_t>(position_ % size);
    const size_t span = std::min(n - done, size - offset);
    std::memcpy(out + done, keys_.data() + offset, span * sizeof(Key));
    position_ += span;
    done += span;
  }
}

Result<std::unique_ptr<TraceKeyStream>> TraceKeyStream::Open(
    const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return Status::IOError("cannot open: " + path);
  char magic[sizeof(kMagic)];
  f.read(magic, sizeof(magic));
  if (!f || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::IOError("bad trace magic in " + path);
  }
  uint64_t count = 0;
  f.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!f) return Status::IOError("truncated trace header in " + path);
  return std::unique_ptr<TraceKeyStream>(
      new TraceKeyStream(std::move(f), path, count));
}

TraceKeyStream::TraceKeyStream(std::ifstream file, std::string path,
                               uint64_t count)
    : file_(std::move(file)), path_(std::move(path)), count_(count) {}

Key TraceKeyStream::Next() {
  PKGSTREAM_CHECK(read_ < count_) << "read past end of trace " << path_;
  Key k = 0;
  file_.read(reinterpret_cast<char*>(&k), sizeof(k));
  PKGSTREAM_CHECK(static_cast<bool>(file_)) << "trace read failed: " << path_;
  ++read_;
  return k;
}

void TraceKeyStream::NextBatch(Key* out, size_t n) {
  PKGSTREAM_CHECK(n <= count_ - read_)
      << "read past end of trace " << path_;
  file_.read(reinterpret_cast<char*>(out),
             static_cast<std::streamsize>(n * sizeof(Key)));
  PKGSTREAM_CHECK(static_cast<bool>(file_)) << "trace read failed: " << path_;
  read_ += n;
}

}  // namespace workload
}  // namespace pkgstream
