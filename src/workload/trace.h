// Copyright 2026 The pkgstream Authors.
// Binary key-trace files: materialize a generated stream once and replay it
// across techniques so every strategy sees the *identical* message sequence
// (the paper compares techniques on the same dataset, not on fresh samples).
//
// Format: 8-byte magic "PKGTRC01", uint64 count, then `count` little-endian
// uint64 keys.

#ifndef PKGSTREAM_WORKLOAD_TRACE_H_
#define PKGSTREAM_WORKLOAD_TRACE_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "workload/key_stream.h"

namespace pkgstream {
namespace workload {

/// \brief Writes `count` keys from `stream` to a trace file at `path`.
Status WriteTrace(const std::string& path, KeyStream* stream, uint64_t count);

/// \brief Writes an explicit key vector to a trace file.
Status WriteTrace(const std::string& path, const std::vector<Key>& keys);

/// \brief Reads an entire trace into memory.
Result<std::vector<Key>> ReadTrace(const std::string& path);

/// \brief KeyStream over an in-memory key vector (wraps around at the end so
/// it can also serve as an infinite replay source; ExhaustedOnce() tells you
/// whether a full pass completed).
class VectorKeyStream final : public KeyStream {
 public:
  explicit VectorKeyStream(std::vector<Key> keys, std::string name = "vector");

  Key Next() override;
  /// Batch form: wrap-aware memcpy spans instead of per-key modulo.
  void NextBatch(Key* out, size_t n) override;
  uint64_t KeySpace() const override { return key_space_; }
  std::string Name() const override { return name_; }

  /// True once Next() has been called at least keys().size() times.
  bool ExhaustedOnce() const { return position_ >= keys_.size(); }
  const std::vector<Key>& keys() const { return keys_; }

 private:
  std::vector<Key> keys_;
  uint64_t key_space_;
  uint64_t position_ = 0;
  std::string name_;
};

/// \brief Streaming trace reader (does not load the file into memory).
/// Returns an error from Make() for missing/corrupt files; Next() CHECKs
/// against reading past the end.
class TraceKeyStream final : public KeyStream {
 public:
  static Result<std::unique_ptr<TraceKeyStream>> Open(const std::string& path);

  Key Next() override;
  /// Batch form: one file_.read for the whole span (CHECKs like Next that
  /// the trace holds at least n more keys).
  void NextBatch(Key* out, size_t n) override;
  uint64_t KeySpace() const override { return count_; }
  std::string Name() const override { return "trace:" + path_; }

  uint64_t count() const { return count_; }
  uint64_t remaining() const { return count_ - read_; }

 private:
  TraceKeyStream(std::ifstream file, std::string path, uint64_t count);

  std::ifstream file_;
  std::string path_;
  uint64_t count_;
  uint64_t read_ = 0;
};

}  // namespace workload
}  // namespace pkgstream

#endif  // PKGSTREAM_WORKLOAD_TRACE_H_
