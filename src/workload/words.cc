// Copyright 2026 The pkgstream Authors.

#include "workload/words.h"

#include <array>
#include <cstdint>

namespace pkgstream {
namespace workload {

namespace {

// The 64 most common English words, assigned to ranks 0..63.
constexpr std::array<const char*, 64> kStopWords = {
    "the",  "of",    "and",   "a",     "to",    "in",   "is",    "you",
    "that", "it",    "he",    "was",   "for",   "on",   "are",   "as",
    "with", "his",   "they",  "i",     "at",    "be",   "this",  "have",
    "from", "or",    "one",   "had",   "by",    "word", "but",   "not",
    "what", "all",   "were",  "we",    "when",  "your", "can",   "said",
    "there","use",   "an",    "each",  "which", "she",  "do",    "how",
    "their","if",    "will",  "up",    "other", "about","out",   "many",
    "then", "them",  "these", "so",    "some",  "her",  "would", "make"};

constexpr const char* kConsonants = "bcdfgklmnprstvz";  // 15
constexpr const char* kVowels = "aeiou";                // 5

// Generated words are "cvcv" + decimal suffix; the syllable part encodes
// (key - 64) % 5625 and the suffix encodes (key - 64) / 5625, so the
// mapping is bijective. 15*5*15*5 = 5625 syllable combinations.
constexpr uint64_t kSyllableSpace = 15ULL * 5 * 15 * 5;

}  // namespace

std::string KeyToWord(Key key) {
  if (key < kStopWords.size()) return kStopWords[key];
  uint64_t v = key - kStopWords.size();
  uint64_t syl = v % kSyllableSpace;
  uint64_t suffix = v / kSyllableSpace;
  std::string w;
  w += kConsonants[syl % 15];
  syl /= 15;
  w += kVowels[syl % 5];
  syl /= 5;
  w += kConsonants[syl % 15];
  syl /= 15;
  w += kVowels[syl % 5];
  w += std::to_string(suffix);
  return w;
}

bool WordToKey(const std::string& word, Key* key) {
  for (uint64_t i = 0; i < kStopWords.size(); ++i) {
    if (word == kStopWords[i]) {
      *key = i;
      return true;
    }
  }
  if (word.size() < 5) return false;
  auto idx_of = [](const char* alphabet, char c) -> int {
    for (int i = 0; alphabet[i]; ++i) {
      if (alphabet[i] == c) return i;
    }
    return -1;
  };
  int c0 = idx_of(kConsonants, word[0]);
  int v0 = idx_of(kVowels, word[1]);
  int c1 = idx_of(kConsonants, word[2]);
  int v1 = idx_of(kVowels, word[3]);
  if (c0 < 0 || v0 < 0 || c1 < 0 || v1 < 0) return false;
  uint64_t suffix = 0;
  for (size_t i = 4; i < word.size(); ++i) {
    if (word[i] < '0' || word[i] > '9') return false;
    suffix = suffix * 10 + static_cast<uint64_t>(word[i] - '0');
  }
  uint64_t syl = static_cast<uint64_t>(c0) +
                 15ULL * (static_cast<uint64_t>(v0) +
                          5ULL * (static_cast<uint64_t>(c1) +
                                  15ULL * static_cast<uint64_t>(v1)));
  *key = kStopWords.size() + syl + suffix * kSyllableSpace;
  return true;
}

}  // namespace workload
}  // namespace pkgstream
