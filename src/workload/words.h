// Copyright 2026 The pkgstream Authors.
// Synthetic vocabulary: a deterministic bijection between key ids and
// pronounceable word strings. Used by the word-count examples so their
// output looks like the paper's motivating application (streaming top-k
// word count over tweets) instead of raw integers.

#ifndef PKGSTREAM_WORKLOAD_WORDS_H_
#define PKGSTREAM_WORKLOAD_WORDS_H_

#include <string>

#include "common/types.h"

namespace pkgstream {
namespace workload {

/// \brief Maps a key id to a unique lowercase word.
///
/// The 64 most frequent ranks get real English stop-words (so example output
/// reads naturally: "the", "of", ...); the rest get generated CVCV syllable
/// words ("narole42"). The mapping is a bijection: WordToKey inverts it.
std::string KeyToWord(Key key);

/// \brief Inverts KeyToWord. Returns false when `word` is not in the image.
bool WordToKey(const std::string& word, Key* key);

}  // namespace workload
}  // namespace pkgstream

#endif  // PKGSTREAM_WORKLOAD_WORDS_H_
