// Copyright 2026 The pkgstream Authors.

#include "workload/zipf.h"

#include <cmath>
#include <string>

namespace pkgstream {
namespace workload {

std::vector<double> ZipfWeights(uint64_t num_keys, double exponent) {
  std::vector<double> w(num_keys);
  for (uint64_t i = 0; i < num_keys; ++i) {
    w[i] = std::pow(static_cast<double>(i + 1), -exponent);
  }
  return w;
}

double ZipfHeadProbability(uint64_t num_keys, double exponent) {
  // p1 = 1 / H(K, s). Accumulate from the small terms up for accuracy.
  double h = 0.0;
  for (uint64_t i = num_keys; i >= 1; --i) {
    h += std::pow(static_cast<double>(i), -exponent);
  }
  return 1.0 / h;
}

Result<double> FitZipfExponent(uint64_t num_keys, double target_p1,
                               double tolerance) {
  if (num_keys < 2) {
    return Status::InvalidArgument("FitZipfExponent: need at least 2 keys");
  }
  const double uniform_p1 = 1.0 / static_cast<double>(num_keys);
  if (target_p1 <= uniform_p1 || target_p1 >= 1.0) {
    return Status::OutOfRange(
        "FitZipfExponent: target p1 must be in (1/K, 1); got " +
        std::to_string(target_p1));
  }
  double lo = 0.0;   // p1(0) = 1/K
  double hi = 1.0;
  // Grow hi until p1(hi) exceeds the target (p1 is increasing in s).
  while (ZipfHeadProbability(num_keys, hi) < target_p1) {
    hi *= 2.0;
    if (hi > 64.0) {
      return Status::Internal("FitZipfExponent: exponent search diverged");
    }
  }
  // Bisection. 60 iterations leave an interval ~1e-18 wide; we stop earlier
  // once the achieved p1 is within tolerance.
  for (int iter = 0; iter < 200; ++iter) {
    double mid = 0.5 * (lo + hi);
    double p1 = ZipfHeadProbability(num_keys, mid);
    if (std::fabs(p1 - target_p1) <= tolerance) return mid;
    if (p1 < target_p1) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace workload
}  // namespace pkgstream
