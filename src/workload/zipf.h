// Copyright 2026 The pkgstream Authors.
// Zipf workloads. Two entry points:
//
//  * ZipfWeights(K, s): the classic p_i ∝ i^{-s}.
//  * FitZipfExponent(K, p1): solves for the exponent s such that the head
//    probability equals a target p1. This is how we synthesize stand-ins for
//    the paper's real datasets (Table I reports exactly m, K and p1 for WP,
//    TW and CT; Theorems 4.1/4.2 show p1·n governs when balance is possible,
//    so matching p1 and the power-law tail preserves the phenomena the
//    evaluation measures).

#ifndef PKGSTREAM_WORKLOAD_ZIPF_H_
#define PKGSTREAM_WORKLOAD_ZIPF_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace pkgstream {
namespace workload {

/// \brief Weight vector w_i = (i+1)^{-s} for i in [0, K). s >= 0.
std::vector<double> ZipfWeights(uint64_t num_keys, double exponent);

/// \brief Finds s such that a Zipf(K, s) distribution has head probability
/// p1 = target_p1, by bisection on the monotone map s -> p1(s).
///
/// Requires 1/K < target_p1 < 1 (p1 = 1/K is the uniform limit s = 0).
/// The result satisfies |p1(s) - target_p1| <= tolerance.
Result<double> FitZipfExponent(uint64_t num_keys, double target_p1,
                               double tolerance = 1e-5);

/// \brief Head probability of Zipf(K, s): 1 / sum_{i=1..K} i^{-s}.
double ZipfHeadProbability(uint64_t num_keys, double exponent);

}  // namespace workload
}  // namespace pkgstream

#endif  // PKGSTREAM_WORKLOAD_ZIPF_H_
