// Copyright 2026 The pkgstream Authors.
// Unit tests for the Ben-Haim & Tom-Tov streaming histogram.

#include <gtest/gtest.h>

#include <cmath>

#include "apps/bht_histogram.h"
#include "common/random.h"

namespace pkgstream {
namespace apps {
namespace {

TEST(BhtHistogramTest, EmptyHistogram) {
  BhtHistogram h(8);
  EXPECT_EQ(h.TotalCount(), 0u);
  EXPECT_EQ(h.NumBins(), 0u);
  EXPECT_DOUBLE_EQ(h.Sum(123.0), 0.0);
  EXPECT_TRUE(h.Uniform(4).empty());
}

TEST(BhtHistogramTest, ExactWhenUnderBinCap) {
  BhtHistogram h(8);
  for (double v : {1.0, 2.0, 3.0}) h.Update(v);
  EXPECT_EQ(h.NumBins(), 3u);
  EXPECT_EQ(h.TotalCount(), 3u);
  EXPECT_DOUBLE_EQ(h.MinValue(), 1.0);
  EXPECT_DOUBLE_EQ(h.MaxValue(), 3.0);
}

TEST(BhtHistogramTest, DuplicateValuesShareABin) {
  BhtHistogram h(4);
  for (int i = 0; i < 10; ++i) h.Update(5.0);
  EXPECT_EQ(h.NumBins(), 1u);
  EXPECT_DOUBLE_EQ(h.BinCentroid(0), 5.0);
  EXPECT_DOUBLE_EQ(h.BinCount(0), 10.0);
}

TEST(BhtHistogramTest, ShrinkMergesClosestPair) {
  BhtHistogram h(2);
  h.Update(0.0);
  h.Update(10.0);
  h.Update(10.5);  // closest to 10.0: they merge
  ASSERT_EQ(h.NumBins(), 2u);
  EXPECT_DOUBLE_EQ(h.BinCentroid(0), 0.0);
  EXPECT_NEAR(h.BinCentroid(1), 10.25, 1e-9);
  EXPECT_DOUBLE_EQ(h.BinCount(1), 2.0);
}

TEST(BhtHistogramTest, BinsStaySorted) {
  BhtHistogram h(16);
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) h.Update(rng.Normal());
  for (size_t i = 1; i < h.NumBins(); ++i) {
    EXPECT_LT(h.BinCentroid(i - 1), h.BinCentroid(i));
  }
  EXPECT_LE(h.NumBins(), 16u);
}

TEST(BhtHistogramTest, TotalCountPreservedThroughShrink) {
  BhtHistogram h(4);
  for (int i = 0; i < 100; ++i) h.Update(static_cast<double>(i % 37));
  EXPECT_EQ(h.TotalCount(), 100u);
  double mass = 0;
  for (size_t i = 0; i < h.NumBins(); ++i) mass += h.BinCount(i);
  EXPECT_NEAR(mass, 100.0, 1e-9);
}

TEST(BhtHistogramTest, SumIsMonotone) {
  BhtHistogram h(16);
  Rng rng(9);
  for (int i = 0; i < 5000; ++i) h.Update(rng.Normal(0, 1));
  double prev = -1;
  for (double v = -4.0; v <= 4.0; v += 0.25) {
    double s = h.Sum(v);
    EXPECT_GE(s, prev - 1e-9);
    prev = s;
  }
  EXPECT_NEAR(h.Sum(100.0), 5000.0, 1e-6);
  EXPECT_NEAR(h.Sum(-100.0), 0.0, 1e-6);
}

TEST(BhtHistogramTest, SumApproximatesCdf) {
  BhtHistogram h(64);
  Rng rng(13);
  const int n = 50000;
  for (int i = 0; i < n; ++i) h.Update(rng.UniformDouble());
  // Uniform[0,1]: Sum(x) ~ n*x.
  for (double x : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    EXPECT_NEAR(h.Sum(x) / n, x, 0.03) << "x=" << x;
  }
}

TEST(BhtHistogramTest, UniformSplitsEqualizeMass) {
  BhtHistogram h(64);
  Rng rng(17);
  const int n = 30000;
  for (int i = 0; i < n; ++i) h.Update(rng.Normal());
  auto splits = h.Uniform(4);
  ASSERT_EQ(splits.size(), 3u);
  // Each split point should sit near the 25/50/75 percentiles of N(0,1).
  EXPECT_NEAR(splits[0], -0.6745, 0.1);
  EXPECT_NEAR(splits[1], 0.0, 0.1);
  EXPECT_NEAR(splits[2], 0.6745, 0.1);
}

TEST(BhtHistogramTest, MergeMatchesUnion) {
  BhtHistogram a(32);
  BhtHistogram b(32);
  BhtHistogram whole(32);
  Rng rng(21);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.Normal(5, 2);
    whole.Update(v);
    (i % 2 ? a : b).Update(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.TotalCount(), whole.TotalCount());
  for (double x : {2.0, 4.0, 5.0, 6.0, 8.0}) {
    EXPECT_NEAR(a.Sum(x) / 10000.0, whole.Sum(x) / 10000.0, 0.02) << x;
  }
}

TEST(BhtHistogramTest, MergeEmpty) {
  BhtHistogram a(8);
  BhtHistogram b(8);
  a.Update(1.0);
  a.Merge(b);  // no-op
  EXPECT_EQ(a.TotalCount(), 1u);
  b.Merge(a);
  EXPECT_EQ(b.TotalCount(), 1u);
  EXPECT_DOUBLE_EQ(b.MinValue(), 1.0);
}

TEST(BhtHistogramTest, MinMaxTracked) {
  BhtHistogram h(4);
  for (double v : {5.0, -2.0, 9.0, 3.0}) h.Update(v);
  EXPECT_DOUBLE_EQ(h.MinValue(), -2.0);
  EXPECT_DOUBLE_EQ(h.MaxValue(), 9.0);
}

TEST(BhtHistogramTest, SkewedDataStillBounded) {
  BhtHistogram h(32);
  Rng rng(23);
  for (int i = 0; i < 20000; ++i) h.Update(rng.LogNormal(0, 2));
  EXPECT_LE(h.NumBins(), 32u);
  EXPECT_EQ(h.TotalCount(), 20000u);
  // Extreme skew is BHT's documented worst case (Ben-Haim & Tom-Tov §5:
  // accuracy degrades on long-tailed inputs because centroid merging drags
  // mass toward the tail). Median of LogNormal(0,2) is 1.0: only require
  // the CDF estimate to be sane, not tight.
  double cdf_at_median = h.Sum(1.0) / 20000.0;
  EXPECT_GT(cdf_at_median, 0.05);
  EXPECT_LT(cdf_at_median, 0.95);
  // And still monotone + mass-preserving under the skew.
  EXPECT_LE(h.Sum(0.5), h.Sum(1.0));
  EXPECT_NEAR(h.Sum(1e12), 20000.0, 1e-6);
}

}  // namespace
}  // namespace apps
}  // namespace pkgstream
