// Copyright 2026 The pkgstream Authors.
// Tests for the machine-learning applications of Section VI: distributed
// naïve Bayes, the streaming parallel decision tree, and the heavy-hitter
// topology.

#include <gtest/gtest.h>

#include "apps/decision_tree.h"
#include "apps/heavy_hitters.h"
#include "apps/naive_bayes.h"
#include "common/random.h"
#include "engine/logical_runtime.h"
#include "stats/frequency.h"
#include "stats/imbalance.h"
#include "workload/static_distribution.h"
#include "workload/zipf.h"

namespace pkgstream {
namespace apps {
namespace {

// --------------------------- Naive Bayes ---------------------------------

partition::PartitionerConfig NbConfig(partition::Technique technique,
                                      uint32_t workers) {
  partition::PartitionerConfig config;
  config.technique = technique;
  config.sources = 1;
  config.workers = workers;
  config.seed = 42;
  return config;
}

/// Two classes, separable: class c makes feature f take value c+1 with
/// probability 0.9 (values are 1-based; 0 means absent).
LabeledExample MakeNbExample(Rng* rng, uint32_t num_features, uint32_t label) {
  LabeledExample ex;
  ex.label = label;
  for (uint32_t f = 0; f < num_features; ++f) {
    uint32_t v = 1 + (rng->Bernoulli(0.9) ? label : 1 - label);
    ex.feature_values.push_back(v);
  }
  return ex;
}

TEST(NaiveBayesTest, CreateValidates) {
  EXPECT_FALSE(DistributedNaiveBayes::Create(NbConfig(
      partition::Technique::kPkgLocal, 4), 0, 2).ok());
  EXPECT_FALSE(DistributedNaiveBayes::Create(NbConfig(
      partition::Technique::kPkgLocal, 4), 3, 1).ok());
  EXPECT_FALSE(DistributedNaiveBayes::Create(NbConfig(
      partition::Technique::kOffGreedy, 4), 3, 2).ok());
}

TEST(NaiveBayesTest, LearnsSeparableClasses) {
  for (auto technique :
       {partition::Technique::kPkgLocal, partition::Technique::kHashing,
        partition::Technique::kShuffle}) {
    auto nb = DistributedNaiveBayes::Create(NbConfig(technique, 4), 6, 2);
    ASSERT_TRUE(nb.ok());
    Rng rng(7);
    for (int i = 0; i < 2000; ++i) {
      (*nb)->Train(0, MakeNbExample(&rng, 6, i % 2));
    }
    int correct = 0;
    const int tests = 500;
    for (int i = 0; i < tests; ++i) {
      LabeledExample ex = MakeNbExample(&rng, 6, i % 2);
      if ((*nb)->Classify(ex.feature_values) == ex.label) ++correct;
    }
    EXPECT_GT(correct, tests * 9 / 10)
        << partition::TechniqueName(technique);
  }
}

TEST(NaiveBayesTest, PkgProbesTwoWorkersPerFeature) {
  auto nb = DistributedNaiveBayes::Create(
      NbConfig(partition::Technique::kPkgLocal, 8), 5, 2);
  ASSERT_TRUE(nb.ok());
  Rng rng(7);
  for (int i = 0; i < 100; ++i) (*nb)->Train(0, MakeNbExample(&rng, 5, i % 2));
  uint64_t probes = 0;
  LabeledExample ex = MakeNbExample(&rng, 5, 0);
  (*nb)->Classify(ex.feature_values, &probes);
  EXPECT_LE(probes, 2u * 5u);  // at most 2 per feature
  // Shuffle must broadcast: W per feature.
  auto sg = DistributedNaiveBayes::Create(
      NbConfig(partition::Technique::kShuffle, 8), 5, 2);
  ASSERT_TRUE(sg.ok());
  for (int i = 0; i < 100; ++i) (*sg)->Train(0, MakeNbExample(&rng, 5, i % 2));
  uint64_t sg_probes = 0;
  (*sg)->Classify(ex.feature_values, &sg_probes);
  EXPECT_EQ(sg_probes, 8u * 5u);
  EXPECT_LT(probes, sg_probes);
}

TEST(NaiveBayesTest, KgProbesOneWorkerPerFeature) {
  auto nb = DistributedNaiveBayes::Create(
      NbConfig(partition::Technique::kHashing, 8), 5, 2);
  ASSERT_TRUE(nb.ok());
  Rng rng(7);
  for (int i = 0; i < 100; ++i) (*nb)->Train(0, MakeNbExample(&rng, 5, i % 2));
  uint64_t probes = 0;
  LabeledExample ex = MakeNbExample(&rng, 5, 0);
  (*nb)->Classify(ex.feature_values, &probes);
  EXPECT_EQ(probes, 5u);
}

TEST(NaiveBayesTest, MemoryBoundedByTechnique) {
  // Counter replication: KG = 1x, PKG <= 2x, SG <= Wx.
  auto count = [](partition::Technique technique) {
    auto nb = DistributedNaiveBayes::Create(NbConfig(technique, 6), 4, 2);
    EXPECT_TRUE(nb.ok());
    Rng rng(9);
    for (int i = 0; i < 3000; ++i) {
      (*nb)->Train(0, MakeNbExample(&rng, 4, i % 2));
    }
    return (*nb)->TotalCounters();
  };
  uint64_t kg = count(partition::Technique::kHashing);
  uint64_t pkg = count(partition::Technique::kPkgLocal);
  uint64_t sg = count(partition::Technique::kShuffle);
  EXPECT_LE(kg, pkg);
  EXPECT_LE(pkg, 2 * kg);
  EXPECT_GT(sg, pkg);
}

// --------------------------- Decision Tree -------------------------------

DecisionTreeOptions TreeOptions() {
  DecisionTreeOptions o;
  o.num_features = 2;
  o.num_classes = 2;
  o.histogram_bins = 32;
  o.min_leaf_samples = 500;
  o.max_leaves = 8;
  return o;
}

/// Class 0: feature0 ~ N(-2, 1); class 1: feature0 ~ N(+2, 1). feature1 is
/// noise — the tree must discover that feature0 at ~0 separates them.
NumericExample MakeTreeExample(Rng* rng, uint32_t label) {
  NumericExample ex;
  ex.label = label;
  ex.features.push_back(rng->Normal(label == 0 ? -2.0 : 2.0, 1.0));
  ex.features.push_back(rng->Normal(0.0, 1.0));
  return ex;
}

TEST(DecisionTreeModelTest, RootOnlyPredictsMajority) {
  DecisionTreeModel model(2);
  model.Observe(0, 1);
  model.Observe(0, 1);
  model.Observe(0, 0);
  EXPECT_EQ(model.Predict({0.0, 0.0}), 1u);
  EXPECT_EQ(model.num_leaves(), 1u);
}

TEST(DecisionTreeModelTest, SplitRoutesByThreshold) {
  DecisionTreeModel model(2);
  auto [left, right] = model.Split(0, /*feature=*/0, /*threshold=*/1.5);
  EXPECT_EQ(model.num_leaves(), 2u);
  EXPECT_EQ(model.LeafOf({1.0, 0.0}), left);
  EXPECT_EQ(model.LeafOf({2.0, 0.0}), right);
  model.Observe(left, 0);
  model.Observe(right, 1);
  EXPECT_EQ(model.Predict({0.0, 0.0}), 0u);
  EXPECT_EQ(model.Predict({3.0, 0.0}), 1u);
}

TEST(EntropyTest, KnownValues) {
  EXPECT_DOUBLE_EQ(Entropy({1.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(Entropy({1.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(Entropy({0.0, 0.0}), 0.0);
  EXPECT_NEAR(Entropy({3.0, 1.0}), 0.8113, 1e-3);
}

TEST(DecisionTreeTest, LearnsSeparableBlobsUnderPkg) {
  partition::PartitionerConfig config;
  config.technique = partition::Technique::kPkgLocal;
  config.workers = 4;
  config.seed = 42;
  auto tree = StreamingDecisionTree::Create(config, TreeOptions());
  ASSERT_TRUE(tree.ok());
  Rng rng(11);
  for (int i = 0; i < 4000; ++i) {
    (*tree)->Train(0, MakeTreeExample(&rng, i % 2));
  }
  EXPECT_GT((*tree)->model().num_leaves(), 1u) << "tree never split";
  int correct = 0;
  const int tests = 1000;
  for (int i = 0; i < tests; ++i) {
    NumericExample ex = MakeTreeExample(&rng, i % 2);
    if ((*tree)->model().Predict(ex.features) == ex.label) ++correct;
  }
  EXPECT_GT(correct, tests * 9 / 10);
}

TEST(DecisionTreeTest, HistogramCountBoundedByTwoPerTriplet) {
  partition::PartitionerConfig config;
  config.technique = partition::Technique::kPkgLocal;
  config.workers = 8;
  config.seed = 42;
  DecisionTreeOptions options = TreeOptions();
  options.min_leaf_samples = 1 << 30;  // never split: histograms accumulate
  auto tree = StreamingDecisionTree::Create(config, options);
  ASSERT_TRUE(tree.ok());
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) (*tree)->Train(0, MakeTreeExample(&rng, i % 2));
  // One leaf, 2 features, 2 classes: <= 2 workers per feature.
  EXPECT_LE((*tree)->TotalHistograms(), 2u * 2u * 2u);
}

TEST(DecisionTreeTest, ShuffleNeedsMoreHistogramsAndMerges) {
  auto build = [](partition::Technique technique) {
    partition::PartitionerConfig config;
    config.technique = technique;
    config.workers = 8;
    config.seed = 42;
    DecisionTreeOptions options = TreeOptions();
    options.min_leaf_samples = 1 << 30;
    auto tree = StreamingDecisionTree::Create(config, options);
    EXPECT_TRUE(tree.ok());
    Rng rng(3);
    for (int i = 0; i < 4000; ++i) {
      (*tree)->Train(0, MakeTreeExample(&rng, i % 2));
    }
    return std::move(tree).ValueOrDie();
  };
  auto pkg = build(partition::Technique::kPkgLocal);
  auto sg = build(partition::Technique::kShuffle);
  EXPECT_LT(pkg->TotalHistograms(), sg->TotalHistograms());
}

TEST(DecisionTreeTest, WorkerLoadBalancedUnderPkg) {
  partition::PartitionerConfig config;
  config.technique = partition::Technique::kPkgLocal;
  config.workers = 4;
  config.seed = 42;
  auto tree = StreamingDecisionTree::Create(config, TreeOptions());
  ASSERT_TRUE(tree.ok());
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) (*tree)->Train(0, MakeTreeExample(&rng, i % 2));
  // 2 features x 2000 examples = 4000 updates across 4 workers.
  EXPECT_LT(stats::ImbalanceOf((*tree)->worker_loads()), 100.0);
}

// --------------------------- Heavy hitters -------------------------------

TEST(HeavyHittersTest, TopologyFindsHotKeys) {
  for (auto technique :
       {partition::Technique::kPkgLocal, partition::Technique::kShuffle,
        partition::Technique::kHashing}) {
    HeavyHitterTopology hh =
        MakeHeavyHitterTopology(technique, 1, 4, /*capacity=*/64, 42);
    auto rt = engine::LogicalRuntime::Create(&hh.topology);
    ASSERT_TRUE(rt.ok());
    auto dist = std::make_shared<workload::StaticDistribution>(
        workload::ZipfWeights(2000, 1.4), "zipf");
    Rng rng(7);
    stats::FrequencyTable exact;
    for (int i = 0; i < 50000; ++i) {
      engine::Message m;
      m.key = dist->Sample(&rng);
      m.tag = kTagItem;
      exact.Add(m.key);
      (*rt)->Inject(hh.spout, 0, m);
    }
    (*rt)->Finish();
    auto* merger =
        static_cast<HeavyHitterMerger*>((*rt)->GetOperator(hh.merger, 0));
    auto found = merger->TopK(5);
    auto truth = exact.TopK(5);
    ASSERT_GE(found.size(), 5u);
    // The top-3 true heavy hitters must appear in the found top-5.
    for (int i = 0; i < 3; ++i) {
      bool present = false;
      for (const auto& e : found) present |= (e.key == truth[i].first);
      EXPECT_TRUE(present) << "missing hot key " << truth[i].first << " ("
                           << partition::TechniqueName(technique) << ")";
    }
  }
}

TEST(HeavyHittersTest, MergedEstimatesUpperBoundTruth) {
  HeavyHitterTopology hh = MakeHeavyHitterTopology(
      partition::Technique::kPkgLocal, 1, 4, /*capacity=*/128, 42);
  auto rt = engine::LogicalRuntime::Create(&hh.topology);
  ASSERT_TRUE(rt.ok());
  auto dist = std::make_shared<workload::StaticDistribution>(
      workload::ZipfWeights(500, 1.3), "zipf");
  Rng rng(9);
  stats::FrequencyTable exact;
  for (int i = 0; i < 30000; ++i) {
    engine::Message m;
    m.key = dist->Sample(&rng);
    m.tag = kTagItem;
    exact.Add(m.key);
    (*rt)->Inject(hh.spout, 0, m);
  }
  (*rt)->Finish();
  auto* merger =
      static_cast<HeavyHitterMerger*>((*rt)->GetOperator(hh.merger, 0));
  for (const auto& [key, count] : exact.TopK(10)) {
    EXPECT_GE(merger->merged().Estimate(key), count);
  }
}

TEST(HeavyHittersTest, WorkerMemoryBoundedByCapacity) {
  HeavyHitterWorker worker(32);
  engine::OperatorContext ctx;
  worker.Open(ctx);
  class NullEmitter : public engine::Emitter {
   public:
    void Emit(const engine::Message&) override {}
  } emitter;
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    engine::Message m;
    m.key = rng.UniformInt(5000);
    m.tag = kTagItem;
    worker.Process(m, &emitter);
  }
  EXPECT_LE(worker.MemoryCounters(), 32u);
}

}  // namespace
}  // namespace apps
}  // namespace pkgstream
