// Copyright 2026 The pkgstream Authors.
// Unit tests for the SPACESAVING sketch and its mergeable-summary extension.

#include <gtest/gtest.h>

#include "apps/heavy_hitters.h"
#include "common/random.h"
#include "stats/frequency.h"
#include "workload/static_distribution.h"
#include "workload/zipf.h"

namespace pkgstream {
namespace apps {
namespace {

TEST(SpaceSavingTest, ExactWhenUnderCapacity) {
  SpaceSaving ss(10);
  for (int i = 0; i < 5; ++i) ss.Add(1);
  for (int i = 0; i < 3; ++i) ss.Add(2);
  ss.Add(3);
  EXPECT_EQ(ss.Estimate(1), 5u);
  EXPECT_EQ(ss.Estimate(2), 3u);
  EXPECT_EQ(ss.Estimate(3), 1u);
  EXPECT_EQ(ss.Entry(1).error, 0u);
  EXPECT_EQ(ss.size(), 3u);
  EXPECT_EQ(ss.processed(), 9u);
  EXPECT_EQ(ss.MinCount(), 0u);  // not full: untracked keys estimate 0
}

TEST(SpaceSavingTest, EvictionInheritsMinCount) {
  SpaceSaving ss(2);
  ss.Add(1);
  ss.Add(1);  // 1 -> 2
  ss.Add(2);  // 2 -> 1
  ss.Add(3);  // evicts 2 (min count 1): 3 -> 2 with error 1
  EXPECT_FALSE(ss.Contains(2));
  EXPECT_TRUE(ss.Contains(3));
  EXPECT_EQ(ss.Entry(3).count, 2u);
  EXPECT_EQ(ss.Entry(3).error, 1u);
}

TEST(SpaceSavingTest, EstimateIsUpperBound) {
  SpaceSaving ss(20);
  stats::FrequencyTable exact;
  Rng rng(42);
  auto dist = std::make_shared<workload::StaticDistribution>(
      workload::ZipfWeights(500, 1.3), "zipf");
  for (int i = 0; i < 50000; ++i) {
    Key k = dist->Sample(&rng);
    ss.Add(k);
    exact.Add(k);
  }
  for (const auto& entry : ss.TopK()) {
    EXPECT_GE(entry.count, exact.Count(entry.key));
    EXPECT_LE(entry.count - entry.error, exact.Count(entry.key));
  }
}

TEST(SpaceSavingTest, GuaranteedHeavyHittersPresent) {
  // Any key with frequency > m / capacity must be tracked.
  SpaceSaving ss(10);
  stats::FrequencyTable exact;
  Rng rng(7);
  auto dist = std::make_shared<workload::StaticDistribution>(
      workload::ZipfWeights(1000, 1.5), "zipf");
  const int m = 100000;
  for (int i = 0; i < m; ++i) {
    Key k = dist->Sample(&rng);
    ss.Add(k);
    exact.Add(k);
  }
  for (const auto& [key, count] : exact.TopK()) {
    if (count > static_cast<uint64_t>(m) / 10) {
      EXPECT_TRUE(ss.Contains(key)) << "hot key " << key << " lost";
    }
  }
}

TEST(SpaceSavingTest, ErrorBoundedByMOverC) {
  SpaceSaving ss(50);
  Rng rng(11);
  const int m = 20000;
  for (int i = 0; i < m; ++i) ss.Add(rng.UniformInt(2000));
  EXPECT_LE(ss.MinCount(), static_cast<uint64_t>(m) / 50);
  for (const auto& e : ss.TopK()) {
    EXPECT_LE(e.error, static_cast<uint64_t>(m) / 50);
  }
}

TEST(SpaceSavingTest, TopKOrdering) {
  SpaceSaving ss(10);
  ss.Add(5, 100);
  ss.Add(6, 50);
  ss.Add(7, 75);
  auto top = ss.TopK(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].key, 5u);
  EXPECT_EQ(top[1].key, 7u);
}

TEST(SpaceSavingTest, AddWithIncrement) {
  SpaceSaving ss(4);
  ss.Add(1, 10);
  ss.Add(1, 5);
  EXPECT_EQ(ss.Estimate(1), 15u);
  EXPECT_EQ(ss.processed(), 15u);
}

TEST(SpaceSavingTest, MergeDisjointStreamsIsExactUnderCapacity) {
  SpaceSaving a(20);
  SpaceSaving b(20);
  a.Add(1, 5);
  a.Add(2, 3);
  b.Add(1, 4);
  b.Add(3, 2);
  a.Merge(b);
  EXPECT_EQ(a.Estimate(1), 9u);
  EXPECT_EQ(a.Estimate(2), 3u);
  EXPECT_EQ(a.Estimate(3), 2u);
  EXPECT_EQ(a.processed(), 14u);
  EXPECT_EQ(a.Entry(1).error, 0u);
}

TEST(SpaceSavingTest, MergeErrorsAdd) {
  // Force evictions in both summaries, then check merged error is the sum.
  SpaceSaving a(2);
  SpaceSaving b(2);
  a.Add(1);
  a.Add(2);
  a.Add(3);  // 3 evicts; error 1
  b.Add(4);
  b.Add(5);
  b.Add(3);  // 3 evicts; error 1
  uint64_t ea = a.Entry(3).error;
  uint64_t eb = b.Entry(3).error;
  a.Merge(b);
  if (a.Contains(3)) {
    EXPECT_EQ(a.Entry(3).error, ea + eb);
  }
}

TEST(SpaceSavingTest, MergeTruncatesToCapacity) {
  SpaceSaving a(3);
  SpaceSaving b(3);
  a.Add(1, 10);
  a.Add(2, 8);
  a.Add(3, 6);
  b.Add(4, 9);
  b.Add(5, 7);
  b.Add(6, 5);
  a.Merge(b);
  EXPECT_EQ(a.size(), 3u);
  auto top = a.TopK();
  EXPECT_EQ(top[0].key, 1u);  // 10
  EXPECT_EQ(top[1].key, 4u);  // 9
  EXPECT_EQ(top[2].key, 2u);  // 8
}

TEST(SpaceSavingTest, MergedAccuracyMatchesPaperArgument) {
  // Two partial summaries over halves of a stream, merged, should estimate
  // hot keys with error <= sum of the two partial error floors — the
  // Section VI-C property PKG relies on.
  auto dist = std::make_shared<workload::StaticDistribution>(
      workload::ZipfWeights(2000, 1.2), "zipf");
  Rng rng(3);
  SpaceSaving s1(100);
  SpaceSaving s2(100);
  stats::FrequencyTable exact;
  const int m = 100000;
  for (int i = 0; i < m; ++i) {
    Key k = dist->Sample(&rng);
    exact.Add(k);
    (i % 2 == 0 ? s1 : s2).Add(k);
  }
  uint64_t floor1 = s1.MinCount();
  uint64_t floor2 = s2.MinCount();
  SpaceSaving merged = s1;
  merged.Merge(s2);
  auto top_exact = exact.TopK(10);
  for (const auto& [key, count] : top_exact) {
    uint64_t est = merged.Estimate(key);
    EXPECT_GE(est, count);
    EXPECT_LE(est, count + floor1 + floor2);
  }
}

TEST(SpaceSavingTest, HeapInvariantMaintained) {
  // Fuzz adds and verify min-extraction order is consistent with counts.
  SpaceSaving ss(32);
  Rng rng(17);
  for (int i = 0; i < 5000; ++i) ss.Add(rng.UniformInt(100));
  auto items = ss.TopK();
  // TopK is sorted desc; the minimum must equal MinCount.
  EXPECT_EQ(items.back().count, ss.MinCount());
}

TEST(SpaceSavingTest, CapacityOneDegenerates) {
  SpaceSaving ss(1);
  ss.Add(1);
  ss.Add(2);
  ss.Add(2);
  EXPECT_EQ(ss.size(), 1u);
  EXPECT_TRUE(ss.Contains(2));
  EXPECT_EQ(ss.Estimate(2), 3u);  // 1 (inherited) + 2
}

}  // namespace
}  // namespace apps
}  // namespace pkgstream
