// Copyright 2026 The pkgstream Authors.
// Unit + integration tests for the streaming top-k word count application.

#include <gtest/gtest.h>

#include <map>

#include "apps/wordcount.h"
#include "engine/logical_runtime.h"
#include "workload/static_distribution.h"
#include "workload/zipf.h"

namespace pkgstream {
namespace apps {
namespace {

using engine::LogicalRuntime;
using engine::Message;

/// Drives `messages` zipf-keyed words through a word-count topology on the
/// logical runtime and returns the aggregator's final totals.
std::map<Key, uint64_t> RunWordCount(partition::Technique technique,
                                     uint32_t sources, uint32_t workers,
                                     uint64_t tick, int messages,
                                     std::map<Key, uint64_t>* exact) {
  WordCountTopology wc =
      MakeWordCountTopology(technique, sources, workers, tick, 5, 42);
  auto rt = LogicalRuntime::Create(&wc.topology);
  EXPECT_TRUE(rt.ok());
  auto dist = std::make_shared<workload::StaticDistribution>(
      workload::ZipfWeights(50, 1.2), "zipf");
  Rng rng(7);
  for (int i = 0; i < messages; ++i) {
    Message m;
    m.key = dist->Sample(&rng);
    m.tag = kTagWord;
    if (exact) ++(*exact)[m.key];
    (*rt)->Inject(wc.spout, static_cast<SourceId>(i % sources), m);
  }
  (*rt)->Finish();
  auto* agg =
      static_cast<TopKAggregator*>((*rt)->GetOperator(wc.aggregator, 0));
  std::map<Key, uint64_t> totals(agg->totals().begin(), agg->totals().end());
  return totals;
}

TEST(WordCountTest, PkgTotalsAreExact) {
  std::map<Key, uint64_t> exact;
  auto totals = RunWordCount(partition::Technique::kPkgLocal, 2, 4,
                             /*tick=*/100, 5000, &exact);
  EXPECT_EQ(totals, exact);
}

TEST(WordCountTest, ShuffleTotalsAreExact) {
  std::map<Key, uint64_t> exact;
  auto totals = RunWordCount(partition::Technique::kShuffle, 2, 4,
                             /*tick=*/250, 5000, &exact);
  EXPECT_EQ(totals, exact);
}

TEST(WordCountTest, KeyGroupingTotalsAreExact) {
  std::map<Key, uint64_t> exact;
  auto totals = RunWordCount(partition::Technique::kHashing, 1, 4,
                             /*tick=*/0, 5000, &exact);
  EXPECT_EQ(totals, exact);
}

TEST(WordCountTest, NoTickStillFlushedAtClose) {
  std::map<Key, uint64_t> exact;
  auto totals = RunWordCount(partition::Technique::kPkgLocal, 1, 3,
                             /*tick=*/0, 1000, &exact);
  EXPECT_EQ(totals, exact);
}

TEST(WordCountTest, TopKOrderedByCount) {
  WordCountTopology wc = MakeWordCountTopology(partition::Technique::kPkgLocal,
                                               1, 3, 0, 3, 42);
  auto rt = LogicalRuntime::Create(&wc.topology);
  ASSERT_TRUE(rt.ok());
  // key 1 x5, key 2 x3, key 3 x1.
  for (int i = 0; i < 5; ++i) {
    Message m;
    m.key = 1;
    (*rt)->Inject(wc.spout, 0, m);
  }
  for (int i = 0; i < 3; ++i) {
    Message m;
    m.key = 2;
    (*rt)->Inject(wc.spout, 0, m);
  }
  Message m;
  m.key = 3;
  (*rt)->Inject(wc.spout, 0, m);
  (*rt)->Finish();
  auto* agg =
      static_cast<TopKAggregator*>((*rt)->GetOperator(wc.aggregator, 0));
  auto top = agg->TopK();
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].first, 1u);
  EXPECT_EQ(top[0].second, 5u);
  EXPECT_EQ(top[1].first, 2u);
  EXPECT_EQ(top[2].first, 3u);
}

TEST(WordCountTest, KgModeUsesRunningTotals) {
  WordCountTopology wc =
      MakeWordCountTopology(partition::Technique::kHashing, 1, 2, 10, 5, 42);
  EXPECT_EQ(wc.mode, CounterMode::kRunningTotals);
  WordCountTopology pkg =
      MakeWordCountTopology(partition::Technique::kPkgLocal, 1, 2, 10, 5, 42);
  EXPECT_EQ(pkg.mode, CounterMode::kPartialCounts);
}

TEST(WordCountTest, PartialModeClearsCountersOnTick) {
  WordCountCounter counter(CounterMode::kPartialCounts, 5);
  class NullEmitter : public engine::Emitter {
   public:
    void Emit(const Message&) override { ++count; }
    int count = 0;
  } emitter;
  Message m;
  m.key = 9;
  m.tag = kTagWord;
  counter.Process(m, &emitter);
  EXPECT_EQ(counter.MemoryCounters(), 1u);
  counter.Tick(0, &emitter);
  EXPECT_EQ(counter.MemoryCounters(), 0u);
  EXPECT_EQ(emitter.count, 1);
}

TEST(WordCountTest, RunningModeKeepsCountersOnTick) {
  WordCountCounter counter(CounterMode::kRunningTotals, 5);
  class NullEmitter : public engine::Emitter {
   public:
    void Emit(const Message&) override {}
  } emitter;
  Message m;
  m.key = 9;
  m.tag = kTagWord;
  counter.Process(m, &emitter);
  counter.Tick(0, &emitter);
  EXPECT_EQ(counter.MemoryCounters(), 1u);
}

TEST(WordCountTest, MemoryOrderingPkgBetweenKgAndSg) {
  // End-of-run distinct (worker, key) state: KG <= PKG <= SG (the paper's
  // 2.9M / 3.6M / 7.2M comparison, scaled down).
  auto measure = [](partition::Technique technique) {
    WordCountTopology wc =
        MakeWordCountTopology(technique, 1, 8, /*tick=*/0, 5, 42);
    auto rt = LogicalRuntime::Create(&wc.topology);
    EXPECT_TRUE(rt.ok());
    auto dist = std::make_shared<workload::StaticDistribution>(
        workload::ZipfWeights(300, 1.0), "zipf");
    Rng rng(5);
    for (int i = 0; i < 30000; ++i) {
      Message m;
      m.key = dist->Sample(&rng);
      (*rt)->Inject(wc.spout, 0, m);
    }
    uint64_t memory = 0;
    for (uint32_t w = 0; w < 8; ++w) {
      memory += (*rt)->GetOperator(wc.counter, w)->MemoryCounters();
    }
    return memory;
  };
  uint64_t kg = measure(partition::Technique::kHashing);
  uint64_t pkg = measure(partition::Technique::kPkgLocal);
  uint64_t sg = measure(partition::Technique::kShuffle);
  EXPECT_LE(kg, pkg);
  EXPECT_LT(pkg, sg);
  EXPECT_LE(pkg, 2 * kg);  // at most 2x: each key lives on <= 2 workers
}

TEST(WordCountTest, LoadImbalanceOrderingOnSkew) {
  auto imbalance = [](partition::Technique technique) {
    WordCountTopology wc =
        MakeWordCountTopology(technique, 1, 5, /*tick=*/0, 5, 42);
    auto rt = LogicalRuntime::Create(&wc.topology);
    EXPECT_TRUE(rt.ok());
    auto dist = std::make_shared<workload::StaticDistribution>(
        workload::ZipfWeights(1000, 1.0), "zipf");
    Rng rng(5);
    for (int i = 0; i < 50000; ++i) {
      Message m;
      m.key = dist->Sample(&rng);
      (*rt)->Inject(wc.spout, 0, m);
    }
    return (*rt)->Metrics()[wc.counter.index].imbalance;
  };
  double kg = imbalance(partition::Technique::kHashing);
  double pkg = imbalance(partition::Technique::kPkgLocal);
  double sg = imbalance(partition::Technique::kShuffle);
  EXPECT_LT(pkg, kg / 10);  // PKG crushes KG on skew
  EXPECT_LE(sg, 1.0);       // SG is near-perfect
}

}  // namespace
}  // namespace apps
}  // namespace pkgstream
