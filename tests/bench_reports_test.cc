// Copyright 2026 The pkgstream Authors.
// End-to-end tests over the real bench binaries (spawned as subprocesses):
//  * determinism — every paper bench run twice at --quick with the same
//    seed produces byte-identical JSON reports (bench_threaded_scaling,
//    the one bench with wall-clock numbers, must be identical after
//    dropping its host_metrics section);
//  * export failure — a bench whose --json/--csv write fails must exit
//    non-zero (a silently missing report would vacuously pass the gate);
//  * schema — reports carry the fields bench_check keys on.
//
// Requires the bench binaries next to the test binary (the ctest working
// directory); override with PKGSTREAM_BENCH_DIR. Not built when
// PKGSTREAM_BUILD_BENCH is off.

#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "bench/report.h"
#include "common/json.h"

namespace pkgstream {
namespace {

const char* kPaperBenches[] = {
    "bench_table1_datasets",     "bench_table2_imbalance",
    "bench_fig2_local_vs_global", "bench_fig3_time_series",
    "bench_fig4_skewed_sources",  "bench_fig5a_throughput",
    "bench_fig5b_memory",         "bench_ablation_choices",
    "bench_ablation_probing",     "bench_ablation_rebalance",
    "bench_threaded_scaling",    "bench_latency_under_load",
    "bench_threaded_manyworkers",  "bench_reconfig",
};

std::string BenchDir() {
  const char* dir = std::getenv("PKGSTREAM_BENCH_DIR");
  if (dir != nullptr && dir[0] != '\0') return dir;
  // ctest runs suites from the build directory, where the benches land;
  // "build" covers running the test binary from the repo root by hand.
  std::ifstream probe("./bench_table1_datasets");
  return probe.good() ? "." : "build";
}

/// Runs `command`, discarding stdout; returns the process exit code, or -1
/// when it did not exit normally.
int RunCommand(const std::string& command) {
  const int status = std::system((command + " > /dev/null 2>&1").c_str());
  if (status == -1 || !WIFEXITED(status)) return -1;
  return WEXITSTATUS(status);
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream f(path);
  EXPECT_TRUE(f.good()) << "missing " << path;
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

/// Extra flags keeping a bench fast enough for a doubled CI run.
std::string QuickFlags(const std::string& bench) {
  std::string flags = "--quick --seed=42";
  if (bench == "bench_threaded_scaling") flags += " --messages=2000";
  if (bench == "bench_latency_under_load") flags += " --cell_ms=100";
  if (bench == "bench_threaded_manyworkers") flags += " --messages=4000";
  if (bench == "bench_reconfig") flags += " --messages=4000";
  return flags;
}

class BenchDeterminismTest : public testing::TestWithParam<const char*> {};

TEST_P(BenchDeterminismTest, SameSeedSameQuickScaleByteIdenticalReport) {
  const std::string bench = GetParam();
  const std::string binary = BenchDir() + "/" + bench;
  const std::string out1 = testing::TempDir() + "/" + bench + "_run1.json";
  const std::string out2 = testing::TempDir() + "/" + bench + "_run2.json";
  for (const std::string& out : {out1, out2}) {
    ASSERT_EQ(RunCommand(binary + " " + QuickFlags(bench) + " --json=" + out), 0)
        << binary << " failed";
  }
  const std::string text1 = ReadFileOrDie(out1);
  const std::string text2 = ReadFileOrDie(out2);
  if (bench == "bench_threaded_scaling" ||
      bench == "bench_latency_under_load" ||
      bench == "bench_threaded_manyworkers") {
    // These benches measure wall-clock rates / injection lag; everything
    // *outside* host_metrics must still be byte-identical.
    auto doc1 = JsonValue::Parse(text1);
    auto doc2 = JsonValue::Parse(text2);
    ASSERT_TRUE(doc1.ok() && doc2.ok());
    doc1->Set("host_metrics", JsonValue::Object());
    doc2->Set("host_metrics", JsonValue::Object());
    EXPECT_EQ(doc1->ToString(), doc2->ToString());
  } else {
    EXPECT_EQ(text1, text2) << bench << " report is not deterministic";
  }

  // Schema spot-check on the last report.
  auto doc = JsonValue::Parse(text2);
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->StringOr("bench", "?"), bench);
  EXPECT_EQ(doc->StringOr("scale", "?"), "quick");
  EXPECT_EQ(doc->NumberOr("seed", -1), 42.0);
  EXPECT_EQ(doc->NumberOr("schema_version", -1),
            bench::kReportSchemaVersion);
  ASSERT_NE(doc->FindObject("metrics"), nullptr);
  EXPECT_GT(doc->FindObject("metrics")->members().size(), 0u);
  EXPECT_NE(doc->FindObject("host"), nullptr);
  std::remove(out1.c_str());
  std::remove(out2.c_str());
}

INSTANTIATE_TEST_SUITE_P(AllBenches, BenchDeterminismTest,
                         testing::ValuesIn(kPaperBenches),
                         [](const testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

TEST(BenchExportFailureTest, FailedJsonExportExitsNonZero) {
  const std::string binary = BenchDir() + "/bench_ablation_probing";
  EXPECT_EQ(RunCommand(binary + " --quick --json=/nonexistent-dir-xyz/report.json"),
            1);
}

TEST(BenchExportFailureTest, FailedCsvExportExitsNonZero) {
  const std::string binary = BenchDir() + "/bench_ablation_probing";
  EXPECT_EQ(RunCommand(binary + " --quick --csv=/nonexistent-dir-xyz/table.csv"), 1);
}

TEST(BenchExportFailureTest, SuccessfulExportsExitZeroAndParse) {
  const std::string binary = BenchDir() + "/bench_ablation_probing";
  const std::string json = testing::TempDir() + "/probing_ok.json";
  const std::string csv = testing::TempDir() + "/probing_ok.csv";
  ASSERT_EQ(RunCommand(binary + " --quick --json=" + json + " --csv=" + csv), 0);
  auto doc = ReadJsonFile(json);
  EXPECT_TRUE(doc.ok()) << doc.status();
  const std::string csv_text = ReadFileOrDie(csv);
  EXPECT_NE(csv_text.find("Estimator"), std::string::npos);
  std::remove(json.c_str());
  std::remove(csv.c_str());
}

}  // namespace
}  // namespace pkgstream
