// Copyright 2026 The pkgstream Authors.
// Unit tests for the command-line flag parser.

#include <gtest/gtest.h>

#include "common/flags.h"

namespace pkgstream {
namespace {

Flags ParseOk(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  Flags flags;
  Status s =
      Flags::Parse(static_cast<int>(argv.size()), argv.data(), &flags);
  EXPECT_TRUE(s.ok()) << s;
  return flags;
}

TEST(FlagsTest, EmptyArgv) {
  Flags f = ParseOk({});
  EXPECT_TRUE(f.positional().empty());
  EXPECT_FALSE(f.Has("anything"));
}

TEST(FlagsTest, EqualsForm) {
  Flags f = ParseOk({"--workers=50"});
  EXPECT_EQ(f.GetInt("workers", 0), 50);
}

TEST(FlagsTest, SpaceForm) {
  Flags f = ParseOk({"--workers", "10"});
  EXPECT_EQ(f.GetInt("workers", 0), 10);
}

TEST(FlagsTest, BooleanSwitch) {
  Flags f = ParseOk({"--full"});
  EXPECT_TRUE(f.GetBool("full", false));
  EXPECT_TRUE(f.Has("full"));
}

TEST(FlagsTest, BooleanExplicitValues) {
  EXPECT_TRUE(ParseOk({"--x=true"}).GetBool("x", false));
  EXPECT_TRUE(ParseOk({"--x=1"}).GetBool("x", false));
  EXPECT_TRUE(ParseOk({"--x=yes"}).GetBool("x", false));
  EXPECT_FALSE(ParseOk({"--x=0"}).GetBool("x", true));
  EXPECT_FALSE(ParseOk({"--x=false"}).GetBool("x", true));
}

TEST(FlagsTest, DoubleValues) {
  Flags f = ParseOk({"--scale=0.25"});
  EXPECT_DOUBLE_EQ(f.GetDouble("scale", 1.0), 0.25);
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  Flags f = ParseOk({});
  EXPECT_EQ(f.GetInt("n", 5), 5);
  EXPECT_DOUBLE_EQ(f.GetDouble("d", 2.5), 2.5);
  EXPECT_EQ(f.GetString("s", "x"), "x");
  EXPECT_FALSE(f.GetBool("b", false));
}

TEST(FlagsTest, MalformedIntegerFallsBack) {
  Flags f = ParseOk({"--n=12abc"});
  EXPECT_EQ(f.GetInt("n", 7), 7);
}

TEST(FlagsTest, PositionalArguments) {
  Flags f = ParseOk({"input.trace", "--workers=3", "output.csv"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.trace");
  EXPECT_EQ(f.positional()[1], "output.csv");
}

TEST(FlagsTest, DoubleDashStopsFlagParsing) {
  Flags f = ParseOk({"--a=1", "--", "--b=2"});
  EXPECT_TRUE(f.Has("a"));
  EXPECT_FALSE(f.Has("b"));
  ASSERT_EQ(f.positional().size(), 1u);
  EXPECT_EQ(f.positional()[0], "--b=2");
}

TEST(FlagsTest, SpaceFormDoesNotEatNextFlag) {
  Flags f = ParseOk({"--verbose", "--workers=2"});
  EXPECT_TRUE(f.GetBool("verbose", false));
  EXPECT_EQ(f.GetInt("workers", 0), 2);
}

TEST(FlagsTest, LastValueWins) {
  Flags f = ParseOk({"--n=1", "--n=2"});
  EXPECT_EQ(f.GetInt("n", 0), 2);
}

TEST(FlagsTest, MalformedFlagRejected) {
  const char* argv[] = {"prog", "--=3"};
  Flags flags;
  EXPECT_TRUE(Flags::Parse(2, argv, &flags).IsInvalidArgument());
}

TEST(FlagsTest, NamesListsAllFlags) {
  Flags f = ParseOk({"--b=1", "--a=2"});
  auto names = f.Names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");  // map order: sorted
  EXPECT_EQ(names[1], "b");
}

TEST(FlagsTest, NegativeNumbersAsValues) {
  Flags f = ParseOk({"--offset=-5"});
  EXPECT_EQ(f.GetInt("offset", 0), -5);
}

}  // namespace
}  // namespace pkgstream
