// Copyright 2026 The pkgstream Authors.
// Unit tests for the Murmur3 implementation and the seeded hash family.

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "common/hash.h"

namespace pkgstream {
namespace {

// Reference vectors produced by Austin Appleby's MurmurHash3_x64_128.
// (Verified against the canonical smhasher output.)
TEST(Murmur3Test, EmptyInputSeedZero) {
  Hash128 h = Murmur3_x64_128("", 0, 0);
  EXPECT_EQ(h.low, 0ULL);
  EXPECT_EQ(h.high, 0ULL);
}

TEST(Murmur3Test, DeterministicForSameInput) {
  const char* data = "partial key grouping";
  Hash128 a = Murmur3_x64_128(data, std::strlen(data), 42);
  Hash128 b = Murmur3_x64_128(data, std::strlen(data), 42);
  EXPECT_EQ(a, b);
}

TEST(Murmur3Test, SeedChangesOutput) {
  const char* data = "hello world";
  EXPECT_NE(Murmur3_64(data, std::strlen(data), 1),
            Murmur3_64(data, std::strlen(data), 2));
}

TEST(Murmur3Test, LengthChangesOutput) {
  const char data[17] = "aaaaaaaaaaaaaaaa";
  // Exercise every tail length 1..16 and ensure all distinct.
  std::set<uint64_t> values;
  for (size_t len = 1; len <= 16; ++len) {
    values.insert(Murmur3_64(data, len, 7));
  }
  EXPECT_EQ(values.size(), 16u);
}

TEST(Murmur3Test, BlockAndTailPathsBothCovered) {
  // 35 bytes = 2 full blocks + 3-byte tail.
  std::string data(35, 'x');
  uint64_t h1 = Murmur3_64(data.data(), data.size(), 0);
  data[34] = 'y';  // perturb the tail
  uint64_t h2 = Murmur3_64(data.data(), data.size(), 0);
  data[0] = 'y';  // perturb the body
  uint64_t h3 = Murmur3_64(data.data(), data.size(), 0);
  EXPECT_NE(h1, h2);
  EXPECT_NE(h2, h3);
}

TEST(Murmur3Test, StringViewAndIntegerOverloadsAgree) {
  uint64_t key = 0x0123456789abcdefULL;
  uint64_t via_bytes = Murmur3_64(&key, sizeof(key), 99);
  uint64_t via_int = Murmur3_64(key, 99);
  EXPECT_EQ(via_bytes, via_int);
}

TEST(Fmix64Test, IsBijectiveOnSamples) {
  // fmix64 is invertible; spot-check injectivity on a sample.
  std::set<uint64_t> outputs;
  for (uint64_t i = 0; i < 10000; ++i) outputs.insert(Fmix64(i));
  EXPECT_EQ(outputs.size(), 10000u);
}

TEST(Fmix64Test, ZeroMapsToZero) { EXPECT_EQ(Fmix64(0), 0ULL); }

TEST(HashCombineTest, OrderMatters) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

TEST(HashFamilyTest, BucketsInRange) {
  HashFamily family(2, 10, 42);
  for (uint64_t key = 0; key < 1000; ++key) {
    for (uint32_t i = 0; i < family.d(); ++i) {
      EXPECT_LT(family.Bucket(i, key), 10u);
    }
  }
}

TEST(HashFamilyTest, MembersAreIndependent) {
  HashFamily family(2, 1000, 42);
  // H1 and H2 should disagree on most keys for a large bucket space.
  int agreements = 0;
  for (uint64_t key = 0; key < 10000; ++key) {
    if (family.Bucket(0, key) == family.Bucket(1, key)) ++agreements;
  }
  // Expected ~ 10000/1000 = 10 collisions; allow generous slack.
  EXPECT_LT(agreements, 100);
}

TEST(HashFamilyTest, DeterministicAcrossInstances) {
  HashFamily a(3, 16, 7);
  HashFamily b(3, 16, 7);
  for (uint64_t key = 0; key < 256; ++key) {
    for (uint32_t i = 0; i < 3; ++i) {
      EXPECT_EQ(a.Bucket(i, key), b.Bucket(i, key));
    }
  }
}

TEST(HashFamilyTest, SeedSelectsDifferentFamilies) {
  HashFamily a(1, 64, 1);
  HashFamily b(1, 64, 2);
  int differences = 0;
  for (uint64_t key = 0; key < 1000; ++key) {
    if (a.Bucket(0, key) != b.Bucket(0, key)) ++differences;
  }
  EXPECT_GT(differences, 900);
}

TEST(HashFamilyTest, CandidatesMatchBuckets) {
  HashFamily family(4, 32, 5);
  std::vector<uint32_t> candidates;
  family.Candidates(123456, &candidates);
  ASSERT_EQ(candidates.size(), 4u);
  for (uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(candidates[i], family.Bucket(i, 123456));
  }
}

TEST(HashFamilyTest, CandidatesOverwriteReusedVectorAndAgreeWithBucket) {
  // Candidates resizes and overwrites in place (no clear-then-push), so a
  // reused vector — even one arriving longer, shorter, or full of stale
  // garbage — must come back holding exactly the d Bucket values.
  HashFamily family(3, 17, 99);
  std::vector<uint32_t> out(10, 0xdeadbeefu);  // longer than d, stale fill
  for (uint64_t key : {0ull, 1ull, ~0ull, 123456789ull}) {
    family.Candidates(key, &out);
    ASSERT_EQ(out.size(), 3u);
    for (uint32_t i = 0; i < 3; ++i) {
      EXPECT_EQ(out[i], family.Bucket(i, key)) << "key=" << key;
    }
  }
  // Growing case: a family with more members than the vector's capacity.
  HashFamily wide(8, 64, 5);
  std::vector<uint32_t> small;
  wide.Candidates(42, &small);
  ASSERT_EQ(small.size(), 8u);
  for (uint32_t i = 0; i < 8; ++i) EXPECT_EQ(small[i], wide.Bucket(i, 42));
  // Reuse must not reallocate once capacity covers d.
  const uint32_t* data = small.data();
  wide.Candidates(43, &small);
  EXPECT_EQ(small.data(), data);
  for (uint32_t i = 0; i < 8; ++i) EXPECT_EQ(small[i], wide.Bucket(i, 43));
}

TEST(HashFamilyTest, SingleBucketDegenerates) {
  HashFamily family(2, 1, 42);
  EXPECT_EQ(family.Bucket(0, 999), 0u);
  EXPECT_EQ(family.Bucket(1, 999), 0u);
}

TEST(HashFamilyTest, StringKeysRouteConsistently) {
  HashFamily family(2, 8, 11);
  EXPECT_EQ(family.Bucket(0, "wordcount"), family.Bucket(0, "wordcount"));
  EXPECT_LT(family.Bucket(1, "wordcount"), 8u);
}

TEST(Murmur3Test, FixedWidthSpecializationMatchesGenericPath) {
  // The straight-line Murmur3_64(uint64_t) must be bit-identical to
  // hashing the key's 8 little-endian bytes through the generic
  // variable-length implementation — routing decisions ride on these
  // exact bits. Adversarial corners plus sequential and random coverage.
  std::vector<uint64_t> keys = {0,
                               1,
                               ~0ULL,
                               ~0ULL - 1,
                               0x8000000000000000ULL,
                               0x7fffffffffffffffULL,
                               0x0123456789abcdefULL,
                               0x00000000ffffffffULL,
                               0xffffffff00000000ULL};
  for (uint64_t k = 0; k < 1024; ++k) keys.push_back(k);
  uint64_t r = 0x243f6a8885a308d3ULL;
  for (int i = 0; i < 4096; ++i) keys.push_back(r = Fmix64(r + i));
  const uint32_t seeds[] = {0, 1, 42, 0xdeadbeef, 0xffffffff};
  for (uint32_t seed : seeds) {
    for (uint64_t key : keys) {
      ASSERT_EQ(Murmur3_64(key, seed), Murmur3_64(&key, sizeof(key), seed))
          << "key=" << key << " seed=" << seed;
    }
  }
}

TEST(FastModTest, MatchesHardwareRemainderExhaustivelyOverSmallDivisors) {
  std::vector<uint64_t> numerators = {0, 1, 2, ~0ULL, ~0ULL - 1,
                                      0x8000000000000000ULL};
  uint64_t r = 0x13198a2e03707344ULL;
  for (int i = 0; i < 512; ++i) numerators.push_back(r = Fmix64(r + i));
  for (uint64_t d = 1; d <= 2048; ++d) {
    FastMod mod(d);
    for (uint64_t n : numerators) {
      ASSERT_EQ(mod.Mod(n), n % d) << "n=" << n << " d=" << d;
    }
    // Multiples and near-multiples of d are the carry corners.
    for (uint64_t q : {1ULL, 3ULL, (~0ULL / d)}) {
      const uint64_t m = d * q;
      ASSERT_EQ(mod.Mod(m), 0u) << "d=" << d << " q=" << q;
      if (m > 0) ASSERT_EQ(mod.Mod(m - 1), (m - 1) % d);
      if (m < ~0ULL) ASSERT_EQ(mod.Mod(m + 1), (m + 1) % d);
    }
  }
}

TEST(FastModTest, MatchesHardwareRemainderForLargeDivisors) {
  std::vector<uint64_t> divisors = {
      (1ULL << 31) - 1, 1ULL << 31,       (1ULL << 32) - 1, 1ULL << 32,
      (1ULL << 63) - 1, 1ULL << 63,       ~0ULL,            ~0ULL - 1,
      1000000007ULL,    0x9e3779b97f4a7c15ULL};
  uint64_t r = 0xa4093822299f31d0ULL;
  for (int i = 0; i < 64; ++i) divisors.push_back(Fmix64(r + i) | 1);
  for (uint64_t d : divisors) {
    FastMod mod(d);
    uint64_t n = 0x452821e638d01377ULL;
    for (int i = 0; i < 512; ++i) {
      n = Fmix64(n + i);
      ASSERT_EQ(mod.Mod(n), n % d) << "n=" << n << " d=" << d;
    }
    for (uint64_t n2 : {uint64_t{0}, d - 1, d, d + 1, ~uint64_t{0}}) {
      ASSERT_EQ(mod.Mod(n2), n2 % d) << "n=" << n2 << " d=" << d;
    }
  }
}

TEST(HashFamilyTest, BucketBatchMatchesBucket) {
  for (uint32_t buckets : {1u, 5u, 16u, 100u, 1023u}) {
    HashFamily family(3, buckets, 1234);
    std::vector<uint64_t> keys(257);
    for (size_t i = 0; i < keys.size(); ++i) keys[i] = Fmix64(i * 2654435761);
    std::vector<uint32_t> out(keys.size());
    for (uint32_t member = 0; member < family.d(); ++member) {
      family.BucketBatch(member, keys.data(), out.data(), keys.size());
      for (size_t i = 0; i < keys.size(); ++i) {
        ASSERT_EQ(out[i], family.Bucket(member, keys[i]))
            << "member=" << member << " i=" << i << " buckets=" << buckets;
      }
    }
  }
}

TEST(HashFamilyTest, UniformityAcrossBuckets) {
  // Chi-squared style sanity check: no bucket should be grossly over- or
  // under-loaded when hashing distinct keys.
  const uint32_t buckets = 16;
  const uint64_t keys = 160000;
  HashFamily family(1, buckets, 3);
  std::vector<uint64_t> counts(buckets, 0);
  for (uint64_t key = 0; key < keys; ++key) ++counts[family.Bucket(0, key)];
  double expected = static_cast<double>(keys) / buckets;
  for (uint64_t c : counts) {
    EXPECT_GT(c, expected * 0.9);
    EXPECT_LT(c, expected * 1.1);
  }
}

}  // namespace
}  // namespace pkgstream
