// Copyright 2026 The pkgstream Authors.
// Unit tests for the Murmur3 implementation and the seeded hash family.

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "common/hash.h"

namespace pkgstream {
namespace {

// Reference vectors produced by Austin Appleby's MurmurHash3_x64_128.
// (Verified against the canonical smhasher output.)
TEST(Murmur3Test, EmptyInputSeedZero) {
  Hash128 h = Murmur3_x64_128("", 0, 0);
  EXPECT_EQ(h.low, 0ULL);
  EXPECT_EQ(h.high, 0ULL);
}

TEST(Murmur3Test, DeterministicForSameInput) {
  const char* data = "partial key grouping";
  Hash128 a = Murmur3_x64_128(data, std::strlen(data), 42);
  Hash128 b = Murmur3_x64_128(data, std::strlen(data), 42);
  EXPECT_EQ(a, b);
}

TEST(Murmur3Test, SeedChangesOutput) {
  const char* data = "hello world";
  EXPECT_NE(Murmur3_64(data, std::strlen(data), 1),
            Murmur3_64(data, std::strlen(data), 2));
}

TEST(Murmur3Test, LengthChangesOutput) {
  const char data[17] = "aaaaaaaaaaaaaaaa";
  // Exercise every tail length 1..16 and ensure all distinct.
  std::set<uint64_t> values;
  for (size_t len = 1; len <= 16; ++len) {
    values.insert(Murmur3_64(data, len, 7));
  }
  EXPECT_EQ(values.size(), 16u);
}

TEST(Murmur3Test, BlockAndTailPathsBothCovered) {
  // 35 bytes = 2 full blocks + 3-byte tail.
  std::string data(35, 'x');
  uint64_t h1 = Murmur3_64(data.data(), data.size(), 0);
  data[34] = 'y';  // perturb the tail
  uint64_t h2 = Murmur3_64(data.data(), data.size(), 0);
  data[0] = 'y';  // perturb the body
  uint64_t h3 = Murmur3_64(data.data(), data.size(), 0);
  EXPECT_NE(h1, h2);
  EXPECT_NE(h2, h3);
}

TEST(Murmur3Test, StringViewAndIntegerOverloadsAgree) {
  uint64_t key = 0x0123456789abcdefULL;
  uint64_t via_bytes = Murmur3_64(&key, sizeof(key), 99);
  uint64_t via_int = Murmur3_64(key, 99);
  EXPECT_EQ(via_bytes, via_int);
}

TEST(Fmix64Test, IsBijectiveOnSamples) {
  // fmix64 is invertible; spot-check injectivity on a sample.
  std::set<uint64_t> outputs;
  for (uint64_t i = 0; i < 10000; ++i) outputs.insert(Fmix64(i));
  EXPECT_EQ(outputs.size(), 10000u);
}

TEST(Fmix64Test, ZeroMapsToZero) { EXPECT_EQ(Fmix64(0), 0ULL); }

TEST(HashCombineTest, OrderMatters) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

TEST(HashFamilyTest, BucketsInRange) {
  HashFamily family(2, 10, 42);
  for (uint64_t key = 0; key < 1000; ++key) {
    for (uint32_t i = 0; i < family.d(); ++i) {
      EXPECT_LT(family.Bucket(i, key), 10u);
    }
  }
}

TEST(HashFamilyTest, MembersAreIndependent) {
  HashFamily family(2, 1000, 42);
  // H1 and H2 should disagree on most keys for a large bucket space.
  int agreements = 0;
  for (uint64_t key = 0; key < 10000; ++key) {
    if (family.Bucket(0, key) == family.Bucket(1, key)) ++agreements;
  }
  // Expected ~ 10000/1000 = 10 collisions; allow generous slack.
  EXPECT_LT(agreements, 100);
}

TEST(HashFamilyTest, DeterministicAcrossInstances) {
  HashFamily a(3, 16, 7);
  HashFamily b(3, 16, 7);
  for (uint64_t key = 0; key < 256; ++key) {
    for (uint32_t i = 0; i < 3; ++i) {
      EXPECT_EQ(a.Bucket(i, key), b.Bucket(i, key));
    }
  }
}

TEST(HashFamilyTest, SeedSelectsDifferentFamilies) {
  HashFamily a(1, 64, 1);
  HashFamily b(1, 64, 2);
  int differences = 0;
  for (uint64_t key = 0; key < 1000; ++key) {
    if (a.Bucket(0, key) != b.Bucket(0, key)) ++differences;
  }
  EXPECT_GT(differences, 900);
}

TEST(HashFamilyTest, CandidatesMatchBuckets) {
  HashFamily family(4, 32, 5);
  std::vector<uint32_t> candidates;
  family.Candidates(123456, &candidates);
  ASSERT_EQ(candidates.size(), 4u);
  for (uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(candidates[i], family.Bucket(i, 123456));
  }
}

TEST(HashFamilyTest, SingleBucketDegenerates) {
  HashFamily family(2, 1, 42);
  EXPECT_EQ(family.Bucket(0, 999), 0u);
  EXPECT_EQ(family.Bucket(1, 999), 0u);
}

TEST(HashFamilyTest, StringKeysRouteConsistently) {
  HashFamily family(2, 8, 11);
  EXPECT_EQ(family.Bucket(0, "wordcount"), family.Bucket(0, "wordcount"));
  EXPECT_LT(family.Bucket(1, "wordcount"), 8u);
}

TEST(HashFamilyTest, UniformityAcrossBuckets) {
  // Chi-squared style sanity check: no bucket should be grossly over- or
  // under-loaded when hashing distinct keys.
  const uint32_t buckets = 16;
  const uint64_t keys = 160000;
  HashFamily family(1, buckets, 3);
  std::vector<uint64_t> counts(buckets, 0);
  for (uint64_t key = 0; key < keys; ++key) ++counts[family.Bucket(0, key)];
  double expected = static_cast<double>(keys) / buckets;
  for (uint64_t c : counts) {
    EXPECT_GT(c, expected * 0.9);
    EXPECT_LT(c, expected * 1.1);
  }
}

}  // namespace
}  // namespace pkgstream
