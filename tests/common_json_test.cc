// Copyright 2026 The pkgstream Authors.
// Unit tests for the JSON layer under the bench report / baseline pipeline:
// deterministic serialization, lossless round-trips, strict parsing.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>

#include "common/json.h"

namespace pkgstream {
namespace {

TEST(JsonNumberTest, IntegersPrintWithoutFraction) {
  EXPECT_EQ(FormatJsonNumber(0), "0");
  EXPECT_EQ(FormatJsonNumber(42), "42");
  EXPECT_EQ(FormatJsonNumber(-7), "-7");
  EXPECT_EQ(FormatJsonNumber(40000), "40000");
  EXPECT_EQ(FormatJsonNumber(1e15), "1000000000000000");
}

TEST(JsonNumberTest, DoublesRoundTrip) {
  for (double v : {0.1, 1.0 / 3.0, 6.02214076e23, 1.26076e-05,
                   -9.33095e-01, 2.2250738585072014e-308}) {
    const std::string text = FormatJsonNumber(v);
    auto parsed = JsonValue::Parse(text);
    ASSERT_TRUE(parsed.ok()) << text;
    EXPECT_EQ(parsed->number(), v) << text;
  }
}

TEST(JsonNumberTest, NonFiniteBecomesNull) {
  EXPECT_EQ(FormatJsonNumber(std::numeric_limits<double>::infinity()),
            "null");
  EXPECT_EQ(FormatJsonNumber(std::nan("")), "null");
}

TEST(JsonWriteTest, DeterministicAndIndented) {
  JsonValue doc = JsonValue::Object();
  doc.Set("b", JsonValue::Number(1));
  doc.Set("a", JsonValue::Str("x"));
  JsonValue arr = JsonValue::Array();
  arr.Append(JsonValue::Bool(true));
  arr.Append(JsonValue::Null());
  doc.Set("list", std::move(arr));
  // Insertion order preserved; two serializations are byte-identical.
  const std::string text = doc.ToString();
  EXPECT_EQ(text,
            "{\n  \"b\": 1,\n  \"a\": \"x\",\n  \"list\": [\n"
            "    true,\n    null\n  ]\n}\n");
  EXPECT_EQ(text, doc.ToString());
}

TEST(JsonWriteTest, StringEscaping) {
  EXPECT_EQ(JsonEscape("plain"), "\"plain\"");
  EXPECT_EQ(JsonEscape("a\"b\\c"), "\"a\\\"b\\\\c\"");
  EXPECT_EQ(JsonEscape("tab\there"), "\"tab\\there\"");
  EXPECT_EQ(JsonEscape(std::string("nul\x01") + "x"), "\"nul\\u0001x\"");
}

TEST(JsonRoundTripTest, WriteThenParseIsIdentity) {
  JsonValue doc = JsonValue::Object();
  doc.Set("bench", JsonValue::Str("bench_table2_imbalance"));
  doc.Set("seed", JsonValue::Number(42));
  JsonValue metrics = JsonValue::Object();
  metrics.Set("WP/PKG/W=5/avg_imbalance", JsonValue::Number(1.398999999998));
  metrics.Set("quote\"key", JsonValue::Number(-0.5));
  doc.Set("metrics", std::move(metrics));
  JsonValue empty_obj = JsonValue::Object();
  doc.Set("host_metrics", std::move(empty_obj));
  JsonValue empty_arr = JsonValue::Array();
  doc.Set("invariants", std::move(empty_arr));

  auto parsed = JsonValue::Parse(doc.ToString());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(*parsed, doc);
  EXPECT_EQ(parsed->ToString(), doc.ToString());
}

TEST(JsonParseTest, AcceptsEscapesAndNesting) {
  auto v = JsonValue::Parse(
      R"({"s": "a\nbA", "xs": [1, 2.5, -3e2], "o": {"k": false}})");
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_EQ(v->Find("s")->string_value(), "a\nbA");
  EXPECT_EQ(v->Find("xs")->size(), 3u);
  EXPECT_EQ(v->Find("xs")->at(2).number(), -300.0);
  EXPECT_EQ(v->Find("o")->Find("k")->bool_value(), false);
}

TEST(JsonParseTest, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "{\"a\":1,}", "tru", "1 2",
        "{\"a\":1}extra", "\"unterminated", "{\"a\":1,\"a\":2}",
        "{'a':1}", "[01a]", "\"bad\\q\"",
        // strtod accepts these; the JSON grammar does not.
        "+1", ".5", "1.", "01", "1e", "1e+", "-.5", "0x10"}) {
    auto v = JsonValue::Parse(bad);
    EXPECT_FALSE(v.ok()) << "accepted: " << bad;
  }
}

TEST(JsonParseTest, LookupHelpers) {
  auto v = JsonValue::Parse(R"({"n": 3, "s": "x", "o": {}})");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->NumberOr("n", -1), 3.0);
  EXPECT_EQ(v->NumberOr("missing", -1), -1.0);
  EXPECT_EQ(v->NumberOr("s", -1), -1.0);  // wrong type -> fallback
  EXPECT_EQ(v->StringOr("s", "?"), "x");
  EXPECT_EQ(v->StringOr("n", "?"), "?");
  EXPECT_NE(v->FindObject("o"), nullptr);
  EXPECT_EQ(v->FindObject("n"), nullptr);
}

TEST(JsonFileTest, WriteAndReadBack) {
  JsonValue doc = JsonValue::Object();
  doc.Set("k", JsonValue::Number(1.5));
  const std::string path = testing::TempDir() + "/pkgstream_json_test.json";
  ASSERT_TRUE(WriteJsonFile(doc, path).ok());
  auto back = ReadJsonFile(path);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(*back, doc);
  std::remove(path.c_str());
}

TEST(JsonFileTest, ErrorsSurfaceAsIOError) {
  JsonValue doc = JsonValue::Object();
  EXPECT_TRUE(
      WriteJsonFile(doc, "/nonexistent-dir-xyz/file.json").IsIOError());
  EXPECT_TRUE(ReadJsonFile("/nonexistent-dir-xyz/file.json").status()
                  .IsIOError());
}

}  // namespace
}  // namespace pkgstream
