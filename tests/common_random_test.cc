// Copyright 2026 The pkgstream Authors.
// Unit tests for the deterministic RNG stack.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"

namespace pkgstream {
namespace {

TEST(SplitMix64Test, DeterministicSequence) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.Next(), b.Next());
}

TEST(RngTest, DeterministicSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformIntRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.UniformInt(10), 10u);
  }
}

TEST(RngTest, UniformIntBoundOne) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.UniformInt(1), 0u);
}

TEST(RngTest, UniformIntIsRoughlyUniform) {
  Rng rng(99);
  std::vector<int> counts(8, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++counts[rng.UniformInt(8)];
  for (int c : counts) {
    EXPECT_GT(c, n / 8 * 0.95);
    EXPECT_LT(c, n / 8 * 1.05);
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformDoubleMeanIsHalf) {
  Rng rng(17);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.UniformDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(31);
  const int n = 200000;
  double sum = 0;
  double sum2 = 0;
  for (int i = 0; i < n; ++i) {
    double x = rng.Normal();
    sum += x;
    sum2 += x * x;
  }
  double mean = sum / n;
  double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, NormalWithParameters) {
  Rng rng(37);
  const int n = 100000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.Normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, LogNormalIsPositiveAndSkewed) {
  Rng rng(41);
  const int n = 50000;
  double max = 0;
  double sum = 0;
  for (int i = 0; i < n; ++i) {
    double x = rng.LogNormal(0.0, 1.0);
    EXPECT_GT(x, 0.0);
    sum += x;
    max = std::max(max, x);
  }
  // E[LN(0,1)] = exp(0.5) ~ 1.6487; the max should dwarf the mean (skew).
  EXPECT_NEAR(sum / n, std::exp(0.5), 0.1);
  EXPECT_GT(max, 10 * sum / n);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(43);
  const int n = 100000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, SeedsProduceDisjointStreams) {
  Rng a(100);
  Rng b(101);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

}  // namespace
}  // namespace pkgstream
