// Copyright 2026 The pkgstream Authors.
// The SIMD lane's bit-compatibility contract (common/hash_simd.h): every
// vector kernel must equal its scalar reference exactly, for every input —
// routing decisions ride on these bits, so a single divergent lane
// invalidates every committed baseline. Property tests sweep all member
// seeds, ragged batch lengths and adversarial keys; the vector-mod sweep
// mirrors FastModTest (exhaustive small divisors + adversarial large
// 32-bit divisors). Kernel-level tests skip on hosts without the matching
// ISA or in -DPKGSTREAM_DISABLE_SIMD builds; the dispatch-level tests
// (BucketBatch vs BucketBatchScalar) run everywhere — on a scalar host
// they degenerate to scalar-vs-scalar, which is exactly what the dispatch
// contract promises.

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "common/hash.h"
#include "common/hash_simd.h"
#include "common/simd.h"

namespace pkgstream {
namespace {

/// Adversarial key material: corners, sequential runs, high-bit patterns,
/// and fmix-decorrelated pseudo-random fill.
std::vector<uint64_t> AdversarialKeys(size_t random_fill) {
  std::vector<uint64_t> keys = {0,
                                1,
                                2,
                                ~0ULL,
                                ~0ULL - 1,
                                0x8000000000000000ULL,
                                0x7fffffffffffffffULL,
                                0x0123456789abcdefULL,
                                0x00000000ffffffffULL,
                                0xffffffff00000000ULL,
                                0xaaaaaaaaaaaaaaaaULL,
                                0x5555555555555555ULL};
  for (uint64_t k = 0; k < 256; ++k) keys.push_back(k);
  for (uint64_t k = 0; k < 64; ++k) keys.push_back(~0ULL - k);
  uint64_t r = 0x243f6a8885a308d3ULL;
  for (size_t i = 0; i < random_fill; ++i) keys.push_back(r = Fmix64(r + i));
  return keys;
}

constexpr uint32_t kSeeds[] = {0, 1, 42, 0xdeadbeefu, 0xffffffffu};

bool Avx2KernelsRunnable() {
  return simd::HasAvx2Kernels() && simd::CpuSupportsAvx2();
}

bool Avx512KernelsRunnable() {
  return simd::HasAvx512Kernels() && simd::CpuSupportsAvx512() &&
         simd::HasAvx2Kernels();  // the AVX-512 kernel delegates to AVX2
}

TEST(SimdDispatchTest, LevelIsConsistentWithGates) {
  const simd::SimdLevel level = simd::DetectSimdLevel();
  if (level == simd::SimdLevel::kAvx512) {
    EXPECT_TRUE(Avx512KernelsRunnable());
  } else if (level == simd::SimdLevel::kAvx2) {
    EXPECT_TRUE(Avx2KernelsRunnable());
  }
  // The pinned level must be one of the named levels either way.
  const char* name = simd::SimdLevelName(simd::ActiveSimdLevel());
  EXPECT_TRUE(std::string(name) == "scalar" || std::string(name) == "avx2" ||
              std::string(name) == "avx512");
  // The kernel selection agrees with the pinned level.
  if (simd::ActiveSimdLevel() == simd::SimdLevel::kScalar) {
    EXPECT_EQ(simd::ActiveBucketBatchKernel(), nullptr);
  } else {
    EXPECT_NE(simd::ActiveBucketBatchKernel(), nullptr);
  }
}

TEST(SimdDispatchTest, ForceScalarEnvironmentOverridesDetection) {
  // DetectSimdLevel re-reads the environment on every call (only
  // ActiveSimdLevel is pinned), so the override is directly testable.
  ASSERT_EQ(setenv("PKGSTREAM_FORCE_SCALAR", "1", /*overwrite=*/1), 0);
  EXPECT_EQ(simd::DetectSimdLevel(), simd::SimdLevel::kScalar);
  EXPECT_TRUE(simd::ForceScalarRequested());
  ASSERT_EQ(setenv("PKGSTREAM_FORCE_SCALAR", "0", 1), 0);
  EXPECT_FALSE(simd::ForceScalarRequested());
  ASSERT_EQ(unsetenv("PKGSTREAM_FORCE_SCALAR"), 0);
  EXPECT_FALSE(simd::ForceScalarRequested());
}

// ---------------------------------------------------------------------------
// Multi-key Murmur3: SIMD == scalar, bit for bit.
// ---------------------------------------------------------------------------

TEST(SimdMurmurTest, Avx2X4AndX8MatchScalarOnAdversarialKeys) {
  if (!Avx2KernelsRunnable()) GTEST_SKIP() << "no AVX2 kernels on this host";
  const std::vector<uint64_t> keys = AdversarialKeys(4096);
  uint64_t out[8];
  for (uint32_t seed : kSeeds) {
    for (size_t base = 0; base + 8 <= keys.size(); base += 8) {
      simd::Murmur3_64x4Avx2(keys.data() + base, seed, out);
      for (size_t j = 0; j < 4; ++j) {
        ASSERT_EQ(out[j], Murmur3_64(keys[base + j], seed))
            << "x4 key=" << keys[base + j] << " seed=" << seed;
      }
      simd::Murmur3_64x8Avx2(keys.data() + base, seed, out);
      for (size_t j = 0; j < 8; ++j) {
        ASSERT_EQ(out[j], Murmur3_64(keys[base + j], seed))
            << "x8 key=" << keys[base + j] << " seed=" << seed;
      }
    }
  }
}

TEST(SimdMurmurTest, Avx512X8MatchesScalarOnAdversarialKeys) {
  if (!Avx512KernelsRunnable()) {
    GTEST_SKIP() << "no AVX-512 kernels on this host";
  }
  const std::vector<uint64_t> keys = AdversarialKeys(4096);
  uint64_t out[8];
  for (uint32_t seed : kSeeds) {
    for (size_t base = 0; base + 8 <= keys.size(); base += 8) {
      simd::Murmur3_64x8Avx512(keys.data() + base, seed, out);
      for (size_t j = 0; j < 8; ++j) {
        ASSERT_EQ(out[j], Murmur3_64(keys[base + j], seed))
            << "key=" << keys[base + j] << " seed=" << seed;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Vector bucket reduction: == FastMod (== n % d) for every 32-bit divisor.
// Mirrors FastModTest: exhaustive small divisors, adversarial large ones.
// ---------------------------------------------------------------------------

std::vector<uint64_t> ModNumerators() {
  std::vector<uint64_t> numerators = {0, 1, 2, ~0ULL, ~0ULL - 1,
                                      0x8000000000000000ULL};
  uint64_t r = 0x13198a2e03707344ULL;
  for (int i = 0; i < 510; ++i) numerators.push_back(r = Fmix64(r + i));
  numerators.resize(numerators.size() & ~size_t{7});  // whole x8 groups
  return numerators;
}

void CheckVectorMod(uint64_t d, const std::vector<uint64_t>& numerators) {
  const FastMod mod(d);
  const uint32_t d32 = static_cast<uint32_t>(d);
  uint64_t out[8];
  for (size_t base = 0; base + 8 <= numerators.size(); base += 8) {
    if (Avx2KernelsRunnable()) {
      for (size_t half = 0; half < 8; half += 4) {
        simd::FastModX4Avx2(numerators.data() + base + half, mod.magic_hi(),
                            mod.magic_lo(), d32, out + half);
      }
      for (size_t j = 0; j < 8; ++j) {
        ASSERT_EQ(out[j], numerators[base + j] % d)
            << "avx2 n=" << numerators[base + j] << " d=" << d;
      }
    }
    if (Avx512KernelsRunnable()) {
      simd::FastModX8Avx512(numerators.data() + base, mod.magic_hi(),
                            mod.magic_lo(), d32, out);
      for (size_t j = 0; j < 8; ++j) {
        ASSERT_EQ(out[j], numerators[base + j] % d)
            << "avx512 n=" << numerators[base + j] << " d=" << d;
      }
    }
  }
  // Multiples and near-multiples of d are the carry corners.
  uint64_t corner[8] = {d,     d - 1, d + 1,         2 * d,
                        3 * d, ~0ULL, (~0ULL / d) * d, 0};
  if (Avx2KernelsRunnable()) {
    simd::FastModX4Avx2(corner, mod.magic_hi(), mod.magic_lo(), d32, out);
    simd::FastModX4Avx2(corner + 4, mod.magic_hi(), mod.magic_lo(), d32,
                        out + 4);
    for (size_t j = 0; j < 8; ++j) {
      ASSERT_EQ(out[j], corner[j] % d) << "avx2 corner n=" << corner[j]
                                       << " d=" << d;
    }
  }
}

TEST(SimdFastModTest, MatchesRemainderExhaustivelyOverSmallDivisors) {
  if (!Avx2KernelsRunnable() && !Avx512KernelsRunnable()) {
    GTEST_SKIP() << "no SIMD kernels on this host";
  }
  const std::vector<uint64_t> numerators = ModNumerators();
  for (uint64_t d = 1; d <= 2048; ++d) CheckVectorMod(d, numerators);
}

TEST(SimdFastModTest, MatchesRemainderForAdversarialLargeDivisors) {
  if (!Avx2KernelsRunnable() && !Avx512KernelsRunnable()) {
    GTEST_SKIP() << "no SIMD kernels on this host";
  }
  const std::vector<uint64_t> numerators = ModNumerators();
  std::vector<uint64_t> divisors = {(1ULL << 31) - 1, 1ULL << 31,
                                    (1ULL << 32) - 1, 1000000007ULL,
                                    0xfffffffdULL,    0x80000001ULL};
  uint64_t r = 0xa4093822299f31d0ULL;
  for (int i = 0; i < 64; ++i) {
    divisors.push_back((Fmix64(r + i) | 1) & 0xffffffffULL);  // odd, 32-bit
  }
  for (uint64_t d : divisors) {
    ASSERT_GE(d, 1u);
    CheckVectorMod(d, numerators);
  }
}

// ---------------------------------------------------------------------------
// BucketBatch through the dispatch layer: identical to the scalar reference
// for ragged lengths, every member seed, pow2 and general bucket counts.
// Runs on every host — the contract is level-independent.
// ---------------------------------------------------------------------------

TEST(SimdBucketBatchTest, DispatchMatchesScalarAcrossRaggedLengthsAndSeeds) {
  const std::vector<uint64_t> keys = AdversarialKeys(512);
  const size_t lengths[] = {1, 3, 4, 7, 8, 64, 511};
  for (uint32_t buckets : {1u, 2u, 5u, 16u, 100u, 1023u, 1024u, 65536u}) {
    HashFamily family(4, buckets, 0x9e3779b97f4a7c15ULL);
    std::vector<uint32_t> simd_out(keys.size(), 0);
    std::vector<uint32_t> scalar_out(keys.size(), 0);
    for (size_t n : lengths) {
      ASSERT_LE(n, keys.size());
      for (uint32_t member = 0; member < family.d(); ++member) {
        family.BucketBatch(member, keys.data(), simd_out.data(), n);
        family.BucketBatchScalar(member, keys.data(), scalar_out.data(), n);
        for (size_t j = 0; j < n; ++j) {
          ASSERT_EQ(simd_out[j], scalar_out[j])
              << "member=" << member << " n=" << n << " j=" << j
              << " buckets=" << buckets;
        }
      }
    }
  }
}

TEST(SimdBucketBatchTest, KernelsMatchScalarDirectlyWhenAvailable) {
  const std::vector<uint64_t> keys = AdversarialKeys(1016);  // 1028 -> x8
  const size_t n = keys.size() & ~size_t{7};
  for (uint32_t buckets : {1u, 5u, 16u, 1000u, 4096u}) {
    HashFamily family(2, buckets, 7);
    std::vector<uint32_t> expected(n);
    std::vector<uint32_t> got(n);
    const FastMod mod(buckets);
    for (uint32_t member = 0; member < family.d(); ++member) {
      family.BucketBatchScalar(member, keys.data(), expected.data(), n);
      const uint32_t seed = family.member_seed(member);
      if (Avx2KernelsRunnable()) {
        simd::BucketBatchAvx2(keys.data(), got.data(), n, seed,
                              mod.magic_hi(), mod.magic_lo(), buckets);
        for (size_t j = 0; j < n; ++j) {
          ASSERT_EQ(got[j], expected[j]) << "avx2 member=" << member
                                         << " buckets=" << buckets;
        }
      }
      if (Avx512KernelsRunnable()) {
        simd::BucketBatchAvx512(keys.data(), got.data(), n, seed,
                                mod.magic_hi(), mod.magic_lo(), buckets);
        for (size_t j = 0; j < n; ++j) {
          ASSERT_EQ(got[j], expected[j]) << "avx512 member=" << member
                                         << " buckets=" << buckets;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// The vectorized two-choice argmin: agrees with the sequential argmin when
// it commits, refuses on any cross-lane candidate collision.
// ---------------------------------------------------------------------------

TEST(SimdArgminTest, MatchesScalarSelectionOnConflictFreeRows) {
  if (!Avx2KernelsRunnable()) GTEST_SKIP() << "no AVX2 kernels on this host";
  std::vector<uint64_t> loads(1024);
  uint64_t r = 99;
  for (auto& l : loads) l = Fmix64(++r) % 1000;
  // Ties must pick the first candidate, and comparisons must be unsigned:
  // plant equal loads and sign-bit loads.
  loads[10] = loads[20];
  loads[30] = 0x8000000000000001ULL;
  loads[40] = 1;
  const uint32_t c0[4] = {10, 30, 100, 200};
  const uint32_t c1[4] = {20, 40, 101, 201};
  uint32_t out[4] = {~0u, ~0u, ~0u, ~0u};
  ASSERT_TRUE(simd::ArgminX4Avx2(c0, c1, loads.data(), out));
  for (int j = 0; j < 4; ++j) {
    const uint32_t expected =
        loads[c1[j]] < loads[c0[j]] ? c1[j] : c0[j];  // tie -> c0
    EXPECT_EQ(out[j], expected) << "row " << j;
  }
  EXPECT_EQ(out[0], c0[0]) << "equal loads must keep the first candidate";
  EXPECT_EQ(out[1], c1[1]) << "unsigned compare: 1 < 2^63+1";
}

TEST(SimdArgminTest, RefusesOnAnyCrossLaneCollision) {
  if (!Avx2KernelsRunnable()) GTEST_SKIP() << "no AVX2 kernels on this host";
  std::vector<uint64_t> loads(64, 5);
  uint32_t out[4];
  // Same-lane c0==c1 is allowed (the tie is row-local)...
  {
    const uint32_t c0[4] = {1, 2, 3, 4};
    const uint32_t c1[4] = {1, 6, 7, 8};
    EXPECT_TRUE(simd::ArgminX4Avx2(c0, c1, loads.data(), out));
    EXPECT_EQ(out[0], 1u);
  }
  // ...but every cross-lane pairing must refuse: c0/c0, c1/c1 and c0/c1
  // collisions at every lane distance.
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      if (a == b) continue;
      uint32_t c0[4] = {1, 2, 3, 4};
      uint32_t c1[4] = {5, 6, 7, 8};
      c0[a] = c0[b];
      EXPECT_FALSE(simd::ArgminX4Avx2(c0, c1, loads.data(), out))
          << "c0[" << a << "]==c0[" << b << "]";
      uint32_t d0[4] = {1, 2, 3, 4};
      uint32_t d1[4] = {5, 6, 7, 8};
      d1[a] = d1[b];
      EXPECT_FALSE(simd::ArgminX4Avx2(d0, d1, loads.data(), out))
          << "c1[" << a << "]==c1[" << b << "]";
      uint32_t e0[4] = {1, 2, 3, 4};
      uint32_t e1[4] = {5, 6, 7, 8};
      e1[a] = e0[b];
      EXPECT_FALSE(simd::ArgminX4Avx2(e0, e1, loads.data(), out))
          << "c1[" << a << "]==c0[" << b << "]";
    }
  }
}

/// Scalar reference for one row of the wide argmin: the lowest-column
/// candidate with the minimum (unsigned) load — exactly the sequential
/// greedy-d selection when no OnSend lands between the rows.
uint32_t ScalarRowArgmin(const uint32_t (*cand)[4], uint32_t d,
                         const uint64_t* loads, int row) {
  uint32_t best = cand[0][row];
  for (uint32_t c = 1; c < d; ++c) {
    if (loads[cand[c][row]] < loads[best]) best = cand[c][row];
  }
  return best;
}

constexpr uint32_t kWideChoices[] = {2, 3, 4, 5, 6, 7, 8};

TEST(SimdWideArgminTest, MatchesScalarSelectionOnRandomConflictFreeRows) {
  if (!Avx2KernelsRunnable()) GTEST_SKIP() << "no AVX2 kernels on this host";
  for (uint32_t d : kWideChoices) {
    for (uint32_t seed : kSeeds) {
      std::vector<uint64_t> loads(4096);
      uint64_t r = seed;
      for (auto& l : loads) l = Fmix64(++r);
      for (int trial = 0; trial < 64; ++trial) {
        // 4*d cross-row-distinct buckets via a keyed injection of the
        // (row, col) grid into [0, 4096).
        uint32_t cand[simd::kMaxWideArgminChoices][4];
        const uint32_t* cols[simd::kMaxWideArgminChoices];
        for (uint32_t c = 0; c < d; ++c) {
          for (int row = 0; row < 4; ++row) {
            cand[c][row] = static_cast<uint32_t>(
                (Fmix64(seed * 8191 + trial) + 97 * (4 * c + row)) % 4096);
          }
          cols[c] = cand[c];
        }
        uint32_t out[4] = {~0u, ~0u, ~0u, ~0u};
        // 97 is coprime to 4096 and 4*d*97 < 4096: all candidates distinct.
        ASSERT_TRUE(simd::ArgminX4WideAvx2(cols, d, loads.data(), out));
        for (int row = 0; row < 4; ++row) {
          EXPECT_EQ(out[row], ScalarRowArgmin(cand, d, loads.data(), row))
              << "d=" << d << " seed=" << seed << " trial=" << trial
              << " row=" << row;
        }
      }
    }
  }
}

TEST(SimdWideArgminTest, TiesKeepLowestColumnAndCompareUnsigned) {
  if (!Avx2KernelsRunnable()) GTEST_SKIP() << "no AVX2 kernels on this host";
  for (uint32_t d : kWideChoices) {
    std::vector<uint64_t> loads(256, 7);
    // Row 0: all-equal loads -> column 0 must win.
    // Row 1: strictly decreasing over columns -> last column must win.
    // Row 2: sign-bit load in column 0, small load in the last column ->
    //        unsigned compare must prefer the small one.
    // Row 3: minimum planted mid-row, later column re-ties it -> the
    //        earlier column keeps the win.
    uint32_t cand[simd::kMaxWideArgminChoices][4];
    const uint32_t* cols[simd::kMaxWideArgminChoices];
    for (uint32_t c = 0; c < d; ++c) {
      for (int row = 0; row < 4; ++row) cand[c][row] = 4 * c + row;
      cols[c] = cand[c];
      loads[cand[c][1]] = 100 - c;
      loads[cand[c][3]] = (c == d / 2 || c == d - 1) ? 1 : 50;
    }
    loads[cand[0][2]] = 0x8000000000000001ULL;
    loads[cand[d - 1][2]] = 2;
    uint32_t out[4] = {~0u, ~0u, ~0u, ~0u};
    ASSERT_TRUE(simd::ArgminX4WideAvx2(cols, d, loads.data(), out));
    EXPECT_EQ(out[0], cand[0][0]) << "d=" << d << ": all-tie keeps column 0";
    EXPECT_EQ(out[1], cand[d - 1][1]) << "d=" << d << ": strict min wins";
    EXPECT_EQ(out[2], cand[d == 2 ? 1 : d - 1][2])
        << "d=" << d << ": unsigned compare, 2 < 2^63+1";
    EXPECT_EQ(out[3], cand[d / 2 == 0 ? d - 1 : d / 2][3])
        << "d=" << d << ": re-tie keeps the earlier column";
  }
}

TEST(SimdWideArgminTest, SameRowDuplicatesAcrossColumnsAreAllowed) {
  if (!Avx2KernelsRunnable()) GTEST_SKIP() << "no AVX2 kernels on this host";
  // A row whose d candidates collide with each other (but with no other
  // row) is still independent of the other rows: must commit, and the
  // duplicate must not confuse the tie-break. Exercises every d including
  // the odd ones, whose upper-half padding duplicates the last column.
  for (uint32_t d : kWideChoices) {
    std::vector<uint64_t> loads(64, 9);
    uint32_t cand[simd::kMaxWideArgminChoices][4];
    const uint32_t* cols[simd::kMaxWideArgminChoices];
    for (uint32_t c = 0; c < d; ++c) {
      // Row 1: every column holds bucket 33. Other rows: distinct.
      cand[c][0] = 4 * c + 0;
      cand[c][1] = 33;
      cand[c][2] = 4 * c + 2;
      cand[c][3] = 4 * c + 3;
      cols[c] = cand[c];
    }
    loads[33] = 1;
    uint32_t out[4] = {~0u, ~0u, ~0u, ~0u};
    ASSERT_TRUE(simd::ArgminX4WideAvx2(cols, d, loads.data(), out))
        << "d=" << d << ": same-row duplicates must not refuse";
    EXPECT_EQ(out[1], 33u);
    EXPECT_EQ(out[0], cand[0][0]) << "d=" << d;
    EXPECT_EQ(out[2], cand[0][2]) << "d=" << d;
  }
}

TEST(SimdWideArgminTest, RefusesOnEveryCrossRowCollision) {
  if (!Avx2KernelsRunnable()) GTEST_SKIP() << "no AVX2 kernels on this host";
  std::vector<uint64_t> loads(512, 5);
  for (uint32_t d : kWideChoices) {
    // Exhaustive: for every pair of grid positions in different rows,
    // plant exactly one collision and demand a refusal.
    for (uint32_t ca = 0; ca < d; ++ca) {
      for (int ra = 0; ra < 4; ++ra) {
        for (uint32_t cb = 0; cb < d; ++cb) {
          for (int rb = 0; rb < 4; ++rb) {
            if (ra == rb) continue;
            uint32_t cand[simd::kMaxWideArgminChoices][4];
            const uint32_t* cols[simd::kMaxWideArgminChoices];
            for (uint32_t c = 0; c < d; ++c) {
              for (int row = 0; row < 4; ++row) cand[c][row] = 4 * c + row;
              cols[c] = cand[c];
            }
            cand[ca][ra] = cand[cb][rb];
            uint32_t out[4];
            EXPECT_FALSE(simd::ArgminX4WideAvx2(cols, d, loads.data(), out))
                << "d=" << d << ": col" << ca << "[" << ra << "]==col" << cb
                << "[" << rb << "]";
          }
        }
      }
    }
  }
}

TEST(SimdWideArgminTest, DTwoAgreesWithArgminX4Avx2) {
  if (!Avx2KernelsRunnable()) GTEST_SKIP() << "no AVX2 kernels on this host";
  // ArgminX4Avx2 is the d = 2 instance of the wide contract: both kernels
  // must agree on accept/refuse AND on every committed decision, for
  // conflict-free, same-row-duplicate, and colliding inputs alike.
  std::vector<uint64_t> loads(1024);
  uint64_t r = 17;
  for (auto& l : loads) l = Fmix64(++r) % 64;  // dense ties
  for (int trial = 0; trial < 512; ++trial) {
    uint32_t c0[4];
    uint32_t c1[4];
    uint64_t s = Fmix64(0xabcd + trial);
    for (int row = 0; row < 4; ++row) {
      // Small modulus so collisions (same-row and cross-row) are common.
      c0[row] = static_cast<uint32_t>(Fmix64(s + row) % 11);
      c1[row] = static_cast<uint32_t>(Fmix64(s + 8 + row) % 11);
    }
    const uint32_t* cols[2] = {c0, c1};
    uint32_t narrow_out[4] = {~0u, ~0u, ~0u, ~0u};
    uint32_t wide_out[4] = {~0u, ~0u, ~0u, ~0u};
    const bool narrow = simd::ArgminX4Avx2(c0, c1, loads.data(), narrow_out);
    const bool wide = simd::ArgminX4WideAvx2(cols, 2, loads.data(), wide_out);
    ASSERT_EQ(narrow, wide) << "trial " << trial;
    if (narrow) {
      for (int row = 0; row < 4; ++row) {
        EXPECT_EQ(narrow_out[row], wide_out[row])
            << "trial " << trial << " row " << row;
      }
    }
  }
}

}  // namespace
}  // namespace pkgstream
