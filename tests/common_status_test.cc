// Copyright 2026 The pkgstream Authors.
// Unit tests for Status and Result<T>.

#include <gtest/gtest.h>

#include <sstream>

#include "common/result.h"
#include "common/status.h"

namespace pkgstream {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ(Status::OK().ToString(), "OK");
}

TEST(StatusTest, InvalidArgument) {
  Status s = Status::InvalidArgument("bad W");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad W");
}

TEST(StatusTest, EveryFactoryMapsToItsCode) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  Status s = Status::NotFound("no dataset XX");
  EXPECT_EQ(s.ToString(), "NotFound: no dataset XX");
}

TEST(StatusTest, StreamOperator) {
  std::ostringstream os;
  os << Status::IOError("disk gone");
  EXPECT_EQ(os.str(), "IOError: disk gone");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_NE(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_NE(Status::NotFound("a"), Status::Internal("a"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInvalidArgument),
            "InvalidArgument");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIOError), "IOError");
}

Status FailsWhenNegative(int x) {
  PKGSTREAM_RETURN_NOT_OK(x < 0 ? Status::OutOfRange("negative")
                                : Status::OK());
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(FailsWhenNegative(3).ok());
  EXPECT_TRUE(FailsWhenNegative(-1).IsOutOfRange());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, ValueOrFallback) {
  Result<int> ok(7);
  Result<int> err(Status::Internal("x"));
  EXPECT_EQ(ok.ValueOr(0), 7);
  EXPECT_EQ(err.ValueOr(0), 0);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 5);
}

TEST(ResultTest, ArrowAccess) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r->size(), 5u);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  PKGSTREAM_ASSIGN_OR_RETURN(int h, Half(x));
  PKGSTREAM_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnChains) {
  Result<int> q = Quarter(8);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(*q, 2);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  EXPECT_TRUE(Quarter(6).status().IsInvalidArgument());  // 6/2=3 is odd
  EXPECT_TRUE(Quarter(5).status().IsInvalidArgument());
}

}  // namespace
}  // namespace pkgstream
