// Copyright 2026 The pkgstream Authors.
// Unit tests for the table renderer and numeric formatting.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/table.h"

namespace pkgstream {
namespace {

TEST(TableTest, HeaderOnly) {
  Table t({"a", "bb"});
  std::ostringstream os;
  t.Print(os);
  EXPECT_NE(os.str().find("a"), std::string::npos);
  EXPECT_NE(os.str().find("bb"), std::string::npos);
  EXPECT_EQ(t.NumRows(), 0u);
  EXPECT_EQ(t.NumCols(), 2u);
}

TEST(TableTest, RowsAreAligned) {
  Table t({"name", "value"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer", "22"});
  std::ostringstream os;
  t.Print(os);
  std::string out = os.str();
  // All lines (header, separator, rows) end flush; column 2 starts at the
  // same offset on each content line.
  auto first_line_end = out.find('\n');
  ASSERT_NE(first_line_end, std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
}

TEST(TableTest, CsvEscaping) {
  Table t({"k", "v"});
  t.AddRow({"a,b", "he said \"hi\""});
  t.AddRow({"plain", "line\nbreak"});
  std::ostringstream os;
  t.PrintCsv(os);
  std::string out = os.str();
  EXPECT_NE(out.find("\"a,b\""), std::string::npos);
  EXPECT_NE(out.find("\"he said \"\"hi\"\"\""), std::string::npos);
  EXPECT_NE(out.find("\"line\nbreak\""), std::string::npos);
}

TEST(TableTest, CsvRoundTripToFile) {
  Table t({"w", "imb"});
  t.AddRow({"5", "0.8"});
  std::string path = testing::TempDir() + "/pkgstream_table_test.csv";
  ASSERT_TRUE(t.WriteCsv(path).ok());
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "w,imb");
  std::getline(f, line);
  EXPECT_EQ(line, "5,0.8");
  std::remove(path.c_str());
}

TEST(TableTest, WriteCsvBadPathFails) {
  Table t({"a"});
  EXPECT_TRUE(t.WriteCsv("/nonexistent-dir-xyz/file.csv").IsIOError());
}

namespace {

/// Minimal RFC-4180 reader for the round-trip test: splits `text` into
/// records of fields, honoring quoted fields with doubled quotes and
/// embedded commas/newlines.
std::vector<std::vector<std::string>> ParseCsv(const std::string& text) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> record;
  std::string field;
  bool quoted = false;
  size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      record.push_back(std::move(field));
      field.clear();
    } else if (c == '\n') {
      record.push_back(std::move(field));
      field.clear();
      records.push_back(std::move(record));
      record.clear();
    } else {
      field += c;
    }
    ++i;
  }
  return records;
}

}  // namespace

TEST(TableTest, CsvRoundTripPreservesHostileTechniqueNames) {
  // Technique names with every character class the writer must escape:
  // commas, quotes, both, and an embedded newline.
  const std::vector<std::vector<std::string>> rows = {
      {"PKG, the \"partial\" one", "0.8"},
      {"KG+rebalance(T=2,000)", "1.4e6"},
      {"plain", "said \"\"twice\"\""},
      {"multi\nline", ","},
      {"", "\""},
  };
  Table t({"Technique, quoted \"name\"", "avg I(t)/m"});
  for (const auto& row : rows) t.AddRow(row);

  const std::string path = testing::TempDir() + "/pkgstream_roundtrip.csv";
  ASSERT_TRUE(t.WriteCsv(path).ok());
  std::ifstream f(path);
  std::stringstream buffer;
  buffer << f.rdbuf();
  auto records = ParseCsv(buffer.str());

  ASSERT_EQ(records.size(), rows.size() + 1);  // header + data rows
  EXPECT_EQ(records[0],
            (std::vector<std::string>{"Technique, quoted \"name\"",
                                      "avg I(t)/m"}));
  for (size_t r = 0; r < rows.size(); ++r) {
    EXPECT_EQ(records[r + 1], rows[r]) << "row " << r;
  }
  std::remove(path.c_str());
}

TEST(FormatCompactTest, SmallNumbersUseFixed) {
  EXPECT_EQ(FormatCompact(0.8), "0.8");
  EXPECT_EQ(FormatCompact(92.7), "92.7");
  EXPECT_EQ(FormatCompact(15.0), "15");
  EXPECT_EQ(FormatCompact(0.0), "0");
}

TEST(FormatCompactTest, LargeNumbersUseScientific) {
  EXPECT_EQ(FormatCompact(1600000.0), "1.6e6");
  EXPECT_EQ(FormatCompact(2.0e7), "2.0e7");
  EXPECT_EQ(FormatCompact(4.1e7), "4.1e7");
}

TEST(FormatCompactTest, TinyNumbersUseScientific) {
  EXPECT_EQ(FormatCompact(1e-8), "1.0e-8");
  EXPECT_EQ(FormatCompact(2.5e-4), "2.5e-4");
}

TEST(FormatCompactTest, NegativeValues) {
  EXPECT_EQ(FormatCompact(-1600000.0), "-1.6e6");
  EXPECT_EQ(FormatCompact(-0.5), "-0.5");
}

TEST(FormatCompactTest, NonFinite) {
  EXPECT_EQ(FormatCompact(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(FormatCompact(-std::numeric_limits<double>::infinity()), "-inf");
  EXPECT_EQ(FormatCompact(std::nan("")), "nan");
}

TEST(FormatFixedTest, Precision) {
  EXPECT_EQ(FormatFixed(3.14159, 2), "3.14");
  EXPECT_EQ(FormatFixed(3.14159, 0), "3");
}

TEST(FormatWithCommasTest, GroupsThousands) {
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(1000), "1,000");
  EXPECT_EQ(FormatWithCommas(1234567), "1,234,567");
  EXPECT_EQ(FormatWithCommas(22000000), "22,000,000");
}

}  // namespace
}  // namespace pkgstream
