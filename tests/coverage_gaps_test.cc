// Copyright 2026 The pkgstream Authors.
// Targeted tests for corners the main suites do not reach: multi-instance
// spouts in the event simulator, word-encoding boundaries, diamond
// topologies under the threaded runtime, formatter rounding edges.

#include <gtest/gtest.h>

#include <atomic>

#include "apps/wordcount.h"
#include "common/table.h"
#include "engine/event_sim.h"
#include "engine/threaded_runtime.h"
#include "workload/static_distribution.h"
#include "workload/words.h"
#include "workload/zipf.h"

namespace pkgstream {
namespace {

TEST(EventSimMultiSourceTest, RootsSplitAcrossSpoutInstances) {
  apps::WordCountTopology wc = apps::MakeWordCountTopology(
      partition::Technique::kPkgLocal, /*sources=*/4, /*workers=*/3, 0, 5,
      42);
  auto dist = std::make_shared<workload::StaticDistribution>(
      workload::ZipfWeights(200, 1.0), "zipf");
  workload::IidKeyStream stream(dist, 7);
  engine::EventSimOptions options;
  options.messages = 8000;
  options.source_service_us = 10;
  options.worker_overhead_us = 20;
  options.network_delay_us = 100;
  auto sim =
      engine::EventSimulator::Create(&wc.topology, &stream, options);
  ASSERT_TRUE(sim.ok());
  engine::EventSimReport report = (*sim)->Run();
  EXPECT_EQ(report.roots_acked, 8000u);
  // All four spout instances emitted a similar share.
  ASSERT_EQ(report.processed[wc.spout.index].size(), 4u);
  for (uint64_t emitted : report.processed[wc.spout.index]) {
    EXPECT_GT(emitted, 8000u / 4 / 2);
  }
  // Aggregate spout emissions equal the roots.
  uint64_t total = 0;
  for (uint64_t e : report.processed[wc.spout.index]) total += e;
  EXPECT_EQ(total, 8000u);
}

TEST(EventSimMultiSourceTest, FourSourcesFasterThanOne) {
  // With the spout as bottleneck, parallel spout instances raise
  // throughput (each has its own service pipeline).
  auto run = [](uint32_t sources) {
    apps::WordCountTopology wc = apps::MakeWordCountTopology(
        partition::Technique::kShuffle, sources, 8, 0, 5, 42);
    auto dist = std::make_shared<workload::StaticDistribution>(
        workload::ZipfWeights(200, 0.5), "zipf");
    workload::IidKeyStream stream(dist, 7);
    engine::EventSimOptions options;
    options.messages = 20000;
    options.source_service_us = 200;  // slow spout
    options.worker_overhead_us = 10;
    auto sim =
        engine::EventSimulator::Create(&wc.topology, &stream, options);
    EXPECT_TRUE(sim.ok());
    return (*sim)->Run().throughput_per_s;
  };
  EXPECT_GT(run(4), run(1) * 2.5);
}

TEST(WordsBoundaryTest, SyllableSuffixBoundary) {
  // 5625 syllables per suffix block; check keys straddling block edges.
  for (Key k : {uint64_t{64}, uint64_t{64 + 5624}, uint64_t{64 + 5625},
                uint64_t{64 + 2 * 5625 - 1}, uint64_t{64 + 2 * 5625}}) {
    Key back = 0;
    ASSERT_TRUE(workload::WordToKey(workload::KeyToWord(k), &back));
    EXPECT_EQ(back, k);
  }
}

TEST(WordsBoundaryTest, LargeKeysStillBijective) {
  for (Key k = 1000000; k < 1000100; ++k) {
    Key back = 0;
    ASSERT_TRUE(workload::WordToKey(workload::KeyToWord(k), &back));
    EXPECT_EQ(back, k);
  }
}

TEST(ThreadedRuntimeDiamondTest, FanOutFanInConserves) {
  // spout -> {left, right} -> sink: every message takes both branches, so
  // the sink must see exactly 2x the injected count.
  engine::Topology topo;
  engine::NodeId spout = topo.AddSpout("s", 1);

  class Forward final : public engine::Operator {
   public:
    void Process(const engine::Message& m, engine::Emitter* out) override {
      out->Emit(m);
    }
  };
  class Count final : public engine::Operator {
   public:
    void Process(const engine::Message&, engine::Emitter*) override {
      ++seen;
    }
    std::atomic<uint64_t> seen{0};
  };

  engine::NodeId left = topo.AddOperator(
      "left", [](uint32_t) { return std::make_unique<Forward>(); }, 2);
  engine::NodeId right = topo.AddOperator(
      "right", [](uint32_t) { return std::make_unique<Forward>(); }, 3);
  Count* sink_op = nullptr;
  engine::NodeId sink = topo.AddOperator(
      "sink",
      [&sink_op](uint32_t) {
        auto op = std::make_unique<Count>();
        sink_op = op.get();
        return op;
      },
      1);
  ASSERT_TRUE(topo.Connect(spout, left, partition::Technique::kShuffle).ok());
  ASSERT_TRUE(topo.Connect(spout, right, partition::Technique::kShuffle).ok());
  ASSERT_TRUE(topo.Connect(left, sink, partition::Technique::kHashing).ok());
  ASSERT_TRUE(topo.Connect(right, sink, partition::Technique::kHashing).ok());

  auto rt = engine::ThreadedRuntime::Create(&topo);
  ASSERT_TRUE(rt.ok());
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    engine::Message m;
    m.key = static_cast<Key>(i % 13);
    (*rt)->Inject(spout, 0, m);
  }
  (*rt)->Finish();
  ASSERT_NE(sink_op, nullptr);
  EXPECT_EQ(sink_op->seen.load(), 2ull * n);
}

TEST(FormatCompactEdgeTest, RoundingBoundaries) {
  EXPECT_EQ(FormatCompact(99.96), "100");   // rounds across the threshold
  EXPECT_EQ(FormatCompact(0.9996), "1");    // strips to integer
  EXPECT_EQ(FormatCompact(0.001), "0.001");
  EXPECT_EQ(FormatCompact(0.0009999), "1.0e-3");
}

}  // namespace
}  // namespace pkgstream
