// Copyright 2026 The pkgstream Authors.
// InjectBatch ≡ Inject: batch injection must be observationally identical
// to per-message injection — same routing decisions (RouteBatch's
// bit-equivalence contract), same timestamps and tick firings
// (LogicalRuntime), same per-key totals (both runtimes).

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/hash.h"
#include "engine/logical_runtime.h"
#include "engine/threaded_runtime.h"

namespace pkgstream {
namespace engine {
namespace {

/// Counts per-key messages and Tick calls; emits (key, count) on Close.
class CountAndTickOp final : public Operator {
 public:
  void Process(const Message& msg, Emitter*) override {
    std::lock_guard<std::mutex> lock(mu_);
    ++counts_[msg.key];
  }
  void Tick(uint64_t, Emitter*) override { ++ticks_; }
  void Close(Emitter* out) override {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [key, count] : counts_) {
      Message m;
      m.key = key;
      m.i64 = static_cast<int64_t>(count);
      out->Emit(m);
    }
  }

  std::map<Key, uint64_t> counts() {
    std::lock_guard<std::mutex> lock(mu_);
    return counts_;
  }
  uint64_t ticks() const { return ticks_; }

 private:
  std::mutex mu_;
  std::map<Key, uint64_t> counts_;
  uint64_t ticks_ = 0;
};

/// Aggregates the Close-time (key, count) records.
class TotalsSink final : public Operator {
 public:
  void Process(const Message& msg, Emitter*) override {
    std::lock_guard<std::mutex> lock(mu_);
    totals_[msg.key] += static_cast<uint64_t>(msg.i64);
  }
  std::map<Key, uint64_t> totals() {
    std::lock_guard<std::mutex> lock(mu_);
    return totals_;
  }

 private:
  std::mutex mu_;
  std::map<Key, uint64_t> totals_;
};

constexpr uint32_t kSources = 2;
constexpr uint32_t kWorkers = 4;
constexpr size_t kMessages = 1200;

Key FeedKey(size_t i) { return Fmix64(0xfeed ^ i) % 97; }

struct Built {
  Topology topology;
  NodeId spout;
  NodeId counter;
  NodeId sink;
  std::vector<CountAndTickOp*> counters;
  TotalsSink* sink_op = nullptr;
};

std::unique_ptr<Built> Build(partition::Technique technique,
                             uint64_t tick_period) {
  auto b = std::make_unique<Built>();
  b->spout = b->topology.AddSpout("src", kSources);
  b->counters.resize(kWorkers, nullptr);
  auto* counters = &b->counters;
  b->counter = b->topology.AddOperator(
      "count",
      [counters](uint32_t i) {
        auto op = std::make_unique<CountAndTickOp>();
        (*counters)[i] = op.get();
        return op;
      },
      kWorkers);
  TotalsSink** sink_slot = &b->sink_op;
  b->sink = b->topology.AddOperator(
      "sink",
      [sink_slot](uint32_t) {
        auto op = std::make_unique<TotalsSink>();
        *sink_slot = op.get();
        return op;
      },
      1);
  if (tick_period > 0) b->topology.SetTickPeriod(b->counter, tick_period);
  EXPECT_TRUE(b->topology.Connect(b->spout, b->counter, technique).ok());
  EXPECT_TRUE(
      b->topology
          .Connect(b->counter, b->sink, partition::Technique::kHashing)
          .ok());
  return b;
}

/// The injection schedule both drivers replay: alternating per-source
/// chunks of varying size (1, 7, 64, ragged remainder).
struct Chunk {
  SourceId source;
  size_t begin;
  size_t len;
};

std::vector<Chunk> Schedule() {
  const size_t sizes[] = {1, 7, 64, 29};
  std::vector<Chunk> chunks;
  size_t pos = 0;
  size_t i = 0;
  while (pos < kMessages) {
    const size_t len = std::min(sizes[i % 4], kMessages - pos);
    chunks.push_back(
        Chunk{static_cast<SourceId>(i % kSources), pos, len});
    pos += len;
    ++i;
  }
  return chunks;
}

class BatchInjectEquivalenceTest
    : public testing::TestWithParam<partition::Technique> {};

TEST_P(BatchInjectEquivalenceTest, LogicalRuntimeMatchesScalarInjection) {
  auto scalar_build = Build(GetParam(), /*tick_period=*/64);
  auto batch_build = Build(GetParam(), /*tick_period=*/64);
  auto scalar_rt = LogicalRuntime::Create(&scalar_build->topology);
  auto batch_rt = LogicalRuntime::Create(&batch_build->topology);
  ASSERT_TRUE(scalar_rt.ok() && batch_rt.ok());

  for (const Chunk& chunk : Schedule()) {
    std::vector<Message> msgs(chunk.len);
    for (size_t j = 0; j < chunk.len; ++j) {
      msgs[j].key = FeedKey(chunk.begin + j);
      msgs[j].i64 = static_cast<int64_t>(chunk.begin + j);
    }
    for (const Message& m : msgs) {
      (*scalar_rt)->Inject(scalar_build->spout, chunk.source, m);
    }
    (*batch_rt)->InjectBatch(batch_build->spout, chunk.source, msgs.data(),
                             msgs.size());
  }
  (*scalar_rt)->Finish();
  (*batch_rt)->Finish();

  for (uint32_t w = 0; w < kWorkers; ++w) {
    EXPECT_EQ(batch_build->counters[w]->counts(),
              scalar_build->counters[w]->counts())
        << "per-key counts diverged on worker " << w;
    EXPECT_GT(scalar_build->counters[w]->ticks(), 0u);
    EXPECT_EQ(batch_build->counters[w]->ticks(),
              scalar_build->counters[w]->ticks())
        << "tick firings diverged on worker " << w;
  }
  EXPECT_EQ(batch_build->sink_op->totals(), scalar_build->sink_op->totals());

  const auto scalar_metrics = (*scalar_rt)->Metrics();
  const auto batch_metrics = (*batch_rt)->Metrics();
  ASSERT_EQ(scalar_metrics.size(), batch_metrics.size());
  for (size_t n = 0; n < scalar_metrics.size(); ++n) {
    EXPECT_EQ(batch_metrics[n].processed, scalar_metrics[n].processed);
  }
}

TEST_P(BatchInjectEquivalenceTest, ThreadedRuntimeMatchesScalarInjection) {
  auto scalar_build = Build(GetParam(), /*tick_period=*/0);
  auto batch_build = Build(GetParam(), /*tick_period=*/0);
  ThreadedRuntimeOptions options;
  options.emit_batch = 8;
  options.queue_capacity = 64;
  auto scalar_rt = ThreadedRuntime::Create(&scalar_build->topology, options);
  auto batch_rt = ThreadedRuntime::Create(&batch_build->topology, options);
  ASSERT_TRUE(scalar_rt.ok() && batch_rt.ok());

  for (const Chunk& chunk : Schedule()) {
    std::vector<Message> msgs(chunk.len);
    for (size_t j = 0; j < chunk.len; ++j) {
      msgs[j].key = FeedKey(chunk.begin + j);
    }
    for (const Message& m : msgs) {
      (*scalar_rt)->Inject(scalar_build->spout, chunk.source, m);
    }
    (*batch_rt)->InjectBatch(batch_build->spout, chunk.source, msgs.data(),
                             msgs.size());
  }
  (*scalar_rt)->Finish();
  (*batch_rt)->Finish();

  for (uint32_t w = 0; w < kWorkers; ++w) {
    EXPECT_EQ(batch_build->counters[w]->counts(),
              scalar_build->counters[w]->counts())
        << "per-key counts diverged on worker " << w;
  }
  EXPECT_EQ(batch_build->sink_op->totals(), scalar_build->sink_op->totals());
  EXPECT_EQ((*batch_rt)->Processed(batch_build->counter),
            (*scalar_rt)->Processed(scalar_build->counter));
}

INSTANTIATE_TEST_SUITE_P(
    Techniques, BatchInjectEquivalenceTest,
    testing::Values(partition::Technique::kHashing,
                    partition::Technique::kShuffle,
                    partition::Technique::kPkgLocal,
                    partition::Technique::kPkgGlobal),
    [](const testing::TestParamInfo<partition::Technique>& info) {
      std::string name = partition::TechniqueName(info.param);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace engine
}  // namespace pkgstream
