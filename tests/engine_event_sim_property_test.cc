// Copyright 2026 The pkgstream Authors.
// Parameterized conservation properties of the discrete-event cluster
// simulator: whatever the technique and service costs, messages are
// neither lost nor duplicated, latency respects physical lower bounds,
// and utilizations stay physical.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "apps/wordcount.h"
#include "engine/event_sim.h"
#include "workload/static_distribution.h"
#include "workload/zipf.h"

namespace pkgstream {
namespace engine {
namespace {

using SimCase = std::tuple<partition::Technique, uint64_t /*extra_us*/,
                           uint32_t /*max_pending*/>;

class EventSimPropertyTest : public testing::TestWithParam<SimCase> {
 protected:
  static constexpr uint64_t kMessages = 8000;

  EventSimReport Run() {
    auto [technique, extra_us, max_pending] = GetParam();
    wc_ = apps::MakeWordCountTopology(technique, 1, 5, 0, 5, 42);
    auto dist = std::make_shared<workload::StaticDistribution>(
        workload::ZipfWeights(500, 1.1), "zipf");
    stream_ = std::make_unique<workload::IidKeyStream>(dist, 7);
    EventSimOptions options;
    options.messages = kMessages;
    options.source_service_us = 20;
    options.worker_overhead_us = 30;
    options.node_extra_service_us.assign(wc_.topology.nodes().size(), 0);
    options.node_extra_service_us[wc_.counter.index] = extra_us;
    options.network_delay_us = 200;
    options.max_pending = max_pending;
    auto sim =
        EventSimulator::Create(&wc_.topology, stream_.get(), options);
    EXPECT_TRUE(sim.ok());
    sim_ = std::move(sim).ValueOrDie();
    return sim_->Run();
  }

  apps::WordCountTopology wc_;
  std::unique_ptr<workload::IidKeyStream> stream_;
  std::unique_ptr<EventSimulator> sim_;
};

std::string SimCaseName(const testing::TestParamInfo<SimCase>& info) {
  auto [technique, extra_us, max_pending] = info.param;
  std::string name = partition::TechniqueName(technique);
  for (char& c : name) {
    if (c == '-' || c == '+') c = '_';
  }
  return name + "_d" + std::to_string(extra_us) + "_p" +
         std::to_string(max_pending);
}

TEST_P(EventSimPropertyTest, EveryRootEmittedAndAcked) {
  EventSimReport report = Run();
  EXPECT_EQ(report.roots_emitted, kMessages);
  EXPECT_EQ(report.roots_acked, kMessages);
  EXPECT_FALSE(report.timed_out);
}

TEST_P(EventSimPropertyTest, CountersConserveMessages) {
  Run();
  uint64_t total = 0;
  for (uint32_t w = 0; w < 5; ++w) {
    auto* counter = static_cast<apps::WordCountCounter*>(
        sim_->GetOperator(wc_.counter, w));
    for (const auto& [_, count] : counter->counts()) total += count;
  }
  EXPECT_EQ(total, kMessages);
}

TEST_P(EventSimPropertyTest, LatencyRespectsPhysicalFloor) {
  auto [technique, extra_us, max_pending] = GetParam();
  EventSimReport report = Run();
  // Floor: one network hop + worker service (overhead + extra).
  uint64_t floor = 200 + 30 + extra_us;
  EXPECT_GE(report.p50_latency_us, floor * 9 / 10);  // bucket slack
  EXPECT_GE(report.mean_latency_us, static_cast<double>(floor) * 0.9);
}

TEST_P(EventSimPropertyTest, UtilizationIsPhysical) {
  EventSimReport report = Run();
  for (double util : report.max_utilization) {
    EXPECT_GE(util, 0.0);
    EXPECT_LE(util, 1.0 + 1e-9);
  }
  EXPECT_GT(report.throughput_per_s, 0.0);
  EXPECT_GT(report.sim_seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EventSimPropertyTest,
    testing::Combine(testing::Values(partition::Technique::kHashing,
                                     partition::Technique::kShuffle,
                                     partition::Technique::kPkgLocal),
                     testing::Values<uint64_t>(0, 400),
                     testing::Values<uint32_t>(4, 256)),
    SimCaseName);

}  // namespace
}  // namespace engine
}  // namespace pkgstream
