// Copyright 2026 The pkgstream Authors.
// Unit tests for the discrete-event cluster simulator.

#include <gtest/gtest.h>

#include "apps/wordcount.h"
#include "engine/event_sim.h"
#include "workload/static_distribution.h"
#include "workload/zipf.h"

namespace pkgstream {
namespace engine {
namespace {

workload::KeyStreamPtr MakeZipfStream(uint64_t keys, double z, uint64_t seed) {
  auto dist = std::make_shared<workload::StaticDistribution>(
      workload::ZipfWeights(keys, z), "zipf");
  return std::make_unique<workload::IidKeyStream>(dist, seed);
}

EventSimOptions FastOptions(uint64_t messages) {
  EventSimOptions o;
  o.messages = messages;
  o.source_service_us = 10;
  o.worker_overhead_us = 20;
  o.network_delay_us = 100;
  o.max_pending = 16;
  o.memory_sample_period_us = 50000;
  return o;
}

TEST(EventSimTest, RequiresSingleSpout) {
  Topology t;
  t.AddSpout("a", 1);
  t.AddSpout("b", 1);
  auto stream = MakeZipfStream(10, 1.0, 1);
  EXPECT_TRUE(EventSimulator::Create(&t, stream.get(), FastOptions(10))
                  .status()
                  .IsInvalidArgument());
}

TEST(EventSimTest, AllRootsAcked) {
  auto wc = apps::MakeWordCountTopology(partition::Technique::kShuffle, 1, 3,
                                        0, 10, 42);
  auto stream = MakeZipfStream(100, 1.0, 7);
  auto sim = EventSimulator::Create(&wc.topology, stream.get(),
                                    FastOptions(5000));
  ASSERT_TRUE(sim.ok());
  EventSimReport report = (*sim)->Run();
  EXPECT_EQ(report.roots_emitted, 5000u);
  EXPECT_EQ(report.roots_acked, 5000u);
  EXPECT_FALSE(report.timed_out);
  EXPECT_GT(report.throughput_per_s, 0.0);
}

TEST(EventSimTest, LatencyIncludesNetworkAndService) {
  auto wc = apps::MakeWordCountTopology(partition::Technique::kShuffle, 1, 3,
                                        0, 10, 42);
  auto stream = MakeZipfStream(100, 1.0, 7);
  EventSimOptions o = FastOptions(1000);
  auto sim = EventSimulator::Create(&wc.topology, stream.get(), o);
  ASSERT_TRUE(sim.ok());
  EventSimReport report = (*sim)->Run();
  // Minimum possible latency: network (100) + service (20).
  EXPECT_GE(report.p50_latency_us, 120u);
  EXPECT_GE(report.mean_latency_us, 120.0);
}

TEST(EventSimTest, ThroughputBoundedBySource) {
  // With fast workers the spout is the bottleneck: throughput ~= 1/source_us.
  auto wc = apps::MakeWordCountTopology(partition::Technique::kShuffle, 1, 8,
                                        0, 10, 42);
  auto stream = MakeZipfStream(1000, 0.5, 7);
  EventSimOptions o = FastOptions(20000);
  o.source_service_us = 100;  // cap at 10k msg/s
  o.worker_overhead_us = 10;
  auto sim = EventSimulator::Create(&wc.topology, stream.get(), o);
  ASSERT_TRUE(sim.ok());
  EventSimReport report = (*sim)->Run();
  EXPECT_LT(report.throughput_per_s, 10500.0);
  EXPECT_GT(report.throughput_per_s, 7000.0);
}

TEST(EventSimTest, SlowWorkersReduceThroughput) {
  auto run = [](uint64_t extra_us) {
    auto wc = apps::MakeWordCountTopology(partition::Technique::kShuffle, 1,
                                          2, 0, 10, 42);
    auto stream = MakeZipfStream(1000, 0.5, 7);
    EventSimOptions o = FastOptions(5000);
    o.node_extra_service_us.assign(wc.topology.nodes().size(), 0);
    o.node_extra_service_us[wc.counter.index] = extra_us;
    auto sim = EventSimulator::Create(&wc.topology, stream.get(), o);
    EXPECT_TRUE(sim.ok());
    return (*sim)->Run().throughput_per_s;
  };
  EXPECT_GT(run(0), run(1000) * 1.5);
}

TEST(EventSimTest, KeyGroupingSuffersUnderSkew) {
  // Same skewed feed: KG's throughput should be visibly below SG's because
  // the hot worker saturates (the Figure 5a mechanism).
  auto run = [](partition::Technique technique) {
    auto wc = apps::MakeWordCountTopology(technique, 1, 5, 0, 10, 42);
    auto stream = MakeZipfStream(1000, 1.4, 7);  // hot head
    EventSimOptions o = FastOptions(20000);
    o.source_service_us = 20;
    o.node_extra_service_us.assign(wc.topology.nodes().size(), 0);
    o.node_extra_service_us[wc.counter.index] = 300;
    auto sim = EventSimulator::Create(&wc.topology, stream.get(), o);
    EXPECT_TRUE(sim.ok());
    return (*sim)->Run().throughput_per_s;
  };
  double kg = run(partition::Technique::kHashing);
  double sg = run(partition::Technique::kShuffle);
  double pkg = run(partition::Technique::kPkgLocal);
  EXPECT_GT(sg, kg * 1.2);
  EXPECT_GT(pkg, kg * 1.2);
}

TEST(EventSimTest, UtilizationTracksBottleneck) {
  auto wc = apps::MakeWordCountTopology(partition::Technique::kHashing, 1, 4,
                                        0, 10, 42);
  auto stream = MakeZipfStream(100, 1.5, 7);
  EventSimOptions o = FastOptions(10000);
  o.node_extra_service_us.assign(wc.topology.nodes().size(), 0);
  o.node_extra_service_us[wc.counter.index] = 200;
  auto sim = EventSimulator::Create(&wc.topology, stream.get(), o);
  ASSERT_TRUE(sim.ok());
  EventSimReport report = (*sim)->Run();
  // The hot counter instance should be busier than the spout.
  EXPECT_GT(report.max_utilization[wc.counter.index], 0.5);
}

TEST(EventSimTest, MemorySamplesTrackCounters) {
  auto wc = apps::MakeWordCountTopology(partition::Technique::kShuffle, 1, 2,
                                        0, 10, 42);
  auto stream = MakeZipfStream(500, 0.8, 7);
  auto sim = EventSimulator::Create(&wc.topology, stream.get(),
                                    FastOptions(20000));
  ASSERT_TRUE(sim.ok());
  EventSimReport report = (*sim)->Run();
  EXPECT_GT(report.avg_memory_counters, 0.0);
  EXPECT_GE(report.peak_memory_counters,
            static_cast<uint64_t>(report.avg_memory_counters * 0.5));
}

TEST(EventSimTest, AggregationTicksFlushCounters) {
  // With periodic flushing, partial counters are cleared: peak memory at the
  // counters should be below the no-flush run.
  auto run = [](uint64_t tick_us) {
    auto wc = apps::MakeWordCountTopology(partition::Technique::kPkgLocal, 1,
                                          4, tick_us, 10, 42);
    auto stream = MakeZipfStream(20000, 0.8, 7);
    EventSimOptions o = FastOptions(30000);
    auto sim = EventSimulator::Create(&wc.topology, stream.get(), o);
    EXPECT_TRUE(sim.ok());
    return (*sim)->Run();
  };
  EventSimReport no_flush = run(0);
  EventSimReport flushed = run(100000);  // every 0.1 sim-seconds
  EXPECT_LT(flushed.avg_memory_counters, no_flush.avg_memory_counters);
  // Flushing costs throughput (the Figure 5b trade-off).
  EXPECT_LE(flushed.throughput_per_s, no_flush.throughput_per_s * 1.05);
}

TEST(EventSimTest, DeterministicReports) {
  auto run = [] {
    auto wc = apps::MakeWordCountTopology(partition::Technique::kPkgLocal, 1,
                                          3, 50000, 10, 42);
    auto stream = MakeZipfStream(300, 1.0, 9);
    auto sim = EventSimulator::Create(&wc.topology, stream.get(),
                                      FastOptions(5000));
    EXPECT_TRUE(sim.ok());
    return (*sim)->Run();
  };
  EventSimReport a = run();
  EventSimReport b = run();
  EXPECT_EQ(a.roots_acked, b.roots_acked);
  EXPECT_DOUBLE_EQ(a.throughput_per_s, b.throughput_per_s);
  EXPECT_DOUBLE_EQ(a.mean_latency_us, b.mean_latency_us);
  EXPECT_EQ(a.p99_latency_us, b.p99_latency_us);
}

TEST(EventSimTest, TimeoutReported) {
  auto wc = apps::MakeWordCountTopology(partition::Technique::kShuffle, 1, 2,
                                        0, 10, 42);
  auto stream = MakeZipfStream(100, 1.0, 7);
  EventSimOptions o = FastOptions(1000000);
  o.max_sim_time_us = 1000;  // absurdly short
  auto sim = EventSimulator::Create(&wc.topology, stream.get(), o);
  ASSERT_TRUE(sim.ok());
  EventSimReport report = (*sim)->Run();
  EXPECT_TRUE(report.timed_out);
  EXPECT_LT(report.roots_acked, 1000000u);
}

}  // namespace
}  // namespace engine
}  // namespace pkgstream
