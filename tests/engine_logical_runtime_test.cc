// Copyright 2026 The pkgstream Authors.
// Unit tests for the deterministic logical runtime.

#include <gtest/gtest.h>

#include <vector>

#include "engine/logical_runtime.h"

namespace pkgstream {
namespace engine {
namespace {

/// Counts messages per key; on tick/close, emits (key, count) pairs and
/// optionally clears.
class CountingOp final : public Operator {
 public:
  explicit CountingOp(bool clear_on_tick) : clear_on_tick_(clear_on_tick) {}

  void Open(const OperatorContext& ctx) override { instance_ = ctx.instance; }

  void Process(const Message& msg, Emitter*) override { ++counts_[msg.key]; }

  void Tick(uint64_t, Emitter* out) override {
    ++ticks_;
    for (const auto& [k, c] : counts_) {
      Message m;
      m.key = k;
      m.i64 = static_cast<int64_t>(c);
      out->Emit(m);
    }
    if (clear_on_tick_) counts_.clear();
  }

  void Close(Emitter* out) override { Tick(0, out); }

  uint64_t MemoryCounters() const override { return counts_.size(); }

  std::unordered_map<Key, uint64_t> counts_;
  uint64_t ticks_ = 0;
  uint32_t instance_ = 0;
  bool clear_on_tick_;
};

/// Accumulates (key, count) messages.
class SinkOp final : public Operator {
 public:
  void Process(const Message& msg, Emitter*) override {
    totals_[msg.key] += static_cast<uint64_t>(msg.i64);
  }
  uint64_t MemoryCounters() const override { return totals_.size(); }
  std::unordered_map<Key, uint64_t> totals_;
};

struct Pipeline {
  Topology topology;
  NodeId spout, counter, sink;
  std::vector<CountingOp*> counters;
  SinkOp* sink_op = nullptr;
};

Pipeline BuildPipeline(partition::Technique technique, uint32_t sources,
                       uint32_t workers, uint64_t tick, bool clear_on_tick) {
  Pipeline p;
  p.spout = p.topology.AddSpout("spout", sources);
  p.counters.resize(workers, nullptr);
  auto* counters = &p.counters;
  p.counter = p.topology.AddOperator(
      "counter",
      [counters, clear_on_tick](uint32_t i) {
        auto op = std::make_unique<CountingOp>(clear_on_tick);
        (*counters)[i] = op.get();
        return op;
      },
      workers);
  SinkOp** sink_slot = &p.sink_op;
  p.sink = p.topology.AddOperator(
      "sink",
      [sink_slot](uint32_t) {
        auto op = std::make_unique<SinkOp>();
        *sink_slot = op.get();
        return op;
      },
      1);
  if (tick > 0) p.topology.SetTickPeriod(p.counter, tick);
  EXPECT_TRUE(p.topology.Connect(p.spout, p.counter, technique).ok());
  EXPECT_TRUE(
      p.topology.Connect(p.counter, p.sink, partition::Technique::kHashing)
          .ok());
  return p;
}

TEST(LogicalRuntimeTest, CreateValidatesTopology) {
  Topology t;  // empty
  EXPECT_FALSE(LogicalRuntime::Create(&t).ok());
}

TEST(LogicalRuntimeTest, MessagesReachWorkers) {
  Pipeline p = BuildPipeline(partition::Technique::kShuffle, 1, 3, 0, false);
  auto rt = LogicalRuntime::Create(&p.topology);
  ASSERT_TRUE(rt.ok());
  for (int i = 0; i < 9; ++i) {
    Message m;
    m.key = static_cast<Key>(i);
    (*rt)->Inject(p.spout, 0, m);
  }
  uint64_t total = 0;
  for (auto* op : p.counters) total += op->counts_.size();
  EXPECT_EQ(total, 9u);
  EXPECT_EQ((*rt)->now(), 9u);
}

TEST(LogicalRuntimeTest, CountsAreExactUnderAnyPartitioner) {
  for (auto technique :
       {partition::Technique::kHashing, partition::Technique::kShuffle,
        partition::Technique::kPkgLocal}) {
    Pipeline p = BuildPipeline(technique, 2, 4, 0, false);
    auto rt = LogicalRuntime::Create(&p.topology);
    ASSERT_TRUE(rt.ok());
    // 60 messages: key i%3 -> 20 occurrences each.
    for (int i = 0; i < 60; ++i) {
      Message m;
      m.key = static_cast<Key>(i % 3);
      (*rt)->Inject(p.spout, static_cast<SourceId>(i % 2), m);
    }
    (*rt)->Finish();
    ASSERT_NE(p.sink_op, nullptr);
    for (Key k = 0; k < 3; ++k) {
      EXPECT_EQ(p.sink_op->totals_[k], 20u)
          << "technique " << static_cast<int>(technique) << " key " << k;
    }
  }
}

TEST(LogicalRuntimeTest, TicksFireOnSchedule) {
  Pipeline p = BuildPipeline(partition::Technique::kShuffle, 1, 2, 10, true);
  auto rt = LogicalRuntime::Create(&p.topology);
  ASSERT_TRUE(rt.ok());
  for (int i = 0; i < 35; ++i) {
    Message m;
    m.key = 1;
    (*rt)->Inject(p.spout, 0, m);
  }
  // Ticks at 10, 20, 30 on both instances.
  EXPECT_EQ(p.counters[0]->ticks_, 3u);
  EXPECT_EQ(p.counters[1]->ticks_, 3u);
}

TEST(LogicalRuntimeTest, PartialFlushesSumToExactTotals) {
  Pipeline p = BuildPipeline(partition::Technique::kPkgLocal, 1, 4, 7, true);
  auto rt = LogicalRuntime::Create(&p.topology);
  ASSERT_TRUE(rt.ok());
  const int n = 1000;
  for (int i = 0; i < n; ++i) {
    Message m;
    m.key = static_cast<Key>(i % 10);
    (*rt)->Inject(p.spout, 0, m);
  }
  (*rt)->Finish();
  uint64_t total = 0;
  for (Key k = 0; k < 10; ++k) total += p.sink_op->totals_[k];
  EXPECT_EQ(total, static_cast<uint64_t>(n));
  for (Key k = 0; k < 10; ++k) EXPECT_EQ(p.sink_op->totals_[k], 100u);
}

TEST(LogicalRuntimeTest, MetricsReportLoadsAndMemory) {
  Pipeline p = BuildPipeline(partition::Technique::kShuffle, 1, 2, 0, false);
  auto rt = LogicalRuntime::Create(&p.topology);
  ASSERT_TRUE(rt.ok());
  for (int i = 0; i < 10; ++i) {
    Message m;
    m.key = static_cast<Key>(i);
    (*rt)->Inject(p.spout, 0, m);
  }
  auto metrics = (*rt)->Metrics();
  ASSERT_EQ(metrics.size(), 3u);
  EXPECT_EQ(metrics[1].pe_name, "counter");
  EXPECT_EQ(metrics[1].processed[0] + metrics[1].processed[1], 10u);
  EXPECT_EQ(metrics[1].memory_counters, 10u);  // 10 distinct keys
  EXPECT_DOUBLE_EQ(metrics[1].imbalance, 0.0);  // shuffle: perfectly even
}

TEST(LogicalRuntimeTest, FinishFlushesClosedOperators) {
  Pipeline p = BuildPipeline(partition::Technique::kHashing, 1, 2, 0, false);
  auto rt = LogicalRuntime::Create(&p.topology);
  ASSERT_TRUE(rt.ok());
  Message m;
  m.key = 5;
  (*rt)->Inject(p.spout, 0, m);
  EXPECT_EQ(p.sink_op->totals_.size(), 0u);  // nothing flushed yet
  (*rt)->Finish();
  EXPECT_EQ(p.sink_op->totals_[5], 1u);
}

TEST(LogicalRuntimeTest, GetOperatorAccess) {
  Pipeline p = BuildPipeline(partition::Technique::kShuffle, 1, 2, 0, false);
  auto rt = LogicalRuntime::Create(&p.topology);
  ASSERT_TRUE(rt.ok());
  EXPECT_EQ((*rt)->GetOperator(p.counter, 0), p.counters[0]);
  EXPECT_EQ((*rt)->GetOperator(p.counter, 1), p.counters[1]);
}

TEST(LogicalRuntimeTest, OpenReceivesContext) {
  Pipeline p = BuildPipeline(partition::Technique::kShuffle, 1, 3, 0, false);
  auto rt = LogicalRuntime::Create(&p.topology);
  ASSERT_TRUE(rt.ok());
  EXPECT_EQ(p.counters[0]->instance_, 0u);
  EXPECT_EQ(p.counters[2]->instance_, 2u);
}

TEST(LogicalRuntimeTest, DeterministicAcrossRuns) {
  auto run = [] {
    Pipeline p =
        BuildPipeline(partition::Technique::kPkgLocal, 2, 4, 0, false);
    auto rt = LogicalRuntime::Create(&p.topology);
    EXPECT_TRUE(rt.ok());
    for (int i = 0; i < 500; ++i) {
      Message m;
      m.key = static_cast<Key>(i % 17);
      (*rt)->Inject(p.spout, static_cast<SourceId>(i % 2), m);
    }
    std::vector<uint64_t> loads;
    for (auto* op : p.counters) {
      uint64_t total = 0;
      for (const auto& [_, c] : op->counts_) total += c;
      loads.push_back(total);
    }
    return loads;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace engine
}  // namespace pkgstream
