// Copyright 2026 The pkgstream Authors.
// Messages must be *moved* through both runtimes — into queue entries,
// emit out-buffers and rings — with a copy made only for true fan-out
// (multiple outbound edges) and for the mandatory emit-time ts stamp.
// The probe: messages carry a shared_ptr payload, and an operator records
// box.use_count() at Process time. Since rings, buffers and queues move
// (a moved-from shared_ptr is null), the only live handles when a message
// reaches an operator are the test's own reference plus the single
// in-flight copy — so the observed use_count pins the no-extra-copies
// claim exactly. The pre-batching runtimes held one more live handle per
// hop (Inject's pass-by-const-ref copy chain), which this suite rejects.

#include <gtest/gtest.h>

#include <memory>
#include <mutex>
#include <vector>

#include "engine/logical_runtime.h"
#include "engine/threaded_runtime.h"

namespace pkgstream {
namespace engine {
namespace {

/// Records msg.box.use_count() for every processed message (mutex-guarded:
/// ThreadedRuntime runs instances on their own threads).
class UseCountProbe final : public Operator {
 public:
  void Process(const Message& msg, Emitter*) override {
    if (msg.box == nullptr) return;
    std::lock_guard<std::mutex> lock(mu_);
    observed_.push_back(msg.box.use_count());
  }

  std::vector<long> observed() {
    std::lock_guard<std::mutex> lock(mu_);
    return observed_;
  }

 private:
  std::mutex mu_;
  std::vector<long> observed_;
};

/// Re-emits every message unchanged (exercises the emitter path).
class RelayOp final : public Operator {
 public:
  void Process(const Message& msg, Emitter* out) override { out->Emit(msg); }
};

Message PayloadMessage(Key key, std::shared_ptr<const int> payload) {
  Message m;
  m.key = key;
  SetBox(&m, std::move(payload));
  return m;
}

TEST(MessageMoveTest, LogicalRuntimeHoldsExactlyOneInFlightCopy) {
  Topology topology;
  NodeId spout = topology.AddSpout("src", 1);
  UseCountProbe* probe = nullptr;
  NodeId relay = topology.AddOperator(
      "relay", [](uint32_t) { return std::make_unique<RelayOp>(); }, 1);
  NodeId sink = topology.AddOperator(
      "sink",
      [&probe](uint32_t) {
        auto op = std::make_unique<UseCountProbe>();
        probe = op.get();
        return op;
      },
      1);
  ASSERT_TRUE(
      topology.Connect(spout, relay, partition::Technique::kHashing).ok());
  ASSERT_TRUE(
      topology.Connect(relay, sink, partition::Technique::kHashing).ok());
  auto rt = LogicalRuntime::Create(&topology);
  ASSERT_TRUE(rt.ok()) << rt.status();

  for (int i = 0; i < 16; ++i) {
    auto payload = std::make_shared<const int>(i);
    (*rt)->Inject(spout, 0, PayloadMessage(static_cast<Key>(i), payload));
    // Back at rest: the test's handle must be the only one left.
    EXPECT_EQ(payload.use_count(), 1);
  }
  (*rt)->Finish();
  ASSERT_EQ(probe->observed().size(), 16u);
  for (long count : probe->observed()) {
    // The test's handle + the single in-flight queue entry. A runtime
    // that copies anywhere on the relay chain (or holds the Inject
    // argument alive by const-ref copying) pushes this above 2.
    EXPECT_EQ(count, 2);
  }
}

TEST(MessageMoveTest, LogicalRuntimeCopiesOnlyOnTrueFanOut) {
  Topology topology;
  NodeId spout = topology.AddSpout("src", 1);
  UseCountProbe* probe_a = nullptr;
  UseCountProbe* probe_b = nullptr;
  NodeId a = topology.AddOperator(
      "a",
      [&probe_a](uint32_t) {
        auto op = std::make_unique<UseCountProbe>();
        probe_a = op.get();
        return op;
      },
      1);
  NodeId b = topology.AddOperator(
      "b",
      [&probe_b](uint32_t) {
        auto op = std::make_unique<UseCountProbe>();
        probe_b = op.get();
        return op;
      },
      1);
  ASSERT_TRUE(topology.Connect(spout, a, partition::Technique::kHashing).ok());
  ASSERT_TRUE(topology.Connect(spout, b, partition::Technique::kHashing).ok());
  auto rt = LogicalRuntime::Create(&topology);
  ASSERT_TRUE(rt.ok()) << rt.status();

  auto payload = std::make_shared<const int>(7);
  (*rt)->Inject(spout, 0, PayloadMessage(1, payload));
  (*rt)->Finish();
  ASSERT_EQ(probe_a->observed().size(), 1u);
  ASSERT_EQ(probe_b->observed().size(), 1u);
  // Edge a is processed first while edge b's (sole remaining) copy still
  // waits in the queue: test handle + a's entry + b's entry. By b's turn
  // a's entry is gone: test handle + b's entry.
  EXPECT_EQ(probe_a->observed()[0], 3);
  EXPECT_EQ(probe_b->observed()[0], 2);
  EXPECT_EQ(payload.use_count(), 1);
}

TEST(MessageMoveTest, ThreadedRuntimeMovesThroughBuffersAndRings) {
  Topology topology;
  NodeId spout = topology.AddSpout("src", 1);
  UseCountProbe* probe = nullptr;
  NodeId sink = topology.AddOperator(
      "sink",
      [&probe](uint32_t) {
        auto op = std::make_unique<UseCountProbe>();
        probe = op.get();
        return op;
      },
      1);
  ASSERT_TRUE(
      topology.Connect(spout, sink, partition::Technique::kHashing).ok());
  ThreadedRuntimeOptions options;
  options.emit_batch = 8;  // exercise the out-buffer path
  auto rt = ThreadedRuntime::Create(&topology, options);
  ASSERT_TRUE(rt.ok()) << rt.status();

  constexpr int kMessages = 40;
  std::vector<std::shared_ptr<const int>> payloads;
  payloads.reserve(kMessages);
  for (int i = 0; i < kMessages; ++i) {
    payloads.push_back(std::make_shared<const int>(i));
    (*rt)->Inject(spout, 0,
                  PayloadMessage(static_cast<Key>(i), payloads.back()));
  }
  (*rt)->Finish();
  ASSERT_EQ(probe->observed().size(), static_cast<size_t>(kMessages));
  for (long count : probe->observed()) {
    // Out-buffer -> ring -> pop batch are all moves, so at Process time
    // only the test's handle and the popped item are alive. An extra
    // surviving copy anywhere on the producer side (the old const-ref
    // Inject path) makes this 3.
    EXPECT_EQ(count, 2);
  }
  for (const auto& payload : payloads) EXPECT_EQ(payload.use_count(), 1);
}

}  // namespace
}  // namespace engine
}  // namespace pkgstream
