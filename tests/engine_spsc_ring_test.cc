// Copyright 2026 The pkgstream Authors.
// Tests for the lock-free SPSC ring under ThreadedRuntime's mailboxes:
// FIFO order, wrap-around, batch push/pop semantics, and a two-thread
// transfer that the ThreadSanitizer CI job checks for races.

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "engine/spsc_ring.h"

namespace pkgstream {
namespace engine {
namespace {

TEST(SpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 1u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(1000).capacity(), 1024u);
  EXPECT_EQ(SpscRing<int>(0).capacity(), 1u);  // clamped to >= 1
}

TEST(SpscRingTest, FifoWithWrapAround) {
  SpscRing<int> ring(4);
  int out = 0;
  // Several times around the ring.
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 3; ++i) EXPECT_TRUE(ring.TryPush(round * 3 + i));
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(ring.TryPop(&out));
      EXPECT_EQ(out, round * 3 + i);
    }
  }
  EXPECT_FALSE(ring.TryPop(&out));
}

TEST(SpscRingTest, PushFailsWhenFullPopFailsWhenEmpty) {
  SpscRing<int> ring(2);
  EXPECT_TRUE(ring.TryPush(1));
  EXPECT_TRUE(ring.TryPush(2));
  EXPECT_FALSE(ring.TryPush(3));  // full: item rejected
  int out = 0;
  ASSERT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(ring.TryPush(3));  // space again
  ASSERT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(out, 2);
  ASSERT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(out, 3);
  EXPECT_FALSE(ring.TryPop(&out));
}

TEST(SpscRingTest, BatchOpsMovePrefixes) {
  SpscRing<int> ring(4);
  int in[6] = {0, 1, 2, 3, 4, 5};
  EXPECT_EQ(ring.TryPushBatch(in, 6), 4u);  // only capacity fits
  int out[8] = {};
  EXPECT_EQ(ring.TryPopBatch(out, 2), 2u);  // bounded by max_n
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[1], 1);
  EXPECT_EQ(ring.TryPopBatch(out, 8), 2u);  // bounded by availability
  EXPECT_EQ(out[0], 2);
  EXPECT_EQ(out[1], 3);
  EXPECT_EQ(ring.TryPopBatch(out, 8), 0u);
}

TEST(SpscRingTest, SizeApproxTracksOccupancyWhenQuiescent) {
  SpscRing<int> ring(4);
  EXPECT_EQ(ring.SizeApprox(), 0u);  // empty
  EXPECT_TRUE(ring.TryPush(1));
  EXPECT_EQ(ring.SizeApprox(), 1u);
  int in[3] = {2, 3, 4};
  EXPECT_EQ(ring.TryPushBatch(in, 3), 3u);
  EXPECT_EQ(ring.SizeApprox(), 4u);  // full == capacity, never above
  int out = 0;
  ASSERT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(ring.SizeApprox(), 3u);
  int buf[4];
  EXPECT_EQ(ring.TryPopBatch(buf, 4), 3u);
  EXPECT_EQ(ring.SizeApprox(), 0u);  // drained again
}

TEST(SpscRingTest, SizeApproxStaysBoundedUnderConcurrency) {
  // The approximate size is read from a third thread while producer and
  // consumer race: every observation must stay within [0, capacity] (the
  // clamp absorbs torn index reads); exactness is not claimed.
  SpscRing<uint64_t> ring(8);
  constexpr uint64_t kCount = 100000;
  std::atomic<bool> done{false};
  std::thread observer([&] {
    while (!done.load(std::memory_order_relaxed)) {
      EXPECT_LE(ring.SizeApprox(), ring.capacity());
    }
  });
  std::thread producer([&] {
    Backoff backoff;
    for (uint64_t i = 0; i < kCount; ++i) {
      while (!ring.TryPush(uint64_t{i})) backoff.Pause();
      backoff.Reset();
    }
  });
  uint64_t popped = 0;
  uint64_t buf[4];
  Backoff backoff;
  while (popped < kCount) {
    const size_t n = ring.TryPopBatch(buf, 4);
    if (n == 0) {
      backoff.Pause();
      continue;
    }
    backoff.Reset();
    popped += n;
  }
  producer.join();
  done.store(true, std::memory_order_relaxed);
  observer.join();
  EXPECT_EQ(ring.SizeApprox(), 0u);
}

TEST(SpscRingTest, TwoThreadTransferPreservesSequence) {
  SpscRing<uint64_t> ring(64);
  constexpr uint64_t kCount = 200000;
  std::thread producer([&] {
    Backoff backoff;
    for (uint64_t i = 0; i < kCount; ++i) {
      while (!ring.TryPush(uint64_t{i})) backoff.Pause();
      backoff.Reset();
    }
  });
  uint64_t expected = 0;
  uint64_t buf[16];
  Backoff backoff;
  while (expected < kCount) {
    const size_t n = ring.TryPopBatch(buf, 16);
    if (n == 0) {
      backoff.Pause();
      continue;
    }
    backoff.Reset();
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(buf[i], expected);
      ++expected;
    }
  }
  producer.join();
}

}  // namespace
}  // namespace engine
}  // namespace pkgstream
