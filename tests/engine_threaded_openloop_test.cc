// Copyright 2026 The pkgstream Authors.
// Tests for the open-loop driver + latency sink (engine/open_loop.h) on the
// ThreadedRuntime. Suite names contain "Threaded" so the CI thread-sanitizer
// job (ctest -R 'Threaded|SpscRing') runs every test here under TSan: the
// injector threads, the ring handoff of ts-stamped messages, and the
// post-Finish histogram merge are all exercised with real concurrency.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "engine/open_loop.h"
#include "engine/threaded_runtime.h"
#include "partition/factory.h"
#include "workload/arrival_schedule.h"
#include "workload/static_distribution.h"
#include "workload/zipf.h"

namespace pkgstream {
namespace engine {
namespace {

std::shared_ptr<const workload::StaticDistribution> TestDist() {
  return std::make_shared<const workload::StaticDistribution>(
      workload::ZipfWeights(100, 1.0), "zipf(1.0,K=100)");
}

struct RunOutcome {
  stats::LatencyHistogram hist{1ULL << 30, 32};
  uint64_t processed = 0;
  std::vector<OpenLoopSourceReport> reports;
};

/// One spout (parallelism = sources.size()) -> `workers` LatencySinks.
RunOutcome RunOpenLoop(const LatencySink::Options& sink_options,
                       partition::Technique technique, uint32_t workers,
                       std::vector<OpenLoopDriver::Source> sources,
                       const OpenLoopOptions& driver_options,
                       const OpenLoopClock* clock, size_t queue_capacity) {
  Topology topology;
  NodeId spout =
      topology.AddSpout("src", static_cast<uint32_t>(sources.size()));
  NodeId sink = topology.AddOperator(
      "sink", LatencySink::MakeFactory(sink_options), workers);
  EXPECT_TRUE(topology.Connect(spout, sink, technique, /*seed=*/42).ok());
  ThreadedRuntimeOptions rt_options;
  rt_options.queue_capacity = queue_capacity;
  auto rt = ThreadedRuntime::Create(&topology, rt_options);
  EXPECT_TRUE(rt.ok()) << rt.status();
  OpenLoopDriver driver(rt->get(), spout, clock, driver_options);
  RunOutcome out;
  out.reports = driver.Run(sources);
  (*rt)->Finish();
  out.hist =
      LatencySink::MergedHistogram(rt->get(), sink, workers, sink_options);
  for (uint64_t n : (*rt)->Processed(sink)) out.processed += n;
  return out;
}

TEST(ThreadedOpenLoopTest, VirtualServiceMatchesLindleyRecursion) {
  // One worker, constant arrivals every 50us, deterministic service 100us:
  // the queue grows by 50us per message, so latency_i = 100 + 50*i exactly.
  const uint64_t n = 100;
  OpenLoopClock clock;
  LatencySink::Options sink_options;
  sink_options.service_us = 100;
  workload::ConstantRateSchedule schedule(20000.0);  // gap 50us
  workload::IidKeyStream keys(TestDist(), 7);
  OpenLoopDriver::Source source;
  source.source = 0;
  source.schedule = &schedule;
  source.keys = &keys;
  source.messages = n;
  OpenLoopOptions driver_options;
  driver_options.pace = false;
  RunOutcome out =
      RunOpenLoop(sink_options, partition::Technique::kShuffle, /*workers=*/1,
                  {source}, driver_options, &clock, /*queue_capacity=*/1024);
  EXPECT_EQ(out.processed, n);
  ASSERT_EQ(out.hist.count(), n);
  EXPECT_EQ(out.hist.min(), 100u);                    // first message
  EXPECT_EQ(out.hist.max(), 100 + 50 * (n - 1));      // last message
  EXPECT_DOUBLE_EQ(out.hist.mean(),
                   100.0 + 50.0 * static_cast<double>(n - 1) / 2.0);
  EXPECT_EQ(out.hist.saturated(), 0u);
}

TEST(ThreadedOpenLoopTest, ZeroServiceRecordsZeroLatency) {
  const uint64_t n = 500;
  OpenLoopClock clock;
  LatencySink::Options sink_options;  // service_us = 0
  workload::PoissonSchedule schedule(50000.0, 3);
  workload::IidKeyStream keys(TestDist(), 3);
  OpenLoopDriver::Source source{0, &schedule, &keys, n};
  OpenLoopOptions driver_options;
  driver_options.pace = false;
  RunOutcome out =
      RunOpenLoop(sink_options, partition::Technique::kPkgLocal, 4, {source},
                  driver_options, &clock, 1024);
  EXPECT_EQ(out.hist.count(), n);
  EXPECT_EQ(out.hist.max(), 0u);
}

/// Merged-histogram fingerprint for determinism comparisons.
struct Fingerprint {
  uint64_t count, min, max, p50, p95, p99, p999, saturated;
  double mean;
  bool operator==(const Fingerprint& o) const {
    return count == o.count && min == o.min && max == o.max && p50 == o.p50 &&
           p95 == o.p95 && p99 == o.p99 && p999 == o.p999 &&
           saturated == o.saturated && mean == o.mean;
  }
};

Fingerprint FingerprintOf(const stats::LatencyHistogram& h) {
  return {h.count(), h.min(),  h.max(),       h.P50(),  h.P95(),
          h.P99(),   h.P999(), h.saturated(), h.mean()};
}

Fingerprint RunPoissonCell(bool pace) {
  // 20k/s offered to 4 workers of capacity 1/75us ~ 13.3k/s each: the KG
  // hot worker queues, so latencies are nontrivial and order-sensitive —
  // a real determinism probe, not a wall of zeros.
  OpenLoopClock clock;
  LatencySink::Options sink_options;
  sink_options.service_us = 75;
  workload::PoissonSchedule schedule(20000.0, 11);
  workload::IidKeyStream keys(TestDist(), 11);
  OpenLoopDriver::Source source{0, &schedule, &keys, 3000};
  OpenLoopOptions driver_options;
  driver_options.pace = pace;
  RunOutcome out =
      RunOpenLoop(sink_options, partition::Technique::kHashing, 4, {source},
                  driver_options, &clock, 1024);
  EXPECT_EQ(out.processed, 3000u);
  return FingerprintOf(out.hist);
}

TEST(ThreadedOpenLoopTest, UnpacedRunsAreBitDeterministic) {
  // Single source: each sink sees the injection-order subsequence of the
  // scheduled arrivals regardless of thread interleaving, so the Lindley
  // latencies — and every histogram statistic — replay exactly.
  EXPECT_EQ(RunPoissonCell(false), RunPoissonCell(false));
}

TEST(ThreadedOpenLoopTest, PacedAndUnpacedYieldIdenticalLatencies) {
  // Latency is computed from the *scheduled* ts stamps, and the virtual
  // service model never reads the wall clock: whether the injector slept
  // until each arrival or replayed the schedule flat out must not move a
  // single bucket. (This is the coordinated-omission guard: injection
  // timing cannot flatter or inflate the measured tail.)
  EXPECT_EQ(RunPoissonCell(true), RunPoissonCell(false));
}

TEST(ThreadedOpenLoopTest, PacedDriverReportsScheduleLag) {
  // A schedule living entirely in the past (all arrivals at t=0-ish, rate
  // far beyond injectable) forces the paced driver down its "never slow
  // down" path: late batches must be counted, not silently absorbed.
  OpenLoopClock clock;
  LatencySink::Options sink_options;
  sink_options.service_us = 1;
  workload::ConstantRateSchedule schedule(1e9);  // everything due at once
  workload::IidKeyStream keys(TestDist(), 5);
  OpenLoopDriver::Source source{0, &schedule, &keys, 5000};
  OpenLoopOptions driver_options;
  driver_options.pace = true;
  RunOutcome out =
      RunOpenLoop(sink_options, partition::Technique::kShuffle, 2, {source},
                  driver_options, &clock, 64);
  EXPECT_EQ(out.reports[0].injected, 5000u);
  EXPECT_GE(out.reports[0].late_batches, 1u);
  EXPECT_EQ(out.processed, 5000u);
}

TEST(ThreadedOpenLoopStressTest, MultiSourceWallClockBackpressure) {
  // The TSan workhorse: several injector threads racing real wall-clock
  // sinks through tiny rings (forced backpressure), every message's ts
  // stamp crossing a ring. Wall-clock latencies are host-dependent; what
  // must hold: nothing lost, nothing negative, per-source reports sane.
  const uint32_t kSources = 4;
  const uint64_t kPerSource = 2000;
  OpenLoopClock clock;
  LatencySink::Options sink_options;
  sink_options.model = LatencySink::ServiceModel::kWallClock;
  sink_options.clock = &clock;
  std::vector<std::unique_ptr<workload::ArrivalSchedule>> schedules;
  std::vector<std::unique_ptr<workload::IidKeyStream>> key_streams;
  std::vector<OpenLoopDriver::Source> sources;
  auto dist = TestDist();
  for (uint32_t s = 0; s < kSources; ++s) {
    schedules.push_back(
        std::make_unique<workload::PoissonSchedule>(100000.0, 100 + s));
    key_streams.push_back(std::make_unique<workload::IidKeyStream>(dist, s));
    OpenLoopDriver::Source src;
    src.source = s;
    src.schedule = schedules.back().get();
    src.keys = key_streams.back().get();
    src.messages = kPerSource;
    sources.push_back(src);
  }
  OpenLoopOptions driver_options;
  driver_options.pace = false;
  driver_options.max_batch = 32;
  RunOutcome out = RunOpenLoop(sink_options, partition::Technique::kPkgLocal,
                               4, sources, driver_options, &clock,
                               /*queue_capacity=*/16);
  EXPECT_EQ(out.processed, kSources * kPerSource);
  EXPECT_EQ(out.hist.count(), kSources * kPerSource);
  for (const auto& r : out.reports) {
    EXPECT_EQ(r.injected, kPerSource);
    EXPECT_GT(r.last_scheduled_us, 0u);
  }
}

TEST(ThreadedOpenLoopStressTest, PacedMultiSourceVirtualService) {
  // Paced injectors (real sleeps) + virtual-service sinks: the latency
  // metrics must still conserve counts even with wall-clock pacing in the
  // loop. Short schedules keep the paced run quick (~50ms).
  const uint32_t kSources = 2;
  const uint64_t kPerSource = 500;
  OpenLoopClock clock;
  LatencySink::Options sink_options;
  sink_options.service_us = 20;
  std::vector<std::unique_ptr<workload::ArrivalSchedule>> schedules;
  std::vector<std::unique_ptr<workload::IidKeyStream>> key_streams;
  std::vector<OpenLoopDriver::Source> sources;
  auto dist = TestDist();
  for (uint32_t s = 0; s < kSources; ++s) {
    schedules.push_back(std::make_unique<workload::OnOffSchedule>(
        40000.0, 1000.0, 5000, 5000, 200 + s));
    key_streams.push_back(
        std::make_unique<workload::IidKeyStream>(dist, 50 + s));
    OpenLoopDriver::Source src;
    src.source = s;
    src.schedule = schedules.back().get();
    src.keys = key_streams.back().get();
    src.messages = kPerSource;
    sources.push_back(src);
  }
  OpenLoopOptions driver_options;
  driver_options.pace = true;
  RunOutcome out = RunOpenLoop(sink_options, partition::Technique::kShuffle,
                               3, sources, driver_options, &clock, 256);
  EXPECT_EQ(out.processed, kSources * kPerSource);
  EXPECT_EQ(out.hist.count(), kSources * kPerSource);
  EXPECT_EQ(out.hist.saturated(), 0u);
}

}  // namespace
}  // namespace engine
}  // namespace pkgstream
