// Copyright 2026 The pkgstream Authors.
// Tests for live worker reconfiguration under fault injection: FaultPlans
// replayed through the OpenLoopDriver, the ReconfigureWorkers epoch
// broadcast, conservation across crash+rejoin, Abort() unblocking wedged
// injectors, and sharded-vs-thread-per-instance equivalence with faults in
// the loop. Suite names contain "Threaded" so the CI thread-sanitizer job
// (ctest -R 'Threaded|SpscRing') races the whole reconfiguration protocol:
// the injector thread publishing epochs while executor threads apply them
// at batch boundaries is exactly the cross-thread edge TSan must see.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "engine/fault_injection.h"
#include "engine/open_loop.h"
#include "engine/threaded_runtime.h"
#include "partition/factory.h"
#include "partition/rebalancing.h"
#include "workload/arrival_schedule.h"
#include "workload/static_distribution.h"
#include "workload/zipf.h"

namespace pkgstream {
namespace engine {
namespace {

std::shared_ptr<const workload::StaticDistribution> TestDist() {
  return std::make_shared<const workload::StaticDistribution>(
      workload::ZipfWeights(100, 1.0), "zipf(1.0,K=100)");
}

/// The canonical outage plan: crash `crashed` at t1, rejoin them at t2.
FaultPlan OutagePlan(uint32_t workers, const std::vector<uint32_t>& crashed,
                     uint64_t t1, uint64_t t2) {
  std::vector<FaultEvent> events;
  for (uint32_t w : crashed) {
    events.push_back({FaultKind::kCrash, w, t1, 0, 1.0});
  }
  for (uint32_t w : crashed) {
    events.push_back({FaultKind::kRejoin, w, t2, 0, 1.0});
  }
  auto plan = FaultPlan::Create(workers, std::move(events));
  EXPECT_TRUE(plan.ok()) << plan.status();
  return *plan;
}

struct FaultCell {
  stats::LatencyHistogram merged{1ULL << 30, 32};
  std::vector<uint64_t> processed;
  std::vector<uint64_t> phase_counts;  // per instance x phase, flattened
  OpenLoopSourceReport report;
  const partition::Partitioner* partitioner = nullptr;  // replica 0
  std::unique_ptr<ThreadedRuntime> rt;                  // keeps it valid
};

/// One spout -> `workers` virtual-service sinks, the plan's crash/rejoin
/// events applied by the injector and its stall/slowdown windows folded by
/// the sinks; phases split at the plan's outage boundaries {t1, t2}.
FaultCell RunFaultCell(const partition::PartitionerConfig& config,
                       uint32_t workers, size_t shards, const FaultPlan& plan,
                       uint64_t t1, uint64_t t2, uint64_t messages,
                       uint64_t seed) {
  Topology topology;
  NodeId spout = topology.AddSpout("src", 1);
  LatencySink::Options sink_options;
  sink_options.model = LatencySink::ServiceModel::kVirtualService;
  sink_options.service_us = 50;
  sink_options.fault_plan = &plan;
  sink_options.phase_boundaries_us = {t1, t2};
  NodeId sink = topology.AddOperator(
      "sink", LatencySink::MakeFactory(sink_options), workers);
  EXPECT_TRUE(topology.Connect(spout, sink, config).ok());
  ThreadedRuntimeOptions rt_options;
  rt_options.queue_capacity = 128;
  rt_options.shards = shards;
  auto rt = ThreadedRuntime::Create(&topology, rt_options);
  EXPECT_TRUE(rt.ok()) << rt.status();

  OpenLoopClock clock;
  OpenLoopOptions driver_options;
  driver_options.pace = false;
  OpenLoopDriver driver(rt->get(), spout, &clock, driver_options);
  workload::PoissonSchedule schedule(100000.0, seed);
  workload::IidKeyStream keys(TestDist(), seed * 31);
  OpenLoopDriver::Source source;
  source.source = 0;
  source.schedule = &schedule;
  source.keys = &keys;
  source.messages = messages;
  source.faults = &plan;
  source.fault_target = sink;
  auto reports = driver.Run({source});
  (*rt)->Finish();

  FaultCell cell;
  cell.report = reports[0];
  cell.merged =
      LatencySink::MergedHistogram(rt->get(), sink, workers, sink_options);
  cell.processed = (*rt)->Processed(sink);
  for (uint32_t i = 0; i < workers; ++i) {
    auto* op = dynamic_cast<LatencySink*>((*rt)->GetOperator(sink, i));
    EXPECT_NE(op, nullptr);
    for (size_t p = 0; p < op->phases(); ++p) {
      cell.phase_counts.push_back(op->phase_histogram(p).count());
    }
  }
  cell.partitioner = (*rt)->GetPartitioner(spout, sink, 0);
  cell.rt = std::move(*rt);
  return cell;
}

partition::PartitionerConfig TechniqueConfig(partition::Technique technique,
                                             uint32_t workers) {
  partition::PartitionerConfig config;
  config.technique = technique;
  config.seed = 42;
  if (technique == partition::Technique::kDChoices) {
    config.sketch_capacity = 2 * workers;
    config.heavy_threshold_factor = 0.5;
    config.heavy_min_messages = 100;
  }
  if (technique == partition::Technique::kRebalancing) {
    config.rebalance_period = 1000;
    // Effectively disable load-triggered migration so the migration stats
    // below count only the crash-driven failovers and rejoin restores.
    config.rebalance_threshold = 1e9;
  }
  return config;
}

// ---------------------------------------------------------------------------
// Conservation + outage isolation, across techniques and execution modes.
// ---------------------------------------------------------------------------

struct ConservationCase {
  partition::Technique technique;
  const char* name;
  size_t shards;
};

class ThreadedReconfigConservationTest
    : public testing::TestWithParam<ConservationCase> {};

TEST_P(ThreadedReconfigConservationTest, CrashRejoinLosesNothing) {
  const ConservationCase& c = GetParam();
  const uint32_t kWorkers = 8;
  const uint64_t kMessages = 6000;  // ~60ms of schedule at 100k/s
  const uint64_t kT1 = 20000, kT2 = 40000;
  const std::vector<uint32_t> crashed = {1, 2};
  FaultPlan plan = OutagePlan(kWorkers, crashed, kT1, kT2);
  FaultCell cell =
      RunFaultCell(TechniqueConfig(c.technique, kWorkers), kWorkers, c.shards,
                   plan, kT1, kT2, kMessages, /*seed=*/7);

  // Conservation: every scheduled message was injected, routed to a live
  // worker, processed and recorded — across the crash AND the rejoin.
  EXPECT_EQ(cell.report.injected, kMessages);
  EXPECT_FALSE(cell.report.aborted);
  EXPECT_EQ(cell.report.reconfigs_applied, plan.routing_events().size());
  uint64_t processed = 0;
  for (uint64_t n : cell.processed) processed += n;
  EXPECT_EQ(processed, kMessages) << c.name;
  EXPECT_EQ(cell.merged.count(), kMessages) << c.name;

  // Outage isolation: no message *scheduled during the outage* reached a
  // crashed worker (phase 1 = [t1, t2)); phase counts add back up.
  uint64_t phase_total = 0;
  for (uint64_t n : cell.phase_counts) phase_total += n;
  EXPECT_EQ(phase_total, kMessages);
  for (uint32_t w : crashed) {
    EXPECT_EQ(cell.phase_counts[w * 3 + 1], 0u)
        << c.name << ": crashed worker " << w
        << " was routed messages during its outage";
  }
  // The rejoined workers carry load again after t2 (phase 2).
  for (uint32_t w : crashed) {
    EXPECT_GT(cell.phase_counts[w * 3 + 2], 0u)
        << c.name << ": worker " << w << " got nothing after rejoining";
  }
}

INSTANTIATE_TEST_SUITE_P(
    TechniquesAndModes, ThreadedReconfigConservationTest,
    testing::Values(
        ConservationCase{partition::Technique::kPkgLocal, "pkg_local", 0},
        ConservationCase{partition::Technique::kPkgLocal, "pkg_local_sharded",
                         3},
        ConservationCase{partition::Technique::kDChoices, "d_choices", 0},
        ConservationCase{partition::Technique::kShuffle, "shuffle", 0},
        ConservationCase{partition::Technique::kRebalancing, "kg_migration",
                         3}),
    [](const testing::TestParamInfo<ConservationCase>& info) {
      return std::string(info.param.name);
    });

// ---------------------------------------------------------------------------
// Sharded execution equivalence with faults in the loop.
// ---------------------------------------------------------------------------

TEST(ThreadedReconfigTest, ShardedModeMatchesThreadPerInstance) {
  // The sharded-equivalence contract must survive reconfiguration: with a
  // single source, routing (including the degraded paths) happens producer-
  // side at deterministic stream positions, so per-sink arrival orders —
  // and every histogram bucket, per phase — are identical across modes.
  const uint32_t kWorkers = 8;
  const uint64_t kT1 = 20000, kT2 = 40000;
  FaultPlan plan = OutagePlan(kWorkers, {0, 5}, kT1, kT2);
  auto run = [&](size_t shards) {
    return RunFaultCell(
        TechniqueConfig(partition::Technique::kPkgLocal, kWorkers), kWorkers,
        shards, plan, kT1, kT2, /*messages=*/6000, /*seed=*/11);
  };
  FaultCell a = run(0);
  FaultCell b = run(3);
  EXPECT_EQ(a.processed, b.processed);
  EXPECT_EQ(a.phase_counts, b.phase_counts);
  EXPECT_EQ(a.merged.count(), b.merged.count());
  EXPECT_EQ(a.merged.P50(), b.merged.P50());
  EXPECT_EQ(a.merged.P99(), b.merged.P99());
  EXPECT_EQ(a.merged.P999(), b.merged.P999());
  EXPECT_EQ(a.merged.max(), b.merged.max());
  EXPECT_DOUBLE_EQ(a.merged.mean(), b.merged.mean());
}

TEST(ThreadedReconfigTest, RepeatedRunsAreBitDeterministic) {
  const uint32_t kWorkers = 8;
  const uint64_t kT1 = 20000, kT2 = 40000;
  FaultPlan plan = OutagePlan(kWorkers, {3}, kT1, kT2);
  auto run = [&] {
    return RunFaultCell(
        TechniqueConfig(partition::Technique::kDChoices, kWorkers), kWorkers,
        /*shards=*/2, plan, kT1, kT2, /*messages=*/6000, /*seed=*/13);
  };
  FaultCell a = run();
  FaultCell b = run();
  EXPECT_EQ(a.processed, b.processed);
  EXPECT_EQ(a.phase_counts, b.phase_counts);
  EXPECT_EQ(a.merged.P50(), b.merged.P50());
  EXPECT_EQ(a.merged.P99(), b.merged.P99());
  EXPECT_DOUBLE_EQ(a.merged.mean(), b.merged.mean());
}

// ---------------------------------------------------------------------------
// KG-with-migration: crash-driven failover + rejoin restore accounting.
// ---------------------------------------------------------------------------

TEST(ThreadedReconfigTest, RebalancingFailoverHandoffIsAccounted) {
  const uint32_t kWorkers = 8;
  const uint64_t kT1 = 20000, kT2 = 40000;
  FaultPlan plan = OutagePlan(kWorkers, {0, 1, 2}, kT1, kT2);
  FaultCell cell = RunFaultCell(
      TechniqueConfig(partition::Technique::kRebalancing, kWorkers), kWorkers,
      /*shards=*/0, plan, kT1, kT2, /*messages=*/6000, /*seed=*/17);
  auto* kg = dynamic_cast<const partition::RebalancingKeyGrouping*>(
      cell.partitioner);
  ASSERT_NE(kg, nullptr);
  const partition::RebalancingStats& stats = kg->stats();
  // Keys living on the three crashed workers failed over during the
  // outage, and the rejoin migrated each one straight back: with the
  // load-triggered rebalancer disabled, every move is a failover or its
  // inverse, so the handoff is exactly accounted.
  EXPECT_GE(stats.failovers, 1u);
  EXPECT_EQ(stats.keys_moved, 2 * stats.failovers);
  EXPECT_GT(stats.state_moved, 0u);
}

// ---------------------------------------------------------------------------
// ReconfigureWorkers validation.
// ---------------------------------------------------------------------------

TEST(ThreadedReconfigTest, ReconfigureValidatesHostileInput) {
  Topology topology;
  NodeId spout = topology.AddSpout("src", 1);
  LatencySink::Options sink_options;
  NodeId pkg_sink = topology.AddOperator(
      "pkg_sink", LatencySink::MakeFactory(sink_options), 4);
  NodeId kg_sink = topology.AddOperator(
      "kg_sink", LatencySink::MakeFactory(sink_options), 4);
  ASSERT_TRUE(
      topology.Connect(spout, pkg_sink, partition::Technique::kPkgLocal).ok());
  ASSERT_TRUE(
      topology.Connect(spout, kg_sink, partition::Technique::kHashing).ok());
  auto rt = ThreadedRuntime::Create(&topology);
  ASSERT_TRUE(rt.ok());

  const std::vector<bool> three_alive = {true, false, true, true};
  // Healthy call on a reconfigurable edge.
  EXPECT_TRUE((*rt)->ReconfigureWorkers(pkg_sink, three_alive).ok());
  // Unknown node id.
  EXPECT_TRUE((*rt)->ReconfigureWorkers(NodeId{99}, three_alive)
                  .IsInvalidArgument());
  // Size mismatch.
  EXPECT_TRUE((*rt)->ReconfigureWorkers(pkg_sink, {true, true})
                  .IsInvalidArgument());
  // Empty alive set.
  EXPECT_TRUE(
      (*rt)->ReconfigureWorkers(pkg_sink, {false, false, false, false})
          .IsInvalidArgument());
  // A spout has no inbound edges to reconfigure.
  EXPECT_TRUE(
      (*rt)->ReconfigureWorkers(spout, {true}).IsInvalidArgument());
  // Plain hashing cannot drop a worker: Unimplemented, and nothing applied.
  EXPECT_TRUE((*rt)->ReconfigureWorkers(kg_sink, three_alive)
                  .IsUnimplemented());

  (*rt)->Finish();
  // After Finish the executor threads that would apply epochs are gone.
  EXPECT_TRUE((*rt)->ReconfigureWorkers(pkg_sink, three_alive)
                  .IsFailedPrecondition());
}

// ---------------------------------------------------------------------------
// Abort() unblocks injectors wedged on full rings.
// ---------------------------------------------------------------------------

/// Holds every message until released: with a tiny ring this wedges the
/// whole pipeline behind one in-flight message.
class GatedSink final : public Operator {
 public:
  explicit GatedSink(const std::atomic<bool>* release) : release_(release) {}
  void Process(const Message&, Emitter*) override {
    while (!release_->load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  }

 private:
  const std::atomic<bool>* release_;
};

TEST(ThreadedReconfigAbortTest, AbortUnblocksInjectorOnFullRing) {
  // Regression test for the run-abort satellite: an injector blocked in
  // PushBlocking on a full ring must observe Abort(), drop its items and
  // exit cleanly with report.aborted set — and Finish() must still join.
  std::atomic<bool> release{false};
  Topology topology;
  NodeId spout = topology.AddSpout("src", 1);
  NodeId sink = topology.AddOperator(
      "sink",
      [&release](uint32_t) { return std::make_unique<GatedSink>(&release); },
      1);
  ASSERT_TRUE(topology.Connect(spout, sink, partition::Technique::kShuffle)
                  .ok());
  ThreadedRuntimeOptions options;
  options.queue_capacity = 4;
  options.emit_batch = 1;
  auto rt = ThreadedRuntime::Create(&topology, options);
  ASSERT_TRUE(rt.ok());

  OpenLoopClock clock;
  OpenLoopOptions driver_options;
  driver_options.pace = false;
  OpenLoopDriver driver(rt->get(), spout, &clock, driver_options);
  workload::ConstantRateSchedule schedule(1e9);
  workload::IidKeyStream keys(TestDist(), 3);
  OpenLoopDriver::Source source;
  source.source = 0;
  source.schedule = &schedule;
  source.keys = &keys;
  source.messages = 100000;

  std::vector<OpenLoopSourceReport> reports;
  std::thread injector(
      [&] { reports = driver.Run({source}); });
  // Let the injector wedge against the gated sink, then abort the run.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  (*rt)->Abort();
  injector.join();  // must return promptly — this is the regression
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_TRUE(reports[0].aborted);
  EXPECT_LT(reports[0].injected, source.messages);

  release.store(true, std::memory_order_release);
  (*rt)->Finish();  // joins cleanly after an abort
  EXPECT_TRUE((*rt)->aborted());
}

// ---------------------------------------------------------------------------
// Randomized fault plans under real concurrency (the TSan workhorse).
// ---------------------------------------------------------------------------

TEST(ThreadedReconfigStressTest, RandomPlansConserveEveryMessage) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    auto plan = MakeRandomFaultPlan(/*workers=*/16, /*rounds=*/2,
                                    /*max_kill=*/8, /*horizon_us=*/40000,
                                    seed);
    ASSERT_TRUE(plan.ok()) << plan.status();
    const uint64_t kMessages = 4000;  // ~40ms at 100k/s
    FaultCell cell = RunFaultCell(
        TechniqueConfig(partition::Technique::kPkgLocal, 16), 16,
        /*shards=*/2, *plan, /*t1=*/10000, /*t2=*/30000, kMessages, seed);
    EXPECT_FALSE(cell.report.aborted);
    EXPECT_EQ(cell.report.reconfigs_applied, plan->routing_events().size());
    uint64_t processed = 0;
    for (uint64_t n : cell.processed) processed += n;
    EXPECT_EQ(processed, kMessages) << "seed " << seed;
    EXPECT_EQ(cell.merged.count(), kMessages) << "seed " << seed;
  }
}

}  // namespace
}  // namespace engine
}  // namespace pkgstream
