// Copyright 2026 The pkgstream Authors.
// Tests for the threaded runtime: the concurrent execution must preserve
// the aggregate results the deterministic LogicalRuntime defines.

#include <gtest/gtest.h>

#include <map>
#include <thread>

#include "apps/wordcount.h"
#include "engine/logical_runtime.h"
#include "engine/threaded_runtime.h"
#include "workload/static_distribution.h"
#include "workload/zipf.h"

namespace pkgstream {
namespace engine {
namespace {

TEST(ThreadedRuntimeTest, RejectsTickPeriods) {
  apps::WordCountTopology wc = apps::MakeWordCountTopology(
      partition::Technique::kShuffle, 1, 2, /*tick=*/100, 5, 42);
  EXPECT_TRUE(
      ThreadedRuntime::Create(&wc.topology).status().IsInvalidArgument());
}

TEST(ThreadedRuntimeTest, RejectsZeroCapacity) {
  apps::WordCountTopology wc = apps::MakeWordCountTopology(
      partition::Technique::kShuffle, 1, 2, 0, 5, 42);
  ThreadedRuntimeOptions options;
  options.queue_capacity = 0;
  EXPECT_TRUE(ThreadedRuntime::Create(&wc.topology, options)
                  .status()
                  .IsInvalidArgument());
}

// Regression: a failed Init() (partitioner config rejected at runtime
// construction) used to leave a partially-built runtime whose destructor
// walked mailboxes and inject mutexes that were never created.
TEST(ThreadedRuntimeTest, CreateFailsCleanlyOnBadPartitionerConfig) {
  Topology topo;
  NodeId spout = topo.AddSpout("src", 2);
  NodeId sink = topo.AddOperator(
      "sink",
      [](uint32_t) {
        return std::make_unique<apps::WordCountCounter>(
            apps::CounterMode::kPartialCounts, 5);
      },
      2);
  partition::PartitionerConfig config;
  config.technique = partition::Technique::kOffGreedy;  // needs frequencies
  ASSERT_TRUE(topo.Connect(spout, sink, config).ok());
  auto rt = ThreadedRuntime::Create(&topo);
  EXPECT_TRUE(rt.status().IsFailedPrecondition());
  // No crash on destruction of the failed Result.
}

TEST(ThreadedRuntimeTest, EmptyRunShutsDownCleanly) {
  apps::WordCountTopology wc = apps::MakeWordCountTopology(
      partition::Technique::kPkgLocal, 2, 4, 0, 5, 42);
  auto rt = ThreadedRuntime::Create(&wc.topology);
  ASSERT_TRUE(rt.ok());
  (*rt)->Finish();  // no messages at all
  auto* agg = static_cast<apps::TopKAggregator*>(
      (*rt)->GetOperator(wc.aggregator, 0));
  EXPECT_TRUE(agg->totals().empty());
}

/// Word-count totals must be exact under every technique, regardless of
/// thread interleaving.
class ThreadedWordCountTest
    : public testing::TestWithParam<partition::Technique> {};

TEST_P(ThreadedWordCountTest, TotalsExactUnderConcurrency) {
  apps::WordCountTopology wc =
      apps::MakeWordCountTopology(GetParam(), /*sources=*/4, /*workers=*/4,
                                  /*tick=*/0, /*topk=*/5, 42);
  auto rt = ThreadedRuntime::Create(&wc.topology);
  ASSERT_TRUE(rt.ok());

  // 4 injector threads, one per source instance, hammering concurrently.
  constexpr int kPerSource = 20000;
  constexpr int kKeys = 37;
  std::vector<std::thread> injectors;
  for (SourceId s = 0; s < 4; ++s) {
    injectors.emplace_back([&, s] {
      for (int i = 0; i < kPerSource; ++i) {
        Message m;
        m.key = static_cast<Key>((i + s) % kKeys);
        m.tag = apps::kTagWord;
        (*rt)->Inject(wc.spout, s, m);
      }
    });
  }
  for (auto& t : injectors) t.join();
  (*rt)->Finish();

  auto* agg = static_cast<apps::TopKAggregator*>(
      (*rt)->GetOperator(wc.aggregator, 0));
  uint64_t total = 0;
  for (const auto& [key, count] : agg->totals()) {
    EXPECT_LT(key, static_cast<Key>(kKeys));
    total += count;
  }
  EXPECT_EQ(total, 4ull * kPerSource);
  // Every key was injected the same number of times by symmetry.
  for (const auto& [key, count] : agg->totals()) {
    EXPECT_NEAR(static_cast<double>(count), 4.0 * kPerSource / kKeys,
                4.0 * kPerSource / kKeys * 0.05)
        << "key " << key;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Techniques, ThreadedWordCountTest,
    testing::Values(partition::Technique::kHashing,
                    partition::Technique::kShuffle,
                    partition::Technique::kPkgLocal,
                    partition::Technique::kPkgGlobal),
    [](const testing::TestParamInfo<partition::Technique>& info) {
      std::string name = partition::TechniqueName(info.param);
      for (char& c : name) {
        if (c == '-' || c == '+') c = '_';
      }
      return name;
    });

TEST(ThreadedRuntimeTest, ProcessedCountsConserveMessages) {
  apps::WordCountTopology wc = apps::MakeWordCountTopology(
      partition::Technique::kPkgLocal, 1, 3, 0, 5, 42);
  auto rt = ThreadedRuntime::Create(&wc.topology);
  ASSERT_TRUE(rt.ok());
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    Message m;
    m.key = static_cast<Key>(i % 11);
    m.tag = apps::kTagWord;
    (*rt)->Inject(wc.spout, 0, m);
  }
  (*rt)->Finish();
  auto counter_loads = (*rt)->Processed(wc.counter);
  uint64_t counter_total = 0;
  for (uint64_t l : counter_loads) counter_total += l;
  EXPECT_EQ(counter_total, static_cast<uint64_t>(n));
}

TEST(ThreadedRuntimeTest, MatchesLogicalRuntimeTotals) {
  auto run_logical = [] {
    apps::WordCountTopology wc = apps::MakeWordCountTopology(
        partition::Technique::kHashing, 1, 4, 0, 5, 42);
    auto rt = LogicalRuntime::Create(&wc.topology);
    EXPECT_TRUE(rt.ok());
    auto dist = std::make_shared<workload::StaticDistribution>(
        workload::ZipfWeights(100, 1.1), "zipf");
    workload::IidKeyStream stream(dist, 7);
    for (int i = 0; i < 20000; ++i) {
      Message m;
      m.key = stream.Next();
      m.tag = apps::kTagWord;
      (*rt)->Inject(wc.spout, 0, m);
    }
    (*rt)->Finish();
    auto* agg = static_cast<apps::TopKAggregator*>(
        (*rt)->GetOperator(wc.aggregator, 0));
    return std::map<Key, uint64_t>(agg->totals().begin(),
                                   agg->totals().end());
  };
  auto run_threaded = [] {
    apps::WordCountTopology wc = apps::MakeWordCountTopology(
        partition::Technique::kHashing, 1, 4, 0, 5, 42);
    auto rt = ThreadedRuntime::Create(&wc.topology);
    EXPECT_TRUE(rt.ok());
    auto dist = std::make_shared<workload::StaticDistribution>(
        workload::ZipfWeights(100, 1.1), "zipf");
    workload::IidKeyStream stream(dist, 7);
    for (int i = 0; i < 20000; ++i) {
      Message m;
      m.key = stream.Next();
      m.tag = apps::kTagWord;
      (*rt)->Inject(wc.spout, 0, m);
    }
    (*rt)->Finish();
    auto* agg = static_cast<apps::TopKAggregator*>(
        (*rt)->GetOperator(wc.aggregator, 0));
    return std::map<Key, uint64_t>(agg->totals().begin(),
                                   agg->totals().end());
  };
  EXPECT_EQ(run_logical(), run_threaded());
}

TEST(ThreadedRuntimeTest, BackpressureSmallQueuesStillComplete) {
  apps::WordCountTopology wc = apps::MakeWordCountTopology(
      partition::Technique::kShuffle, 2, 3, 0, 5, 42);
  ThreadedRuntimeOptions options;
  options.queue_capacity = 2;  // brutal backpressure
  auto rt = ThreadedRuntime::Create(&wc.topology, options);
  ASSERT_TRUE(rt.ok());
  std::vector<std::thread> injectors;
  for (SourceId s = 0; s < 2; ++s) {
    injectors.emplace_back([&, s] {
      for (int i = 0; i < 3000; ++i) {
        Message m;
        m.key = static_cast<Key>(i % 5);
        m.tag = apps::kTagWord;
        (*rt)->Inject(wc.spout, s, m);
      }
    });
  }
  for (auto& t : injectors) t.join();
  (*rt)->Finish();
  auto* agg = static_cast<apps::TopKAggregator*>(
      (*rt)->GetOperator(wc.aggregator, 0));
  uint64_t total = 0;
  for (const auto& [_, count] : agg->totals()) total += count;
  EXPECT_EQ(total, 6000u);
}

TEST(ThreadedRuntimeTest, FinishIsIdempotent) {
  apps::WordCountTopology wc = apps::MakeWordCountTopology(
      partition::Technique::kShuffle, 1, 2, 0, 5, 42);
  auto rt = ThreadedRuntime::Create(&wc.topology);
  ASSERT_TRUE(rt.ok());
  (*rt)->Finish();
  (*rt)->Finish();  // no crash, no double EOS
}

}  // namespace
}  // namespace engine
}  // namespace pkgstream
