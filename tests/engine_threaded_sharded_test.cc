// Copyright 2026 The pkgstream Authors.
// Tests for ThreadedRuntime's sharded execution mode. Suite names contain
// "Threaded" so the CI thread-sanitizer job (ctest -R 'Threaded|SpscRing')
// race-checks the shard drain loop, the shard-granularity parked-consumer
// gate, and the help-drain path under real concurrency.
//
// The contract under test (see threaded_runtime.h): sharded mode changes
// the thread count and scheduling, never the results. Routed counts are
// byte-identical to thread-per-instance mode for every technique (routing
// is producer-side), and with a single source the per-sink arrival order —
// hence the virtual-service latency histograms — is bit-identical too.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <thread>
#include <tuple>
#include <vector>

#include "apps/wordcount.h"
#include "engine/cpu_affinity.h"
#include "engine/logical_runtime.h"
#include "engine/open_loop.h"
#include "engine/threaded_runtime.h"
#include "partition/factory.h"
#include "workload/arrival_schedule.h"
#include "workload/static_distribution.h"
#include "workload/zipf.h"

namespace pkgstream {
namespace engine {
namespace {

std::shared_ptr<const workload::StaticDistribution> TestDist() {
  return std::make_shared<const workload::StaticDistribution>(
      workload::ZipfWeights(100, 1.2), "zipf(1.2,K=100)");
}

/// Merged-histogram fingerprint for bit-equality comparisons.
struct Fingerprint {
  uint64_t count, min, max, p50, p95, p99, p999, saturated;
  double mean;
  bool operator==(const Fingerprint& o) const {
    return count == o.count && min == o.min && max == o.max && p50 == o.p50 &&
           p95 == o.p95 && p99 == o.p99 && p999 == o.p999 &&
           saturated == o.saturated && mean == o.mean;
  }
};

Fingerprint FingerprintOf(const stats::LatencyHistogram& h) {
  return {h.count(), h.min(),  h.max(),       h.P50(),  h.P95(),
          h.P99(),   h.P999(), h.saturated(), h.mean()};
}

struct CellOutcome {
  Fingerprint latency{};
  std::vector<uint64_t> routed;  // Processed(sink): per-instance counts
};

/// Single source -> `workers` virtual-service LatencySinks: a fixed,
/// precomputed Poisson-arrival message sequence injected flat out. The
/// sink arrival order equals injection order per instance, so both the
/// routed counts and every histogram statistic must replay exactly across
/// execution modes.
CellOutcome RunLatencyCell(const partition::PartitionerConfig& config,
                           uint32_t workers, size_t shards, bool pin_shards) {
  const uint64_t kMessages = 6000;
  // 20k/s offered to `workers` sinks of capacity 1/75us: the hot workers
  // queue, so latencies are nontrivial and order-sensitive.
  workload::PoissonSchedule schedule(20000.0, 17);
  workload::IidKeyStream keys(TestDist(), 17);
  std::vector<Message> msgs(kMessages);
  std::vector<uint64_t> when(kMessages);
  std::vector<Key> key_buf(kMessages);
  schedule.NextBatchMicros(when.data(), kMessages);
  keys.NextBatch(key_buf.data(), kMessages);
  for (uint64_t i = 0; i < kMessages; ++i) {
    msgs[i].key = key_buf[i];
    msgs[i].ts = when[i];
  }

  LatencySink::Options sink_options;
  sink_options.service_us = 75;
  Topology topology;
  NodeId spout = topology.AddSpout("src", 1);
  NodeId sink = topology.AddOperator(
      "sink", LatencySink::MakeFactory(sink_options), workers);
  EXPECT_TRUE(topology.Connect(spout, sink, config).ok());

  ThreadedRuntimeOptions options;
  options.queue_capacity = 64;  // some backpressure in every mode
  options.shards = shards;
  options.pin_shards = pin_shards;
  auto rt = ThreadedRuntime::Create(&topology, options);
  EXPECT_TRUE(rt.ok()) << rt.status();
  constexpr size_t kInjectChunk = 500;
  for (size_t at = 0; at < kMessages; at += kInjectChunk) {
    (*rt)->InjectBatch(spout, 0, msgs.data() + at, kInjectChunk);
  }
  (*rt)->Finish();

  CellOutcome out;
  out.latency = FingerprintOf(
      LatencySink::MergedHistogram(rt->get(), sink, workers, sink_options));
  out.routed = (*rt)->Processed(sink);
  EXPECT_EQ((*rt)->ApproxInboxDepth(sink), 0u);  // drained after Finish
  return out;
}

partition::PartitionerConfig ConfigFor(partition::Technique technique,
                                       uint32_t workers) {
  partition::PartitionerConfig config;
  config.technique = technique;
  config.seed = 42;
  if (technique == partition::Technique::kDChoices ||
      technique == partition::Technique::kWChoices) {
    config.sketch_capacity = 2 * workers;
    if (technique == partition::Technique::kDChoices) {
      config.heavy_threshold_factor = 0.5;
    }
  }
  return config;
}

using ShardedParam = std::tuple<partition::Technique, size_t>;

class ThreadedShardedTest : public testing::TestWithParam<ShardedParam> {};

TEST_P(ThreadedShardedTest, ShardedIsBitIdenticalToThreadPerInstance) {
  const auto [technique, shards] = GetParam();
  const uint32_t kWorkers = 16;
  const partition::PartitionerConfig config = ConfigFor(technique, kWorkers);
  const CellOutcome reference =
      RunLatencyCell(config, kWorkers, /*shards=*/0, /*pin_shards=*/false);
  const CellOutcome sharded =
      RunLatencyCell(config, kWorkers, shards, /*pin_shards=*/false);
  EXPECT_EQ(sharded.routed, reference.routed);
  EXPECT_TRUE(sharded.latency == reference.latency);
  EXPECT_EQ(reference.latency.count, 6000u);
}

INSTANTIATE_TEST_SUITE_P(
    TechniquesByShards, ThreadedShardedTest,
    testing::Combine(testing::Values(partition::Technique::kHashing,
                                     partition::Technique::kPkgLocal,
                                     partition::Technique::kDChoices,
                                     partition::Technique::kWChoices),
                     testing::Values<size_t>(1, 3, 8)),
    [](const testing::TestParamInfo<ShardedParam>& info) {
      std::string name = partition::TechniqueName(std::get<0>(info.param));
      for (char& c : name) {
        if (c == '-' || c == '+') c = '_';
      }
      return name + "_Shards" + std::to_string(std::get<1>(info.param));
    });

TEST(ThreadedShardedTest, PinnedShardsMatchToo) {
  // Pinning is a pure locality hint: results identical, pin failures
  // silently tolerated (CpuAffinity is best-effort by contract).
  const uint32_t kWorkers = 16;
  const partition::PartitionerConfig config =
      ConfigFor(partition::Technique::kPkgLocal, kWorkers);
  const CellOutcome reference = RunLatencyCell(config, kWorkers, 0, false);
  const CellOutcome pinned = RunLatencyCell(config, kWorkers, 4, true);
  EXPECT_EQ(pinned.routed, reference.routed);
  EXPECT_TRUE(pinned.latency == reference.latency);
  EXPECT_GE(CpuAffinity::AvailableCpus(), 1u);
}

TEST(ThreadedShardedTest, ManyMoreInstancesThanShards) {
  // The headline configuration: hundreds of sink instances multiplexed on
  // a handful of shard threads, still bit-identical to 200 dedicated
  // threads.
  const uint32_t kWorkers = 200;
  const partition::PartitionerConfig config =
      ConfigFor(partition::Technique::kDChoices, kWorkers);
  const CellOutcome reference = RunLatencyCell(config, kWorkers, 0, false);
  const CellOutcome sharded = RunLatencyCell(config, kWorkers, 4, false);
  EXPECT_EQ(sharded.routed, reference.routed);
  EXPECT_TRUE(sharded.latency == reference.latency);
}

// --- Multi-stage stress: wordcount through the sharded runtime ----------

constexpr uint32_t kSources = 4;
constexpr uint32_t kWorkers = 8;
constexpr int kPerSource = 8000;

/// The key sequence of one source, deterministic from its id.
std::vector<Key> SourceKeys(uint32_t source) {
  workload::IidKeyStream stream(TestDist(), /*seed=*/700 + source);
  std::vector<Key> keys;
  keys.reserve(kPerSource);
  for (int i = 0; i < kPerSource; ++i) keys.push_back(stream.Next());
  return keys;
}

std::map<Key, uint64_t> AggregatorTotals(Operator* agg) {
  auto* topk = static_cast<apps::TopKAggregator*>(agg);
  return std::map<Key, uint64_t>(topk->totals().begin(),
                                 topk->totals().end());
}

/// Reference totals through the deterministic LogicalRuntime.
std::map<Key, uint64_t> LogicalTotals(partition::Technique technique) {
  apps::WordCountTopology wc = apps::MakeWordCountTopology(
      technique, kSources, kWorkers, /*tick=*/0, /*topk=*/5, 42);
  auto rt = LogicalRuntime::Create(&wc.topology);
  EXPECT_TRUE(rt.ok());
  for (uint32_t s = 0; s < kSources; ++s) {
    for (Key k : SourceKeys(s)) {
      Message m;
      m.key = k;
      m.tag = apps::kTagWord;
      (*rt)->Inject(wc.spout, s, m);
    }
  }
  (*rt)->Finish();
  return AggregatorTotals((*rt)->GetOperator(wc.aggregator, 0));
}

using StressParam = std::tuple<partition::Technique, size_t>;

class ThreadedShardedStressTest : public testing::TestWithParam<StressParam> {
};

TEST_P(ThreadedShardedStressTest, WordCountTotalsMatchLogical) {
  // The TSan workhorse for sharded mode: a multi-stage topology (spout ->
  // counter x8 -> aggregator) at queue_capacity=2, concurrent InjectBatch
  // from one thread per source. Tiny rings force constant backpressure,
  // so shard threads exercise the help-drain path (a shard blocked
  // pushing counter->aggregator drains its own aggregator/counters of
  // higher rank) on every run. Totals must match LogicalRuntime exactly.
  const auto [technique, shards] = GetParam();
  apps::WordCountTopology wc = apps::MakeWordCountTopology(
      technique, kSources, kWorkers, /*tick=*/0, /*topk=*/5, 42);
  ThreadedRuntimeOptions options;
  options.queue_capacity = 2;
  options.emit_batch = 3;  // never divides the stream; partial flushes
  options.shards = shards;
  auto rt = ThreadedRuntime::Create(&wc.topology, options);
  ASSERT_TRUE(rt.ok());

  std::vector<std::thread> injectors;
  injectors.reserve(kSources);
  for (uint32_t s = 0; s < kSources; ++s) {
    injectors.emplace_back([&, s] {
      const std::vector<Key> keys = SourceKeys(s);
      std::vector<Message> msgs(keys.size());
      for (size_t i = 0; i < keys.size(); ++i) {
        msgs[i].key = keys[i];
        msgs[i].tag = apps::kTagWord;
      }
      constexpr size_t kChunk = 256;
      for (size_t at = 0; at < msgs.size(); at += kChunk) {
        const size_t len = std::min(kChunk, msgs.size() - at);
        (*rt)->InjectBatch(wc.spout, s, msgs.data() + at, len);
      }
    });
  }
  for (auto& t : injectors) t.join();
  (*rt)->Finish();

  auto threaded = AggregatorTotals((*rt)->GetOperator(wc.aggregator, 0));
  EXPECT_EQ(threaded, LogicalTotals(technique));

  // Conservation at the counter stage: every injected message processed
  // by exactly one counter instance, none lost to the shard scheduler.
  uint64_t counter_total = 0;
  for (uint64_t l : (*rt)->Processed(wc.counter)) counter_total += l;
  EXPECT_EQ(counter_total,
            static_cast<uint64_t>(kSources) * kPerSource);
}

INSTANTIATE_TEST_SUITE_P(
    TechniquesByShards, ThreadedShardedStressTest,
    testing::Combine(testing::Values(partition::Technique::kHashing,
                                     partition::Technique::kShuffle,
                                     partition::Technique::kPkgLocal),
                     testing::Values<size_t>(1, 3, 8)),
    [](const testing::TestParamInfo<StressParam>& info) {
      std::string name = partition::TechniqueName(std::get<0>(info.param));
      for (char& c : name) {
        if (c == '-' || c == '+') c = '_';
      }
      return name + "_Shards" + std::to_string(std::get<1>(info.param));
    });

TEST(ThreadedShardedStressTest, SingleShardMultiStageCannotDeadlock) {
  // The adversarial help-drain case: ONE shard owns every instance of a
  // three-stage pipeline with 2-slot rings and an emit batch far larger
  // than the rings. Any scheduling mistake (e.g. help-draining at equal
  // rank, or re-entering the blocked producer) livelocks here; the
  // strictly-increasing-rank rule must complete the run with exact
  // totals.
  apps::WordCountTopology wc = apps::MakeWordCountTopology(
      partition::Technique::kPkgLocal, /*sources=*/2, kWorkers,
      /*tick=*/0, /*topk=*/5, 42);
  ThreadedRuntimeOptions options;
  options.queue_capacity = 2;
  options.emit_batch = 64;  // every flush needs many partial publications
  options.shards = 1;
  auto rt = ThreadedRuntime::Create(&wc.topology, options);
  ASSERT_TRUE(rt.ok());
  uint64_t injected = 0;
  for (uint32_t s = 0; s < 2; ++s) {
    for (Key k : SourceKeys(s)) {
      Message m;
      m.key = k;
      m.tag = apps::kTagWord;
      (*rt)->Inject(wc.spout, s, m);
      ++injected;
    }
  }
  (*rt)->Finish();
  uint64_t counter_total = 0;
  for (uint64_t l : (*rt)->Processed(wc.counter)) counter_total += l;
  EXPECT_EQ(counter_total, injected);
  uint64_t agg_total = 0;
  for (const auto& [key, count] :
       AggregatorTotals((*rt)->GetOperator(wc.aggregator, 0))) {
    agg_total += count;
  }
  EXPECT_EQ(agg_total, injected);
}

}  // namespace
}  // namespace engine
}  // namespace pkgstream
