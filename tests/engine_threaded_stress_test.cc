// Copyright 2026 The pkgstream Authors.
// Stress tests for ThreadedRuntime's lock-free hot path: high parallelism,
// brutal backpressure (tiny rings), producer-side emit batching (disabled,
// odd-sized, and far larger than the rings), and multi-threaded Inject —
// including two injector threads hammering the *same* source instance,
// which exercises the per-source serialization inside Inject. Per-key totals
// must match the deterministic LogicalRuntime exactly, message for
// message. These are the suites the ThreadSanitizer CI job watches: any
// data race in the ring / mailbox / replica plumbing surfaces here.

#include <gtest/gtest.h>

#include <map>
#include <thread>
#include <tuple>
#include <vector>

#include "apps/wordcount.h"
#include "engine/logical_runtime.h"
#include "engine/threaded_runtime.h"
#include "workload/static_distribution.h"
#include "workload/zipf.h"

namespace pkgstream {
namespace engine {
namespace {

constexpr uint32_t kSources = 4;
constexpr uint32_t kWorkers = 8;
constexpr int kInjectorsPerSource = 2;
constexpr int kPerInjector = 5000;

/// The key sequence of one injector thread, deterministic from its id.
std::vector<Key> InjectorKeys(uint32_t injector) {
  auto dist = std::make_shared<workload::StaticDistribution>(
      workload::ZipfWeights(200, 1.2), "zipf");
  workload::IidKeyStream stream(dist, /*seed=*/1000 + injector);
  std::vector<Key> keys;
  keys.reserve(kPerInjector);
  for (int i = 0; i < kPerInjector; ++i) keys.push_back(stream.Next());
  return keys;
}

std::map<Key, uint64_t> AggregatorTotals(Operator* agg) {
  auto* topk = static_cast<apps::TopKAggregator*>(agg);
  return std::map<Key, uint64_t>(topk->totals().begin(),
                                 topk->totals().end());
}

/// Reference totals: the same per-injector key sequences fed through the
/// deterministic LogicalRuntime (interleaving cannot change totals).
std::map<Key, uint64_t> LogicalTotals(partition::Technique technique) {
  apps::WordCountTopology wc = apps::MakeWordCountTopology(
      technique, kSources, kWorkers, /*tick=*/0, /*topk=*/5, 42);
  auto rt = LogicalRuntime::Create(&wc.topology);
  EXPECT_TRUE(rt.ok());
  for (uint32_t s = 0; s < kSources; ++s) {
    for (int j = 0; j < kInjectorsPerSource; ++j) {
      for (Key k : InjectorKeys(s * kInjectorsPerSource + j)) {
        Message m;
        m.key = k;
        m.tag = apps::kTagWord;
        (*rt)->Inject(wc.spout, s, m);
      }
    }
  }
  (*rt)->Finish();
  return AggregatorTotals((*rt)->GetOperator(wc.aggregator, 0));
}

/// (technique, emit_batch): every technique is stressed with producer-side
/// batching disabled (1), an odd batch that never divides the stream (3),
/// and a batch far larger than the 2-slot rings (64) — the case where every
/// flush needs many partial TryPushBatch publications.
using StressParam = std::tuple<partition::Technique, size_t>;

class ThreadedStressTest : public testing::TestWithParam<StressParam> {};

TEST_P(ThreadedStressTest, PerKeyTotalsMatchLogicalUnderStress) {
  const auto [technique, emit_batch] = GetParam();
  apps::WordCountTopology wc = apps::MakeWordCountTopology(
      technique, kSources, kWorkers, /*tick=*/0, /*topk=*/5, 42);
  ThreadedRuntimeOptions options;
  options.queue_capacity = 2;  // brutal backpressure on every ring
  options.emit_batch = emit_batch;
  auto rt = ThreadedRuntime::Create(&wc.topology, options);
  ASSERT_TRUE(rt.ok());

  // Two injector threads per source instance, all running concurrently.
  std::vector<std::thread> injectors;
  for (uint32_t s = 0; s < kSources; ++s) {
    for (int j = 0; j < kInjectorsPerSource; ++j) {
      injectors.emplace_back([&, s, j] {
        for (Key k : InjectorKeys(s * kInjectorsPerSource + j)) {
          Message m;
          m.key = k;
          m.tag = apps::kTagWord;
          (*rt)->Inject(wc.spout, s, m);
        }
      });
    }
  }
  for (auto& t : injectors) t.join();
  (*rt)->Finish();

  auto threaded = AggregatorTotals((*rt)->GetOperator(wc.aggregator, 0));
  EXPECT_EQ(threaded, LogicalTotals(technique));

  // Conservation at the counter stage too: every injected message was
  // processed by exactly one counter instance.
  uint64_t counter_total = 0;
  for (uint64_t l : (*rt)->Processed(wc.counter)) counter_total += l;
  EXPECT_EQ(counter_total, static_cast<uint64_t>(kSources) *
                               kInjectorsPerSource * kPerInjector);
}

INSTANTIATE_TEST_SUITE_P(
    Techniques, ThreadedStressTest,
    testing::Combine(testing::Values(partition::Technique::kHashing,
                                     partition::Technique::kShuffle,
                                     partition::Technique::kPkgLocal),
                     testing::Values<size_t>(1, 3, 64)),
    [](const testing::TestParamInfo<StressParam>& info) {
      std::string name = partition::TechniqueName(std::get<0>(info.param));
      for (char& c : name) {
        if (c == '-' || c == '+') c = '_';
      }
      return name + "_EmitBatch" + std::to_string(std::get<1>(info.param));
    });

TEST(ThreadedStressTest, ConcurrentFinishIsIdempotentAndBlocks) {
  apps::WordCountTopology wc = apps::MakeWordCountTopology(
      partition::Technique::kShuffle, 2, 4, 0, 5, 42);
  auto rt = ThreadedRuntime::Create(&wc.topology);
  ASSERT_TRUE(rt.ok());
  for (int i = 0; i < 1000; ++i) {
    Message m;
    m.key = static_cast<Key>(i % 13);
    m.tag = apps::kTagWord;
    (*rt)->Inject(wc.spout, static_cast<SourceId>(i % 2), m);
  }
  // Every Finish caller must return only after shutdown completed, so
  // GetOperator is safe immediately after any of them.
  std::vector<std::thread> finishers;
  for (int i = 0; i < 4; ++i) {
    finishers.emplace_back([&] {
      (*rt)->Finish();
      auto* agg = static_cast<apps::TopKAggregator*>(
          (*rt)->GetOperator(wc.aggregator, 0));
      uint64_t total = 0;
      for (const auto& [key, count] : agg->totals()) total += count;
      EXPECT_EQ(total, 1000u);
    });
  }
  for (auto& t : finishers) t.join();
}

}  // namespace
}  // namespace engine
}  // namespace pkgstream
