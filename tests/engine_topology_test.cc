// Copyright 2026 The pkgstream Authors.
// Unit tests for the topology builder and its validation.

#include <gtest/gtest.h>

#include "engine/topology.h"

namespace pkgstream {
namespace engine {
namespace {

/// A trivial pass-through operator for wiring tests.
class Passthrough final : public Operator {
 public:
  void Process(const Message& msg, Emitter* out) override { out->Emit(msg); }
};

OperatorFactory MakePassthrough() {
  return [](uint32_t) { return std::make_unique<Passthrough>(); };
}

TEST(TopologyTest, EmptyTopologyInvalid) {
  Topology t;
  EXPECT_TRUE(t.Validate().IsFailedPrecondition());
}

TEST(TopologyTest, SpoutOnlyValidates) {
  Topology t;
  t.AddSpout("s", 2);
  EXPECT_TRUE(t.Validate().ok());
}

TEST(TopologyTest, LinearChainValidates) {
  Topology t;
  NodeId s = t.AddSpout("s", 1);
  NodeId a = t.AddOperator("a", MakePassthrough(), 3);
  NodeId b = t.AddOperator("b", MakePassthrough(), 1);
  ASSERT_TRUE(t.Connect(s, a, partition::Technique::kShuffle).ok());
  ASSERT_TRUE(t.Connect(a, b, partition::Technique::kHashing).ok());
  EXPECT_TRUE(t.Validate().ok());
}

TEST(TopologyTest, ConnectFillsParallelism) {
  Topology t;
  NodeId s = t.AddSpout("s", 4);
  NodeId a = t.AddOperator("a", MakePassthrough(), 7);
  ASSERT_TRUE(t.Connect(s, a, partition::Technique::kPkgLocal).ok());
  ASSERT_EQ(t.edges().size(), 1u);
  EXPECT_EQ(t.edges()[0].partitioner.sources, 4u);
  EXPECT_EQ(t.edges()[0].partitioner.workers, 7u);
}

TEST(TopologyTest, SpoutCannotReceive) {
  Topology t;
  NodeId s1 = t.AddSpout("s1", 1);
  NodeId s2 = t.AddSpout("s2", 1);
  EXPECT_TRUE(
      t.Connect(s1, s2, partition::Technique::kShuffle).IsInvalidArgument());
}

TEST(TopologyTest, UnknownNodeRejected) {
  Topology t;
  NodeId s = t.AddSpout("s", 1);
  NodeId bogus{42};
  EXPECT_TRUE(
      t.Connect(s, bogus, partition::Technique::kShuffle).IsInvalidArgument());
}

TEST(TopologyTest, UnreachableOperatorInvalid) {
  Topology t;
  t.AddSpout("s", 1);
  t.AddOperator("orphan", MakePassthrough(), 1);
  EXPECT_TRUE(t.Validate().IsFailedPrecondition());
}

TEST(TopologyTest, NoSpoutInvalid) {
  Topology t;
  t.AddOperator("a", MakePassthrough(), 1);
  EXPECT_TRUE(t.Validate().IsFailedPrecondition());
}

TEST(TopologyTest, CycleDetected) {
  Topology t;
  NodeId s = t.AddSpout("s", 1);
  NodeId a = t.AddOperator("a", MakePassthrough(), 1);
  NodeId b = t.AddOperator("b", MakePassthrough(), 1);
  ASSERT_TRUE(t.Connect(s, a, partition::Technique::kShuffle).ok());
  ASSERT_TRUE(t.Connect(a, b, partition::Technique::kShuffle).ok());
  ASSERT_TRUE(t.Connect(b, a, partition::Technique::kShuffle).ok());
  EXPECT_TRUE(t.Validate().IsFailedPrecondition());
}

TEST(TopologyTest, DiamondIsAcyclic) {
  Topology t;
  NodeId s = t.AddSpout("s", 1);
  NodeId a = t.AddOperator("a", MakePassthrough(), 1);
  NodeId b = t.AddOperator("b", MakePassthrough(), 1);
  NodeId c = t.AddOperator("c", MakePassthrough(), 1);
  ASSERT_TRUE(t.Connect(s, a, partition::Technique::kShuffle).ok());
  ASSERT_TRUE(t.Connect(s, b, partition::Technique::kShuffle).ok());
  ASSERT_TRUE(t.Connect(a, c, partition::Technique::kShuffle).ok());
  ASSERT_TRUE(t.Connect(b, c, partition::Technique::kShuffle).ok());
  EXPECT_TRUE(t.Validate().ok());
}

TEST(TopologyTest, OutEdgesEnumerated) {
  Topology t;
  NodeId s = t.AddSpout("s", 1);
  NodeId a = t.AddOperator("a", MakePassthrough(), 1);
  NodeId b = t.AddOperator("b", MakePassthrough(), 1);
  ASSERT_TRUE(t.Connect(s, a, partition::Technique::kShuffle).ok());
  ASSERT_TRUE(t.Connect(s, b, partition::Technique::kShuffle).ok());
  ASSERT_TRUE(t.Connect(a, b, partition::Technique::kShuffle).ok());
  EXPECT_EQ(t.OutEdges(s).size(), 2u);
  EXPECT_EQ(t.OutEdges(a).size(), 1u);
  EXPECT_EQ(t.OutEdges(b).size(), 0u);
}

TEST(TopologyTest, TickPeriodStored) {
  Topology t;
  NodeId s = t.AddSpout("s", 1);
  NodeId a = t.AddOperator("a", MakePassthrough(), 1);
  ASSERT_TRUE(t.Connect(s, a, partition::Technique::kShuffle).ok());
  t.SetTickPeriod(a, 500);
  EXPECT_EQ(t.nodes()[a.index].tick_period, 500u);
}

}  // namespace
}  // namespace engine
}  // namespace pkgstream
