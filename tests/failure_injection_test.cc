// Copyright 2026 The pkgstream Authors.
// Failure injection and hostile-input tests: corrupt files, truncated
// traces, invalid configurations, death-on-contract-violation. The library
// must fail loudly and precisely, never silently.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <thread>

#include "apps/heavy_hitters.h"
#include "common/logging.h"
#include "common/table.h"
#include "engine/event_sim.h"
#include "engine/fault_injection.h"
#include "engine/logical_runtime.h"
#include "engine/threaded_runtime.h"
#include "partition/factory.h"
#include "workload/dataset.h"
#include "workload/trace.h"

namespace pkgstream {
namespace {

// ------------------------- Corrupt trace files ----------------------------

std::string WriteBytes(const std::string& name, const std::string& bytes) {
  std::string path = testing::TempDir() + "/" + name;
  std::ofstream f(path, std::ios::binary);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return path;
}

TEST(FailureInjectionTest, EmptyTraceFileRejected) {
  std::string path = WriteBytes("pkgstream_empty.trace", "");
  EXPECT_TRUE(workload::TraceKeyStream::Open(path).status().IsIOError());
  std::remove(path.c_str());
}

TEST(FailureInjectionTest, TraceWithWrongMagicRejected) {
  std::string path =
      WriteBytes("pkgstream_magic.trace", "XXXXXXXX\x05\x00\x00\x00");
  EXPECT_TRUE(workload::TraceKeyStream::Open(path).status().IsIOError());
  std::remove(path.c_str());
}

TEST(FailureInjectionTest, TraceWithTruncatedHeaderRejected) {
  std::string path = WriteBytes("pkgstream_short.trace", "PKGTRC01\x01");
  EXPECT_TRUE(workload::TraceKeyStream::Open(path).status().IsIOError());
  std::remove(path.c_str());
}

TEST(FailureInjectionTest, TraceTruncatedBodyDiesOnRead) {
  // Header promises 100 keys but the body holds 2: reading past the end
  // must abort with a clear message, never return garbage.
  std::string body(16, '\x01');  // two 8-byte keys
  std::string header = "PKGTRC01";
  uint64_t count = 100;
  header.append(reinterpret_cast<const char*>(&count), sizeof(count));
  std::string path = WriteBytes("pkgstream_trunc.trace", header + body);
  auto reader = workload::TraceKeyStream::Open(path);
  ASSERT_TRUE(reader.ok());
  (*reader)->Next();
  (*reader)->Next();
  EXPECT_DEATH((*reader)->Next(), "trace read failed");
  std::remove(path.c_str());
}

// ------------------------- Contract violations ----------------------------

TEST(FailureInjectionDeathTest, TableRowArityChecked) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.AddRow({"only-one"}), "cells");
}

TEST(FailureInjectionDeathTest, InjectIntoNonSpoutDies) {
  engine::Topology topo;
  engine::NodeId spout = topo.AddSpout("s", 1);
  engine::NodeId op = topo.AddOperator(
      "op", [](uint32_t) { return nullptr; }, 1);
  (void)spout;
  (void)op;
  // Null factory would CHECK at Create; build a real one instead.
  engine::Topology topo2;
  engine::NodeId s2 = topo2.AddSpout("s", 1);
  class Nop final : public engine::Operator {
   public:
    void Process(const engine::Message&, engine::Emitter*) override {}
  };
  engine::NodeId o2 = topo2.AddOperator(
      "op", [](uint32_t) { return std::make_unique<Nop>(); }, 1);
  ASSERT_TRUE(topo2.Connect(s2, o2, partition::Technique::kShuffle).ok());
  auto rt = engine::LogicalRuntime::Create(&topo2);
  ASSERT_TRUE(rt.ok());
  engine::Message m;
  EXPECT_DEATH((*rt)->Inject(o2, 0, m), "spout");
}

TEST(FailureInjectionDeathTest, InjectAfterFinishDies) {
  engine::Topology topo;
  engine::NodeId s = topo.AddSpout("s", 1);
  class Nop final : public engine::Operator {
   public:
    void Process(const engine::Message&, engine::Emitter*) override {}
  };
  engine::NodeId o = topo.AddOperator(
      "op", [](uint32_t) { return std::make_unique<Nop>(); }, 1);
  ASSERT_TRUE(topo.Connect(s, o, partition::Technique::kShuffle).ok());
  auto rt = engine::LogicalRuntime::Create(&topo);
  ASSERT_TRUE(rt.ok());
  (*rt)->Finish();
  engine::Message m;
  EXPECT_DEATH((*rt)->Inject(s, 0, m), "Finish");
}

// ------------------------- Configuration errors ---------------------------

TEST(FailureInjectionTest, EveryBadConfigIsRejectedNotCrashed) {
  using partition::MakePartitioner;
  using partition::PartitionerConfig;
  using partition::Technique;
  struct Case {
    const char* what;
    PartitionerConfig config;
  };
  std::vector<Case> cases;
  {
    PartitionerConfig c;
    c.sources = 0;
    cases.push_back({"zero sources", c});
  }
  {
    PartitionerConfig c;
    c.workers = 0;
    cases.push_back({"zero workers", c});
  }
  {
    PartitionerConfig c;
    c.technique = Technique::kPkgLocal;
    c.num_choices = 0;
    cases.push_back({"zero choices", c});
  }
  {
    PartitionerConfig c;
    c.technique = Technique::kOffGreedy;
    cases.push_back({"off-greedy without frequencies", c});
  }
  {
    PartitionerConfig c;
    c.technique = Technique::kConsistent;
    c.ring_replicas = 100;
    c.workers = 4;
    cases.push_back({"replicas > workers", c});
  }
  for (const auto& test_case : cases) {
    auto result = MakePartitioner(test_case.config);
    EXPECT_FALSE(result.ok()) << test_case.what;
  }
}

// --------------------- Threaded runtime hostile options -------------------

/// Minimal valid spout -> operator topology for runtime-option tests.
engine::Topology MakeNopTopology() {
  engine::Topology topo;
  engine::NodeId s = topo.AddSpout("s", 1);
  class Nop final : public engine::Operator {
   public:
    void Process(const engine::Message&, engine::Emitter*) override {}
  };
  engine::NodeId o = topo.AddOperator(
      "op", [](uint32_t) { return std::make_unique<Nop>(); }, 4);
  EXPECT_TRUE(topo.Connect(s, o, partition::Technique::kShuffle).ok());
  return topo;
}

TEST(FailureInjectionTest, ThreadedRuntimeRejectsHostileOptions) {
  engine::Topology topo = MakeNopTopology();
  {
    engine::ThreadedRuntimeOptions options;
    options.queue_capacity = 0;
    auto rt = engine::ThreadedRuntime::Create(&topo, options);
    EXPECT_TRUE(rt.status().IsInvalidArgument());
  }
  {
    engine::ThreadedRuntimeOptions options;
    options.emit_batch = 0;
    auto rt = engine::ThreadedRuntime::Create(&topo, options);
    EXPECT_TRUE(rt.status().IsInvalidArgument());
  }
  {
    // More shards than operator instances is not an error: the shard count
    // clamps to the instance count and the run completes normally.
    engine::ThreadedRuntimeOptions options;
    options.shards = 64;
    auto rt = engine::ThreadedRuntime::Create(&topo, options);
    ASSERT_TRUE(rt.ok()) << rt.status();
    (*rt)->Finish();
  }
}

TEST(FailureInjectionDeathTest, ThreadedInjectAfterFinishDies) {
  engine::Topology topo = MakeNopTopology();
  auto rt = engine::ThreadedRuntime::Create(&topo);
  ASSERT_TRUE(rt.ok());
  (*rt)->Finish();
  engine::Message m;
  EXPECT_DEATH((*rt)->Inject(engine::NodeId{0}, 0, m), "Finish");
}

TEST(FailureInjectionDeathTest, FinishDeadlineDumpsStateAndAborts) {
  // A consumer wedged inside Process forever: Finish() with a deadline must
  // dump the per-instance last-progress picture and abort loudly instead of
  // hanging until the ctest timeout. Everything (threads included) is built
  // inside the death-test child so the wedge is real.
  EXPECT_DEATH(
      {
        engine::Topology topo;
        engine::NodeId s = topo.AddSpout("s", 1);
        class Wedged final : public engine::Operator {
         public:
          void Process(const engine::Message&, engine::Emitter*) override {
            for (;;) std::this_thread::sleep_for(std::chrono::seconds(1));
          }
        };
        engine::NodeId o = topo.AddOperator(
            "op", [](uint32_t) { return std::make_unique<Wedged>(); }, 1);
        PKGSTREAM_CHECK_OK(topo.Connect(s, o, partition::Technique::kShuffle));
        engine::ThreadedRuntimeOptions options;
        options.emit_batch = 1;
        options.finish_deadline_ms = 200;
        auto rt = engine::ThreadedRuntime::Create(&topo, options);
        PKGSTREAM_CHECK_OK(rt.status());
        engine::Message m;
        (*rt)->Inject(s, 0, m);
        (*rt)->Finish();
      },
      "exceeded finish_deadline_ms");
}

// --------------------------- Fault plan validation ------------------------

TEST(FailureInjectionTest, FaultPlanRejectsHostileSchedules) {
  using engine::FaultEvent;
  using engine::FaultKind;
  using engine::FaultPlan;
  // Zero-worker cluster.
  EXPECT_TRUE(FaultPlan::Create(0, {}).status().IsInvalidArgument());
  // Events out of time order.
  EXPECT_TRUE(FaultPlan::Create(
                  4, {{FaultKind::kCrash, 0, 2000, 0, 1.0},
                      {FaultKind::kRejoin, 0, 1000, 0, 1.0}})
                  .status()
                  .IsInvalidArgument());
  // Unknown worker id.
  EXPECT_TRUE(FaultPlan::Create(4, {{FaultKind::kCrash, 9, 0, 0, 1.0}})
                  .status()
                  .IsInvalidArgument());
  // Crash of an already-dead worker.
  EXPECT_TRUE(FaultPlan::Create(
                  4, {{FaultKind::kCrash, 1, 0, 0, 1.0},
                      {FaultKind::kCrash, 1, 100, 0, 1.0}})
                  .status()
                  .IsInvalidArgument());
  // Rejoin of a live worker.
  EXPECT_TRUE(FaultPlan::Create(4, {{FaultKind::kRejoin, 1, 0, 0, 1.0}})
                  .status()
                  .IsInvalidArgument());
  // Crashing the whole cluster.
  EXPECT_TRUE(FaultPlan::Create(
                  2, {{FaultKind::kCrash, 0, 0, 0, 1.0},
                      {FaultKind::kCrash, 1, 100, 0, 1.0}})
                  .status()
                  .IsInvalidArgument());
  // Zero-length stall window and non-positive slowdown factor.
  EXPECT_TRUE(FaultPlan::Create(4, {{FaultKind::kStall, 0, 0, 0, 1.0}})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(FaultPlan::Create(4, {{FaultKind::kSlowdown, 0, 0, 100, 0.0}})
                  .status()
                  .IsInvalidArgument());
  // Overlapping service windows on one worker.
  EXPECT_TRUE(FaultPlan::Create(
                  4, {{FaultKind::kStall, 2, 0, 1000, 1.0},
                      {FaultKind::kSlowdown, 2, 500, 1000, 2.0}})
                  .status()
                  .IsInvalidArgument());
  // The same windows on *different* workers are fine.
  EXPECT_TRUE(FaultPlan::Create(
                  4, {{FaultKind::kStall, 2, 0, 1000, 1.0},
                      {FaultKind::kSlowdown, 3, 500, 1000, 2.0}})
                  .ok());
}

TEST(FailureInjectionTest, RandomFaultPlanGeneratorValidatesItsInputs) {
  EXPECT_TRUE(engine::MakeRandomFaultPlan(1, 1, 1, 10000, 42)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(engine::MakeRandomFaultPlan(8, 0, 1, 10000, 42)
                  .status()
                  .IsInvalidArgument());
  // Valid inputs give a valid plan for every seed (spot-check a few).
  for (uint64_t seed = 0; seed < 8; ++seed) {
    auto plan = engine::MakeRandomFaultPlan(8, 2, 4, 100000, seed);
    ASSERT_TRUE(plan.ok()) << plan.status();
    EXPECT_GE(plan->routing_events().size(), 2u);
  }
}

TEST(FailureInjectionTest, EventSimWithUnknownDatasetScaleStillBounded) {
  // Absurdly tiny scale: floors kick in, stream still valid.
  const auto& tw = workload::GetDataset(workload::DatasetId::kTW);
  auto stream = workload::MakeKeyStream(tw, 1e-12, 42);
  ASSERT_TRUE(stream.ok());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT((*stream)->Next(), (*stream)->KeySpace());
  }
}

TEST(FailureInjectionTest, MergerToleratesEmptySummaries) {
  apps::HeavyHitterWorker worker(8);
  class CollectingEmitter : public engine::Emitter {
   public:
    void Emit(const engine::Message& m) override { messages.push_back(m); }
    std::vector<engine::Message> messages;
  } emitter;
  // No items processed: Close must not emit an empty summary.
  worker.Close(&emitter);
  EXPECT_TRUE(emitter.messages.empty());
}

TEST(FailureInjectionDeathTest, SummaryWithoutPayloadDies) {
  apps::HeavyHitterMerger merger(8);
  engine::Message bogus;
  bogus.tag = apps::kTagSummary;  // tag says summary, but box is empty
  class Nop : public engine::Emitter {
   public:
    void Emit(const engine::Message&) override {}
  } nop;
  EXPECT_DEATH(merger.Process(bogus, &nop), "payload");
}

}  // namespace
}  // namespace pkgstream
