// Copyright 2026 The pkgstream Authors.
// Cross-module integration tests: trace replay drives identical runs,
// the two engine runtimes agree, and the full pipeline (dataset ->
// partitioner -> engine -> application) produces consistent results.

#include <gtest/gtest.h>

#include <cstdio>
#include <map>

#include "apps/wordcount.h"
#include "engine/event_sim.h"
#include "engine/logical_runtime.h"
#include "simulation/runner.h"
#include "workload/dataset.h"
#include "workload/trace.h"

namespace pkgstream {
namespace {

TEST(IntegrationTest, TraceReplayReproducesRoutingExactly) {
  // Materialize a WP stream prefix to a trace file, then run the same
  // technique twice from the trace: identical loads, bit for bit.
  const auto& wp = workload::GetDataset(workload::DatasetId::kWP);
  auto stream = workload::MakeKeyStream(wp, 0.002, 42);
  ASSERT_TRUE(stream.ok());
  std::string path = testing::TempDir() + "/pkgstream_integration.trace";
  const uint64_t messages = 50000;
  ASSERT_TRUE(workload::WriteTrace(path, stream->get(), messages).ok());

  auto run = [&]() {
    auto reader = workload::TraceKeyStream::Open(path);
    EXPECT_TRUE(reader.ok());
    simulation::Feed feed = simulation::MakeKeyFeed(reader->get());
    simulation::RoutingConfig config;
    config.partitioner.technique = partition::Technique::kPkgLocal;
    config.partitioner.sources = 3;
    config.partitioner.workers = 7;
    config.messages = messages;
    auto result = simulation::RunRouting(config, feed);
    EXPECT_TRUE(result.ok());
    return result->loads;
  };
  EXPECT_EQ(run(), run());
  std::remove(path.c_str());
}

TEST(IntegrationTest, TraceMatchesLiveStream) {
  // Replaying a trace equals generating the stream directly.
  const auto& ln2 = workload::GetDataset(workload::DatasetId::kLN2);
  auto live = workload::MakeKeyStream(ln2, 0.02, 9);
  ASSERT_TRUE(live.ok());
  std::string path = testing::TempDir() + "/pkgstream_trace_match.trace";
  {
    auto source = workload::MakeKeyStream(ln2, 0.02, 9);
    ASSERT_TRUE(source.ok());
    ASSERT_TRUE(workload::WriteTrace(path, source->get(), 20000).ok());
  }
  auto reader = workload::TraceKeyStream::Open(path);
  ASSERT_TRUE(reader.ok());
  for (int i = 0; i < 20000; ++i) {
    ASSERT_EQ((*reader)->Next(), (*live)->Next()) << "at " << i;
  }
  std::remove(path.c_str());
}

TEST(IntegrationTest, EventSimAndLogicalRuntimeAgreeOnCounts) {
  // The discrete-event simulator reorders deliveries in time but must not
  // lose or duplicate messages: final aggregator totals match the
  // deterministic runtime exactly (same stream, same topology, no ticks).
  const uint64_t messages = 20000;
  auto totals_logical = [&] {
    apps::WordCountTopology wc = apps::MakeWordCountTopology(
        partition::Technique::kHashing, 1, 4, 0, 5, 42);
    auto rt = engine::LogicalRuntime::Create(&wc.topology);
    EXPECT_TRUE(rt.ok());
    auto stream = workload::MakeKeyStream(
        workload::GetDataset(workload::DatasetId::kCT), 0.05, 11);
    EXPECT_TRUE(stream.ok());
    for (uint64_t i = 0; i < messages; ++i) {
      engine::Message m;
      m.key = (*stream)->Next();
      m.tag = apps::kTagWord;
      (*rt)->Inject(wc.spout, 0, m);
    }
    (*rt)->Finish();
    auto* agg = static_cast<apps::TopKAggregator*>(
        (*rt)->GetOperator(wc.aggregator, 0));
    return std::map<Key, uint64_t>(agg->totals().begin(),
                                   agg->totals().end());
  }();

  auto totals_sim = [&] {
    apps::WordCountTopology wc = apps::MakeWordCountTopology(
        partition::Technique::kHashing, 1, 4, 0, 5, 42);
    auto stream = workload::MakeKeyStream(
        workload::GetDataset(workload::DatasetId::kCT), 0.05, 11);
    EXPECT_TRUE(stream.ok());
    engine::EventSimOptions options;
    options.messages = messages;
    options.source_service_us = 5;
    options.worker_overhead_us = 10;
    options.network_delay_us = 50;
    auto sim =
        engine::EventSimulator::Create(&wc.topology, stream->get(), options);
    EXPECT_TRUE(sim.ok());
    engine::EventSimReport report = (*sim)->Run();
    EXPECT_EQ(report.roots_acked, messages);
    // The event sim has no Close(); counters hold running totals under KG,
    // so read them directly off the counter instances.
    std::map<Key, uint64_t> totals;
    for (uint32_t w = 0; w < 4; ++w) {
      auto* counter = static_cast<apps::WordCountCounter*>(
          (*sim)->GetOperator(wc.counter, w));
      for (const auto& [key, count] : counter->counts()) {
        totals[key] += count;
      }
    }
    return totals;
  }();

  EXPECT_EQ(totals_logical, totals_sim);
}

TEST(IntegrationTest, AllTechniquesAgreeOnWordCountResults) {
  // The end answer of the application (the word totals) must be identical
  // under every partitioning technique; only load placement may differ.
  std::map<Key, uint64_t> reference;
  for (auto technique :
       {partition::Technique::kHashing, partition::Technique::kShuffle,
        partition::Technique::kPkgLocal, partition::Technique::kWChoices,
        partition::Technique::kConsistent}) {
    apps::WordCountTopology wc =
        apps::MakeWordCountTopology(technique, 2, 5, 500, 5, 42);
    auto rt = engine::LogicalRuntime::Create(&wc.topology);
    ASSERT_TRUE(rt.ok()) << partition::TechniqueName(technique);
    auto stream = workload::MakeKeyStream(
        workload::GetDataset(workload::DatasetId::kLN2), 0.01, 3);
    ASSERT_TRUE(stream.ok());
    for (int i = 0; i < 30000; ++i) {
      engine::Message m;
      m.key = (*stream)->Next();
      m.tag = apps::kTagWord;
      (*rt)->Inject(wc.spout, static_cast<SourceId>(i % 2), m);
    }
    (*rt)->Finish();
    auto* agg = static_cast<apps::TopKAggregator*>(
        (*rt)->GetOperator(wc.aggregator, 0));
    std::map<Key, uint64_t> totals(agg->totals().begin(),
                                   agg->totals().end());
    if (reference.empty()) {
      reference = totals;
    } else {
      EXPECT_EQ(totals, reference) << partition::TechniqueName(technique);
    }
  }
}

TEST(IntegrationTest, GraphPipelineEndToEnd) {
  // Edge stream -> keyed source split -> PKG -> imbalance: the full Q3
  // pipeline at miniature scale, asserting the headline property.
  const auto& sl1 = workload::GetDataset(workload::DatasetId::kSL1);
  for (auto split :
       {simulation::SourceSplit::kShuffle, simulation::SourceSplit::kKeyed}) {
    auto edges = workload::MakeEdgeStream(sl1, 0.2, 42);
    ASSERT_TRUE(edges.ok());
    simulation::Feed feed = simulation::MakeEdgeFeed(edges->get());
    simulation::RoutingConfig config;
    config.partitioner.technique = partition::Technique::kPkgLocal;
    config.partitioner.sources = 5;
    config.partitioner.workers = 10;
    config.messages = 100000;
    config.source_split = split;
    auto result = simulation::RunRouting(config, feed);
    ASSERT_TRUE(result.ok());
    // Balanced workers regardless of the source split.
    EXPECT_LT(result->imbalance.avg_fraction, 1e-3);
  }
}

}  // namespace
}  // namespace pkgstream
