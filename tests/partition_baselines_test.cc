// Copyright 2026 The pkgstream Authors.
// Unit tests for the Table II baselines: static PoTC, On-Greedy, Off-Greedy.

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "partition/greedy.h"
#include "partition/potc_static.h"
#include "stats/imbalance.h"
#include "workload/static_distribution.h"
#include "workload/zipf.h"

namespace pkgstream {
namespace partition {
namespace {

TEST(StaticPoTCTest, KeyStaysPinnedAfterFirstChoice) {
  StaticPoTC potc(1, 10, 42);
  WorkerId first = potc.Route(0, 5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(potc.Route(0, 5), first);
  EXPECT_EQ(potc.MaxWorkersPerKey(), 1u);
}

TEST(StaticPoTCTest, RoutingTableGrowsWithKeys) {
  StaticPoTC potc(1, 10, 42);
  for (Key k = 0; k < 500; ++k) potc.Route(0, k);
  EXPECT_EQ(potc.RoutingTableSize(), 500u);
}

TEST(StaticPoTCTest, PicksLessLoadedCandidateAtFirstSight) {
  // Preload one candidate of a fresh key, then check the first routing of
  // that key avoids it.
  StaticPoTC potc(1, 4, 7);
  // Find two keys with disjoint candidate pairs by brute force is overkill;
  // instead verify the weaker invariant: the chosen worker was not the
  // strictly more loaded of the two candidates.
  HashFamily family(2, 4, 7);
  std::vector<uint64_t> loads(4, 0);
  for (Key k = 0; k < 2000; ++k) {
    WorkerId c0 = family.Bucket(0, k);
    WorkerId c1 = family.Bucket(1, k);
    WorkerId chosen = potc.Route(0, k);
    ASSERT_TRUE(chosen == c0 || chosen == c1);
    WorkerId other = chosen == c0 ? c1 : c0;
    EXPECT_LE(loads[chosen], loads[other]) << "key " << k;
    ++loads[chosen];
  }
}

TEST(StaticPoTCTest, HotKeyStillImbalanced) {
  // Without key splitting a hot key is pinned: the imbalance grows linearly
  // (the paper's argument for key splitting).
  StaticPoTC potc(1, 10, 42);
  std::vector<uint64_t> loads(10, 0);
  for (int i = 0; i < 10000; ++i) ++loads[potc.Route(0, /*key=*/3)];
  EXPECT_GT(stats::ImbalanceOf(loads), 8000.0);
}

TEST(OnlineGreedyTest, FirstKeyGoesToLeastLoaded) {
  OnlineGreedy greedy(1, 4);
  // Route key 0 thrice: all three go to worker chosen at first sight.
  WorkerId w0 = greedy.Route(0, 0);
  EXPECT_EQ(greedy.Route(0, 0), w0);
  // A new key must go to a currently least-loaded worker (not w0,
  // which has 2 messages).
  WorkerId w1 = greedy.Route(0, 1);
  EXPECT_NE(w1, w0);
}

TEST(OnlineGreedyTest, DistinctKeysBalancePerfectly) {
  OnlineGreedy greedy(1, 8);
  std::vector<uint64_t> loads(8, 0);
  for (Key k = 0; k < 8000; ++k) ++loads[greedy.Route(0, k)];
  EXPECT_DOUBLE_EQ(stats::ImbalanceOf(loads), 0.0);
  EXPECT_EQ(greedy.RoutingTableSize(), 8000u);
}

TEST(OnlineGreedyTest, FullChoiceBeatsTwoChoicesOnDistinctKeys) {
  EXPECT_EQ(OnlineGreedy(1, 4).MaxWorkersPerKey(), 1u);
  EXPECT_EQ(OnlineGreedy(1, 4).Name(), "On-Greedy");
}

TEST(OfflineGreedyTest, LptAssignmentIsBalanced) {
  stats::FrequencyTable freq;
  // Classic LPT case: frequencies 7,6,5,4,3,2 onto 3 workers.
  freq.Add(1, 7);
  freq.Add(2, 6);
  freq.Add(3, 5);
  freq.Add(4, 4);
  freq.Add(5, 3);
  freq.Add(6, 2);
  OfflineGreedy greedy(1, 3, freq, 42);
  const auto& planned = greedy.planned_loads();
  // LPT: {7,2}, {6,3}, {5,4} = 9,9,9.
  EXPECT_EQ(planned[0] + planned[1] + planned[2], 27u);
  EXPECT_DOUBLE_EQ(stats::ImbalanceOf(planned), 0.0);
}

TEST(OfflineGreedyTest, RoutesFollowPlan) {
  stats::FrequencyTable freq;
  freq.Add(10, 100);
  freq.Add(20, 50);
  OfflineGreedy greedy(1, 2, freq, 42);
  WorkerId w10 = greedy.Route(0, 10);
  WorkerId w20 = greedy.Route(0, 20);
  EXPECT_NE(w10, w20);  // two keys, two workers: LPT separates them
  // Stable across repeats.
  EXPECT_EQ(greedy.Route(0, 10), w10);
}

TEST(OfflineGreedyTest, UnknownKeysFallBackToHashing) {
  stats::FrequencyTable freq;
  freq.Add(1, 5);
  OfflineGreedy greedy(1, 4, freq, 42);
  WorkerId w = greedy.Route(0, /*unknown key=*/999);
  EXPECT_LT(w, 4u);
  EXPECT_EQ(greedy.Route(0, 999), w);  // deterministic
}

TEST(GreedyOrderingTest, PaperTableTwoOrderingOnZipf) {
  // On a skewed stream with a hot head: Hashing >> PoTC >= On-Greedy >=
  // Off-Greedy in imbalance (Table II's ordering, small scale).
  using workload::StaticDistribution;
  using workload::ZipfWeights;
  auto dist = std::make_shared<StaticDistribution>(ZipfWeights(2000, 1.3),
                                                   "zipf");
  const uint32_t workers = 5;
  const int messages = 100000;

  // Pass 1: frequencies for Off-Greedy.
  stats::FrequencyTable freq;
  {
    Rng rng(123);
    for (int i = 0; i < messages; ++i) freq.Add(dist->Sample(&rng));
  }
  StaticPoTC potc(1, workers, 42);
  OnlineGreedy on(1, workers);
  OfflineGreedy off(1, workers, freq, 42);
  HashFamily hash(1, workers, 42);

  std::vector<uint64_t> l_potc(workers, 0);
  std::vector<uint64_t> l_on(workers, 0);
  std::vector<uint64_t> l_off(workers, 0);
  std::vector<uint64_t> l_hash(workers, 0);
  Rng rng(123);
  for (int i = 0; i < messages; ++i) {
    Key k = dist->Sample(&rng);
    ++l_potc[potc.Route(0, k)];
    ++l_on[on.Route(0, k)];
    ++l_off[off.Route(0, k)];
    ++l_hash[hash.Bucket(0, k)];
  }
  double i_potc = stats::ImbalanceOf(l_potc);
  double i_on = stats::ImbalanceOf(l_on);
  double i_off = stats::ImbalanceOf(l_off);
  double i_hash = stats::ImbalanceOf(l_hash);
  EXPECT_LT(i_potc, i_hash);  // PoTC beats hashing
  EXPECT_LE(i_off, i_on + 1e-9);  // offline never worse than online
  EXPECT_LT(i_off, i_hash);
}

}  // namespace
}  // namespace partition
}  // namespace pkgstream
