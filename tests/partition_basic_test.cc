// Copyright 2026 The pkgstream Authors.
// Unit tests for the stateless partitioners: key grouping (hashing),
// shuffle grouping, random grouping.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "partition/key_grouping.h"
#include "partition/shuffle_grouping.h"
#include "stats/imbalance.h"

namespace pkgstream {
namespace partition {
namespace {

TEST(KeyGroupingTest, SameKeySameWorker) {
  KeyGrouping kg(2, 10, 42);
  for (Key k = 0; k < 100; ++k) {
    WorkerId w = kg.Route(0, k);
    for (int rep = 0; rep < 5; ++rep) {
      EXPECT_EQ(kg.Route(rep % 2, k), w);  // source-independent
    }
  }
}

TEST(KeyGroupingTest, ResultsInRange) {
  KeyGrouping kg(1, 7, 1);
  for (Key k = 0; k < 1000; ++k) EXPECT_LT(kg.Route(0, k), 7u);
}

TEST(KeyGroupingTest, AtomicKeys) {
  KeyGrouping kg(1, 5, 3);
  EXPECT_EQ(kg.MaxWorkersPerKey(), 1u);
  EXPECT_EQ(kg.Name(), "Hashing");
  EXPECT_EQ(kg.workers(), 5u);
  EXPECT_EQ(kg.sources(), 1u);
}

TEST(KeyGroupingTest, SkewConcentratesLoad) {
  // All messages share one key: everything lands on a single worker.
  KeyGrouping kg(1, 10, 42);
  std::vector<uint64_t> loads(10, 0);
  for (int i = 0; i < 1000; ++i) ++loads[kg.Route(0, /*key=*/777)];
  uint64_t max = *std::max_element(loads.begin(), loads.end());
  EXPECT_EQ(max, 1000u);
}

TEST(ShuffleGroupingTest, PerfectBalancePerSource) {
  ShuffleGrouping sg(1, 4, 42);
  std::vector<uint64_t> loads(4, 0);
  for (int i = 0; i < 400; ++i) ++loads[sg.Route(0, i)];
  for (uint64_t l : loads) EXPECT_EQ(l, 100u);
}

TEST(ShuffleGroupingTest, CyclicOrder) {
  ShuffleGrouping sg(1, 3, 0);
  WorkerId first = sg.Route(0, 0);
  EXPECT_EQ(sg.Route(0, 1), (first + 1) % 3);
  EXPECT_EQ(sg.Route(0, 2), (first + 2) % 3);
  EXPECT_EQ(sg.Route(0, 3), first);
}

TEST(ShuffleGroupingTest, IgnoresKey) {
  ShuffleGrouping sg(1, 5, 9);
  // Identical key repeatedly still cycles through all workers.
  std::set<WorkerId> seen;
  for (int i = 0; i < 5; ++i) seen.insert(sg.Route(0, /*key=*/42));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(ShuffleGroupingTest, SourcesCycleIndependently) {
  ShuffleGrouping sg(2, 4, 7);
  // Interleave two sources; each should still be perfectly balanced.
  std::vector<uint64_t> loads0(4, 0);
  std::vector<uint64_t> loads1(4, 0);
  for (int i = 0; i < 400; ++i) {
    ++loads0[sg.Route(0, i)];
    ++loads1[sg.Route(1, i)];
  }
  for (uint64_t l : loads0) EXPECT_EQ(l, 100u);
  for (uint64_t l : loads1) EXPECT_EQ(l, 100u);
}

TEST(ShuffleGroupingTest, MaxWorkersPerKeyIsW) {
  ShuffleGrouping sg(1, 6, 1);
  EXPECT_EQ(sg.MaxWorkersPerKey(), 6u);
}

TEST(ShuffleGroupingTest, GlobalImbalanceBoundedBySources) {
  // The per-source imbalance is <= 1; global imbalance <= S.
  const uint32_t sources = 8;
  ShuffleGrouping sg(sources, 5, 3);
  std::vector<uint64_t> loads(5, 0);
  for (int i = 0; i < 99991; ++i) {  // deliberately not divisible
    ++loads[sg.Route(i % sources, i)];
  }
  EXPECT_LE(stats::ImbalanceOf(loads), static_cast<double>(sources));
}

TEST(RandomGroupingTest, ResultsInRangeAndSpread) {
  RandomGrouping rg(1, 8, 11);
  std::vector<uint64_t> loads(8, 0);
  for (int i = 0; i < 8000; ++i) ++loads[rg.Route(0, 1)];
  for (uint64_t l : loads) {
    EXPECT_GT(l, 800u);
    EXPECT_LT(l, 1200u);
  }
}

TEST(RandomGroupingTest, Deterministic) {
  RandomGrouping a(1, 8, 11);
  RandomGrouping b(1, 8, 11);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Route(0, i), b.Route(0, i));
}

TEST(RandomGroupingTest, WorseThanRoundRobin) {
  // Random single choice has Θ(sqrt(m log n / n)) imbalance; round robin
  // stays <= 1. Verify the ordering empirically.
  RandomGrouping rg(1, 16, 5);
  ShuffleGrouping sg(1, 16, 5);
  std::vector<uint64_t> lr(16, 0);
  std::vector<uint64_t> ls(16, 0);
  for (int i = 0; i < 160000; ++i) {
    ++lr[rg.Route(0, i)];
    ++ls[sg.Route(0, i)];
  }
  EXPECT_GT(stats::ImbalanceOf(lr), stats::ImbalanceOf(ls));
  EXPECT_LE(stats::ImbalanceOf(ls), 1.0);
}

}  // namespace
}  // namespace partition
}  // namespace pkgstream
