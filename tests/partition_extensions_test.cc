// Copyright 2026 The pkgstream Authors.
// Tests for the extension partitioners: key grouping with rebalancing
// (Sections II-B / VIII) and consistent hashing with replica choice
// (Section VII).

#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "partition/consistent_hashing.h"
#include "partition/factory.h"
#include "partition/key_grouping.h"
#include "partition/rebalancing.h"
#include "stats/imbalance.h"
#include "workload/static_distribution.h"
#include "workload/zipf.h"

namespace pkgstream {
namespace partition {
namespace {

// ------------------------- Rebalancing ------------------------------------

TEST(RebalancingTest, BehavesLikeHashingBeforeFirstCheck) {
  RebalancingOptions options;
  options.check_period = 1000000;  // never within this test
  options.hash_seed = 42;
  RebalancingKeyGrouping rb(1, 8, options);
  HashFamily reference(1, 8, 42);
  for (Key k = 0; k < 500; ++k) {
    EXPECT_EQ(rb.Route(0, k), reference.Bucket(0, k));
  }
  EXPECT_EQ(rb.stats().checks, 0u);
  EXPECT_EQ(rb.RoutingTableSize(), 0u);
}

TEST(RebalancingTest, KeyGroupingSemanticsBetweenMigrations) {
  RebalancingOptions options;
  options.check_period = 500;
  RebalancingKeyGrouping rb(1, 4, options);
  Rng rng(7);
  // Between checks a key must stay on a single worker.
  Key key = 99;
  WorkerId w = rb.Route(0, key);
  for (int i = 0; i < 400; ++i) {
    EXPECT_EQ(rb.Route(0, key), w);
  }
}

TEST(RebalancingTest, MigratesHotKeysUnderSkew) {
  RebalancingOptions options;
  options.check_period = 2000;
  options.imbalance_threshold = 0.05;
  RebalancingKeyGrouping rb(1, 4, options);
  auto dist = std::make_shared<workload::StaticDistribution>(
      workload::ZipfWeights(200, 1.4), "zipf");
  Rng rng(5);
  for (int i = 0; i < 50000; ++i) rb.Route(0, dist->Sample(&rng));
  EXPECT_GT(rb.stats().checks, 0u);
  EXPECT_GT(rb.stats().rebalances, 0u);
  EXPECT_GT(rb.stats().keys_moved, 0u);
  EXPECT_GT(rb.stats().state_moved, 0u);
  // The override table holds every distinct migrated key (a key migrated
  // twice occupies one slot), so it never exceeds total migrations.
  EXPECT_GT(rb.RoutingTableSize(), 0u);
  EXPECT_LE(rb.RoutingTableSize(), rb.stats().keys_moved);
}

// Regression: a migration that lands a key back on its hash placement must
// erase its override instead of recording a redundant one — otherwise the
// routing table grows monotonically for the lifetime of the stream.
TEST(RebalancingTest, OverrideErasedWhenMigrationReturnsKeyHome) {
  RebalancingOptions options;
  options.check_period = 1000;
  options.imbalance_threshold = 0.1;
  options.max_keys_per_rebalance = 1;  // only the probe key may migrate
  options.hash_seed = 42;
  RebalancingKeyGrouping rb(1, 2, options);
  HashFamily placement(1, 2, options.hash_seed);

  // A probe key homed on worker 0, plus background key pools per home.
  Key probe = 0;
  while (placement.Bucket(0, probe) != 0) ++probe;
  std::vector<Key> home0;
  std::vector<Key> home1;
  for (Key k = probe + 1; home0.size() < 390 || home1.size() < 390; ++k) {
    (placement.Bucket(0, k) == 0 ? &home0 : &home1)->push_back(k);
  }

  // One check window: `probe_n` probe messages plus background traffic
  // 2 msgs per key so the probe is the hottest single key, with the bulk
  // of the window on `hot` keys and a trickle on `cold` keys. The spread
  // (880 - 120) comfortably exceeds twice the probe rate, so the
  // migration heuristic moves the probe without overshooting.
  auto window = [&](const std::vector<Key>& hot, const std::vector<Key>& cold) {
    for (int i = 0; i < 100; ++i) rb.Route(0, probe);
    for (int i = 0; i < 780; ++i) rb.Route(0, hot[i / 2]);
    for (int i = 0; i < 120; ++i) rb.Route(0, cold[i / 2]);
  };

  window(home0, home1);  // worker 0 hot: probe migrates to worker 1
  ASSERT_EQ(rb.stats().keys_moved, 1u);
  EXPECT_EQ(rb.RoutingTableSize(), 1u);
  EXPECT_EQ(rb.Route(0, probe), 1u);

  window(home1, home0);  // worker 1 hot: probe migrates home to worker 0
  ASSERT_EQ(rb.stats().keys_moved, 2u);
  EXPECT_EQ(rb.RoutingTableSize(), 0u) << "override must be erased";
  EXPECT_EQ(rb.Route(0, probe), 0u);
}

TEST(RebalancingTest, ImprovesOverPlainHashing) {
  auto dist = std::make_shared<workload::StaticDistribution>(
      workload::ZipfWeights(2000, 1.0), "zipf");
  RebalancingOptions options;
  options.check_period = 5000;
  options.imbalance_threshold = 0.05;
  options.max_keys_per_rebalance = 32;
  RebalancingKeyGrouping rb(1, 5, options);
  KeyGrouping kg(1, 5, options.hash_seed);
  std::vector<uint64_t> rb_loads(5, 0);
  std::vector<uint64_t> kg_loads(5, 0);
  Rng rng(11);
  for (int i = 0; i < 300000; ++i) {
    Key k = dist->Sample(&rng);
    ++rb_loads[rb.Route(0, k)];
    ++kg_loads[kg.Route(0, k)];
  }
  EXPECT_LT(stats::ImbalanceOf(rb_loads), stats::ImbalanceOf(kg_loads));
}

TEST(RebalancingTest, NoMigrationOnBalancedStream) {
  RebalancingOptions options;
  options.check_period = 1000;
  options.imbalance_threshold = 0.5;  // generous
  RebalancingKeyGrouping rb(1, 4, options);
  // Distinct keys: hashing is already nearly balanced.
  for (Key k = 0; k < 100000; ++k) rb.Route(0, k);
  EXPECT_GT(rb.stats().checks, 0u);
  EXPECT_EQ(rb.stats().keys_moved, 0u);
}

TEST(RebalancingTest, FactoryIntegration) {
  PartitionerConfig config;
  config.technique = Technique::kRebalancing;
  config.workers = 4;
  config.rebalance_period = 100;
  auto p = MakePartitioner(config);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ((*p)->MaxWorkersPerKey(), 1u);
  EXPECT_NE((*p)->Name().find("rebalance"), std::string::npos);

  config.rebalance_period = 0;
  EXPECT_TRUE(MakePartitioner(config).status().IsInvalidArgument());
}

// ------------------------- Consistent hashing -----------------------------

TEST(ConsistentHashTest, StablePlacement) {
  ConsistentHashOptions options;
  ConsistentHashGrouping ch(1, 8, options);
  for (Key k = 0; k < 200; ++k) {
    WorkerId w = ch.Route(0, k);
    EXPECT_EQ(ch.Route(0, k), w);
    EXPECT_LT(w, 8u);
  }
}

TEST(ConsistentHashTest, SuccessorsAreDistinct) {
  ConsistentHashOptions options;
  options.replicas = 3;
  ConsistentHashGrouping ch(1, 8, options);
  std::vector<WorkerId> succ;
  for (Key k = 0; k < 100; ++k) {
    ch.Successors(k, &succ);
    ASSERT_EQ(succ.size(), 3u);
    std::set<WorkerId> unique(succ.begin(), succ.end());
    EXPECT_EQ(unique.size(), 3u);
  }
}

TEST(ConsistentHashTest, ReplicaChoiceSplitsHotKey) {
  ConsistentHashOptions options;
  options.replicas = 2;
  ConsistentHashGrouping ch(1, 8, options);
  std::set<WorkerId> used;
  for (int i = 0; i < 100; ++i) used.insert(ch.Route(0, /*key=*/7));
  EXPECT_EQ(used.size(), 2u);  // key splitting over the 2 ring successors
}

TEST(ConsistentHashTest, RemoveWorkerOnlyRemapsItsArcs) {
  ConsistentHashOptions options;
  options.virtual_nodes = 128;
  ConsistentHashGrouping ch(1, 8, options);
  // Record placements, remove one worker, check only its keys moved.
  std::vector<WorkerId> before;
  std::vector<WorkerId> succ;
  const int keys = 2000;
  for (Key k = 0; k < keys; ++k) {
    ch.Successors(k, &succ);
    before.push_back(succ[0]);
  }
  ch.RemoveWorker(3);
  int moved = 0;
  for (Key k = 0; k < keys; ++k) {
    ch.Successors(k, &succ);
    if (succ[0] != before[k]) {
      ++moved;
      EXPECT_EQ(before[k], 3u) << "key " << k << " moved although its "
                               << "worker stayed on the ring";
    }
  }
  // Roughly 1/8 of the keys lived on worker 3.
  EXPECT_GT(moved, keys / 16);
  EXPECT_LT(moved, keys / 4);
}

TEST(ConsistentHashTest, PkgOverRingBalancesLikePkg) {
  auto dist = std::make_shared<workload::StaticDistribution>(
      workload::ZipfWeights(5000, 1.0), "zipf");
  ConsistentHashOptions plain;
  plain.replicas = 1;
  ConsistentHashOptions two;
  two.replicas = 2;
  ConsistentHashGrouping ch1(1, 8, plain);
  ConsistentHashGrouping ch2(1, 8, two);
  std::vector<uint64_t> l1(8, 0);
  std::vector<uint64_t> l2(8, 0);
  Rng rng(13);
  for (int i = 0; i < 200000; ++i) {
    Key k = dist->Sample(&rng);
    ++l1[ch1.Route(0, k)];
    ++l2[ch2.Route(0, k)];
  }
  // Two-replica choice beats the plain ring by a wide margin.
  EXPECT_LT(stats::ImbalanceOf(l2) * 10, stats::ImbalanceOf(l1));
}

TEST(ConsistentHashTest, FactoryIntegration) {
  PartitionerConfig config;
  config.technique = Technique::kConsistent;
  config.workers = 6;
  config.ring_replicas = 2;
  auto p = MakePartitioner(config);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ((*p)->MaxWorkersPerKey(), 2u);
  EXPECT_EQ((*p)->Name(), "CH-PKG(r=2)");

  config.ring_replicas = 7;  // > workers
  EXPECT_TRUE(MakePartitioner(config).status().IsInvalidArgument());
  config.ring_replicas = 1;
  config.virtual_nodes = 0;
  EXPECT_TRUE(MakePartitioner(config).status().IsInvalidArgument());
}

TEST(ConsistentHashTest, NamesParse) {
  EXPECT_EQ(*ParseTechnique("CH"), Technique::kConsistent);
  EXPECT_EQ(*ParseTechnique("KG+rebalance"), Technique::kRebalancing);
  EXPECT_EQ(*ParseTechnique(TechniqueName(Technique::kRebalancing)),
            Technique::kRebalancing);
}

}  // namespace
}  // namespace partition
}  // namespace pkgstream
