// Copyright 2026 The pkgstream Authors.
// Unit tests for the technique registry / factory.

#include <gtest/gtest.h>

#include "partition/factory.h"

namespace pkgstream {
namespace partition {
namespace {

TEST(FactoryTest, NamesRoundTrip) {
  for (Technique t :
       {Technique::kHashing, Technique::kShuffle, Technique::kRandom,
        Technique::kPkgGlobal, Technique::kPkgLocal, Technique::kPkgProbing,
        Technique::kPotcStatic, Technique::kOnGreedy, Technique::kOffGreedy}) {
    auto parsed = ParseTechnique(TechniqueName(t));
    ASSERT_TRUE(parsed.ok()) << TechniqueName(t);
    EXPECT_EQ(*parsed, t);
  }
}

TEST(FactoryTest, PaperAliases) {
  EXPECT_EQ(*ParseTechnique("H"), Technique::kHashing);
  EXPECT_EQ(*ParseTechnique("KG"), Technique::kHashing);
  EXPECT_EQ(*ParseTechnique("G"), Technique::kPkgGlobal);
  EXPECT_EQ(*ParseTechnique("L"), Technique::kPkgLocal);
  EXPECT_EQ(*ParseTechnique("LP"), Technique::kPkgProbing);
  EXPECT_EQ(*ParseTechnique("PKG"), Technique::kPkgLocal);
}

TEST(FactoryTest, UnknownNameIsNotFound) {
  EXPECT_TRUE(ParseTechnique("quantum").status().IsNotFound());
}

TEST(FactoryTest, BuildsEveryTechniqueExceptOffGreedyWithoutFreq) {
  for (Technique t :
       {Technique::kHashing, Technique::kShuffle, Technique::kRandom,
        Technique::kPkgGlobal, Technique::kPkgLocal, Technique::kPkgProbing,
        Technique::kPotcStatic, Technique::kOnGreedy}) {
    PartitionerConfig config;
    config.technique = t;
    config.sources = 2;
    config.workers = 4;
    auto p = MakePartitioner(config);
    ASSERT_TRUE(p.ok()) << TechniqueName(t);
    EXPECT_EQ((*p)->workers(), 4u);
    EXPECT_EQ((*p)->sources(), 2u);
    WorkerId w = (*p)->Route(0, 123);
    EXPECT_LT(w, 4u);
  }
}

TEST(FactoryTest, OffGreedyRequiresFrequencies) {
  PartitionerConfig config;
  config.technique = Technique::kOffGreedy;
  EXPECT_TRUE(MakePartitioner(config).status().IsFailedPrecondition());

  stats::FrequencyTable freq;
  freq.Add(1, 10);
  config.frequencies = &freq;
  EXPECT_TRUE(MakePartitioner(config).ok());
}

TEST(FactoryTest, ValidatesArguments) {
  PartitionerConfig config;
  config.sources = 0;
  EXPECT_TRUE(MakePartitioner(config).status().IsInvalidArgument());
  config.sources = 1;
  config.workers = 0;
  EXPECT_TRUE(MakePartitioner(config).status().IsInvalidArgument());
  config.workers = 2;
  config.technique = Technique::kPkgLocal;
  config.num_choices = 0;
  EXPECT_TRUE(MakePartitioner(config).status().IsInvalidArgument());
  config.num_choices = 2;
  config.technique = Technique::kPkgProbing;
  config.probe_period_messages = 0;
  EXPECT_TRUE(MakePartitioner(config).status().IsInvalidArgument());
}

TEST(FactoryTest, PkgVariantsUseConfiguredChoices) {
  PartitionerConfig config;
  config.technique = Technique::kPkgLocal;
  config.workers = 16;
  config.num_choices = 3;
  auto p = MakePartitioner(config);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ((*p)->MaxWorkersPerKey(), 3u);
}

TEST(FactoryTest, PotcForcesAtLeastTwoChoices) {
  PartitionerConfig config;
  config.technique = Technique::kPotcStatic;
  config.workers = 4;
  config.num_choices = 1;
  auto p = MakePartitioner(config);
  ASSERT_TRUE(p.ok());  // silently upgraded to 2 choices
  EXPECT_EQ((*p)->Name(), "PoTC");
}

TEST(FactoryTest, TechniqueNamesMatchPaperLabels) {
  EXPECT_EQ(TechniqueName(Technique::kHashing), "Hashing");
  EXPECT_EQ(TechniqueName(Technique::kShuffle), "SG");
  EXPECT_EQ(TechniqueName(Technique::kPotcStatic), "PoTC");
  EXPECT_EQ(TechniqueName(Technique::kOnGreedy), "On-Greedy");
  EXPECT_EQ(TechniqueName(Technique::kOffGreedy), "Off-Greedy");
}

}  // namespace
}  // namespace partition
}  // namespace pkgstream
