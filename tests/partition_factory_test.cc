// Copyright 2026 The pkgstream Authors.
// Unit tests for the technique registry / factory.

#include <gtest/gtest.h>

#include "partition/factory.h"

namespace pkgstream {
namespace partition {
namespace {

TEST(FactoryTest, NamesRoundTrip) {
  for (Technique t :
       {Technique::kHashing, Technique::kShuffle, Technique::kRandom,
        Technique::kPkgGlobal, Technique::kPkgLocal, Technique::kPkgProbing,
        Technique::kPotcStatic, Technique::kOnGreedy, Technique::kOffGreedy}) {
    auto parsed = ParseTechnique(TechniqueName(t));
    ASSERT_TRUE(parsed.ok()) << TechniqueName(t);
    EXPECT_EQ(*parsed, t);
  }
}

TEST(FactoryTest, PaperAliases) {
  EXPECT_EQ(*ParseTechnique("H"), Technique::kHashing);
  EXPECT_EQ(*ParseTechnique("KG"), Technique::kHashing);
  EXPECT_EQ(*ParseTechnique("G"), Technique::kPkgGlobal);
  EXPECT_EQ(*ParseTechnique("L"), Technique::kPkgLocal);
  EXPECT_EQ(*ParseTechnique("LP"), Technique::kPkgProbing);
  EXPECT_EQ(*ParseTechnique("PKG"), Technique::kPkgLocal);
}

TEST(FactoryTest, UnknownNameIsNotFound) {
  EXPECT_TRUE(ParseTechnique("quantum").status().IsNotFound());
}

TEST(FactoryTest, BuildsEveryTechniqueExceptOffGreedyWithoutFreq) {
  for (Technique t :
       {Technique::kHashing, Technique::kShuffle, Technique::kRandom,
        Technique::kPkgGlobal, Technique::kPkgLocal, Technique::kPkgProbing,
        Technique::kPotcStatic, Technique::kOnGreedy}) {
    PartitionerConfig config;
    config.technique = t;
    config.sources = 2;
    config.workers = 4;
    auto p = MakePartitioner(config);
    ASSERT_TRUE(p.ok()) << TechniqueName(t);
    EXPECT_EQ((*p)->workers(), 4u);
    EXPECT_EQ((*p)->sources(), 2u);
    WorkerId w = (*p)->Route(0, 123);
    EXPECT_LT(w, 4u);
  }
}

TEST(FactoryTest, OffGreedyRequiresFrequencies) {
  PartitionerConfig config;
  config.technique = Technique::kOffGreedy;
  EXPECT_TRUE(MakePartitioner(config).status().IsFailedPrecondition());

  stats::FrequencyTable freq;
  freq.Add(1, 10);
  config.frequencies = &freq;
  EXPECT_TRUE(MakePartitioner(config).ok());
}

TEST(FactoryTest, ValidatesArguments) {
  PartitionerConfig config;
  config.sources = 0;
  EXPECT_TRUE(MakePartitioner(config).status().IsInvalidArgument());
  config.sources = 1;
  config.workers = 0;
  EXPECT_TRUE(MakePartitioner(config).status().IsInvalidArgument());
  config.workers = 2;
  config.technique = Technique::kPkgLocal;
  config.num_choices = 0;
  EXPECT_TRUE(MakePartitioner(config).status().IsInvalidArgument());
  config.num_choices = 2;
  config.technique = Technique::kPkgProbing;
  config.probe_period_messages = 0;
  EXPECT_TRUE(MakePartitioner(config).status().IsInvalidArgument());
}

TEST(FactoryTest, PkgVariantsUseConfiguredChoices) {
  PartitionerConfig config;
  config.technique = Technique::kPkgLocal;
  config.workers = 16;
  config.num_choices = 3;
  auto p = MakePartitioner(config);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ((*p)->MaxWorkersPerKey(), 3u);
}

TEST(FactoryTest, PotcForcesAtLeastTwoChoices) {
  PartitionerConfig config;
  config.technique = Technique::kPotcStatic;
  config.workers = 4;
  config.num_choices = 1;
  auto p = MakePartitioner(config);
  ASSERT_TRUE(p.ok());  // silently upgraded to 2 choices
  EXPECT_EQ((*p)->Name(), "PoTC");
}

// Every technique the factory can build: a fresh clone must make the same
// routing decisions as its original on the same input, and routing through
// the clone must not disturb the original's state (full independence —
// ThreadedRuntime leans on this for its per-source replicas).
TEST(FactoryTest, ClonesRouteIdenticallyAndIndependently) {
  stats::FrequencyTable freq;
  for (Key k = 0; k < 50; ++k) freq.Add(k, 50 - k);
  // kRandom is deliberately absent: its clones draw independent random
  // streams by design (see RandomCloneDrawsAnIndependentStream below).
  for (Technique t :
       {Technique::kHashing, Technique::kShuffle, Technique::kPkgGlobal,
        Technique::kPkgLocal, Technique::kPkgProbing, Technique::kPotcStatic,
        Technique::kOnGreedy, Technique::kOffGreedy, Technique::kRebalancing,
        Technique::kConsistent, Technique::kWChoices}) {
    PartitionerConfig config;
    config.technique = t;
    config.sources = 2;
    config.workers = 4;
    config.frequencies = &freq;
    auto a = MakePartitioner(config);
    auto b = MakePartitioner(config);
    ASSERT_TRUE(a.ok() && b.ok()) << TechniqueName(t);
    PartitionerPtr clone = (*a)->Clone();
    EXPECT_EQ(clone->Name(), (*a)->Name()) << TechniqueName(t);
    EXPECT_EQ(clone->workers(), (*a)->workers());
    EXPECT_EQ(clone->sources(), (*a)->sources());
    // Perturb the ORIGINAL: if the clone shared any state, its decision
    // stream would diverge from the pristine reference `b`.
    for (Key k = 0; k < 500; ++k) (*a)->Route(k % 2, k * 13);
    for (Key k = 0; k < 500; ++k) {
      ASSERT_EQ(clone->Route(k % 2, k * 7), (*b)->Route(k % 2, k * 7))
          << TechniqueName(t) << " diverged at key " << k * 7;
    }
  }
}

// Regression: Clone() once copied RandomGrouping's RNG verbatim, so every
// per-source replica emitted the identical worker sequence — all sources'
// i-th message landed on the same worker. Clones must be decorrelated
// from the original (and from each other).
TEST(FactoryTest, RandomCloneDrawsAnIndependentStream) {
  PartitionerConfig config;
  config.technique = Technique::kRandom;
  config.sources = 1;
  config.workers = 4;
  auto a = MakePartitioner(config);
  auto fresh = MakePartitioner(config);  // same seed: a's pristine stream
  ASSERT_TRUE(a.ok() && fresh.ok());
  PartitionerPtr clone1 = (*a)->Clone();
  PartitionerPtr clone2 = (*a)->Clone();
  int agree_fresh = 0;
  int agree_pair = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    WorkerId c1 = clone1->Route(0, 0);
    if (c1 == (*fresh)->Route(0, 0)) ++agree_fresh;
    if (c1 == clone2->Route(0, 0)) ++agree_pair;
  }
  // Independent uniform streams over 4 workers agree ~1/4 of the time;
  // lockstep streams agree always.
  EXPECT_LT(agree_fresh, n / 2);
  EXPECT_LT(agree_pair, n / 2);
}

TEST(FactoryTest, ReplicasAreIndependentInstances) {
  PartitionerConfig config;
  config.technique = Technique::kPkgLocal;
  config.sources = 3;
  config.workers = 4;
  auto replicas = MakePartitionerReplicas(config, 3);
  ASSERT_TRUE(replicas.ok());
  ASSERT_EQ(replicas->size(), 3u);
  // Same fresh state: identical decisions for the same call sequence.
  std::vector<WorkerId> first;
  for (Key k = 0; k < 200; ++k) first.push_back((*replicas)[0]->Route(0, k));
  for (Key k = 0; k < 200; ++k) {
    EXPECT_EQ((*replicas)[1]->Route(0, k), first[k]);
  }
  EXPECT_TRUE(
      MakePartitionerReplicas(config, 0).status().IsInvalidArgument());
}

TEST(FactoryTest, TechniqueNamesMatchPaperLabels) {
  EXPECT_EQ(TechniqueName(Technique::kHashing), "Hashing");
  EXPECT_EQ(TechniqueName(Technique::kShuffle), "SG");
  EXPECT_EQ(TechniqueName(Technique::kPotcStatic), "PoTC");
  EXPECT_EQ(TechniqueName(Technique::kOnGreedy), "On-Greedy");
  EXPECT_EQ(TechniqueName(Technique::kOffGreedy), "Off-Greedy");
}

}  // namespace
}  // namespace partition
}  // namespace pkgstream
