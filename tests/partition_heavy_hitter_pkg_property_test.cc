// Copyright 2026 The pkgstream Authors.
// Property suite for HeavyHitterAwarePkg (D-Choices / W-Choices): the
// sequel's contract, stated as invariants over adversarial streams.
//
//  * Containment: a tail key's decision never leaves its base_choices tail
//    candidates; a heavy key's decision never leaves the first-d_k prefix
//    of the head hash family (or, >= workers, the full worker set). The
//    oracle exploits that Route classifies AFTER feeding the sketch, so
//    IsHeavy/HeadChoicesFor queried right after Route(key) returns reflect
//    exactly the state that decision used.
//  * Warm-up: nothing routes through the expanded-choice path before
//    min_messages per source, no matter how hot the key.
//  * Bit-equality: RouteBatch == n scalar Routes (decisions AND state),
//    and Clone() == original, across policies x workers {16, 256, 1024} x
//    seeds x ragged interleaved batches with a rotating source — the same
//    matrix partition_route_batch_test.cc pins for the other techniques,
//    here driven through direct construction so every estimator frame
//    (L, G, LP) and every head policy is covered, including the fused
//    SIMD tail path at wide worker counts.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/hash.h"
#include "partition/heavy_hitter_pkg.h"
#include "partition/load_estimator.h"

namespace pkgstream {
namespace partition {
namespace {

constexpr uint32_t kSources = 3;
constexpr size_t kMessages = 4096;
constexpr size_t kStateProbeMessages = 512;

/// Deterministic head-heavy key sequence (squared-uniform skew), same
/// construction as partition_route_batch_test.cc.
Key TestKey(uint64_t seed, size_t i) {
  const uint64_t r = Fmix64(seed ^ (0x9e3779b97f4a7c15ULL * (i + 1)));
  const uint64_t u = r % 1024;
  return (u * u) / 1024;
}

/// The property stream: the squared-skew tail plus one red-hot key at ~25%
/// of messages, so every worker count in the matrix (threshold 2/W, W up
/// to 1024... down to 16) produces both genuine heavy and tail routings.
Key PropertyKey(uint64_t seed, size_t i) {
  const uint64_t r = Fmix64(seed ^ (0x51ed270b35a4c1e9ULL * (i + 1)));
  if ((r & 7) < 2) return 5;
  return TestKey(seed, i);
}

enum class HeadPolicy {
  kWChoices,         // head_choices = 0, fixed: full scan for heavy keys
  kFixedD,           // head_choices = 4, fixed d for every heavy key
  kAdaptive,         // the sequel's epsilon policy, uncapped
  kAdaptiveCapped,   // epsilon policy capped at 8 candidates
};

enum class EstimatorKind { kLocal, kGlobal, kProbing };

struct PropertyCase {
  HeadPolicy policy;
  EstimatorKind estimator;
  uint32_t workers;
  uint64_t seed;
};

HeavyHitterPkgOptions OptionsFor(const PropertyCase& c) {
  HeavyHitterPkgOptions options;
  options.base_choices = 2;
  options.sketch_capacity = 256;
  // share > 2/W: the Section IV wall, so the squared-skew stream always
  // produces genuine heavy keys at every worker count in the matrix.
  options.threshold_factor = 2.0;
  options.min_messages = 256;
  options.hash_seed = c.seed;
  switch (c.policy) {
    case HeadPolicy::kWChoices:
      options.head_choices = 0;
      break;
    case HeadPolicy::kFixedD:
      options.head_choices = 4;
      break;
    case HeadPolicy::kAdaptive:
      options.adaptive_head = true;
      options.head_choices = 0;
      options.epsilon = 0.05;
      break;
    case HeadPolicy::kAdaptiveCapped:
      options.adaptive_head = true;
      options.head_choices = 8;
      options.epsilon = 0.05;
      break;
  }
  return options;
}

LoadEstimatorPtr MakeEstimator(EstimatorKind kind, uint32_t workers) {
  switch (kind) {
    case EstimatorKind::kLocal:
      return std::make_unique<LocalLoadEstimator>(kSources, workers);
    case EstimatorKind::kGlobal:
      return std::make_unique<GlobalLoadEstimator>(kSources, workers);
    case EstimatorKind::kProbing:
      return std::make_unique<ProbingLoadEstimator>(kSources, workers, 300);
  }
  return nullptr;
}

std::unique_ptr<HeavyHitterAwarePkg> MakePkg(const PropertyCase& c) {
  return std::make_unique<HeavyHitterAwarePkg>(
      kSources, c.workers, MakeEstimator(c.estimator, c.workers),
      OptionsFor(c));
}

const char* PolicyName(HeadPolicy p) {
  switch (p) {
    case HeadPolicy::kWChoices:
      return "WChoices";
    case HeadPolicy::kFixedD:
      return "FixedD4";
    case HeadPolicy::kAdaptive:
      return "Adaptive";
    case HeadPolicy::kAdaptiveCapped:
      return "AdaptiveCap8";
  }
  return "?";
}

const char* EstimatorName(EstimatorKind e) {
  switch (e) {
    case EstimatorKind::kLocal:
      return "L";
    case EstimatorKind::kGlobal:
      return "G";
    case EstimatorKind::kProbing:
      return "LP";
  }
  return "?";
}

std::string CaseName(const testing::TestParamInfo<PropertyCase>& info) {
  return std::string(PolicyName(info.param.policy)) + "_" +
         EstimatorName(info.param.estimator) + "_w" +
         std::to_string(info.param.workers) + "_seed" +
         std::to_string(info.param.seed);
}

std::vector<PropertyCase> AllCases() {
  std::vector<PropertyCase> cases;
  for (HeadPolicy policy :
       {HeadPolicy::kWChoices, HeadPolicy::kFixedD, HeadPolicy::kAdaptive,
        HeadPolicy::kAdaptiveCapped}) {
    for (uint32_t workers : {16u, 256u, 1024u}) {
      for (uint64_t seed : {7ull, 42ull}) {
        cases.push_back(
            PropertyCase{policy, EstimatorKind::kLocal, workers, seed});
      }
    }
    // The non-local frames take the same fused loop through different
    // estimator protocols; one wide configuration each pins them.
    cases.push_back(
        PropertyCase{policy, EstimatorKind::kGlobal, 256u, 42ull});
    cases.push_back(
        PropertyCase{policy, EstimatorKind::kProbing, 256u, 42ull});
  }
  return cases;
}

class HeavyHitterPkgPropertyTest
    : public testing::TestWithParam<PropertyCase> {};

TEST_P(HeavyHitterPkgPropertyTest, DecisionsStayInTheirCandidateSets) {
  const PropertyCase& c = GetParam();
  auto pkg = MakePkg(c);
  const HeavyHitterPkgOptions options = OptionsFor(c);
  // Twin hash families, rebuilt from the documented construction: tail =
  // (base_choices, W, seed); head = (head cap, W, Fmix64(seed) | 1).
  const HashFamily tail(options.base_choices, c.workers, options.hash_seed);
  const uint32_t head_cap =
      options.head_choices == 0
          ? (options.adaptive_head ? c.workers : 1)
          : std::min(options.head_choices, c.workers);
  const HashFamily head(std::max(1u, head_cap), c.workers,
                        Fmix64(options.hash_seed) | 1);

  uint64_t heavy_seen = 0;
  uint64_t tail_seen = 0;
  for (size_t i = 0; i < kMessages; ++i) {
    const Key key = PropertyKey(c.seed, i);
    const SourceId source = static_cast<SourceId>(i % kSources);
    const WorkerId w = pkg->Route(source, key);
    ASSERT_LT(w, c.workers);
    // Route classifies after feeding the sketch; nothing has touched the
    // sketch since, so this is the classification the decision used.
    if (pkg->IsHeavy(source, key)) {
      ++heavy_seen;
      const uint32_t dk = pkg->HeadChoicesFor(source, key);
      EXPECT_GE(dk, options.base_choices);
      if (options.adaptive_head) {
        EXPECT_LE(dk, head_cap) << "adaptive d_k above the configured cap";
      }
      if (dk < c.workers) {
        bool in_prefix = false;
        for (uint32_t m = 0; m < dk && !in_prefix; ++m) {
          in_prefix = head.Bucket(m, key) == w;
        }
        EXPECT_TRUE(in_prefix)
            << "message " << i << ": heavy key " << key << " routed to " << w
            << " outside its d_k=" << dk << " head prefix";
      }
    } else {
      ++tail_seen;
      bool in_tail = false;
      for (uint32_t m = 0; m < tail.d() && !in_tail; ++m) {
        in_tail = tail.Bucket(m, key) == w;
      }
      EXPECT_TRUE(in_tail) << "message " << i << ": tail key " << key
                           << " routed to " << w
                           << " outside its base candidates";
    }
    if (HasFailure()) return;
  }
  // The stream is skewed past the threshold by construction: both classes
  // must actually occur or the test proves nothing.
  EXPECT_GT(heavy_seen, 0u) << "stream produced no heavy routings";
  EXPECT_GT(tail_seen, 0u) << "stream produced no tail routings";
  EXPECT_EQ(pkg->heavy_routings(), heavy_seen);
}

TEST_P(HeavyHitterPkgPropertyTest, WarmUpKeepsEverythingOnTheTailPath) {
  const PropertyCase& c = GetParam();
  auto pkg = MakePkg(c);
  const HeavyHitterPkgOptions options = OptionsFor(c);
  const HashFamily tail(options.base_choices, c.workers, options.hash_seed);
  // One source, a single red-hot key (share ~ 1): the most adversarial
  // warm-up stream there is. Until min_messages the expanded path must
  // stay cold and every decision must sit in the tail candidates.
  const SourceId source = 0;
  for (uint64_t i = 0; i + 1 < options.min_messages; ++i) {
    const Key key = (i % 4 == 3) ? TestKey(c.seed, i) : 99;
    const WorkerId w = pkg->Route(source, key);
    bool in_tail = false;
    for (uint32_t m = 0; m < tail.d() && !in_tail; ++m) {
      in_tail = tail.Bucket(m, key) == w;
    }
    ASSERT_TRUE(in_tail) << "warm-up message " << i
                         << " left the tail candidates";
  }
  EXPECT_EQ(pkg->heavy_routings(), 0u)
      << "expanded-choice path used during warm-up";
  // And immediately after warm-up the hot key flips heavy.
  pkg->Route(source, 99);
  EXPECT_TRUE(pkg->IsHeavy(source, 99));
  EXPECT_GT(pkg->heavy_routings(), 0u);
}

TEST_P(HeavyHitterPkgPropertyTest, RouteBatchAndCloneAreBitIdentical) {
  const PropertyCase& c = GetParam();
  auto scalar = MakePkg(c);
  auto batch = MakePkg(c);

  const size_t chunk_sizes[] = {1, 7, 64, 29};  // ragged, non-power-of-2 mix
  std::vector<Key> key_buf;
  std::vector<WorkerId> batch_out;
  size_t pos = 0;
  size_t chunk = 0;
  SourceId source = 0;
  while (pos < kMessages) {
    const size_t len = std::min(chunk_sizes[chunk % 4], kMessages - pos);
    key_buf.resize(len);
    batch_out.assign(len, kInvalidWorker);
    for (size_t j = 0; j < len; ++j) key_buf[j] = PropertyKey(c.seed, pos + j);
    batch->RouteBatch(source, key_buf.data(), batch_out.data(), len);
    for (size_t j = 0; j < len; ++j) {
      const WorkerId expected = scalar->Route(source, key_buf[j]);
      ASSERT_EQ(batch_out[j], expected)
          << "diverged at message " << pos + j << " (chunk " << chunk
          << ", source " << source << ")";
    }
    pos += len;
    ++chunk;
    source = static_cast<SourceId>(chunk % kSources);
  }
  // Sketch-visible state must agree too, not just the decisions.
  EXPECT_EQ(batch->heavy_routings(), scalar->heavy_routings());

  // Clone() lockstep: clones continue scalar and must walk identically —
  // including identical heavy classifications.
  auto scalar_clone = scalar->Clone();
  auto batch_clone = batch->Clone();
  auto* batch_clone_hh = static_cast<HeavyHitterAwarePkg*>(batch_clone.get());
  auto* scalar_clone_hh =
      static_cast<HeavyHitterAwarePkg*>(scalar_clone.get());
  for (size_t i = 0; i < kStateProbeMessages; ++i) {
    const Key key = PropertyKey(c.seed ^ 0xabcdef, i);
    const SourceId s = static_cast<SourceId>(i % kSources);
    ASSERT_EQ(batch_clone->Route(s, key), scalar_clone->Route(s, key))
        << "clone state diverged at probe message " << i;
    ASSERT_EQ(batch_clone_hh->IsHeavy(s, key),
              scalar_clone_hh->IsHeavy(s, key))
        << "clone sketch diverged at probe message " << i;
  }
  // ... and on the originals.
  for (size_t i = 0; i < kStateProbeMessages; ++i) {
    const Key key = PropertyKey(c.seed ^ 0x123457, i);
    const SourceId s = static_cast<SourceId>(i % kSources);
    ASSERT_EQ(batch->Route(s, key), scalar->Route(s, key))
        << "post-batch state diverged at probe message " << i;
  }
  EXPECT_EQ(batch->heavy_routings(), scalar->heavy_routings());
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, HeavyHitterPkgPropertyTest,
                         testing::ValuesIn(AllCases()), CaseName);

}  // namespace
}  // namespace partition
}  // namespace pkgstream
